package pmemlog

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section VI). Each benchmark executes the simulations that regenerate
// the corresponding result and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the whole evaluation:
//
//	BenchmarkTable1HardwareOverhead  Table I   (bytes of added state)
//	BenchmarkTable2Configuration     Table II  (sanity of the machine)
//	BenchmarkTable3Microbenchmarks   Table III (one run per benchmark)
//	BenchmarkFig6Throughput          Fig 6     (fwb speedup vs unsafe-base)
//	BenchmarkFig7IPC                 Fig 7     (IPC + instruction ratios)
//	BenchmarkFig8Energy              Fig 8     (memory energy reduction)
//	BenchmarkFig9Traffic             Fig 9     (NVRAM write reduction)
//	BenchmarkFig10Whisper            Fig 10    (WHISPER, fwb vs unsafe-base)
//	BenchmarkFig11aLogBuffer         Fig 11a   (log buffer sweep)
//	BenchmarkFig11bFwbFreq           Fig 11b   (scan interval law)
//
// Plus ablations for the design choices DESIGN.md calls out.

import (
	"testing"

	"pmemlog/internal/bench"
	"pmemlog/internal/core"
	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
)

// benchParams is small enough for tight benchmark iterations while staying
// in the out-of-cache regime.
func benchParams() Params {
	p := QuickParams()
	p.Elements = 8192
	p.TxnsPerThread = 100
	p.WhisperRecords = 2048
	p.WhisperTxns = 100
	p.L2Bytes = 128 << 10
	p.LogBytes = 512 << 10
	return p
}

func mustRunMicro(b *testing.B, name string, m Mode, threads int, p Params) Run {
	b.Helper()
	r, err := RunMicro(name, m, threads, p)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func BenchmarkTable1HardwareOverhead(b *testing.B) {
	cfg := DefaultConfig(FWB, 8)
	var logBuf int
	for i := 0; i < b.N; i++ {
		t := Table1(cfg)
		logBuf = len(t.Rows)
	}
	b.ReportMetric(float64(logBuf), "rows")
	b.ReportMetric(float64(cfg.Memctl.LogBufferEntries*mem.LineSize), "logbuf-bytes")
}

func BenchmarkTable2Configuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(FWB, 8)
		sys, err := NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = sys
	}
}

func BenchmarkTable3Microbenchmarks(b *testing.B) {
	p := benchParams()
	for _, name := range MicroBenchNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := mustRunMicro(b, name, FWB, 1, p)
				b.ReportMetric(r.Throughput(), "tx/s")
			}
		})
	}
}

// fig6Cell runs the three designs Fig 6's headline compares and reports
// fwb's speedups.
func BenchmarkFig6Throughput(b *testing.B) {
	p := benchParams()
	for _, name := range MicroBenchNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := mustRunMicro(b, name, SWRedo, 1, p)
				u := mustRunMicro(b, name, SWUndo, 1, p)
				if u.Throughput() > base.Throughput() {
					base = u // unsafe-base = better of the two
				}
				fwb := mustRunMicro(b, name, FWB, 1, p)
				clwb := mustRunMicro(b, name, SWUndoClwb, 1, p)
				b.ReportMetric(fwb.Speedup(base), "x-vs-unsafe")
				b.ReportMetric(fwb.Speedup(clwb), "x-vs-undo-clwb")
			}
		})
	}
}

func BenchmarkFig7IPC(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		base := mustRunMicro(b, "hash", SWRedo, 1, p)
		fwb := mustRunMicro(b, "hash", FWB, 1, p)
		np := mustRunMicro(b, "hash", NonPers, 1, p)
		b.ReportMetric(fwb.IPCSpeedup(base), "ipc-x-vs-unsafe")
		b.ReportMetric(base.InstrRatio(np), "sw-instr-x-vs-nonpers")
		b.ReportMetric(fwb.InstrRatio(np), "fwb-instr-x-vs-nonpers")
	}
}

func BenchmarkFig8Energy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		base := mustRunMicro(b, "hash", SWRedo, 1, p)
		fwb := mustRunMicro(b, "hash", FWB, 1, p)
		clwb := mustRunMicro(b, "hash", SWUndoClwb, 1, p)
		b.ReportMetric(fwb.EnergyReduction(base), "fwb-energy-reduction")
		b.ReportMetric(clwb.EnergyReduction(base), "clwb-energy-reduction")
	}
}

func BenchmarkFig9Traffic(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		base := mustRunMicro(b, "hash", SWRedo, 1, p)
		fwb := mustRunMicro(b, "hash", FWB, 1, p)
		clwb := mustRunMicro(b, "hash", SWUndoClwb, 1, p)
		b.ReportMetric(fwb.TrafficReduction(base), "fwb-write-reduction")
		b.ReportMetric(clwb.TrafficReduction(base), "clwb-write-reduction")
	}
}

func BenchmarkFig10Whisper(b *testing.B) {
	p := benchParams()
	for _, kernel := range WhisperNames() {
		kernel := kernel
		b.Run(kernel, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := RunWhisper(kernel, SWRedo, 2, p)
				if err != nil {
					b.Fatal(err)
				}
				fwb, err := RunWhisper(kernel, FWB, 2, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(fwb.Speedup(base), "x-vs-unsafe")
				b.ReportMetric(fwb.TrafficReduction(base), "write-reduction")
			}
		})
	}
}

func BenchmarkFig11aLogBuffer(b *testing.B) {
	p := benchParams()
	for _, entries := range Fig11aSizes() {
		entries := entries
		b.Run(itoaInt(entries)+"entries", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := Fig11aPoint(entries, 1, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Throughput(), "tx/s")
			}
		})
	}
}

func BenchmarkFig11bFwbFreq(b *testing.B) {
	nv := DefaultConfig(FWB, 1).NVRAM
	var last uint64
	for i := 0; i < b.N; i++ {
		for _, sz := range Fig11bSizes() {
			logCfg := nvlog.Config{Base: 0, SizeBytes: sz, Style: nvlog.UndoRedo}
			last = core.DeriveScanInterval(logCfg, nv, 2)
		}
	}
	b.ReportMetric(float64(last), "cycles-at-16MB")
}

// --- Ablations (DESIGN.md §7) ---

// Ablation: hwl (clwb at commit) vs fwb (decoupled write-back) isolates
// the contribution of the FWB mechanism itself.
func BenchmarkAblationFwbVsHwl(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		hwl := mustRunMicro(b, "hash", HWL, 1, p)
		fwb := mustRunMicro(b, "hash", FWB, 1, p)
		b.ReportMetric(fwb.Speedup(hwl), "fwb-x-vs-hwl")
	}
}

// Ablation: log size vs throughput (a bigger log truncates and scans less
// often; Section III-F's capacity trade-off).
func BenchmarkAblationLogSize(b *testing.B) {
	for _, kb := range []uint64{128, 512, 2048} {
		kb := kb
		b.Run(itoaInt(int(kb))+"KB", func(b *testing.B) {
			p := benchParams()
			p.LogBytes = kb << 10
			for i := 0; i < b.N; i++ {
				r := mustRunMicro(b, "hash", FWB, 1, p)
				b.ReportMetric(r.Throughput(), "tx/s")
			}
		})
	}
}

// Ablation: string vs integer payloads (multi-line elements change the
// logging-to-data ratio, paper Section V).
func BenchmarkAblationValueKind(b *testing.B) {
	for _, vk := range []bench.ValueKind{bench.IntValues, bench.StrValues} {
		vk := vk
		b.Run(vk.String(), func(b *testing.B) {
			p := benchParams()
			p.Values = vk
			for i := 0; i < b.N; i++ {
				r := mustRunMicro(b, "hash", FWB, 1, p)
				b.ReportMetric(r.Throughput(), "tx/s")
			}
		})
	}
}

// Ablation: centralized vs distributed per-thread logs (Section III-F,
// the evaluation the paper leaves to future work).
func BenchmarkAblationLogPartitioning(b *testing.B) {
	for _, dist := range []bool{false, true} {
		dist := dist
		name := "centralized"
		if dist {
			name = "per-thread"
		}
		b.Run(name, func(b *testing.B) {
			p := benchParams()
			p.PerThreadLogs = dist
			for i := 0; i < b.N; i++ {
				r := mustRunMicro(b, "hash", FWB, 4, p)
				b.ReportMetric(r.Throughput(), "tx/s")
			}
		})
	}
}

// Ablation: FWB scan frequency around the Section IV-D law — scanning too
// often wastes cache bandwidth; the law's setting should be at or near the
// throughput plateau.
func BenchmarkAblationFwbInterval(b *testing.B) {
	for _, f := range []struct {
		name     string
		interval uint64
	}{
		{"hyperactive-2k-cycles", 2_000},
		{"frequent-20k-cycles", 20_000},
		{"law", 0}, // the Section IV-D derived interval
	} {
		f := f
		b.Run(f.name, func(b *testing.B) {
			p := benchParams()
			p.TxnsPerThread = 400
			p.FwbScanInterval = f.interval
			for i := 0; i < b.N; i++ {
				r := mustRunMicro(b, "hash", FWB, 1, p)
				b.ReportMetric(r.Throughput(), "tx/s")
				b.ReportMetric(float64(r.FwbScans), "scans")
			}
		})
	}
}

// Ablation: thread scaling of the full design.
func BenchmarkAblationThreadScaling(b *testing.B) {
	for _, th := range []int{1, 2, 4, 8} {
		th := th
		b.Run(itoaInt(th)+"t", func(b *testing.B) {
			p := benchParams()
			for i := 0; i < b.N; i++ {
				r := mustRunMicro(b, "hash", FWB, th, p)
				b.ReportMetric(r.Throughput(), "tx/s")
			}
		})
	}
}

// benchObsRun executes the hash microbenchmark with an event tracer
// attached, toggling whether it records. The Disabled/Enabled pair
// quantifies the observability tax on the whole pipeline: Disabled
// must stay within noise of BenchmarkSimulatorSpeed (the pre-tracer
// hot path), since the disabled fast path is one atomic load.
func benchObsRun(b *testing.B, enabled bool) {
	b.Helper()
	p := benchParams()
	p.TxnsPerThread = 200
	var txns, events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := bench.New("hash", bench.Config{
			Elements:      p.Elements,
			TxnsPerThread: p.TxnsPerThread,
			Threads:       1,
			Values:        p.Values,
			Seed:          p.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		sys, err := NewSystem(p.config(FWB, 1))
		if err != nil {
			b.Fatal(err)
		}
		tr := sys.AttachTracer(1 << 14)
		if err := w.Setup(sys); err != nil {
			b.Fatal(err)
		}
		if enabled {
			tr.Enable()
		}
		if err := sys.RunN(w.Run); err != nil {
			b.Fatal(err)
		}
		tr.Disable()
		txns += sys.Stats().Transactions
		events += tr.Emitted()
	}
	b.ReportMetric(float64(txns)/b.Elapsed().Seconds(), "sim-tx/s")
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkObsDisabled(b *testing.B) { benchObsRun(b, false) }
func BenchmarkObsEnabled(b *testing.B)  { benchObsRun(b, true) }

// TestObsDisabledPathAllocFree is the CI guard behind the benchmark
// pair: a disabled tracer's Emit — the call sprinkled through every
// hot loop — must not allocate.
func TestObsDisabledPathAllocFree(t *testing.T) {
	sys, err := NewSystem(benchParams().config(FWB, 1))
	if err != nil {
		t.Fatal(err)
	}
	tr := sys.AttachTracer(1 << 10) // attached, never enabled
	if allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(0, 1, 1, 1, 1)
	}); allocs != 0 {
		t.Fatalf("disabled Emit allocates %.1f bytes/op, want 0", allocs)
	}
}

// Raw simulator speed: simulated transactions per wall-clock second.
func BenchmarkSimulatorSpeed(b *testing.B) {
	p := benchParams()
	p.TxnsPerThread = 200
	var txns uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := mustRunMicro(b, "hash", FWB, 1, p)
		txns += r.Transactions
	}
	b.ReportMetric(float64(txns)/b.Elapsed().Seconds(), "sim-tx/s")
}

func itoaInt(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
