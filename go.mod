module pmemlog

go 1.22
