// Package pmemlog is a simulator-based reproduction of "Steal but No
// Force: Efficient Hardware Undo+Redo Logging for Persistent Memory
// Systems" (Ogleari, Miller, Zhao — HPCA 2018).
//
// It provides:
//
//   - A deterministic cycle-accounting multicore simulator with a
//     write-back write-allocate cache hierarchy, a memory controller with
//     a write-combining buffer and the paper's volatile log buffer, and a
//     PCM NVRAM DIMM model (Table II configuration).
//   - The paper's contribution in hardware-model form: HWL (hardware
//     undo+redo logging driven by cache-line old values and in-flight
//     stores) and FWB (the fwb-bit force-write-back scanner), plus a
//     circular torn-bit log in NVRAM and the four-step recovery handler.
//   - All eight designs the paper evaluates (non-pers, software undo/redo
//     with and without clwb, hardware undo/redo bounds, hwl, fwb).
//   - The five microbenchmarks of Table III and a WHISPER-like suite, and
//     harness functions that regenerate every table and figure.
//   - A sharded network KV service over the pipeline (internal/server,
//     cmd/pmserver, cmd/pmload): writes are acknowledged only after their
//     transactions commit and the shard's NVRAM DIMM image is durably on
//     disk; restarts re-attach and recover via System.Attach.
//
// Quick start:
//
//	cfg := pmemlog.DefaultConfig(pmemlog.FWB, 1)
//	sys, _ := pmemlog.NewSystem(cfg)
//	a, _ := sys.Heap().Alloc(8)
//	sys.RunN(func(ctx pmemlog.Ctx, id int) {
//	    ctx.TxBegin()
//	    ctx.Store(a, 42)
//	    ctx.TxCommit()
//	})
//	fmt.Println(sys.Stats().Throughput())
package pmemlog

import (
	"pmemlog/internal/mem"
	"pmemlog/internal/recovery"
	"pmemlog/internal/sim"
	"pmemlog/internal/stats"
	"pmemlog/internal/txn"
)

// Core type aliases: the public API surface.
type (
	// Config describes the simulated machine.
	Config = sim.Config
	// System is an assembled machine instance.
	System = sim.System
	// Ctx is the workload-facing load/store/transaction interface.
	Ctx = sim.Ctx
	// Mode names one of the eight evaluated designs.
	Mode = txn.Mode
	// Run is the metric bundle produced by one simulation.
	Run = stats.Run
	// RunSet indexes runs for paper-style normalization.
	RunSet = stats.RunSet
	// Table renders aligned result rows.
	Table = stats.Table
	// Addr is a simulated physical address.
	Addr = mem.Addr
	// Word is a machine word.
	Word = mem.Word
	// RecoveryReport summarizes a post-crash recovery pass.
	RecoveryReport = recovery.Report
)

// The evaluated designs (paper Section VI).
const (
	NonPers    = txn.NonPers
	SWUndo     = txn.SWUndo
	SWRedo     = txn.SWRedo
	SWUndoClwb = txn.SWUndoClwb
	SWRedoClwb = txn.SWRedoClwb
	HWUndo     = txn.HWUndo
	HWRedo     = txn.HWRedo
	HWL        = txn.HWL
	FWB        = txn.FWB
)

// ErrCrashed is returned by System.Run when a scheduled crash fired.
var ErrCrashed = sim.ErrCrashed

// DefaultConfig returns the paper's Table II machine configuration.
func DefaultConfig(mode Mode, threads int) Config { return sim.DefaultConfig(mode, threads) }

// NewSystem builds a machine.
func NewSystem(cfg Config) (*System, error) { return sim.New(cfg) }

// AllModes lists every design in evaluation order.
func AllModes() []Mode { return txn.AllModes() }

// ParseMode resolves a design by its paper name (e.g. "fwb", "redo-clwb").
func ParseMode(name string) (Mode, error) { return txn.ParseMode(name) }

// NewRunSet creates an empty result index.
func NewRunSet() *RunSet { return stats.NewRunSet() }

// Geomean returns the geometric mean of positive values.
func Geomean(vals []float64) float64 { return stats.Geomean(vals) }
