package pmemlog

import (
	"strings"
	"testing"
)

func TestLogBufferBoundIsThePapers15(t *testing.T) {
	cfg := DefaultConfig(FWB, 1)
	if got := LogBufferBound(cfg); got != 15 {
		t.Errorf("LogBufferBound = %d, want 15 (paper Section IV-C / VI)", got)
	}
	// The default configuration must respect its own bound.
	if cfg.Memctl.LogBufferEntries > LogBufferBound(cfg) {
		t.Errorf("default log buffer (%d) exceeds the persistence bound (%d)",
			cfg.Memctl.LogBufferEntries, LogBufferBound(cfg))
	}
}

func TestLifetimeArithmetic(t *testing.T) {
	cfg := DefaultConfig(FWB, 1) // 4 MB log
	r := Lifetime(cfg, 1e8)
	// The paper: 64K x 200ns-class rewrites with 1e8 endurance ≈ 15 days.
	// Our 4 MB log holds 128K 32-byte records; each append costs ~55
	// cycles (22 ns), so a cell is rewritten every ~2.9 ms and lasts
	// ~3.3 days — same order, same conclusion (wear leveling has ample
	// time to rotate).
	if r.LogEntries != 131070 {
		t.Errorf("entries = %d", r.LogEntries)
	}
	if r.DaysToWearOut < 1 || r.DaysToWearOut > 100 {
		t.Errorf("days to wear out = %.2f, want single-digit-to-tens days", r.DaysToWearOut)
	}
	// Bigger log => longer cell lifetime, linearly.
	cfg2 := cfg
	cfg2.LogBytes = 8 << 20
	r2 := Lifetime(cfg2, 1e8)
	if r2.DaysToWearOut < 1.9*r.DaysToWearOut {
		t.Errorf("lifetime did not scale with log size: %.2f vs %.2f", r2.DaysToWearOut, r.DaysToWearOut)
	}
	if !strings.Contains(r.String(), "wear leveling") {
		t.Error("report text incomplete")
	}
}

func TestLogRegionWearIsUniform(t *testing.T) {
	// Run a workload with wear tracking and confirm the circular log
	// spreads writes evenly (no hot cell), the property the lifetime
	// argument rests on.
	p := tinyParams()
	cfg := p.config(FWB, 1)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Controller().NVRAM().SetWearTracking(true)
	a, _ := sys.Heap().Alloc(8)
	err = sys.RunN(func(ctx Ctx, id int) {
		for i := 0; i < 2000; i++ {
			ctx.TxBegin()
			ctx.Store(a, Word(i))
			ctx.TxCommit()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	nv := sys.Controller().NVRAM()
	max := nv.MaxLineWear()
	if max == 0 {
		t.Fatal("no wear recorded")
	}
	// 2000 txns x ~3 records x 32 B = ~192KB of appends over a 256 KB log:
	// under one full pass, so no line should be written many times more
	// than its neighbours (metadata line aside, which is rewritten on
	// every sync).
	metaWear := nv.WearOf(sys.LogBase())
	if max > metaWear && max > 8 {
		t.Errorf("hot log cell: max wear %d (meta %d)", max, metaWear)
	}
}
