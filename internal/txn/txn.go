// Package txn defines the persistent-memory transaction designs the paper
// evaluates (Section VI) and the software-logging cost model. Each design
// is a declarative Spec; the simulator (internal/sim) interprets the spec
// on every transactional store and commit:
//
//	non-pers    ideal non-persistent memory (upper bound)
//	sw-ulog     software undo logging, NO clwb  ─┐ the better of the two is
//	sw-rlog     software redo logging, NO clwb  ─┘ reported as "unsafe-base"
//	undo-clwb   software undo logging + clwb before commit
//	redo-clwb   software redo logging + per-store fence + clwb at commit
//	hw-ulog     hardware undo-only logging, unsafe (optimistic bound)
//	hw-rlog     hardware redo-only logging, unsafe (optimistic bound)
//	hwl         hardware undo+redo logging + clwb at commit (conservative)
//	fwb         hwl + decoupled force write-back (the paper's full design)
package txn

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
)

// Mode names one evaluated design.
type Mode int

const (
	NonPers Mode = iota
	SWUndo
	SWRedo
	SWUndoClwb
	SWRedoClwb
	HWUndo
	HWRedo
	HWL
	FWB
	numModes
)

// AllModes lists every mode in evaluation order.
func AllModes() []Mode {
	out := make([]Mode, numModes)
	for i := range out {
		out[i] = Mode(i)
	}
	return out
}

// Spec describes how a mode behaves on the simulated machine.
type Spec struct {
	Name string
	// SWLog enables software logging with the given style; log records are
	// built by extra instructions and written through the WCB.
	SWLog   bool
	SWStyle nvlog.Style
	// HWLog enables the hardware logging engine with the given style.
	HWLog   bool
	HWStyle nvlog.Style
	// UnsafeHW disables the hardware engine's truncation safety (hw-ulog /
	// hw-rlog: "no persistence guarantee").
	UnsafeHW bool
	// FencePerStore inserts a memory barrier between each log update and
	// its data store (required by redo logging, Figure 1(b)).
	FencePerStore bool
	// ClwbAtCommit flushes the transaction's write set before commit and
	// fences (undo-clwb, redo-clwb, hwl).
	ClwbAtCommit bool
	// UseFWB enables the background force-write-back scanner.
	UseFWB bool
	// Persistent marks designs that actually guarantee crash consistency.
	Persistent bool
}

// specs is indexed by Mode.
var specs = [numModes]Spec{
	NonPers: {Name: "non-pers"},
	SWUndo:  {Name: "sw-ulog", SWLog: true, SWStyle: nvlog.UndoOnly},
	SWRedo:  {Name: "sw-rlog", SWLog: true, SWStyle: nvlog.RedoOnly},
	SWUndoClwb: {Name: "undo-clwb", SWLog: true, SWStyle: nvlog.UndoOnly,
		ClwbAtCommit: true, Persistent: true},
	SWRedoClwb: {Name: "redo-clwb", SWLog: true, SWStyle: nvlog.RedoOnly,
		FencePerStore: true, ClwbAtCommit: true, Persistent: true},
	HWUndo: {Name: "hw-ulog", HWLog: true, HWStyle: nvlog.UndoOnly, UnsafeHW: true},
	HWRedo: {Name: "hw-rlog", HWLog: true, HWStyle: nvlog.RedoOnly, UnsafeHW: true},
	HWL: {Name: "hwl", HWLog: true, HWStyle: nvlog.UndoRedo,
		ClwbAtCommit: true, Persistent: true},
	FWB: {Name: "fwb", HWLog: true, HWStyle: nvlog.UndoRedo,
		UseFWB: true, Persistent: true},
}

// Spec returns the mode's behaviour description.
func (m Mode) Spec() Spec { return specs[m] }

// String returns the paper's name for the mode.
func (m Mode) String() string { return specs[m].Name }

// MarshalText encodes the mode as its paper name, making Mode usable in
// JSON metadata (server boot manifests, machine-readable benchmark dumps).
func (m Mode) MarshalText() ([]byte, error) {
	if m < 0 || m >= numModes {
		return nil, fmt.Errorf("txn: invalid mode %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText resolves a mode from its paper name.
func (m *Mode) UnmarshalText(b []byte) error {
	v, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParseMode resolves a mode by its paper name.
func ParseMode(name string) (Mode, error) {
	for i := Mode(0); i < numModes; i++ {
		if specs[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("txn: unknown mode %q", name)
}

// Software-logging instruction cost model (Section II-C: "software logging
// generates extra instructions ... using only undo logging can lead to more
// than doubled instructions"). Counts are per logged word-granular store,
// on top of the real loads/stores the simulator issues for the log itself.
const (
	// SWLogSetupInstr is the per-transaction logging overhead (function
	// call, log cursor setup) charged at the first logged store.
	SWLogSetupInstr = 12
	// SWUndoInstrPerStore: logging-function call overhead, log-cursor
	// arithmetic, bounds/wrap check, torn-bit and header field packing for
	// an undo record (a Mnemosyne-style append is a few dozen
	// instructions). The old-value *load* and the log *stores* are issued
	// as real memory operations on top of these. Calibrated so software
	// logging lands in the paper's >2x instruction band (Fig 7).
	SWUndoInstrPerStore = 24
	// SWRedoInstrPerStore: as above minus old-value handling.
	SWRedoInstrPerStore = 20
	// SWLogStoresPerRecord is how many uncacheable stores build one
	// compact record (32 B / 8 B words = 4 stores).
	SWLogStoresPerRecord = int(nvlog.CompactEntrySize / mem.WordSize)
	// SWCommitInstr finalizes a software-logged transaction.
	SWCommitInstr = 6
	// TxBeginInstr / TxCommitInstr are the transaction bookkeeping costs
	// (tx_begin/tx_commit themselves: ID allocation, register setup);
	// every persistent design pays them, non-pers does not — they are the
	// bulk of the paper's ~30% instruction overhead for fwb.
	TxBeginInstr  = 4
	TxCommitInstr = 4
	// ClwbInstr / FenceInstr are the instruction slots of clwb and
	// mfence/sfence.
	ClwbInstr  = 1
	FenceInstr = 1
)

// WriteSet tracks the cache lines a transaction dirtied, in first-write
// order — what a software transaction runtime flushes with clwb at commit,
// and what the simulator uses to bound flush work.
type WriteSet struct {
	lines []mem.Addr
	seen  map[mem.Addr]struct{}
}

// NewWriteSet returns an empty write set.
func NewWriteSet() *WriteSet {
	return &WriteSet{seen: make(map[mem.Addr]struct{})}
}

// Add records the line containing addr.
func (w *WriteSet) Add(addr mem.Addr) {
	line := addr.Line()
	if _, ok := w.seen[line]; ok {
		return
	}
	w.seen[line] = struct{}{}
	w.lines = append(w.lines, line)
}

// Lines returns the dirtied lines in first-write order.
func (w *WriteSet) Lines() []mem.Addr { return w.lines }

// Size returns the number of distinct lines.
func (w *WriteSet) Size() int { return len(w.lines) }

// Reset clears the set for reuse by the next transaction.
func (w *WriteSet) Reset() {
	w.lines = w.lines[:0]
	for k := range w.seen {
		delete(w.seen, k)
	}
}
