package txn

import (
	"testing"

	"pmemlog/internal/nvlog"
)

func TestSpecTable(t *testing.T) {
	cases := []struct {
		mode       Mode
		name       string
		persistent bool
	}{
		{NonPers, "non-pers", false},
		{SWUndo, "sw-ulog", false},
		{SWRedo, "sw-rlog", false},
		{SWUndoClwb, "undo-clwb", true},
		{SWRedoClwb, "redo-clwb", true},
		{HWUndo, "hw-ulog", false},
		{HWRedo, "hw-rlog", false},
		{HWL, "hwl", true},
		{FWB, "fwb", true},
	}
	for _, c := range cases {
		s := c.mode.Spec()
		if s.Name != c.name {
			t.Errorf("%v name = %q, want %q", c.mode, s.Name, c.name)
		}
		if s.Persistent != c.persistent {
			t.Errorf("%s persistent = %v, want %v", c.name, s.Persistent, c.persistent)
		}
		if c.mode.String() != c.name {
			t.Errorf("String() mismatch for %s", c.name)
		}
	}
}

func TestSpecInvariants(t *testing.T) {
	for _, m := range AllModes() {
		s := m.Spec()
		if s.SWLog && s.HWLog {
			t.Errorf("%s uses both software and hardware logging", s.Name)
		}
		if s.UseFWB && s.ClwbAtCommit {
			t.Errorf("%s uses both FWB and clwb (FWB replaces clwb)", s.Name)
		}
		if s.UnsafeHW && s.Persistent {
			t.Errorf("%s is unsafe yet persistent", s.Name)
		}
		if s.FencePerStore && s.SWStyle != nvlog.RedoOnly {
			t.Errorf("%s has a per-store fence but is not redo logging", s.Name)
		}
	}
	// The paper's full design: hardware undo+redo + FWB, no clwb.
	f := FWB.Spec()
	if !f.HWLog || f.HWStyle != nvlog.UndoRedo || !f.UseFWB || !f.Persistent {
		t.Errorf("fwb spec wrong: %+v", f)
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range AllModes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode parsed")
	}
}

func TestWriteSet(t *testing.T) {
	w := NewWriteSet()
	w.Add(0x100)
	w.Add(0x108) // same line
	w.Add(0x140) // next line
	if w.Size() != 2 {
		t.Fatalf("size = %d, want 2", w.Size())
	}
	lines := w.Lines()
	if lines[0] != 0x100 || lines[1] != 0x140 {
		t.Errorf("lines = %v (order must be first-write)", lines)
	}
	w.Reset()
	if w.Size() != 0 {
		t.Error("reset left lines")
	}
	w.Add(0x200)
	if w.Size() != 1 {
		t.Error("write set unusable after reset")
	}
}

func TestCostConstantsSane(t *testing.T) {
	// Undo logging costs more instructions than redo (it must also read
	// the old value), and a compact record is 4 word stores.
	if SWUndoInstrPerStore <= SWRedoInstrPerStore {
		t.Error("undo logging should cost more than redo")
	}
	if SWLogStoresPerRecord != 4 {
		t.Errorf("SWLogStoresPerRecord = %d, want 4", SWLogStoresPerRecord)
	}
}
