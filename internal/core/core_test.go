package core

import (
	"testing"

	"pmemlog/internal/cache"
	"pmemlog/internal/dram"
	"pmemlog/internal/mem"
	"pmemlog/internal/memctl"
	"pmemlog/internal/nvlog"
	"pmemlog/internal/nvram"
)

const nvBase = mem.Addr(1 << 24)

type rig struct {
	nv   *nvram.Device
	ctl  *memctl.Controller
	hier *cache.Hierarchy
	eng  *Engine
}

func nvCfg() nvram.Config {
	return nvram.Config{
		Banks: 8, RowBytes: 2048,
		RowHitCycles: 90, ReadMissCycles: 250, WriteMissCycles: 750,
		BusCyclesPerLine:   10,
		RowBufReadPJPerBit: 0.93, RowBufWritePJPerBit: 1.02,
		ArrayReadPJPerBit: 2.47, ArrayWritePJPerBit: 16.82,
	}
}

func newRig(t *testing.T, logEntries uint64, cfgMut func(*Config)) *rig {
	t.Helper()
	nv, err := nvram.New(nvCfg(), nvBase, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := dram.New(dram.Config{Banks: 8, AccessCycles: 125, BusCyclesLine: 5}, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := memctl.New(memctl.Config{ReadQueue: 64, WriteQueue: 64, WCBEntries: 4, LogBufferEntries: 15, QueueCycles: 2}, nv, dr)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := cache.NewHierarchy(cache.HierarchyConfig{
		NumCores: 2,
		L1:       cache.Config{Name: "L1", SizeBytes: 1024, Ways: 2, HitCycles: 4, ScanCycles: 1},
		L2:       cache.Config{Name: "L2", SizeBytes: 8192, Ways: 4, HitCycles: 11, ScanCycles: 1},
	}, ctl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Log: nvlog.Config{
			Base:      nvBase,
			SizeBytes: nvlog.MetaSize + logEntries*nvlog.FullEntrySize,
			Style:     nvlog.UndoRedo,
		},
		MaxActiveTx:     256,
		FwbSafetyFactor: 2,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	eng, err := New(cfg, ctl, hier)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{nv: nv, ctl: ctl, hier: hier, eng: eng}
}

// dataAddr returns a persistent data address outside the log region.
func dataAddr(i int) mem.Addr { return nvBase + 1<<21 + mem.Addr(i*mem.LineSize) }

func TestBeginCommitLifecycle(t *testing.T) {
	r := newRig(t, 64, nil)
	tx, err := r.eng.Begin(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.eng.ActiveTransactions() != 1 {
		t.Error("active count != 1")
	}
	// A store emits header + update records.
	old, done, _ := r.hier.StoreWord(0, 0, dataAddr(0), 42)
	if _, err := r.eng.OnStore(done, tx, dataAddr(0), old, 42); err != nil {
		t.Fatal(err)
	}
	if r.eng.Log().Len() != 2 {
		t.Errorf("live records = %d, want 2 (header+update)", r.eng.Log().Len())
	}
	if _, err := r.eng.Commit(1000, tx); err != nil {
		t.Fatal(err)
	}
	if r.eng.ActiveTransactions() != 0 {
		t.Error("active count after commit != 0")
	}
	if r.eng.Stats().Commits != 1 {
		t.Error("commit not counted")
	}
}

func TestEmptyTransactionWritesNoRecords(t *testing.T) {
	r := newRig(t, 64, nil)
	tx, _ := r.eng.Begin(0, 0)
	r.eng.Commit(10, tx)
	if got := r.eng.Stats().Records; got != 0 {
		t.Errorf("empty tx wrote %d records", got)
	}
}

func TestTxIDExhaustionAndReuse(t *testing.T) {
	r := newRig(t, 8192, nil)
	var txs []*Tx
	for i := 0; i < 256; i++ {
		tx, err := r.eng.Begin(0, 0)
		if err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		txs = append(txs, tx)
	}
	if _, err := r.eng.Begin(0, 0); err != ErrTxLimit {
		t.Fatalf("257th begin: %v, want ErrTxLimit", err)
	}
	// Committing one frees a physical ID.
	r.eng.Commit(0, txs[0])
	if _, err := r.eng.Begin(0, 0); err != nil {
		t.Fatalf("begin after commit: %v", err)
	}
}

func TestTruncationRequiresCommitAndPersistence(t *testing.T) {
	r := newRig(t, 64, nil)
	tx, _ := r.eng.Begin(0, 0)
	old, done, _ := r.hier.StoreWord(0, 0, dataAddr(1), 7)
	r.eng.OnStore(done, tx, dataAddr(1), old, 7)

	// Uncommitted: nothing truncatable.
	if n := r.eng.TryTruncate(1e6); n != 0 {
		t.Fatalf("truncated %d records of live tx", n)
	}
	r.eng.Commit(2000, tx) // commit-time truncation drops the header
	// Committed but the line is still dirty in cache: update pinned.
	if n := r.eng.TryTruncate(1e6); n != 0 {
		t.Fatalf("truncated %d records while line dirty", n)
	}
	// Flush the line; truncation must now drain the rest (update+commit).
	fdone, _ := r.hier.Flush(3000, 0, dataAddr(1))
	if n := r.eng.TryTruncate(fdone); n != 2 {
		t.Fatalf("truncated %d records after flush, want 2", n)
	}
	if r.eng.Log().Len() != 0 {
		t.Errorf("log not empty after truncation: %d", r.eng.Log().Len())
	}
}

func TestTruncationWaitsForInFlightWriteBack(t *testing.T) {
	r := newRig(t, 64, nil)
	tx, _ := r.eng.Begin(0, 0)
	old, done, _ := r.hier.StoreWord(0, 0, dataAddr(2), 9)
	r.eng.OnStore(done, tx, dataAddr(2), old, 9)
	r.eng.Commit(2000, tx)
	fdone, _ := r.hier.Flush(3000, 0, dataAddr(2))
	// At a time before the write-back completes, the record is pinned.
	if n := r.eng.TryTruncate(3000); n != 0 {
		t.Fatalf("truncated %d records with write-back in flight", n)
	}
	if n := r.eng.TryTruncate(fdone); n == 0 {
		t.Fatal("truncation still blocked after write-back completed")
	}
}

func TestFullLogEmergencyFlushUnwedges(t *testing.T) {
	// Tiny log: 8 slots. One committed tx whose line stays dirty pins the
	// head; the next append must trigger the targeted emergency flush.
	r := newRig(t, 8, nil)
	tx, _ := r.eng.Begin(0, 0)
	now := uint64(0)
	for i := 0; i < 6; i++ { // header + 6 updates + commit = 8 records
		old, done, _ := r.hier.StoreWord(now, 0, dataAddr(3), mem.Word(i))
		d, err := r.eng.OnStore(done, tx, dataAddr(3), old, mem.Word(i))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	if _, err := r.eng.Commit(now, tx); err != nil {
		t.Fatal(err)
	}
	// Commit truncated only the header (the line is still dirty), leaving
	// 7 live records in the 8-slot log. A new transaction needs 2 records;
	// the engine must unwedge itself with a targeted flush.
	tx2, _ := r.eng.Begin(now, 0)
	old, done, _ := r.hier.StoreWord(now, 0, dataAddr(4), 1)
	if _, err := r.eng.OnStore(done, tx2, dataAddr(4), old, 1); err != nil {
		t.Fatalf("append into full log: %v", err)
	}
	if r.eng.Stats().EmergencyFlush == 0 {
		t.Error("emergency flush never ran")
	}
}

func TestLogGrowOnUncommittedOverflow(t *testing.T) {
	growBase := nvBase + 1<<20
	r := newRig(t, 8, func(c *Config) { c.GrowFactor = 4 })
	r.eng.SetGrowRegion(func(size uint64) (mem.Addr, bool) { return growBase, true })
	tx, _ := r.eng.Begin(0, 0)
	now := uint64(0)
	// 20 updates >> 8 slots, all in one uncommitted transaction.
	for i := 0; i < 20; i++ {
		old, done, _ := r.hier.StoreWord(now, 0, dataAddr(5+i), mem.Word(i))
		d, err := r.eng.OnStore(done, tx, dataAddr(5+i), old, mem.Word(i))
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		now = d
	}
	if r.eng.Stats().Grows == 0 {
		t.Fatal("log never grew")
	}
	if _, err := r.eng.Commit(now, tx); err != nil {
		t.Fatal(err)
	}
}

func TestLogWedgedWithoutGrow(t *testing.T) {
	r := newRig(t, 8, nil) // GrowFactor 0: growing disabled
	tx, _ := r.eng.Begin(0, 0)
	now := uint64(0)
	var lastErr error
	for i := 0; i < 20 && lastErr == nil; i++ {
		old, done, _ := r.hier.StoreWord(now, 0, dataAddr(30+i), 1)
		now, lastErr = r.eng.OnStore(done, tx, dataAddr(30+i), old, 1)
	}
	if lastErr != ErrLogWedged {
		t.Fatalf("overflowing uncommitted tx: %v, want ErrLogWedged", lastErr)
	}
}

func TestUnsafeModeOverwritesWithoutStalling(t *testing.T) {
	r := newRig(t, 8, func(c *Config) { c.Unsafe = true })
	tx, _ := r.eng.Begin(0, 0)
	now := uint64(0)
	for i := 0; i < 30; i++ {
		old, done, _ := r.hier.StoreWord(now, 0, dataAddr(60+i), 1)
		d, err := r.eng.OnStore(done, tx, dataAddr(60+i), old, 1)
		if err != nil {
			t.Fatalf("unsafe store %d: %v", i, err)
		}
		now = d
	}
	if r.eng.Stats().UnsafeOverwrite == 0 {
		t.Error("unsafe mode never overwrote")
	}
	if r.eng.Stats().EmergencyFlush != 0 || r.eng.Stats().Grows != 0 {
		t.Error("unsafe mode used safe slow paths")
	}
}

func TestFwbTickScansOnSchedule(t *testing.T) {
	r := newRig(t, 1024, func(c *Config) { c.FwbScanInterval = 1000 })
	tx, _ := r.eng.Begin(0, 0)
	old, done, _ := r.hier.StoreWord(0, 0, dataAddr(100), 5)
	r.eng.OnStore(done, tx, dataAddr(100), old, 5)
	r.eng.Commit(500, tx)

	if r.eng.FwbTick(999) {
		t.Error("scan ran before interval elapsed")
	}
	if !r.eng.FwbTick(1000) {
		t.Error("scan did not run at interval")
	}
	if r.eng.FwbTick(1500) {
		t.Error("scan re-ran within the same interval")
	}
	// Second scan (FWB phase) forces the dirty line out; after it the
	// truncation drains the log.
	if !r.eng.FwbTick(2000) {
		t.Error("second scan did not run")
	}
	// Give the posted write-back time to complete, then truncate.
	r.eng.TryTruncate(1 << 30)
	if r.eng.Log().Len() != 0 {
		t.Errorf("records remain after FWB passes: %d", r.eng.Log().Len())
	}
	if !r.ctl.NVRAM().Image().Contains(dataAddr(100), 8) {
		t.Fatal("data address outside NVRAM")
	}
	if got := r.ctl.NVRAM().Image().ReadWord(dataAddr(100)); got != 5 {
		t.Errorf("FWB did not persist the store: %d", got)
	}
}

func TestFwbDisabled(t *testing.T) {
	r := newRig(t, 64, func(c *Config) { c.DisableFWB = true })
	if r.eng.FwbTick(1 << 40) {
		t.Error("disabled FWB ran a scan")
	}
}

func TestDeriveScanInterval(t *testing.T) {
	// 4 MB log of 32 B entries = 128Ki slots; avg append = 55.3 cycles per
	// entry (single-bank conservative bandwidth); safety 2 => ~3.6M
	// cycles, matching the paper's "every three million cycles ... with a
	// 4MB log" (Fig 11b).
	logCfg := nvlog.Config{Base: nvBase, SizeBytes: nvlog.MetaSize + 4<<20, Style: nvlog.UndoRedo}
	got := DeriveScanInterval(logCfg, nvCfg(), 2)
	if got < 3_000_000 || got > 4_000_000 {
		t.Errorf("scan interval for 4MB log = %d, want ~3.6M cycles", got)
	}
	// Interval scales linearly with log size.
	logCfg2 := logCfg
	logCfg2.SizeBytes = nvlog.MetaSize + 8<<20
	if got2 := DeriveScanInterval(logCfg2, nvCfg(), 2); got2 < 2*got-100 || got2 > 2*got+100 {
		t.Errorf("interval did not scale: %d vs %d", got2, got)
	}
}

func TestRecordsCarryTxIdentity(t *testing.T) {
	r := newRig(t, 64, nil)
	tx, _ := r.eng.Begin(0, 3)
	old, done, _ := r.hier.StoreWord(0, 0, dataAddr(7), 11)
	r.eng.OnStore(done, tx, dataAddr(7), old, 11)
	r.ctl.DrainBuffers(1 << 20)

	// Before commit: header + update are durable.
	meta, err := nvlog.ReadMeta(r.nv.Image(), r.eng.Log().Config().Base)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := nvlog.Scan(r.nv.Image(), r.eng.Log().Config().Base, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Kind != nvlog.KindHeader || entries[1].Kind != nvlog.KindUpdate {
		t.Fatalf("pre-commit records: %d entries", len(entries))
	}

	r.eng.Commit(1000, tx)
	r.ctl.DrainBuffers(1 << 21)
	// Commit-time truncation drops the header from the volatile head, but
	// the lazily-persisted durable head may still expose it to a scan
	// (which is safe: replaying it is a no-op). The update and commit
	// records must be present in order.
	meta, _ = nvlog.ReadMeta(r.nv.Image(), r.eng.Log().Config().Base)
	entries, _, err = nvlog.Scan(r.nv.Image(), r.eng.Log().Config().Base, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("post-commit records: %d entries", len(entries))
	}
	last := entries[len(entries)-1]
	upd := entries[len(entries)-2]
	if upd.Kind != nvlog.KindUpdate || last.Kind != nvlog.KindCommit {
		t.Fatalf("post-commit record kinds: %v", entries)
	}
	u := upd
	if u.TxID != tx.TxID() || u.ThreadID != 3 || u.Addr != dataAddr(7) || u.Redo != 11 {
		t.Errorf("update record: %+v", u)
	}
	if u.Undo != 0 {
		t.Errorf("undo value = %d, want 0 (fresh line)", u.Undo)
	}
}

func TestUndoValueCapturedFromCache(t *testing.T) {
	r := newRig(t, 64, nil)
	// Seed NVRAM with an old value; the store miss write-allocates and the
	// undo value must be the pre-store content (Figure 3(c)).
	r.nv.Image().WriteWord(dataAddr(8), 123)
	tx, _ := r.eng.Begin(0, 0)
	old, done, _ := r.hier.StoreWord(0, 0, dataAddr(8), 456)
	r.eng.OnStore(done, tx, dataAddr(8), old, 456)
	r.eng.Commit(1000, tx)
	r.ctl.DrainBuffers(1 << 20)

	meta, _ := nvlog.ReadMeta(r.nv.Image(), r.eng.Log().Config().Base)
	entries, _, _ := nvlog.Scan(r.nv.Image(), r.eng.Log().Config().Base, meta)
	var upd *nvlog.Entry
	for i := range entries {
		if entries[i].Kind == nvlog.KindUpdate {
			upd = &entries[i]
		}
	}
	if upd == nil || upd.Undo != 123 || upd.Redo != 456 {
		t.Fatalf("update record undo/redo: %+v", upd)
	}
}

// The adaptive FWB governor: emergency flushes (scans losing to the append
// rate) halve the scan interval; low occupancy relaxes it back to the law.
func TestFwbGovernorAdapts(t *testing.T) {
	r := newRig(t, 8, func(c *Config) { c.FwbScanInterval = 0 })
	base := r.eng.ScanInterval()
	if base == 0 {
		t.Fatal("no derived interval")
	}
	// Saturate the tiny log with committed-but-dirty records until the
	// emergency path fires.
	now := uint64(0)
	for i := 0; i < 6; i++ {
		tx, _ := r.eng.Begin(now, 0)
		old, done, _ := r.hier.StoreWord(now, 0, dataAddr(500+i), 1)
		if _, err := r.eng.OnStore(done, tx, dataAddr(500+i), old, 1); err != nil {
			t.Fatal(err)
		}
		d, err := r.eng.Commit(done+10, tx)
		if err != nil {
			t.Fatal(err)
		}
		now = d + 10
	}
	if r.eng.Stats().EmergencyFlush == 0 {
		t.Fatal("emergency path never fired; governor untested")
	}
	if got := r.eng.ScanInterval(); got >= base {
		t.Errorf("governor did not speed up: interval %d, base %d", got, base)
	}
	// Drain the log completely, then let scans relax the interval back.
	r.hier.FlushAllDirty(now)
	r.eng.TryTruncate(1 << 40)
	shrunk := r.eng.ScanInterval()
	tick := now + 1<<20
	for i := 0; i < 64 && r.eng.ScanInterval() < base; i++ {
		r.eng.FwbTick(tick)
		tick += r.eng.ScanInterval() + 1
	}
	if got := r.eng.ScanInterval(); got <= shrunk {
		t.Errorf("governor never relaxed: %d (shrunk %d, base %d)", got, shrunk, base)
	}
}
