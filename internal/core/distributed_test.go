package core

import (
	"testing"

	"pmemlog/internal/nvlog"
)

// newDistRig builds an engine with per-thread sub-logs.
func newDistRig(t *testing.T, numLogs int, entriesPerLog uint64) *rig {
	t.Helper()
	return newRig(t, 0, func(c *Config) {
		c.NumLogs = numLogs
		c.Log.SizeBytes = uint64(numLogs) * (nvlog.MetaSize + entriesPerLog*nvlog.FullEntrySize)
	})
}

func TestDistributedRecordsRoutedByThread(t *testing.T) {
	r := newDistRig(t, 2, 64)
	if got := len(r.eng.LogBases()); got != 2 {
		t.Fatalf("sub-logs = %d", got)
	}
	// Thread 0's transaction must land in sub-log 0, thread 1's in 1.
	for tid := uint8(0); tid < 2; tid++ {
		tx, err := r.eng.Begin(0, tid)
		if err != nil {
			t.Fatal(err)
		}
		old, done, _ := r.hier.StoreWord(0, int(tid), dataAddr(200+int(tid)), 9)
		if _, err := r.eng.OnStore(done, tx, dataAddr(200+int(tid)), old, 9); err != nil {
			t.Fatal(err)
		}
		if _, err := r.eng.Commit(1000, tx); err != nil {
			t.Fatal(err)
		}
	}
	r.ctl.DrainBuffers(1 << 20)
	for i, base := range r.eng.LogBases() {
		meta, err := nvlog.ReadMeta(r.nv.Image(), base)
		if err != nil {
			t.Fatal(err)
		}
		entries, _, err := nvlog.Scan(r.nv.Image(), base, meta)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			t.Fatalf("sub-log %d received no records", i)
		}
		for _, e := range entries {
			if int(e.ThreadID) != i {
				t.Errorf("sub-log %d holds record of thread %d", i, e.ThreadID)
			}
		}
	}
}

// One thread filling its own sub-log must not wedge the other thread.
func TestDistributedIsolatedWedging(t *testing.T) {
	r := newDistRig(t, 2, 8)
	// Thread 0: a huge uncommitted transaction (wedges its sub-log since
	// growing is disabled).
	tx0, _ := r.eng.Begin(0, 0)
	var wedged bool
	now := uint64(0)
	for i := 0; i < 20; i++ {
		old, done, _ := r.hier.StoreWord(now, 0, dataAddr(300+i), 1)
		d, err := r.eng.OnStore(done, tx0, dataAddr(300+i), old, 1)
		if err == ErrLogWedged {
			wedged = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	if !wedged {
		t.Fatal("thread 0 never wedged its sub-log")
	}
	// Thread 1 must still make progress on its own sub-log.
	tx1, err := r.eng.Begin(now, 1)
	if err != nil {
		t.Fatal(err)
	}
	old, done, _ := r.hier.StoreWord(now, 1, dataAddr(400), 2)
	if _, err := r.eng.OnStore(done, tx1, dataAddr(400), old, 2); err != nil {
		t.Fatalf("thread 1 blocked by thread 0's wedged log: %v", err)
	}
	if _, err := r.eng.Commit(now+1000, tx1); err != nil {
		t.Fatal(err)
	}
}

func TestSplitLogRegionTooSmall(t *testing.T) {
	cfg := nvlog.Config{Base: 0, SizeBytes: 256, Style: nvlog.UndoRedo}
	if _, err := splitLogRegion(cfg, 8); err == nil {
		t.Error("oversplit region accepted")
	}
}
