// Package core implements the paper's primary contribution: hardware
// undo+redo logging for persistent memory (Section III).
//
// Two mechanisms cooperate:
//
//   - HWL (Hardware Logging): every persistent store automatically emits an
//     undo+redo record. The redo value comes from the in-flight store, the
//     undo value from the hitting or write-allocated cache line — the cache
//     hierarchy hands both to OnStore. Records drain through the memory
//     controller's log buffer to the circular NVRAM log with no logging
//     instructions, no memory barriers, and no forced write-backs on the
//     critical path. Commits are "instant": a commit record is issued and
//     the transaction is done (Section III-D).
//
//   - FWB (cache Force Write-Back): a background scanner (the Figure 5 FSM
//     in the cache controllers) forces dirty persistent lines to NVRAM
//     often enough that the circular log can always truncate before it
//     wraps into live records. The scan interval derives from the log size
//     and the NVRAM write bandwidth (Section IV-D): interval =
//     capacity × avg-append-cost / safety-factor.
//
// The engine also owns the transaction-ID registers (256 active physical
// IDs, Section IV-B) and the log head/tail special registers (via nvlog),
// and implements the truncation safety rule of Section II-C: a record may
// be overwritten only after its transaction committed and its working-data
// line is durably in NVRAM (not dirty in any cache, no in-flight write).
package core

import (
	"errors"
	"fmt"

	"pmemlog/internal/cache"
	"pmemlog/internal/mem"
	"pmemlog/internal/memctl"
	"pmemlog/internal/nvlog"
	"pmemlog/internal/nvram"
	"pmemlog/internal/obs"
	"pmemlog/internal/obs/scope"
)

// Config describes the engine.
type Config struct {
	Log nvlog.Config
	// MaxActiveTx is the number of physical transaction-ID registers
	// (Section IV-B: an 8-bit ID, 256 active transactions).
	MaxActiveTx int
	// FwbScanInterval overrides the derived scan interval when nonzero.
	FwbScanInterval uint64
	// FwbSafetyFactor divides the log-fill time to get the scan interval
	// (>=1; default 2 for the two-pass FLAG->FWB state machine).
	FwbSafetyFactor float64
	// Unsafe disables the truncation safety rule: a full log simply
	// overwrites its oldest record. This models the paper's hw-rlog and
	// hw-ulog baselines, which are "hardware logging with no persistence
	// guarantee".
	Unsafe bool
	// DisableFWB turns the background scanner off (the hwl configuration,
	// which relies on clwb at commit instead).
	DisableFWB bool
	// GrowFactor scales the log region on log_grow (0 disables growing; an
	// uncommitted transaction that fills the log then returns ErrLogWedged).
	GrowFactor int
	// Resume reopens the log(s) at the pointers recovery persisted in
	// their NVRAM metadata (post-recovery reboot) instead of initializing
	// fresh ones.
	Resume bool
	// NumLogs splits the log region into this many independent circular
	// logs, records routed by thread ID — the distributed per-thread
	// alternative of Section III-F. 0 or 1 means one centralized log.
	NumLogs int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Log.Validate(); err != nil {
		return err
	}
	if c.MaxActiveTx <= 0 || c.MaxActiveTx > 256 {
		return fmt.Errorf("core: MaxActiveTx %d outside (0,256]", c.MaxActiveTx)
	}
	if c.FwbSafetyFactor < 0 {
		return fmt.Errorf("core: FwbSafetyFactor must be >= 0")
	}
	return nil
}

// LogBufferBound returns the largest persistence-safe log buffer size in
// entries (Section IV-C): a buffered record takes ~one cycle per occupied
// slot to reach the NVRAM bus, while its data store needs at least the
// full cache-hierarchy traversal (L1 + L2 hit latencies) plus the memory
// controller queue before it can reach the bus — so N must not exceed
// that minimum traversal time. With the Table II configuration this is
// the paper's 15-entry design point.
func LogBufferBound(l1Hit, l2Hit, queueCycles uint64) int {
	return int(l1Hit + l2Hit + queueCycles - 2) // -2: issue + bus grant margin
}

// DeriveScanInterval computes the FWB scan interval (in cycles) from the
// log capacity and the NVRAM's sustained append bandwidth — the paper's
// Section IV-D frequency law, reproduced as Figure 11(b).
func DeriveScanInterval(logCfg nvlog.Config, nv nvram.Config, safety float64) uint64 {
	if safety < 1 {
		safety = 2
	}
	perEntry := nv.AvgAppendCyclesPerLine() * float64(logCfg.Style.EntrySize()) / float64(mem.LineSize)
	fill := float64(logCfg.Capacity()) * perEntry
	return uint64(fill / safety)
}

// ErrLogWedged is returned when an uncommitted transaction has filled the
// log and growing is disabled or failed.
var ErrLogWedged = errors.New("core: log full of uncommitted records and cannot grow")

// ErrTxLimit is returned when all physical transaction IDs are in use.
var ErrTxLimit = errors.New("core: no free physical transaction ID")

// Tx is a live transaction handle.
type Tx struct {
	handle   uint64 // unique for the run
	physID   uint8  // the 8-bit register value
	threadID uint8
	started  bool // header record emitted (lazily, on first store)
	records  uint64

	// Per-transaction cost ledger (scope accounting): application bytes
	// stored vs log bytes written on this transaction's behalf. Folded
	// into the scope per-txn amplification mean at Commit.
	payloadBytes uint64
	logBytes     uint64
}

// TxID returns the 16-bit transaction ID written into log records.
func (t *Tx) TxID() uint16 { return uint16(t.handle) }

// Handle returns the run-unique transaction handle.
func (t *Tx) Handle() uint64 { return t.handle }

// recMeta is the volatile mirror of one live log record, used only for
// truncation decisions (hardware would derive this from bookkeeping in the
// memory controller; recovery never reads it).
type recMeta struct {
	handle uint64
	line   mem.Addr
	kind   uint8
}

// Stats aggregates engine counters.
type Stats struct {
	Begins          uint64
	Commits         uint64
	Records         uint64
	Truncated       uint64
	EmergencyFlush  uint64 // targeted flushes to unwedge the log head
	Grows           uint64
	ScansRun        uint64
	UnsafeOverwrite uint64
}

// logState is one circular log plus its volatile record mirror. With
// centralized logging there is exactly one; with distributed (per-thread)
// logging, Section III-F's alternative, there is one per hardware thread.
type logState struct {
	idx      int // position in Engine.logs (reported to the truncated hook)
	log      *nvlog.Log
	origBase mem.Addr  // region base at creation (recovery's entry point)
	records  []recMeta // deque mirroring [head, tail); live window is records[recHead:]
	recHead  int       // index of the oldest live record
	dropped  uint64    // records popped since the last log.Truncate call
	epoch    int       // completed log_grow migrations (sequence numbering era)
}

// recLen returns the number of live record mirrors.
func (ls *logState) recLen() int { return len(ls.records) - ls.recHead }

// front returns the oldest live record mirror.
func (ls *logState) front() recMeta { return ls.records[ls.recHead] }

// push appends a record mirror, compacting the dead prefix left behind by
// pop instead of re-slicing the head (records = records[1:] would leak one
// capacity slot per truncation and reallocate forever; compaction keeps
// the backing array stable, so steady-state appends allocate nothing).
func (ls *logState) push(m recMeta) {
	if ls.recHead > 0 {
		switch {
		case ls.recHead == len(ls.records):
			ls.records = ls.records[:0]
			ls.recHead = 0
		case ls.recHead > cap(ls.records)/2,
			// About to grow with a reclaimable dead prefix worth at least a
			// quarter of the array: compact instead. (A smaller prefix is
			// not worth the copy — growing amortizes better.)
			len(ls.records) == cap(ls.records) && ls.recHead >= cap(ls.records)/4:
			n := copy(ls.records, ls.records[ls.recHead:])
			ls.records = ls.records[:n]
			ls.recHead = 0
		}
	}
	ls.records = append(ls.records, m)
}

// pop removes and returns the oldest live record mirror.
func (ls *logState) pop() recMeta {
	m := ls.records[ls.recHead]
	ls.recHead++
	return m
}

// Engine is the HWL+FWB hardware.
type Engine struct {
	cfg  Config
	logs []*logState
	ctl  *memctl.Controller
	hier *cache.Hierarchy

	nextHandle uint64
	freeIDs    []uint8
	txFree     []*Tx // recycled handles (Begin reuses instead of allocating)
	active     map[uint64]*Tx
	committed  map[uint64]bool
	liveRecs   map[uint64]uint64 // handle -> live record count

	scanInterval uint64 // current (possibly adapted) scan interval
	baseInterval uint64 // the Section IV-D law's interval
	nextScan     uint64

	// growRegion allocates a fresh NVRAM region for log_grow.
	growRegion func(sizeBytes uint64) (mem.Addr, bool)
	// onTruncated fires when a committed transaction's last live record is
	// truncated, with the evidence needed to prove data durability after a
	// crash: once the region's durable head passes LastSeq (same grow
	// epoch), or any later log_grow's forward pointer became durable, the
	// truncation's enabling data write-backs provably reached NVRAM.
	onTruncated func(handle uint64, ev TruncEvidence)

	// tracer receives log and FWB events when tracing is attached. The
	// nvlog hooks fire from inside PrepareAppend/Truncate, which have no
	// clock, so traceNow carries the cycle of the current engine entry
	// point for the closures to stamp.
	tracer   *obs.Tracer
	traceNow uint64
	// span tags record-level trace events with the request span currently
	// driving the engine (see SetSpan); 0 outside any traced request.
	span uint32

	// scope is the persistence-domain cost ledger (nil = unscoped; every
	// hook is nil-receiver-safe, one branch per event).
	scope *scope.Counters

	stats Stats
}

// SetSpan sets the request span tag stamped on record-level trace events
// (log append, log-full stall) until the next SetSpan. Log-global events
// (wrap, truncation) stay untagged: they belong to the log's lifetime,
// not to whichever request happened to trigger them.
func (e *Engine) SetSpan(span uint32) { e.span = span }

// SetScope attaches (or with nil detaches) the persistence-domain cost
// ledger. The engine attributes every log byte it pushes through the
// memory controller — records, head/tail metadata persists, grow
// migrations — to a scope byte class, and folds each committed
// transaction's payload/log ratio into the per-txn amplification mean.
func (e *Engine) SetScope(c *scope.Counters) { e.scope = c }

// noteRecordBytes attributes one appended record's bytes (plus any log
// metadata written alongside it) to scope byte classes. Update records
// pay for their undo and redo words; header and commit records are pure
// bookkeeping, so their reserved value words count as header bytes.
func (e *Engine) noteRecordBytes(kind uint8, slot, total uint64) {
	meta := uint64(0)
	if total > slot {
		meta = total - slot
	}
	if kind == nvlog.KindUpdate {
		e.scope.NoteLogBytes(nvlog.RecUndoBytes, nvlog.RecRedoBytes,
			slot-nvlog.RecUndoBytes-nvlog.RecRedoBytes-nvlog.RecChecksumBytes+meta,
			nvlog.RecChecksumBytes)
		return
	}
	e.scope.NoteLogBytes(0, 0, slot-nvlog.RecChecksumBytes+meta, nvlog.RecChecksumBytes)
}

// SetTracer attaches (or with nil detaches) the obs tracer, installing
// clock-stamping closures on every sub-log. Record-level events land in
// the emitting thread's ring; log-global events (wrap-around,
// truncation) fold into the tracer's last ring.
func (e *Engine) SetTracer(t *obs.Tracer) {
	e.tracer = t
	for _, ls := range e.logs {
		if t == nil {
			ls.log.SetTrace(nil)
			continue
		}
		ls.log.SetTrace(func(k nvlog.TraceKind, arg uint64, ent *nvlog.Entry) {
			ring := -1 // machine ring
			var txid uint16
			if ent != nil {
				ring = int(ent.ThreadID)
				txid = ent.TxID
			}
			switch k {
			case nvlog.TraceAppend:
				e.tracer.EmitSpan(ring, e.traceNow, obs.KindLogAppend, txid, arg, e.span)
			case nvlog.TraceWrap:
				e.tracer.Emit(-1, e.traceNow, obs.KindLogWrap, 0, arg)
			case nvlog.TraceFull:
				e.tracer.EmitSpan(ring, e.traceNow, obs.KindLogStall, txid, arg, e.span)
			case nvlog.TraceTruncate:
				e.tracer.Emit(-1, e.traceNow, obs.KindLogTruncate, 0, arg)
			}
		})
	}
}

// New creates the engine, writing the log's initial metadata through the
// controller at cycle 0.
func New(cfg Config, ctl *memctl.Controller, hier *cache.Hierarchy) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumLogs
	if n < 1 {
		n = 1
	}
	subCfgs, err := splitLogRegion(cfg.Log, n)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg: cfg, ctl: ctl, hier: hier,
		active:    make(map[uint64]*Tx),
		committed: make(map[uint64]bool),
		liveRecs:  make(map[uint64]uint64),
	}
	var init []nvlog.Write
	for _, sub := range subCfgs {
		var log *nvlog.Log
		if cfg.Resume {
			meta, err := nvlog.ReadMeta(ctl.NVRAM().Image(), sub.Base)
			if err != nil {
				return nil, fmt.Errorf("core: resume: %w", err)
			}
			log, err = nvlog.Resume(sub, meta.Head, meta.Tail)
			if err != nil {
				return nil, err
			}
		} else {
			var ws []nvlog.Write
			log, ws, err = nvlog.New(sub)
			if err != nil {
				return nil, err
			}
			init = append(init, ws...)
		}
		e.logs = append(e.logs, &logState{idx: len(e.logs), log: log, origBase: sub.Base})
	}
	for i := cfg.MaxActiveTx - 1; i >= 0; i-- {
		e.freeIDs = append(e.freeIDs, uint8(i))
	}
	if cfg.Resume {
		// Keep transaction handles monotone across reboots: every pre-crash
		// transaction consumed at least one log sequence number, so the sum
		// of resumed tails bounds all previously issued handles.
		for _, ls := range e.logs {
			e.nextHandle += ls.log.Tail()
		}
	}
	if cfg.FwbScanInterval > 0 {
		e.scanInterval = cfg.FwbScanInterval
	} else {
		// Distributed logs are smaller, so the scan must run more often
		// (derived from one sub-log's capacity).
		e.scanInterval = DeriveScanInterval(subCfgs[0], ctl.NVRAM().Config(), cfg.FwbSafetyFactor)
	}
	e.baseInterval = e.scanInterval
	e.nextScan = e.scanInterval
	// log_create blocks until the initial metadata is durable before the
	// program starts, so it is applied directly (setup time, untracked).
	for _, w := range init {
		//pmlint:allow nobackdoor -- log_create: initial metadata is durable before any transaction exists
		e.ctl.NVRAM().Image().Write(w.Addr, w.Bytes)
	}
	return e, nil
}

// SetGrowRegion registers the allocator log_grow uses for new regions.
func (e *Engine) SetGrowRegion(fn func(sizeBytes uint64) (mem.Addr, bool)) { e.growRegion = fn }

// TruncEvidence is the durability evidence attached to a truncation.
type TruncEvidence struct {
	LogIdx  int
	Epoch   int // grow epoch the LastSeq numbering belongs to
	LastSeq uint64
	Now     uint64
}

// SetTruncatedHook registers a callback fired when a committed
// transaction's records have been fully truncated (safe modes only).
func (e *Engine) SetTruncatedHook(fn func(handle uint64, ev TruncEvidence)) {
	e.onTruncated = fn
}

// splitLogRegion divides a log region into n equal sub-regions, each a
// self-contained circular log with its own metadata line.
func splitLogRegion(cfg nvlog.Config, n int) ([]nvlog.Config, error) {
	if n == 1 {
		return []nvlog.Config{cfg}, nil
	}
	per := cfg.SizeBytes / uint64(n) &^ (mem.LineSize - 1)
	if per < nvlog.MetaSize+cfg.SlotSize() {
		return nil, fmt.Errorf("core: log region %d B too small for %d sub-logs", cfg.SizeBytes, n)
	}
	out := make([]nvlog.Config, n)
	for i := range out {
		out[i] = cfg
		out[i].Base = cfg.Base + mem.Addr(uint64(i)*per)
		out[i].SizeBytes = per
		out[i].MetaEvery = 0
	}
	return out, nil
}

// Log exposes the (first) circular log (tests, recovery wiring).
func (e *Engine) Log() *nvlog.Log { return e.logs[0].log }

// LogBases returns every sub-log's ORIGINAL base address — the durable
// entry points recovery starts from (log_grow leaves a forward pointer in
// the original region's metadata).
func (e *Engine) LogBases() []mem.Addr {
	out := make([]mem.Addr, len(e.logs))
	for i, ls := range e.logs {
		out[i] = ls.origBase
	}
	return out
}

// logOf routes a thread to its log (identity under centralized logging).
func (e *Engine) logOf(threadID uint8) *logState {
	return e.logs[int(threadID)%len(e.logs)]
}

// ScanInterval returns the FWB scan interval in cycles.
func (e *Engine) ScanInterval() uint64 { return e.scanInterval }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// LiveRecords returns the number of live records across all logs.
func (e *Engine) LiveRecords() uint64 {
	var n uint64
	for _, ls := range e.logs {
		n += ls.log.Len()
	}
	return n
}

// Begin starts a transaction, allocating a physical transaction ID
// register. Returns the handle used for all later calls.
func (e *Engine) Begin(now uint64, threadID uint8) (*Tx, error) {
	if len(e.freeIDs) == 0 {
		return nil, ErrTxLimit
	}
	id := e.freeIDs[len(e.freeIDs)-1]
	e.freeIDs = e.freeIDs[:len(e.freeIDs)-1]
	e.nextHandle++
	var tx *Tx
	if n := len(e.txFree); n > 0 {
		tx = e.txFree[n-1]
		e.txFree = e.txFree[:n-1]
		*tx = Tx{}
	} else {
		tx = &Tx{}
	}
	tx.handle, tx.physID, tx.threadID = e.nextHandle, id, threadID
	e.active[tx.handle] = tx
	e.stats.Begins++
	return tx, nil
}

// append writes one record through the log buffer, handling the full-log
// slow paths. It returns the cycle the record was accepted.
func (e *Engine) append(now uint64, ls *logState, entry nvlog.Entry, meta recMeta) (uint64, error) {
	e.traceNow = now
	for attempt := 0; ; attempt++ {
		writes, err := ls.log.PrepareAppend(entry)
		if err == nil {
			done := now
			base := ls.log.Config().Base
			var total uint64
			for i, w := range writes {
				total += uint64(len(w.Bytes))
				if d := e.ctl.AppendLog(now, w.Addr, w.Bytes); d > done {
					done = d
				}
				// A head-metadata write emitted BEFORE the record (the
				// sync-before-reuse rule) must COMPLETE before the record
				// is issued; otherwise a crash could leave the record
				// durable in a reused slot while the durable head still
				// trusts that slot's old sequence number.
				if w.Addr == base && i < len(writes)-1 {
					if d := e.ctl.DrainBuffers(now); d > now {
						now = d
						done = d
					}
				}
			}
			ls.push(meta)
			e.liveRecs[meta.handle]++
			e.stats.Records++
			e.noteRecordBytes(entry.Kind, ls.log.Config().Style.EntrySize(), total)
			return done, nil
		}
		if attempt > 2 {
			return now, ErrLogWedged
		}
		if d, err := e.unwedge(now, ls); err != nil {
			return now, err
		} else if d > now {
			now = d
			e.traceNow = now
		}
	}
}

// unwedge makes room in a full log: truncate what is safe; if the head
// record's line is still dirty, force a targeted write-back (the hardware
// emergency path implied by "forced write-backs must be faster than the
// rate at which log entries are overwritten"); if the head belongs to an
// uncommitted transaction, grow the log (Section IV-A's log_grow).
func (e *Engine) unwedge(now uint64, ls *logState) (uint64, error) {
	if e.cfg.Unsafe {
		// No persistence guarantee: overwrite the oldest record.
		if ls.recLen() > 0 {
			e.dropHead(now, ls)
			if _, err := ls.log.Truncate(1); err != nil {
				return now, err
			}
			ls.dropped = 0
			e.stats.UnsafeOverwrite++
			// The truncate metadata write is skipped: unsafe designs do not
			// maintain a durable head.
		}
		return now, nil
	}

	if n := e.truncateLog(now, ls); n > 0 {
		return now, nil
	}
	if ls.recLen() == 0 {
		return now, nil
	}
	head := ls.front()
	if e.committed[head.handle] {
		// Blocked on an unpersisted line: force it out now. If the line is
		// no longer dirty, a posted eviction is already carrying it to
		// NVRAM — wait for that write instead. Reaching this path means the
		// scan frequency is losing to the append rate; the paper requires
		// forced write-backs to outpace log overwrite, so the governor
		// halves the interval (it relaxes back toward the law when the log
		// runs at low occupancy).
		if !e.cfg.DisableFWB && e.scanInterval > e.baseInterval/8 {
			e.scanInterval /= 2
			if e.nextScan > now+e.scanInterval {
				e.nextScan = now + e.scanInterval
			}
		} else if !e.cfg.DisableFWB {
			// Scanning 8x the law still loses to the append rate: the log
			// is undersized for this workload. The paper's countermeasure
			// is to grow the log, restoring a low scan frequency
			// (Section IV-D: "we also grow the size of the log to reduce
			// the scanning frequency accordingly").
			if d, err := e.grow(now, ls); err == nil {
				return d, nil
			}
		}
		if head.kind == nvlog.KindUpdate {
			done, _ := e.hier.Flush(now, 0, head.line)
			if d := e.ctl.LineWriteDone(head.line); d > done {
				done = d
			}
			e.stats.EmergencyFlush++
			// The write-back must complete before the record is overwritten.
			if n := e.truncateLog(done, ls); n > 0 {
				return done, nil
			}
			return done, fmt.Errorf("core: emergency flush of %v did not unwedge the log", head.line)
		}
		return now, fmt.Errorf("core: non-update head record of committed tx not truncatable")
	}

	// Head record belongs to an uncommitted transaction: log_grow.
	return e.grow(now, ls)
}

func (e *Engine) grow(now uint64, ls *logState) (uint64, error) {
	if e.cfg.GrowFactor < 2 || e.growRegion == nil {
		return now, ErrLogWedged
	}
	oldCfg := ls.log.Config()
	newSize := oldCfg.SizeBytes * uint64(e.cfg.GrowFactor)
	base, ok := e.growRegion(newSize)
	if !ok {
		return now, ErrLogWedged
	}
	newCfg := oldCfg
	newCfg.Base = base
	newCfg.SizeBytes = newSize
	newCfg.MetaEvery = 0
	// Migration reads live records from the NVRAM image, so everything
	// buffered must drain first.
	if d := e.ctl.DrainBuffers(now); d > now {
		now = d
	}
	writes, err := ls.log.Grow(e.ctl.NVRAM().Image(), newCfg)
	if err != nil {
		return now, err
	}
	done := now
	for _, w := range writes {
		// Grow migration re-writes live records plus fresh metadata:
		// none of it is new undo/redo value traffic, so it is all
		// bookkeeping (header class) in the scope ledger.
		e.scope.NoteLogBytes(0, 0, uint64(len(w.Bytes)), 0)
		if d := e.ctl.AppendLog(now, w.Addr, w.Bytes); d > done {
			done = d
		}
	}
	// The new region (records + metadata) must be fully durable, and the
	// original region's forwarding pointer durable after that, BEFORE any
	// post-grow append: a crash at any point then finds either the intact
	// old region or a complete forward to the new one.
	if d := e.ctl.DrainBuffers(now); d > now {
		now = d
	}
	fw := nvlog.ForwardWrite(e.ctl.NVRAM().Image(), ls.origBase, newCfg.Base)
	e.scope.NoteLogBytes(0, 0, uint64(len(fw.Bytes)), 0)
	e.ctl.AppendLog(now, fw.Addr, fw.Bytes)
	if d := e.ctl.DrainBuffers(now); d > now {
		now = d
	}
	if done < now {
		done = now
	}
	ls.epoch++
	if len(e.logs) == 1 {
		e.cfg.Log = newCfg
	}
	e.stats.Grows++
	// A larger log allows a lower scan frequency (Section III-F).
	if e.cfg.FwbScanInterval == 0 {
		e.scanInterval = DeriveScanInterval(newCfg, e.ctl.NVRAM().Config(), e.cfg.FwbSafetyFactor)
		e.baseInterval = e.scanInterval
	}
	return done, nil
}

// OnStore is invoked by the store path for every persistent store: addr is
// the word's physical address, old the undo value extracted from the cache
// line, new the redo value from the store itself. It returns the cycle the
// HWL engine releases the store (only log-buffer backpressure can stall).
func (e *Engine) OnStore(now uint64, tx *Tx, addr mem.Addr, old, new mem.Word) (uint64, error) {
	done := now
	ls := e.logOf(tx.threadID)
	if !tx.started {
		// First update of the transaction: emit the log record header
		// (Section III-E step 1a).
		tx.started = true
		d, err := e.append(now, ls, nvlog.Entry{
			Kind: nvlog.KindHeader, TxID: tx.TxID(), ThreadID: tx.threadID,
		}, recMeta{handle: tx.handle, kind: nvlog.KindHeader})
		if err != nil {
			return now, err
		}
		done = d
		tx.logBytes += ls.log.Config().Style.EntrySize()
	}
	d, err := e.append(done, ls, nvlog.Entry{
		Kind: nvlog.KindUpdate, TxID: tx.TxID(), ThreadID: tx.threadID,
		Addr: addr.WordAligned(), Undo: old, Redo: new,
	}, recMeta{handle: tx.handle, line: addr.Line(), kind: nvlog.KindUpdate})
	if err != nil {
		return now, err
	}
	if d > done {
		done = d
	}
	tx.records++
	tx.payloadBytes += mem.WordSize
	tx.logBytes += ls.log.Config().Style.EntrySize()
	e.scope.NoteStore(tx.handle, uint64(addr.Line()), mem.WordSize)
	return done, nil
}

// Commit ends the transaction: a commit record is issued through the log
// buffer and the physical ID register is released immediately — the
// paper's instant commit (Section III-D). No cache write-back, no fence.
func (e *Engine) Commit(now uint64, tx *Tx) (uint64, error) {
	done := now
	if tx.started {
		d, err := e.append(now, e.logOf(tx.threadID), nvlog.Entry{
			Kind: nvlog.KindCommit, TxID: tx.TxID(), ThreadID: tx.threadID,
		}, recMeta{handle: tx.handle, kind: nvlog.KindCommit})
		if err != nil {
			return now, err
		}
		done = d
		tx.logBytes += e.logOf(tx.threadID).log.Config().Style.EntrySize()
	}
	e.scope.NoteTxnCommit(tx.payloadBytes, tx.logBytes)
	e.committed[tx.handle] = true
	delete(e.active, tx.handle)
	e.freeIDs = append(e.freeIDs, tx.physID)
	e.stats.Commits++
	// Opportunistic truncation keeps the transaction's log from filling.
	e.truncateLog(done, e.logOf(tx.threadID))
	// The handle is dead: recycle it for the next Begin. Callers must not
	// touch a Tx after Commit (the sim layer drops its reference).
	e.txFree = append(e.txFree, tx)
	return done, nil
}

func (e *Engine) dropHead(now uint64, ls *logState) {
	seq := ls.log.Head() + ls.dropped // sequence of the record being dropped
	ls.dropped++
	meta := ls.pop()
	e.liveRecs[meta.handle]--
	if e.liveRecs[meta.handle] == 0 {
		wasCommitted := e.committed[meta.handle]
		delete(e.liveRecs, meta.handle)
		delete(e.committed, meta.handle)
		if wasCommitted && !e.cfg.Unsafe && e.onTruncated != nil {
			e.onTruncated(meta.handle, TruncEvidence{LogIdx: ls.idx, Epoch: ls.epoch, LastSeq: seq, Now: now})
		}
	}
}

// TryTruncate advances every log's head past all records safe to
// overwrite: the record's transaction committed, and (for update records)
// its working-data line is durable — not dirty in any cache and with no
// in-flight NVRAM write (Section II-C's safety condition). Returns the
// total number of records truncated.
func (e *Engine) TryTruncate(now uint64) uint64 {
	var n uint64
	for _, ls := range e.logs {
		n += e.truncateLog(now, ls)
	}
	return n
}

// truncateLog applies the truncation safety rule to one log.
func (e *Engine) truncateLog(now uint64, ls *logState) uint64 {
	e.traceNow = now
	var n uint64
	for ls.recLen() > 0 {
		meta := ls.front()
		if !e.committed[meta.handle] {
			break
		}
		if meta.kind == nvlog.KindUpdate {
			if e.hier.DirtyAnywhere(meta.line) || e.ctl.InFlightLine(meta.line, now) {
				break
			}
		}
		e.dropHead(now, ls)
		n++
	}
	if n > 0 {
		writes, err := ls.log.Truncate(n)
		if err != nil {
			panic(fmt.Sprintf("core: truncate bookkeeping diverged: %v", err))
		}
		ls.dropped = 0
		for _, w := range writes {
			// Truncation head persists are log bookkeeping: header class.
			e.scope.NoteLogBytes(0, 0, uint64(len(w.Bytes)), 0)
			e.ctl.AppendLog(now, w.Addr, w.Bytes)
		}
		e.stats.Truncated += n
	}
	return n
}

// FwbTick runs the FWB scanner if its interval has elapsed. The simulator
// calls this with the global time; returns true when a scan ran.
func (e *Engine) FwbTick(now uint64) bool {
	if e.cfg.DisableFWB || e.scanInterval == 0 || now < e.nextScan {
		return false
	}
	// Governor relax: with every log comfortably below half full, drift
	// back toward the Section IV-D law's interval.
	if e.scanInterval < e.baseInterval {
		relaxed := true
		for _, ls := range e.logs {
			if ls.log.Occupancy() > 0.5 {
				relaxed = false
				break
			}
		}
		if relaxed {
			e.scanInterval += e.scanInterval / 4
			if e.scanInterval > e.baseInterval {
				e.scanInterval = e.baseInterval
			}
		}
	}
	e.hier.FwbScan(now)
	e.stats.ScansRun++
	for e.nextScan <= now {
		e.nextScan += e.scanInterval
	}
	// Freshly persisted lines unlock truncation.
	e.TryTruncate(now)
	return true
}

// ActiveTransactions returns the number of live (uncommitted) transactions.
func (e *Engine) ActiveTransactions() int { return len(e.active) }
