// Package dram models the volatile DRAM tier of the hybrid DRAM+NVRAM main
// memory (paper Section III-A). The paper's evaluation focuses on
// persistent-data accesses to NVRAM and does not report DRAM numbers, so
// this model is intentionally small: fixed-latency banked access with
// byte-traffic counters. It exists so that the memory controller can route
// volatile addresses somewhere real (e.g. allocator scratch space) and so
// that a hybrid configuration is representable.
package dram

import (
	"fmt"

	"pmemlog/internal/mem"
)

// Config describes the DRAM device. Latency is in CPU cycles.
type Config struct {
	Banks         int
	AccessCycles  uint64 // uniform access latency (row model omitted)
	BusCyclesLine uint64 // data-bus occupancy per 64 B transfer
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("dram: Banks must be positive, got %d", c.Banks)
	}
	if c.AccessCycles == 0 {
		return fmt.Errorf("dram: AccessCycles must be positive")
	}
	return nil
}

// Stats aggregates device counters.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
}

// Device is a DRAM DIMM with a functional byte image.
type Device struct {
	cfg      Config
	image    *mem.Physical
	bankFree []uint64
	busFree  uint64
	stats    Stats
}

// New creates a DRAM device backed by a fresh image at [base, base+size).
func New(cfg Config, base mem.Addr, size uint64) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		cfg:      cfg,
		image:    mem.NewPhysical(base, size),
		bankFree: make([]uint64, cfg.Banks),
	}, nil
}

// Image exposes the functional byte store. DRAM contents do NOT survive a
// simulated crash; the simulator zeroes the image on power loss.
func (d *Device) Image() *mem.Physical { return d.image }

// Stats returns a copy of the counters.
func (d *Device) Stats() Stats { return d.stats }

// Access performs timing for one line-granular access starting no earlier
// than now, returning the completion cycle.
func (d *Device) Access(now uint64, addr mem.Addr, write bool, bytes int) uint64 {
	bank := int(uint64(addr.Line()) / mem.LineSize % uint64(d.cfg.Banks))
	start := now
	if d.bankFree[bank] > start {
		start = d.bankFree[bank]
	}
	if d.busFree > start {
		start = d.busFree
	}
	done := start + d.cfg.AccessCycles
	d.bankFree[bank] = done
	d.busFree = start + d.cfg.BusCyclesLine
	if write {
		d.stats.Writes++
		d.stats.BytesWritten += uint64(bytes)
	} else {
		d.stats.Reads++
		d.stats.BytesRead += uint64(bytes)
	}
	return done
}

// PowerLoss clears the volatile contents (simulated crash).
func (d *Device) PowerLoss() {
	d.image = mem.NewPhysical(d.image.Base(), d.image.Size())
	d.bankFree = make([]uint64, d.cfg.Banks)
	d.busFree = 0
}
