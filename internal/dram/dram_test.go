package dram

import (
	"testing"

	"pmemlog/internal/mem"
)

func mustDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New(Config{Banks: 8, AccessCycles: 125, BusCyclesLine: 5}, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidate(t *testing.T) {
	if _, err := New(Config{Banks: 0, AccessCycles: 1}, 0, 1024); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := New(Config{Banks: 1, AccessCycles: 0}, 0, 1024); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestAccessTimingAndStats(t *testing.T) {
	d := mustDevice(t)
	done := d.Access(10, 0, false, 64)
	if done != 135 {
		t.Errorf("read done = %d, want 135", done)
	}
	d.Access(done, 64, true, 64)
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.BytesRead != 64 || st.BytesWritten != 64 {
		t.Errorf("stats: %+v", st)
	}
}

func TestBankContention(t *testing.T) {
	d := mustDevice(t)
	// Lines 0 and 8 share bank 0 (8 banks, line interleave).
	d1 := d.Access(0, 0, false, 64)
	d2 := d.Access(0, mem.Addr(8*64), false, 64)
	if d2 < d1+125 {
		t.Errorf("same-bank accesses not serialized: %d %d", d1, d2)
	}
}

func TestBankParallelism(t *testing.T) {
	d := mustDevice(t)
	d1 := d.Access(0, 0, false, 64)  // bank 0
	d2 := d.Access(0, 64, false, 64) // bank 1: only the bus (5 cyc) delays it
	if d2 > d1+5 {
		t.Errorf("bank-parallel access over-serialized: %d vs %d", d2, d1)
	}
}

func TestPowerLossClearsContents(t *testing.T) {
	d := mustDevice(t)
	d.Image().WriteWord(0x100, 42)
	d.PowerLoss()
	if got := d.Image().ReadWord(0x100); got != 0 {
		t.Errorf("DRAM survived power loss: %d", got)
	}
}
