package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pmemlog/internal/chaos"
	"pmemlog/internal/obs"
)

// DumpVersion is the current dump file format version. Loaders reject
// versions they do not know: the dump is forensic evidence, and a
// misparsed field is worse than a refusal.
const DumpVersion = 1

// Event is one obs trace record in dump form (kind spelled out so dumps
// stay readable without the Kind enum's numbering).
type Event struct {
	TS   uint64 `json:"ts"`
	Kind string `json:"kind"`
	Ring int    `json:"ring"`
	TxID uint16 `json:"txid"`
	Arg  uint64 `json:"arg"`
	Span uint32 `json:"span,omitempty"`
}

// ShardState is one shard's pipeline pressure at dump time.
type ShardState struct {
	Shard     int      `json:"shard"`
	QueueLen  int      `json:"queue_len"`
	QueueCap  int      `json:"queue_cap"`
	LogHead   uint64   `json:"log_head"`
	LogTail   uint64   `json:"log_tail"`
	LogCap    uint64   `json:"log_cap"`
	LogBases  []uint64 `json:"log_bases"` // every log region's base address
	ImagePath string   `json:"image_path,omitempty"`
}

// Pass reports which circular-log pass the tail is on (the paper's
// wrap counter: sequence / capacity).
func (s *ShardState) Pass() uint64 {
	if s.LogCap == 0 {
		return 0
	}
	return s.LogTail / s.LogCap
}

// Occupancy reports log fullness in [0,1].
func (s *ShardState) Occupancy() float64 {
	if s.LogCap == 0 {
		return 0
	}
	return float64(s.LogTail-s.LogHead) / float64(s.LogCap)
}

// Dump is the versioned black-box snapshot written on panic, SIGTERM,
// or an explicit WriteFlightDump. Everything pmdoctor needs to explain
// a dead process, in one JSON document.
type Dump struct {
	Version int    `json:"version"`
	Reason  string `json:"reason"` // "panic", "sigterm", "manual", ...

	CapturedAtNS int64  `json:"captured_at_ns"` // unix nanoseconds
	UptimeNS     int64  `json:"uptime_ns"`
	Addr         string `json:"addr,omitempty"`
	Mode         string `json:"mode,omitempty"`
	Shards       int    `json:"shards"`

	RingNames []string       `json:"ring_names,omitempty"`
	RingStats []obs.RingStat `json:"ring_stats,omitempty"`
	Events    []Event        `json:"events"`

	// Metrics is the registry's Prometheus text exposition. Registry
	// handles are plain atomics, so rendering it is safe even when the
	// shards themselves are wedged or mid-panic.
	Metrics string `json:"metrics,omitempty"`

	ShardStates []ShardState `json:"shard_states"`

	InFlight []SpanSnapshot `json:"in_flight"`
	Slow     []SpanSnapshot `json:"slow"`

	SpanDrops    uint64 `json:"span_drops"`    // span table full
	SlowCaptured uint64 `json:"slow_captured"` // total slow captures

	// Chaos is the fault-injection ledger when the run was chaos-armed:
	// the seed and every injected fault, so a crash dump carries the
	// exact failure schedule that produced it (reproduce with -seed).
	Chaos *chaos.Ledger `json:"chaos,omitempty"`
}

// ConvertEvents translates obs snapshot records into dump form.
func ConvertEvents(evs []obs.Event) []Event {
	out := make([]Event, len(evs))
	for i, e := range evs {
		out[i] = Event{
			TS:   e.TS,
			Kind: e.Kind.String(),
			Ring: int(e.Ring),
			TxID: e.TxID,
			Arg:  e.Arg,
			Span: e.Span,
		}
	}
	return out
}

// WriteDump atomically persists the dump: marshal, write to a temp file
// in the target directory, fsync, rename. A dump races a dying process,
// so a reader must never observe a half-written file.
func WriteDump(path string, d *Dump) error {
	d.Version = DumpVersion
	data, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return fmt.Errorf("flight: marshal dump: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".flight-dump-*")
	if err != nil {
		return fmt.Errorf("flight: dump temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("flight: write dump: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("flight: sync dump: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("flight: close dump: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("flight: publish dump: %w", err)
	}
	return nil
}

// LoadDump reads and validates a dump file.
func LoadDump(path string) (*Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("flight: parse dump %s: %w", path, err)
	}
	if d.Version != DumpVersion {
		return nil, fmt.Errorf("flight: dump %s has version %d, this build reads %d", path, d.Version, DumpVersion)
	}
	return &d, nil
}

// Timeline extracts the causal timeline of one span: every trace event
// whose tag matches, in timestamp order (the dump's event list is
// already sorted by the obs snapshot).
func (d *Dump) Timeline(spanID uint64) []Event {
	tag := SpanTag(spanID)
	if tag == 0 {
		return nil
	}
	var out []Event
	for _, e := range d.Events {
		if e.Span == tag {
			out = append(out, e)
		}
	}
	return out
}

// FindSpan returns the in-flight or slow snapshot with the given ID,
// nil when absent.
func (d *Dump) FindSpan(spanID uint64) *SpanSnapshot {
	for i := range d.InFlight {
		if d.InFlight[i].ID == spanID {
			return &d.InFlight[i]
		}
	}
	for i := range d.Slow {
		if d.Slow[i].ID == spanID {
			return &d.Slow[i]
		}
	}
	return nil
}
