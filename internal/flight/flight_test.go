package flight

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pmemlog/internal/obs"
)

func TestSpanTagNonZeroForMintedSpans(t *testing.T) {
	// Client spans are connID<<32|seq with connID >= 1; the fold must
	// stay nonzero for them (0 is the "untraced" sentinel) except in the
	// connID==seq collision, which real mints hit only when a connection
	// somehow issues a seq equal to its own ID — tolerated, not fatal.
	if SpanTag(0) != 0 {
		t.Fatal("SpanTag(0) must be 0")
	}
	if SpanTag(1<<32|7) == 0 {
		t.Fatal("minted span folded to 0")
	}
	if SpanTag(1<<32|7) == SpanTag(2<<32|7) {
		t.Fatal("fold lost the connection half")
	}
}

func TestTableLifecycle(t *testing.T) {
	tb := NewTable(2, 4, 1000)
	sp := tb.Acquire(1<<32|5, 0x02, 100)
	if sp == nil {
		t.Fatal("Acquire failed on empty table")
	}
	sp.SetShard(3)
	sp.Mark(StageEnqueue, 110)
	sp.Mark(StageApply, 120)
	sp.SetTxn(77, 1000, 2000)
	sp.SetLogWindow(10, 13)

	if got := tb.InFlightCount(); got != 1 {
		t.Fatalf("InFlightCount = %d, want 1", got)
	}
	inflight := tb.InFlight()
	if len(inflight) != 1 {
		t.Fatalf("InFlight returned %d spans, want 1", len(inflight))
	}
	s := inflight[0]
	if s.ID != 1<<32|5 || s.Shard != 3 || s.TxID != 77 ||
		s.RecvNS != 100 || s.EnqueueNS != 110 || s.ApplyNS != 120 ||
		s.TxBeginCyc != 1000 || s.TxCommitCyc != 2000 ||
		s.LogFirst != 10 || s.LogLast != 13 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	if s.Status != -1 || s.AckNS != 0 {
		t.Fatalf("unanswered span has status %d ack %d", s.Status, s.AckNS)
	}

	// Finish above the threshold (recv 100 → ack 2100 ≥ 1000ns): the
	// snapshot lands in the slow ring and the slot recycles.
	tb.Finish(sp, 0x00, 2100)
	if got := tb.InFlightCount(); got != 0 {
		t.Fatalf("InFlightCount after Finish = %d, want 0", got)
	}
	slow := tb.Slow()
	if len(slow) != 1 || slow[0].Status != 0 || slow[0].AckNS != 2100 {
		t.Fatalf("slow capture: %+v", slow)
	}

	// A fast request (latency < threshold) is not captured.
	sp = tb.Acquire(1<<32|6, 0x01, 5000)
	tb.Finish(sp, 0x00, 5100)
	if got := tb.SlowCaptured(); got != 1 {
		t.Fatalf("SlowCaptured = %d, want 1", got)
	}
}

func TestTableFullSheds(t *testing.T) {
	tb := NewTable(1, 0, 0)
	a := tb.Acquire(1<<32|1, 0x01, 1)
	if a == nil {
		t.Fatal("first Acquire failed")
	}
	if b := tb.Acquire(1<<32|2, 0x01, 2); b != nil {
		t.Fatal("Acquire succeeded on a full table")
	}
	if tb.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", tb.Drops())
	}
	tb.Finish(a, 0, 3)
	if c := tb.Acquire(1<<32|3, 0x01, 4); c == nil {
		t.Fatal("Acquire failed after slot recycled")
	}
}

func TestTableHotPathZeroAlloc(t *testing.T) {
	tb := NewTable(8, 4, 1<<40) // threshold unreachably high: slow path off
	if n := testing.AllocsPerRun(1000, func() {
		sp := tb.Acquire(1<<32|9, 0x02, 100)
		sp.SetShard(0)
		sp.Mark(StageEnqueue, 110)
		sp.Mark(StageApply, 120)
		sp.SetTxn(7, 1, 2)
		sp.SetLogWindow(3, 4)
		tb.Finish(sp, 0, 130)
	}); n != 0 {
		t.Fatalf("span lifecycle allocates %v bytes/op, want 0", n)
	}
	// The slow-capture path must not allocate either: it copies into the
	// preallocated ring.
	tb2 := NewTable(8, 4, 1)
	if n := testing.AllocsPerRun(1000, func() {
		sp := tb2.Acquire(1<<32|9, 0x02, 100)
		tb2.Finish(sp, 0, 10000)
	}); n != 0 {
		t.Fatalf("slow capture allocates %v bytes/op, want 0", n)
	}
}

func TestDumpRoundTripAndTimeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	spanID := uint64(3<<32 | 41)
	tag := SpanTag(spanID)
	d := &Dump{
		Reason:       "manual",
		CapturedAtNS: 12345,
		UptimeNS:     999,
		Addr:         "127.0.0.1:0",
		Mode:         "hw-undo-redo",
		Shards:       2,
		RingNames:    []string{"shard 0", "shard 1", "network"},
		RingStats:    []obs.RingStat{{Emitted: 5, Dropped: 0}, {}, {Emitted: 9, Dropped: 2}},
		Events: []Event{
			{TS: 1, Kind: "srv-recv", Ring: 2, Arg: 7, Span: tag},
			{TS: 2, Kind: "srv-enqueue", Ring: 0, Arg: 7, Span: tag},
			{TS: 3, Kind: "tx-begin", Ring: 0, TxID: 9, Span: tag},
			{TS: 4, Kind: "log-append", Ring: 0, TxID: 9, Arg: 100, Span: tag},
			{TS: 5, Kind: "log-wrap", Ring: 0, Arg: 1}, // untagged: not ours
			{TS: 6, Kind: "srv-recv", Ring: 2, Arg: 8, Span: tag + 1},
		},
		ShardStates: []ShardState{
			{Shard: 0, QueueLen: 3, QueueCap: 64, LogHead: 10, LogTail: 140, LogCap: 128, LogBases: []uint64{4096}},
			{Shard: 1, QueueLen: 0, QueueCap: 64, LogCap: 128, LogBases: []uint64{4096}},
		},
		InFlight: []SpanSnapshot{{ID: spanID, Op: 0x02, Shard: 0, Status: -1, TxID: 9, RecvNS: 1}},
	}
	if err := WriteDump(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != DumpVersion || got.Reason != "manual" || got.Shards != 2 ||
		len(got.Events) != 6 || len(got.InFlight) != 1 || len(got.ShardStates) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	tl := got.Timeline(spanID)
	if len(tl) != 4 {
		t.Fatalf("timeline has %d events, want 4: %+v", len(tl), tl)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i-1].TS > tl[i].TS {
			t.Fatal("timeline out of order")
		}
	}
	if got.Timeline(0) != nil {
		t.Fatal("span 0 must have no timeline (untraced sentinel)")
	}
	if sp := got.FindSpan(spanID); sp == nil || sp.TxID != 9 {
		t.Fatalf("FindSpan: %+v", sp)
	}
	if got.FindSpan(12345) != nil {
		t.Fatal("FindSpan found a ghost")
	}

	// Wrap-pressure helpers: tail 140 on a 128-record log is pass 1,
	// occupancy (140-10)/128.
	st := &got.ShardStates[0]
	if st.Pass() != 1 {
		t.Fatalf("Pass = %d, want 1", st.Pass())
	}
	if occ := st.Occupancy(); occ < 1.0 || occ > 1.02 {
		t.Fatalf("Occupancy = %v", occ)
	}

	// Version gate: an unknown version must refuse to load.
	d.Version = 99
	raw := *d
	raw.Version = 99
	bad := filepath.Join(dir, "bad.json")
	if err := writeRaw(bad, &raw); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDump(bad); err == nil {
		t.Fatal("LoadDump accepted unknown version")
	}
}

// writeRaw writes a dump bypassing WriteDump's version stamping.
func writeRaw(path string, d *Dump) error {
	data, err := json.Marshal(d)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// TestStageDurations pins the per-stage latency decomposition: known
// marks yield exact durations, missing marks report -1, and a fully
// marked span's stages sum exactly to its recv→ack latency.
func TestStageDurations(t *testing.T) {
	full := SpanSnapshot{RecvNS: 100, EnqueueNS: 110, ApplyNS: 150, FwbNS: 180, DurableNS: 400, AckNS: 420}
	var d [NumLatStages]int64
	full.StageDurations(&d)
	want := [NumLatStages]int64{10, 40, 30, 220, 20}
	if d != want {
		t.Fatalf("StageDurations = %v, want %v", d, want)
	}
	var sum int64
	for _, v := range d {
		sum += v
	}
	if e2e := full.AckNS - full.RecvNS; sum != e2e {
		t.Fatalf("stage sum %d != e2e %d", sum, e2e)
	}
	// An inline-answered request never reaches the shard stages.
	inline := SpanSnapshot{RecvNS: 100, AckNS: 105}
	inline.StageDurations(&d)
	if d != [NumLatStages]int64{-1, -1, -1, -1, -1} {
		t.Fatalf("inline StageDurations = %v, want all -1", d)
	}
	// Out-of-order marks (torn snapshot) are unknown, not negative.
	torn := SpanSnapshot{RecvNS: 200, EnqueueNS: 150, ApplyNS: 220, FwbNS: 230, DurableNS: 240, AckNS: 250}
	torn.StageDurations(&d)
	if d[LatRoute] != -1 || d[LatQueue] != 70 {
		t.Fatalf("torn StageDurations = %v", d)
	}
	for i := 0; i < NumLatStages; i++ {
		if LatStageName(i) == "unknown" {
			t.Fatalf("stage %d unnamed", i)
		}
	}
	if LatStageName(-1) != "unknown" || LatStageName(NumLatStages) != "unknown" {
		t.Fatal("out-of-range stage names must be unknown")
	}
}
