// Package flight is the crash flight recorder: end-to-end request
// spans, an always-on in-flight span table, and the versioned black-box
// dump that pmdoctor reads after a crash.
//
// The paper's argument is about ordering across a pipeline — log
// records must leave the core before cached data, FWB must beat log
// wrap-around — and a request that dies mid-pipeline is exactly the
// evidence recovery reasons about. A span follows one request through
// every hop (conn read → shard queue → store apply → txn begin/commit →
// nvlog append → ack), annotating the hops' existing obs events with a
// 32-bit tag so one request's causal timeline can be reassembled from
// the rings, and parking the request's own stage timestamps in a
// preallocated table that a dump snapshots even while traffic is live.
//
// Cost contract: everything a request touches per hop is an atomic
// store on a *Span the request already holds — no locks, no maps, no
// allocation — because the span hooks sit inside the same shard apply
// loop whose 0 allocs/op the perf tests guard.
package flight

import (
	"sync"
	"sync/atomic"
)

// SpanTag folds a 64-bit wire span ID (connection counter << 32 |
// request seq) into the 32-bit tag stamped on obs events. A plain XOR
// fold would collide systematically between neighboring connections
// (conn^seq repeats whenever two connections' IDs differ in the same
// low bits as their seqs — conn 4/seq 96 and conn 5/seq 97 share a
// tag), so the ID is mixed with a Fibonacci-hash multiply first and
// the high half taken: concurrently-live spans then collide only with
// birthday probability (~2^-32 per pair). Tag 0 is the untraced
// sentinel; a real span that happens to hash there is nudged to 1,
// which stays consistent because every producer and consumer derives
// tags through this one function.
func SpanTag(span uint64) uint32 {
	if span == 0 {
		return 0
	}
	t := uint32((span * 0x9e3779b97f4a7c15) >> 32)
	if t == 0 {
		return 1
	}
	return t
}

// Stage indices for a span's per-hop timestamps, in pipeline order.
// FWB and Durable are batch-granular: a shard applies a whole batch,
// then pays the forced-write-back drain and image persist once for all
// of it, so every spanned request in the batch shares those two marks —
// exactly the attribution the paper's no-force argument needs (commit
// is instant; durability cost is the decoupled FWB stage).
const (
	StageRecv    = iota // conn reader decoded the request
	StageEnqueue        // routed into the shard's bounded queue
	StageApply          // shard apply began executing it
	StageFWB            // batch applies done; FWB drain + image persist starting
	StageDurable        // batch durable (or determined read-only, no persist)
	StageAck            // response handed to the conn writer
	numStages
)

var stageNames = [numStages]string{"recv", "enqueue", "apply", "fwb", "durable", "ack"}

// StageName labels a stage index ("recv", "enqueue", "apply", "fwb",
// "durable", "ack").
func StageName(i int) string {
	if i < 0 || i >= numStages {
		return "unknown"
	}
	return stageNames[i]
}

// NumStages is the stage count (len of a full per-stage vector).
const NumStages = numStages

// Span is one in-flight request's flight record. Every field is atomic:
// the owning request's goroutines (conn reader → shard → conn writer)
// store into it hand-off style, while a concurrent Dump may load any
// field at any time — a torn multi-field view is acceptable for a
// diagnostic snapshot, but each individual load must be race-clean.
type Span struct {
	state  atomic.Uint32 // 0 free, 1 active
	id     atomic.Uint64 // wire span ID
	op     atomic.Uint32 // request opcode
	shard  atomic.Int32  // owning shard, -1 until routed
	status atomic.Int32  // response status, -1 until answered
	txid   atomic.Uint32 // simulator txid of the request's (last) txn

	stageNS [numStages]atomic.Int64 // ns since server start, 0 = not reached

	txBegin  atomic.Uint64 // cycles, machine-local clock
	txCommit atomic.Uint64
	logFirst atomic.Uint64 // log tail sequence before apply
	logLast  atomic.Uint64 // log tail sequence after apply
}

// Begin arms the span for a new request at StageRecv.
func (sp *Span) Begin(id uint64, op byte, recvNS int64) {
	sp.id.Store(id)
	sp.op.Store(uint32(op))
	sp.shard.Store(-1)
	sp.status.Store(-1)
	sp.txid.Store(0)
	for i := 1; i < numStages; i++ {
		sp.stageNS[i].Store(0)
	}
	sp.txBegin.Store(0)
	sp.txCommit.Store(0)
	sp.logFirst.Store(0)
	sp.logLast.Store(0)
	sp.stageNS[StageRecv].Store(recvNS)
	sp.state.Store(1)
}

// ID reports the wire span ID.
func (sp *Span) ID() uint64 { return sp.id.Load() }

// Tag reports the 32-bit obs annotation for this span.
func (sp *Span) Tag() uint32 { return SpanTag(sp.id.Load()) }

// Mark records the given stage's timestamp.
func (sp *Span) Mark(stage int, ns int64) { sp.stageNS[stage].Store(ns) }

// StageNS reads one stage's timestamp (0 = not reached). The pulse
// collector uses it to fold a finishing span's timings into the
// windowed stage histograms without snapshotting the whole span.
func (sp *Span) StageNS(stage int) int64 {
	if stage < 0 || stage >= numStages {
		return 0
	}
	return sp.stageNS[stage].Load()
}

// SetShard records the owning shard once routed.
func (sp *Span) SetShard(shard int) { sp.shard.Store(int32(shard)) }

// SetStatus records the response status byte.
func (sp *Span) SetStatus(status byte) { sp.status.Store(int32(status)) }

// SetTxn attributes the machine transaction the request ran as.
func (sp *Span) SetTxn(txid uint16, beginCyc, commitCyc uint64) {
	sp.txid.Store(uint32(txid))
	sp.txBegin.Store(beginCyc)
	sp.txCommit.Store(commitCyc)
}

// SetLogWindow records the log tail sequence straddling the apply, so a
// dump shows which records the request appended.
func (sp *Span) SetLogWindow(first, last uint64) {
	sp.logFirst.Store(first)
	sp.logLast.Store(last)
}

// SpanSnapshot is one span's dump/export form.
type SpanSnapshot struct {
	ID     uint64 `json:"id"`
	Op     uint8  `json:"op"`
	Shard  int    `json:"shard"`  // -1 = never routed
	Status int    `json:"status"` // -1 = never answered
	TxID   uint16 `json:"txid"`   // 0 = no machine txn attributed

	RecvNS    int64 `json:"recv_ns"`
	EnqueueNS int64 `json:"enqueue_ns"`
	ApplyNS   int64 `json:"apply_ns"`
	FwbNS     int64 `json:"fwb_ns"`     // batch applies done, persist starting
	DurableNS int64 `json:"durable_ns"` // batch durability point reached
	AckNS     int64 `json:"ack_ns"`

	TxBeginCyc  uint64 `json:"tx_begin_cyc"`
	TxCommitCyc uint64 `json:"tx_commit_cyc"`
	LogFirst    uint64 `json:"log_first"`
	LogLast     uint64 `json:"log_last"`
}

// Tag reports the snapshot's 32-bit obs annotation.
func (s *SpanSnapshot) Tag() uint32 { return SpanTag(s.ID) }

// LatencyStage names the per-stage latency decomposition of a finished
// span, in pipeline order (the waterfall pmtop draws).
const (
	LatRoute = iota // recv → enqueue: decode + shard routing
	LatQueue        // enqueue → apply: shard queue wait
	LatApply        // apply → fwb: machine txns + log appends (batch tail)
	LatFWB          // fwb → durable: FWB drain + image persist
	LatAck          // durable → ack: response writeback hand-off
	NumLatStages
)

var latStageNames = [NumLatStages]string{"route", "queue", "apply", "fwb", "ack"}

// LatStageName labels a latency-stage index.
func LatStageName(i int) string {
	if i < 0 || i >= NumLatStages {
		return "unknown"
	}
	return latStageNames[i]
}

// StageDurations decomposes the snapshot's marks into per-stage
// latencies (nanoseconds). A stage whose bracketing marks are missing
// or out of order reports -1 (unknown) — an inline-answered request,
// for example, never reaches the shard stages. The sum of the known
// stages of a fully-marked span equals its recv→ack latency exactly,
// which is what lets windowed per-stage quantiles be read as shares of
// the end-to-end tail.
func (s *SpanSnapshot) StageDurations(out *[NumLatStages]int64) {
	marks := [NumLatStages + 1]int64{s.RecvNS, s.EnqueueNS, s.ApplyNS, s.FwbNS, s.DurableNS, s.AckNS}
	for i := 0; i < NumLatStages; i++ {
		lo, hi := marks[i], marks[i+1]
		if lo <= 0 || hi <= 0 || hi < lo {
			out[i] = -1
			continue
		}
		out[i] = hi - lo
	}
}

// SnapshotInto copies the span's current state (possibly torn across
// fields, individually race-clean) without allocating. Exported for
// the pulse exemplar capture, which snapshots a finishing span before
// Finish recycles the slot.
func (sp *Span) SnapshotInto(out *SpanSnapshot) {
	out.ID = sp.id.Load()
	out.Op = uint8(sp.op.Load())
	out.Shard = int(sp.shard.Load())
	out.Status = int(sp.status.Load())
	out.TxID = uint16(sp.txid.Load())
	out.RecvNS = sp.stageNS[StageRecv].Load()
	out.EnqueueNS = sp.stageNS[StageEnqueue].Load()
	out.ApplyNS = sp.stageNS[StageApply].Load()
	out.FwbNS = sp.stageNS[StageFWB].Load()
	out.DurableNS = sp.stageNS[StageDurable].Load()
	out.AckNS = sp.stageNS[StageAck].Load()
	out.TxBeginCyc = sp.txBegin.Load()
	out.TxCommitCyc = sp.txCommit.Load()
	out.LogFirst = sp.logFirst.Load()
	out.LogLast = sp.logLast.Load()
}

// Table is the preallocated in-flight span table plus the slow-request
// capture ring. Acquire/Finish are the request path (allocation-free);
// InFlight/Slow are the dump path and may run concurrently.
type Table struct {
	slots []Span
	free  chan *Span

	// thresholdNS gates tail sampling: a request whose recv→ack latency
	// meets it has its full snapshot retained in the slow ring.
	thresholdNS int64

	slowMu  sync.Mutex
	slow    []SpanSnapshot // fixed-capacity circular buffer
	slowPos uint64         // total slow captures ever taken

	drops atomic.Uint64 // Acquire calls refused because the table was full
}

// NewTable builds a table of capacity in-flight spans and a slow-capture
// ring of slowCap snapshots for requests at or above thresholdNS
// recv→ack latency (0 disables slow capture).
func NewTable(capacity, slowCap int, thresholdNS int64) *Table {
	if capacity < 1 {
		capacity = 1
	}
	if slowCap < 0 {
		slowCap = 0
	}
	t := &Table{
		slots:       make([]Span, capacity),
		free:        make(chan *Span, capacity),
		thresholdNS: thresholdNS,
		slow:        make([]SpanSnapshot, slowCap),
	}
	for i := range t.slots {
		t.free <- &t.slots[i]
	}
	return t
}

// Acquire claims a free span slot, arming it for a request. Returns nil
// when the table is full — the request then simply flies unrecorded
// (its obs events still carry the tag); a full table must shed load,
// not block the conn reader.
func (t *Table) Acquire(id uint64, op byte, recvNS int64) *Span {
	select {
	case sp := <-t.free:
		sp.Begin(id, op, recvNS)
		return sp
	default:
		t.drops.Add(1)
		return nil
	}
}

// Finish completes a span at ack time: records status and ack
// timestamp, captures the snapshot into the slow ring when the request
// ran long enough, and recycles the slot. sp must not be touched after.
func (t *Table) Finish(sp *Span, status byte, ackNS int64) {
	if sp == nil {
		return
	}
	sp.SetStatus(status)
	sp.Mark(StageAck, ackNS)
	if t.thresholdNS > 0 && len(t.slow) > 0 {
		if lat := ackNS - sp.stageNS[StageRecv].Load(); lat >= t.thresholdNS {
			t.slowMu.Lock()
			sp.SnapshotInto(&t.slow[t.slowPos%uint64(len(t.slow))])
			t.slowPos++
			t.slowMu.Unlock()
		}
	}
	sp.state.Store(0)
	t.free <- sp
}

// Drops reports how many requests could not be recorded (table full).
func (t *Table) Drops() uint64 { return t.drops.Load() }

// InFlightCount reports the number of active spans.
func (t *Table) InFlightCount() int { return len(t.slots) - len(t.free) }

// InFlight snapshots every active span. Safe to race with the request
// path; a span finishing mid-snapshot may appear with its final state
// or not at all.
func (t *Table) InFlight() []SpanSnapshot {
	out := make([]SpanSnapshot, 0, len(t.slots))
	for i := range t.slots {
		sp := &t.slots[i]
		if sp.state.Load() != 1 {
			continue
		}
		var s SpanSnapshot
		sp.SnapshotInto(&s)
		if sp.state.Load() != 1 {
			continue // finished mid-copy; drop the half view
		}
		out = append(out, s)
	}
	return out
}

// Slow returns the retained slow-request snapshots, oldest first.
func (t *Table) Slow() []SpanSnapshot {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	n := t.slowPos
	if c := uint64(len(t.slow)); n > c {
		n = c
	}
	out := make([]SpanSnapshot, 0, n)
	for i := t.slowPos - n; i < t.slowPos; i++ {
		out = append(out, t.slow[i%uint64(len(t.slow))])
	}
	return out
}

// SlowCaptured reports the total number of slow captures ever taken
// (including ones since overwritten).
func (t *Table) SlowCaptured() uint64 {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	return t.slowPos
}
