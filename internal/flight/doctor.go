package flight

import (
	"fmt"
	"io"
	"sort"

	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
	"pmemlog/internal/recovery"
)

// Verdict classifies what a crash did to one in-flight transaction,
// in the paper's recovery vocabulary.
type Verdict string

const (
	// VerdictCommitted: a durable commit record exists, so recovery
	// redoes the transaction — the ack (sent or not) is honored.
	VerdictCommitted Verdict = "committed"
	// VerdictTorn: log records exist but no commit record — the
	// transaction died mid-pipeline and recovery undoes it from the
	// undo images (the paper's uncommitted-rollback path).
	VerdictTorn Verdict = "torn"
	// VerdictUnlogged: no durable log record mentions the transaction —
	// it died before any append left the log write buffer, so recovery
	// never sees it and no data write-back can have escaped either
	// (logging is ordered before data by construction).
	VerdictUnlogged Verdict = "unlogged"
)

// Finding is the doctor's ruling on one span (in-flight or acked).
type Finding struct {
	Span    SpanSnapshot `json:"span"`
	Verdict Verdict      `json:"verdict"`

	// Log evidence backing the verdict.
	Records   int  `json:"records"`    // durable log records for the txid
	HasCommit bool `json:"has_commit"` // durable commit record present

	// Recovery cross-check: what a real recovery pass over the same
	// image concluded about this txid. Agrees is the doctor's
	// self-test — the flight-recorder view and the replay must match.
	RecoveryCommitted   bool `json:"recovery_committed"`
	RecoveryUncommitted bool `json:"recovery_uncommitted"`
	Agrees              bool `json:"agrees"`

	// Acked marks a mutating span whose OK response went out: the server
	// promised durability, so recovery rolling its transaction back is a
	// correctness violation, not a crash artifact.
	Acked bool `json:"acked,omitempty"`
	// AckedLost is the fatal ruling: an acked span whose transaction
	// recovery undid (or whose durable records carry no commit marker).
	// A truncated acked span — zero records, no commit — is NOT lost:
	// truncation only retires transactions after their data write-backs
	// completed, so the log legitimately forgets them.
	AckedLost bool `json:"acked_lost,omitempty"`

	Timeline []Event `json:"timeline,omitempty"`
}

// ShardAnalysis is one shard's cross-checked recovery view.
type ShardAnalysis struct {
	Shard    int             `json:"shard"`
	Report   recovery.Report `json:"report"`
	Findings []Finding       `json:"findings"`
}

// Analysis is the doctor's full ruling over a dump.
type Analysis struct {
	Shards []ShardAnalysis `json:"shards"`

	// InFlightUnattributed counts in-flight spans that could not be
	// checked against a log image (no txid recorded yet, or the shard's
	// image was not provided).
	InFlightUnattributed int `json:"in_flight_unattributed"`
}

// Findings flattens every shard's findings, span timeline order.
func (a *Analysis) Findings() []Finding {
	var out []Finding
	for _, s := range a.Shards {
		out = append(out, s.Findings...)
	}
	return out
}

// Agreement reports whether every finding's verdict matched the
// recovery replay (vacuously true with no findings).
func (a *Analysis) Agreement() bool {
	for _, s := range a.Shards {
		for _, f := range s.Findings {
			if !f.Agrees {
				return false
			}
		}
	}
	return true
}

// AckedLoss counts findings where an acknowledged write did not survive
// recovery — the one verdict class that must exit pmdoctor -strict
// non-zero (a torn-but-rolled-back in-flight request is normal crash
// behavior; a lost ack is a broken durability promise).
func (a *Analysis) AckedLoss() int {
	n := 0
	for _, s := range a.Shards {
		for _, f := range s.Findings {
			if f.AckedLost {
				n++
			}
		}
	}
	return n
}

// ImageOpener maps a shard index to its NVRAM image. Analyze reads the
// image fully into memory; the on-disk file is never mutated even
// though the recovery pass scrubs its working copy's log metadata.
type ImageOpener func(shard int) (io.ReadCloser, error)

// Analyze cross-checks a dump against the shards' NVRAM log images:
// for every in-flight span with an attributed transaction — and every
// acknowledged span the slow ring retained — it scans the shard's
// durable log records, rules the transaction committed / torn /
// unlogged, and verifies the ruling against what recovery.RecoverAll
// actually replays from the same image. Acked mutating spans whose
// transaction recovery undid are additionally ruled AckedLost: a
// broken durability promise.
//
// Limitation: txids are the low 16 bits of a run-unique handle, so a
// slow-ring span from more than 65536 transactions ago can collide
// with a live transaction and misattribute its evidence. Campaign runs
// stay far below that; long-lived servers should read AckedLost only
// for recent spans.
func Analyze(d *Dump, open ImageOpener) (*Analysis, error) {
	an := &Analysis{}

	// Group the spans needing a ruling by shard. In-flight spans first;
	// then the slow ring's completed spans, which carry the ack
	// evidence (an acked span that recovery rolls back is the one
	// failure no crash is allowed to produce).
	byShard := map[int][]SpanSnapshot{}
	seen := map[uint64]bool{}
	for _, sp := range d.InFlight {
		if sp.Shard < 0 || sp.TxID == 0 {
			// Died before reaching a shard or before its txn began:
			// nothing durable can exist, but without a txid there is no
			// log evidence to rule on either.
			an.InFlightUnattributed++
			continue
		}
		seen[sp.ID] = true
		byShard[sp.Shard] = append(byShard[sp.Shard], sp)
	}
	for _, sp := range d.Slow {
		if sp.Shard < 0 || sp.TxID == 0 || seen[sp.ID] {
			// Reads and unrouted spans carry no durability promise.
			continue
		}
		seen[sp.ID] = true
		byShard[sp.Shard] = append(byShard[sp.Shard], sp)
	}

	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)

	for _, shardIdx := range shards {
		spans := byShard[shardIdx]
		var st *ShardState
		for i := range d.ShardStates {
			if d.ShardStates[i].Shard == shardIdx {
				st = &d.ShardStates[i]
				break
			}
		}
		if st == nil || len(st.LogBases) == 0 {
			an.InFlightUnattributed += len(spans)
			continue
		}
		rc, err := open(shardIdx)
		if err != nil {
			return nil, fmt.Errorf("flight: shard %d image: %w", shardIdx, err)
		}
		img, err := mem.ReadPhysical(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("flight: shard %d image: %w", shardIdx, err)
		}

		bases := make([]mem.Addr, len(st.LogBases))
		for i, b := range st.LogBases {
			bases[i] = mem.Addr(b)
		}

		// Scan the durable records FIRST: the recovery pass below undoes
		// uncommitted data and scrubs its working copy's log metadata,
		// so the evidence must be collected before replaying.
		records, commits, err := scanTxns(img, bases)
		if err != nil {
			return nil, fmt.Errorf("flight: shard %d log scan: %w", shardIdx, err)
		}
		rep, err := recovery.RecoverAll(img, bases)
		if err != nil {
			return nil, fmt.Errorf("flight: shard %d recovery: %w", shardIdx, err)
		}
		committed := toSet(rep.Committed)
		uncommitted := toSet(rep.Uncommitted)

		sa := ShardAnalysis{Shard: shardIdx, Report: rep}
		for _, sp := range spans {
			f := Finding{
				Span:      sp,
				Records:   records[sp.TxID],
				HasCommit: commits[sp.TxID],
				Timeline:  d.Timeline(sp.ID),
			}
			switch {
			case f.HasCommit:
				f.Verdict = VerdictCommitted
			case f.Records > 0:
				f.Verdict = VerdictTorn
			default:
				f.Verdict = VerdictUnlogged
			}
			f.RecoveryCommitted = committed[sp.TxID]
			f.RecoveryUncommitted = uncommitted[sp.TxID]
			// The flight view agrees with the replay when committed spans
			// were redone, torn spans were rolled back, and unlogged
			// spans were invisible to recovery.
			switch f.Verdict {
			case VerdictCommitted:
				f.Agrees = f.RecoveryCommitted && !f.RecoveryUncommitted
			case VerdictTorn:
				f.Agrees = f.RecoveryUncommitted && !f.RecoveryCommitted
			case VerdictUnlogged:
				f.Agrees = !f.RecoveryCommitted && !f.RecoveryUncommitted
			}
			// An acked mutating span must survive: rollback of its txn
			// (or durable records with no commit marker) is a lost ack.
			// Zero records with no commit is truncation — the log
			// legitimately forgot a fully written-back transaction.
			f.Acked = sp.Status == int(statusOK) && mutatingOp(sp.Op)
			f.AckedLost = f.Acked &&
				(f.RecoveryUncommitted || (f.Records > 0 && !f.HasCommit))
			sa.Findings = append(sa.Findings, f)
		}
		sort.Slice(sa.Findings, func(i, j int) bool {
			return sa.Findings[i].Span.ID < sa.Findings[j].Span.ID
		})
		an.Shards = append(an.Shards, sa)
	}
	return an, nil
}

// Wire constants mirrored from internal/server/protocol.go (server
// imports flight, so flight cannot import them back; the wire format is
// frozen and these bytes are part of the dump contract).
const (
	statusOK  = byte(0x00)
	opPut     = byte(0x02)
	opDel     = byte(0x03)
	opTxnWire = byte(0x04)
)

// mutatingOp reports whether the opcode carries a durability promise
// when acked (PUT, DEL, and the atomic TXN batch; reads promise nothing).
func mutatingOp(op uint8) bool {
	return op == opPut || op == opDel || op == opTxnWire
}

// scanTxns counts the durable log records and commit markers per txid
// across every log region, torn records excluded (nvlog.Scan stops at
// the first torn bit — exactly what recovery will trust).
func scanTxns(img *mem.Physical, bases []mem.Addr) (records map[uint16]int, commits map[uint16]bool, err error) {
	records = map[uint16]int{}
	commits = map[uint16]bool{}
	for _, base := range bases {
		meta, err := nvlog.ReadMeta(img, base)
		if err != nil {
			return nil, nil, err
		}
		entries, _, err := nvlog.Scan(img, base, meta)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range entries {
			records[e.TxID]++
			if e.Kind == nvlog.KindCommit {
				commits[e.TxID] = true
			}
		}
	}
	return records, commits, nil
}

func toSet(ids []uint16) map[uint16]bool {
	m := make(map[uint16]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}
