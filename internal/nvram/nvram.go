// Package nvram models the NVRAM (phase-change memory) DIMM used as the
// persistent tier of the hybrid main memory (paper Table II):
//
//	8 GB, 8 banks, 2 KB row buffers,
//	36 ns row-buffer hit, 100 ns / 300 ns read/write row-buffer conflict,
//	row-buffer read (write) energy 0.93 (1.02) pJ/bit,
//	array read (write) energy 2.47 (16.82) pJ/bit.
//
// The device is both functional and timed: it owns a real byte image
// (mem.Physical) that survives simulated crashes, and it answers every
// access with a completion time computed from per-bank row-buffer state and
// bank busy intervals. Energy and wear are accounted per access so the
// energy figures (Fig 8, Fig 10) and the lifetime discussion (Section III-F)
// can be reproduced.
package nvram

import (
	"fmt"

	"pmemlog/internal/chaos"
	"pmemlog/internal/mem"
)

// Config describes an NVRAM DIMM. Times are in CPU cycles (the simulator
// converts Table II nanoseconds using the core clock).
type Config struct {
	Banks            int    // number of banks (Table II: 8)
	RowBytes         uint64 // row buffer size per bank (Table II: 2 KB)
	RowHitCycles     uint64 // access hitting the open row (36 ns)
	ReadMissCycles   uint64 // read with row-buffer conflict (100 ns)
	WriteMissCycles  uint64 // write with row-buffer conflict (300 ns)
	BusCyclesPerLine uint64 // data-bus occupancy per 64 B transfer

	// Energy in picojoules per bit (Table II).
	RowBufReadPJPerBit  float64
	RowBufWritePJPerBit float64
	ArrayReadPJPerBit   float64
	ArrayWritePJPerBit  float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("nvram: Banks must be positive, got %d", c.Banks)
	case c.RowBytes == 0 || c.RowBytes%mem.LineSize != 0:
		return fmt.Errorf("nvram: RowBytes %d must be a positive multiple of %d", c.RowBytes, mem.LineSize)
	case c.RowHitCycles == 0 || c.ReadMissCycles == 0 || c.WriteMissCycles == 0:
		return fmt.Errorf("nvram: access latencies must be positive")
	}
	return nil
}

// Stats aggregates the device counters the experiments report.
type Stats struct {
	Reads         uint64 // line-granular read accesses
	Writes        uint64 // line-granular write accesses
	BytesRead     uint64
	BytesWritten  uint64
	RowHits       uint64
	RowConflicts  uint64
	EnergyPJ      float64 // dynamic energy in picojoules
	BusBusyCycles uint64  // total data bus occupancy
}

// Device is one NVRAM DIMM.
type Device struct {
	cfg   Config
	image *mem.Physical

	openRow   []int64  // per bank: currently open row index, -1 if none
	bankFree  []uint64 // per bank: cycle at which the bank becomes idle
	busFree   uint64   // cycle at which the shared data bus becomes idle
	stats     Stats
	wear      map[mem.Addr]uint64 // writes per line, for lifetime analysis
	trackWear bool

	// chaos, when armed via SetChaos (sim construction only), stalls
	// banks for extra cycles before an access starts.
	chaos *chaos.Injector
}

// SetChaos arms (or with nil disarms) the fault injector (pmlint's
// chaosonly rule confines callers to the sim layer).
func (d *Device) SetChaos(in *chaos.Injector) { d.chaos = in }

// New creates a device backed by a fresh physical image at [base, base+size).
func New(cfg Config, base mem.Addr, size uint64) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		cfg:      cfg,
		image:    mem.NewPhysical(base, size),
		openRow:  newOpenRows(cfg.Banks),
		bankFree: make([]uint64, cfg.Banks),
		wear:     make(map[mem.Addr]uint64),
	}, nil
}

func newOpenRows(banks int) []int64 {
	rows := make([]int64, banks)
	for i := range rows {
		rows[i] = -1
	}
	return rows
}

// Image exposes the functional byte store. The cache hierarchy fills lines
// from it and recovery rewrites it; timing is accounted separately through
// Access.
func (d *Device) Image() *mem.Physical { return d.image }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a copy of the accumulated counters.
func (d *Device) Stats() Stats { return d.stats }

// SetWearTracking enables per-line write counting (off by default to keep
// large runs cheap).
func (d *Device) SetWearTracking(on bool) { d.trackWear = on }

// bankOf maps a line address to its bank: cache lines are striped across
// banks (fine-grained interleaving), so sequential streams — the circular
// log above all — exploit bank-level parallelism as on a real DIMM.
func (d *Device) bankOf(line mem.Addr) int {
	idx := uint64(line-d.image.Base()) / mem.LineSize
	return int(idx % uint64(d.cfg.Banks))
}

// rowOf returns the row index within the line's bank: with line striping,
// a bank owns every Banks-th line, and RowBytes/LineSize of those form one
// row, so a sequential stream keeps every bank's row buffer hot.
func (d *Device) rowOf(line mem.Addr) int64 {
	idx := uint64(line-d.image.Base()) / mem.LineSize
	perBank := idx / uint64(d.cfg.Banks)
	return int64(perBank / (d.cfg.RowBytes / mem.LineSize))
}

// Access performs the timing for one line-granular access starting no
// earlier than `now`, returning the cycle at which the access completes.
// The functional data movement is done by the caller through Image; Access
// only advances the timing/energy/wear model. bytes is the size of the
// transfer (64 for a full line, less for a partial WCB flush).
func (d *Device) Access(now uint64, addr mem.Addr, write bool, bytes int) uint64 {
	line := addr.Line()
	bank := d.bankOf(line)
	row := d.rowOf(line)

	start := max64(now, d.bankFree[bank])
	// Serialize on the shared data bus as well.
	start = max64(start, d.busFree)
	if stall, ok := d.chaos.HitArg(chaos.SiteBankStall, uint64(line)); ok {
		// Chaos: the bank answers late. Pure timing perturbation — every
		// durability gate keys on the returned completion cycle, so a
		// stall may reorder and delay but never lose a write.
		start += stall
	}

	hit := d.openRow[bank] == row
	var lat uint64
	bits := float64(bytes * 8)
	switch {
	case hit && !write:
		lat = d.cfg.RowHitCycles
		d.stats.RowHits++
		d.stats.EnergyPJ += bits * d.cfg.RowBufReadPJPerBit
	case hit && write:
		lat = d.cfg.RowHitCycles
		d.stats.RowHits++
		// A row-buffer write still dirties the array eventually; we charge
		// the array write energy at access time (write-through accounting),
		// which matches the paper's "array write" dominating write energy.
		d.stats.EnergyPJ += bits * (d.cfg.RowBufWritePJPerBit + d.cfg.ArrayWritePJPerBit)
	case !hit && !write:
		lat = d.cfg.ReadMissCycles
		d.stats.RowConflicts++
		d.stats.EnergyPJ += bits * (d.cfg.ArrayReadPJPerBit + d.cfg.RowBufWritePJPerBit + d.cfg.RowBufReadPJPerBit)
	default: // !hit && write
		lat = d.cfg.WriteMissCycles
		d.stats.RowConflicts++
		d.stats.EnergyPJ += bits * (d.cfg.ArrayReadPJPerBit + d.cfg.RowBufWritePJPerBit + d.cfg.ArrayWritePJPerBit)
	}
	d.openRow[bank] = row

	done := start + lat
	d.bankFree[bank] = done
	busDone := start + d.cfg.BusCyclesPerLine
	d.busFree = busDone
	d.stats.BusBusyCycles += d.cfg.BusCyclesPerLine

	if write {
		d.stats.Writes++
		// DIMM writes happen in full-line bursts: a partial write (an
		// uncoalesced log record, a WCB flush) still occupies a 64 B burst
		// on the device. Energy above is charged on the payload bits only
		// (PCM writes are differential).
		burst := uint64(bytes)
		if burst < mem.LineSize {
			burst = mem.LineSize
		}
		d.stats.BytesWritten += burst
		if d.trackWear {
			d.wear[line]++
		}
	} else {
		d.stats.Reads++
		d.stats.BytesRead += uint64(bytes)
	}
	return done
}

// MaxLineWear returns the largest per-line write count observed (0 when
// wear tracking is disabled).
func (d *Device) MaxLineWear() uint64 {
	var m uint64
	for _, w := range d.wear {
		if w > m {
			m = w
		}
	}
	return m
}

// WearOf returns the write count of the line containing addr.
func (d *Device) WearOf(addr mem.Addr) uint64 { return d.wear[addr.Line()] }

// AvgAppendCyclesPerLine estimates the per-line write cost of a sequential
// append stream hitting a single bank: one write conflict per row,
// row-buffer hits for the rest. The FWB engine derives its scan interval
// from this deliberately conservative (bank-parallelism-free) bandwidth —
// a hardware persistence guarantee must hold under worst-case bank
// conflicts — which also reproduces the paper's Fig 11(b) numbers
// (~3 M cycles at 4 MB).
func (c Config) AvgAppendCyclesPerLine() float64 {
	linesPerRow := float64(c.RowBytes / mem.LineSize)
	return (float64(c.WriteMissCycles) + (linesPerRow-1)*float64(c.RowHitCycles)) / linesPerRow
}

// SustainedWriteBandwidth returns the sequential-append write bandwidth in
// bytes per cycle, the quantity that bounds log-buffer drain (Fig 11a) and
// determines the FWB frequency (Fig 11b).
func (c Config) SustainedWriteBandwidth() float64 {
	return float64(mem.LineSize) / c.AvgAppendCyclesPerLine()
}

// ResetTiming clears bank/bus schedules and open rows (used after a
// simulated crash: power loss empties row buffers but not the array).
func (d *Device) ResetTiming() {
	d.openRow = newOpenRows(d.cfg.Banks)
	d.bankFree = make([]uint64, d.cfg.Banks)
	d.busFree = 0
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
