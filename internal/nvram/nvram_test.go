package nvram

import (
	"testing"

	"pmemlog/internal/mem"
)

func testConfig() Config {
	return Config{
		Banks:               8,
		RowBytes:            2048,
		RowHitCycles:        90,
		ReadMissCycles:      250,
		WriteMissCycles:     750,
		BusCyclesPerLine:    10,
		RowBufReadPJPerBit:  0.93,
		RowBufWritePJPerBit: 1.02,
		ArrayReadPJPerBit:   2.47,
		ArrayWritePJPerBit:  16.82,
	}
}

func mustNew(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := testConfig()
	bad.Banks = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	bad = testConfig()
	bad.RowBytes = 100
	if err := bad.Validate(); err == nil {
		t.Error("non-line-multiple row accepted")
	}
	bad = testConfig()
	bad.RowHitCycles = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestRowBufferHitVsConflict(t *testing.T) {
	d := mustNew(t, testConfig())
	// First access to a row: conflict.
	done := d.Access(0, 0, false, 64)
	if done != 250 {
		t.Errorf("first read latency = %d, want 250 (conflict)", done)
	}
	// Second access, same bank (lines are striped across banks, so the
	// next line in bank 0 is Banks lines away) and same row: hit.
	sameBankNext := mem.Addr(8 * 64)
	done2 := d.Access(done, sameBankNext, false, 64)
	if done2 != done+90 {
		t.Errorf("row hit latency = %d, want %d", done2-done, 90)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowConflicts != 1 {
		t.Errorf("hits=%d conflicts=%d, want 1/1", st.RowHits, st.RowConflicts)
	}
}

func TestWriteConflictLatency(t *testing.T) {
	d := mustNew(t, testConfig())
	done := d.Access(0, 0, true, 64)
	if done != 750 {
		t.Errorf("write conflict latency = %d, want 750", done)
	}
}

func TestBankSerialization(t *testing.T) {
	d := mustNew(t, testConfig())
	// Two back-to-back accesses to the same bank (lines 0 and Banks),
	// different rows: the second waits for the first. With 2 KB rows and
	// 8 banks, bank 0's rows change every 32 of its lines, i.e. every
	// 32*8 = 256 lines of address space.
	cfg := testConfig()
	sameBankDiffRow := mem.Addr(uint64(cfg.Banks) * (cfg.RowBytes / 64) * uint64(cfg.Banks) * 64)
	d1 := d.Access(0, 0, false, 64)
	d2 := d.Access(0, sameBankDiffRow, false, 64)
	if d2 < d1+250 {
		t.Errorf("same-bank access not serialized: d1=%d d2=%d", d1, d2)
	}
}

func TestBankParallelism(t *testing.T) {
	d := mustNew(t, testConfig())
	cfg := testConfig()
	d1 := d.Access(0, 0, false, 64)  // line 0 -> bank 0
	d2 := d.Access(0, 64, false, 64) // line 1 -> bank 1
	// Bank-parallel accesses serialize only on the bus (10 cycles), not
	// on the full access latency.
	if d2 > d1+cfg.BusCyclesPerLine {
		t.Errorf("bank-parallel access over-serialized: d1=%d d2=%d", d1, d2)
	}
}

func TestEnergyAccounting(t *testing.T) {
	d := mustNew(t, testConfig())
	d.Access(0, 0, false, 64) // read conflict: (2.47+1.02+0.93) pJ/bit * 512 bits
	want := 512 * (2.47 + 1.02 + 0.93)
	if got := d.Stats().EnergyPJ; !closeTo(got, want) {
		t.Errorf("read conflict energy = %v, want %v", got, want)
	}
	before := d.Stats().EnergyPJ
	d.Access(0, 8*64, true, 64) // same bank+row write hit: (1.02+16.82) pJ/bit * 512
	wantW := 512 * (1.02 + 16.82)
	if got := d.Stats().EnergyPJ - before; !closeTo(got, wantW) {
		t.Errorf("write hit energy = %v, want %v", got, wantW)
	}
}

func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6*(1+b)
}

func TestTrafficCounters(t *testing.T) {
	d := mustNew(t, testConfig())
	d.Access(0, 0, true, 64)
	d.Access(0, 64, true, 32) // partial write still occupies a 64 B burst
	d.Access(0, 128, false, 64)
	st := d.Stats()
	if st.BytesWritten != 128 || st.BytesRead != 64 {
		t.Errorf("traffic: wrote %d read %d, want 128/64", st.BytesWritten, st.BytesRead)
	}
	if st.Writes != 2 || st.Reads != 1 {
		t.Errorf("ops: writes %d reads %d, want 2/1", st.Writes, st.Reads)
	}
}

func TestWearTracking(t *testing.T) {
	d := mustNew(t, testConfig())
	d.SetWearTracking(true)
	for i := 0; i < 5; i++ {
		d.Access(0, 0x40, true, 64)
	}
	d.Access(0, 0x80, true, 64)
	if w := d.WearOf(0x40); w != 5 {
		t.Errorf("wear(0x40) = %d, want 5", w)
	}
	if m := d.MaxLineWear(); m != 5 {
		t.Errorf("max wear = %d, want 5", m)
	}
}

func TestResetTiming(t *testing.T) {
	d := mustNew(t, testConfig())
	d.Access(0, 0, false, 64)
	d.ResetTiming()
	// After reset the open row is forgotten: same row conflicts again.
	done := d.Access(0, 0, false, 64)
	if done != 250 {
		t.Errorf("post-reset access latency = %d, want 250 (conflict)", done)
	}
}

func TestSustainedWriteBandwidth(t *testing.T) {
	cfg := testConfig()
	// 2KB row = 32 lines; avg = (750 + 31*90)/32 = 110.625 cycles per line.
	wantAvg := (750.0 + 31*90.0) / 32.0
	if got := cfg.AvgAppendCyclesPerLine(); got != wantAvg {
		t.Errorf("AvgAppendCyclesPerLine = %v, want %v", got, wantAvg)
	}
	wantBW := 64.0 / wantAvg
	if got := cfg.SustainedWriteBandwidth(); got != wantBW {
		t.Errorf("SustainedWriteBandwidth = %v, want %v", got, wantBW)
	}
}

func TestImageIsFunctional(t *testing.T) {
	d := mustNew(t, testConfig())
	d.Image().WriteWord(0x100, 0xabcd)
	if got := d.Image().ReadWord(0x100); got != 0xabcd {
		t.Errorf("image word = %#x", got)
	}
}
