package trace

import (
	"bytes"
	"testing"

	"pmemlog/internal/bench"
	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
	"pmemlog/internal/txn"
)

func testSystem(t *testing.T, mode txn.Mode, threads int) *sim.System {
	t.Helper()
	cfg := sim.DefaultConfig(mode, threads)
	cfg.Caches.L1.SizeBytes = 4 << 10
	cfg.Caches.L1.Ways = 4
	cfg.Caches.L2.SizeBytes = 64 << 10
	cfg.Caches.L2.Ways = 8
	cfg.NVRAMBytes = 16 << 20
	cfg.LogBytes = 256 << 10
	cfg.GrowReserveBytes = 1 << 20
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func benchCfg(threads int) bench.Config {
	return bench.Config{Elements: 256, TxnsPerThread: 40, Threads: threads, Seed: 9}
}

// recordHash sets up + records the hash workload on a fresh system.
func recordHash(t *testing.T, mode txn.Mode, threads int) (*Trace, *sim.System, *bench.Hash) {
	t.Helper()
	s := testSystem(t, mode, threads)
	h := bench.NewHash(benchCfg(threads))
	if err := h.Setup(s); err != nil {
		t.Fatal(err)
	}
	workers := make([]sim.Worker, threads)
	for i := range workers {
		i := i
		workers[i] = func(ctx sim.Ctx) { h.Run(ctx, i) }
	}
	tr, err := Record(s, workers)
	if err != nil {
		t.Fatal(err)
	}
	return tr, s, h
}

func TestRecordCapturesOps(t *testing.T) {
	tr, s, _ := recordHash(t, txn.FWB, 2)
	if tr.Ops() == 0 {
		t.Fatal("no operations recorded")
	}
	if len(tr.Threads) != 2 {
		t.Fatalf("threads = %d", len(tr.Threads))
	}
	if s.Stats().Transactions != 80 {
		t.Errorf("recording perturbed the run: %d txns", s.Stats().Transactions)
	}
	// Each thread's stream must contain balanced begin/commit pairs.
	for i, ops := range tr.Threads {
		depth := 0
		for _, op := range ops {
			switch op.Kind {
			case OpTxBegin:
				depth++
			case OpTxCommit:
				depth--
			}
			if depth < 0 || depth > 1 {
				t.Fatalf("thread %d: unbalanced transactions", i)
			}
		}
		if depth != 0 {
			t.Fatalf("thread %d: unterminated transaction", i)
		}
	}
}

// Replaying the trace on a fresh identically-populated machine must yield
// exactly the same cycle count and final state: the trace pins the memory
// behaviour completely.
func TestReplayIsDeterministic(t *testing.T) {
	tr, s1, _ := recordHash(t, txn.FWB, 2)

	s2 := testSystem(t, txn.FWB, 2)
	h2 := bench.NewHash(benchCfg(2))
	if err := h2.Setup(s2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(tr.Workers()); err != nil {
		t.Fatal(err)
	}
	r1, r2 := s1.Stats(), s2.Stats()
	if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions {
		t.Errorf("replay diverged: (%d,%d) vs (%d,%d)",
			r1.Cycles, r1.Instructions, r2.Cycles, r2.Instructions)
	}
	if r1.NVRAMWriteBytes != r2.NVRAMWriteBytes {
		t.Errorf("replay traffic diverged: %d vs %d", r1.NVRAMWriteBytes, r2.NVRAMWriteBytes)
	}
}

// A trace recorded under one design can drive any other design: the
// visible final state must match (the cross-design sweep use case).
func TestReplayAcrossModes(t *testing.T) {
	tr, s1, _ := recordHash(t, txn.NonPers, 1)

	for _, mode := range []txn.Mode{txn.SWUndoClwb, txn.FWB} {
		s2 := testSystem(t, mode, 1)
		h2 := bench.NewHash(benchCfg(1))
		if err := h2.Setup(s2); err != nil {
			t.Fatal(err)
		}
		if err := s2.Run(tr.Workers()); err != nil {
			t.Fatalf("%s replay: %v", mode, err)
		}
		// Compare a sample of visible words via fresh loads.
		var w1, w2 mem.Word
		probe := func(s *sim.System, out *mem.Word) sim.Worker {
			return func(ctx sim.Ctx) {
				var acc mem.Word
				base := s.Heap().Base()
				for off := 0; off < 4096; off += 8 {
					acc ^= ctx.Load(base + mem.Addr(off))
				}
				*out = acc
			}
		}
		if err := s1.Run([]sim.Worker{probe(s1, &w1)}); err != nil {
			t.Fatal(err)
		}
		if err := s2.Run([]sim.Worker{probe(s2, &w2)}); err != nil {
			t.Fatal(err)
		}
		if w1 != w2 {
			t.Errorf("%s: replayed state diverges from recording", mode)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr, _, _ := recordHash(t, txn.FWB, 2)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ops() != tr.Ops() || len(got.Threads) != len(tr.Threads) {
		t.Fatalf("round trip: %d ops / %d threads, want %d / %d",
			got.Ops(), len(got.Threads), tr.Ops(), len(tr.Threads))
	}
	for i := range tr.Threads {
		for j := range tr.Threads[i] {
			a, b := tr.Threads[i][j], got.Threads[i][j]
			if a.Kind != b.Kind || a.Addr != b.Addr || a.Val != b.Val || a.N != b.N ||
				string(a.Data) != string(b.Data) {
				t.Fatalf("thread %d op %d differs: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
	tr := &Trace{Threads: [][]Op{{{Kind: OpStore, Addr: 8, Val: 1}}}}
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}
