// Package trace records and replays workload operation streams — the
// equivalent of the Pin traces that drive McSimA+ (paper Section V).
// A workload is executed once against a live machine while every Ctx
// operation is captured; the resulting trace can then be replayed against
// any number of differently-configured machines (other logging designs,
// cache sizes, log buffer sizes) with identical memory behaviour, which
// both speeds up design-space sweeps and gives a strong cross-configuration
// determinism check.
//
// Traces serialize to a compact varint binary format.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// OpKind identifies one recorded operation.
type OpKind uint8

const (
	OpCompute OpKind = iota + 1
	OpLoad
	OpStore
	OpLoadBytes
	OpStoreBytes
	OpTxBegin
	OpTxCommit
)

// Op is one recorded Ctx operation.
type Op struct {
	Kind OpKind
	Addr mem.Addr
	Val  mem.Word // store value / compute amount
	Data []byte   // StoreBytes payload
	N    int      // LoadBytes length
}

// Trace is the recorded op streams of every thread.
type Trace struct {
	Threads [][]Op
}

// recorder wraps a Ctx, forwarding every call and appending it to the
// thread's stream.
type recorder struct {
	sim.Ctx
	ops *[]Op
}

func (r recorder) Compute(n uint64) {
	*r.ops = append(*r.ops, Op{Kind: OpCompute, Val: mem.Word(n)})
	r.Ctx.Compute(n)
}

func (r recorder) Load(a mem.Addr) mem.Word {
	*r.ops = append(*r.ops, Op{Kind: OpLoad, Addr: a})
	return r.Ctx.Load(a)
}

func (r recorder) Store(a mem.Addr, w mem.Word) {
	*r.ops = append(*r.ops, Op{Kind: OpStore, Addr: a, Val: w})
	r.Ctx.Store(a, w)
}

func (r recorder) LoadBytes(a mem.Addr, n int) []byte {
	*r.ops = append(*r.ops, Op{Kind: OpLoadBytes, Addr: a, N: n})
	return r.Ctx.LoadBytes(a, n)
}

func (r recorder) StoreBytes(a mem.Addr, b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	*r.ops = append(*r.ops, Op{Kind: OpStoreBytes, Addr: a, Data: cp})
	r.Ctx.StoreBytes(a, b)
}

func (r recorder) TxBegin() {
	*r.ops = append(*r.ops, Op{Kind: OpTxBegin})
	r.Ctx.TxBegin()
}

func (r recorder) TxCommit() {
	*r.ops = append(*r.ops, Op{Kind: OpTxCommit})
	r.Ctx.TxCommit()
}

// Record runs the worker bodies on the system, capturing every operation.
// The returned trace replays byte-identically on any machine populated
// with the same Setup state.
func Record(s *sim.System, workers []sim.Worker) (*Trace, error) {
	tr := &Trace{Threads: make([][]Op, len(workers))}
	wrapped := make([]sim.Worker, len(workers))
	for i, w := range workers {
		i, w := i, w
		wrapped[i] = func(ctx sim.Ctx) {
			w(recorder{Ctx: ctx, ops: &tr.Threads[i]})
		}
	}
	if err := s.Run(wrapped); err != nil {
		return nil, err
	}
	return tr, nil
}

// Workers returns replay bodies, one per recorded thread.
func (t *Trace) Workers() []sim.Worker {
	out := make([]sim.Worker, len(t.Threads))
	for i := range t.Threads {
		ops := t.Threads[i]
		out[i] = func(ctx sim.Ctx) {
			for _, op := range ops {
				switch op.Kind {
				case OpCompute:
					ctx.Compute(uint64(op.Val))
				case OpLoad:
					ctx.Load(op.Addr)
				case OpStore:
					ctx.Store(op.Addr, op.Val)
				case OpLoadBytes:
					ctx.LoadBytes(op.Addr, op.N)
				case OpStoreBytes:
					ctx.StoreBytes(op.Addr, op.Data)
				case OpTxBegin:
					ctx.TxBegin()
				case OpTxCommit:
					ctx.TxCommit()
				}
			}
		}
	}
	return out
}

// Ops returns the total operation count.
func (t *Trace) Ops() int {
	n := 0
	for _, th := range t.Threads {
		n += len(th)
	}
	return n
}

// --- serialization ---

const traceMagic = 0x54464E53 // "SNFT"

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		m, err := bw.Write(scratch[:binary.PutUvarint(scratch[:], v)])
		n += int64(m)
		return err
	}
	if err := put(traceMagic); err != nil {
		return n, err
	}
	if err := put(uint64(len(t.Threads))); err != nil {
		return n, err
	}
	for _, ops := range t.Threads {
		if err := put(uint64(len(ops))); err != nil {
			return n, err
		}
		for _, op := range ops {
			if err := put(uint64(op.Kind)); err != nil {
				return n, err
			}
			switch op.Kind {
			case OpCompute:
				if err := put(uint64(op.Val)); err != nil {
					return n, err
				}
			case OpLoad:
				if err := put(uint64(op.Addr)); err != nil {
					return n, err
				}
			case OpStore:
				if err := put(uint64(op.Addr)); err != nil {
					return n, err
				}
				if err := put(uint64(op.Val)); err != nil {
					return n, err
				}
			case OpLoadBytes:
				if err := put(uint64(op.Addr)); err != nil {
					return n, err
				}
				if err := put(uint64(op.N)); err != nil {
					return n, err
				}
			case OpStoreBytes:
				if err := put(uint64(op.Addr)); err != nil {
					return n, err
				}
				if err := put(uint64(len(op.Data))); err != nil {
					return n, err
				}
				m, err := bw.Write(op.Data)
				n += int64(m)
				if err != nil {
					return n, err
				}
			case OpTxBegin, OpTxCommit:
			default:
				return n, fmt.Errorf("trace: unknown op kind %d", op.Kind)
			}
		}
	}
	return n, bw.Flush()
}

// Read deserializes a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	nThreads, err := get()
	if err != nil {
		return nil, err
	}
	if nThreads > 1<<16 {
		return nil, fmt.Errorf("trace: implausible thread count %d", nThreads)
	}
	t := &Trace{Threads: make([][]Op, nThreads)}
	for i := range t.Threads {
		nOps, err := get()
		if err != nil {
			return nil, err
		}
		ops := make([]Op, 0, nOps)
		for j := uint64(0); j < nOps; j++ {
			kind, err := get()
			if err != nil {
				return nil, err
			}
			op := Op{Kind: OpKind(kind)}
			switch op.Kind {
			case OpCompute:
				v, err := get()
				if err != nil {
					return nil, err
				}
				op.Val = mem.Word(v)
			case OpLoad:
				a, err := get()
				if err != nil {
					return nil, err
				}
				op.Addr = mem.Addr(a)
			case OpStore:
				a, err := get()
				if err != nil {
					return nil, err
				}
				v, err := get()
				if err != nil {
					return nil, err
				}
				op.Addr, op.Val = mem.Addr(a), mem.Word(v)
			case OpLoadBytes:
				a, err := get()
				if err != nil {
					return nil, err
				}
				n, err := get()
				if err != nil {
					return nil, err
				}
				op.Addr, op.N = mem.Addr(a), int(n)
			case OpStoreBytes:
				a, err := get()
				if err != nil {
					return nil, err
				}
				ln, err := get()
				if err != nil {
					return nil, err
				}
				if ln > 1<<20 {
					return nil, fmt.Errorf("trace: implausible payload %d", ln)
				}
				op.Addr = mem.Addr(a)
				op.Data = make([]byte, ln)
				if _, err := io.ReadFull(br, op.Data); err != nil {
					return nil, err
				}
			case OpTxBegin, OpTxCommit:
			default:
				return nil, fmt.Errorf("trace: unknown op kind %d", kind)
			}
			ops = append(ops, op)
		}
		t.Threads[i] = ops
	}
	return t, nil
}
