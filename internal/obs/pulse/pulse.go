// Package pulse is the windowed live-telemetry layer over the metrics
// registry and the flight recorder: a ring of per-interval delta
// snapshots that turns cumulative counters into rates, whole-life log2
// histograms into windowed p50/p95/p99/p99.9 (bucket interpolation),
// and gauges into last-sampled values — plus a stage-attribution engine
// that folds completed request spans into per-stage windowed histograms
// and retains tail exemplars (the slowest spans per window, with their
// full stage breakdown).
//
// The paper makes persistence invisible on the critical path; pulse
// exists because an operator cannot run a service on invisibility. Wrap
// rate per window watches circular-log reclamation, the FWB stage share
// watches forced-write-back pressure, and the stage waterfall is the
// live check on the steal/no-force instant-commit claim — all per shard
// and per interval, not lifetime averages.
//
// Cost contract: every source read in Tick is an atomic load (registry
// handles, loop-published shard state), every window slot is
// preallocated on the first tick, and the steady-state tick allocates
// nothing — guarded by TestPulseZeroAllocSteadyState, mirroring the
// shard-apply and nvlog alloc guards.
package pulse

import (
	"sync"
	"sync/atomic"
	"time"

	"pmemlog/internal/flight"
	"pmemlog/internal/obs"
)

// MaxExemplars is the per-window capacity of the tail-exemplar capture:
// the N slowest finished spans of each interval keep their full stage
// breakdown.
const MaxExemplars = 4

// ShardSample is one shard's loop-published pressure and activity view,
// sampled by the collector each tick. The int fields are gauges (last
// value wins); the uint64 fields are cumulative counters the window
// differences into rates.
type ShardSample struct {
	QueueLen int
	QueueCap int

	LogHead uint64
	LogTail uint64
	LogCap  uint64

	Requests uint64
	Batches  uint64
	Saves    uint64

	Txns            uint64
	LogAppends      uint64
	LogTruncated    uint64
	FwbScans        uint64
	NVRAMWriteBytes uint64

	// Scope (persistence-domain cost) counters; cumulative except
	// LiveRecords, a gauge.
	PayloadBytes       uint64
	LogUndoBytes       uint64
	LogRedoBytes       uint64
	LogHeaderBytes     uint64
	LogChecksumBytes   uint64
	LogBusBytes        uint64
	DataBusBytes       uint64
	UpdateAppends      uint64
	CoalescibleAppends uint64
	ForcedWB           uint64
	NaturalWB          uint64
	WastedForcedWB     uint64
	FwbFlagged         uint64
	TxnsMeasured       uint64
	TxnAmpMilliSum     uint64
	LiveRecords        uint64
}

// Config sizes a Collector.
type Config struct {
	// Interval is the window width the Run loop ticks at (default 1s).
	Interval time.Duration
	// Windows is the ring capacity of retained windows (default 64).
	Windows int
	// Shards is the per-shard series count; SampleShard is called with
	// 0..Shards-1 each tick and must only read published atomics.
	Shards      int
	SampleShard func(i int, out *ShardSample)
	// NowNS is the telemetry clock (nanoseconds since server start).
	NowNS func() int64
	// SLOLatencyNS is the end-to-end latency objective (default 20ms);
	// SLOBudget is the allowed fraction of requests over it (default
	// 0.001). Burn rate = observed bad fraction / budget: 1.0 burns the
	// error budget exactly as fast as it refills.
	SLOLatencyNS int64
	SLOBudget    float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Windows <= 0 {
		c.Windows = 64
	}
	if c.NowNS == nil {
		t0 := time.Now()
		c.NowNS = func() int64 { return int64(time.Since(t0)) }
	}
	if c.SLOLatencyNS <= 0 {
		c.SLOLatencyNS = int64(20 * time.Millisecond)
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.001
	}
	return c
}

// Exemplar is one retained tail request: the span snapshot plus its
// end-to-end latency.
type Exemplar struct {
	Span  flight.SpanSnapshot `json:"span"`
	LatNS int64               `json:"lat_ns"`
}

// series is one tracked histogram and its previous snapshot.
type series struct {
	name string
	h    *obs.Histogram
	prev obs.HistogramSnapshot
	cur  obs.HistogramSnapshot // tick scratch
}

// shardWindow is one shard's slice of one window.
type shardWindow struct {
	queueLen  int
	queueCap  int
	occupancy float64
	wrap      float64 // log passes advanced this window

	requests     uint64
	batches      uint64
	saves        uint64
	txns         uint64
	logAppends   uint64
	logTruncated uint64
	fwbScans     uint64
	nvramBytes   uint64

	// Scope deltas for this window (counts/bytes, not rates — BuildDoc
	// divides by the window span).
	payloadBytes     uint64
	logUndoBytes     uint64
	logRedoBytes     uint64
	logHeaderBytes   uint64
	logChecksumBytes uint64
	logBusBytes      uint64
	dataBusBytes     uint64
	updateAppends    uint64
	coalescible      uint64
	forcedWB         uint64
	naturalWB        uint64
	wastedForcedWB   uint64
	fwbFlagged       uint64
	txnsMeasured     uint64
	txnAmpMilliSum   uint64

	// Wrap-forecast inputs: records appended (tail advance) and
	// reclaimed (head advance) this window, plus end-of-window gauges.
	tailAdvance uint64
	headAdvance uint64
	logHead     uint64
	logTail     uint64
	logCap      uint64
	liveRecords uint64
}

// window is one completed interval's delta view.
type window struct {
	seq     uint64
	startNS int64
	endNS   int64

	ops    []obs.HistogramSnapshot // parallel to Collector.ops
	stages []obs.HistogramSnapshot // parallel to Collector.stages
	e2e    obs.HistogramSnapshot

	sloTotal uint64
	sloBad   uint64

	shards []shardWindow

	exemplars [MaxExemplars]Exemplar
	exN       int
}

// Collector is the windowed aggregation engine. Track* registration
// happens at setup, before the first Tick; Tick and the read side
// (BuildDoc, ShardPressure) may race freely with the request path —
// every source is atomic and the ring is mutex-guarded off the hot
// path.
type Collector struct {
	cfg Config

	mu     sync.Mutex
	ops    []series
	stages []series
	e2e    series

	sloTotal *obs.Counter
	sloBad   *obs.Counter
	prevSLO  [2]uint64 // total, bad

	prevShards   []ShardSample
	shardScratch ShardSample

	ring          []window
	pos           uint64 // completed windows ever taken
	windowStartNS int64

	// Tail-exemplar capture for the current (open) window. exFloor is
	// the fast-path rejection gate: once the slot set is full it holds
	// the smallest retained latency, so the per-request check is one
	// atomic load.
	exMu    sync.Mutex
	ex      [MaxExemplars]Exemplar
	exN     int
	exFloor atomic.Int64
}

// New builds a collector; register series with the Track methods before
// the first Tick.
func New(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{cfg: cfg}
	c.windowStartNS = cfg.NowNS()
	return c
}

// Interval reports the configured window width.
func (c *Collector) Interval() time.Duration { return c.cfg.Interval }

// TrackOp registers a per-op latency histogram (windowed quantiles +
// completion rate). Setup-time only.
func (c *Collector) TrackOp(name string, h *obs.Histogram) {
	c.ops = append(c.ops, series{name: name, h: h})
}

// TrackStage registers a per-stage latency histogram in waterfall
// order. Setup-time only.
func (c *Collector) TrackStage(name string, h *obs.Histogram) {
	c.stages = append(c.stages, series{name: name, h: h})
}

// TrackE2E registers the end-to-end latency histogram the stage shares
// are measured against. Setup-time only.
func (c *Collector) TrackE2E(h *obs.Histogram) {
	c.e2e = series{name: "e2e", h: h}
}

// TrackSLO registers the objective counters: total data requests and
// requests over the latency objective. Setup-time only.
func (c *Collector) TrackSLO(total, bad *obs.Counter) {
	c.sloTotal, c.sloBad = total, bad
}

// init preallocates the window ring for the tracked series (first Tick,
// under mu). After this the steady-state tick is allocation-free.
func (c *Collector) init() {
	c.ring = make([]window, c.cfg.Windows)
	for i := range c.ring {
		w := &c.ring[i]
		w.ops = make([]obs.HistogramSnapshot, len(c.ops))
		w.stages = make([]obs.HistogramSnapshot, len(c.stages))
		w.shards = make([]shardWindow, c.cfg.Shards)
	}
	c.prevShards = make([]ShardSample, c.cfg.Shards)
	// No baseline snapshots: prev stays zero, so the first window is a
	// delta from collector creation — the server builds its collector
	// at startup, making the first window "everything since boot",
	// which is the honest reading.
}

// Tick closes the current window: every tracked source is snapshotted,
// differenced against the previous snapshot, and the delta written into
// the ring slot in place. Steady-state allocation-free.
func (c *Collector) Tick() {
	now := c.cfg.NowNS()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring == nil {
		c.init()
	}
	w := &c.ring[c.pos%uint64(len(c.ring))]
	w.seq = c.pos
	w.startNS = c.windowStartNS
	w.endNS = now
	c.windowStartNS = now

	for i := range c.ops {
		s := &c.ops[i]
		s.h.SnapshotInto(&s.cur)
		s.cur.DeltaSince(&s.prev, &w.ops[i])
		s.prev = s.cur
	}
	for i := range c.stages {
		s := &c.stages[i]
		s.h.SnapshotInto(&s.cur)
		s.cur.DeltaSince(&s.prev, &w.stages[i])
		s.prev = s.cur
	}
	if c.e2e.h != nil {
		c.e2e.h.SnapshotInto(&c.e2e.cur)
		c.e2e.cur.DeltaSince(&c.e2e.prev, &w.e2e)
		c.e2e.prev = c.e2e.cur
	} else {
		w.e2e = obs.HistogramSnapshot{}
	}
	if c.sloTotal != nil {
		t, b := c.sloTotal.Value(), c.sloBad.Value()
		w.sloTotal = satSub(t, c.prevSLO[0])
		w.sloBad = satSub(b, c.prevSLO[1])
		c.prevSLO[0], c.prevSLO[1] = t, b
	} else {
		w.sloTotal, w.sloBad = 0, 0
	}
	for i := range w.shards {
		cur := &c.shardScratch
		*cur = ShardSample{}
		if c.cfg.SampleShard != nil {
			c.cfg.SampleShard(i, cur)
		}
		prev := &c.prevShards[i]
		sw := &w.shards[i]
		sw.queueLen, sw.queueCap = cur.QueueLen, cur.QueueCap
		sw.occupancy = 0
		if cur.LogCap > 0 {
			sw.occupancy = float64(cur.LogTail-cur.LogHead) / float64(cur.LogCap)
			sw.wrap = float64(satSub(cur.LogTail, prev.LogTail)) / float64(cur.LogCap)
		} else {
			sw.wrap = 0
		}
		sw.requests = satSub(cur.Requests, prev.Requests)
		sw.batches = satSub(cur.Batches, prev.Batches)
		sw.saves = satSub(cur.Saves, prev.Saves)
		sw.txns = satSub(cur.Txns, prev.Txns)
		sw.logAppends = satSub(cur.LogAppends, prev.LogAppends)
		sw.logTruncated = satSub(cur.LogTruncated, prev.LogTruncated)
		sw.fwbScans = satSub(cur.FwbScans, prev.FwbScans)
		sw.nvramBytes = satSub(cur.NVRAMWriteBytes, prev.NVRAMWriteBytes)
		sw.payloadBytes = satSub(cur.PayloadBytes, prev.PayloadBytes)
		sw.logUndoBytes = satSub(cur.LogUndoBytes, prev.LogUndoBytes)
		sw.logRedoBytes = satSub(cur.LogRedoBytes, prev.LogRedoBytes)
		sw.logHeaderBytes = satSub(cur.LogHeaderBytes, prev.LogHeaderBytes)
		sw.logChecksumBytes = satSub(cur.LogChecksumBytes, prev.LogChecksumBytes)
		sw.logBusBytes = satSub(cur.LogBusBytes, prev.LogBusBytes)
		sw.dataBusBytes = satSub(cur.DataBusBytes, prev.DataBusBytes)
		sw.updateAppends = satSub(cur.UpdateAppends, prev.UpdateAppends)
		sw.coalescible = satSub(cur.CoalescibleAppends, prev.CoalescibleAppends)
		sw.forcedWB = satSub(cur.ForcedWB, prev.ForcedWB)
		sw.naturalWB = satSub(cur.NaturalWB, prev.NaturalWB)
		sw.wastedForcedWB = satSub(cur.WastedForcedWB, prev.WastedForcedWB)
		sw.fwbFlagged = satSub(cur.FwbFlagged, prev.FwbFlagged)
		sw.txnsMeasured = satSub(cur.TxnsMeasured, prev.TxnsMeasured)
		sw.txnAmpMilliSum = satSub(cur.TxnAmpMilliSum, prev.TxnAmpMilliSum)
		sw.tailAdvance = satSub(cur.LogTail, prev.LogTail)
		sw.headAdvance = satSub(cur.LogHead, prev.LogHead)
		sw.logHead, sw.logTail, sw.logCap = cur.LogHead, cur.LogTail, cur.LogCap
		sw.liveRecords = cur.LiveRecords
		*prev = *cur
	}

	c.exMu.Lock()
	w.exemplars = c.ex
	w.exN = c.exN
	c.exN = 0
	c.exFloor.Store(0)
	c.exMu.Unlock()

	c.pos++
}

// NoteFinished offers a finishing span to the tail-exemplar capture:
// the slowest MaxExemplars requests of the current window keep their
// full snapshot. Called by the conn writer just before the span is
// recycled; the fast path is one atomic load when the request is not
// tail-worthy. Allocation-free.
func (c *Collector) NoteFinished(sp *flight.Span, status byte, ackNS int64) {
	if c == nil || sp == nil {
		return
	}
	lat := ackNS - sp.StageNS(flight.StageRecv)
	if lat <= 0 {
		return
	}
	if floor := c.exFloor.Load(); floor != 0 && lat <= floor {
		return
	}
	c.exMu.Lock()
	defer c.exMu.Unlock()
	slot := -1
	if c.exN < MaxExemplars {
		slot = c.exN
		c.exN++
	} else {
		min := 0
		for i := 1; i < MaxExemplars; i++ {
			if c.ex[i].LatNS < c.ex[min].LatNS {
				min = i
			}
		}
		if c.ex[min].LatNS >= lat {
			return
		}
		slot = min
	}
	e := &c.ex[slot]
	sp.SnapshotInto(&e.Span)
	e.Span.Status = int(status)
	e.Span.AckNS = ackNS
	e.LatNS = lat
	if c.exN == MaxExemplars {
		floor := c.ex[0].LatNS
		for i := 1; i < MaxExemplars; i++ {
			if c.ex[i].LatNS < floor {
				floor = c.ex[i].LatNS
			}
		}
		c.exFloor.Store(floor)
	}
}

// Run ticks the collector every Interval until stop closes. The ticker
// goroutine owns nothing: a concurrent manual Tick (tests, -once
// tooling) just closes a shorter window.
func (c *Collector) Run(stop <-chan struct{}) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.Tick()
		}
	}
}

// Windows reports how many completed windows have been taken (the ring
// retains the last min(Windows, this) of them).
func (c *Collector) Windows() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pos
}

// ShardPressure reports shard i's most recent completed window: wrap
// rate in log passes/sec, queue fill fraction, and log occupancy.
// ok=false before the first completed window or for an unknown shard —
// callers (the /healthz degraded gate) must treat that as healthy, not
// degraded.
func (c *Collector) ShardPressure(i int) (wrapPerSec, queueFrac, occupancy float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pos == 0 || i < 0 || i >= c.cfg.Shards {
		return 0, 0, 0, false
	}
	w := &c.ring[(c.pos-1)%uint64(len(c.ring))]
	sw := &w.shards[i]
	secs := float64(w.endNS-w.startNS) / 1e9
	if secs > 0 {
		wrapPerSec = sw.wrap / secs
	}
	if sw.queueCap > 0 {
		queueFrac = float64(sw.queueLen) / float64(sw.queueCap)
	}
	return wrapPerSec, queueFrac, sw.occupancy, true
}

// retained reports how many completed windows the ring still holds.
func (c *Collector) retained() int {
	n := c.pos
	if cap := uint64(len(c.ring)); n > cap {
		n = cap
	}
	return int(n)
}

// satSub is a saturating uint64 subtraction: a torn concurrent sample
// pair must clamp to an empty window, never wrap.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
