package pulse

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pmemlog/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// scopeSample builds a deterministic cumulative ShardSample as if a
// shard had run a known workload.
func scopeSample(scale uint64) ShardSample {
	return ShardSample{
		QueueCap:           8,
		LogHead:            40 * scale,
		LogTail:            100 * scale,
		LogCap:             4096,
		Requests:           50 * scale,
		Txns:               50 * scale,
		LogAppends:         150 * scale,
		LogTruncated:       40 * scale,
		FwbScans:           2 * scale,
		NVRAMWriteBytes:    9000 * scale,
		PayloadBytes:       800 * scale,
		LogUndoBytes:       800 * scale,
		LogRedoBytes:       800 * scale,
		LogHeaderBytes:     2000 * scale,
		LogChecksumBytes:   200 * scale,
		LogBusBytes:        4000 * scale,
		DataBusBytes:       1280 * scale,
		UpdateAppends:      100 * scale,
		CoalescibleAppends: 25 * scale,
		ForcedWB:           10 * scale,
		NaturalWB:          10 * scale,
		WastedForcedWB:     2 * scale,
		FwbFlagged:         30 * scale,
		TxnsMeasured:       50 * scale,
		TxnAmpMilliSum:     240_000 * scale,
		LiveRecords:        60 * scale,
	}
}

// buildScopeDoc drives a collector through two deterministic windows and
// returns the aggregate document — shared by the golden and compat
// tests so both pin the same bytes.
func buildScopeDoc(t *testing.T) *Doc {
	t.Helper()
	clk := &fakeClock{}
	shards := &testShards{samples: make([]ShardSample, 2)}
	c, opH, e2e, total, _ := newTestCollector(clk, shards, obs.NewRegistry())
	for v := uint64(1); v <= 10; v++ {
		opH.Observe(v * 64)
		e2e.Observe(v * 64)
	}
	total.Add(10)
	for _, scale := range []uint64{1, 2} {
		shards.mu.Lock()
		shards.samples[0] = scopeSample(scale)
		shards.mu.Unlock()
		clk.advance(1e9)
		c.Tick()
	}
	return c.BuildDoc(2)
}

// TestScopeGoldenRoundTrip pins the v2 document's wire form — scope
// section included — against a committed golden file, then proves the
// bytes decode back to the identical in-memory document. Any field
// rename, type change, or numeric drift in the scope math shows up as a
// golden diff, which is the point: the schema version only means
// something if the wire form cannot drift silently.
func TestScopeGoldenRoundTrip(t *testing.T) {
	d := buildScopeDoc(t)
	if d.Version != 2 {
		t.Fatalf("DocVersion = %d; the golden file pins v2 — regenerate it (go test -run Golden -update) and bump this check deliberately", d.Version)
	}
	raw, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	golden := filepath.Join("testdata", "pulse_v2_scope.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(raw) != string(want) {
		t.Fatalf("document drifted from golden %s (run with -update if intended)\n got: %s", golden, raw)
	}
	var back Doc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	reRaw, err := json.MarshalIndent(&back, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if string(append(reRaw, '\n')) != string(want) {
		t.Fatal("golden document did not survive a decode/encode round trip")
	}
	// Sanity-pin the scope numbers the golden encodes: cumulative
	// sample scale 2 over 2s → rates are the scale-2 totals halved.
	sc := back.Scope.Shards[0]
	if sc.CoalescibleFraction != 0.25 {
		t.Fatalf("coalescible fraction: %v", sc.CoalescibleFraction)
	}
	// write amp = (log 7600 + wb 40*64) / payload 1600 = 6.35
	if sc.WriteAmp != 6.35 {
		t.Fatalf("write amp: %v", sc.WriteAmp)
	}
	if sc.TxnWriteAmpMean != 4.8 {
		t.Fatalf("txn write amp mean: %v", sc.TxnWriteAmpMean)
	}
	if sc.WastedForcedFraction != 0.2 {
		t.Fatalf("wasted forced fraction: %v", sc.WastedForcedFraction)
	}
	if sc.LiveRecords != 120 || sc.ReplayEstRecords != 120 {
		t.Fatalf("residency: %+v", sc)
	}
	// Wrap forecast: 100 records/s append, tail at 200 of 4096 →
	// (4096-200)/100 = 38.96s; full: free = 4096-(200-80) = 3976 at
	// net (100-40)/s = 66.266…s.
	if sc.WrapETASeconds != 38.96 {
		t.Fatalf("wrap eta: %v", sc.WrapETASeconds)
	}
	if sc.FullETASeconds < 66.2 || sc.FullETASeconds > 66.3 {
		t.Fatalf("full eta: %v", sc.FullETASeconds)
	}
	// The idle shard carries unknown forecasts, not zero (zero would
	// read as "wrapping NOW").
	if idle := back.Scope.Shards[1]; idle.WrapETASeconds != -1 || idle.FullETASeconds != -1 {
		t.Fatalf("idle shard forecast should be -1: %+v", idle)
	}
}

// TestDocDecodeV1Compat proves the version bump is non-breaking for
// stored documents: a v1 /pulse.json (captured before the scope section
// existed) must decode under the v2 struct with every v1 field intact
// and a zero Scope — consumers gate rendering on Version, they do not
// fail to parse.
func TestDocDecodeV1Compat(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "pulse_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("v1 document failed to decode under the v2 struct: %v", err)
	}
	if d.Version != 1 {
		t.Fatalf("version: %d", d.Version)
	}
	if d.Seq != 3 || d.WindowsAggregated != 1 || len(d.Shards) != 1 {
		t.Fatalf("v1 fields lost in decode: %+v", d)
	}
	if d.Shards[0].ThroughputPerSec != 400 || d.Shards[0].LogOccupancy != 0.5 {
		t.Fatalf("v1 shard fields lost: %+v", d.Shards[0])
	}
	if d.E2E.Count != 100 || d.SLO.Total != 100 {
		t.Fatalf("v1 e2e/slo lost: %+v / %+v", d.E2E, d.SLO)
	}
	var zero ScopeDoc
	if len(d.Scope.Shards) != 0 || d.Scope.WriteAmp != zero.WriteAmp {
		t.Fatalf("v1 doc grew a scope section from nowhere: %+v", d.Scope)
	}
}

// TestScopeWrapForecast drives constant append/reclaim rates through
// the collector and checks the forecast against the wrap that then
// actually happens — the pulse-level half of the ±25% acceptance
// criterion (the server e2e covers the live-machine half). With
// perfectly steady rates the forecast should be essentially exact;
// the assertion still allows the ±25% band so mild quantization (a
// tail advance landing just inside a window boundary) cannot flake.
func TestScopeWrapForecast(t *testing.T) {
	const (
		capRecords = 1000
		appendsPS  = 100 // records per 1s window
		reclaimPS  = 60
	)
	clk := &fakeClock{}
	shards := &testShards{samples: make([]ShardSample, 1)}
	c, _, _, _, _ := newTestCollector(clk, shards, obs.NewRegistry())

	var cur ShardSample
	cur.LogCap = capRecords
	advanceWindow := func() {
		cur.LogTail += appendsPS
		cur.LogHead += reclaimPS
		shards.mu.Lock()
		shards.samples[0] = cur
		shards.mu.Unlock()
		clk.advance(1e9)
		c.Tick()
	}

	// Warm up three windows, then take the forecast.
	for i := 0; i < 3; i++ {
		advanceWindow()
	}
	forecast := c.BuildDoc(3).Scope.Shards[0]
	if forecast.WrapETASeconds <= 0 {
		t.Fatalf("no forecast under steady appends: %+v", forecast)
	}
	// Observe the actual wrap: windows until the tail crosses capacity.
	tailAt := cur.LogTail
	observed := 0.0
	for cur.LogTail/capRecords == tailAt/capRecords {
		advanceWindow()
		observed++
	}
	if err := forecast.WrapETASeconds - observed; err > 0.25*observed || err < -0.25*observed {
		t.Fatalf("wrap forecast %.2fs vs observed %.0fs: outside ±25%%", forecast.WrapETASeconds, observed)
	}
	// The full forecast must be longer than the wrap forecast (reclaim
	// buys headroom a wrap does not) and finite under net pressure.
	if forecast.FullETASeconds <= forecast.WrapETASeconds {
		t.Fatalf("full eta %.2f <= wrap eta %.2f", forecast.FullETASeconds, forecast.WrapETASeconds)
	}

	// Reclaim keeping pace exactly: the full forecast must go unknown
	// (-1), never negative or zero.
	c2, _, _, _, _ := newTestCollector(clk, shards, obs.NewRegistry())
	cur = ShardSample{LogCap: capRecords}
	for i := 0; i < 2; i++ {
		cur.LogTail += appendsPS
		cur.LogHead += appendsPS
		shards.mu.Lock()
		shards.samples[0] = cur
		shards.mu.Unlock()
		clk.advance(1e9)
		c2.Tick()
	}
	balanced := c2.BuildDoc(1).Scope.Shards[0]
	if balanced.FullETASeconds != -1 {
		t.Fatalf("balanced reclaim should give unknown full eta: %+v", balanced)
	}
	if balanced.WrapETASeconds <= 0 {
		t.Fatalf("balanced reclaim still wraps on schedule: %+v", balanced)
	}
}
