// Doc building: the versioned JSON document served at /pulse.json and
// rendered by pmtop. BuildDoc aggregates the last N completed windows —
// delta bucket vectors are summed before quantiling, so a multi-window
// p99 is a real quantile of the union, not an average of averages.
package pulse

import (
	"sort"

	"pmemlog/internal/flight"
	"pmemlog/internal/mem"
	"pmemlog/internal/obs"
)

// DocVersion is the /pulse.json schema version. Consumers (pmtop)
// refuse documents with a version they do not know.
//
// History: v1 = latency/liveness (ops, stages, shards, SLO, history);
// v2 added the `scope` persistence-domain cost section. The bump is
// additive — a v1 document decodes under the v2 struct with a zero
// Scope (see TestDocDecodeV1Compat) — but consumers that render scope
// must gate on the version, so it counts as a schema change.
const DocVersion = 2

// maxDocExemplars caps the exemplar list in one document.
const maxDocExemplars = 8

// Quantiles is a windowed latency summary: completion count and rate
// plus interpolated quantiles of the summed delta buckets.
type Quantiles struct {
	Count      uint64  `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	MeanNS     float64 `json:"mean_ns"`
	P50NS      uint64  `json:"p50_ns"`
	P95NS      uint64  `json:"p95_ns"`
	P99NS      uint64  `json:"p99_ns"`
	P999NS     uint64  `json:"p999_ns"`
	MaxNS      uint64  `json:"max_ns"`
}

// OpDoc is one op's windowed latency summary.
type OpDoc struct {
	Op string `json:"op"`
	Quantiles
}

// StageDoc is one pipeline stage's windowed latency summary plus its
// share of the end-to-end p99 — the waterfall pmtop draws. Shares of a
// fully-marked pipeline sum to ~1.0 of the e2e p99; a stage share that
// dominates names the bottleneck in the paper's vocabulary (an "fwb"
// share spike is forced-write-back pressure).
type StageDoc struct {
	Stage string `json:"stage"`
	Quantiles
	ShareP99 float64 `json:"share_p99"`
}

// ShardDoc is one shard's windowed rates and pressure gauges.
type ShardDoc struct {
	Shard            int     `json:"shard"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	BatchesPerSec    float64 `json:"batches_per_sec"`
	SavesPerSec      float64 `json:"saves_per_sec"`
	TxnsPerSec       float64 `json:"txns_per_sec"`
	LogAppendsPerSec float64 `json:"log_appends_per_sec"`
	LogTruncPerSec   float64 `json:"log_trunc_per_sec"`
	FwbScansPerSec   float64 `json:"fwb_scans_per_sec"`
	NVRAMBytesPerSec float64 `json:"nvram_bytes_per_sec"`
	QueueLen         int     `json:"queue_len"`
	QueueCap         int     `json:"queue_cap"`
	LogOccupancy     float64 `json:"log_occupancy"`
	WrapRatePerSec   float64 `json:"wrap_rate_per_sec"`
}

// ScopeShardDoc is one shard's windowed persistence-domain cost view:
// where every NVRAM byte went (log classes, forced/natural
// write-backs), what it bought (payload), and how long the circular log
// can keep absorbing it (wrap/full forecast). ETAs are -1 when unknown
// (no appends this window, or reclaim keeps up).
type ScopeShardDoc struct {
	Shard int `json:"shard"`

	PayloadBytesPerSec     float64 `json:"payload_bytes_per_sec"`
	LogBytesPerSec         float64 `json:"log_bytes_per_sec"`
	LogUndoBytesPerSec     float64 `json:"log_undo_bytes_per_sec"`
	LogRedoBytesPerSec     float64 `json:"log_redo_bytes_per_sec"`
	LogHeaderBytesPerSec   float64 `json:"log_header_bytes_per_sec"`
	LogChecksumBytesPerSec float64 `json:"log_checksum_bytes_per_sec"`
	ForcedWBBytesPerSec    float64 `json:"forced_wb_bytes_per_sec"`
	NaturalWBBytesPerSec   float64 `json:"natural_wb_bytes_per_sec"`

	// WriteAmp = (log + forced-WB + natural-WB bytes) / payload bytes
	// over the aggregated windows; TxnWriteAmpMean is the mean of the
	// per-transaction log-bytes/payload ratios committed this window.
	WriteAmp        float64 `json:"write_amp"`
	TxnWriteAmpMean float64 `json:"txn_write_amp_mean"`

	// CoalescibleFraction is the share of update appends that re-hit a
	// line their transaction had already logged; WastedForcedFraction
	// the share of forced write-backs re-dirtied before the next scan.
	CoalescibleFraction  float64 `json:"coalescible_fraction"`
	WastedForcedFraction float64 `json:"wasted_forced_fraction"`

	// Scan productivity: lines forced out and lines newly flagged per
	// scan pass this window.
	FwbForcedPerScan  float64 `json:"fwb_forced_per_scan"`
	FwbFlaggedPerScan float64 `json:"fwb_flagged_per_scan"`

	// Residency: records currently live in the log (recovery replays at
	// most these — the Sauer/Härder bound recovery time should track).
	LiveRecords      uint64 `json:"live_records"`
	ReplayEstRecords uint64 `json:"replay_est_records"`

	// WrapETASeconds forecasts when the tail next crosses a capacity
	// boundary (a log wrap) at this window's append rate;
	// FullETASeconds when the log runs out of free records at the net
	// (append - reclaim) rate.
	WrapETASeconds float64 `json:"wrap_eta_seconds"`
	FullETASeconds float64 `json:"full_eta_seconds"`
}

// ScopeDoc is the cluster-wide persistence-domain cost summary plus the
// per-shard breakdown.
type ScopeDoc struct {
	WriteAmp            float64         `json:"write_amp"`
	PayloadBytesPerSec  float64         `json:"payload_bytes_per_sec"`
	LogBytesPerSec      float64         `json:"log_bytes_per_sec"`
	WBBytesPerSec       float64         `json:"wb_bytes_per_sec"`
	CoalescibleFraction float64         `json:"coalescible_fraction"`
	Shards              []ScopeShardDoc `json:"shards"`
}

// SLODoc is the latency-objective burn view over the aggregated
// windows. BurnRate is bad-fraction/budget: 1.0 consumes the error
// budget exactly as fast as it refills; >1 is an active burn.
type SLODoc struct {
	ObjectiveNS int64   `json:"objective_ns"`
	Budget      float64 `json:"budget"`
	Total       uint64  `json:"total"`
	Bad         uint64  `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	BurnRate    float64 `json:"burn_rate"`
}

// ExemplarDoc is one retained tail request with its stage breakdown.
// SpanID is the wire span ID — resolvable against a flight dump
// (pmdoctor -span). Stage durations of -1 mean the mark was missing.
type ExemplarDoc struct {
	SpanID  uint64 `json:"span_id"`
	Op      string `json:"op"`
	Shard   int    `json:"shard"`
	Status  int    `json:"status"`
	LatNS   int64  `json:"lat_ns"`
	RouteNS int64  `json:"route_ns"`
	QueueNS int64  `json:"queue_ns"`
	ApplyNS int64  `json:"apply_ns"`
	FwbNS   int64  `json:"fwb_ns"`
	AckNS   int64  `json:"ack_ns"`
}

// HistoryDoc is the per-window trend over every retained window, oldest
// first — what pmtop draws sparklines from.
type HistoryDoc struct {
	WindowNS         []int64   `json:"window_ns"`
	ThroughputPerSec []float64 `json:"throughput_per_sec"`
	WrapRatePerSec   []float64 `json:"wrap_rate_per_sec"`
	P99NS            []uint64  `json:"p99_ns"`
	BurnRate         []float64 `json:"burn_rate"`
}

// Doc is the /pulse.json document.
type Doc struct {
	Version      int    `json:"version"`
	Addr         string `json:"addr,omitempty"`
	Mode         string `json:"mode,omitempty"`
	CapturedAtNS int64  `json:"captured_at_ns"`
	UptimeNS     int64  `json:"uptime_ns"`
	IntervalNS   int64  `json:"interval_ns"`
	// Seq counts completed windows since start; two documents with the
	// same Seq describe the same windows.
	Seq uint64 `json:"seq"`
	// WindowsAggregated is how many windows the Ops/Stages/E2E/SLO/
	// Shards summaries cover; WindowsRetained is the history depth.
	WindowsAggregated int `json:"windows_aggregated"`
	WindowsRetained   int `json:"windows_retained"`

	Shards    []ShardDoc    `json:"shards"`
	Scope     ScopeDoc      `json:"scope"`
	Ops       []OpDoc       `json:"ops"`
	Stages    []StageDoc    `json:"stages"`
	E2E       Quantiles     `json:"e2e"`
	SLO       SLODoc        `json:"slo"`
	Exemplars []ExemplarDoc `json:"exemplars,omitempty"`
	History   HistoryDoc    `json:"history"`
}

// addSnap accumulates src's delta buckets into dst.
func addSnap(dst, src *obs.HistogramSnapshot) {
	dst.Count += src.Count
	dst.Sum += src.Sum
	if src.Max > dst.Max {
		dst.Max = src.Max
	}
	for i := range dst.Buckets {
		dst.Buckets[i] += src.Buckets[i]
	}
}

// quantiles summarizes an aggregated delta snapshot over secs seconds.
func quantiles(s *obs.HistogramSnapshot, secs float64) Quantiles {
	q := Quantiles{Count: s.Count, MaxNS: s.Max}
	if secs > 0 {
		q.RatePerSec = float64(s.Count) / secs
	}
	if s.Count > 0 {
		q.MeanNS = float64(s.Sum) / float64(s.Count)
		q.P50NS = s.Quantile(0.50)
		q.P95NS = s.Quantile(0.95)
		q.P99NS = s.Quantile(0.99)
		q.P999NS = s.Quantile(0.999)
		// Intra-bucket interpolation can land above the true observed max
		// (the top bucket spans up to 2× the largest value in it); the
		// exact max is tracked, so cap the tail quantiles there.
		if q.MaxNS > 0 {
			for _, p := range []*uint64{&q.P50NS, &q.P95NS, &q.P99NS, &q.P999NS} {
				if *p > q.MaxNS {
					*p = q.MaxNS
				}
			}
		}
	}
	return q
}

// BuildDoc aggregates the last `over` completed windows (clamped to
// what the ring retains; over<=0 means one window) into a Doc. Called
// off the hot path by the HTTP handler and tests; allocates freely.
func (c *Collector) BuildDoc(over int) *Doc {
	c.mu.Lock()
	defer c.mu.Unlock()

	d := &Doc{
		Version:      DocVersion,
		CapturedAtNS: c.cfg.NowNS(),
		IntervalNS:   int64(c.cfg.Interval),
		Seq:          c.pos,
	}
	d.UptimeNS = d.CapturedAtNS
	ret := c.retained()
	d.WindowsRetained = ret
	if ret == 0 {
		d.Shards = make([]ShardDoc, 0)
		d.Ops = make([]OpDoc, 0)
		d.Stages = make([]StageDoc, 0)
		return d
	}
	if over <= 0 {
		over = 1
	}
	if over > ret {
		over = ret
	}
	d.WindowsAggregated = over

	// windowAt(k) = the k-th most recent completed window (k=0 newest).
	windowAt := func(k int) *window {
		return &c.ring[(c.pos-1-uint64(k))%uint64(len(c.ring))]
	}

	// Aggregate the last `over` windows.
	opAgg := make([]obs.HistogramSnapshot, len(c.ops))
	stageAgg := make([]obs.HistogramSnapshot, len(c.stages))
	var e2eAgg obs.HistogramSnapshot
	var sloTotal, sloBad uint64
	shardAgg := make([]shardWindow, c.cfg.Shards)
	var spanNS int64
	exemplars := make([]Exemplar, 0, over*MaxExemplars)
	for k := 0; k < over; k++ {
		w := windowAt(k)
		spanNS += w.endNS - w.startNS
		for i := range w.ops {
			addSnap(&opAgg[i], &w.ops[i])
		}
		for i := range w.stages {
			addSnap(&stageAgg[i], &w.stages[i])
		}
		addSnap(&e2eAgg, &w.e2e)
		sloTotal += w.sloTotal
		sloBad += w.sloBad
		for i := range w.shards {
			sw, a := &w.shards[i], &shardAgg[i]
			a.requests += sw.requests
			a.batches += sw.batches
			a.saves += sw.saves
			a.txns += sw.txns
			a.logAppends += sw.logAppends
			a.logTruncated += sw.logTruncated
			a.fwbScans += sw.fwbScans
			a.nvramBytes += sw.nvramBytes
			a.wrap += sw.wrap
			a.payloadBytes += sw.payloadBytes
			a.logUndoBytes += sw.logUndoBytes
			a.logRedoBytes += sw.logRedoBytes
			a.logHeaderBytes += sw.logHeaderBytes
			a.logChecksumBytes += sw.logChecksumBytes
			a.logBusBytes += sw.logBusBytes
			a.dataBusBytes += sw.dataBusBytes
			a.updateAppends += sw.updateAppends
			a.coalescible += sw.coalescible
			a.forcedWB += sw.forcedWB
			a.naturalWB += sw.naturalWB
			a.wastedForcedWB += sw.wastedForcedWB
			a.fwbFlagged += sw.fwbFlagged
			a.txnsMeasured += sw.txnsMeasured
			a.txnAmpMilliSum += sw.txnAmpMilliSum
			a.tailAdvance += sw.tailAdvance
			a.headAdvance += sw.headAdvance
			if k == 0 { // gauges: newest window wins
				a.queueLen, a.queueCap, a.occupancy = sw.queueLen, sw.queueCap, sw.occupancy
				a.logHead, a.logTail, a.logCap = sw.logHead, sw.logTail, sw.logCap
				a.liveRecords = sw.liveRecords
			}
		}
		exemplars = append(exemplars, w.exemplars[:w.exN]...)
	}
	secs := float64(spanNS) / 1e9

	d.E2E = quantiles(&e2eAgg, secs)
	d.Ops = make([]OpDoc, len(c.ops))
	for i := range c.ops {
		d.Ops[i] = OpDoc{Op: c.ops[i].name, Quantiles: quantiles(&opAgg[i], secs)}
	}
	d.Stages = make([]StageDoc, len(c.stages))
	for i := range c.stages {
		d.Stages[i] = StageDoc{Stage: c.stages[i].name, Quantiles: quantiles(&stageAgg[i], secs)}
		if d.E2E.P99NS > 0 {
			d.Stages[i].ShareP99 = float64(d.Stages[i].P99NS) / float64(d.E2E.P99NS)
		}
	}
	d.Shards = make([]ShardDoc, c.cfg.Shards)
	for i := range shardAgg {
		a := &shardAgg[i]
		sd := ShardDoc{
			Shard:        i,
			QueueLen:     a.queueLen,
			QueueCap:     a.queueCap,
			LogOccupancy: a.occupancy,
		}
		if secs > 0 {
			sd.ThroughputPerSec = float64(a.requests) / secs
			sd.BatchesPerSec = float64(a.batches) / secs
			sd.SavesPerSec = float64(a.saves) / secs
			sd.TxnsPerSec = float64(a.txns) / secs
			sd.LogAppendsPerSec = float64(a.logAppends) / secs
			sd.LogTruncPerSec = float64(a.logTruncated) / secs
			sd.FwbScansPerSec = float64(a.fwbScans) / secs
			sd.NVRAMBytesPerSec = float64(a.nvramBytes) / secs
			sd.WrapRatePerSec = a.wrap / secs
		}
		d.Shards[i] = sd
	}
	d.Scope = buildScope(shardAgg, secs)
	d.SLO = SLODoc{
		ObjectiveNS: c.cfg.SLOLatencyNS,
		Budget:      c.cfg.SLOBudget,
		Total:       sloTotal,
		Bad:         sloBad,
	}
	if sloTotal > 0 {
		d.SLO.BadFraction = float64(sloBad) / float64(sloTotal)
		d.SLO.BurnRate = d.SLO.BadFraction / c.cfg.SLOBudget
	}

	// Slowest exemplars across the aggregated windows, slowest first.
	sort.Slice(exemplars, func(a, b int) bool { return exemplars[a].LatNS > exemplars[b].LatNS })
	if len(exemplars) > maxDocExemplars {
		exemplars = exemplars[:maxDocExemplars]
	}
	for i := range exemplars {
		d.Exemplars = append(d.Exemplars, exemplarDoc(&exemplars[i]))
	}

	// History over every retained window, oldest first.
	d.History = HistoryDoc{
		WindowNS:         make([]int64, ret),
		ThroughputPerSec: make([]float64, ret),
		WrapRatePerSec:   make([]float64, ret),
		P99NS:            make([]uint64, ret),
		BurnRate:         make([]float64, ret),
	}
	for k := 0; k < ret; k++ {
		w := windowAt(ret - 1 - k)
		dur := w.endNS - w.startNS
		d.History.WindowNS[k] = dur
		wsecs := float64(dur) / 1e9
		var reqs uint64
		var wrapMax float64
		for i := range w.shards {
			reqs += w.shards[i].requests
			if w.shards[i].wrap > wrapMax {
				wrapMax = w.shards[i].wrap
			}
		}
		if wsecs > 0 {
			d.History.ThroughputPerSec[k] = float64(reqs) / wsecs
			d.History.WrapRatePerSec[k] = wrapMax / wsecs
		}
		if w.e2e.Count > 0 {
			d.History.P99NS[k] = w.e2e.Quantile(0.99)
		}
		if w.sloTotal > 0 {
			d.History.BurnRate[k] = float64(w.sloBad) / float64(w.sloTotal) / c.cfg.SLOBudget
		}
	}
	return d
}

// buildScope derives the persistence-domain cost section from the
// aggregated shard windows.
func buildScope(shardAgg []shardWindow, secs float64) ScopeDoc {
	sc := ScopeDoc{Shards: make([]ScopeShardDoc, len(shardAgg))}
	var totPayload, totLog, totWB, totUpdates, totCoalescible uint64
	for i := range shardAgg {
		a := &shardAgg[i]
		logBytes := a.logUndoBytes + a.logRedoBytes + a.logHeaderBytes + a.logChecksumBytes
		wbBytes := (a.forcedWB + a.naturalWB) * mem.LineSize
		s := ScopeShardDoc{
			Shard:            i,
			LiveRecords:      a.liveRecords,
			ReplayEstRecords: a.liveRecords,
			WrapETASeconds:   -1,
			FullETASeconds:   -1,
		}
		if secs > 0 {
			s.PayloadBytesPerSec = float64(a.payloadBytes) / secs
			s.LogBytesPerSec = float64(logBytes) / secs
			s.LogUndoBytesPerSec = float64(a.logUndoBytes) / secs
			s.LogRedoBytesPerSec = float64(a.logRedoBytes) / secs
			s.LogHeaderBytesPerSec = float64(a.logHeaderBytes) / secs
			s.LogChecksumBytesPerSec = float64(a.logChecksumBytes) / secs
			s.ForcedWBBytesPerSec = float64(a.forcedWB) * mem.LineSize / secs
			s.NaturalWBBytesPerSec = float64(a.naturalWB) * mem.LineSize / secs
		}
		if a.payloadBytes > 0 {
			s.WriteAmp = float64(logBytes+wbBytes) / float64(a.payloadBytes)
		}
		if a.txnsMeasured > 0 {
			s.TxnWriteAmpMean = float64(a.txnAmpMilliSum) / float64(a.txnsMeasured) / 1000
		}
		if a.updateAppends > 0 {
			s.CoalescibleFraction = float64(a.coalescible) / float64(a.updateAppends)
		}
		if a.forcedWB > 0 {
			s.WastedForcedFraction = float64(a.wastedForcedWB) / float64(a.forcedWB)
		}
		if a.fwbScans > 0 {
			s.FwbForcedPerScan = float64(a.forcedWB) / float64(a.fwbScans)
			s.FwbFlaggedPerScan = float64(a.fwbFlagged) / float64(a.fwbScans)
		}
		// Wrap forecast: seconds until the tail next crosses a capacity
		// boundary at this window's append rate; full forecast: seconds
		// until free records run out at the net append-minus-reclaim
		// rate. Head/tail are monotonic record sequence numbers.
		if secs > 0 && a.logCap > 0 && a.tailAdvance > 0 {
			appendRate := float64(a.tailAdvance) / secs
			s.WrapETASeconds = float64(a.logCap-a.logTail%a.logCap) / appendRate
			if net := appendRate - float64(a.headAdvance)/secs; net > 0 {
				if free := a.logCap - (a.logTail - a.logHead); free > 0 {
					s.FullETASeconds = float64(free) / net
				} else {
					s.FullETASeconds = 0
				}
			}
		}
		sc.Shards[i] = s
		totPayload += a.payloadBytes
		totLog += logBytes
		totWB += wbBytes
		totUpdates += a.updateAppends
		totCoalescible += a.coalescible
	}
	if secs > 0 {
		sc.PayloadBytesPerSec = float64(totPayload) / secs
		sc.LogBytesPerSec = float64(totLog) / secs
		sc.WBBytesPerSec = float64(totWB) / secs
	}
	if totPayload > 0 {
		sc.WriteAmp = float64(totLog+totWB) / float64(totPayload)
	}
	if totUpdates > 0 {
		sc.CoalescibleFraction = float64(totCoalescible) / float64(totUpdates)
	}
	return sc
}

// exemplarDoc flattens a retained span into the document form via the
// latency-stage decomposition (missing marks become -1).
func exemplarDoc(e *Exemplar) ExemplarDoc {
	var st [flight.NumLatStages]int64
	e.Span.StageDurations(&st)
	return ExemplarDoc{
		SpanID:  e.Span.ID,
		Op:      opName(e.Span.Op),
		Shard:   e.Span.Shard,
		Status:  e.Span.Status,
		LatNS:   e.LatNS,
		RouteNS: st[flight.LatRoute],
		QueueNS: st[flight.LatQueue],
		ApplyNS: st[flight.LatApply],
		FwbNS:   st[flight.LatFWB],
		AckNS:   st[flight.LatAck],
	}
}

// opName maps a wire opcode to its display name (matches pmdoctor).
func opName(op uint8) string {
	switch op {
	case 0x01:
		return "get"
	case 0x02:
		return "put"
	case 0x03:
		return "del"
	case 0x04:
		return "txn"
	case 0x05:
		return "stats"
	case 0x06:
		return "metrics"
	}
	return "other"
}
