package pulse

import (
	"encoding/json"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmemlog/internal/flight"
	"pmemlog/internal/obs"
)

// fakeClock is a manually-advanced telemetry clock.
type fakeClock struct{ ns atomic.Int64 }

func (f *fakeClock) now() int64      { return f.ns.Load() }
func (f *fakeClock) advance(d int64) { f.ns.Add(d) }

// testShards is a mutable SampleShard backend.
type testShards struct {
	mu      sync.Mutex
	samples []ShardSample
}

func (t *testShards) sample(i int, out *ShardSample) {
	t.mu.Lock()
	defer t.mu.Unlock()
	*out = t.samples[i]
}

func newTestCollector(clk *fakeClock, shards *testShards, reg *obs.Registry) (*Collector, *obs.Histogram, *obs.Histogram, *obs.Counter, *obs.Counter) {
	c := New(Config{
		Interval:     time.Second,
		Windows:      8,
		Shards:       len(shards.samples),
		SampleShard:  shards.sample,
		NowNS:        clk.now,
		SLOLatencyNS: int64(time.Millisecond),
		SLOBudget:    0.001,
	})
	opH := reg.Histogram("op_ns", `op="put"`, "")
	e2e := reg.Histogram("e2e_ns", "", "")
	total := reg.Counter("slo_total", "", "")
	bad := reg.Counter("slo_bad", "", "")
	c.TrackOp("put", opH)
	c.TrackE2E(e2e)
	c.TrackSLO(total, bad)
	return c, opH, e2e, total, bad
}

func TestPulseWindowedValues(t *testing.T) {
	clk := &fakeClock{}
	shards := &testShards{samples: make([]ShardSample, 2)}
	shards.samples[0] = ShardSample{QueueCap: 64, LogCap: 1 << 20}
	shards.samples[1] = ShardSample{QueueCap: 64, LogCap: 1 << 20}
	c, opH, e2e, total, bad := newTestCollector(clk, shards, obs.NewRegistry())

	// Window 1: 100 op completions at 1..100ns, one SLO violation,
	// shard 0 handles 400 requests and advances the log half a pass.
	for v := uint64(1); v <= 100; v++ {
		opH.Observe(v)
		e2e.Observe(v)
	}
	total.Add(100)
	bad.Inc()
	shards.mu.Lock()
	shards.samples[0].Requests = 400
	shards.samples[0].LogTail = 1 << 19
	shards.samples[0].QueueLen = 16
	shards.mu.Unlock()
	clk.advance(1e9)
	c.Tick()

	d := c.BuildDoc(1)
	if d.Version != DocVersion || d.Seq != 1 || d.WindowsAggregated != 1 {
		t.Fatalf("doc header: %+v", d)
	}
	if len(d.Ops) != 1 || d.Ops[0].Op != "put" {
		t.Fatalf("ops: %+v", d.Ops)
	}
	q := d.Ops[0].Quantiles
	if q.Count != 100 || q.RatePerSec != 100 || q.MeanNS != 50.5 {
		t.Fatalf("window 1 op quantiles: %+v", q)
	}
	if q.P50NS < 32 || q.P50NS > 63 {
		t.Fatalf("window 1 p50 out of bucket [32,63]: %d", q.P50NS)
	}
	if d.SLO.Total != 100 || d.SLO.Bad != 1 {
		t.Fatalf("slo: %+v", d.SLO)
	}
	if d.SLO.BadFraction != 0.01 || d.SLO.BurnRate != 10 {
		t.Fatalf("slo burn: %+v", d.SLO)
	}
	s0 := d.Shards[0]
	if s0.ThroughputPerSec != 400 || s0.QueueLen != 16 || s0.QueueCap != 64 {
		t.Fatalf("shard 0: %+v", s0)
	}
	if s0.LogOccupancy != 0.5 || s0.WrapRatePerSec != 0.5 {
		t.Fatalf("shard 0 log pressure: %+v", s0)
	}
	if d.Shards[1].ThroughputPerSec != 0 {
		t.Fatalf("idle shard 1 has throughput: %+v", d.Shards[1])
	}

	// Window 2: 10 completions at 1000ns only; the windowed p50 must
	// reflect this window's bucket [512,1023], not the lifetime mix.
	for i := 0; i < 10; i++ {
		opH.Observe(1000)
		e2e.Observe(1000)
	}
	clk.advance(2e9) // a 2s window: rates must use real duration
	c.Tick()

	d = c.BuildDoc(1)
	q = d.Ops[0].Quantiles
	if q.Count != 10 || q.RatePerSec != 5 {
		t.Fatalf("window 2 rate: %+v", q)
	}
	if q.P50NS < 512 || q.P50NS > 1023 {
		t.Fatalf("window 2 p50 out of bucket [512,1023]: %d", q.P50NS)
	}
	// Aggregating both windows unions the buckets: 110 samples / 3s.
	d = c.BuildDoc(2)
	q = d.Ops[0].Quantiles
	if q.Count != 110 || q.RatePerSec != 110.0/3.0 {
		t.Fatalf("aggregate: %+v", q)
	}
	if len(d.History.ThroughputPerSec) != 2 || d.History.ThroughputPerSec[0] != 400 || d.History.ThroughputPerSec[1] != 0 {
		t.Fatalf("history throughput: %+v", d.History.ThroughputPerSec)
	}
	if d.History.WrapRatePerSec[0] != 0.5 {
		t.Fatalf("history wrap: %+v", d.History.WrapRatePerSec)
	}

	wrap, qf, occ, ok := c.ShardPressure(0)
	if !ok || wrap != 0 || qf != 0.25 || occ != 0.5 {
		t.Fatalf("shard pressure: wrap=%v queue=%v occ=%v ok=%v", wrap, qf, occ, ok)
	}
	if _, _, _, ok := c.ShardPressure(99); ok {
		t.Fatal("unknown shard reported ok")
	}
}

func TestPulseBeforeFirstTick(t *testing.T) {
	clk := &fakeClock{}
	shards := &testShards{samples: make([]ShardSample, 1)}
	c, _, _, _, _ := newTestCollector(clk, shards, obs.NewRegistry())
	if _, _, _, ok := c.ShardPressure(0); ok {
		t.Fatal("pressure ok before first tick")
	}
	d := c.BuildDoc(4)
	if d.WindowsAggregated != 0 || d.WindowsRetained != 0 {
		t.Fatalf("empty doc: %+v", d)
	}
	if d.Shards == nil || d.Ops == nil {
		t.Fatal("empty doc must carry empty arrays, not nulls")
	}
}

func TestPulseExemplars(t *testing.T) {
	clk := &fakeClock{}
	shards := &testShards{samples: make([]ShardSample, 1)}
	c, _, _, _, _ := newTestCollector(clk, shards, obs.NewRegistry())
	tbl := flight.NewTable(16, 4, int64(time.Hour))

	mkSpan := func(id uint64, latNS int64) *flight.Span {
		sp := tbl.Acquire(id, 0x02, 1000)
		sp.SetShard(0)
		sp.Mark(flight.StageEnqueue, 1000+latNS/10)
		sp.Mark(flight.StageApply, 1000+latNS/2)
		return sp
	}

	// Offer MaxExemplars+2 spans; only the slowest MaxExemplars stay.
	lats := []int64{500, 100, 900, 300, 700, 200}
	for i, lat := range lats {
		c.NoteFinished(mkSpan(uint64(i+1), lat), 0, 1000+lat)
	}
	// Floor is now 300 (kept: 900,700,500,300); a 250ns span must be
	// rejected on the atomic fast path without locking.
	if f := c.exFloor.Load(); f != 300 {
		t.Fatalf("exemplar floor: %d", f)
	}
	c.NoteFinished(mkSpan(100, 250), 0, 1250)

	clk.advance(1e9)
	c.Tick()
	d := c.BuildDoc(1)
	if len(d.Exemplars) != MaxExemplars {
		t.Fatalf("exemplar count: %d", len(d.Exemplars))
	}
	wantLats := []int64{900, 700, 500, 300}
	for i, e := range d.Exemplars {
		if e.LatNS != wantLats[i] {
			t.Fatalf("exemplar %d: got lat %d want %d (%+v)", i, e.LatNS, wantLats[i], d.Exemplars)
		}
		if e.Op != "put" || e.Shard != 0 || e.SpanID == 0 {
			t.Fatalf("exemplar %d attribution: %+v", i, e)
		}
	}
	// The slowest exemplar resolves its stage decomposition: route is
	// recv→enqueue, and unmarked stages are -1, not zero.
	top := d.Exemplars[0]
	if top.RouteNS != 90 || top.QueueNS != 360 {
		t.Fatalf("exemplar stages: %+v", top)
	}
	if top.FwbNS != -1 || top.AckNS != -1 {
		t.Fatalf("unmarked exemplar stages must be -1: %+v", top)
	}

	// Tick reset the capture: the next window starts empty.
	clk.advance(1e9)
	c.Tick()
	if d = c.BuildDoc(1); len(d.Exemplars) != 0 {
		t.Fatalf("exemplars leaked across windows: %+v", d.Exemplars)
	}
	// But aggregating both windows still surfaces the old ones.
	if d = c.BuildDoc(2); len(d.Exemplars) != MaxExemplars {
		t.Fatalf("aggregated exemplars: %+v", d.Exemplars)
	}
}

func TestPulseSchemaRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	shards := &testShards{samples: make([]ShardSample, 2)}
	shards.samples[0] = ShardSample{QueueCap: 8, LogCap: 4096, LogTail: 1024, Requests: 7}
	c, opH, e2e, total, bad := newTestCollector(clk, shards, obs.NewRegistry())
	for v := uint64(1); v <= 50; v++ {
		opH.Observe(v * 100)
		e2e.Observe(v * 100)
	}
	total.Add(50)
	bad.Add(2)
	tbl := flight.NewTable(4, 2, int64(time.Hour))
	sp := tbl.Acquire(42, 0x04, 10)
	sp.SetShard(1)
	sp.Mark(flight.StageEnqueue, 20)
	c.NoteFinished(sp, 0, 5000)
	clk.advance(1e9)
	c.Tick()

	d := c.BuildDoc(1)
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*d, back) {
		t.Fatalf("schema round trip drifted:\n  out: %+v\n  back: %+v", *d, back)
	}
	// Spot-check the wire names are stable — pmtop depends on them.
	var loose map[string]any
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "seq", "shards", "ops", "stages", "e2e", "slo", "history", "exemplars"} {
		if _, found := loose[key]; !found {
			t.Fatalf("wire key %q missing: %s", key, raw)
		}
	}
}

// TestPulseConcurrentWriters runs writers against the tracked sources
// while ticking and reading: under -race this proves the snapshot path
// is torn-read free, and the final aggregate proves no completion is
// lost or double-counted across window boundaries.
func TestPulseConcurrentWriters(t *testing.T) {
	clk := &fakeClock{}
	shards := &testShards{samples: make([]ShardSample, 1)}
	reg := obs.NewRegistry()
	c, opH, e2e, total, _ := newTestCollector(clk, shards, reg)
	tbl := flight.NewTable(8, 4, int64(time.Hour))

	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Ticker goroutine: close windows continuously while writes land.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.advance(1e6)
				c.Tick()
				_ = c.BuildDoc(3)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := tbl.Acquire(uint64(w+1), 0x02, 1)
			for i := 0; i < perWriter; i++ {
				v := uint64(i%1000 + 1)
				opH.Observe(v)
				e2e.Observe(v)
				total.Inc()
				c.NoteFinished(sp, 0, int64(v)+1)
			}
		}(w)
	}
	// Wait for writers only, then stop the ticker.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish fast; the ticker stops when told.
	for {
		if total.Value() == writers*perWriter {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	// One final window flushes anything after the last tick; the ring
	// is too small to retain every window, so re-baseline instead:
	// every completion must be in exactly one window (sum of retained
	// window counts ≤ total, and a fresh collector over the same
	// sources accounts for all of them).
	clk.advance(1e9)
	c.Tick()
	var retainedCount uint64
	d := c.BuildDoc(c.cfg.Windows)
	retainedCount = d.Ops[0].Count
	if retainedCount > writers*perWriter {
		t.Fatalf("windows double-counted: retained %d > written %d", retainedCount, writers*perWriter)
	}
	// Cross-check with a fresh collector taking one giant window over
	// the same histogram: its zero baseline must see every completion
	// exactly once.
	c2 := New(Config{Interval: time.Second, Windows: 2, Shards: 0, NowNS: clk.now})
	c2.TrackOp("put", opH)
	clk.advance(1e9)
	c2.Tick()
	if d2 := c2.BuildDoc(1); d2.Ops[0].Count != writers*perWriter {
		t.Fatalf("fresh collector lost completions: %d != %d", d2.Ops[0].Count, writers*perWriter)
	}
}

func TestPulseZeroAllocSteadyState(t *testing.T) {
	clk := &fakeClock{}
	shards := &testShards{samples: make([]ShardSample, 4)}
	c, opH, e2e, total, bad := newTestCollector(clk, shards, obs.NewRegistry())
	tbl := flight.NewTable(4, 2, int64(time.Hour))
	sp := tbl.Acquire(7, 0x02, 100)
	sp.Mark(flight.StageEnqueue, 150)

	// Warm: first Tick allocates the ring, second proves reuse.
	for i := 0; i < 3; i++ {
		opH.Observe(uint64(i + 1))
		e2e.Observe(uint64(i + 1))
		total.Inc()
		bad.Inc()
		c.NoteFinished(sp, 0, int64(1000+i))
		clk.advance(1e9)
		c.Tick()
	}
	if n := testing.AllocsPerRun(100, func() {
		opH.Observe(42)
		c.NoteFinished(sp, 0, 2000)
		clk.advance(1e9)
		c.Tick()
	}); n != 0 {
		t.Fatalf("steady-state tick allocates: %v allocs/op", n)
	}
}
