package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"pmemlog/internal/stats"
)

// Chrome trace_event export. The format is the JSON Object Format from
// the Trace Event Format spec: a top-level object with a "traceEvents"
// array, loadable in about:tracing and Perfetto. Transactions become
// duration ("B"/"E") events nested per ring (= per simulated thread);
// everything else becomes thread-scoped instant ("i") events, so a
// wrap-around or buffer stall shows up as a tick exactly where it
// happened relative to the transactions above it.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// category groups kinds into about:tracing filter categories.
func category(k Kind) string {
	switch k {
	case KindTxBegin, KindTxCommit, KindTxAbort:
		return "txn"
	case KindLogAppend, KindLogWrap, KindLogStall, KindLogTruncate:
		return "log"
	case KindBufDrain, KindBufStall, KindWriteBack:
		return "memctl"
	case KindFwbScan, KindFwbForced:
		return "fwb"
	case KindSrvRecv, KindSrvEnqueue, KindSrvApply, KindSrvAck:
		return "server"
	}
	return "misc"
}

// argsFor decodes the kind-specific payload into named args.
func argsFor(e Event) map[string]any {
	a := map[string]any{}
	if e.TxID != 0 {
		a["txid"] = e.TxID
	}
	switch e.Kind {
	case KindLogAppend, KindSrvRecv, KindSrvEnqueue, KindSrvApply, KindSrvAck:
		a["seq"] = e.Arg
	case KindLogWrap:
		a["pass"] = e.Arg
	case KindLogTruncate:
		a["records"] = e.Arg
	case KindLogStall, KindBufStall:
		a["detail"] = e.Arg
	case KindBufDrain, KindFwbForced, KindWriteBack:
		a["addr"] = fmt.Sprintf("0x%x", e.Arg)
	case KindFwbScan:
		a["flagged"] = e.Arg & 0xffffffff
		a["forced"] = e.Arg >> 32
	}
	if len(a) == 0 {
		return nil
	}
	return a
}

// WriteChromeTrace renders events (as returned by Tracer.Snapshot) as
// Chrome trace_event JSON. cyclesPerMicro converts timestamps to the
// microsecond axis the viewer expects; pass 1 to display raw ticks.
// ringNames, when non-nil, labels the per-ring tracks (index = ring).
func WriteChromeTrace(w io.Writer, events []Event, cyclesPerMicro float64, ringNames []string) error {
	if cyclesPerMicro <= 0 {
		cyclesPerMicro = 1
	}
	var out []chromeEvent
	for i, name := range ringNames {
		out = append(out, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   i,
			Args:  map[string]any{"name": name},
		})
	}

	// Depth of open "B" events per ring: a commit whose begin was
	// overwritten by ring wrap-around must not emit an unmatched "E",
	// and a begin whose commit fell outside the window is closed at
	// the trace's end so the viewer still shows the open span.
	depth := map[uint8]int{}
	openTx := map[uint8][]Event{}
	lastTS := 0.0
	for _, e := range events {
		ts := float64(e.TS) / cyclesPerMicro
		if ts > lastTS {
			lastTS = ts
		}
		ce := chromeEvent{
			Name: e.Kind.String(),
			Cat:  category(e.Kind),
			TS:   ts,
			PID:  0,
			TID:  int(e.Ring),
			Args: argsFor(e),
		}
		switch e.Kind {
		case KindTxBegin:
			ce.Name = "txn"
			ce.Phase = "B"
			depth[e.Ring]++
			openTx[e.Ring] = append(openTx[e.Ring], e)
		case KindTxCommit, KindTxAbort:
			if depth[e.Ring] == 0 {
				continue // begin lost to ring wrap-around
			}
			depth[e.Ring]--
			openTx[e.Ring] = openTx[e.Ring][:len(openTx[e.Ring])-1]
			ce.Name = "txn"
			ce.Phase = "E"
			if e.Kind == KindTxAbort {
				out = append(out, chromeEvent{
					Name: "tx-abort", Cat: "txn", Phase: "i", TS: ts,
					PID: 0, TID: int(e.Ring), Scope: "t", Args: argsFor(e),
				})
			}
		default:
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out = append(out, ce)
	}
	// Close dangling begins so B/E pairs balance.
	for ring, open := range openTx {
		for range open {
			out = append(out, chromeEvent{
				Name: "txn", Cat: "txn", Phase: "E", TS: lastTS,
				PID: 0, TID: int(ring),
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ns"})
}

// PhaseStats summarises one transaction phase across every committed
// transaction in the trace. Values are in the trace's native time unit
// (cycles for simulator traces).
type PhaseStats struct {
	Name  string
	Count int
	Mean  float64
	P50   uint64
	P95   uint64
	P99   uint64
	Max   uint64
}

// Breakdown is the per-phase transaction decomposition plus the event
// totals that give it context.
type Breakdown struct {
	Txns   int // committed transactions observed begin-to-commit
	Aborts int
	Phases []PhaseStats
	Stalls int // log-full stalls inside the window
	Wraps  int // log wrap-arounds inside the window
	Forced int // FWB forced write-backs inside the window
}

// PhaseBreakdown decomposes each committed transaction into the three
// phases the paper's pipeline implies: pre-log work (tx-begin to the
// first log append: reads and compute before the first persistent
// store), logging (first to last append: the undo+redo records racing
// the cached stores they cover), and commit (last append to tx-commit:
// with HWL this should be near-zero — commits are instant; with the
// software log it contains the flush+drain tail).
func PhaseBreakdown(events []Event) Breakdown {
	type open struct {
		begin       uint64
		firstAppend uint64
		lastAppend  uint64
		appends     int
	}
	bd := Breakdown{}
	phases := map[string][]uint64{}
	inflight := map[uint32]*open{} // ring<<16|txid
	key := func(e Event) uint32 { return uint32(e.Ring)<<16 | uint32(e.TxID) }
	for _, e := range events {
		switch e.Kind {
		case KindTxBegin:
			inflight[key(e)] = &open{begin: e.TS}
		case KindLogAppend:
			if o := inflight[key(e)]; o != nil {
				if o.appends == 0 {
					o.firstAppend = e.TS
				}
				o.lastAppend = e.TS
				o.appends++
			}
		case KindTxCommit:
			o := inflight[key(e)]
			if o == nil {
				continue
			}
			delete(inflight, key(e))
			bd.Txns++
			phases["total"] = append(phases["total"], e.TS-o.begin)
			if o.appends > 0 {
				phases["pre-log"] = append(phases["pre-log"], o.firstAppend-o.begin)
				phases["logging"] = append(phases["logging"], o.lastAppend-o.firstAppend)
				phases["commit"] = append(phases["commit"], e.TS-o.lastAppend)
			}
		case KindTxAbort:
			delete(inflight, key(e))
			bd.Aborts++
		case KindLogStall:
			bd.Stalls++
		case KindLogWrap:
			bd.Wraps++
		case KindFwbForced:
			bd.Forced++
		}
	}
	for _, name := range []string{"pre-log", "logging", "commit", "total"} {
		vals := phases[name]
		if len(vals) == 0 {
			continue
		}
		var sum uint64
		for _, v := range vals {
			sum += v
		}
		ps := PhaseStats{
			Name:  name,
			Count: len(vals),
			Mean:  float64(sum) / float64(len(vals)),
			P50:   stats.Percentile(vals, 50),
			P95:   stats.Percentile(vals, 95),
			P99:   stats.Percentile(vals, 99),
		}
		for _, v := range vals {
			if v > ps.Max {
				ps.Max = v
			}
		}
		bd.Phases = append(bd.Phases, ps)
	}
	return bd
}

// Format renders the breakdown as an aligned text table.
func (bd Breakdown) Format(w io.Writer) {
	fmt.Fprintf(w, "transactions: %d committed, %d aborted; %d log stalls, %d wrap-arounds, %d forced write-backs\n",
		bd.Txns, bd.Aborts, bd.Stalls, bd.Wraps, bd.Forced)
	if len(bd.Phases) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tcount\tmean\tp50\tp95\tp99\tmax")
	for _, p := range bd.Phases {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%d\t%d\n",
			p.Name, p.Count, p.Mean, p.P50, p.P95, p.P99, p.Max)
	}
	tw.Flush()
}
