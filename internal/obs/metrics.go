package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// The metrics registry. Registration (Counter/Gauge/Histogram lookup)
// takes a mutex and may allocate, so it belongs in setup code; the
// returned handles are all-atomic and safe to hammer from shard hot
// paths — Add, Set, and Observe never lock and never allocate. The
// pmlint rule obshotpath enforces exactly this split inside the
// server's shard apply loop.

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value; it may go down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is one bucket per possible bit length of a uint64, so
// bucket b counts observations v with bits.Len64(v) == b, i.e. v in
// [2^(b-1), 2^b). Log2 bucketing keeps Observe at two atomic adds and
// bounds the relative quantile error at 2x, which is plenty for the
// latency distributions (p50/p95/p99) the registry exists to report.
const histBuckets = 65

// Histogram is a log2-bucketed latency histogram with lock-free,
// allocation-free Observe.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample (typically nanoseconds or cycles).
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max reports the largest observed value, 0 when empty.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) by bucket
// interpolation (see QuantileFromBuckets), clamped to Max. It reads the
// buckets without a consistent snapshot; concurrent Observes can skew
// the estimate by at most the in-flight samples.
func (h *Histogram) Quantile(q float64) uint64 {
	var counts [histBuckets]uint64
	for b := range counts {
		counts[b] = h.buckets[b].Load()
	}
	return QuantileFromBuckets(counts[:], q, h.max.Load())
}

// QuantileFromBuckets estimates the q-quantile of a log2 bucket vector
// (bucket b counts values v with bits.Len64(v) == b, i.e. v in
// [2^(b-1), 2^b)) by linear interpolation inside the bucket where the
// cumulative count crosses q. The total is derived from the buckets
// themselves, so a windowed delta vector whose separate count field is
// transiently skewed by concurrent writers still yields a sane
// estimate. max, when nonzero, clamps the result (pass the histogram's
// high-water mark for whole-life quantiles; 0 for windowed deltas,
// whose true window max is unknown). q outside (0,1] clamps to the
// nearest valid quantile; an empty vector reports 0.
func QuantileFromBuckets(buckets []uint64, q float64, max uint64) uint64 {
	if math.IsNaN(q) || q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total uint64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range buckets {
		if c == 0 {
			continue
		}
		if cum+c < target {
			cum += c
			continue
		}
		// The target sample falls in bucket b, spanning [lo, hi].
		var lo, hi uint64
		switch {
		case b == 0:
			lo, hi = 0, 0
		case b >= 64:
			lo, hi = 1<<63, math.MaxUint64
		default:
			lo, hi = uint64(1)<<uint(b-1), uint64(1)<<uint(b)-1
		}
		frac := float64(target-cum) / float64(c)
		v := lo + uint64(frac*float64(hi-lo))
		if max != 0 && v > max {
			v = max
		}
		return v
	}
	// Unreachable (total > 0 guarantees a crossing), but stay total.
	return max
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters:
// the raw material for windowed rates and quantiles. Count/Sum/Buckets
// are cumulative since process start; Max is the whole-life high-water
// mark (not resettable, so a delta's Max is the lifetime max, an upper
// bound on the window's).
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// SnapshotInto copies the histogram's current counters into out without
// allocating. Each field is an independent atomic load: concurrent
// Observes can make the copy internally skewed by the in-flight
// samples, never torn within a field.
func (h *Histogram) SnapshotInto(out *HistogramSnapshot) {
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	out.Max = h.max.Load()
	for b := range out.Buckets {
		out.Buckets[b] = h.buckets[b].Load()
	}
}

// Snapshot returns a point-in-time copy of the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	h.SnapshotInto(&s)
	return s
}

// DeltaSince writes cur - prev into out: the samples observed between
// the two snapshots. Monotonic fields saturate at zero instead of
// wrapping, so a skewed pair of concurrent snapshots can never produce
// a garbage window. Max carries cur's lifetime high-water mark.
//
// A counter reset — the histogram restarted below prev, as after a
// dump-restore or a process swap behind the same collector — is
// detected per snapshot, not per field: any bucket (or the count)
// moving backwards means prev belongs to a different histogram life.
// Clamping field-by-field there would zero the shrunken buckets while
// keeping spurious positive deltas in buckets the new life happens to
// have outgrown — a mixed vector whose quantiles are garbage. The
// whole window clamps to empty instead; the caller's baseline then
// advances to cur, so the next window is a clean delta of the new
// life. Detection has no false positives under concurrent Observes:
// within one life every field is monotone and SnapshotInto's
// independent atomic loads let a later snapshot only run ahead of an
// earlier one, never behind.
func (cur *HistogramSnapshot) DeltaSince(prev, out *HistogramSnapshot) {
	reset := cur.Count < prev.Count
	for b := 0; !reset && b < len(cur.Buckets); b++ {
		reset = cur.Buckets[b] < prev.Buckets[b]
	}
	if reset {
		*out = HistogramSnapshot{Max: cur.Max}
		return
	}
	out.Count = cur.Count - prev.Count
	out.Sum = satSub(cur.Sum, prev.Sum)
	out.Max = cur.Max
	for b := range out.Buckets {
		out.Buckets[b] = cur.Buckets[b] - prev.Buckets[b]
	}
}

// Quantile estimates the q-quantile of the snapshot's samples by bucket
// interpolation. On a windowed delta the true max is unknown, so the
// estimate is clamped only by the bucket bounds.
func (s *HistogramSnapshot) Quantile(q float64) uint64 {
	return QuantileFromBuckets(s.Buckets[:], q, 0)
}

// satSub is a saturating uint64 subtraction.
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// LatencySummary is the fixed quantile set exported in API snapshots.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Summary condenses the histogram into the standard quantile set.
func (h *Histogram) Summary() LatencySummary {
	s := LatencySummary{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
	if s.Count > 0 {
		s.Mean = float64(h.Sum()) / float64(s.Count)
	}
	return s
}

// metric is one registered series: a name, an optional raw label set
// (`op="get"` form, already escaped), and exactly one of the handles.
type metric struct {
	name   string
	labels string
	help   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (m *metric) series(suffix, extra string) string {
	lbl := m.labels
	if extra != "" {
		if lbl != "" {
			lbl += ","
		}
		lbl += extra
	}
	if lbl == "" {
		return m.name + suffix
	}
	return m.name + suffix + "{" + lbl + "}"
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Lookup is get-or-create on (name, labels).
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

func (r *Registry) lookup(name, labels, help string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + labels + "}"
	if m, ok := r.index[key]; ok {
		return m
	}
	m := &metric{name: name, labels: labels, help: help}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter returns the counter registered under (name, labels),
// creating it on first use. labels is a raw Prometheus label list such
// as `op="get"`, or "" for none. Registration locks; call it at setup
// time and keep the handle.
func (r *Registry) Counter(name, labels, help string) *Counter {
	m := r.lookup(name, labels, help)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	m := r.lookup(name, labels, help)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the histogram registered under (name, labels).
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	m := r.lookup(name, labels, help)
	if m.h == nil {
		m.h = &Histogram{}
	}
	return m.h
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers once per metric
// name, series sorted by name then label set, histograms as cumulative
// le-buckets at power-of-two bounds plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})

	lastName := ""
	for _, m := range ms {
		if m.name != lastName {
			lastName = m.name
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typeName()); err != nil {
				return err
			}
		}
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (m *metric) typeName() string {
	switch {
	case m.c != nil:
		return "counter"
	case m.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

func (m *metric) write(w io.Writer) error {
	switch {
	case m.c != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", m.series("", ""), m.c.Value())
		return err
	case m.g != nil:
		_, err := fmt.Fprintf(w, "%s %d\n", m.series("", ""), m.g.Value())
		return err
	case m.h != nil:
		return m.writeHistogram(w)
	}
	return nil
}

func (m *metric) writeHistogram(w io.Writer) error {
	h := m.h
	// Emit cumulative buckets only up to the highest occupied one; an
	// empty histogram still gets the mandatory +Inf bucket.
	top := 0
	var counts [histBuckets]uint64
	for b := 0; b < histBuckets; b++ {
		counts[b] = h.buckets[b].Load()
		if counts[b] != 0 {
			top = b
		}
	}
	var cum uint64
	for b := 0; b <= top; b++ {
		cum += counts[b]
		var le string
		if b >= 64 {
			continue // folded into +Inf below
		}
		le = fmt.Sprintf("%d", uint64(1)<<uint(b)-1)
		if _, err := fmt.Fprintf(w, "%s %d\n", m.series("_bucket", `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", m.series("_bucket", `le="+Inf"`), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", m.series("_sum", ""), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", m.series("_count", ""), h.Count())
	return err
}
