package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEmitDisabledIsFreeAndAllocFree(t *testing.T) {
	tr := NewTracer(2, 16)
	// Disabled tracer: events vanish.
	tr.Emit(0, 1, KindTxBegin, 1, 0)
	if got := tr.Emitted(); got != 0 {
		t.Fatalf("disabled Emit recorded %d events", got)
	}
	// The acceptance criterion: the disabled path allocates zero bytes
	// per op. This covers both the nil-tracer and disabled-tracer
	// branches every instrumentation hook takes in a plain run.
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(1, 42, KindLogAppend, 7, 99)
	}); n != 0 {
		t.Fatalf("disabled Emit allocates %v bytes/op, want 0", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nilTr.Emit(0, 42, KindLogAppend, 7, 99)
	}); n != 0 {
		t.Fatalf("nil-tracer Emit allocates %v bytes/op, want 0", n)
	}
	// Enabled Emit must not allocate either (hot-path requirement the
	// pmlint obshotpath rule assumes).
	tr.Enable()
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(1, 42, KindLogAppend, 7, 99)
	}); n != 0 {
		t.Fatalf("enabled Emit allocates %v bytes/op, want 0", n)
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	tr := NewTracer(1, 4)
	tr.Enable()
	for i := uint64(0); i < 10; i++ {
		tr.Emit(0, i, KindLogAppend, 0, i)
	}
	tr.Disable()
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("Snapshot kept %d events, want 4", len(evs))
	}
	// Overwrite-oldest: the survivors are the newest four, in order.
	for i, e := range evs {
		if want := uint64(6 + i); e.Arg != want {
			t.Fatalf("event %d has arg %d, want %d", i, e.Arg, want)
		}
	}
}

func TestSnapshotMergesAndSorts(t *testing.T) {
	tr := NewTracer(3, 8)
	tr.Enable()
	tr.Emit(1, 30, KindTxCommit, 2, 0)
	tr.Emit(0, 10, KindTxBegin, 1, 0)
	tr.Emit(2, 20, KindFwbScan, 0, 5)
	tr.Disable()
	evs := tr.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].TS > evs[i].TS {
			t.Fatalf("snapshot not sorted: %v", evs)
		}
	}
	if evs[0].Kind != KindTxBegin || evs[0].Ring != 0 || evs[0].TxID != 1 {
		t.Fatalf("decode mismatch: %+v", evs[0])
	}
}

func TestEmitOutOfRangeRingFoldsToMachineRing(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.Enable()
	tr.Emit(99, 1, KindLogWrap, 0, 1)
	tr.Emit(-1, 2, KindLogStall, 0, 2)
	tr.Disable()
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Ring != 1 {
			t.Fatalf("event %+v landed in ring %d, want machine ring 1", e, e.Ring)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer(1, 1024)
	tr.Enable()
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(0, uint64(i), KindSrvRecv, uint16(w), uint64(i))
			}
		}(w)
	}
	wg.Wait()
	tr.Disable()
	if got := tr.Emitted(); got != workers*each {
		t.Fatalf("Emitted = %d, want %d", got, workers*each)
	}
	if got := len(tr.Snapshot()); got != 1024 {
		t.Fatalf("Snapshot kept %d, want full ring 1024", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	// Log2 buckets bound the estimate to the true value's bucket.
	if p50 := h.Quantile(0.50); p50 < 500 || p50 > 1023 {
		t.Fatalf("p50 = %d, want within [500,1023]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 990 || p99 > 1000 {
		t.Fatalf("p99 = %d, want clamped to max-bucket range [990,1000]", p99)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want max 1000", q)
	}
	empty := &Histogram{}
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	s := h.Summary()
	if s.Count != 1000 || s.Max != 1000 || s.Mean < 500 || s.Mean > 501 {
		t.Fatalf("summary: %+v", s)
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := &Histogram{}
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	empty := &Histogram{}
	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want uint64
	}{
		// Out-of-range q clamps to the nearest valid quantile instead of
		// panicking or returning garbage, matching the stats.Percentile
		// NaN-clamp convention. Min-clamped q resolves to the first
		// occupied bucket's bound (the smallest sample is 1).
		{"nan-clamps-to-min", h, math.NaN(), 1},
		{"negative-clamps-to-min", h, -0.5, 1},
		{"zero-clamps-to-min", h, 0, 1},
		{"above-one-clamps-to-max", h, 1.5, 100},
		{"inf-clamps-to-max", h, math.Inf(1), 100},
		{"neg-inf-clamps-to-min", h, math.Inf(-1), 1},
		// Empty histogram: every q reports 0, no divide-by-zero.
		{"empty-mid", empty, 0.5, 0},
		{"empty-nan", empty, math.NaN(), 0},
		{"empty-above-one", empty, 2, 0},
	}
	for _, tc := range cases {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
	// q=0 on a non-empty histogram still lands inside the observed
	// range: it resolves to the first occupied bucket's bound, capped
	// by Max, never above it.
	if got := h.Quantile(0); got > h.Max() {
		t.Errorf("Quantile(0) = %d exceeds max %d", got, h.Max())
	}
}

// TestQuantileFromBucketsExact pins the interpolation against exact
// values on known bucket fills: with every sample in one bucket the
// estimate must land on the interpolated position inside that bucket's
// bounds, and multi-bucket fills must cross at the correct bucket.
func TestQuantileFromBucketsExact(t *testing.T) {
	mk := func(fill map[int]uint64) []uint64 {
		b := make([]uint64, 65)
		for i, c := range fill {
			b[i] = c
		}
		return b
	}
	cases := []struct {
		name    string
		buckets []uint64
		q       float64
		max     uint64
		want    uint64
	}{
		// Bucket 3 spans [4,7]. 4 samples: q=0.25 is the 1st sample
		// → frac 1/4 → 4 + 0.25*3 = 4 (floor).
		{"single-bucket-q25", mk(map[int]uint64{3: 4}), 0.25, 0, 4},
		{"single-bucket-q50", mk(map[int]uint64{3: 4}), 0.50, 0, 5},
		{"single-bucket-q100", mk(map[int]uint64{3: 4}), 1.0, 0, 7},
		// Bucket 1 spans [1,1]: degenerate bounds interpolate to 1.
		{"degenerate-bucket", mk(map[int]uint64{1: 10}), 0.5, 0, 1},
		// Bucket 0 is exactly the value 0.
		{"zero-bucket", mk(map[int]uint64{0: 3}), 1.0, 0, 0},
		// Two buckets, 10 samples each: q=0.5 is sample 10, the last of
		// bucket 2 [2,3] → 2 + (10/10)*1 = 3; q=0.55 is sample 11, the
		// first of bucket 4 [8,15] → 8 + (1/10)*7 = 8.
		{"cross-at-boundary", mk(map[int]uint64{2: 10, 4: 10}), 0.50, 0, 3},
		{"cross-into-next", mk(map[int]uint64{2: 10, 4: 10}), 0.55, 0, 8},
		// Max clamp: interpolating past the true max clamps to it.
		{"max-clamps", mk(map[int]uint64{7: 5}), 1.0, 100, 100},
		// First of 5 samples in bucket 7 [64,127]: 64 + (1/5)*63 = 76.
		{"max-no-clamp-below", mk(map[int]uint64{7: 5}), 0.2, 100, 76},
		// Empty vector and q clamping.
		{"empty", mk(nil), 0.5, 0, 0},
		{"q-below-zero", mk(map[int]uint64{3: 4}), -1, 0, 4},
		{"q-above-one", mk(map[int]uint64{3: 4}), 2, 0, 7},
		{"q-nan", mk(map[int]uint64{3: 4}), math.NaN(), 0, 4},
	}
	for _, tc := range cases {
		if got := QuantileFromBuckets(tc.buckets, tc.q, tc.max); got != tc.want {
			t.Errorf("%s: QuantileFromBuckets(q=%v, max=%d) = %d, want %d",
				tc.name, tc.q, tc.max, got, tc.want)
		}
	}
}

// TestHistogramSnapshotDelta drives the Snapshot/DeltaSince pair the
// pulse windows are built on: deltas must be the exact between-snapshot
// fills, and the delta quantile must see only the window's samples.
func TestHistogramSnapshotDelta(t *testing.T) {
	h := &Histogram{}
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	prev := h.Snapshot()
	if prev.Count != 100 || prev.Max != 100 {
		t.Fatalf("first snapshot: count=%d max=%d", prev.Count, prev.Max)
	}
	// Window 2: 10 samples of exactly 1000 (bucket 10, [512,1023]).
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	var cur, delta HistogramSnapshot
	h.SnapshotInto(&cur)
	cur.DeltaSince(&prev, &delta)
	if delta.Count != 10 {
		t.Fatalf("delta count = %d, want 10", delta.Count)
	}
	if delta.Sum != 10*1000 {
		t.Fatalf("delta sum = %d, want %d", delta.Sum, 10*1000)
	}
	for b, c := range delta.Buckets {
		want := uint64(0)
		if b == 10 {
			want = 10
		}
		if c != want {
			t.Fatalf("delta bucket %d = %d, want %d", b, c, want)
		}
	}
	// The whole-life p50 sits in the 1..100 mass; the window's p50 must
	// sit in bucket 10 — the first window's samples are invisible to it.
	if q := delta.Quantile(0.5); q < 512 || q > 1023 {
		t.Fatalf("delta p50 = %d, want within bucket 10 [512,1023]", q)
	}
	if q := h.Quantile(0.5); q > 200 {
		t.Fatalf("whole-life p50 = %d, want in the 1..100 mass", q)
	}
	// An empty window: delta of identical snapshots is all zeros.
	var again, empty HistogramSnapshot
	h.SnapshotInto(&again)
	again.DeltaSince(&again, &empty)
	if empty.Count != 0 || empty.Sum != 0 || empty.Quantile(0.99) != 0 {
		t.Fatalf("empty delta not zero: %+v", empty)
	}
	// Saturation: a skewed (older) cur never wraps around.
	prev.DeltaSince(&cur, &empty)
	if empty.Count != 0 {
		t.Fatalf("saturating delta count = %d, want 0", empty.Count)
	}
	// SnapshotInto is part of the pulse tick hot path: no allocation.
	if n := testing.AllocsPerRun(100, func() { h.SnapshotInto(&cur) }); n != 0 {
		t.Fatalf("SnapshotInto allocates %v/op, want 0", n)
	}
}

// TestHistogramDeltaSinceReset is the counter-reset table: a histogram
// restarted mid-window (dump-restore, process swap behind the same
// collector) must clamp the whole window to empty rather than emit a
// mixed bucket vector whose quantiles are garbage, and the following
// window must be a clean delta of the new life.
func TestHistogramDeltaSinceReset(t *testing.T) {
	// snap builds a snapshot with the given bucket fills (count and sum
	// derived, like a real histogram life would produce).
	snap := func(fills map[int]uint64) HistogramSnapshot {
		var s HistogramSnapshot
		for b, n := range fills {
			s.Buckets[b] = n
			s.Count += n
			v := uint64(0) // a representative value in bucket b
			if b > 0 {
				v = uint64(1) << uint(b-1)
			}
			s.Sum += n * v
			if v > s.Max {
				s.Max = v
			}
		}
		return s
	}
	cases := []struct {
		name      string
		prev, cur HistogramSnapshot
		wantReset bool
		wantCount uint64
	}{
		{
			name:      "steady-growth",
			prev:      snap(map[int]uint64{5: 10, 8: 2}),
			cur:       snap(map[int]uint64{5: 15, 8: 2, 10: 1}),
			wantReset: false,
			wantCount: 6,
		},
		{
			// The restore shrank every bucket: pure reset.
			name:      "reset-all-buckets-down",
			prev:      snap(map[int]uint64{5: 100, 8: 50}),
			cur:       snap(map[int]uint64{5: 3, 8: 1}),
			wantReset: true,
		},
		{
			// The dangerous case the per-field satSub got wrong: the new
			// life already outgrew prev in bucket 10 while bucket 5 went
			// backwards. Field-wise clamping would emit {10: 5} — a
			// spurious window whose p50 jumps to the new life's bucket.
			name:      "reset-mid-window-mixed",
			prev:      snap(map[int]uint64{5: 100, 10: 2}),
			cur:       snap(map[int]uint64{5: 4, 10: 7}),
			wantReset: true,
		},
		{
			// Count equal but a bucket moved backwards: still a reset.
			name:      "reset-same-count",
			prev:      snap(map[int]uint64{5: 4, 10: 4}),
			cur:       snap(map[int]uint64{5: 3, 10: 5}),
			wantReset: true,
		},
		{
			name:      "identical-snapshots",
			prev:      snap(map[int]uint64{5: 9}),
			cur:       snap(map[int]uint64{5: 9}),
			wantReset: false,
			wantCount: 0,
		},
	}
	for _, tc := range cases {
		var out HistogramSnapshot
		out.Buckets[3] = 99 // stale scratch: DeltaSince must overwrite fully
		tc.cur.DeltaSince(&tc.prev, &out)
		if tc.wantReset {
			if out.Count != 0 || out.Sum != 0 {
				t.Errorf("%s: reset window not empty: count=%d sum=%d", tc.name, out.Count, out.Sum)
			}
			for b, n := range out.Buckets {
				if n != 0 {
					t.Errorf("%s: reset window bucket %d = %d, want 0", tc.name, b, n)
				}
			}
			if q := out.Quantile(0.99); q != 0 {
				t.Errorf("%s: reset window p99 = %d, want 0", tc.name, q)
			}
			// The caller's baseline advances to cur, so the next window is
			// a clean delta of the new life.
			next := tc.cur
			for b := range next.Buckets {
				next.Buckets[b] += next.Buckets[b] // the new life doubles
			}
			next.Count *= 2
			var nw HistogramSnapshot
			next.DeltaSince(&tc.cur, &nw)
			if nw.Count != tc.cur.Count {
				t.Errorf("%s: post-reset window count = %d, want %d", tc.name, nw.Count, tc.cur.Count)
			}
		} else {
			if out.Count != tc.wantCount {
				t.Errorf("%s: delta count = %d, want %d", tc.name, out.Count, tc.wantCount)
			}
			if out.Buckets[3] == 99 {
				t.Errorf("%s: stale scratch bucket survived", tc.name)
			}
		}
		if out.Max != tc.cur.Max {
			t.Errorf("%s: out.Max = %d, want cur's lifetime max %d", tc.name, out.Max, tc.cur.Max)
		}
	}
	// DeltaSince stays on the pulse tick hot path: no allocation on
	// either the normal or the reset branch.
	big := snap(map[int]uint64{5: 100})
	small := snap(map[int]uint64{5: 1})
	var out HistogramSnapshot
	if n := testing.AllocsPerRun(100, func() {
		big.DeltaSince(&small, &out) // growth branch
		small.DeltaSince(&big, &out) // reset branch
	}); n != 0 {
		t.Fatalf("DeltaSince allocates %v/op, want 0", n)
	}
}

func TestEmitSpanRoundTrip(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.Enable()
	const span = uint32(0xdeadbeef)
	tr.EmitSpan(0, 5, KindSrvApply, 42, 7, span)
	tr.Emit(1, 6, KindLogAppend, 42, 8) // plain Emit ⇒ span 0
	tr.Disable()
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if e := evs[0]; e.Span != span || e.Kind != KindSrvApply || e.TxID != 42 || e.Arg != 7 {
		t.Fatalf("span event decoded wrong: %+v", e)
	}
	if e := evs[1]; e.Span != 0 {
		t.Fatalf("plain Emit carried span %#x, want 0", e.Span)
	}
	// Same hot-path contract as Emit: no allocation when enabled.
	tr.Enable()
	if n := testing.AllocsPerRun(1000, func() {
		tr.EmitSpan(1, 42, KindLogAppend, 7, 99, span)
	}); n != 0 {
		t.Fatalf("enabled EmitSpan allocates %v bytes/op, want 0", n)
	}
	// Per-ring accounting surfaces emit and drop counts.
	st := tr.RingStats()
	if len(st) != 2 {
		t.Fatalf("RingStats len = %d, want 2", len(st))
	}
	if st[1].Emitted < 1 {
		t.Fatalf("ring 1 emitted = %d, want >= 1", st[1].Emitted)
	}
	var nilTr *Tracer
	if nilTr.RingStats() != nil {
		t.Fatal("nil tracer RingStats must be nil")
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123) }); n != 0 {
		t.Fatalf("Observe allocates %v bytes/op, want 0", n)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pm_requests_total", `op="get"`, "requests served")
	c.Add(3)
	r.Counter("pm_requests_total", `op="put"`, "requests served").Inc()
	g := r.Gauge("pm_queue_depth", "", "queued requests")
	g.Set(7)
	h := r.Histogram("pm_latency_ns", `op="get"`, "request latency")
	h.Observe(100)
	h.Observe(3000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pm_requests_total counter",
		`pm_requests_total{op="get"} 3`,
		`pm_requests_total{op="put"} 1`,
		"# TYPE pm_queue_depth gauge",
		"pm_queue_depth 7",
		"# TYPE pm_latency_ns histogram",
		`pm_latency_ns_bucket{op="get",le="+Inf"} 2`,
		`pm_latency_ns_sum{op="get"} 3100`,
		`pm_latency_ns_count{op="get"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative le buckets must be non-decreasing and the registry
	// must hand back the same series on re-lookup.
	if r.Counter("pm_requests_total", `op="get"`, "requests served") != c {
		t.Fatal("re-lookup returned a different counter")
	}
}

func TestChromeTraceExport(t *testing.T) {
	evs := []Event{
		{TS: 10, Kind: KindTxBegin, Ring: 0, TxID: 1},
		{TS: 12, Kind: KindLogAppend, Ring: 0, TxID: 1, Arg: 5},
		{TS: 15, Kind: KindLogWrap, Ring: 1, Arg: 2},
		{TS: 20, Kind: KindTxCommit, Ring: 0, TxID: 1},
		{TS: 25, Kind: KindTxCommit, Ring: 0, TxID: 9}, // begin lost to wrap
		{TS: 30, Kind: KindTxBegin, Ring: 0, TxID: 2},  // dangling begin
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs, 1, []string{"thread 0", "machine"}); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	begins, ends, wraps := 0, 0, 0
	for _, e := range tr.TraceEvents {
		switch {
		case e.Name == "txn" && e.Phase == "B":
			begins++
		case e.Name == "txn" && e.Phase == "E":
			ends++
		case e.Name == "log-wrap":
			wraps++
		}
	}
	if begins != 2 || ends != 2 {
		t.Fatalf("B/E unbalanced: %d begins, %d ends", begins, ends)
	}
	if wraps != 1 {
		t.Fatalf("wrap events = %d, want 1", wraps)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	evs := []Event{
		{TS: 0, Kind: KindTxBegin, Ring: 0, TxID: 1},
		{TS: 10, Kind: KindLogAppend, Ring: 0, TxID: 1},
		{TS: 30, Kind: KindLogAppend, Ring: 0, TxID: 1},
		{TS: 35, Kind: KindTxCommit, Ring: 0, TxID: 1},
		{TS: 40, Kind: KindLogStall, Ring: 1},
		{TS: 50, Kind: KindTxBegin, Ring: 0, TxID: 2},
		{TS: 60, Kind: KindTxAbort, Ring: 0, TxID: 2},
	}
	bd := PhaseBreakdown(evs)
	if bd.Txns != 1 || bd.Aborts != 1 || bd.Stalls != 1 {
		t.Fatalf("breakdown: %+v", bd)
	}
	want := map[string]uint64{"pre-log": 10, "logging": 20, "commit": 5, "total": 35}
	for _, p := range bd.Phases {
		if p.P50 != want[p.Name] {
			t.Fatalf("phase %s p50 = %d, want %d", p.Name, p.P50, want[p.Name])
		}
	}
	var buf bytes.Buffer
	bd.Format(&buf)
	if !strings.Contains(buf.String(), "pre-log") {
		t.Fatalf("formatted breakdown missing phases:\n%s", buf.String())
	}
}
