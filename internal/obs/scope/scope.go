// Package scope is the persistence-domain cost-accounting layer: it
// attributes every NVRAM byte the machine writes to a cause, so the
// paper's economic argument — hardware undo+redo logging wins because
// it minimizes extra NVRAM traffic — is measurable live instead of
// asserted. Four ledgers:
//
//   - Write amplification: log bytes (split by undo/redo/header/
//     checksum class) plus forced and natural write-back bytes over
//     payload bytes, per shard and per transaction.
//   - Line recurrence: a fixed-size hash sketch over (txn, line) that
//     counts log appends hitting a line the same transaction already
//     logged — the coalescible fraction a dedup/compaction pass could
//     erase.
//   - FWB efficiency: forced vs natural write-backs, and forced
//     flushes wasted because the line was re-dirtied before the next
//     scan.
//   - Per-txn amplification: each commit folds its own log-bytes /
//     payload-bytes ratio into a running mean.
//
// Cost contract: Counters is written by exactly one goroutine (the
// machine's owner — a server shard loop), every Note* method is
// allocation-free and nil-receiver-safe (an unscoped machine pays one
// branch per event), and the sketches are fixed arrays cleared by an
// O(1) epoch bump. Guarded by TestScopeZeroAllocSteadyState and
// machine-enforced by pmlint's noallochotpath/obshotpath maps.
package scope

// Sketch geometry: a power-of-two slot array with a short linear
// probe, modeled on hash-indexed fixed-chunk undo filters (coarse log
// membership without allocation). 1024 slots comfortably covers a
// transaction's working set of lines; a full probe neighborhood drops
// the insert, so recurrence is only ever undercounted, never invented.
const (
	sketchSlots  = 1 << 10
	sketchMask   = sketchSlots - 1
	sketchProbes = 4
)

// sketchSlot is one tagged entry; epoch-stamped so Clear never touches
// the array.
type sketchSlot struct {
	tag   uint64
	epoch uint64
}

// LineSketch is a fixed-size approximate set of 64-bit tags. The zero
// value is an empty sketch. Not safe for concurrent use — it shares
// the Counters single-writer contract.
type LineSketch struct {
	epoch uint64
	slots [sketchSlots]sketchSlot
}

// Clear empties the sketch in O(1) by advancing the epoch; stale slots
// are reclaimed lazily by later inserts.
func (s *LineSketch) Clear() { s.epoch++ }

// Touch inserts tag and reports whether it was already present this
// epoch. A zero tag is remapped (0 marks a removed slot). When the
// whole probe neighborhood is live with other tags the insert is
// dropped and Touch reports false — a conservative miss.
func (s *LineSketch) Touch(tag uint64) bool {
	if tag == 0 {
		tag = 1
	}
	for p := uint64(0); p < sketchProbes; p++ {
		sl := &s.slots[(tag+p)&sketchMask]
		if sl.epoch == s.epoch && sl.tag == tag {
			return true
		}
		if sl.epoch != s.epoch || sl.tag == 0 {
			sl.tag, sl.epoch = tag, s.epoch
			return false
		}
	}
	return false
}

// Remove deletes tag if present this epoch, reporting whether it was.
func (s *LineSketch) Remove(tag uint64) bool {
	if tag == 0 {
		tag = 1
	}
	for p := uint64(0); p < sketchProbes; p++ {
		sl := &s.slots[(tag+p)&sketchMask]
		if sl.epoch == s.epoch && sl.tag == tag {
			sl.tag = 0
			return true
		}
	}
	return false
}

// mix is a splitmix64-style finalizer over a key pair. Tagging lines
// with the owning transaction handle means the per-txn sketch never
// needs clearing between transactions to stay correct — two
// transactions touching the same line produce different tags.
func mix(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// forcedSalt keys the forced-write-back sketch so its line tags cannot
// collide with the per-txn (handle, line) tag space.
const forcedSalt = 0x5CF0FCE5CF0FCE5

// Counters is one machine's persistence-domain ledger: plain uint64
// fields owned by the machine's driving goroutine (the shard loop).
// Concurrent readers never touch it directly — the shard publishes a
// snapshot through its atomics after each batch (publishLogState), the
// same bridge the pulse sampler already uses.
type Counters struct {
	// Log traffic by record byte class (what each NVRAM log byte paid
	// for). Header also absorbs log metadata writes (head/tail persists,
	// truncation pointers): bookkeeping, not values.
	LogUndoBytes     uint64
	LogRedoBytes     uint64
	LogHeaderBytes   uint64
	LogChecksumBytes uint64

	// PayloadBytes is the application bytes actually stored (the
	// amplification denominator). UpdateAppends counts update records;
	// CoalescibleAppends counts those hitting a line their transaction
	// had already logged — the fraction in-txn coalescing would erase.
	PayloadBytes       uint64
	UpdateAppends      uint64
	CoalescibleAppends uint64

	// Data write-back lines reaching NVRAM: DataWB is every one,
	// ForcedWB the subset pushed by the FWB scanner, WastedForcedWB the
	// forced ones re-dirtied before the next scan (the flush bought no
	// truncation headroom that a later write-back would not also buy).
	DataWB         uint64
	ForcedWB       uint64
	WastedForcedWB uint64

	// Per-transaction amplification: committed transactions with at
	// least one store, and the sum of their individual
	// log-bytes*1000/payload-bytes ratios (milli units keep the mean
	// integer-only on the hot path).
	TxnsMeasured   uint64
	TxnAmpMilliSum uint64

	txnLines LineSketch // (handle, line) tags of the open transactions
	forced   LineSketch // lines force-flushed since the last scan
}

// NoteLogBytes accounts one log append's (or log metadata write's)
// bytes by class. Hot path: called per record by the logging engine.
func (c *Counters) NoteLogBytes(undo, redo, header, checksum uint64) {
	if c == nil {
		return
	}
	c.LogUndoBytes += undo
	c.LogRedoBytes += redo
	c.LogHeaderBytes += header
	c.LogChecksumBytes += checksum
}

// NoteStore accounts one logged persistent store: payload bytes, the
// update-append count, and line recurrence within the owning
// transaction. Hot path: once per store.
func (c *Counters) NoteStore(handle, line, payloadBytes uint64) {
	if c == nil {
		return
	}
	c.PayloadBytes += payloadBytes
	c.UpdateAppends++
	if c.txnLines.Touch(mix(handle, line)) {
		c.CoalescibleAppends++
	}
}

// NoteTxnCommit folds one committed transaction's ledger into the
// per-txn amplification mean and retires its line set. Transactions
// that stored nothing are not measured (no denominator).
func (c *Counters) NoteTxnCommit(payloadBytes, logBytes uint64) {
	if c == nil || payloadBytes == 0 {
		return
	}
	c.TxnsMeasured++
	c.TxnAmpMilliSum += logBytes * 1000 / payloadBytes
	c.txnLines.Clear()
}

// NoteDataWB accounts one data line write-back reaching NVRAM (forced
// or natural — the memory controller cannot tell; the cache layer
// marks the forced ones via NoteForcedWB).
func (c *Counters) NoteDataWB() {
	if c == nil {
		return
	}
	c.DataWB++
}

// NoteForcedWB accounts one FWB-scanner-forced write-back of line and
// arms the wasted-flush detector for it.
func (c *Counters) NoteForcedWB(line uint64) {
	if c == nil {
		return
	}
	c.ForcedWB++
	c.forced.Touch(mix(forcedSalt, line))
}

// NoteDirtied observes a line becoming dirty in a cache. A line the
// scanner force-flushed and that re-dirties before the next scan made
// that flush wasted traffic. Hot path: once per store.
func (c *Counters) NoteDirtied(line uint64) {
	if c == nil {
		return
	}
	if c.forced.Remove(mix(forcedSalt, line)) {
		c.WastedForcedWB++
	}
}

// NoteScan marks an FWB scan pass starting: forced flushes from the
// previous pass stop being candidates for the wasted-flush count.
func (c *Counters) NoteScan() {
	if c == nil {
		return
	}
	c.forced.Clear()
}

// LogBytes returns the total log traffic across byte classes.
func (c *Counters) LogBytes() uint64 {
	if c == nil {
		return 0
	}
	return c.LogUndoBytes + c.LogRedoBytes + c.LogHeaderBytes + c.LogChecksumBytes
}

// NaturalWB returns the data write-backs not forced by the scanner
// (evictions, clwb flushes, emergency flushes).
func (c *Counters) NaturalWB() uint64 {
	if c == nil || c.DataWB < c.ForcedWB {
		return 0
	}
	return c.DataWB - c.ForcedWB
}
