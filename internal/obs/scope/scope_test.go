package scope

import (
	"testing"
)

// TestLineSketchMembership checks insert/lookup/remove and the O(1)
// epoch clear.
func TestLineSketchMembership(t *testing.T) {
	var s LineSketch
	if s.Touch(42) {
		t.Fatal("fresh sketch reported 42 present")
	}
	if !s.Touch(42) {
		t.Fatal("second Touch(42) not reported as repeat")
	}
	if s.Touch(43) {
		t.Fatal("43 reported present before insert")
	}
	if !s.Remove(43) {
		t.Fatal("Remove(43) failed after insert")
	}
	if s.Remove(43) {
		t.Fatal("Remove(43) succeeded twice")
	}
	if s.Touch(43) {
		t.Fatal("43 present after removal")
	}
	s.Clear()
	if s.Touch(42) {
		t.Fatal("42 survived Clear")
	}
	// The zero tag is remapped, not treated as an empty slot.
	if s.Touch(0) {
		t.Fatal("fresh zero tag reported present")
	}
	if !s.Touch(0) {
		t.Fatal("repeated zero tag not reported")
	}
}

// TestLineSketchFullNeighborhood: when a probe neighborhood fills with
// live tags, further inserts are dropped and recurrence is undercounted
// — never overcounted.
func TestLineSketchFullNeighborhood(t *testing.T) {
	var s LineSketch
	// Tags landing on the same home slot: tag, tag+sketchSlots, ...
	base := uint64(7)
	for i := uint64(0); i < sketchProbes; i++ {
		if s.Touch(base + i*sketchSlots) {
			t.Fatalf("collision tag %d reported present on first touch", i)
		}
	}
	// Neighborhood is full: the next colliding tag cannot be inserted,
	// so touching it twice must report false both times.
	over := base + sketchProbes*sketchSlots
	if s.Touch(over) || s.Touch(over) {
		t.Fatal("overflowing tag reported present (recurrence invented)")
	}
	// The resident tags still hit.
	if !s.Touch(base) {
		t.Fatal("resident tag lost")
	}
}

// TestCountersLedger drives the full accounting surface and checks the
// derived views.
func TestCountersLedger(t *testing.T) {
	var c Counters

	// Txn 1: three stores, two on the same line -> one coalescible.
	c.NoteLogBytes(0, 0, 30, 2) // header record
	for i, line := range []uint64{64, 128, 64} {
		_ = i
		c.NoteStore(1, line, 8)
		c.NoteLogBytes(8, 8, 14, 2)
	}
	c.NoteLogBytes(0, 0, 30, 2) // commit record
	c.NoteTxnCommit(24, 5*32)

	if c.PayloadBytes != 24 || c.UpdateAppends != 3 {
		t.Fatalf("payload=%d appends=%d", c.PayloadBytes, c.UpdateAppends)
	}
	if c.CoalescibleAppends != 1 {
		t.Fatalf("coalescible = %d, want 1", c.CoalescibleAppends)
	}
	if got := c.LogBytes(); got != 5*32 {
		t.Fatalf("log bytes = %d, want %d", got, 5*32)
	}
	if c.LogUndoBytes != 24 || c.LogRedoBytes != 24 || c.LogChecksumBytes != 10 {
		t.Fatalf("byte split: undo=%d redo=%d cs=%d", c.LogUndoBytes, c.LogRedoBytes, c.LogChecksumBytes)
	}
	if c.TxnsMeasured != 1 || c.TxnAmpMilliSum != 160*1000/24 {
		t.Fatalf("txn amp: n=%d sum=%d", c.TxnsMeasured, c.TxnAmpMilliSum)
	}

	// Txn 2 revisits line 64: a different handle means a different tag,
	// so cross-txn repetition is NOT coalescible.
	c.NoteStore(2, 64, 8)
	if c.CoalescibleAppends != 1 {
		t.Fatalf("cross-txn repeat counted coalescible: %d", c.CoalescibleAppends)
	}

	// FWB efficiency: two forced among three write-backs, one forced
	// line re-dirtied before the next scan.
	c.NoteDataWB()
	c.NoteDataWB()
	c.NoteDataWB()
	c.NoteForcedWB(64)
	c.NoteForcedWB(128)
	c.NoteDirtied(64)  // wasted: flushed then re-dirtied
	c.NoteDirtied(256) // never flushed: not wasted
	if c.NaturalWB() != 1 || c.WastedForcedWB != 1 {
		t.Fatalf("natural=%d wasted=%d", c.NaturalWB(), c.WastedForcedWB)
	}
	// After a scan pass the old forced set no longer counts as wasted.
	c.NoteScan()
	c.NoteDirtied(128)
	if c.WastedForcedWB != 1 {
		t.Fatalf("post-scan re-dirty counted wasted: %d", c.WastedForcedWB)
	}
}

// TestCountersZeroTxnPayload: a transaction with no stores is not
// measured (no amplification denominator).
func TestCountersZeroTxnPayload(t *testing.T) {
	var c Counters
	c.NoteTxnCommit(0, 64)
	if c.TxnsMeasured != 0 || c.TxnAmpMilliSum != 0 {
		t.Fatalf("empty txn measured: n=%d sum=%d", c.TxnsMeasured, c.TxnAmpMilliSum)
	}
}

// TestCountersNilSafe: every hot-path method tolerates a nil receiver
// (an unscoped machine pays one branch, like a detached tracer).
func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.NoteLogBytes(1, 2, 3, 4)
	c.NoteStore(1, 64, 8)
	c.NoteTxnCommit(8, 32)
	c.NoteDataWB()
	c.NoteForcedWB(64)
	c.NoteDirtied(64)
	c.NoteScan()
	if c.LogBytes() != 0 || c.NaturalWB() != 0 {
		t.Fatal("nil counters reported nonzero totals")
	}
}

// TestScopeZeroAllocSteadyState is the acceptance guard: the
// append/FWB accounting hot paths allocate nothing per operation. Run
// under -race by `make scope` (race instrumentation must not hide an
// allocation the production hot path would make).
func TestScopeZeroAllocSteadyState(t *testing.T) {
	var c Counters
	var handle, line uint64
	allocs := testing.AllocsPerRun(1000, func() {
		handle++
		line = (line + 64) & 0xFFFF
		c.NoteLogBytes(0, 0, 30, 2)
		c.NoteStore(handle, line, 8)
		c.NoteStore(handle, line, 8) // recurrence path
		c.NoteLogBytes(8, 8, 14, 2)
		c.NoteDirtied(line)
		c.NoteDataWB()
		c.NoteForcedWB(line)
		c.NoteDirtied(line) // wasted-flush removal path
		c.NoteTxnCommit(16, 96)
		if handle%64 == 0 {
			c.NoteScan()
		}
	})
	if allocs != 0 {
		t.Fatalf("scope accounting hot path allocates %.1f/op, want 0", allocs)
	}
}
