// Package obs is the observability layer: a low-overhead event tracer
// and an atomic metrics registry shared by the simulator and pmserver.
//
// The tracer exists to make the paper's ordering arguments visible. The
// end-of-run aggregates in internal/stats say *how many* log-buffer
// stalls or forced write-backs a run suffered; the trace says *when*
// each one happened relative to the transactions around it, which is
// the only way to see an FWB scan racing log wrap-around or an
// uncacheable log update overlapping the cached store it covers.
//
// Design constraints, in order:
//
//  1. The disabled fast path must be one atomic load. Tracers are
//     threaded through every hot path of the machine (OnStore, log
//     append, FWB scan, shard apply), so when tracing is off the cost
//     must vanish into noise — the experiments' numbers depend on it.
//  2. Emit must be lock-free and allocation-free even when enabled.
//     Shard apply loops and the per-cycle simulator core cannot take a
//     mutex or touch the garbage collector per event.
//  3. Records are fixed-size so a ring is a flat array and a snapshot
//     is a bounded copy.
//
// Producers write into per-thread rings (ring index = simulated thread
// id, with one extra "machine" ring for engine/controller/cache events
// that have no owning thread). A ring is multi-producer safe: a writer
// claims a slot with an atomic fetch-add and then stores the three
// record words with atomic stores. When the ring wraps, the oldest
// records are overwritten — the drop policy is overwrite-oldest, and
// the total emit count is kept so Dropped() is exact. Snapshot is meant
// to be taken after Disable (or any quiescent point); a snapshot raced
// with active producers may observe individually-torn records, which is
// acceptable for a diagnostic trace and irrelevant in the intended
// stop-the-world usage.
package obs

import (
	"sort"
	"sync/atomic"
)

// Kind identifies what a trace event records. The mapping from kinds to
// paper mechanisms is documented in DESIGN.md §10.
type Kind uint8

const (
	// KindNone marks a slot that was never written.
	KindNone Kind = iota

	// Transaction lifecycle (internal/sim ctx). Arg is unused.
	KindTxBegin
	KindTxCommit
	KindTxAbort

	// Undo+redo log (internal/nvlog via the core engine). Arg is the
	// record sequence number, except for KindLogWrap (the pass index
	// the log just entered) and KindLogTruncate (records dropped).
	KindLogAppend
	KindLogWrap
	KindLogStall // head-chase: append found the circular log full
	KindLogTruncate

	// Memory-controller buffers (internal/memctl). Arg is the line
	// address drained, except KindBufStall where it is the stall cycles.
	KindBufDrain
	KindBufStall

	// Force write-back scans (internal/cache). KindFwbScan summarises
	// one pass: Arg packs forced<<32 | flagged. KindFwbForced is one
	// FWB-state line written back mid-scan; Arg is the line address.
	KindFwbScan
	KindFwbForced

	// KindWriteBack is a dirty-line write-back reaching the controller
	// (eviction or flush). Arg is the line address.
	KindWriteBack

	// Server request lifecycle (internal/server). TS is nanoseconds
	// since server start, not cycles. Arg is the request sequence.
	KindSrvRecv
	KindSrvEnqueue
	KindSrvApply
	KindSrvAck

	kindCount
)

var kindNames = [kindCount]string{
	KindNone:        "none",
	KindTxBegin:     "tx-begin",
	KindTxCommit:    "tx-commit",
	KindTxAbort:     "tx-abort",
	KindLogAppend:   "log-append",
	KindLogWrap:     "log-wrap",
	KindLogStall:    "log-stall",
	KindLogTruncate: "log-truncate",
	KindBufDrain:    "buf-drain",
	KindBufStall:    "buf-stall",
	KindFwbScan:     "fwb-scan",
	KindFwbForced:   "fwb-forced",
	KindWriteBack:   "write-back",
	KindSrvRecv:     "srv-recv",
	KindSrvEnqueue:  "srv-enqueue",
	KindSrvApply:    "srv-apply",
	KindSrvAck:      "srv-ack",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one decoded trace record. In a ring it occupies exactly
// three words: timestamp, argument, and a packed meta word.
type Event struct {
	TS   uint64 // cycles (simulator rings) or nanoseconds (server rings)
	Arg  uint64 // kind-specific payload; see the Kind constants
	Kind Kind
	Ring uint8  // producing ring index
	TxID uint16 // owning transaction id, 0 when not applicable
	Span uint32 // request span tag, 0 when the event belongs to no request
}

// slot is the in-ring representation. Fields are written individually
// with atomic stores after the slot index is claimed; meta is stored
// last so a fully-quiescent snapshot always sees whole records.
type slot struct {
	ts   atomic.Uint64
	arg  atomic.Uint64
	meta atomic.Uint64
}

// packMeta folds kind, ring, txid, and the 32-bit request span tag into
// the slot's one meta word: the span rides in the high half that the
// original three-field layout left unused, so span annotation costs no
// extra ring space.
func packMeta(kind Kind, ring uint8, txid uint16, span uint32) uint64 {
	return uint64(kind) | uint64(ring)<<8 | uint64(txid)<<16 | uint64(span)<<32
}

// Ring is one fixed-capacity event buffer. Writers claim slots with an
// atomic fetch-add on pos, so a ring tolerates multiple concurrent
// producers (the server's connection handlers share one network ring);
// in the simulator each ring has a single producer by construction.
type Ring struct {
	pos   atomic.Uint64 // total events ever emitted into this ring
	_     [56]byte      // keep hot counters of adjacent rings off one line
	mask  uint64
	slots []slot
}

func newRing(capacity int) *Ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Dropped reports how many records were overwritten by wrap-around.
func (r *Ring) Dropped() uint64 {
	p := r.pos.Load()
	if c := uint64(len(r.slots)); p > c {
		return p - c
	}
	return 0
}

// Emitted reports how many records were ever written into this ring.
func (r *Ring) Emitted() uint64 { return r.pos.Load() }

// RingStat is one ring's emit/drop accounting, for surfacing silent
// event loss on stats endpoints.
type RingStat struct {
	Emitted uint64 `json:"emitted"`
	Dropped uint64 `json:"dropped"`
}

// Tracer owns a set of rings and the global enabled flag.
type Tracer struct {
	enabled atomic.Bool
	rings   []*Ring
}

// NewTracer builds a tracer with the given number of rings, each
// holding perRing records (rounded up to a power of two). By
// convention, callers tracing a simulated machine allocate one ring
// per hardware thread plus a final machine ring.
func NewTracer(rings, perRing int) *Tracer {
	if rings < 1 {
		rings = 1
	}
	if perRing < 1 {
		perRing = 1
	}
	t := &Tracer{rings: make([]*Ring, rings)}
	for i := range t.rings {
		t.rings[i] = newRing(perRing)
	}
	return t
}

// Rings reports the number of rings.
func (t *Tracer) Rings() int { return len(t.rings) }

// Enable turns event recording on.
func (t *Tracer) Enable() { t.enabled.Store(true) }

// Disable turns event recording off. Emits begun before the store may
// still land; take snapshots at a quiescent point.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Emit records one event into the given ring. On a nil or disabled
// tracer it is a single predictable branch — every instrumentation
// hook in the machine calls this unconditionally. Out-of-range ring
// indices fold into the last (machine) ring rather than dropping the
// event. Emit never locks and never allocates.
func (t *Tracer) Emit(ring int, ts uint64, kind Kind, txid uint16, arg uint64) {
	t.EmitSpan(ring, ts, kind, txid, arg, 0)
}

// EmitSpan is Emit with a request span tag: the event is annotated as
// belonging to the request whose span ID folds to span (see the flight
// package), so a post-hoc scan can reassemble one request's causal
// timeline across rings. Same cost contract as Emit: lock-free,
// allocation-free, one branch when disabled.
func (t *Tracer) EmitSpan(ring int, ts uint64, kind Kind, txid uint16, arg uint64, span uint32) {
	if t == nil || !t.enabled.Load() {
		return
	}
	if ring < 0 || ring >= len(t.rings) {
		ring = len(t.rings) - 1
	}
	r := t.rings[ring]
	i := r.pos.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.ts.Store(ts)
	s.arg.Store(arg)
	s.meta.Store(packMeta(kind, uint8(ring), txid, span))
}

// Dropped sums the overwritten-record counts across all rings.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for _, r := range t.rings {
		n += r.Dropped()
	}
	return n
}

// Emitted reports the total number of events ever emitted.
func (t *Tracer) Emitted() uint64 {
	var n uint64
	for _, r := range t.rings {
		n += r.pos.Load()
	}
	return n
}

// RingStats reports per-ring emit and drop counts (index = ring index).
func (t *Tracer) RingStats() []RingStat {
	if t == nil {
		return nil
	}
	out := make([]RingStat, len(t.rings))
	for i, r := range t.rings {
		out[i] = RingStat{Emitted: r.Emitted(), Dropped: r.Dropped()}
	}
	return out
}

// Reset clears all rings and counters. Not safe to race with Emit.
func (t *Tracer) Reset() {
	for _, r := range t.rings {
		r.pos.Store(0)
		for i := range r.slots {
			r.slots[i].ts.Store(0)
			r.slots[i].arg.Store(0)
			r.slots[i].meta.Store(0)
		}
	}
}

// Snapshot decodes every surviving record, oldest first within each
// ring, merged and sorted by timestamp (stable, so same-cycle events
// keep ring order). Call it after Disable or at a quiescent point.
func (t *Tracer) Snapshot() []Event {
	var out []Event
	for _, r := range t.rings {
		p := r.pos.Load()
		n := p
		if c := uint64(len(r.slots)); n > c {
			n = c
		}
		for i := p - n; i < p; i++ {
			s := &r.slots[i&r.mask]
			meta := s.meta.Load()
			k := Kind(meta & 0xff)
			if k == KindNone || k >= kindCount {
				continue
			}
			out = append(out, Event{
				TS:   s.ts.Load(),
				Arg:  s.arg.Load(),
				Kind: k,
				Ring: uint8(meta >> 8),
				TxID: uint16(meta >> 16),
				Span: uint32(meta >> 32),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
