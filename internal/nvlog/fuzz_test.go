package nvlog

import (
	"testing"

	"pmemlog/internal/mem"
)

// FuzzDecode: arbitrary bytes must never panic and never decode into an
// out-of-range kind.
func FuzzDecode(f *testing.F) {
	f.Add(make([]byte, FullEntrySize))
	f.Add(Encode(Entry{Kind: KindUpdate, TxID: 7, Addr: 0x1234, Undo: 1, Redo: 2}, UndoRedo, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, style := range []Style{UndoRedo, UndoOnly, RedoOnly} {
			e, _, ok := Decode(data, style)
			if ok && (e.Kind < KindHeader || e.Kind > KindCommit) {
				t.Fatalf("decoded invalid kind %d", e.Kind)
			}
		}
	})
}

// FuzzScan: a log region filled with arbitrary bytes must never panic the
// recovery scan — it may legitimately error or return few records, but
// never read outside the region or loop forever.
func FuzzScan(f *testing.F) {
	f.Add(uint64(0), uint64(0), []byte{})
	f.Add(uint64(2), uint64(5), []byte{0x5F, 0xB0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, head, tail uint64, garbage []byte) {
		img := mem.NewPhysical(0, 64<<10)
		// Write garbage into the record area.
		for i, b := range garbage {
			if i >= 32<<10 {
				break
			}
			img.Write(mem.Addr(MetaSize+i), []byte{b})
		}
		meta := Meta{
			Head:     head % 2048,
			Tail:     tail % 2048,
			Capacity: 512,
			Style:    UndoRedo,
		}
		if meta.Tail < meta.Head {
			meta.Head, meta.Tail = meta.Tail, meta.Head
		}
		if meta.Tail-meta.Head > meta.Capacity {
			meta.Tail = meta.Head + meta.Capacity
		}
		entries, trueTail, err := Scan(img, 0, meta)
		if err != nil {
			return // rejecting corrupt logs is correct behaviour
		}
		// The scan stops at the first hole, which may be before the
		// persisted tail; the discovered tail stays within one pass.
		if trueTail < meta.Head || trueTail > meta.Head+meta.Capacity {
			t.Fatalf("true tail %d outside [%d, %d]", trueTail, meta.Head, meta.Head+meta.Capacity)
		}
		if uint64(len(entries)) != trueTail-meta.Head {
			t.Fatalf("entry count %d != window %d", len(entries), trueTail-meta.Head)
		}
	})
}
