package nvlog

import (
	"testing"
	"testing/quick"

	"pmemlog/internal/mem"
)

func testCfg(style Style, entries uint64) Config {
	return Config{Base: 0x10000, SizeBytes: MetaSize + entries*style.EntrySize(), Style: style}
}

// apply performs the functional writes against an image (standing in for
// the memory controller's tracked path).
func apply(img *mem.Physical, writes []Write) {
	for _, w := range writes {
		img.Write(w.Addr, w.Bytes)
	}
}

func newImg() *mem.Physical { return mem.NewPhysical(0, 1<<21) }

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := Entry{Kind: KindUpdate, TxID: 0xbeef, ThreadID: 7, Addr: 0x123456789abc, Undo: 111, Redo: 222}
	for _, style := range []Style{UndoRedo, UndoOnly, RedoOnly} {
		buf := Encode(e, style, 3)
		if uint64(len(buf)) != style.EntrySize() {
			t.Fatalf("style %v: size %d", style, len(buf))
		}
		got, pass, ok := Decode(buf, style)
		if !ok || pass != 3 {
			t.Fatalf("style %v: decode ok=%v pass=%v", style, ok, pass)
		}
		if got.Kind != e.Kind || got.TxID != e.TxID || got.ThreadID != e.ThreadID || got.Addr != e.Addr {
			t.Fatalf("style %v: header mismatch: %+v", style, got)
		}
		switch style {
		case UndoRedo:
			if got.Undo != 111 || got.Redo != 222 {
				t.Fatalf("undo+redo values: %+v", got)
			}
		case UndoOnly:
			if got.Undo != 111 {
				t.Fatalf("undo value: %+v", got)
			}
		case RedoOnly:
			if got.Redo != 222 {
				t.Fatalf("redo value: %+v", got)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, ok := Decode(make([]byte, FullEntrySize), UndoRedo); ok {
		t.Error("zeroed record decoded")
	}
	buf := Encode(Entry{Kind: KindUpdate}, UndoRedo, 0)
	buf[4] = 0 // break magic
	if _, _, ok := Decode(buf, UndoRedo); ok {
		t.Error("bad-magic record decoded")
	}
	buf2 := Encode(Entry{Kind: KindUpdate}, UndoRedo, 0)
	buf2[0] = 0xff // invalid kind
	if _, _, ok := Decode(buf2, UndoRedo); ok {
		t.Error("bad-kind record decoded")
	}
	if _, _, ok := Decode([]byte{1, 2}, UndoRedo); ok {
		t.Error("short record decoded")
	}
}

// Property: encode/decode round-trips for arbitrary field values.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(kind uint8, txid uint16, tid uint8, addr uint64, undo, redo uint64, pass uint8) bool {
		e := Entry{
			Kind:     kind%3 + 1,
			TxID:     txid,
			ThreadID: tid,
			Addr:     mem.Addr(addr) % mem.MaxAddr,
			Undo:     mem.Word(undo),
			Redo:     mem.Word(redo),
		}
		buf := Encode(e, UndoRedo, uint64(pass))
		got, gotPass, ok := Decode(buf, UndoRedo)
		return ok && gotPass == pass && got == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendTruncateCircular(t *testing.T) {
	img := newImg()
	l, init, err := New(testCfg(UndoRedo, 8))
	if err != nil {
		t.Fatal(err)
	}
	apply(img, init)
	if l.Capacity() != 8 || l.Len() != 0 || l.Full() {
		t.Fatalf("fresh log: cap=%d len=%d", l.Capacity(), l.Len())
	}
	for i := 0; i < 8; i++ {
		ws, err := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: uint16(i)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		apply(img, ws)
	}
	if !l.Full() {
		t.Fatal("log should be full")
	}
	if _, err := l.PrepareAppend(Entry{Kind: KindUpdate}); err != ErrFull {
		t.Fatalf("append to full log: %v, want ErrFull", err)
	}
	// Consume 3, append 3 more (wrapping).
	ws, err := l.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	apply(img, ws)
	if l.Len() != 5 {
		t.Fatalf("len after truncate = %d", l.Len())
	}
	for i := 8; i < 11; i++ {
		ws, err := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: uint16(i)})
		if err != nil {
			t.Fatalf("wrap append %d: %v", i, err)
		}
		apply(img, ws)
	}
	// Slot of seq 8 must reuse slot of seq 0.
	if l.SlotAddr(8) != l.SlotAddr(0) {
		t.Error("wrap-around slot mismatch")
	}
	if _, err := l.Truncate(100); err == nil {
		t.Error("over-truncate accepted")
	}
}

func TestTornBitFlipsPerPass(t *testing.T) {
	l, _, err := New(testCfg(UndoRedo, 4))
	if err != nil {
		t.Fatal(err)
	}
	img := newImg()
	// Pass 0: stamp 0.
	for i := 0; i < 4; i++ {
		ws, _ := l.PrepareAppend(Entry{Kind: KindUpdate})
		apply(img, ws)
		_, pass, _ := Decode(img.Read(l.SlotAddr(uint64(i)), FullEntrySize), UndoRedo)
		if pass != 0 {
			t.Fatalf("pass 0 entry %d has stamp %d", i, pass)
		}
	}
	ws, _ := l.Truncate(4)
	apply(img, ws)
	// Pass 1: stamp 1 (torn bit set).
	ws2, _ := l.PrepareAppend(Entry{Kind: KindUpdate})
	apply(img, ws2)
	raw := img.Read(l.SlotAddr(4), FullEntrySize)
	_, pass, _ := Decode(raw, UndoRedo)
	if pass != 1 || raw[0]&1 != 1 {
		t.Fatalf("pass 1 entry has stamp %d torn %d", pass, raw[0]&1)
	}
}

func TestMetaPeriodicSync(t *testing.T) {
	cfg := testCfg(UndoRedo, 16)
	cfg.MetaEvery = 4
	l, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	syncs := l.Stats().MetaSyncs
	var metaWrites int
	for i := 0; i < 8; i++ {
		ws, _ := l.PrepareAppend(Entry{Kind: KindUpdate})
		for _, w := range ws {
			if w.Addr == cfg.Base {
				metaWrites++
			}
		}
	}
	if metaWrites != 2 {
		t.Errorf("meta writes in 8 appends with MetaEvery=4: %d, want 2", metaWrites)
	}
	if l.Stats().MetaSyncs != syncs+2 {
		t.Errorf("MetaSyncs stat = %d", l.Stats().MetaSyncs)
	}
}

func TestScanRecoversAllEntries(t *testing.T) {
	img := newImg()
	cfg := testCfg(UndoRedo, 16)
	cfg.MetaEvery = 1 << 30 // never sync tail: force torn-bit scanning
	l, init, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	apply(img, init)
	for i := 0; i < 10; i++ {
		ws, _ := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: uint16(i), Addr: mem.Addr(i * 8)})
		apply(img, ws)
	}
	meta, err := ReadMeta(img, cfg.Base)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Tail != 0 {
		t.Fatalf("persisted tail = %d, want 0 (no sync)", meta.Tail)
	}
	entries, trueTail, err := Scan(img, cfg.Base, meta)
	if err != nil {
		t.Fatal(err)
	}
	if trueTail != 10 || len(entries) != 10 {
		t.Fatalf("scan found %d entries, true tail %d; want 10/10", len(entries), trueTail)
	}
	for i, e := range entries {
		if e.TxID != uint16(i) {
			t.Fatalf("entry %d: txid %d", i, e.TxID)
		}
	}
}

func TestScanStopsAtStaleParityAfterWrap(t *testing.T) {
	img := newImg()
	cfg := testCfg(UndoRedo, 4)
	cfg.MetaEvery = 1 << 30
	l, init, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	apply(img, init)
	// Fill pass 0 fully, truncate, then write 2 entries of pass 1.
	for i := 0; i < 4; i++ {
		ws, _ := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: 100 + uint16(i)})
		apply(img, ws)
	}
	ws, _ := l.Truncate(4)
	apply(img, ws)
	for i := 0; i < 2; i++ {
		ws, _ := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: 200 + uint16(i)})
		apply(img, ws)
	}
	meta, _ := ReadMeta(img, cfg.Base)
	// Persisted head=4 (truncate synced), tail=4; scan must find exactly
	// the two pass-1 entries and stop at the stale pass-0 records.
	entries, trueTail, err := Scan(img, cfg.Base, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || trueTail != 6 {
		t.Fatalf("scan: %d entries, tail %d; want 2/6", len(entries), trueTail)
	}
	if entries[0].TxID != 200 || entries[1].TxID != 201 {
		t.Fatalf("scan recovered wrong entries: %+v", entries)
	}
}

func TestGrowMigratesLiveRecords(t *testing.T) {
	img := newImg()
	cfg := testCfg(UndoRedo, 4)
	l, init, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	apply(img, init)
	for i := 0; i < 4; i++ {
		ws, _ := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: uint16(i)})
		apply(img, ws)
	}
	if !l.Full() {
		t.Fatal("log should be full before grow")
	}
	newCfg := Config{Base: 0x40000, SizeBytes: MetaSize + 16*FullEntrySize, Style: UndoRedo}
	ws, err := l.Grow(img, newCfg)
	if err != nil {
		t.Fatal(err)
	}
	apply(img, ws)
	if l.Full() || l.Len() != 4 || l.Capacity() != 16 {
		t.Fatalf("after grow: len=%d cap=%d full=%v", l.Len(), l.Capacity(), l.Full())
	}
	// All four live records must be recoverable from the new region.
	meta, err := ReadMeta(img, newCfg.Base)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := Scan(img, newCfg.Base, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("post-grow scan found %d entries", len(entries))
	}
	for i, e := range entries {
		if e.TxID != uint16(i) {
			t.Fatalf("post-grow entry %d: txid %d", i, e.TxID)
		}
	}
	// Growing to a smaller capacity or different style is rejected.
	if _, err := l.Grow(img, testCfg(UndoRedo, 8)); err == nil {
		t.Error("shrinking grow accepted")
	}
	bad := Config{Base: 0x80000, SizeBytes: MetaSize + 64*CompactEntrySize, Style: RedoOnly}
	if _, err := l.Grow(img, bad); err == nil {
		t.Error("style-changing grow accepted")
	}
}

// Property: the log behaves as a FIFO queue — any interleaving of appends
// and truncates preserves order and count.
func TestQuickFIFOSemantics(t *testing.T) {
	f := func(ops []bool) bool {
		img := newImg()
		cfg := testCfg(UndoRedo, 8)
		l, init, err := New(cfg)
		if err != nil {
			return false
		}
		apply(img, init)
		var model []uint16 // shadow queue
		next := uint16(0)
		for _, isAppend := range ops {
			if isAppend && !l.Full() {
				ws, err := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: next})
				if err != nil {
					return false
				}
				apply(img, ws)
				model = append(model, next)
				next++
			} else if !isAppend && l.Len() > 0 {
				ws, err := l.Truncate(1)
				if err != nil {
					return false
				}
				apply(img, ws)
				model = model[1:]
			}
		}
		if uint64(len(model)) != l.Len() {
			return false
		}
		meta, err := ReadMeta(img, cfg.Base)
		if err != nil {
			return false
		}
		entries, _, err := Scan(img, cfg.Base, meta)
		if err != nil {
			return false
		}
		// The durable head is persisted lazily, so the scan may include a
		// prefix of already-truncated records; the live records must form
		// the scan's suffix, in order.
		if len(entries) < len(model) {
			return false
		}
		off := len(entries) - len(model)
		for i, want := range model {
			if entries[off+i].TxID != want {
				return false
			}
		}
		// The extra prefix (already-truncated records not yet reflected in
		// the lazily-persisted head) must itself be consecutive TxIDs
		// immediately preceding the live records.
		if off > 0 && len(model) > 0 {
			for i := 0; i < off; i++ {
				if entries[i].TxID != model[0]-uint16(off-i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
