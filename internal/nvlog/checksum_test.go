package nvlog

import "testing"

// TestChecksumRejectsBodyCorruption: the record checksum in the two
// reserved bytes covers header and body, so any single corrupted body
// byte — the shape a word-granularity tear leaves when a fresh header
// lands over a stale body — fails Decode.
func TestChecksumRejectsBodyCorruption(t *testing.T) {
	e := Entry{Kind: KindUpdate, TxID: 0x1234, ThreadID: 3, Addr: 0x10000, Undo: 7, Redo: 8}
	for _, style := range []Style{UndoRedo, UndoOnly, RedoOnly} {
		for i := 0; i < FullEntrySize; i++ {
			if i == 14 || i == 15 {
				continue // the checksum bytes themselves are not covered
			}
			buf := Encode(e, style, 2)
			buf[i] ^= 0x40
			if _, _, ok := Decode(buf, style); ok {
				// Flips that break the magic/kind/pass checks are caught
				// earlier; the point is that NO single-byte flip decodes.
				t.Errorf("style %v: corrupt byte %d decoded", style, i)
			}
		}
	}
}

// TestChecksumRejectsPrefixTornRecord reconstructs the exact failure
// the chaos campaign exposed: NVRAM tears at 8-byte write units, so a
// crash mid-record can land a valid pass-N first word over a stale
// pass-(N-1) body. Word 0 alone carries the torn bit, magic, and pass
// stamp — all valid — so only the checksum (computed over header AND
// body) can reject the hybrid.
func TestChecksumRejectsPrefixTornRecord(t *testing.T) {
	stale := Encode(Entry{Kind: KindUpdate, TxID: 1, Addr: 0x20000, Undo: 10, Redo: 11}, UndoRedo, 0)
	fresh := Encode(Entry{Kind: KindUpdate, TxID: 2, Addr: 0x30000, Undo: 20, Redo: 21}, UndoRedo, 1)

	// The torn slot: only word 0 of the fresh record reached NVRAM.
	torn := append([]byte(nil), stale...)
	copy(torn[:8], fresh[:8])
	if _, _, ok := Decode(torn, UndoRedo); ok {
		t.Fatal("prefix-torn record (fresh header, stale body) decoded")
	}

	// Larger prefixes keep failing until the record is whole again.
	for words := 2; words < 4; words++ {
		torn := append([]byte(nil), stale...)
		copy(torn[:words*8], fresh[:words*8])
		if _, _, ok := Decode(torn, UndoRedo); ok {
			t.Fatalf("%d-word torn record decoded", words)
		}
	}
	if _, _, ok := Decode(fresh, UndoRedo); !ok {
		t.Fatal("whole record rejected")
	}
}

// TestChecksumDeterministic: encoding the same entry twice yields the
// same bytes (the checksum must not fold in any ambient state).
func TestChecksumDeterministic(t *testing.T) {
	e := Entry{Kind: KindCommit, TxID: 9, Addr: 0x40000}
	a := Encode(e, UndoRedo, 5)
	b := Encode(e, UndoRedo, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte %d differs across encodes", i)
		}
	}
	if a[14] == 0 && a[15] == 0 {
		// Not impossible for one entry, but this fixed entry's sum is
		// known non-zero; a zero here means the checksum went missing.
		t.Fatal("checksum bytes are zero")
	}
}
