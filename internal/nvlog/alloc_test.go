package nvlog

import (
	"testing"

	"pmemlog/internal/mem"
)

func allocTestLog(t testing.TB) *Log {
	t.Helper()
	l, _, err := New(Config{
		Base:      mem.Addr(1) << 32,
		SizeBytes: 64 << 10,
		Style:     UndoRedo,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// consume simulates what the memory controller does with the functional
// writes: it reads every byte synchronously, so the scratch buffers are
// free for reuse by the next call (the Write aliasing contract).
func consume(writes []Write) (sum byte) {
	for _, w := range writes {
		for _, b := range w.Bytes {
			sum += b
		}
	}
	return sum
}

// TestPrepareAppendZeroAlloc is the hot-path allocation guard for the log
// append encode path: a steady-state append (including the periodic tail
// metadata sync and head-sync writes after truncation) must not allocate.
func TestPrepareAppendZeroAlloc(t *testing.T) {
	l := allocTestLog(t)
	e := Entry{Kind: KindUpdate, TxID: 7, ThreadID: 1, Addr: 1 << 33, Undo: 1, Redo: 2}
	var sink byte
	allocs := testing.AllocsPerRun(2000, func() {
		if l.Full() {
			w, err := l.Truncate(l.Len())
			if err != nil {
				t.Fatal(err)
			}
			sink += consume(w)
		}
		w, err := l.PrepareAppend(e)
		if err != nil {
			t.Fatal(err)
		}
		sink += consume(w)
	})
	if allocs != 0 {
		t.Fatalf("PrepareAppend/Truncate cycle allocates %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

// TestEncodeIntoZeroAlloc guards the record serializer itself.
func TestEncodeIntoZeroAlloc(t *testing.T) {
	var buf [FullEntrySize]byte
	e := Entry{Kind: KindCommit, TxID: 3, Addr: 1 << 33, Undo: 9, Redo: 10}
	allocs := testing.AllocsPerRun(1000, func() {
		EncodeInto(buf[:], e, UndoRedo, 1)
	})
	if allocs != 0 {
		t.Fatalf("EncodeInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestScratchWritesConsumedBeforeReuse documents the aliasing contract:
// the bytes returned by PrepareAppend are rewritten by the next call.
func TestScratchWritesConsumedBeforeReuse(t *testing.T) {
	l := allocTestLog(t)
	w1, err := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: 1, Addr: 1 << 33, Undo: 0x11})
	if err != nil {
		t.Fatal(err)
	}
	rec1 := w1[len(w1)-1].Bytes
	var before [FullEntrySize]byte
	copy(before[:], rec1)
	if _, err := l.PrepareAppend(Entry{Kind: KindUpdate, TxID: 2, Addr: 1 << 34, Undo: 0x22}); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range before {
		if rec1[i] != before[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("second PrepareAppend left the first record's scratch bytes untouched; expected reuse (did the scratch encoder regress to per-call allocation?)")
	}
}

// BenchmarkLogAppend measures the wall-clock cost of the append encode
// path (slot claim + record encode + periodic metadata sync).
func BenchmarkLogAppend(b *testing.B) {
	l := allocTestLog(b)
	e := Entry{Kind: KindUpdate, TxID: 7, ThreadID: 1, Addr: 1 << 33, Undo: 1, Redo: 2}
	var sink byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.Full() {
			w, err := l.Truncate(l.Len())
			if err != nil {
				b.Fatal(err)
			}
			sink += consume(w)
		}
		w, err := l.PrepareAppend(e)
		if err != nil {
			b.Fatal(err)
		}
		sink += consume(w)
	}
	_ = sink
}
