// Package nvlog implements the circular undo+redo log the paper keeps in
// NVRAM (Section III-A, Figure 3(a)): a single-producer single-consumer
// Lamport circular buffer of fixed-size records, each carrying a torn bit,
// a 16-bit transaction ID, an 8-bit thread ID, a 48-bit physical address,
// a one-word undo value, and a one-word redo value.
//
// A record's fields (Figure 3(a): 1-bit torn, 16-bit TxID, 8-bit thread,
// 48-bit address, one-word undo, one-word redo ≈ 26 B) pack into a 32 B
// slot, two per cache line, which the write-combining log buffer
// coalesces. (The paper's "64K entries ≈ 4 MB" aside implies 64 B slots;
// we follow the Figure 3(a) field layout instead — a 4 MB log holds 128K
// records here, which only makes the FWB frequency law easier to satisfy.)
//
// The package is purely computational: it manages head/tail registers,
// slot addressing, torn-bit parity, and record encoding. The *functional*
// NVRAM writes are returned to the caller as Write descriptors so the
// memory controller can apply them with proper timing and crash fidelity.
// Recovery reads the NVRAM image directly (see ReadMeta/Scan).
package nvlog

import (
	"errors"
	"fmt"

	"pmemlog/internal/mem"
)

// Style selects which values records carry.
type Style int

const (
	// UndoRedo records both old and new values (the paper's design).
	UndoRedo Style = iota
	// UndoOnly records only old values (undo logging baselines).
	UndoOnly
	// RedoOnly records only new values (redo logging baselines).
	RedoOnly
)

func (s Style) String() string {
	switch s {
	case UndoRedo:
		return "undo+redo"
	case UndoOnly:
		return "undo"
	default:
		return "redo"
	}
}

// EntrySize returns the record size in bytes for the style.
func (s Style) EntrySize() uint64 {
	if s == UndoRedo {
		return FullEntrySize
	}
	return CompactEntrySize
}

// Record kinds. The paper writes a "log record header" on the first cache
// line update of a data object (Section III-E step 1a); we generalize to
// explicit Header and Commit kinds alongside Update records. Commit records
// make recovery's committed-transaction detection explicit (a documented
// strengthening of the paper's value-matching heuristic).
const (
	KindHeader = 1 // transaction's first record: announces txid
	KindUpdate = 2 // one store: addr + undo/redo values
	KindCommit = 3 // transaction committed
)

const (
	// FullEntrySize is the size of an undo+redo record (two per line).
	FullEntrySize = 32
	// CompactEntrySize is the size of an undo-only or redo-only record.
	CompactEntrySize = 32
	// MetaSize is the metadata block at the start of the log region: magic,
	// persisted head, persisted tail, capacity, style (one line).
	MetaSize = mem.LineSize

	// Record byte-class split (see EncodeInto): bytes 0-13 are header
	// (flags, thread, txid, magic, pass, reserved, 48-bit address),
	// 14-15 the FNV checksum, 16-23 the undo word, 24-31 the redo word.
	// Scope accounting and the pmscope offline analyzer attribute every
	// log byte to one of these classes; update records carry all four,
	// header/commit records only header+checksum (their value words are
	// reserved-zero and count as header padding).
	RecUndoBytes     = 8
	RecRedoBytes     = 8
	RecChecksumBytes = 2

	magic0 = 0x5F // "Steal but no Force"
	magic1 = 0xB0
)

// Entry is one log record.
type Entry struct {
	Kind     uint8
	TxID     uint16
	ThreadID uint8
	Addr     mem.Addr // 48-bit physical address of the logged word
	Undo     mem.Word // old value (styles UndoRedo, UndoOnly)
	Redo     mem.Word // new value (styles UndoRedo, RedoOnly)
}

// Write is a functional NVRAM write the caller must apply (through the
// memory controller's tracked path) to make an append or truncate durable.
//
// ALIASING CONTRACT: Bytes returned by PrepareAppend and Truncate alias
// scratch buffers owned by the Log (the zero-allocation append path) and
// are valid only until the next PrepareAppend/Truncate/Grow call on that
// Log. Callers must consume them (hand them to the memory controller,
// which copies) before appending again; both the hardware engine and the
// software append path do. Writes returned by New and Grow are
// independently allocated and do not expire.
type Write struct {
	Addr  mem.Addr
	Bytes []byte
}

// Encode serializes e into a record of the style's size. pass is the
// record's pass number over the circular buffer (seq / capacity); its low
// bit is the paper's torn bit, and the full 8-bit value is stored as a
// pass stamp so a scan against a stale durable head cannot confuse pass N
// with pass N+2 (a documented strengthening — under the paper's eager
// pointer persistence one bit suffices; see DESIGN.md).
func Encode(e Entry, style Style, pass uint64) []byte {
	buf := make([]byte, style.EntrySize())
	EncodeInto(buf, e, style, pass)
	return buf
}

// EncodeInto serializes e into buf, which must hold at least
// style.EntrySize() bytes. Every byte of the record is written (reserved
// bytes are cleared), so a reused scratch buffer cannot leak a previous
// record's contents.
func EncodeInto(buf []byte, e Entry, style Style, pass uint64) {
	flags := e.Kind << 1
	if pass%2 == 1 {
		flags |= 1 // the torn bit
	}
	buf[0] = flags
	buf[1] = e.ThreadID
	buf[2] = byte(e.TxID)
	buf[3] = byte(e.TxID >> 8)
	buf[4] = magic0
	buf[5] = magic1
	buf[6] = byte(pass)
	buf[7] = 0 // reserved
	a := uint64(e.Addr)
	for i := 0; i < 6; i++ { // 48-bit address
		buf[8+i] = byte(a >> (8 * i))
	}
	switch style {
	case UndoRedo:
		putWord(buf[16:24], e.Undo)
		putWord(buf[24:32], e.Redo)
	case UndoOnly:
		putWord(buf[16:24], e.Undo)
		putWord(buf[24:32], 0)
	case RedoOnly:
		putWord(buf[16:24], e.Redo)
		putWord(buf[24:32], 0)
	}
	cs := recordSum(buf)
	buf[14], buf[15] = byte(cs), byte(cs>>8)
}

// recordSum folds FNV-1a over every record byte except the checksum's
// own slot (bytes 14-15). Covering the header as well as the body is what
// makes the check bite: a record torn after its first write unit pairs a
// fresh header with a stale body whose stale checksum was computed over
// the *stale* header — the pass stamp alone guarantees the two headers
// differ, so the sum cannot carry over.
func recordSum(buf []byte) uint16 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, b := range buf[:FullEntrySize] {
		if i == 14 || i == 15 {
			continue
		}
		h = (h ^ uint64(b)) * prime64
	}
	return uint16(h ^ h>>16 ^ h>>32 ^ h>>48)
}

// Decode parses a record. It returns the entry, its pass stamp (whose low
// bit is the torn bit and must equal bit 0 of the flags), and whether the
// record looks like a valid record of this log (magic bytes match and the
// kind is known).
func Decode(buf []byte, style Style) (Entry, uint8, bool) {
	if len(buf) < int(style.EntrySize()) {
		return Entry{}, 0, false
	}
	if buf[4] != magic0 || buf[5] != magic1 {
		return Entry{}, 0, false
	}
	// The record checksum (bytes 14-15, FNV-1a over the rest) rejects
	// prefix-torn records: NVRAM tears at 8-byte write-unit granularity,
	// so a crash can land a record's header word without its body — the
	// torn bit, magic, and pass stamp would all look current over stale
	// or scrubbed body bytes. A documented strengthening of the paper's
	// single torn bit (see DESIGN.md); treating the reject as a hole is
	// sound for the same reason holes are: an incomplete record write
	// means nothing after it can have been durably acknowledged.
	if cs := recordSum(buf); buf[14] != byte(cs) || buf[15] != byte(cs>>8) {
		return Entry{}, 0, false
	}
	var e Entry
	pass := buf[6]
	if (buf[0]&1 == 1) != (pass%2 == 1) {
		return Entry{}, 0, false // torn bit and pass stamp disagree
	}
	e.Kind = buf[0] >> 1
	if e.Kind < KindHeader || e.Kind > KindCommit {
		return Entry{}, 0, false
	}
	e.ThreadID = buf[1]
	e.TxID = uint16(buf[2]) | uint16(buf[3])<<8
	var a uint64
	for i := 5; i >= 0; i-- {
		a = a<<8 | uint64(buf[8+i])
	}
	e.Addr = mem.Addr(a)
	switch style {
	case UndoRedo:
		e.Undo = getWord(buf[16:24])
		e.Redo = getWord(buf[24:32])
	case UndoOnly:
		e.Undo = getWord(buf[16:24])
	case RedoOnly:
		e.Redo = getWord(buf[16:24])
	}
	return e, pass, true
}

func putWord(b []byte, w mem.Word) {
	for i := 0; i < 8; i++ {
		b[i] = byte(w >> (8 * i))
	}
}

func getWord(b []byte) mem.Word {
	var w mem.Word
	for i := 7; i >= 0; i-- {
		w = w<<8 | mem.Word(b[i])
	}
	return w
}

// Config describes a log region in NVRAM.
type Config struct {
	Base      mem.Addr // line-aligned start (metadata occupies the first line)
	SizeBytes uint64   // region size including metadata
	Style     Style
	// MetaEvery persists the tail pointer to NVRAM metadata every N appends
	// (bounding how much of the log recovery must torn-bit-scan). 0 means
	// capacity/4.
	MetaEvery uint64
	// LineAligned pads every record slot to a full cache line — what
	// software logging implementations do to avoid partial-line writes and
	// false sharing. The hardware design instead packs records two per
	// line, coalesced by the log buffer; that density difference is part
	// of the paper's NVRAM-traffic win (Fig 9).
	LineAligned bool
}

// SlotSize returns the per-record slot size in bytes.
func (c Config) SlotSize() uint64 {
	if c.LineAligned {
		return mem.LineSize
	}
	return c.Style.EntrySize()
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if !c.Base.IsLineAligned() {
		return fmt.Errorf("nvlog: base %v not line aligned", c.Base)
	}
	if c.SizeBytes < MetaSize+c.SlotSize() {
		return fmt.Errorf("nvlog: region of %d bytes too small", c.SizeBytes)
	}
	return nil
}

// Capacity returns the number of entry slots the region holds.
func (c Config) Capacity() uint64 {
	return (c.SizeBytes - MetaSize) / c.SlotSize()
}

// ErrFull is returned by PrepareAppend when the circular buffer has no free
// slot; the producer must truncate (after forcing write-backs) or grow.
var ErrFull = errors.New("nvlog: log full")

// Log manages one circular log. Head and tail are monotonically increasing
// sequence numbers held in (volatile) special registers; slot = seq mod
// capacity; torn parity = (seq / capacity) mod 2.
type Log struct {
	cfg           Config
	head, tail    uint64
	appendsSince  uint64 // appends since last tail-metadata persist
	truncReserved uint64 // records truncated since last head-metadata persist
	// headDurable is the head value of the last metadata write that the
	// caller BARRIERED to completion (the PrepareAppend reuse contract).
	// Ordinary lazy metadata writes must not advance it: they may still be
	// in flight — or be reverted by a crash — when a colliding record
	// lands, which is exactly the hazard the reuse rule exists to prevent.
	headDurable uint64

	// Zero-allocation append scratch: PrepareAppend/Truncate encode into
	// these caller-visible buffers instead of allocating per record (see
	// the Write aliasing contract). scratchSlot holds the record (padded
	// to a full line under LineAligned — the pad bytes are written once at
	// zero and never touched again); the two metadata buffers keep a
	// head-sync write and a periodic tail-sync write alive in the same
	// batch; scratchWrites backs the returned slice (at most head-meta +
	// record + tail-meta).
	scratchSlot     [mem.LineSize]byte
	scratchHeadMeta [MetaSize]byte
	scratchTailMeta [MetaSize]byte
	scratchWrites   [3]Write
	// scratchEntry stages the entry handed to trace hooks: passing &e of
	// the parameter directly would make every call heap-allocate it, even
	// with tracing disabled (escape analysis is static).
	scratchEntry Entry

	// Statistics.
	appends   uint64
	truncates uint64
	grows     uint64
	metaSyncs uint64

	// trace, when non-nil, observes log lifecycle events. The log has no
	// notion of simulated time, so the installer (core.Engine or the
	// software-log path in sim) supplies a closure that stamps the
	// current cycle and forwards into the obs tracer.
	trace TraceFn
}

// TraceKind identifies which log event fired the trace hook.
type TraceKind int

const (
	// TraceAppend: one record claimed a slot. arg = sequence number.
	TraceAppend TraceKind = iota
	// TraceWrap: the append crossed into a new pass over the circular
	// buffer (slot reuse begins). arg = the pass index just entered.
	TraceWrap
	// TraceFull: an append found the buffer full (head-chase stall —
	// the producer must truncate or grow before retrying). arg = tail.
	TraceFull
	// TraceTruncate: the head advanced. arg = records truncated.
	TraceTruncate
)

// TraceFn observes one log event. e is the record involved for
// TraceAppend and TraceFull, nil otherwise.
type TraceFn func(k TraceKind, arg uint64, e *Entry)

// SetTrace installs (or with nil removes) the trace hook.
func (l *Log) SetTrace(fn TraceFn) { l.trace = fn }

// New creates an empty log over the region described by cfg. The returned
// Write persists the initial metadata block.
func New(cfg Config) (*Log, []Write, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.MetaEvery == 0 {
		cfg.MetaEvery = cfg.Capacity() / 4
		if cfg.MetaEvery == 0 {
			cfg.MetaEvery = 1
		}
	}
	l := &Log{cfg: cfg}
	return l, []Write{l.metaWrite()}, nil
}

// Resume reopens a log at the pointer positions recovery left in the
// durable metadata (post-reboot the sequence position must continue so
// torn-bit parity stays unambiguous). No metadata write is needed — the
// recovered metadata is already durable.
func Resume(cfg Config, head, tail uint64) (*Log, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if head > tail || tail-head > cfg.Capacity() {
		return nil, fmt.Errorf("nvlog: resume pointers head=%d tail=%d invalid for capacity %d",
			head, tail, cfg.Capacity())
	}
	if cfg.MetaEvery == 0 {
		cfg.MetaEvery = cfg.Capacity() / 4
		if cfg.MetaEvery == 0 {
			cfg.MetaEvery = 1
		}
	}
	return &Log{cfg: cfg, head: head, tail: tail, headDurable: head}, nil
}

// Config returns the log configuration.
func (l *Log) Config() Config { return l.cfg }

// Capacity returns the slot count.
func (l *Log) Capacity() uint64 { return l.cfg.Capacity() }

// Head returns the head sequence number (oldest live record).
func (l *Log) Head() uint64 { return l.head }

// Tail returns the tail sequence number (next append slot).
func (l *Log) Tail() uint64 { return l.tail }

// Len returns the number of live records.
func (l *Log) Len() uint64 { return l.tail - l.head }

// Full reports whether the next append would overwrite a live record.
func (l *Log) Full() bool { return l.Len() == l.Capacity() }

// Occupancy returns Len/Capacity in [0,1].
func (l *Log) Occupancy() float64 { return float64(l.Len()) / float64(l.Capacity()) }

// SlotAddr returns the NVRAM address of the record with sequence seq.
func (l *Log) SlotAddr(seq uint64) mem.Addr {
	return l.cfg.Base + MetaSize + mem.Addr((seq%l.Capacity())*l.cfg.SlotSize())
}

func (l *Log) pass(seq uint64) uint64 { return seq / l.Capacity() }

func (l *Log) metaWrite() Write {
	return l.metaWriteInto(make([]byte, MetaSize))
}

// metaWriteInto encodes the metadata block into buf (MetaSize bytes,
// typically one of the Log's scratch buffers) and returns the Write.
func (l *Log) metaWriteInto(buf []byte) Write {
	buf[0] = magic0
	buf[1] = magic1
	putWord(buf[8:16], mem.Word(l.head))
	putWord(buf[16:24], mem.Word(l.tail))
	putWord(buf[24:32], mem.Word(l.Capacity()))
	buf[32] = byte(l.cfg.Style)
	if l.cfg.LineAligned {
		buf[33] = 1
	} else {
		buf[33] = 0
	}
	l.metaSyncs++
	return Write{Addr: l.cfg.Base, Bytes: buf}
}

// PrepareAppend assigns the next slot to e and returns the functional
// writes that make it durable (the record itself, plus a periodic tail
// metadata sync). ErrFull means the caller must truncate or grow first.
func (l *Log) PrepareAppend(e Entry) ([]Write, error) {
	if l.Full() {
		if l.trace != nil {
			l.scratchEntry = e
			l.trace(TraceFull, l.tail, &l.scratchEntry)
		}
		return nil, ErrFull
	}
	seq := l.tail
	if l.trace != nil {
		if seq > 0 && seq%l.Capacity() == 0 {
			l.trace(TraceWrap, l.pass(seq), nil)
		}
		l.scratchEntry = e
		l.trace(TraceAppend, seq, &l.scratchEntry)
	}
	writes := l.scratchWrites[:0]
	// Reusing a slot that a post-crash scan would still trust (its old
	// sequence number is at or past the last BARRIERED durable head)
	// requires persisting the advanced head first. CONTRACT: when the
	// returned writes begin with a metadata write followed by the record,
	// the caller must wait for the metadata write's completion before
	// issuing the record (core.Engine.append and the software append path
	// both do). Only then may headDurable advance.
	if seq >= l.Capacity() && seq-l.Capacity() >= l.headDurable {
		l.truncReserved = 0
		writes = append(writes, l.metaWriteInto(l.scratchHeadMeta[:]))
		l.headDurable = l.head
	}
	// A padded (LineAligned) entry is written as its full line-sized
	// struct; EncodeInto covers every entry byte and the scratch pad
	// bytes beyond it are permanently zero, so slot reuse is exact.
	payload := l.scratchSlot[:l.cfg.SlotSize()]
	EncodeInto(payload, e, l.cfg.Style, l.pass(seq))
	w := Write{Addr: l.SlotAddr(seq), Bytes: payload}
	l.tail++
	l.appends++
	l.appendsSince++
	writes = append(writes, w)
	if l.appendsSince >= l.cfg.MetaEvery {
		l.appendsSince = 0
		writes = append(writes, l.metaWriteInto(l.scratchTailMeta[:]))
	}
	return writes, nil
}

// Truncate advances the head past n consumed records (the paper's
// log_truncate). The head pointer is persisted lazily — every MetaEvery
// truncated records — because a stale durable head is recovery-safe:
// records before the volatile head were truncatable (committed and with
// durable data), and redoing a committed record during recovery is
// idempotent. Slots are only reused once the volatile head has passed
// them, and any colliding append's metadata sync drains first (FIFO), so
// the durable window never contains overwritten slots.
func (l *Log) Truncate(n uint64) ([]Write, error) {
	if n > l.Len() {
		return nil, fmt.Errorf("nvlog: truncate %d > live %d", n, l.Len())
	}
	l.head += n
	l.truncates++
	l.truncReserved += n
	if l.trace != nil {
		l.trace(TraceTruncate, n, nil)
	}
	if l.truncReserved >= l.cfg.MetaEvery {
		l.truncReserved = 0
		writes := l.scratchWrites[:0]
		writes = append(writes, l.metaWriteInto(l.scratchTailMeta[:]))
		return writes, nil
	}
	return nil, nil
}

// Grow migrates the log to a new, larger region (the paper's log_grow,
// invoked when an uncommitted transaction fills the log). Live records are
// re-encoded into the new region starting at sequence zero. A hardware
// implementation chains regions via extra head/tail registers; migration
// preserves the same observable behaviour (no record is lost) at a cost
// charged through the returned writes. The caller supplies the image so
// live records can be read back.
func (l *Log) Grow(img *mem.Physical, newCfg Config) ([]Write, error) {
	if err := newCfg.Validate(); err != nil {
		return nil, err
	}
	if newCfg.Style != l.cfg.Style {
		return nil, errors.New("nvlog: grow cannot change style")
	}
	if newCfg.Capacity() <= l.Capacity() {
		return nil, errors.New("nvlog: grow must increase capacity")
	}
	if newCfg.MetaEvery == 0 {
		newCfg.MetaEvery = newCfg.Capacity() / 4
	}

	var writes []Write
	oldHead, oldTail := l.head, l.tail
	oldLog := *l // copy for slot math
	l.cfg = newCfg
	l.head, l.tail = 0, 0
	l.appendsSince = 0
	// The new region starts a fresh sequence space: every reuse watermark
	// must restart with it, or post-grow slot reuse would skip the
	// sync-before-reuse barrier.
	l.headDurable = 0
	l.truncReserved = 0
	for seq := oldHead; seq < oldTail; seq++ {
		raw := img.Read(oldLog.SlotAddr(seq), int(oldLog.cfg.Style.EntrySize()))
		e, _, ok := Decode(raw, oldLog.cfg.Style)
		if !ok {
			return nil, fmt.Errorf("nvlog: grow found corrupt record at seq %d", seq)
		}
		ws, err := l.PrepareAppend(e)
		if err != nil {
			return nil, err
		}
		// PrepareAppend's writes alias the log's scratch buffers and expire
		// at the next call; migration accumulates across calls, so deep-copy
		// (grow is a cold path — allocation is fine here).
		for _, w := range ws {
			writes = append(writes, Write{Addr: w.Addr, Bytes: append([]byte(nil), w.Bytes...)})
		}
	}
	l.grows++
	writes = append(writes, l.metaWrite())
	return writes, nil
}

// Stats reports log activity counters.
type Stats struct {
	Appends   uint64
	Truncates uint64
	Grows     uint64
	MetaSyncs uint64
}

// Stats returns a copy of the counters.
func (l *Log) Stats() Stats {
	return Stats{Appends: l.appends, Truncates: l.truncates, Grows: l.grows, MetaSyncs: l.metaSyncs}
}

// --- Recovery-side helpers (read the NVRAM image directly) ---

// Meta is the durable log metadata recovered after a crash.
type Meta struct {
	Head, Tail  uint64 // persisted pointers (tail may lag the true tail)
	Capacity    uint64
	Style       Style
	LineAligned bool
	// Forward is the base address of the region this log migrated to via
	// log_grow (0 = this region is active). Recovery follows it.
	Forward mem.Addr
}

// SlotSize returns the per-record slot size recorded in the metadata.
func (m Meta) SlotSize() uint64 {
	if m.LineAligned {
		return mem.LineSize
	}
	return m.Style.EntrySize()
}

// ReadMeta parses the metadata block at base from a (post-crash) image.
func ReadMeta(img *mem.Physical, base mem.Addr) (Meta, error) {
	buf := img.Read(base, MetaSize)
	if buf[0] != magic0 || buf[1] != magic1 {
		return Meta{}, errors.New("nvlog: bad metadata magic")
	}
	return Meta{
		Head:        uint64(getWord(buf[8:16])),
		Tail:        uint64(getWord(buf[16:24])),
		Capacity:    uint64(getWord(buf[24:32])),
		Style:       Style(buf[32]),
		LineAligned: buf[33] == 1,
		Forward:     mem.Addr(getWord(buf[40:48])),
	}, nil
}

// ForwardWrite builds the metadata update that redirects a region to its
// log_grow successor: recovery reading the old region's metadata follows
// Forward to the active region. The caller must make this write durable
// (drain to completion) before any append lands in the new region.
func ForwardWrite(img *mem.Physical, oldBase, newBase mem.Addr) Write {
	buf := img.Read(oldBase, MetaSize)
	putWord(buf[40:48], mem.Word(newBase))
	return Write{Addr: oldBase, Bytes: buf}
}

// Scan reads the live records from a post-crash image: starting at the
// durable head, it accepts records while they decode cleanly with the
// expected torn-bit parity — the paper's "completely-written log records
// all have the same torn bit value" rule — and stops at the first hole,
// even before the persisted tail. (Drain issue order is FIFO but
// completions may interleave across NVRAM banks, so a record write can be
// lost in a crash while a later one — including the tail metadata —
// survives.) Stopping at the hole is safe: the log-before-data interlock
// makes every data write-back and every durable-commit fence wait for the
// *completion* of all earlier record writes, so a store whose record fell
// into a hole can have neither stolen its way into NVRAM nor been part of
// a durably-acknowledged commit. It returns the records in append order
// along with the discovered true tail.
func Scan(img *mem.Physical, base mem.Addr, meta Meta) ([]Entry, uint64, error) {
	if meta.Capacity == 0 {
		return nil, 0, errors.New("nvlog: zero capacity in metadata")
	}
	entrySize := meta.Style.EntrySize()
	slotSize := meta.SlotSize()
	slotAddr := func(seq uint64) mem.Addr {
		return base + MetaSize + mem.Addr((seq%meta.Capacity)*slotSize)
	}
	expectPass := func(seq uint64) uint8 { return uint8(seq / meta.Capacity) }

	var out []Entry
	seq := meta.Head
	for seq < meta.Head+meta.Capacity {
		e, pass, ok := Decode(img.Read(slotAddr(seq), int(entrySize)), meta.Style)
		if !ok || pass != expectPass(seq) {
			break
		}
		out = append(out, e)
		seq++
	}
	return out, seq, nil
}
