// Package bench implements the paper's microbenchmarks (Table III): hash,
// rbtree, sps, btree, and ssca2. Each benchmark builds its data structure
// in simulated NVRAM through the persistent heap and runs insert/delete/
// swap transactions through the sim.Ctx interface, exactly as the paper's
// native x86 versions run under McSimA+.
//
// Each benchmark exists in an integer variant (one-word values, less than
// a cache line per element) and a string variant (multi-line values), as
// in the paper's experiments. Threads partition the key space so that
// transactions are isolated — the paper's workloads do the same through
// per-thread working sets — which keeps multithreaded runs deterministic
// and recovery semantics well-defined.
package bench

import (
	"fmt"
	"math/rand"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// ValueKind selects element payloads.
type ValueKind int

const (
	// IntValues stores one-word values (elements smaller than a line).
	IntValues ValueKind = iota
	// StrValues stores 72-byte string values (elements spanning lines).
	StrValues
)

func (v ValueKind) String() string {
	if v == IntValues {
		return "int"
	}
	return "str"
}

// ValueWords returns the payload size in words.
func (v ValueKind) ValueWords() int {
	if v == IntValues {
		return 1
	}
	return 9 // 72 bytes: spans at least two cache lines together with keys
}

// Config parameterizes a microbenchmark run.
type Config struct {
	Elements      int // structure size (scaled-down "memory footprint")
	TxnsPerThread int
	Threads       int
	Values        ValueKind
	Seed          int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Elements <= 0 || c.TxnsPerThread <= 0 || c.Threads <= 0 {
		return fmt.Errorf("bench: Elements, TxnsPerThread, Threads must be positive")
	}
	return nil
}

// Workload is one runnable microbenchmark.
type Workload interface {
	// Name returns the paper's benchmark name plus the value variant.
	Name() string
	// Setup allocates and populates the structure (untimed, like warming
	// a traced process before the region of interest).
	Setup(s *sim.System) error
	// Run executes one thread's share of transactions.
	Run(ctx sim.Ctx, thread int)
}

// Factory builds a workload from a config.
type Factory func(Config) Workload

// registry maps paper benchmark names to factories.
var registry = map[string]Factory{
	"hash":   func(c Config) Workload { return NewHash(c) },
	"rbtree": func(c Config) Workload { return NewRBTree(c) },
	"sps":    func(c Config) Workload { return NewSPS(c) },
	"btree":  func(c Config) Workload { return NewBTree(c) },
	"ssca2":  func(c Config) Workload { return NewSSCA2(c) },
}

// Names lists the microbenchmarks in the paper's order.
func Names() []string { return []string{"hash", "rbtree", "sps", "btree", "ssca2"} }

// New builds a named workload.
func New(name string, cfg Config) (Workload, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return f(cfg), nil
}

// threadRNG builds a per-thread deterministic generator.
func threadRNG(seed int64, thread int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(thread)*7919 + 17))
}

// storeValue writes a payload of cfg-value size; key-dependent pattern so
// verification can recompute expected contents.
func storeValue(ctx sim.Ctx, addr mem.Addr, words int, key uint64) {
	for i := 0; i < words; i++ {
		ctx.Store(addr+mem.Addr(i*mem.WordSize), mem.Word(key*0x9e3779b97f4a7c15+uint64(i)))
	}
}

// pokeValue writes the same payload during untimed setup, through the
// sanctioned population context.
func pokeValue(s *sim.System, addr mem.Addr, words int, key uint64) {
	storeValue(s.SetupCtx(), addr, words, key)
}
