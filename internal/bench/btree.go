package bench

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// BTree is the paper's B+tree microbenchmark [Table III / STX B+Tree]:
// "searches for a value in a B+ tree; insert if absent, remove if found."
// One tree per thread. Inner nodes hold keys and child pointers; leaves
// hold keys and values and are chained. Inserts split full nodes on the
// way down (proactive splitting); deletes remove from the leaf without
// rebalancing (lazy deletion, a common simplification that preserves
// search correctness — underfull leaves are merely tolerated).
//
// Node layout (words):
//
//	[0] meta: bit0 = leaf, bits 1.. = key count
//	[1..order]   keys
//	leaf:  [order+1 .. 2*order] value pointers, [2*order+1] next-leaf
//	inner: [order+1 .. 2*order+1] children
//
// Values are separate heap blocks so string variants pay multi-line costs.
const btOrder = 7 // max keys per node

type BTree struct {
	cfg   Config
	sys   *sim.System
	roots []mem.Addr // address of each tree's root pointer word
}

// NewBTree builds the workload.
func NewBTree(cfg Config) *BTree { return &BTree{cfg: cfg} }

// Name implements Workload.
func (b *BTree) Name() string { return "btree-" + b.cfg.Values.String() }

const btNodeWords = 2*btOrder + 2 // meta + keys + children/values+next

func btNodeBytes() uint64 { return uint64(btNodeWords * mem.WordSize) }

func (b *BTree) valueBytes() uint64 {
	return uint64(b.cfg.Values.ValueWords() * mem.WordSize)
}

// Setup implements Workload.
func (b *BTree) Setup(s *sim.System) error {
	b.sys = s
	b.roots = make([]mem.Addr, b.cfg.Threads)
	setup := s.SetupCtx()
	for t := 0; t < b.cfg.Threads; t++ {
		hdr, err := s.Heap().AllocLine(mem.WordSize)
		if err != nil {
			return fmt.Errorf("btree: %w", err)
		}
		leaf, err := s.Heap().Alloc(btNodeBytes())
		if err != nil {
			return fmt.Errorf("btree: %w", err)
		}
		b.roots[t] = hdr
		setup.Store(leaf, packMeta(true, 0))
		setup.Store(hdr, mem.Word(leaf))
	}
	per := uint64(b.cfg.Elements) / uint64(b.cfg.Threads)
	for t := 0; t < b.cfg.Threads; t++ {
		base := uint64(t) * per
		for k := base; k < base+per; k += 2 {
			b.op(setup, t).insert(k)
		}
	}
	return nil
}

func packMeta(leaf bool, n int) mem.Word {
	w := mem.Word(n) << 1
	if leaf {
		w |= 1
	}
	return w
}

func unpackMeta(w mem.Word) (leaf bool, n int) { return w&1 == 1, int(w >> 1) }

// bt binds a thread's tree to a context.
type bt struct {
	b       *BTree
	ctx     sim.Ctx
	rootPtr mem.Addr
}

func (b *BTree) op(ctx sim.Ctx, thread int) *bt {
	return &bt{b: b, ctx: ctx, rootPtr: b.roots[thread]}
}

func (t *bt) meta(n mem.Addr) (bool, int) { return unpackMeta(t.ctx.Load(n)) }
func (t *bt) setMeta(n mem.Addr, leaf bool, cnt int) {
	t.ctx.Store(n, packMeta(leaf, cnt))
}
func (t *bt) keyAt(n mem.Addr, i int) uint64 {
	return uint64(t.ctx.Load(n + mem.Addr((1+i)*mem.WordSize)))
}
func (t *bt) setKeyAt(n mem.Addr, i int, k uint64) {
	t.ctx.Store(n+mem.Addr((1+i)*mem.WordSize), mem.Word(k))
}
func (t *bt) ptrAt(n mem.Addr, i int) mem.Addr {
	return mem.Addr(t.ctx.Load(n + mem.Addr((1+btOrder+i)*mem.WordSize)))
}
func (t *bt) setPtrAt(n mem.Addr, i int, p mem.Addr) {
	t.ctx.Store(n+mem.Addr((1+btOrder+i)*mem.WordSize), mem.Word(p))
}
func (t *bt) root() mem.Addr     { return mem.Addr(t.ctx.Load(t.rootPtr)) }
func (t *bt) setRoot(p mem.Addr) { t.ctx.Store(t.rootPtr, mem.Word(p)) }

// findIdx returns the first index with key >= k (linear scan, charging
// compare instructions like the STX implementation's small nodes).
func (t *bt) findIdx(n mem.Addr, cnt int, k uint64) int {
	for i := 0; i < cnt; i++ {
		t.ctx.Compute(3)
		if t.keyAt(n, i) >= k {
			return i
		}
	}
	return cnt
}

// search returns the leaf that would hold k and k's index (or -1).
func (t *bt) search(k uint64) (leaf mem.Addr, idx int) {
	n := t.root()
	for {
		isLeaf, cnt := t.meta(n)
		i := t.findIdx(n, cnt, k)
		if isLeaf {
			if i < cnt && t.keyAt(n, i) == k {
				return n, i
			}
			return n, -1
		}
		// Inner: child i covers keys < key[i]; equal keys descend right.
		if i < cnt && t.keyAt(n, i) == k {
			i++
		}
		n = t.ptrAt(n, i)
	}
}

// splitChild splits parent's i-th child (which must be full).
func (t *bt) splitChild(parent mem.Addr, i int) {
	child := t.ptrAt(parent, i)
	childLeaf, childCnt := t.meta(child)
	right, err := t.b.sys.Heap().Alloc(btNodeBytes())
	if err != nil {
		panic(fmt.Sprintf("btree: %v", err))
	}
	mid := childCnt / 2
	var sep uint64
	if childLeaf {
		// Leaf split: right gets keys[mid:]; separator = right's first key.
		rn := childCnt - mid
		for j := 0; j < rn; j++ {
			t.setKeyAt(right, j, t.keyAt(child, mid+j))
			t.setPtrAt(right, j, t.ptrAt(child, mid+j))
		}
		// Chain: right.next = child.next; child.next = right.
		t.setPtrAt(right, btOrder, t.ptrAt(child, btOrder))
		t.setPtrAt(child, btOrder, right)
		t.setMeta(right, true, rn)
		t.setMeta(child, true, mid)
		sep = t.keyAt(right, 0)
	} else {
		// Inner split: key[mid] moves up.
		rn := childCnt - mid - 1
		for j := 0; j < rn; j++ {
			t.setKeyAt(right, j, t.keyAt(child, mid+1+j))
		}
		for j := 0; j <= rn; j++ {
			t.setPtrAt(right, j, t.ptrAt(child, mid+1+j))
		}
		t.setMeta(right, false, rn)
		sep = t.keyAt(child, mid)
		t.setMeta(child, false, mid)
	}
	// Shift parent entries right of i and install separator.
	_, pCnt := t.meta(parent)
	for j := pCnt; j > i; j-- {
		t.setKeyAt(parent, j, t.keyAt(parent, j-1))
	}
	for j := pCnt + 1; j > i+1; j-- {
		t.setPtrAt(parent, j, t.ptrAt(parent, j-1))
	}
	t.setKeyAt(parent, i, sep)
	t.setPtrAt(parent, i+1, right)
	t.setMeta(parent, false, pCnt+1)
}

// insert adds key k (must be absent).
func (t *bt) insert(k uint64) {
	// Grow the root if full.
	root := t.root()
	if _, cnt := t.meta(root); cnt == btOrder {
		newRoot, err := t.b.sys.Heap().Alloc(btNodeBytes())
		if err != nil {
			panic(fmt.Sprintf("btree: %v", err))
		}
		t.setMeta(newRoot, false, 0)
		t.setPtrAt(newRoot, 0, root)
		t.setRoot(newRoot)
		t.splitChild(newRoot, 0)
		root = newRoot
	}
	// Descend, splitting full children proactively.
	n := root
	for {
		isLeaf, cnt := t.meta(n)
		if isLeaf {
			i := t.findIdx(n, cnt, k)
			for j := cnt; j > i; j-- {
				t.setKeyAt(n, j, t.keyAt(n, j-1))
				t.setPtrAt(n, j, t.ptrAt(n, j-1))
			}
			val, err := t.b.sys.Heap().Alloc(t.b.valueBytes())
			if err != nil {
				panic(fmt.Sprintf("btree: %v", err))
			}
			storeValue(t.ctx, val, t.b.cfg.Values.ValueWords(), k)
			t.setKeyAt(n, i, k)
			t.setPtrAt(n, i, val)
			t.setMeta(n, true, cnt+1)
			return
		}
		i := t.findIdx(n, cnt, k)
		if i < cnt && t.keyAt(n, i) == k {
			i++
		}
		child := t.ptrAt(n, i)
		if _, ccnt := t.meta(child); ccnt == btOrder {
			t.splitChild(n, i)
			// Re-evaluate which side to descend.
			if k >= t.keyAt(n, i) {
				i++
			}
			child = t.ptrAt(n, i)
		}
		n = child
	}
}

// remove deletes key k from its leaf (lazy: no rebalancing).
func (t *bt) remove(k uint64) bool {
	leaf, idx := t.search(k)
	if idx < 0 {
		return false
	}
	_, cnt := t.meta(leaf)
	val := t.ptrAt(leaf, idx)
	for j := idx; j < cnt-1; j++ {
		t.setKeyAt(leaf, j, t.keyAt(leaf, j+1))
		t.setPtrAt(leaf, j, t.ptrAt(leaf, j+1))
	}
	t.setMeta(leaf, true, cnt-1)
	t.b.sys.Heap().Free(val, t.b.valueBytes())
	return true
}

// InsertOrRemove is one benchmark transaction.
func (b *BTree) InsertOrRemove(ctx sim.Ctx, thread int, key uint64) bool {
	ctx.TxBegin()
	defer ctx.TxCommit()
	t := b.op(ctx, thread)
	if t.remove(key) {
		return false
	}
	t.insert(key)
	return true
}

// Contains reports membership (verification helper).
func (b *BTree) Contains(ctx sim.Ctx, thread int, key uint64) bool {
	_, idx := b.op(ctx, thread).search(key)
	return idx >= 0
}

// CheckInvariants walks thread's tree validating key order and leaf
// chaining; returns the number of stored keys.
func (b *BTree) CheckInvariants(ctx sim.Ctx, thread int) (int, error) {
	t := b.op(ctx, thread)
	// Walk down the leftmost spine, then follow the leaf chain.
	n := t.root()
	depth := 0
	for {
		isLeaf, _ := t.meta(n)
		if isLeaf {
			break
		}
		n = t.ptrAt(n, 0)
		depth++
		if depth > 64 {
			return 0, fmt.Errorf("btree: spine too deep (cycle?)")
		}
	}
	count := 0
	last := uint64(0)
	first := true
	for n != 0 {
		isLeaf, cnt := t.meta(n)
		if !isLeaf {
			return 0, fmt.Errorf("btree: inner node on leaf chain")
		}
		for i := 0; i < cnt; i++ {
			k := t.keyAt(n, i)
			if !first && k <= last {
				return 0, fmt.Errorf("btree: key order violation: %d after %d", k, last)
			}
			last, first = k, false
			count++
		}
		n = t.ptrAt(n, btOrder)
	}
	return count, nil
}

// Run implements Workload.
func (b *BTree) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(b.cfg.Seed, thread)
	per := uint64(b.cfg.Elements) / uint64(b.cfg.Threads)
	base := uint64(thread) * per
	for i := 0; i < b.cfg.TxnsPerThread; i++ {
		key := base + uint64(rng.Int63())%per
		b.InsertOrRemove(ctx, thread, key)
		ctx.Compute(20)
	}
}
