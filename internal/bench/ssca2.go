package bench

import (
	"fmt"
	"math/rand"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// SSCA2 is the paper's graph microbenchmark [Table III / Bader & Madduri]:
// "a transactional implementation of SSCA 2.2, performing several analyses
// of [a] large, scale-free graph." We model the benchmark's dominant
// transactional kernels: scale-free edge insertion (kernel 1 construction)
// and per-vertex neighborhood analysis that updates vertex metadata.
//
// NVRAM layout per vertex (line aligned):
//
//	[0] degree
//	[1] metric (analysis result accumulator)
//	[2 + 2i], [3 + 2i] neighbor i, weight i   (capacity edgeCap)
const ssEdgeCap = 14 // adjacency capacity per vertex

type SSCA2 struct {
	cfg      Config
	sys      *sim.System
	vertices mem.Addr
	nVerts   int
}

// NewSSCA2 builds the workload. Elements is the vertex count.
func NewSSCA2(cfg Config) *SSCA2 { return &SSCA2{cfg: cfg, nVerts: cfg.Elements} }

// Name implements Workload.
func (g *SSCA2) Name() string { return "ssca2-" + g.cfg.Values.String() }

func ssVertexWords() int { return 2 + 2*ssEdgeCap }

func (g *SSCA2) vertex(v int) mem.Addr {
	stride := (ssVertexWords()*mem.WordSize + mem.LineSize - 1) &^ (mem.LineSize - 1)
	return g.vertices + mem.Addr(v*stride)
}

// Setup implements Workload: allocates the vertex table and seeds a sparse
// scale-free graph (untimed).
func (g *SSCA2) Setup(s *sim.System) error {
	g.sys = s
	stride := (ssVertexWords()*mem.WordSize + mem.LineSize - 1) &^ (mem.LineSize - 1)
	base, err := s.Heap().AllocLine(uint64(g.nVerts * stride))
	if err != nil {
		return fmt.Errorf("ssca2: %w", err)
	}
	g.vertices = base
	setup := s.SetupCtx()
	for v := 0; v < g.nVerts; v++ {
		setup.Store(g.vertex(v), 0)              // degree
		setup.Store(g.vertex(v)+mem.WordSize, 0) // metric
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed + 99))
	per := g.nVerts / g.cfg.Threads
	for v := 0; v < g.nVerts; v++ {
		deg := rng.Intn(ssEdgeCap / 2)
		tBase := (v / per) * per // keep edges within the owner's partition
		for e := 0; e < deg; e++ {
			g.InsertEdge(setup, v, tBase+rng.Intn(per), uint64(rng.Intn(100)))
		}
	}
	return nil
}

func (g *SSCA2) slotAddr(v, slot int) mem.Addr {
	return g.vertex(v) + mem.Addr((2+2*slot)*mem.WordSize)
}

// InsertEdge is the edge-insertion transaction: append (v->to, weight) to
// v's adjacency (overwriting a pseudo-random slot when full) and bump the
// degree and metric.
func (g *SSCA2) InsertEdge(ctx sim.Ctx, v, to int, weight uint64) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	va := g.vertex(v)
	deg := int(ctx.Load(va))
	// RMAT coordinate generation, permutation and weight math dominate
	// SSCA2's kernel-1 instruction mix (the paper: "the overhead of
	// manipulating the data structures outweigh[s] that of the log").
	ctx.Compute(45)
	slot := deg
	if deg >= ssEdgeCap {
		slot = (v*31 + to) % ssEdgeCap // replace, keeping the graph bounded
	} else {
		ctx.Store(va, mem.Word(deg+1))
	}
	ctx.Store(g.slotAddr(v, slot), mem.Word(to))
	ctx.Store(g.slotAddr(v, slot)+mem.WordSize, mem.Word(weight))
	m := ctx.Load(va + mem.WordSize)
	ctx.Store(va+mem.WordSize, m+mem.Word(weight))
}

// Analyze is the neighborhood-analysis transaction: walk v's adjacency,
// sum weights (compute-heavy), store the result into the metric word.
func (g *SSCA2) Analyze(ctx sim.Ctx, v int) mem.Word {
	ctx.TxBegin()
	defer ctx.TxCommit()
	va := g.vertex(v)
	deg := int(ctx.Load(va))
	if deg > ssEdgeCap {
		deg = ssEdgeCap
	}
	var sum mem.Word
	for e := 0; e < deg; e++ {
		w := ctx.Load(g.slotAddr(v, e) + mem.WordSize)
		ctx.Compute(25) // per-neighbor centrality bookkeeping
		sum += w
	}
	ctx.Store(va+mem.WordSize, sum)
	return sum
}

// Degree reads v's degree (verification helper).
func (g *SSCA2) Degree(ctx sim.Ctx, v int) int { return int(ctx.Load(g.vertex(v))) }

// Metric reads v's metric word (verification helper).
func (g *SSCA2) Metric(ctx sim.Ctx, v int) mem.Word {
	return ctx.Load(g.vertex(v) + mem.WordSize)
}

// Run implements Workload: a scale-free mix of insertions (skewed source
// selection, RMAT-like) and analyses over the thread's vertex partition.
func (g *SSCA2) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(g.cfg.Seed, thread)
	per := g.nVerts / g.cfg.Threads
	base := thread * per
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(per-1))
	for i := 0; i < g.cfg.TxnsPerThread; i++ {
		if i%4 == 3 {
			g.Analyze(ctx, base+int(zipf.Uint64()))
		} else {
			u := base + int(zipf.Uint64())
			v := base + rng.Intn(per)
			g.InsertEdge(ctx, u, v, uint64(rng.Intn(100)))
		}
		ctx.Compute(40)
	}
}
