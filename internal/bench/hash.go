package bench

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// Hash is the paper's hash microbenchmark [Table III / NV-heaps]:
// "searches for a value in an open-chain hash table; insert if absent,
// remove if found." Buckets hold singly linked chains of nodes.
//
// NVRAM layout:
//
//	buckets: nBuckets words, each the address of the first node (0 = empty)
//	node:    [key, next, value[0..valueWords)]
type Hash struct {
	cfg      Config
	sys      *sim.System
	buckets  mem.Addr
	nBuckets int
}

// NewHash builds the workload (allocation happens in Setup).
func NewHash(cfg Config) *Hash {
	n := cfg.Elements / 4
	if n < 16 {
		n = 16
	}
	return &Hash{cfg: cfg, nBuckets: n}
}

// Name implements Workload.
func (h *Hash) Name() string { return "hash-" + h.cfg.Values.String() }

const (
	hnodeKey  = 0
	hnodeNext = 1
	hnodeVal  = 2
)

func (h *Hash) nodeBytes() uint64 {
	return uint64((2 + h.cfg.Values.ValueWords()) * mem.WordSize)
}

// bucketOf range-partitions keys over buckets (rather than key%nBuckets)
// so each thread's contiguous key block maps to a disjoint bucket range —
// chains are never shared across threads.
func (h *Hash) bucketOf(key uint64) mem.Addr {
	idx := key * uint64(h.nBuckets) / uint64(h.cfg.Elements)
	if idx >= uint64(h.nBuckets) {
		idx = uint64(h.nBuckets) - 1
	}
	return h.buckets + mem.Addr(idx*mem.WordSize)
}

// Setup implements Workload: allocates buckets and pre-populates half the
// key space so lookups hit a realistic mix.
func (h *Hash) Setup(s *sim.System) error {
	h.sys = s
	b, err := s.Heap().AllocLine(uint64(h.nBuckets * mem.WordSize))
	if err != nil {
		return fmt.Errorf("hash: %w", err)
	}
	h.buckets = b
	setup := s.SetupCtx()
	for i := 0; i < h.nBuckets; i++ {
		setup.Store(b+mem.Addr(i*mem.WordSize), 0)
	}
	// Populate every other key (untimed).
	for key := uint64(0); key < uint64(h.cfg.Elements); key += 2 {
		node, err := s.Heap().Alloc(h.nodeBytes())
		if err != nil {
			return fmt.Errorf("hash populate: %w", err)
		}
		bkt := h.bucketOf(key)
		head := s.Peek(bkt)
		setup.Store(node+hnodeKey*mem.WordSize, mem.Word(key))
		setup.Store(node+hnodeNext*mem.WordSize, head)
		pokeValue(s, node+hnodeVal*mem.WordSize, h.cfg.Values.ValueWords(), key)
		setup.Store(bkt, mem.Word(node))
	}
	return nil
}

// Lookup walks the chain for key, returning the node address and its
// predecessor's next-field address (the bucket slot for the head).
func (h *Hash) Lookup(ctx sim.Ctx, key uint64) (node, prevLink mem.Addr) {
	prevLink = h.bucketOf(key)
	cur := mem.Addr(ctx.Load(prevLink))
	for cur != 0 {
		k := ctx.Load(cur + hnodeKey*mem.WordSize)
		ctx.Compute(4) // compare + branch
		if uint64(k) == key {
			return cur, prevLink
		}
		prevLink = cur + hnodeNext*mem.WordSize
		cur = mem.Addr(ctx.Load(prevLink))
	}
	return 0, prevLink
}

// InsertOrRemove is one benchmark transaction: search; insert if absent,
// remove if found. Returns true if it inserted.
func (h *Hash) InsertOrRemove(ctx sim.Ctx, key uint64) bool {
	ctx.TxBegin()
	defer ctx.TxCommit()
	node, prevLink := h.Lookup(ctx, key)
	if node != 0 {
		next := ctx.Load(node + hnodeNext*mem.WordSize)
		ctx.Store(prevLink, next)
		h.sys.Heap().Free(node, h.nodeBytes())
		return false
	}
	n, err := h.sys.Heap().Alloc(h.nodeBytes())
	if err != nil {
		panic(fmt.Sprintf("hash: %v", err))
	}
	bkt := h.bucketOf(key)
	head := ctx.Load(bkt)
	ctx.Store(n+hnodeKey*mem.WordSize, mem.Word(key))
	ctx.Store(n+hnodeNext*mem.WordSize, head)
	storeValue(ctx, n+hnodeVal*mem.WordSize, h.cfg.Values.ValueWords(), key)
	ctx.Store(bkt, mem.Word(n))
	return true
}

// Contains reports membership (verification helper; uses timed loads).
func (h *Hash) Contains(ctx sim.Ctx, key uint64) bool {
	node, _ := h.Lookup(ctx, key)
	return node != 0
}

// Run implements Workload. Threads own disjoint key ranges so chains are
// never shared (bucketOf(key) differs per range because keys are striped
// by thread).
func (h *Hash) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(h.cfg.Seed, thread)
	n := uint64(h.cfg.Elements)
	t := uint64(h.cfg.Threads)
	for i := 0; i < h.cfg.TxnsPerThread; i++ {
		key := (uint64(rng.Int63()) % (n / t)) + uint64(thread)*(n/t)
		h.InsertOrRemove(ctx, key)
		ctx.Compute(20) // inter-transaction application work
	}
}
