package bench

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// SPS is the paper's array-swap microbenchmark [Table III / Kiln]:
// "random swaps between entries in a vector of values." Each transaction
// loads two entries and stores them back exchanged.
//
// NVRAM layout: a flat vector of Elements entries, each valueWords words.
type SPS struct {
	cfg Config
	sys *sim.System
	vec mem.Addr
	wpe int // words per entry
}

// NewSPS builds the workload.
func NewSPS(cfg Config) *SPS {
	return &SPS{cfg: cfg, wpe: cfg.Values.ValueWords()}
}

// Name implements Workload.
func (s *SPS) Name() string { return "sps-" + s.cfg.Values.String() }

// Setup implements Workload.
func (s *SPS) Setup(sys *sim.System) error {
	s.sys = sys
	v, err := sys.Heap().AllocLine(uint64(s.cfg.Elements * s.wpe * mem.WordSize))
	if err != nil {
		return fmt.Errorf("sps: %w", err)
	}
	s.vec = v
	for i := 0; i < s.cfg.Elements; i++ {
		pokeValue(sys, s.entry(i), s.wpe, uint64(i))
	}
	return nil
}

func (s *SPS) entry(i int) mem.Addr {
	return s.vec + mem.Addr(i*s.wpe*mem.WordSize)
}

// Swap is one benchmark transaction: exchange entries i and j.
func (s *SPS) Swap(ctx sim.Ctx, i, j int) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	a, b := s.entry(i), s.entry(j)
	for w := 0; w < s.wpe; w++ {
		off := mem.Addr(w * mem.WordSize)
		va := ctx.Load(a + off)
		vb := ctx.Load(b + off)
		ctx.Store(a+off, vb)
		ctx.Store(b+off, va)
	}
}

// Entry reads entry i's first word (verification helper).
func (s *SPS) Entry(ctx sim.Ctx, i int) mem.Word { return ctx.Load(s.entry(i)) }

// Run implements Workload: threads swap within disjoint vector segments.
func (s *SPS) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(s.cfg.Seed, thread)
	seg := s.cfg.Elements / s.cfg.Threads
	base := thread * seg
	for t := 0; t < s.cfg.TxnsPerThread; t++ {
		i := base + rng.Intn(seg)
		j := base + rng.Intn(seg)
		if i == j {
			j = base + (i-base+1)%seg
		}
		s.Swap(ctx, i, j)
		ctx.Compute(8)
	}
}
