package bench

import (
	"testing"

	"pmemlog/internal/sim"
	"pmemlog/internal/txn"
)

// TestModesAreFunctionallyEquivalent is the cross-design differential
// check: the nine designs differ ONLY in how they make updates durable,
// so running the same seeded workload under each must leave byte-identical
// visible state in every data structure. A divergence would mean a logging
// path corrupted data (e.g. an undo capture racing the store).
func TestModesAreFunctionallyEquivalent(t *testing.T) {
	type snapshot map[uint64]bool

	finalState := func(mode txn.Mode) snapshot {
		s := testSystem(t, mode, 2)
		cfg := testCfg(2)
		cfg.TxnsPerThread = 120
		h := NewHash(cfg)
		if err := h.Setup(s); err != nil {
			t.Fatal(err)
		}
		if err := s.RunN(h.Run); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		snap := snapshot{}
		err := s.RunN(func(ctx sim.Ctx, id int) {
			if id != 0 {
				return
			}
			for k := uint64(0); k < uint64(cfg.Elements); k++ {
				snap[k] = h.Contains(ctx, k)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}

	ref := finalState(txn.NonPers)
	for _, mode := range txn.AllModes()[1:] {
		got := finalState(mode)
		for k, want := range ref {
			if got[k] != want {
				t.Fatalf("%s diverges from non-pers at key %d (%v vs %v)",
					mode, k, got[k], want)
			}
		}
	}
}

// Same property for the rbtree, whose rebalancing makes the read-write
// interleavings (and hence the logging paths exercised) far richer.
func TestRBTreeModesEquivalent(t *testing.T) {
	finalCount := func(mode txn.Mode) (int, []bool) {
		s := testSystem(t, mode, 1)
		cfg := testCfg(1)
		cfg.TxnsPerThread = 150
		r := NewRBTree(cfg)
		if err := r.Setup(s); err != nil {
			t.Fatal(err)
		}
		if err := s.RunN(r.Run); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var count int
		member := make([]bool, cfg.Elements)
		err := s.RunN(func(ctx sim.Ctx, id int) {
			var err error
			count, err = r.CheckInvariants(ctx, 0)
			if err != nil {
				panic(err.Error())
			}
			for k := range member {
				member[k] = r.Contains(ctx, 0, uint64(k))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return count, member
	}

	refCount, refMember := finalCount(txn.NonPers)
	for _, mode := range []txn.Mode{txn.SWUndoClwb, txn.SWRedoClwb, txn.HWL, txn.FWB} {
		count, member := finalCount(mode)
		if count != refCount {
			t.Fatalf("%s: node count %d, non-pers %d", mode, count, refCount)
		}
		for k := range refMember {
			if member[k] != refMember[k] {
				t.Fatalf("%s diverges at key %d", mode, k)
			}
		}
	}
}
