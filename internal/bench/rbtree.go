package bench

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// RBTree is the paper's red-black tree microbenchmark [Table III / Kiln]:
// "searches for a value in a red-black tree; insert if absent, remove if
// found." The tree is a textbook (CLRS) red-black tree with parent
// pointers, laid out in NVRAM, with one tree per thread (threads own
// disjoint key ranges).
//
// NVRAM layout:
//
//	per-tree header (line aligned): [rootPtr]
//	node: [key, left, right, parent, color, value[0..valueWords)]
//
// Each tree uses a real sentinel node as NIL (CLRS T.nil), allocated at
// setup; the sentinel is black and its fields are scratch space during
// delete fixup.
type RBTree struct {
	cfg   Config
	sys   *sim.System
	roots []mem.Addr // address of each tree's root pointer word
	nils  []mem.Addr // each tree's sentinel node
}

// NewRBTree builds the workload.
func NewRBTree(cfg Config) *RBTree { return &RBTree{cfg: cfg} }

// Name implements Workload.
func (r *RBTree) Name() string { return "rbtree-" + r.cfg.Values.String() }

const (
	rbKey = iota
	rbLeft
	rbRight
	rbParent
	rbColor // 1 = red, 0 = black
	rbVal
)

const (
	rbBlack = 0
	rbRed   = 1
)

func (r *RBTree) nodeBytes() uint64 {
	return uint64((rbVal + r.cfg.Values.ValueWords()) * mem.WordSize)
}

// Setup implements Workload: allocates per-thread trees and populates
// every other key through the same insert code the benchmark runs.
func (r *RBTree) Setup(s *sim.System) error {
	r.sys = s
	r.roots = make([]mem.Addr, r.cfg.Threads)
	r.nils = make([]mem.Addr, r.cfg.Threads)
	setup := s.SetupCtx()
	for t := 0; t < r.cfg.Threads; t++ {
		hdr, err := s.Heap().AllocLine(mem.WordSize)
		if err != nil {
			return fmt.Errorf("rbtree: %w", err)
		}
		nilNode, err := s.Heap().Alloc(r.nodeBytes())
		if err != nil {
			return fmt.Errorf("rbtree: %w", err)
		}
		r.roots[t] = hdr
		r.nils[t] = nilNode
		setup.Store(nilNode+rbColor*mem.WordSize, rbBlack)
		setup.Store(hdr, mem.Word(nilNode)) // empty tree: root = NIL
	}
	n := uint64(r.cfg.Elements)
	per := n / uint64(r.cfg.Threads)
	for t := 0; t < r.cfg.Threads; t++ {
		base := uint64(t) * per
		for k := base; k < base+per; k += 2 {
			r.tree(setup, t).insert(k)
		}
	}
	return nil
}

// tree binds a thread's tree to a context.
func (r *RBTree) tree(ctx sim.Ctx, thread int) *rbt {
	return &rbt{r: r, ctx: ctx, rootPtr: r.roots[thread], nil_: r.nils[thread]}
}

// rbt is one tree bound to one execution context.
type rbt struct {
	r       *RBTree
	ctx     sim.Ctx
	rootPtr mem.Addr
	nil_    mem.Addr
}

func fieldAddr(n mem.Addr, f int) mem.Addr { return n + mem.Addr(f*mem.WordSize) }

func (t *rbt) get(n mem.Addr, f int) mem.Addr {
	return mem.Addr(t.ctx.Load(fieldAddr(n, f)))
}
func (t *rbt) set(n mem.Addr, f int, v mem.Addr) {
	t.ctx.Store(fieldAddr(n, f), mem.Word(v))
}
func (t *rbt) key(n mem.Addr) uint64 { return uint64(t.ctx.Load(fieldAddr(n, rbKey))) }
func (t *rbt) color(n mem.Addr) mem.Word {
	return t.ctx.Load(fieldAddr(n, rbColor))
}
func (t *rbt) setColor(n mem.Addr, c mem.Word) {
	t.ctx.Store(fieldAddr(n, rbColor), c)
}
func (t *rbt) root() mem.Addr     { return mem.Addr(t.ctx.Load(t.rootPtr)) }
func (t *rbt) setRoot(n mem.Addr) { t.ctx.Store(t.rootPtr, mem.Word(n)) }

// search returns the node with key k, or NIL.
func (t *rbt) search(k uint64) mem.Addr {
	x := t.root()
	for x != t.nil_ {
		xk := t.key(x)
		t.ctx.Compute(4)
		switch {
		case k == xk:
			return x
		case k < xk:
			x = t.get(x, rbLeft)
		default:
			x = t.get(x, rbRight)
		}
	}
	return t.nil_
}

func (t *rbt) rotateLeft(x mem.Addr) {
	y := t.get(x, rbRight)
	yl := t.get(y, rbLeft)
	t.set(x, rbRight, yl)
	if yl != t.nil_ {
		t.set(yl, rbParent, x)
	}
	xp := t.get(x, rbParent)
	t.set(y, rbParent, xp)
	if xp == t.nil_ {
		t.setRoot(y)
	} else if x == t.get(xp, rbLeft) {
		t.set(xp, rbLeft, y)
	} else {
		t.set(xp, rbRight, y)
	}
	t.set(y, rbLeft, x)
	t.set(x, rbParent, y)
}

func (t *rbt) rotateRight(x mem.Addr) {
	y := t.get(x, rbLeft)
	yr := t.get(y, rbRight)
	t.set(x, rbLeft, yr)
	if yr != t.nil_ {
		t.set(yr, rbParent, x)
	}
	xp := t.get(x, rbParent)
	t.set(y, rbParent, xp)
	if xp == t.nil_ {
		t.setRoot(y)
	} else if x == t.get(xp, rbRight) {
		t.set(xp, rbRight, y)
	} else {
		t.set(xp, rbLeft, y)
	}
	t.set(y, rbRight, x)
	t.set(x, rbParent, y)
}

// insert adds key k (must be absent) and rebalances.
func (t *rbt) insert(k uint64) {
	z, err := t.r.sys.Heap().Alloc(t.r.nodeBytes())
	if err != nil {
		panic(fmt.Sprintf("rbtree: %v", err))
	}
	y := t.nil_
	x := t.root()
	for x != t.nil_ {
		y = x
		t.ctx.Compute(4)
		if k < t.key(x) {
			x = t.get(x, rbLeft)
		} else {
			x = t.get(x, rbRight)
		}
	}
	t.ctx.Store(fieldAddr(z, rbKey), mem.Word(k))
	t.set(z, rbParent, y)
	if y == t.nil_ {
		t.setRoot(z)
	} else if k < t.key(y) {
		t.set(y, rbLeft, z)
	} else {
		t.set(y, rbRight, z)
	}
	t.set(z, rbLeft, t.nil_)
	t.set(z, rbRight, t.nil_)
	t.setColor(z, rbRed)
	storeValue(t.ctx, fieldAddr(z, rbVal), t.r.cfg.Values.ValueWords(), k)
	t.insertFixup(z)
}

func (t *rbt) insertFixup(z mem.Addr) {
	for {
		zp := t.get(z, rbParent)
		if zp == t.nil_ || t.color(zp) == rbBlack {
			break
		}
		zpp := t.get(zp, rbParent)
		if zp == t.get(zpp, rbLeft) {
			y := t.get(zpp, rbRight)
			if y != t.nil_ && t.color(y) == rbRed {
				t.setColor(zp, rbBlack)
				t.setColor(y, rbBlack)
				t.setColor(zpp, rbRed)
				z = zpp
			} else {
				if z == t.get(zp, rbRight) {
					z = zp
					t.rotateLeft(z)
					zp = t.get(z, rbParent)
					zpp = t.get(zp, rbParent)
				}
				t.setColor(zp, rbBlack)
				t.setColor(zpp, rbRed)
				t.rotateRight(zpp)
			}
		} else {
			y := t.get(zpp, rbLeft)
			if y != t.nil_ && t.color(y) == rbRed {
				t.setColor(zp, rbBlack)
				t.setColor(y, rbBlack)
				t.setColor(zpp, rbRed)
				z = zpp
			} else {
				if z == t.get(zp, rbLeft) {
					z = zp
					t.rotateRight(z)
					zp = t.get(z, rbParent)
					zpp = t.get(zp, rbParent)
				}
				t.setColor(zp, rbBlack)
				t.setColor(zpp, rbRed)
				t.rotateLeft(zpp)
			}
		}
	}
	t.setColor(t.root(), rbBlack)
}

// transplant replaces subtree u with subtree v.
func (t *rbt) transplant(u, v mem.Addr) {
	up := t.get(u, rbParent)
	if up == t.nil_ {
		t.setRoot(v)
	} else if u == t.get(up, rbLeft) {
		t.set(up, rbLeft, v)
	} else {
		t.set(up, rbRight, v)
	}
	t.set(v, rbParent, up)
}

func (t *rbt) minimum(x mem.Addr) mem.Addr {
	for {
		l := t.get(x, rbLeft)
		if l == t.nil_ {
			return x
		}
		x = l
	}
}

// delete removes node z and rebalances (CLRS RB-DELETE with sentinel).
func (t *rbt) delete(z mem.Addr) {
	y := z
	yOrigColor := t.color(y)
	var x mem.Addr
	if t.get(z, rbLeft) == t.nil_ {
		x = t.get(z, rbRight)
		t.transplant(z, x)
	} else if t.get(z, rbRight) == t.nil_ {
		x = t.get(z, rbLeft)
		t.transplant(z, x)
	} else {
		y = t.minimum(t.get(z, rbRight))
		yOrigColor = t.color(y)
		x = t.get(y, rbRight)
		if t.get(y, rbParent) == z {
			t.set(x, rbParent, y)
		} else {
			t.transplant(y, x)
			zr := t.get(z, rbRight)
			t.set(y, rbRight, zr)
			t.set(zr, rbParent, y)
		}
		t.transplant(z, y)
		zl := t.get(z, rbLeft)
		t.set(y, rbLeft, zl)
		t.set(zl, rbParent, y)
		t.setColor(y, t.color(z))
	}
	if yOrigColor == rbBlack {
		t.deleteFixup(x)
	}
	t.r.sys.Heap().Free(z, t.r.nodeBytes())
}

func (t *rbt) deleteFixup(x mem.Addr) {
	for x != t.root() && t.color(x) == rbBlack {
		xp := t.get(x, rbParent)
		if x == t.get(xp, rbLeft) {
			w := t.get(xp, rbRight)
			if t.color(w) == rbRed {
				t.setColor(w, rbBlack)
				t.setColor(xp, rbRed)
				t.rotateLeft(xp)
				xp = t.get(x, rbParent)
				w = t.get(xp, rbRight)
			}
			if t.color(t.get(w, rbLeft)) == rbBlack && t.color(t.get(w, rbRight)) == rbBlack {
				t.setColor(w, rbRed)
				x = xp
			} else {
				if t.color(t.get(w, rbRight)) == rbBlack {
					t.setColor(t.get(w, rbLeft), rbBlack)
					t.setColor(w, rbRed)
					t.rotateRight(w)
					xp = t.get(x, rbParent)
					w = t.get(xp, rbRight)
				}
				t.setColor(w, t.color(xp))
				t.setColor(xp, rbBlack)
				t.setColor(t.get(w, rbRight), rbBlack)
				t.rotateLeft(xp)
				x = t.root()
			}
		} else {
			w := t.get(xp, rbLeft)
			if t.color(w) == rbRed {
				t.setColor(w, rbBlack)
				t.setColor(xp, rbRed)
				t.rotateRight(xp)
				xp = t.get(x, rbParent)
				w = t.get(xp, rbLeft)
			}
			if t.color(t.get(w, rbRight)) == rbBlack && t.color(t.get(w, rbLeft)) == rbBlack {
				t.setColor(w, rbRed)
				x = xp
			} else {
				if t.color(t.get(w, rbLeft)) == rbBlack {
					t.setColor(t.get(w, rbRight), rbBlack)
					t.setColor(w, rbRed)
					t.rotateLeft(w)
					xp = t.get(x, rbParent)
					w = t.get(xp, rbLeft)
				}
				t.setColor(w, t.color(xp))
				t.setColor(xp, rbBlack)
				t.setColor(t.get(w, rbLeft), rbBlack)
				t.rotateRight(xp)
				x = t.root()
			}
		}
	}
	t.setColor(x, rbBlack)
}

// InsertOrRemove is one benchmark transaction on thread's tree.
func (r *RBTree) InsertOrRemove(ctx sim.Ctx, thread int, key uint64) bool {
	ctx.TxBegin()
	defer ctx.TxCommit()
	t := r.tree(ctx, thread)
	if z := t.search(key); z != t.nil_ {
		t.delete(z)
		return false
	}
	t.insert(key)
	return true
}

// Contains reports membership (verification helper).
func (r *RBTree) Contains(ctx sim.Ctx, thread int, key uint64) bool {
	t := r.tree(ctx, thread)
	return t.search(key) != t.nil_
}

// CheckInvariants validates the red-black properties of thread's tree,
// returning node count or an error (test helper; untimed access advised).
func (r *RBTree) CheckInvariants(ctx sim.Ctx, thread int) (int, error) {
	t := r.tree(ctx, thread)
	root := t.root()
	if root != t.nil_ && t.color(root) != rbBlack {
		return 0, fmt.Errorf("rbtree: root is red")
	}
	count := 0
	var walk func(n mem.Addr, min, max uint64) (int, error)
	walk = func(n mem.Addr, min, max uint64) (int, error) {
		if n == t.nil_ {
			return 1, nil
		}
		count++
		k := t.key(n)
		if k < min || k > max {
			return 0, fmt.Errorf("rbtree: BST violation at key %d", k)
		}
		c := t.color(n)
		if c == rbRed {
			if t.color(t.get(n, rbLeft)) == rbRed || t.color(t.get(n, rbRight)) == rbRed {
				return 0, fmt.Errorf("rbtree: red-red violation at key %d", k)
			}
		}
		var lmax, rmin uint64
		if k > 0 {
			lmax = k - 1
		}
		rmin = k + 1
		lh, err := walk(t.get(n, rbLeft), min, lmax)
		if err != nil {
			return 0, err
		}
		rh, err := walk(t.get(n, rbRight), rmin, max)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("rbtree: black-height mismatch at key %d (%d vs %d)", k, lh, rh)
		}
		if c == rbBlack {
			lh++
		}
		return lh, nil
	}
	_, err := walk(root, 0, ^uint64(0))
	return count, err
}

// Run implements Workload.
func (r *RBTree) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(r.cfg.Seed, thread)
	per := uint64(r.cfg.Elements) / uint64(r.cfg.Threads)
	base := uint64(thread) * per
	for i := 0; i < r.cfg.TxnsPerThread; i++ {
		key := base + uint64(rng.Int63())%per
		r.InsertOrRemove(ctx, thread, key)
		ctx.Compute(20)
	}
}
