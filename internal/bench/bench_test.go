package bench

import (
	"testing"

	"pmemlog/internal/sim"
	"pmemlog/internal/txn"
)

func testSystem(t *testing.T, mode txn.Mode, threads int) *sim.System {
	t.Helper()
	cfg := sim.DefaultConfig(mode, threads)
	cfg.Caches.L1.SizeBytes = 4 << 10
	cfg.Caches.L1.Ways = 4
	cfg.Caches.L2.SizeBytes = 64 << 10
	cfg.Caches.L2.Ways = 8
	cfg.NVRAMBytes = 16 << 20
	cfg.LogBytes = 256 << 10
	cfg.GrowReserveBytes = 1 << 20
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testCfg(threads int) Config {
	return Config{Elements: 256, TxnsPerThread: 50, Threads: threads, Values: IntValues, Seed: 1}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		w, err := New(name, testCfg(1))
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if w.Name() == "" {
			t.Errorf("%s has empty name", name)
		}
	}
	if _, err := New("nope", testCfg(1)); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := New("hash", Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

// Each workload must run all its transactions cleanly on the full design.
func TestAllWorkloadsRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s := testSystem(t, txn.FWB, 2)
			w, err := New(name, testCfg(2))
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Setup(s); err != nil {
				t.Fatal(err)
			}
			s.SetBenchName(w.Name())
			if err := s.RunN(w.Run); err != nil {
				t.Fatal(err)
			}
			r := s.Stats()
			if r.Transactions != 2*50 {
				t.Errorf("transactions = %d, want 100", r.Transactions)
			}
		})
	}
}

// Hash behaves like a set under insert-if-absent / remove-if-found.
func TestHashAgainstShadow(t *testing.T) {
	s := testSystem(t, txn.FWB, 1)
	cfg := testCfg(1)
	cfg.TxnsPerThread = 300
	h := NewHash(cfg)
	if err := h.Setup(s); err != nil {
		t.Fatal(err)
	}
	shadow := map[uint64]bool{}
	for k := uint64(0); k < uint64(cfg.Elements); k += 2 {
		shadow[k] = true
	}
	rng := threadRNG(cfg.Seed, 0)
	err := s.RunN(func(ctx sim.Ctx, id int) {
		for i := 0; i < cfg.TxnsPerThread; i++ {
			key := uint64(rng.Int63()) % uint64(cfg.Elements)
			inserted := h.InsertOrRemove(ctx, key)
			if inserted == shadow[key] {
				panic("hash/shadow disagree on membership")
			}
			shadow[key] = !shadow[key]
		}
		// Final sweep: membership must match exactly.
		for k := uint64(0); k < uint64(cfg.Elements); k++ {
			if h.Contains(ctx, k) != shadow[k] {
				panic("final membership mismatch")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeAgainstShadow(t *testing.T) {
	s := testSystem(t, txn.NonPers, 1)
	cfg := testCfg(1)
	cfg.TxnsPerThread = 400
	r := NewRBTree(cfg)
	if err := r.Setup(s); err != nil {
		t.Fatal(err)
	}
	shadow := map[uint64]bool{}
	for k := uint64(0); k < uint64(cfg.Elements); k += 2 {
		shadow[k] = true
	}
	rng := threadRNG(cfg.Seed, 0)
	err := s.RunN(func(ctx sim.Ctx, id int) {
		for i := 0; i < cfg.TxnsPerThread; i++ {
			key := uint64(rng.Int63()) % uint64(cfg.Elements)
			inserted := r.InsertOrRemove(ctx, 0, key)
			if inserted == shadow[key] {
				panic("rbtree/shadow disagree")
			}
			shadow[key] = !shadow[key]
			if i%50 == 0 {
				if _, err := r.CheckInvariants(ctx, 0); err != nil {
					panic(err.Error())
				}
			}
		}
		count, err := r.CheckInvariants(ctx, 0)
		if err != nil {
			panic(err.Error())
		}
		want := 0
		for _, in := range shadow {
			if in {
				want++
			}
		}
		if count != want {
			panic("rbtree node count mismatch")
		}
		for k := uint64(0); k < uint64(cfg.Elements); k++ {
			if r.Contains(ctx, 0, k) != shadow[k] {
				panic("rbtree final membership mismatch")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBTreeAgainstShadow(t *testing.T) {
	s := testSystem(t, txn.NonPers, 1)
	cfg := testCfg(1)
	cfg.Elements = 512
	cfg.TxnsPerThread = 600
	b := NewBTree(cfg)
	if err := b.Setup(s); err != nil {
		t.Fatal(err)
	}
	shadow := map[uint64]bool{}
	for k := uint64(0); k < uint64(cfg.Elements); k += 2 {
		shadow[k] = true
	}
	rng := threadRNG(cfg.Seed, 0)
	err := s.RunN(func(ctx sim.Ctx, id int) {
		for i := 0; i < cfg.TxnsPerThread; i++ {
			key := uint64(rng.Int63()) % uint64(cfg.Elements)
			inserted := b.InsertOrRemove(ctx, 0, key)
			if inserted == shadow[key] {
				panic("btree/shadow disagree")
			}
			shadow[key] = !shadow[key]
		}
		count, err := b.CheckInvariants(ctx, 0)
		if err != nil {
			panic(err.Error())
		}
		want := 0
		for _, in := range shadow {
			if in {
				want++
			}
		}
		if count != want {
			panic("btree key count mismatch")
		}
		for k := uint64(0); k < uint64(cfg.Elements); k++ {
			if b.Contains(ctx, 0, k) != shadow[k] {
				panic("btree final membership mismatch")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSPSPreservesMultiset(t *testing.T) {
	s := testSystem(t, txn.FWB, 2)
	cfg := testCfg(2)
	sp := NewSPS(cfg)
	if err := sp.Setup(s); err != nil {
		t.Fatal(err)
	}
	if err := s.RunN(sp.Run); err != nil {
		t.Fatal(err)
	}
	// Swaps permute entries: the multiset of first words is invariant.
	seen := map[uint64]int{}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		if id != 0 {
			return
		}
		for i := 0; i < cfg.Elements; i++ {
			seen[uint64(sp.Entry(ctx, i))]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Elements; i++ {
		want := uint64(i) * 0x9e3779b97f4a7c15
		if seen[want] != 1 {
			t.Fatalf("entry pattern for index %d seen %d times", i, seen[want])
		}
	}
}

func TestSSCA2DegreesBounded(t *testing.T) {
	s := testSystem(t, txn.FWB, 2)
	cfg := testCfg(2)
	g := NewSSCA2(cfg)
	if err := g.Setup(s); err != nil {
		t.Fatal(err)
	}
	if err := s.RunN(g.Run); err != nil {
		t.Fatal(err)
	}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		if id != 0 {
			return
		}
		total := 0
		for v := 0; v < cfg.Elements; v++ {
			d := g.Degree(ctx, v)
			if d < 0 || d > ssEdgeCap {
				panic("degree out of bounds")
			}
			total += d
		}
		if total == 0 {
			panic("graph has no edges")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// String variants run on every benchmark and move strictly more NVRAM
// bytes per transaction than the int variants (multi-line elements).
func TestStringVariants(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			perTx := func(values ValueKind) float64 {
				cfg := testCfg(1)
				cfg.Values = values
				cfg.TxnsPerThread = 30
				s := testSystem(t, txn.FWB, 1)
				w, err := New(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Setup(s); err != nil {
					t.Fatal(err)
				}
				if err := s.RunN(w.Run); err != nil {
					t.Fatalf("%s-%s: %v", name, values, err)
				}
				r := s.Stats()
				return float64(r.NVRAMWriteBytes+r.ResidualDirtyBytes) / float64(r.Transactions)
			}
			intB := perTx(IntValues)
			strB := perTx(StrValues)
			// ssca2 ignores the value kind (graph payloads are fixed).
			if name != "ssca2" && strB <= intB {
				t.Errorf("str variant (%.0f B/tx) not heavier than int (%.0f B/tx)", strB, intB)
			}
		})
	}
}

// Crash consistency holds under a real data-structure workload, not just
// synthetic counters.
func TestHashCrashRecovery(t *testing.T) {
	probe := testSystem(t, txn.FWB, 1)
	cfg := testCfg(1)
	h := NewHash(cfg)
	if err := h.Setup(probe); err != nil {
		t.Fatal(err)
	}
	if err := probe.RunN(h.Run); err != nil {
		t.Fatal(err)
	}
	total := probe.WallCycles()

	for _, frac := range []float64{0.25, 0.5, 0.9} {
		cfg2 := sim.DefaultConfig(txn.FWB, 1)
		cfg2.Caches.L1.SizeBytes = 4 << 10
		cfg2.Caches.L1.Ways = 4
		cfg2.Caches.L2.SizeBytes = 64 << 10
		cfg2.Caches.L2.Ways = 8
		cfg2.NVRAMBytes = 16 << 20
		cfg2.LogBytes = 256 << 10
		cfg2.GrowReserveBytes = 1 << 20
		cfg2.TrackOracle = true
		s, err := sim.New(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		h2 := NewHash(cfg)
		if err := h2.Setup(s); err != nil {
			t.Fatal(err)
		}
		crashAt := uint64(float64(total) * frac)
		s.ScheduleCrash(crashAt)
		if err := s.RunN(h2.Run); err != sim.ErrCrashed {
			t.Fatalf("crash at %.0f%%: err=%v", frac*100, err)
		}
		rep, err := s.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if bad := s.VerifyRecovery(rep, crashAt); len(bad) != 0 {
			t.Fatalf("crash at %.0f%%: %d violations, first: %s", frac*100, len(bad), bad[0])
		}
	}
}
