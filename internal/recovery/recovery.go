// Package recovery implements the paper's four-step recovery procedure
// (Section IV-F):
//
//  1. Read the log's head and tail pointers from the durable metadata in
//     NVRAM, then discover the true tail with the torn-bit scan.
//  2. Classify transactions: those with a durable commit record committed;
//     the rest did not.
//  3. Repeat history: apply every update record's redo value in log order,
//     then roll back uncommitted transactions by applying their undo
//     values in reverse log order. All writes bypass the (reset, volatile)
//     caches and go directly to NVRAM.
//  4. Reset the log pointers (head = tail = discovered tail, preserving
//     torn-bit parity for the next pass).
//
// The redo-then-undo order is ARIES-style repeating history; like the
// paper, it assumes transactions are isolated (no transaction reads or
// overwrites another live transaction's uncommitted data).
package recovery

import (
	"fmt"
	"sort"

	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
)

// Report summarizes one recovery pass. The JSON tags let services persist
// or expose boot-time recovery evidence (pmserver's stats endpoint).
type Report struct {
	EntriesScanned int      `json:"entries_scanned"`
	Committed      []uint16 `json:"committed"`   // transaction IDs redone
	Uncommitted    []uint16 `json:"uncommitted"` // transaction IDs rolled back
	RedoWrites     int      `json:"redo_writes"`
	UndoWrites     int      `json:"undo_writes"`
	TrueTail       uint64   `json:"true_tail"`
	// Heads holds each recovered region's durable head pointer (in
	// logBases order). A transaction whose records all lie below its
	// region's durable head was truncated with full durability evidence —
	// the durable head write was ordered after the data write-backs that
	// allowed the truncation.
	Heads []uint64 `json:"heads"`
	// Hops counts the log_grow forward pointers followed per region: a
	// durable forward proves everything ordered before that grow —
	// including all earlier truncations' data write-backs — reached NVRAM.
	Hops []int `json:"hops"`
	// RejectedAddrs counts update records whose target address fell
	// outside the NVRAM image. A record can pass the torn-bit decode with
	// a garbage body: the torn bit, magic, and pass stamp all live in the
	// record's first 8-byte word, and NVRAM tears at write-unit (not
	// record) granularity, so a crash mid-record leaves a valid header
	// over a stale or scrubbed body. Such a record's store can never have
	// reached NVRAM (the log-before-data interlock orders data behind the
	// *completed* record write), so skipping it is the only sound move —
	// dereferencing it would fault the recovery handler.
	RejectedAddrs int `json:"rejected_addrs,omitempty"`
}

// Recover runs the full procedure against a post-crash NVRAM image.
// logBase is the log region's base address (held in the special registers
// which the platform re-derives from firmware configuration).
func Recover(img *mem.Physical, logBase mem.Addr) (Report, error) {
	return RecoverAll(img, []mem.Addr{logBase})
}

// RecoverAll recovers a system using distributed per-thread logs
// (Section III-F): each region is scanned independently, the surviving
// records are merged, and the redo/undo passes run over the union. Like
// the paper, this relies on transaction isolation — no two live
// transactions (which necessarily live in different logs) touch the same
// word, so cross-log record order is immaterial.
func RecoverAll(img *mem.Physical, logBases []mem.Addr) (Report, error) {
	var rep Report
	if len(logBases) == 0 {
		return rep, fmt.Errorf("recovery: no log regions")
	}

	// Step 1 per region: pointers + torn-bit scan. A region that log_grow
	// migrated away from holds a durable forward pointer to its successor;
	// follow it (bounded — each hop is one completed grow).
	var entries []nvlog.Entry
	var meta nvlog.Meta
	for _, base := range logBases {
		m, err := nvlog.ReadMeta(img, base)
		if err != nil {
			return rep, fmt.Errorf("recovery: %w", err)
		}
		hops := 0
		for m.Forward != 0 {
			hops++
			if hops > 64 {
				return rep, fmt.Errorf("recovery: forward chain too long from %v", base)
			}
			base = m.Forward
			if m, err = nvlog.ReadMeta(img, base); err != nil {
				return rep, fmt.Errorf("recovery: %w", err)
			}
		}
		rep.Hops = append(rep.Hops, hops)
		es, trueTail, err := nvlog.Scan(img, base, m)
		if err != nil {
			return rep, fmt.Errorf("recovery: %w", err)
		}
		entries = append(entries, es...)
		rep.EntriesScanned += len(es)
		rep.TrueTail = trueTail // last region's (single-log callers use this)
		rep.Heads = append(rep.Heads, m.Head)
		meta = m
		defer resetMeta(img, base, m, trueTail) // Step 4, after replay
	}

	// Step 2: classify transactions by durable commit records.
	committed := map[uint16]bool{}
	seen := map[uint16]bool{}
	for _, e := range entries {
		seen[e.TxID] = true
		if e.Kind == nvlog.KindCommit {
			committed[e.TxID] = true
		}
	}

	// Addresses are validated before any dereference: a torn record can
	// carry a valid first word (torn bit, magic, pass stamp) over a
	// garbage body, and recovery must reject it, not fault on it.
	inImage := func(a mem.Addr) bool {
		return a >= img.Base() && uint64(a-img.Base())+mem.WordSize <= img.Size()
	}

	// Step 3a: redo committed transactions' updates in log order.
	style := meta.Style
	for _, e := range entries {
		if e.Kind != nvlog.KindUpdate || !committed[e.TxID] {
			continue
		}
		if style == nvlog.UndoOnly {
			continue // undo-only logs cannot redo (clwb forced the data)
		}
		if !inImage(e.Addr) {
			rep.RejectedAddrs++
			continue
		}
		img.WriteWord(e.Addr, e.Redo)
		rep.RedoWrites++
	}
	// Step 3b: roll back losers in reverse log order. With an undo+redo
	// log, an undo is applied only when the in-NVRAM value matches the
	// record's redo value — the paper's "log entries with mismatched
	// values in NVRAM are considered non-committed" rule; a mismatch means
	// the store never stole its way into NVRAM, so there is nothing to
	// undo.
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if e.Kind != nvlog.KindUpdate || committed[e.TxID] {
			continue
		}
		if style == nvlog.RedoOnly {
			continue // redo-only logs cannot undo (they rely on ordering)
		}
		if !inImage(e.Addr) {
			rep.RejectedAddrs++
			continue
		}
		if style == nvlog.UndoRedo && img.ReadWord(e.Addr) != e.Redo {
			continue
		}
		img.WriteWord(e.Addr, e.Undo)
		rep.UndoWrites++
	}

	for id := range seen {
		if committed[id] {
			rep.Committed = append(rep.Committed, id)
		} else {
			rep.Uncommitted = append(rep.Uncommitted, id)
		}
	}
	sort.Slice(rep.Committed, func(i, j int) bool { return rep.Committed[i] < rep.Committed[j] })
	sort.Slice(rep.Uncommitted, func(i, j int) bool { return rep.Uncommitted[i] < rep.Uncommitted[j] })

	// Step 4 runs via the deferred resetMeta calls: each region's pointers
	// are reset in place, preserving sequence position so the next pass's
	// torn bits stay unambiguous.
	return rep, nil
}

// resetMeta writes a metadata block with head = tail = trueTail and scrubs
// the record area. The scrub guarantees no stale record from an earlier
// pass — which after multiple crash/reboot generations could carry the
// *current* torn-bit parity — can ever be misread by a future scan. Real
// recovery handlers scrub for the same reason (and it doubles as wear-
// leveling-friendly zeroing).
func resetMeta(img *mem.Physical, base mem.Addr, meta nvlog.Meta, trueTail uint64) {
	buf := img.Read(base, nvlog.MetaSize)
	// Reuse nvlog's encoding by writing the fields directly.
	putWord(buf[8:16], trueTail)
	putWord(buf[16:24], trueTail)
	img.Write(base, buf)
	zero := make([]byte, meta.SlotSize())
	for seq := uint64(0); seq < meta.Capacity; seq++ {
		img.Write(base+nvlog.MetaSize+mem.Addr(seq*meta.SlotSize()), zero)
	}
}

func putWord(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Verify compares the recovered image against an oracle of expected word
// values, returning the mismatching addresses (empty = consistent). Tests
// use this to assert atomicity+durability after random crash injection.
func Verify(img *mem.Physical, expect map[mem.Addr]mem.Word) []mem.Addr {
	var bad []mem.Addr
	for a, want := range expect {
		if img.ReadWord(a) != want {
			bad = append(bad, a)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad
}
