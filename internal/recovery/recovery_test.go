package recovery

import (
	"testing"

	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
)

const logBase = mem.Addr(0x10000)

// buildLog writes a log with the given entries into a fresh image,
// simulating what would be durable after a crash.
func buildLog(t *testing.T, entries []nvlog.Entry, drained int) *mem.Physical {
	t.Helper()
	img := mem.NewPhysical(0, 1<<20)
	cfg := nvlog.Config{Base: logBase, SizeBytes: nvlog.MetaSize + 64*nvlog.FullEntrySize, Style: nvlog.UndoRedo, MetaEvery: 1 << 30}
	l, init, err := nvlog.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range init {
		img.Write(w.Addr, w.Bytes)
	}
	for i, e := range entries {
		ws, err := l.PrepareAppend(e)
		if err != nil {
			t.Fatal(err)
		}
		if i < drained { // entries beyond `drained` were lost in the buffer
			for _, w := range ws {
				img.Write(w.Addr, w.Bytes)
			}
		}
	}
	return img
}

func upd(tx uint16, addr mem.Addr, undo, redo mem.Word) nvlog.Entry {
	return nvlog.Entry{Kind: nvlog.KindUpdate, TxID: tx, Addr: addr, Undo: undo, Redo: redo}
}
func commit(tx uint16) nvlog.Entry { return nvlog.Entry{Kind: nvlog.KindCommit, TxID: tx} }
func header(tx uint16) nvlog.Entry { return nvlog.Entry{Kind: nvlog.KindHeader, TxID: tx} }

func TestRedoCommittedTransaction(t *testing.T) {
	// Committed tx wrote 42 at 0x100, but the dirty line never reached
	// NVRAM (image still holds the old value 7). Recovery must redo.
	entries := []nvlog.Entry{header(1), upd(1, 0x100, 7, 42), commit(1)}
	img := buildLog(t, entries, len(entries))
	img.WriteWord(0x100, 7)

	rep, err := Recover(img, logBase)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.ReadWord(0x100); got != 42 {
		t.Errorf("redo: word = %d, want 42", got)
	}
	if len(rep.Committed) != 1 || rep.Committed[0] != 1 || rep.RedoWrites != 1 {
		t.Errorf("report: %+v", rep)
	}
}

func TestUndoUncommittedTransaction(t *testing.T) {
	// Uncommitted tx's store leaked to NVRAM (stolen page); undo it.
	entries := []nvlog.Entry{header(2), upd(2, 0x200, 7, 42)}
	img := buildLog(t, entries, len(entries))
	img.WriteWord(0x200, 42) // the "steal" happened

	rep, err := Recover(img, logBase)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.ReadWord(0x200); got != 7 {
		t.Errorf("undo: word = %d, want 7", got)
	}
	if len(rep.Uncommitted) != 1 || rep.UndoWrites != 1 {
		t.Errorf("report: %+v", rep)
	}
}

func TestUndoReversesMultipleUpdatesInOrder(t *testing.T) {
	// Same word updated twice by an uncommitted tx: undo must restore the
	// ORIGINAL value (reverse order), not the intermediate one.
	entries := []nvlog.Entry{
		header(3),
		upd(3, 0x300, 1, 2), // 1 -> 2
		upd(3, 0x300, 2, 3), // 2 -> 3
	}
	img := buildLog(t, entries, len(entries))
	img.WriteWord(0x300, 3)
	if _, err := Recover(img, logBase); err != nil {
		t.Fatal(err)
	}
	if got := img.ReadWord(0x300); got != 1 {
		t.Errorf("reverse undo: word = %d, want 1", got)
	}
}

func TestMixedTransactions(t *testing.T) {
	// Tx 1 committed (redo to 10); tx 2 uncommitted (undo to 5). Different
	// addresses (isolation).
	entries := []nvlog.Entry{
		header(1), upd(1, 0x400, 9, 10),
		header(2), upd(2, 0x440, 5, 6),
		commit(1),
	}
	img := buildLog(t, entries, len(entries))
	img.WriteWord(0x400, 9) // committed data never written back
	img.WriteWord(0x440, 6) // uncommitted data stolen into NVRAM
	rep, err := Recover(img, logBase)
	if err != nil {
		t.Fatal(err)
	}
	if img.ReadWord(0x400) != 10 || img.ReadWord(0x440) != 5 {
		t.Errorf("mixed recovery: %d %d, want 10 5", img.ReadWord(0x400), img.ReadWord(0x440))
	}
	if len(rep.Committed) != 1 || len(rep.Uncommitted) != 1 {
		t.Errorf("report: %+v", rep)
	}
}

func TestLostTailEntriesIgnored(t *testing.T) {
	// The commit record was still in the volatile log buffer at the crash:
	// the transaction must be rolled back.
	entries := []nvlog.Entry{header(4), upd(4, 0x500, 1, 2), commit(4)}
	img := buildLog(t, entries, 2) // commit record never drained
	img.WriteWord(0x500, 2)
	rep, err := Recover(img, logBase)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.ReadWord(0x500); got != 1 {
		t.Errorf("lost-commit recovery: word = %d, want 1", got)
	}
	if len(rep.Committed) != 0 || len(rep.Uncommitted) != 1 {
		t.Errorf("report: %+v", rep)
	}
	if rep.EntriesScanned != 2 {
		t.Errorf("scanned %d entries, want 2", rep.EntriesScanned)
	}
}

func TestEmptyLogRecovers(t *testing.T) {
	img := buildLog(t, nil, 0)
	rep, err := Recover(img, logBase)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesScanned != 0 || rep.RedoWrites != 0 || rep.UndoWrites != 0 {
		t.Errorf("empty log report: %+v", rep)
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	entries := []nvlog.Entry{header(1), upd(1, 0x600, 3, 4), commit(1)}
	img := buildLog(t, entries, len(entries))
	img.WriteWord(0x600, 3)
	if _, err := Recover(img, logBase); err != nil {
		t.Fatal(err)
	}
	first := img.ReadWord(0x600)
	// A second crash before any new activity: recover again.
	rep, err := Recover(img, logBase)
	if err != nil {
		t.Fatal(err)
	}
	if img.ReadWord(0x600) != first {
		t.Error("second recovery changed state")
	}
	if rep.EntriesScanned != 0 {
		t.Errorf("second recovery scanned %d entries, want 0 (pointers reset)", rep.EntriesScanned)
	}
}

func TestRecoveryResetsPointersPreservingSequence(t *testing.T) {
	entries := []nvlog.Entry{header(1), upd(1, 0x700, 0, 1), commit(1)}
	img := buildLog(t, entries, len(entries))
	if _, err := Recover(img, logBase); err != nil {
		t.Fatal(err)
	}
	meta, err := nvlog.ReadMeta(img, logBase)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Head != 3 || meta.Tail != 3 {
		t.Errorf("post-recovery pointers: head=%d tail=%d, want 3/3", meta.Head, meta.Tail)
	}
}

// RecoverAll merges records from multiple (per-thread) log regions.
func TestRecoverAllMultipleRegions(t *testing.T) {
	img := mem.NewPhysical(0, 1<<20)
	bases := []mem.Addr{0x10000, 0x20000}
	logs := make([]*nvlog.Log, 2)
	for i, base := range bases {
		cfg := nvlog.Config{Base: base, SizeBytes: nvlog.MetaSize + 64*nvlog.FullEntrySize, Style: nvlog.UndoRedo, MetaEvery: 1 << 30}
		l, init, err := nvlog.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range init {
			img.Write(w.Addr, w.Bytes)
		}
		logs[i] = l
	}
	appendTo := func(l *nvlog.Log, e nvlog.Entry) {
		ws, err := l.PrepareAppend(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			img.Write(w.Addr, w.Bytes)
		}
	}
	// Log 0: committed tx 1 writes 0x800. Log 1: uncommitted tx 2 stole
	// its write to 0x840 into NVRAM.
	appendTo(logs[0], header(1))
	appendTo(logs[0], upd(1, 0x800, 5, 6))
	appendTo(logs[0], commit(1))
	appendTo(logs[1], header(2))
	appendTo(logs[1], upd(2, 0x840, 7, 8))
	img.WriteWord(0x800, 5) // committed data never written back
	img.WriteWord(0x840, 8) // stolen uncommitted data

	rep, err := RecoverAll(img, bases)
	if err != nil {
		t.Fatal(err)
	}
	if img.ReadWord(0x800) != 6 || img.ReadWord(0x840) != 7 {
		t.Errorf("multi-region recovery: %d %d, want 6 7", img.ReadWord(0x800), img.ReadWord(0x840))
	}
	if rep.EntriesScanned != 5 || len(rep.Committed) != 1 || len(rep.Uncommitted) != 1 {
		t.Errorf("report: %+v", rep)
	}
	// Both regions' pointers must be reset.
	for i, base := range bases {
		meta, err := nvlog.ReadMeta(img, base)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Head != meta.Tail {
			t.Errorf("region %d pointers not reset: %d/%d", i, meta.Head, meta.Tail)
		}
	}
}

func TestRecoverAllNoRegions(t *testing.T) {
	img := mem.NewPhysical(0, 4096)
	if _, err := RecoverAll(img, nil); err == nil {
		t.Error("empty region list accepted")
	}
}

func TestVerify(t *testing.T) {
	img := mem.NewPhysical(0, 4096)
	img.WriteWord(0x10, 5)
	bad := Verify(img, map[mem.Addr]mem.Word{0x10: 5, 0x20: 0})
	if len(bad) != 0 {
		t.Errorf("consistent image reported bad: %v", bad)
	}
	bad = Verify(img, map[mem.Addr]mem.Word{0x10: 6, 0x20: 1})
	if len(bad) != 2 {
		t.Errorf("Verify missed mismatches: %v", bad)
	}
}
