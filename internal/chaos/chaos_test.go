package chaos

import (
	"reflect"
	"testing"
)

func probPlan(seed int64, prob float64) Plan {
	return Plan{Seed: seed, Sites: map[Site]SiteConfig{
		SiteTornLogLine: {Prob: prob},
	}}
}

// TestHitStreamDeterministic: two injectors built from the same plan
// produce bit-identical decision streams — the property every
// "replays from -seed N alone" claim in the campaign rests on.
func TestHitStreamDeterministic(t *testing.T) {
	a := New(probPlan(42, 0.3))
	b := New(probPlan(42, 0.3))
	for i := 0; i < 1000; i++ {
		if a.Hit(SiteTornLogLine, uint64(i)) != b.Hit(SiteTornLogLine, uint64(i)) {
			t.Fatalf("decision streams diverge at opportunity %d", i)
		}
	}
	la, lb := a.Ledger(), b.Ledger()
	if la.Injected == 0 {
		t.Fatal("prob 0.3 over 1000 opportunities injected nothing")
	}
	if !reflect.DeepEqual(la, lb) {
		t.Fatalf("ledgers diverge:\n%+v\n%+v", la, lb)
	}
}

// TestSeedChangesStream: a different seed must actually change the
// fault schedule (otherwise the campaign's seed sweep is one run).
func TestSeedChangesStream(t *testing.T) {
	a, b := New(probPlan(1, 0.5)), New(probPlan(2, 0.5))
	same := true
	for i := 0; i < 200; i++ {
		if a.Hit(SiteTornLogLine, 0) != b.Hit(SiteTornLogLine, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 200-decision streams")
	}
}

// TestForkStreams: forks are deterministic functions of (seed, name) —
// same name, same stream; different names, independent streams — and
// all forks share one ledger with the root.
func TestForkStreams(t *testing.T) {
	mk := func() (*Injector, *Injector, *Injector) {
		root := New(probPlan(7, 0.5))
		return root, root.Fork("conn-1"), root.Fork("conn-2")
	}
	r1, a1, b1 := mk()
	_, a2, _ := mk()

	var sa1, sa2, sb1 []bool
	for i := 0; i < 200; i++ {
		sa1 = append(sa1, a1.Hit(SiteTornLogLine, 0))
		sa2 = append(sa2, a2.Hit(SiteTornLogLine, 0))
		sb1 = append(sb1, b1.Hit(SiteTornLogLine, 0))
	}
	if !reflect.DeepEqual(sa1, sa2) {
		t.Fatal("same fork name, same seed: streams differ")
	}
	if reflect.DeepEqual(sa1, sb1) {
		t.Fatal("different fork names produced identical streams")
	}
	led := r1.Ledger()
	if led.Injected == 0 || led.Injected != a1.Injected() {
		t.Fatalf("forks must share the root ledger: root=%d fork=%d", led.Injected, a1.Injected())
	}
}

// TestEveryTrigger: count-based sites fire on exactly every Nth
// opportunity, independent of the RNG.
func TestEveryTrigger(t *testing.T) {
	in := New(Plan{Seed: 3, Sites: map[Site]SiteConfig{
		SiteConnDrop: {Every: 5},
	}})
	for i := 1; i <= 25; i++ {
		got := in.Hit(SiteConnDrop, 0)
		if want := i%5 == 0; got != want {
			t.Fatalf("opportunity %d: fired=%v, want %v", i, got, want)
		}
	}
	if led := in.Ledger(); led.Counts[SiteConnDrop] != 5 || led.Opportunities[SiteConnDrop] != 25 {
		t.Fatalf("ledger: %+v", led)
	}
}

// TestMaxCap: Max stops injection but keeps counting opportunities.
func TestMaxCap(t *testing.T) {
	in := New(Plan{Seed: 3, Sites: map[Site]SiteConfig{
		SiteDropFWB: {Every: 1, Max: 4},
	}})
	fired := 0
	for i := 0; i < 100; i++ {
		if in.Hit(SiteDropFWB, 0) {
			fired++
		}
	}
	led := in.Ledger()
	if fired != 4 || led.Counts[SiteDropFWB] != 4 {
		t.Fatalf("Max=4: fired %d, ledger %d", fired, led.Counts[SiteDropFWB])
	}
	if led.Opportunities[SiteDropFWB] != 100 {
		t.Fatalf("opportunities %d, want 100", led.Opportunities[SiteDropFWB])
	}
}

// TestDisarmedSites: unarmed sites and zero-valued configs never fire
// and record no opportunities (the fast path takes no lock).
func TestDisarmedSites(t *testing.T) {
	in := New(Plan{Seed: 1, Sites: map[Site]SiteConfig{
		SiteBankStall: {}, // armed with no trigger: still disarmed
	}})
	for i := 0; i < 50; i++ {
		if in.Hit(SiteBankStall, 0) || in.Hit(SiteDelayWB, 0) {
			t.Fatal("disarmed site fired")
		}
	}
	if led := in.Ledger(); led.Injected != 0 || len(led.Opportunities) != 0 {
		t.Fatalf("disarmed run left a ledger: %+v", led)
	}
}

// TestHitArgAndFrac: the magnitude variants carry the configured Arg
// and a fraction strictly inside (0,1), both recorded in the ledger.
func TestHitArgAndFrac(t *testing.T) {
	in := New(Plan{Seed: 9, Sites: map[Site]SiteConfig{
		SiteDelayWB:      {Every: 1, Arg: 2000},
		SitePartialDrain: {Every: 1},
	}})
	if arg, ok := in.HitArg(SiteDelayWB, 0x100); !ok || arg != 2000 {
		t.Fatalf("HitArg = %d, %v", arg, ok)
	}
	frac, ok := in.HitFrac(SitePartialDrain, 0x200)
	if !ok || frac <= 0 || frac >= 1 {
		t.Fatalf("HitFrac = %v, %v", frac, ok)
	}
	led := in.Ledger()
	if len(led.Faults) != 2 {
		t.Fatalf("faults: %+v", led.Faults)
	}
	if led.Faults[0].Arg != 2000 || led.Faults[0].Addr != 0x100 {
		t.Fatalf("delay-wb fault: %+v", led.Faults[0])
	}
	if f := led.Faults[1]; f.Arg == 0 || f.Arg >= 1000 {
		t.Fatalf("partial-drain frac (ppt) out of range: %+v", f)
	}
}

// TestLedgerCapBoundsFaultList: beyond ledgerCap the fault list stops
// growing but exact counts continue (Dropped accounts for the rest).
func TestLedgerCapBoundsFaultList(t *testing.T) {
	in := New(Plan{Seed: 1, Sites: map[Site]SiteConfig{
		SiteDupAck: {Every: 1},
	}})
	n := uint64(ledgerCap + 500)
	for i := uint64(0); i < n; i++ {
		in.Hit(SiteDupAck, 0)
	}
	led := in.Ledger()
	if len(led.Faults) != ledgerCap || led.Dropped != 500 || led.Injected != n {
		t.Fatalf("cap: faults=%d dropped=%d injected=%d", len(led.Faults), led.Dropped, led.Injected)
	}
}

// TestNilInjector: every evaluation entry point is a no-op on nil, so
// the components' hook sites need no guards of their own.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Hit(SiteTornLogLine, 0) {
		t.Fatal("nil injector fired")
	}
	if _, ok := in.HitArg(SiteDelayWB, 0); ok {
		t.Fatal("nil HitArg fired")
	}
	if _, ok := in.HitFrac(SitePartialDrain, 0); ok {
		t.Fatal("nil HitFrac fired")
	}
	if in.Fork("x") != nil {
		t.Fatal("nil Fork must stay nil")
	}
	if in.Injected() != 0 || in.Ledger() != nil {
		t.Fatal("nil ledger access")
	}
	if s := in.Ledger().String(); s != "chaos: none" {
		t.Fatalf("nil ledger String = %q", s)
	}
}
