package campaign

import (
	"errors"
	"math/rand"

	"pmemlog/internal/chaos"
	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
	"pmemlog/internal/txn"
)

// Simulated-machine scenario runner: build a chaos-armed machine, run a
// seeded multithreaded counter workload, crash it at a seed-derived
// cycle with the scenario's hardware faults armed, then run the paper's
// recovery procedure and verify the recovered image against the oracle
// (exactly the committed transactions, atomically, nothing acked lost).
//
// Everything — workload interleaving, fault schedule, crash cycle — is
// a pure function of the seed, so a failing run replays bit-for-bit
// from `-seed N` alone.

const (
	simThreads = 3
	simTxns    = 150
	simWords   = 32
)

// simConfig shrinks the Table II machine the same way the sim package's
// own crash tests do: tiny caches force evictions (the steal path), a
// small log forces wrap-around, and the oracle tracks committed state.
func simConfig(inj *chaos.Injector) sim.Config {
	cfg := sim.DefaultConfig(txn.FWB, simThreads)
	cfg.Caches.L1.SizeBytes = 2 << 10
	cfg.Caches.L1.Ways = 2
	cfg.Caches.L2.SizeBytes = 16 << 10
	cfg.Caches.L2.Ways = 4
	cfg.NVRAMBytes = 8 << 20
	cfg.LogBytes = 64 << 10
	cfg.GrowReserveBytes = 1 << 20
	cfg.DRAMBytes = 64 << 10
	// The derived FWB interval for a small log is longer than this whole
	// workload; force frequent scans so the drop-fwb and delay-wb sites
	// actually see forced write-backs before the crash.
	cfg.FwbScanInterval = 500
	cfg.TrackOracle = true
	cfg.Chaos = inj
	return cfg
}

// buildSim assembles an armed machine plus its seeded workload. The
// per-thread counter regions are populated through the sanctioned
// SetupCtx route so the oracle holds the baseline.
func buildSim(seed int64, inj *chaos.Injector) (*sim.System, func(sim.Ctx, int), error) {
	s, err := sim.New(simConfig(inj))
	if err != nil {
		return nil, nil, err
	}
	bases := make([]mem.Addr, simThreads)
	setup := s.SetupCtx()
	for t := 0; t < simThreads; t++ {
		a, err := s.Heap().AllocLine(uint64(simWords * mem.WordSize))
		if err != nil {
			return nil, nil, err
		}
		bases[t] = a
		for w := 0; w < simWords; w++ {
			setup.Store(a+mem.Addr(w*mem.WordSize), 0)
		}
	}
	workload := func(ctx sim.Ctx, id int) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(id)*7919))
		for k := 0; k < simTxns; k++ {
			ctx.TxBegin()
			for j := 0; j < 3; j++ {
				a := bases[id] + mem.Addr(rng.Intn(simWords)*mem.WordSize)
				v := ctx.Load(a)
				ctx.Compute(10)
				ctx.Store(a, v+1)
			}
			ctx.TxCommit()
		}
	}
	return s, workload, nil
}

func runSim(sc Scenario, seed int64, res *RunResult) {
	plan := chaos.Plan{Seed: seed, Sites: sc.Sites}

	// Probe pass: the same plan on a fresh machine measures the run's
	// wall cycles (timing faults shift them, so the probe must be armed
	// identically — determinism makes the two runs cycle-identical).
	probe, w, err := buildSim(seed, chaos.New(plan))
	if err != nil {
		res.failf("build probe machine: %v", err)
		return
	}
	if err := probe.RunN(w); err != nil {
		res.failf("probe run: %v", err)
		return
	}
	total := probe.WallCycles()
	if total < 2 {
		res.failf("probe run finished in %d cycles", total)
		return
	}

	// Crash run: power loss at a seed-derived cycle inside the run.
	crashAt := uint64(rand.New(rand.NewSource(seed)).Int63n(int64(total-1))) + 1
	res.CrashCycle = crashAt
	inj := chaos.New(plan)
	defer res.finishLedger(inj)
	s, w, err := buildSim(seed, inj)
	if err != nil {
		res.failf("build machine: %v", err)
		return
	}
	s.ScheduleCrash(crashAt)
	if err := s.RunN(w); !errors.Is(err, sim.ErrCrashed) {
		res.failf("crash@%d did not fire: %v", crashAt, err)
		return
	}

	rep, err := s.Recover()
	if err != nil {
		res.failf("recovery crash@%d: %v", crashAt, err)
		return
	}
	for _, bad := range s.VerifyRecovery(rep, crashAt) {
		res.failf("crash@%d: %s", crashAt, bad)
	}

	// The machine must also come back: reboot over the recovered image
	// and run a fresh workload to completion.
	if err := s.Reboot(); err != nil {
		res.failf("reboot crash@%d: %v", crashAt, err)
		return
	}
	if err := s.RunN(func(ctx sim.Ctx, id int) {
		ctx.TxBegin()
		ctx.Compute(5)
		ctx.TxCommit()
	}); err != nil {
		res.failf("post-reboot run crash@%d: %v", crashAt, err)
	}
}
