package campaign

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"pmemlog/internal/chaos"
	"pmemlog/internal/flight"
	"pmemlog/internal/server"
)

// Server scenario runner: boot a chaos-armed pmserver, drive pipelined
// client traffic through the injected network faults (reconnecting and
// resending whenever a chaos conn-drop kills the connection), leave a
// window of requests in flight, snapshot the flight recorder, and kill
// the server mid-traffic. The audit is pmdoctor's: analyze the dump
// against the shard images (every verdict must agree with a recovery
// replay, no acked write may be lost), then restart the server over the
// same images and read back every acknowledged key.

const (
	serverOps     = 96 // acked-write workload size per run
	serverTailOps = 6  // left in flight at the kill point
	serverWindow  = 8
	maxRounds     = 40
)

func chaosKey(i int) []byte { return []byte(fmt.Sprintf("chaos-%03d", i)) }

func chaosVal(seed int64, i int) []byte {
	return []byte(fmt.Sprintf("seed%d-op%d", seed, i))
}

func runServer(sc Scenario, seed int64, baseDir string, res *RunResult) {
	dir := filepath.Join(baseDir, fmt.Sprintf("%s-seed%d", sc.Name, seed))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		res.failf("scratch dir: %v", err)
		return
	}
	inj := chaos.New(chaos.Plan{Seed: seed, Sites: sc.Sites})
	defer res.finishLedger(inj)

	quiet := log.New(io.Discard, "", 0)
	srv, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", Dir: dir,
		Shards: 2, QueueDepth: 64, BatchMax: 8,
		NVRAMBytes: 8 << 20, LogBytes: 256 << 10,
		ConnWindow: serverWindow, RetryAfterMs: 1,
		// Tail-sample every finished span: the slow ring is the dump's
		// record of acked requests, which is what the acked-loss audit
		// cross-checks against recovery.
		SlowSpans: serverOps + serverTailOps + 64, SlowThreshold: time.Nanosecond,
		Logger: quiet,
		Chaos:  inj,
	})
	if err != nil {
		res.failf("server start: %v", err)
		return
	}
	addr := srv.Addr()

	acked := make(map[string]string, serverOps)
	var cl *server.Client
	connect := func() bool {
		c, err := server.DialPipelined(addr, serverWindow)
		if err != nil {
			return false
		}
		c.EnableSpans()
		c.MaxRetries = 16
		cl = c
		return true
	}
	closeClient := func() {
		if cl != nil {
			cl.Close()
			cl = nil
		}
	}

	// Drive the acked workload, reconnecting across chaos conn-drops.
	// Re-putting an op whose ack was lost is idempotent (same key, same
	// value), so the retry loop is safe by construction.
	pending := make([]int, 0, serverOps)
	for i := 0; i < serverOps; i++ {
		pending = append(pending, i)
	}
	for round := 0; len(pending) > 0 && round < maxRounds; round++ {
		if cl == nil && !connect() {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		type issued struct {
			op   int
			call *server.Call
		}
		var batch []issued
		for _, op := range pending {
			call, err := cl.PutAsync(chaosKey(op), chaosVal(seed, op))
			if err != nil {
				break // client dead; completed calls below still count
			}
			batch = append(batch, issued{op, call})
		}
		still := pending[:0]
		done := make(map[int]bool, len(batch))
		for _, b := range batch {
			resp, err := b.call.Wait()
			if err == nil && resp.Status == server.StatusOK {
				acked[string(chaosKey(b.op))] = string(chaosVal(seed, b.op))
				done[b.op] = true
			}
			b.call.Release()
		}
		for _, op := range pending {
			if !done[op] {
				still = append(still, op)
			}
		}
		pending = still
		if len(pending) > 0 {
			closeClient() // the connection is suspect; start clean
		}
	}
	if len(pending) > 0 {
		res.failf("%d/%d writes never acked after %d rounds", len(pending), serverOps, maxRounds)
	}

	// Leave a tail of requests in flight, snapshot the black box, and
	// pull the plug. Tail ops acked before the kill join the durability
	// contract; the rest must show up as correctly rolled-back verdicts.
	if cl == nil {
		connect()
	}
	var tail []struct {
		op   int
		call *server.Call
	}
	if cl != nil {
		for j := 0; j < serverTailOps; j++ {
			op := serverOps + j
			call, err := cl.PutAsync(chaosKey(op), chaosVal(seed, op))
			if err != nil {
				break
			}
			tail = append(tail, struct {
				op   int
				call *server.Call
			}{op, call})
		}
	}
	dumpPath := filepath.Join(dir, "flight-dump.json")
	if err := srv.WriteFlightDump(dumpPath, "chaos"); err != nil {
		res.failf("flight dump: %v", err)
	}
	res.DumpPath = dumpPath
	srv.Kill()
	for _, t := range tail {
		resp, err := t.call.Wait()
		if err == nil && resp.Status == server.StatusOK {
			acked[string(chaosKey(t.op))] = string(chaosVal(seed, t.op))
		}
		t.call.Release()
	}
	closeClient()
	res.AckedWrites = len(acked)

	// pmdoctor's audit, in-process: every flight verdict must agree with
	// the recovery replay over the shard images, and no acked span may
	// have been rolled back.
	d, err := flight.LoadDump(dumpPath)
	if err != nil {
		res.failf("load dump: %v", err)
		return
	}
	if d.Chaos == nil || d.Chaos.Seed != seed {
		res.failf("dump is missing the chaos ledger (seed not stamped)")
	}
	an, err := flight.Analyze(d, func(shard int) (io.ReadCloser, error) {
		return os.Open(filepath.Join(dir, fmt.Sprintf("shard-%03d.img", shard)))
	})
	if err != nil {
		res.failf("dump analysis: %v", err)
		return
	}
	res.Findings = len(an.Findings())
	res.Agreement = an.Agreement()
	res.AckedLost = an.AckedLoss()
	if !res.Agreement {
		for _, f := range an.Findings() {
			if !f.Agrees {
				res.failf("span %d txn %d: verdict %s disagrees with recovery replay",
					f.Span.ID, f.Span.TxID, f.Verdict)
			}
		}
	}
	if res.AckedLost > 0 {
		for _, f := range an.Findings() {
			if f.AckedLost {
				res.failf("span %d txn %d: acked write lost by recovery", f.Span.ID, f.Span.TxID)
			}
		}
	}

	// Restart over the surviving images (no chaos this time) and read
	// back every acknowledged key: the end-to-end durability check.
	srv2, err := server.Start(server.Config{
		Addr: "127.0.0.1:0", Dir: dir, Logger: quiet,
	})
	if err != nil {
		res.failf("restart: %v", err)
		return
	}
	defer srv2.Shutdown()
	cl2, err := server.Dial(srv2.Addr())
	if err != nil {
		res.failf("restart dial: %v", err)
		return
	}
	defer cl2.Close()
	for k, v := range acked {
		got, found, err := cl2.Get([]byte(k))
		if err != nil {
			res.failf("restart get %s: %v", k, err)
			return
		}
		if !found {
			res.failf("acked write %s lost across kill+restart", k)
			continue
		}
		if string(got) != v {
			res.failf("acked write %s corrupted: got %q want %q", k, got, v)
		}
	}
}
