// Package campaign is the chaos campaign engine behind cmd/pmchaos: it
// sweeps seeds across a scenario matrix, runs each (scenario, seed) pair
// as one fully instrumented fault-injection run, and audits every run
// with the same machinery pmdoctor -strict uses — recovery replay for
// the simulated machine, flight-dump analysis (verdict-vs-replay
// agreement, acked-write loss) for the server.
//
// It lives below cmd/pmchaos and above everything else: internal/chaos
// itself must stay standard-library-only because the hardware layers
// import it, so the code that needs sim, server, flight, and recovery
// together lands here.
package campaign

import (
	"fmt"
	"io"
	"time"

	"pmemlog/internal/chaos"
)

// Scenario is one named cell of the campaign matrix: which fault sites
// are armed, with what triggers, against which target (the simulated
// machine or the server's network path).
type Scenario struct {
	Name string `json:"name"`
	// Target is "sim" (crash the simulated machine, verify recovery
	// against the oracle) or "server" (run pmserver traffic, kill it,
	// audit the flight dump and the restarted store).
	Target string                          `json:"target"`
	Sites  map[chaos.Site]chaos.SiteConfig `json:"sites"`
	Desc   string                          `json:"desc"`
}

// Scenarios returns the standard matrix: one scenario per fault type,
// one combined, one network. CI sweeps every scenario over a fixed seed
// range (see make chaos).
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "torn-log-line", Target: "sim",
			Sites: map[chaos.Site]chaos.SiteConfig{
				chaos.SiteTornLogLine: {Prob: 1},
			},
			Desc: "every in-flight log line tears at power loss (undo-before-overwrite decode check)",
		},
		{
			Name: "partial-drain", Target: "sim",
			Sites: map[chaos.Site]chaos.SiteConfig{
				chaos.SitePartialDrain: {Prob: 1},
			},
			Desc: "buffered log slots land partially in NVRAM at power loss (torn-bit scan)",
		},
		{
			Name: "drop-fwb", Target: "sim",
			Sites: map[chaos.Site]chaos.SiteConfig{
				chaos.SiteDropFWB: {Prob: 0.25, Max: 40},
			},
			Desc: "FWB scans skip flagged lines (truncation must keep waiting on real write-backs)",
		},
		{
			Name: "delay-wb", Target: "sim",
			Sites: map[chaos.Site]chaos.SiteConfig{
				chaos.SiteDelayWB: {Prob: 0.3, Arg: 2000},
			},
			Desc: "data write-back completions are delayed and reordered across banks",
		},
		{
			Name: "bank-stall", Target: "sim",
			Sites: map[chaos.Site]chaos.SiteConfig{
				chaos.SiteBankStall: {Prob: 0.2, Arg: 4000},
			},
			Desc: "NVRAM banks stall before answering (slow PCM rows perturb completion order)",
		},
		{
			Name: "combined", Target: "sim",
			Sites: map[chaos.Site]chaos.SiteConfig{
				chaos.SiteTornLogLine:  {Prob: 1},
				chaos.SitePartialDrain: {Prob: 1},
				chaos.SiteDropFWB:      {Prob: 0.2, Max: 30},
				chaos.SiteDelayWB:      {Prob: 0.2, Arg: 1500},
				chaos.SiteBankStall:    {Prob: 0.15, Arg: 3000},
			},
			Desc: "all hardware fault sites at once",
		},
		{
			Name: "net-faults", Target: "server",
			Sites: map[chaos.Site]chaos.SiteConfig{
				chaos.SiteConnDrop:      {Every: 41, Max: 3},
				chaos.SiteDelayAck:      {Every: 17, Arg: 200_000}, // 0.2 ms
				chaos.SiteDupAck:        {Every: 7},
				chaos.SiteSpuriousRetry: {Every: 13},
			},
			Desc: "conn drops mid-window, delayed/duplicated acks, spurious StatusRetry answers",
		},
	}
}

// FindScenario resolves a scenario by name.
func FindScenario(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// RunResult is one (scenario, seed) run's outcome. Failures is empty on
// a clean run; every failure string leads with the seed so the run
// reproduces from `pmchaos -scenarios <name> -seed <seed>` alone.
type RunResult struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	// Sim-target evidence.
	CrashCycle uint64 `json:"crash_cycle,omitempty"`

	// Server-target evidence.
	AckedWrites int    `json:"acked_writes,omitempty"`
	Findings    int    `json:"findings,omitempty"`
	AckedLost   int    `json:"acked_lost,omitempty"`
	Agreement   bool   `json:"agreement,omitempty"`
	DumpPath    string `json:"dump_path,omitempty"`

	// Injection accounting (counts always; the full fault list is kept
	// only for failing runs to bound the report size).
	Injected uint64                `json:"injected"`
	Counts   map[chaos.Site]uint64 `json:"counts,omitempty"`
	Ledger   *chaos.Ledger         `json:"ledger,omitempty"`

	Failures []string `json:"failures,omitempty"`
}

// Failed reports whether the run violated any acceptance bar.
func (r *RunResult) Failed() bool { return len(r.Failures) > 0 }

// finishLedger folds the injector's ledger into the result, keeping the
// full fault list only when the run failed.
func (r *RunResult) finishLedger(in *chaos.Injector) {
	l := in.Ledger()
	if l == nil {
		return
	}
	r.Injected = l.Injected
	r.Counts = l.Counts
	if r.Failed() {
		r.Ledger = l
	}
}

// failf records one failure, seed first, so any report line reproduces.
func (r *RunResult) failf(format string, args ...any) {
	r.Failures = append(r.Failures,
		fmt.Sprintf("seed %d [%s]: %s", r.Seed, r.Scenario, fmt.Sprintf(format, args...)))
}

// Report is the campaign's JSON document (pmchaos -o).
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	Scenarios   []string    `json:"scenarios"`
	Seeds       []int64     `json:"seeds"`
	Runs        []RunResult `json:"runs"`
	TotalRuns   int         `json:"total_runs"`
	FailedRuns  int         `json:"failed_runs"`
	Failures    []string    `json:"failures,omitempty"`
}

// Run executes one (scenario, seed) pair. dir is the scratch directory
// for server-target runs (images, flight dumps); sim-target runs never
// touch the filesystem.
func Run(sc Scenario, seed int64, dir string) RunResult {
	res := RunResult{Scenario: sc.Name, Seed: seed}
	switch sc.Target {
	case "server":
		runServer(sc, seed, dir, &res)
	default:
		runSim(sc, seed, &res)
	}
	return res
}

// RunCampaign sweeps every scenario over every seed. verbose, when
// non-nil, receives one progress line per run.
func RunCampaign(scs []Scenario, seeds []int64, dir string, verbose io.Writer) *Report {
	rep := &Report{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	for _, sc := range scs {
		rep.Scenarios = append(rep.Scenarios, sc.Name)
	}
	rep.Seeds = seeds
	for _, sc := range scs {
		for _, seed := range seeds {
			res := Run(sc, seed, dir)
			rep.TotalRuns++
			if res.Failed() {
				rep.FailedRuns++
				rep.Failures = append(rep.Failures, res.Failures...)
			}
			if verbose != nil {
				status := "ok"
				if res.Failed() {
					status = "FAIL"
				}
				fmt.Fprintf(verbose, "%-14s seed=%-6d injected=%-5d %s\n",
					sc.Name, seed, res.Injected, status)
			}
			rep.Runs = append(rep.Runs, res)
		}
	}
	return rep
}
