package campaign

import (
	"reflect"
	"testing"

	"pmemlog/internal/chaos"
)

// TestEveryFaultSiteToleratedOrDetected is the table-driven acceptance
// bar from the campaign's contract, one row per scenario: every armed
// fault site must actually fire (or at least be exercised) and the run
// must come out clean — recovery rebuilt exactly the committed state
// for hardware faults, no acked write lost and full verdict-vs-replay
// agreement for network faults (including the conn-drop-mid-window
// path, which forces the client through reconnect-and-resend).
func TestEveryFaultSiteToleratedOrDetected(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			injected := uint64(0)
			for _, seed := range seeds {
				res := Run(sc, seed, t.TempDir())
				for _, f := range res.Failures {
					t.Errorf("%s", f)
				}
				injected += res.Injected
				if sc.Target == "server" {
					if res.AckedWrites == 0 {
						t.Errorf("seed %d: server run acked no writes", seed)
					}
					if res.AckedLost != 0 {
						t.Errorf("seed %d: %d acked write(s) lost", seed, res.AckedLost)
					}
					if !res.Agreement {
						t.Errorf("seed %d: verdicts disagree with recovery replay", seed)
					}
					if res.Counts[chaos.SiteConnDrop] == 0 {
						t.Errorf("seed %d: conn-drop never fired; client resend path unexercised", seed)
					}
				}
			}
			// The scenario must exercise what it arms. A single seed may
			// legitimately stay quiet (a crash cycle can land when the log
			// buffer holds nothing to tear), so the always-on scenarios
			// assert across the seed set; the probabilistic hardware sites
			// get their own sweep below.
			switch sc.Name {
			case "torn-log-line", "partial-drain", "combined", "net-faults":
				if injected == 0 {
					t.Errorf("%s: armed but injected nothing across seeds %v", sc.Name, seeds)
				}
			}
		})
	}
}

// TestProbabilisticSitesFireAcrossSweep: the lower-probability hardware
// sites (drop-fwb, delay-wb, bank-stall) are allowed quiet single runs,
// but a short sweep must inject at each — otherwise the scenario matrix
// is sweeping dead cells.
func TestProbabilisticSitesFireAcrossSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, name := range []string{"drop-fwb", "delay-wb", "bank-stall"} {
		sc, ok := FindScenario(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		total := uint64(0)
		for seed := int64(1); seed <= 3; seed++ {
			res := Run(sc, seed, t.TempDir())
			for _, f := range res.Failures {
				t.Errorf("%s", f)
			}
			total += res.Injected
		}
		if total == 0 {
			t.Errorf("%s: no injection across seeds 1..3", name)
		}
	}
}

// TestRunReplaysIdentically: the whole point of the seed discipline —
// re-running a (scenario, seed) cell reproduces the run bit-for-bit:
// same crash cycle, same fault schedule, same outcome.
func TestRunReplaysIdentically(t *testing.T) {
	sc, _ := FindScenario("combined")
	a := Run(sc, 11, t.TempDir())
	b := Run(sc, 11, t.TempDir())
	if a.CrashCycle != b.CrashCycle {
		t.Fatalf("crash cycles differ: %d vs %d", a.CrashCycle, b.CrashCycle)
	}
	if a.Injected != b.Injected || !reflect.DeepEqual(a.Counts, b.Counts) {
		t.Fatalf("fault schedules differ:\n%v %v\n%v %v", a.Injected, a.Counts, b.Injected, b.Counts)
	}
	if !reflect.DeepEqual(a.Failures, b.Failures) {
		t.Fatalf("outcomes differ:\n%v\n%v", a.Failures, b.Failures)
	}
}

// TestFailureMessagesLeadWithSeed: every failure string must reproduce
// the run from the reported seed alone.
func TestFailureMessagesLeadWithSeed(t *testing.T) {
	var r RunResult
	r.Scenario = "torn-log-line"
	r.Seed = 99
	r.failf("state mismatch at %#x", 0x1000)
	if want := "seed 99 [torn-log-line]: state mismatch at 0x1000"; r.Failures[0] != want {
		t.Fatalf("failure = %q, want %q", r.Failures[0], want)
	}
}

// TestFindScenario covers the lookup used by pmchaos -scenarios.
func TestFindScenario(t *testing.T) {
	if _, ok := FindScenario("torn-log-line"); !ok {
		t.Fatal("torn-log-line missing from the matrix")
	}
	if _, ok := FindScenario("no-such-cell"); ok {
		t.Fatal("unknown scenario resolved")
	}
	if n := len(Scenarios()); n < 6 {
		t.Fatalf("scenario matrix has %d cells, acceptance bar needs >= 6", n)
	}
}
