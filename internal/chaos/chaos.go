// Package chaos is the deterministic fault-injection plane: a single
// seeded RNG plus per-fault-site triggers drive injection at named sites
// across the simulated machine (torn log lines and partial log-buffer
// drains in the memory controller, dropped forced write-backs in the
// cache hierarchy, delayed write-backs and stalled banks in the NVRAM
// device) and the server's network path (connection drops mid-window,
// delayed/duplicated acks, spurious retry backpressure).
//
// Every fault a run injects is recorded in a Ledger keyed by the plan's
// seed, so a failing run reproduces from `-seed N` alone and a flight
// dump carries the full injection history next to the crash evidence.
//
// The package is intentionally standard-library-only: the memory
// controller, NVRAM device, cache hierarchy, sim, server, and flight
// recorder all import it, and it must sit below every one of them in
// the dependency order. The campaign engine that needs those packages
// lives in chaos/campaign instead.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
)

// Site names one fault-injection point. The string is stable: it keys
// plans, ledgers, and campaign reports.
type Site string

const (
	// SiteTornLogLine tears an in-flight log-line transfer at power
	// loss: a random prefix of the line reaches the DIMM, the rest
	// reverts — the exact state the torn-bit/magic/pass-stamp decode
	// check must reject (paper Section IV-B).
	SiteTornLogLine Site = "torn-log-line"
	// SitePartialDrain models a log-buffer drain racing power loss: a
	// buffered-but-undrained slot lands partially in NVRAM instead of
	// vanishing entirely.
	SitePartialDrain Site = "partial-drain"
	// SiteDropFWB makes one FWB scan pass skip forcing a flagged dirty
	// line (the write-back is dropped; the line stays dirty and is
	// retried next scan). Log truncation must keep waiting.
	SiteDropFWB Site = "drop-fwb"
	// SiteDelayWB extends a data write-back's completion by Arg cycles,
	// reordering completions across banks; truncation gates on actual
	// completion, not issue order.
	SiteDelayWB Site = "delay-wb"
	// SiteBankStall holds an NVRAM bank busy for Arg extra cycles
	// before an access starts (a slow PCM bank).
	SiteBankStall Site = "bank-stall"
	// SiteConnDrop closes a server connection mid-pipeline-window,
	// before a response frame goes out.
	SiteConnDrop Site = "conn-drop"
	// SiteDelayAck sleeps Arg nanoseconds before writing an ack frame.
	SiteDelayAck Site = "delay-ack"
	// SiteDupAck writes an ack frame twice; the client must drop the
	// duplicate instead of dying.
	SiteDupAck Site = "dup-ack"
	// SiteSpuriousRetry answers a routable request with StatusRetry,
	// exercising the client's transparent resend path.
	SiteSpuriousRetry Site = "spurious-retry"
)

// Sites lists every known site in stable order.
func Sites() []Site {
	return []Site{
		SiteTornLogLine, SitePartialDrain, SiteDropFWB, SiteDelayWB,
		SiteBankStall, SiteConnDrop, SiteDelayAck, SiteDupAck,
		SiteSpuriousRetry,
	}
}

// SiteConfig arms one site. Exactly one of Prob/Every selects the
// trigger; both zero leaves the site disarmed.
type SiteConfig struct {
	// Prob fires each opportunity independently with this probability
	// (drawn from the injector's seeded RNG — deterministic wherever
	// opportunities arrive in a deterministic order, i.e. the whole
	// simulated machine).
	Prob float64 `json:"prob,omitempty"`
	// Every fires on every Nth opportunity (count-based: deterministic
	// at the fault-schedule level even when opportunities race across
	// goroutines, which is what the server's network sites need).
	Every uint64 `json:"every,omitempty"`
	// Max caps the total injections at this site; 0 = unlimited.
	Max uint64 `json:"max,omitempty"`
	// Arg is the site-specific magnitude: stall/delay cycles for the
	// timing sites, nanoseconds for delay-ack.
	Arg uint64 `json:"arg,omitempty"`
}

// Plan is one run's complete fault schedule: the seed and the armed
// sites. An empty Sites map injects nothing (but still stamps the seed
// into the ledger).
type Plan struct {
	Seed  int64               `json:"seed"`
	Sites map[Site]SiteConfig `json:"sites,omitempty"`
}

// Fault is one ledger entry: the nth injection overall, at which site,
// on which opportunity count, with what address/argument.
type Fault struct {
	Seq   uint64 `json:"seq"`
	Site  Site   `json:"site"`
	Count uint64 `json:"count"` // site opportunity counter when it fired
	Addr  uint64 `json:"addr,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
}

// Ledger is the injection history a run leaves behind — embedded in
// flight dumps and campaign reports so every verdict can be read next
// to the exact faults that produced it.
type Ledger struct {
	Seed     int64           `json:"seed"`
	Injected uint64          `json:"injected"`
	Counts   map[Site]uint64 `json:"counts,omitempty"` // injections per site
	// Opportunities counts every evaluation per armed site — proof the
	// site was actually exercised even when nothing fired.
	Opportunities map[Site]uint64 `json:"opportunities,omitempty"`
	Faults        []Fault         `json:"faults,omitempty"` // first ledgerCap, in order
	Dropped       uint64          `json:"dropped,omitempty"`
}

// ledgerCap bounds the per-run fault list; counts stay exact beyond it.
const ledgerCap = 4096

// Injector evaluates a Plan at run time. The root injector owns the
// shared state (ledger, per-site counters) behind one mutex; Fork
// derives named children with independent — but seed-deterministic —
// RNG streams for components that draw concurrently.
type Injector struct {
	plan Plan
	name string
	rng  *rand.Rand

	shared *sharedState
}

// sharedState is the mutex-protected cross-fork state.
type sharedState struct {
	mu            sync.Mutex
	seq           uint64
	opportunities map[Site]uint64
	injected      map[Site]uint64
	faults        []Fault
	dropped       uint64
}

// New builds the root injector for a plan.
func New(plan Plan) *Injector {
	return &Injector{
		plan: plan,
		name: "root",
		rng:  rand.New(rand.NewSource(plan.Seed)),
		shared: &sharedState{
			opportunities: make(map[Site]uint64),
			injected:      make(map[Site]uint64),
		},
	}
}

// Fork derives a child injector whose RNG stream is a pure function of
// (seed, name): components that evaluate probabilities on their own
// goroutine (a server shard, a connection writer) each fork so
// scheduling noise in one stream cannot perturb another. Ledger and
// counters stay shared with the root.
func (in *Injector) Fork(name string) *Injector {
	if in == nil {
		return nil
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", in.plan.Seed, name)
	return &Injector{
		plan:   in.plan,
		name:   name,
		rng:    rand.New(rand.NewSource(int64(h.Sum64()))),
		shared: in.shared,
	}
}

// Seed reports the plan's seed (printed in every failure message).
func (in *Injector) Seed() int64 { return in.plan.Seed }

// Plan returns the plan the injector evaluates.
func (in *Injector) Plan() Plan { return in.plan }

// hit evaluates one opportunity at site under the shared lock.
func (in *Injector) hit(site Site, addr, arg uint64) bool {
	cfg, armed := in.plan.Sites[site]
	if !armed || (cfg.Prob <= 0 && cfg.Every == 0) {
		return false
	}
	st := in.shared
	st.mu.Lock()
	defer st.mu.Unlock()
	st.opportunities[site]++
	n := st.opportunities[site]
	if cfg.Max > 0 && st.injected[site] >= cfg.Max {
		return false
	}
	fire := false
	switch {
	case cfg.Every > 0:
		fire = n%cfg.Every == 0
	default:
		fire = in.rng.Float64() < cfg.Prob
	}
	if !fire {
		return false
	}
	st.seq++
	st.injected[site]++
	if len(st.faults) < ledgerCap {
		st.faults = append(st.faults, Fault{
			Seq: st.seq, Site: site, Count: n, Addr: addr, Arg: arg,
		})
	} else {
		st.dropped++
	}
	return true
}

// Hit reports whether to inject at this opportunity, recording the
// fault in the ledger when it fires. Nil-safe: a nil injector never
// fires, so call sites need no guard beyond the pointer check they
// already do for tracers.
func (in *Injector) Hit(site Site, addr uint64) bool {
	if in == nil {
		return false
	}
	return in.hit(site, addr, 0)
}

// HitArg is Hit plus the site's configured magnitude (stall cycles,
// delay nanoseconds). The magnitude is recorded in the ledger entry.
func (in *Injector) HitArg(site Site, addr uint64) (uint64, bool) {
	if in == nil {
		return 0, false
	}
	arg := in.plan.Sites[site].Arg
	if !in.hit(site, addr, arg) {
		return 0, false
	}
	return arg, true
}

// HitFrac is Hit plus a deterministic fraction in (0,1) drawn from the
// injector's RNG — the torn-prefix length for partial-write sites. The
// fraction (in parts per thousand) lands in the ledger's Arg.
func (in *Injector) HitFrac(site Site, addr uint64) (float64, bool) {
	if in == nil {
		return 0, false
	}
	st := in.shared
	st.mu.Lock()
	frac := in.rng.Float64()
	st.mu.Unlock()
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	if !in.hit(site, addr, uint64(frac*1000)) {
		return 0, false
	}
	return frac, true
}

// Injected reports the total number of faults injected so far.
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	st := in.shared
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq
}

// Ledger snapshots the injection history (safe to call concurrently
// with live injection; the snapshot is a deep copy).
func (in *Injector) Ledger() *Ledger {
	if in == nil {
		return nil
	}
	st := in.shared
	st.mu.Lock()
	defer st.mu.Unlock()
	l := &Ledger{
		Seed:     in.plan.Seed,
		Injected: st.seq,
		Dropped:  st.dropped,
		Faults:   append([]Fault(nil), st.faults...),
	}
	if len(st.injected) > 0 {
		l.Counts = make(map[Site]uint64, len(st.injected))
		for s, n := range st.injected {
			l.Counts[s] = n
		}
	}
	if len(st.opportunities) > 0 {
		l.Opportunities = make(map[Site]uint64, len(st.opportunities))
		for s, n := range st.opportunities {
			l.Opportunities[s] = n
		}
	}
	return l
}

// String renders the ledger compactly: seed, total, per-site counts.
func (l *Ledger) String() string {
	if l == nil {
		return "chaos: none"
	}
	s := fmt.Sprintf("chaos seed=%d injected=%d", l.Seed, l.Injected)
	sites := make([]string, 0, len(l.Counts))
	for site := range l.Counts {
		sites = append(sites, string(site))
	}
	sort.Strings(sites)
	for _, site := range sites {
		s += fmt.Sprintf(" %s=%d", site, l.Counts[Site(site)])
	}
	return s
}
