package whisper

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// CTree models WHISPER's ctree: a crit-bit (binary radix) tree keyed by
// 64-bit integers, with insert-if-absent / remove-if-found transactions.
//
// NVRAM layout (one tree per thread):
//
//	header (line): [rootPtr]  (0 = empty)
//	internal node: [tag=1, critBit, left, right]
//	leaf node:     [tag=0, key, value]
//
// Crit-bit trees branch on the highest bit position where keys differ;
// internal nodes store that bit index.
type CTree struct {
	cfg   Config
	sys   *sim.System
	roots []mem.Addr
}

// NewCTree builds the kernel.
func NewCTree(cfg Config) *CTree { return &CTree{cfg: cfg} }

// Name implements Workload.
func (c *CTree) Name() string { return "ctree" }

const (
	ctTag   = 0
	ctBit   = 1 // internal: crit-bit index; leaf: key
	ctLeft  = 2 // internal: left child; leaf: value
	ctRight = 3
)

const ctNodeBytes = 4 * mem.WordSize

// Setup implements Workload: populates every other key.
func (c *CTree) Setup(s *sim.System) error {
	c.sys = s
	c.roots = make([]mem.Addr, c.cfg.Threads)
	setup := s.SetupCtx()
	for t := 0; t < c.cfg.Threads; t++ {
		hdr, err := s.Heap().AllocLine(mem.WordSize)
		if err != nil {
			return fmt.Errorf("ctree: %w", err)
		}
		setup.Store(hdr, 0)
		c.roots[t] = hdr
	}
	per := uint64(c.cfg.Records) / uint64(c.cfg.Threads)
	for t := 0; t < c.cfg.Threads; t++ {
		base := uint64(t) * per
		for k := base; k < base+per; k += 2 {
			c.InsertOrRemove(setup, t, k)
		}
	}
	return nil
}

type ct struct {
	c       *CTree
	ctx     sim.Ctx
	rootPtr mem.Addr
}

func (t *ct) load(n mem.Addr, f int) mem.Word { return t.ctx.Load(n + mem.Addr(f*mem.WordSize)) }
func (t *ct) store(n mem.Addr, f int, w mem.Word) {
	t.ctx.Store(n+mem.Addr(f*mem.WordSize), w)
}

func (t *ct) isLeaf(n mem.Addr) bool { return t.load(n, ctTag) == 0 }

// walk descends to the leaf a key would reach.
func (t *ct) walk(key uint64) (leaf mem.Addr, parentLink mem.Addr) {
	parentLink = t.rootPtr
	n := mem.Addr(t.ctx.Load(parentLink))
	for n != 0 && !t.isLeaf(n) {
		bit := uint(t.load(n, ctBit))
		t.ctx.Compute(4)
		if key&(1<<bit) == 0 {
			parentLink = n + ctLeft*mem.WordSize
		} else {
			parentLink = n + ctRight*mem.WordSize
		}
		n = mem.Addr(t.ctx.Load(parentLink))
	}
	return n, parentLink
}

// InsertOrRemove is the kernel transaction.
func (c *CTree) InsertOrRemove(ctx sim.Ctx, thread int, key uint64) bool {
	ctx.TxBegin()
	defer ctx.TxCommit()
	t := &ct{c: c, ctx: ctx, rootPtr: c.roots[thread]}

	leaf, link := t.walk(key)
	if leaf != 0 && uint64(t.load(leaf, ctBit)) == key {
		c.remove(t, key)
		return false
	}
	// Insert: new leaf; if the tree is non-empty, splice an internal node
	// at the topmost position where the crit bit orders correctly.
	nl, err := c.sys.Heap().Alloc(ctNodeBytes)
	if err != nil {
		panic(fmt.Sprintf("ctree: %v", err))
	}
	t.store(nl, ctTag, 0)
	t.store(nl, ctBit, mem.Word(key)) // leaf key
	t.store(nl, ctLeft, mem.Word(key*0x9e3779b97f4a7c15))
	if leaf == 0 {
		t.ctx.Store(link, mem.Word(nl))
		return true
	}
	other := uint64(t.load(leaf, ctBit))
	diff := key ^ other
	bit := uint(63)
	for diff&(1<<bit) == 0 {
		bit--
		t.ctx.Compute(1)
	}
	// Re-walk from the root, stopping where this crit bit belongs (crit-bit
	// trees keep bit indexes decreasing along every path).
	parentLink := t.rootPtr
	n := mem.Addr(t.ctx.Load(parentLink))
	for n != 0 && !t.isLeaf(n) && uint(t.load(n, ctBit)) > bit {
		b := uint(t.load(n, ctBit))
		t.ctx.Compute(4)
		if key&(1<<b) == 0 {
			parentLink = n + ctLeft*mem.WordSize
		} else {
			parentLink = n + ctRight*mem.WordSize
		}
		n = mem.Addr(t.ctx.Load(parentLink))
	}
	in, err := c.sys.Heap().Alloc(ctNodeBytes)
	if err != nil {
		panic(fmt.Sprintf("ctree: %v", err))
	}
	t.store(in, ctTag, 1)
	t.store(in, ctBit, mem.Word(bit))
	if key&(1<<bit) == 0 {
		t.store(in, ctLeft, mem.Word(nl))
		t.store(in, ctRight, mem.Word(n))
	} else {
		t.store(in, ctLeft, mem.Word(n))
		t.store(in, ctRight, mem.Word(nl))
	}
	t.ctx.Store(parentLink, mem.Word(in))
	return true
}

// remove deletes key's leaf, collapsing its parent internal node.
func (c *CTree) remove(t *ct, key uint64) {
	// Walk with grandparent tracking.
	var parent mem.Addr
	parentLink := t.rootPtr
	var grandLink mem.Addr
	n := mem.Addr(t.ctx.Load(parentLink))
	for !t.isLeaf(n) {
		bit := uint(t.load(n, ctBit))
		t.ctx.Compute(4)
		grandLink = parentLink
		parent = n
		if key&(1<<bit) == 0 {
			parentLink = n + ctLeft*mem.WordSize
		} else {
			parentLink = n + ctRight*mem.WordSize
		}
		n = mem.Addr(t.ctx.Load(parentLink))
	}
	if parent == 0 {
		// Leaf was the root.
		t.ctx.Store(t.rootPtr, 0)
	} else {
		// Replace parent with the sibling subtree.
		var sibling mem.Word
		if parentLink == parent+ctLeft*mem.WordSize {
			sibling = t.load(parent, ctRight)
		} else {
			sibling = t.load(parent, ctLeft)
		}
		t.ctx.Store(grandLink, sibling)
		c.sys.Heap().Free(parent, ctNodeBytes)
	}
	c.sys.Heap().Free(n, ctNodeBytes)
}

// Contains reports membership (verification helper).
func (c *CTree) Contains(ctx sim.Ctx, thread int, key uint64) bool {
	t := &ct{c: c, ctx: ctx, rootPtr: c.roots[thread]}
	leaf, _ := t.walk(key)
	return leaf != 0 && uint64(t.load(leaf, ctBit)) == key
}

// Run implements Workload.
func (c *CTree) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(c.cfg.Seed, thread)
	per := uint64(c.cfg.Records) / uint64(c.cfg.Threads)
	base := uint64(thread) * per
	for i := 0; i < c.cfg.TxnsPerThread; i++ {
		key := base + uint64(rng.Int63())%per
		c.InsertOrRemove(ctx, thread, key)
		ctx.Compute(18)
	}
}
