package whisper

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// Memcached models WHISPER's memcached: a bounded key-value cache with a
// hash index and an LRU list. Its signature persistent-memory behaviour is
// that even GETs write: a hit splices the item to the LRU head (several
// pointer stores inside a transaction), and a SET over capacity evicts the
// LRU tail. One cache partition per thread.
//
// NVRAM layout per partition:
//
//	header (line): [lruHead, lruTail, count]
//	buckets: nBuckets words
//	item: [key, hnext, lprev, lnext, value x 4]  (8 words)
type Memcached struct {
	cfg      Config
	sys      *sim.System
	headers  []mem.Addr
	buckets  []mem.Addr
	nBuckets int
	capacity int // max items per partition
}

// NewMemcached builds the kernel. Records is the key space per partition;
// the cache holds half of it, so misses and evictions are routine.
func NewMemcached(cfg Config) *Memcached {
	return &Memcached{cfg: cfg}
}

// Name implements Workload.
func (m *Memcached) Name() string { return "memcached" }

const (
	mcKey   = 0
	mcHNext = 1
	mcLPrev = 2
	mcLNext = 3
	mcVal   = 4

	mcItemWords = 8

	mcHead  = 0
	mcTail  = 1
	mcCount = 2
)

func mcItemBytes() uint64 { return mcItemWords * mem.WordSize }

// Setup implements Workload.
func (m *Memcached) Setup(s *sim.System) error {
	m.sys = s
	per := m.cfg.Records / m.cfg.Threads
	m.capacity = per / 2
	if m.capacity < 4 {
		m.capacity = 4
	}
	m.nBuckets = per / 2
	if m.nBuckets < 16 {
		m.nBuckets = 16
	}
	setup := s.SetupCtx()
	for t := 0; t < m.cfg.Threads; t++ {
		hdr, err := s.Heap().AllocLine(3 * mem.WordSize)
		if err != nil {
			return fmt.Errorf("memcached: %w", err)
		}
		bkt, err := s.Heap().AllocLine(uint64(m.nBuckets * mem.WordSize))
		if err != nil {
			return fmt.Errorf("memcached: %w", err)
		}
		setup.Store(hdr+mcHead*mem.WordSize, 0)
		setup.Store(hdr+mcTail*mem.WordSize, 0)
		setup.Store(hdr+mcCount*mem.WordSize, 0)
		for i := 0; i < m.nBuckets; i++ {
			setup.Store(bkt+mem.Addr(i*mem.WordSize), 0)
		}
		m.headers = append(m.headers, hdr)
		m.buckets = append(m.buckets, bkt)
	}
	// Warm the cache to capacity through the normal SET path.
	for t := 0; t < m.cfg.Threads; t++ {
		base := uint64(t) * uint64(per)
		for k := 0; k < m.capacity; k++ {
			m.Set(setup, t, base+uint64(k), uint64(k))
		}
	}
	return nil
}

type mcPart struct {
	m      *Memcached
	ctx    sim.Ctx
	hdr    mem.Addr
	bkt    mem.Addr
	thread int
}

func (m *Memcached) part(ctx sim.Ctx, thread int) *mcPart {
	return &mcPart{m: m, ctx: ctx, hdr: m.headers[thread], bkt: m.buckets[thread], thread: thread}
}

func (p *mcPart) field(item mem.Addr, f int) mem.Word {
	return p.ctx.Load(item + mem.Addr(f*mem.WordSize))
}
func (p *mcPart) setField(item mem.Addr, f int, v mem.Word) {
	p.ctx.Store(item+mem.Addr(f*mem.WordSize), v)
}
func (p *mcPart) hd(f int) mem.Word       { return p.ctx.Load(p.hdr + mem.Addr(f*mem.WordSize)) }
func (p *mcPart) setHd(f int, v mem.Word) { p.ctx.Store(p.hdr+mem.Addr(f*mem.WordSize), v) }
func (p *mcPart) bucketOf(key uint64) mem.Addr {
	per := uint64(p.m.cfg.Records / p.m.cfg.Threads)
	idx := (key % per) * uint64(p.m.nBuckets) / per
	if idx >= uint64(p.m.nBuckets) {
		idx = uint64(p.m.nBuckets) - 1
	}
	return p.bkt + mem.Addr(idx*mem.WordSize)
}

// lookup returns (item, hash-link-to-item).
func (p *mcPart) lookup(key uint64) (mem.Addr, mem.Addr) {
	link := p.bucketOf(key)
	cur := mem.Addr(p.ctx.Load(link))
	for cur != 0 {
		p.ctx.Compute(4)
		if uint64(p.field(cur, mcKey)) == key {
			return cur, link
		}
		link = cur + mcHNext*mem.WordSize
		cur = mem.Addr(p.ctx.Load(link))
	}
	return 0, link
}

// lruUnlink removes item from the LRU list.
func (p *mcPart) lruUnlink(item mem.Addr) {
	prev := mem.Addr(p.field(item, mcLPrev))
	next := mem.Addr(p.field(item, mcLNext))
	if prev != 0 {
		p.setField(prev, mcLNext, mem.Word(next))
	} else {
		p.setHd(mcHead, mem.Word(next))
	}
	if next != 0 {
		p.setField(next, mcLPrev, mem.Word(prev))
	} else {
		p.setHd(mcTail, mem.Word(prev))
	}
}

// lruPushHead makes item the most recently used.
func (p *mcPart) lruPushHead(item mem.Addr) {
	head := mem.Addr(p.hd(mcHead))
	p.setField(item, mcLPrev, 0)
	p.setField(item, mcLNext, mem.Word(head))
	if head != 0 {
		p.setField(head, mcLPrev, mem.Word(item))
	}
	p.setHd(mcHead, mem.Word(item))
	if p.hd(mcTail) == 0 {
		p.setHd(mcTail, mem.Word(item))
	}
}

// Get looks key up; on a hit the item is moved to the LRU head (the
// cache's write-on-read behaviour). Returns the first value word.
func (m *Memcached) Get(ctx sim.Ctx, thread int, key uint64) (mem.Word, bool) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	p := m.part(ctx, thread)
	item, _ := p.lookup(key)
	if item == 0 {
		return 0, false
	}
	if mem.Addr(p.hd(mcHead)) != item {
		p.lruUnlink(item)
		p.lruPushHead(item)
	}
	return p.field(item, mcVal), true
}

// Set inserts or updates key; over capacity it evicts the LRU tail.
func (m *Memcached) Set(ctx sim.Ctx, thread int, key, tag uint64) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	p := m.part(ctx, thread)

	if item, _ := p.lookup(key); item != 0 {
		fill(ctx, item+mcVal*mem.WordSize, 4, tag)
		if mem.Addr(p.hd(mcHead)) != item {
			p.lruUnlink(item)
			p.lruPushHead(item)
		}
		return
	}

	// Evict the tail if at capacity.
	count := int(p.hd(mcCount))
	if count >= m.capacity {
		tail := mem.Addr(p.hd(mcTail))
		if tail != 0 {
			p.lruUnlink(tail)
			// Unlink from its hash chain: lookup returns the address of
			// the pointer referring to the item.
			if item, link := p.lookup(uint64(p.field(tail, mcKey))); item != 0 {
				p.ctx.Store(link, p.field(item, mcHNext))
			}
			m.sys.Heap().Free(tail, mcItemBytes())
			count--
		}
	}

	item, err := m.sys.Heap().Alloc(mcItemBytes())
	if err != nil {
		panic(fmt.Sprintf("memcached: %v", err))
	}
	bkt := p.bucketOf(key)
	head := ctx.Load(bkt)
	p.setField(item, mcKey, mem.Word(key))
	p.setField(item, mcHNext, head)
	fill(ctx, item+mcVal*mem.WordSize, 4, tag)
	ctx.Store(bkt, mem.Word(item))
	p.lruPushHead(item)
	p.setHd(mcCount, mem.Word(count+1))
}

// Count returns the partition's item count (verification helper).
func (m *Memcached) Count(ctx sim.Ctx, thread int) int {
	return int(ctx.Load(m.headers[thread] + mcCount*mem.WordSize))
}

// Run implements Workload: 80% GET / 20% SET over a zipf-less uniform mix
// (memcached's hot keys come from the LRU itself).
func (m *Memcached) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(m.cfg.Seed, thread)
	per := uint64(m.cfg.Records / m.cfg.Threads)
	base := uint64(thread) * per
	for i := 0; i < m.cfg.TxnsPerThread; i++ {
		key := base + uint64(rng.Int63())%per
		if rng.Intn(10) < 8 {
			m.Get(ctx, thread, key)
		} else {
			m.Set(ctx, thread, key, uint64(i))
		}
		ctx.Compute(20)
	}
}
