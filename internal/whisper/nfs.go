package whisper

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// NFS models WHISPER's nfs: a filesystem-metadata server whose persistent
// transactions create, append to, and unlink files — inode initialization,
// directory-entry insertion/removal, and size/mtime/block-map updates.
// One directory tree per thread.
//
// NVRAM layout per partition:
//
//	dir buckets: nBuckets words (dentry chain heads)
//	dentry: [nameHash, inode, next]                 (3 words)
//	inode (line aligned): [mode, size, mtime, nlink, blocks x 4]
const (
	nfsInodeWords  = 8
	nfsDentryWords = 3

	inoMode  = 0
	inoSize  = 1
	inoMtime = 2
	inoNlink = 3
	inoBlock = 4
)

type NFS struct {
	cfg      Config
	sys      *sim.System
	buckets  []mem.Addr
	nBuckets int
}

// NewNFS builds the kernel. Records is the name space per partition.
func NewNFS(cfg Config) *NFS { return &NFS{cfg: cfg} }

// Name implements Workload.
func (n *NFS) Name() string { return "nfs" }

// Setup implements Workload.
func (n *NFS) Setup(s *sim.System) error {
	n.sys = s
	per := n.cfg.Records / n.cfg.Threads
	n.nBuckets = per / 2
	if n.nBuckets < 16 {
		n.nBuckets = 16
	}
	setup := s.SetupCtx()
	for t := 0; t < n.cfg.Threads; t++ {
		b, err := s.Heap().AllocLine(uint64(n.nBuckets * mem.WordSize))
		if err != nil {
			return fmt.Errorf("nfs: %w", err)
		}
		for i := 0; i < n.nBuckets; i++ {
			setup.Store(b+mem.Addr(i*mem.WordSize), 0)
		}
		n.buckets = append(n.buckets, b)
	}
	// Pre-create half the namespace.
	for t := 0; t < n.cfg.Threads; t++ {
		base := uint64(t) * uint64(per)
		for k := base; k < base+uint64(per); k += 2 {
			n.Create(setup, t, k, 0)
		}
	}
	return nil
}

func (n *NFS) bucketOf(thread int, name uint64) mem.Addr {
	per := uint64(n.cfg.Records / n.cfg.Threads)
	idx := (name % per) * uint64(n.nBuckets) / per
	if idx >= uint64(n.nBuckets) {
		idx = uint64(n.nBuckets) - 1
	}
	return n.buckets[thread] + mem.Addr(idx*mem.WordSize)
}

// lookup returns (dentry, link-to-dentry) for a name.
func (n *NFS) lookup(ctx sim.Ctx, thread int, name uint64) (mem.Addr, mem.Addr) {
	link := n.bucketOf(thread, name)
	cur := mem.Addr(ctx.Load(link))
	for cur != 0 {
		ctx.Compute(4)
		if uint64(ctx.Load(cur)) == name {
			return cur, link
		}
		link = cur + 2*mem.WordSize
		cur = mem.Addr(ctx.Load(link))
	}
	return 0, link
}

// Create allocates and initializes an inode and links a dentry — a no-op
// if the name exists. Returns true if it created.
func (n *NFS) Create(ctx sim.Ctx, thread int, name, mtime uint64) bool {
	ctx.TxBegin()
	defer ctx.TxCommit()
	if d, _ := n.lookup(ctx, thread, name); d != 0 {
		return false
	}
	ino, err := n.sys.Heap().AllocLine(nfsInodeWords * mem.WordSize)
	if err != nil {
		panic(fmt.Sprintf("nfs: %v", err))
	}
	ctx.Store(ino+inoMode*mem.WordSize, 0o644)
	ctx.Store(ino+inoSize*mem.WordSize, 0)
	ctx.Store(ino+inoMtime*mem.WordSize, mem.Word(mtime))
	ctx.Store(ino+inoNlink*mem.WordSize, 1)
	for b := 0; b < 4; b++ {
		ctx.Store(ino+mem.Addr((inoBlock+b)*mem.WordSize), 0)
	}
	dent, err := n.sys.Heap().Alloc(nfsDentryWords * mem.WordSize)
	if err != nil {
		panic(fmt.Sprintf("nfs: %v", err))
	}
	bkt := n.bucketOf(thread, name)
	head := ctx.Load(bkt)
	ctx.Store(dent, mem.Word(name))
	ctx.Store(dent+mem.WordSize, mem.Word(ino))
	ctx.Store(dent+2*mem.WordSize, head)
	ctx.Store(bkt, mem.Word(dent))
	return true
}

// Append grows a file: bump size, stamp mtime, record a block pointer.
func (n *NFS) Append(ctx sim.Ctx, thread int, name, mtime, blockPtr uint64) bool {
	ctx.TxBegin()
	defer ctx.TxCommit()
	d, _ := n.lookup(ctx, thread, name)
	if d == 0 {
		return false
	}
	ino := mem.Addr(ctx.Load(d + mem.WordSize))
	size := ctx.Load(ino + inoSize*mem.WordSize)
	ctx.Compute(10) // block math
	ctx.Store(ino+inoSize*mem.WordSize, size+4096)
	ctx.Store(ino+inoMtime*mem.WordSize, mem.Word(mtime))
	slot := uint64(size/4096) % 4
	ctx.Store(ino+mem.Addr((inoBlock+slot)*mem.WordSize), mem.Word(blockPtr))
	return true
}

// Unlink removes the dentry and frees the inode.
func (n *NFS) Unlink(ctx sim.Ctx, thread int, name uint64) bool {
	ctx.TxBegin()
	defer ctx.TxCommit()
	d, link := n.lookup(ctx, thread, name)
	if d == 0 {
		return false
	}
	ino := mem.Addr(ctx.Load(d + mem.WordSize))
	nlink := ctx.Load(ino + inoNlink*mem.WordSize)
	ctx.Store(ino+inoNlink*mem.WordSize, nlink-1)
	next := ctx.Load(d + 2*mem.WordSize)
	ctx.Store(link, next)
	n.sys.Heap().Free(d, nfsDentryWords*mem.WordSize)
	n.sys.Heap().Free(ino, nfsInodeWords*mem.WordSize)
	return true
}

// Stat reads an inode (verification helper). Returns size, ok.
func (n *NFS) Stat(ctx sim.Ctx, thread int, name uint64) (mem.Word, bool) {
	d, _ := n.lookup(ctx, thread, name)
	if d == 0 {
		return 0, false
	}
	ino := mem.Addr(ctx.Load(d + mem.WordSize))
	return ctx.Load(ino + inoSize*mem.WordSize), true
}

// Run implements Workload: 50% appends, 25% creates, 25% unlinks — the
// metadata-update-heavy mix of an NFS server under write load.
func (n *NFS) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(n.cfg.Seed, thread)
	per := uint64(n.cfg.Records / n.cfg.Threads)
	base := uint64(thread) * per
	for i := 0; i < n.cfg.TxnsPerThread; i++ {
		name := base + uint64(rng.Int63())%per
		switch r := rng.Intn(4); {
		case r < 2:
			if !n.Append(ctx, thread, name, uint64(i), uint64(rng.Int63())) {
				n.Create(ctx, thread, name, uint64(i))
			}
		case r == 2:
			n.Create(ctx, thread, name, uint64(i))
		default:
			n.Unlink(ctx, thread, name)
		}
		ctx.Compute(25) // RPC decode / attribute marshaling
	}
}
