package whisper

import (
	"fmt"
	"math/rand"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// YCSB models WHISPER's ycsb (workload A): 50% reads / 50% updates over a
// table of ~100 B rows with a zipfian key distribution. Rows live in a
// flat table (the store behind YCSB is keyed by record number).
//
// NVRAM layout: Records rows x 13 words (104 B), line aligned per row.
const ycsbRowWords = 13

type YCSB struct {
	cfg  Config
	sys  *sim.System
	rows mem.Addr
}

// NewYCSB builds the kernel.
func NewYCSB(cfg Config) *YCSB { return &YCSB{cfg: cfg} }

// Name implements Workload.
func (y *YCSB) Name() string { return "ycsb" }

func ycsbRowStride() int {
	return (ycsbRowWords*mem.WordSize + mem.LineSize - 1) &^ (mem.LineSize - 1)
}

// Setup implements Workload.
func (y *YCSB) Setup(s *sim.System) error {
	y.sys = s
	a, err := s.Heap().AllocLine(uint64(y.cfg.Records * ycsbRowStride()))
	if err != nil {
		return fmt.Errorf("ycsb: %w", err)
	}
	y.rows = a
	setup := s.SetupCtx()
	for r := 0; r < y.cfg.Records; r++ {
		fill(setup, y.Row(r), ycsbRowWords, uint64(r))
	}
	return nil
}

// Row returns the address of record r.
func (y *YCSB) Row(r int) mem.Addr { return y.rows + mem.Addr(r*ycsbRowStride()) }

// Read is the read transaction: load the whole row.
func (y *YCSB) Read(ctx sim.Ctx, r int) mem.Word {
	ctx.TxBegin()
	defer ctx.TxCommit()
	var v mem.Word
	for i := 0; i < ycsbRowWords; i++ {
		v ^= ctx.Load(y.Row(r) + mem.Addr(i*mem.WordSize))
		ctx.Compute(2)
	}
	return v
}

// Update is the update transaction: rewrite one field (YCSB updates one
// field of ten by default) plus the row's version word.
func (y *YCSB) Update(ctx sim.Ctx, r, field int, tag uint64) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	row := y.Row(r)
	ver := ctx.Load(row)
	ctx.Store(row, ver+1)
	ctx.Store(row+mem.Addr((1+field%10)*mem.WordSize), mem.Word(tag))
}

// Run implements Workload: zipfian over the thread's partition, 50/50
// read/update (workload A).
func (y *YCSB) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(y.cfg.Seed, thread)
	per := y.cfg.Records / y.cfg.Threads
	base := thread * per
	zipf := rand.NewZipf(rng, 1.1, 2.0, uint64(per-1))
	for i := 0; i < y.cfg.TxnsPerThread; i++ {
		r := base + int(zipf.Uint64())
		if rng.Intn(2) == 0 {
			y.Read(ctx, r)
		} else {
			y.Update(ctx, r, rng.Intn(10), uint64(i))
		}
		ctx.Compute(12)
	}
}
