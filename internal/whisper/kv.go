package whisper

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// kvStore is a chained hash map over NVRAM shared by the hashmap, redis,
// and ycsb kernels (their data structure is the same; the transaction
// mixes differ).
//
// NVRAM layout (per thread partition):
//
//	buckets: nBuckets head pointers
//	node: [key, next, value[0..valueWords)]
type kvStore struct {
	sys        *sim.System
	buckets    mem.Addr
	nBuckets   int
	keySpace   uint64
	valueWords int
}

const (
	kvKey  = 0
	kvNext = 1
	kvVal  = 2
)

func (kv *kvStore) nodeBytes() uint64 {
	return uint64((2 + kv.valueWords) * mem.WordSize)
}

func newKVStore(s *sim.System, keySpace uint64, valueWords int) (*kvStore, error) {
	n := int(keySpace / 2)
	if n < 16 {
		n = 16
	}
	b, err := s.Heap().AllocLine(uint64(n * mem.WordSize))
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	setup := s.SetupCtx()
	for i := 0; i < n; i++ {
		setup.Store(b+mem.Addr(i*mem.WordSize), 0)
	}
	return &kvStore{sys: s, buckets: b, nBuckets: n, keySpace: keySpace, valueWords: valueWords}, nil
}

// bucketOf range-partitions keys (see bench.Hash for why).
func (kv *kvStore) bucketOf(key uint64) mem.Addr {
	idx := key * uint64(kv.nBuckets) / kv.keySpace
	if idx >= uint64(kv.nBuckets) {
		idx = uint64(kv.nBuckets) - 1
	}
	return kv.buckets + mem.Addr(idx*mem.WordSize)
}

// lookup returns (node, link-to-node) or (0, bucket).
func (kv *kvStore) lookup(ctx sim.Ctx, key uint64) (mem.Addr, mem.Addr) {
	link := kv.bucketOf(key)
	cur := mem.Addr(ctx.Load(link))
	for cur != 0 {
		k := ctx.Load(cur + kvKey*mem.WordSize)
		ctx.Compute(4)
		if uint64(k) == key {
			return cur, link
		}
		link = cur + kvNext*mem.WordSize
		cur = mem.Addr(ctx.Load(link))
	}
	return 0, link
}

// set inserts or updates key's value inside the caller's transaction.
func (kv *kvStore) set(ctx sim.Ctx, key, tag uint64) {
	node, _ := kv.lookup(ctx, key)
	if node != 0 {
		fill(ctx, node+kvVal*mem.WordSize, kv.valueWords, tag)
		return
	}
	n, err := kv.sys.Heap().Alloc(kv.nodeBytes())
	if err != nil {
		panic(fmt.Sprintf("kv: %v", err))
	}
	bkt := kv.bucketOf(key)
	head := ctx.Load(bkt)
	ctx.Store(n+kvKey*mem.WordSize, mem.Word(key))
	ctx.Store(n+kvNext*mem.WordSize, head)
	fill(ctx, n+kvVal*mem.WordSize, kv.valueWords, tag)
	ctx.Store(bkt, mem.Word(n))
}

// get reads key's first value word (0 if absent).
func (kv *kvStore) get(ctx sim.Ctx, key uint64) (mem.Word, bool) {
	node, _ := kv.lookup(ctx, key)
	if node == 0 {
		return 0, false
	}
	var v mem.Word
	for i := 0; i < kv.valueWords; i++ {
		v = ctx.Load(node + mem.Addr((kvVal+i)*mem.WordSize))
		ctx.Compute(2)
	}
	return v, true
}

// del removes key, reporting whether it existed.
func (kv *kvStore) del(ctx sim.Ctx, key uint64) bool {
	node, link := kv.lookup(ctx, key)
	if node == 0 {
		return false
	}
	next := ctx.Load(node + kvNext*mem.WordSize)
	ctx.Store(link, next)
	kv.sys.Heap().Free(node, kv.nodeBytes())
	return true
}

// populate pre-inserts every other key (untimed).
func (kv *kvStore) populate(s *sim.System) {
	setup := s.SetupCtx()
	for k := uint64(0); k < kv.keySpace; k += 2 {
		kv.set(setup, k, k)
	}
}

// --- hashmap kernel: update-heavy map operations ---

// Hashmap models WHISPER's hashmap: 70% updates (set), 20% lookups, 10%
// deletes over a chained hash map.
type Hashmap struct {
	cfg Config
	kv  *kvStore
}

// NewHashmap builds the kernel.
func NewHashmap(cfg Config) *Hashmap { return &Hashmap{cfg: cfg} }

// Name implements Workload.
func (h *Hashmap) Name() string { return "hashmap" }

// Setup implements Workload.
func (h *Hashmap) Setup(s *sim.System) error {
	kv, err := newKVStore(s, uint64(h.cfg.Records), 2)
	if err != nil {
		return err
	}
	h.kv = kv
	kv.populate(s)
	return nil
}

// Get is a verification helper.
func (h *Hashmap) Get(ctx sim.Ctx, key uint64) (mem.Word, bool) { return h.kv.get(ctx, key) }

// Run implements Workload.
func (h *Hashmap) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(h.cfg.Seed, thread)
	per := uint64(h.cfg.Records) / uint64(h.cfg.Threads)
	base := uint64(thread) * per
	for i := 0; i < h.cfg.TxnsPerThread; i++ {
		key := base + uint64(rng.Int63())%per
		ctx.TxBegin()
		switch r := rng.Intn(10); {
		case r < 7:
			h.kv.set(ctx, key, key+uint64(i))
		case r < 9:
			h.kv.get(ctx, key)
		default:
			h.kv.del(ctx, key)
		}
		ctx.TxCommit()
		ctx.Compute(15)
	}
}

// --- redis kernel: GET/SET/DEL over string values ---

// Redis models WHISPER's redis: a key-value server with 64 B string
// values, 60% SET / 30% GET / 10% DEL (the suite's write-heavy server).
type Redis struct {
	cfg Config
	kv  *kvStore
}

// NewRedis builds the kernel.
func NewRedis(cfg Config) *Redis { return &Redis{cfg: cfg} }

// Name implements Workload.
func (r *Redis) Name() string { return "redis" }

// Setup implements Workload.
func (r *Redis) Setup(s *sim.System) error {
	kv, err := newKVStore(s, uint64(r.cfg.Records), 8) // 64 B values
	if err != nil {
		return err
	}
	r.kv = kv
	kv.populate(s)
	return nil
}

// Get is a verification helper.
func (r *Redis) Get(ctx sim.Ctx, key uint64) (mem.Word, bool) { return r.kv.get(ctx, key) }

// Run implements Workload.
func (r *Redis) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(r.cfg.Seed, thread)
	per := uint64(r.cfg.Records) / uint64(r.cfg.Threads)
	base := uint64(thread) * per
	for i := 0; i < r.cfg.TxnsPerThread; i++ {
		key := base + uint64(rng.Int63())%per
		ctx.TxBegin()
		switch q := rng.Intn(10); {
		case q < 6:
			r.kv.set(ctx, key, key^uint64(i))
		case q < 9:
			r.kv.get(ctx, key)
		default:
			r.kv.del(ctx, key)
		}
		ctx.TxCommit()
		ctx.Compute(25) // protocol parsing / dispatch
	}
}
