// Package whisper implements a WHISPER-like suite of real persistent
// memory workloads (paper Section V: "key-value stores, in-memory
// databases, and persistent data caching"). Nine kernels reproduce the
// suite's transaction mixes at simulator scale:
//
//	echo      persistent message log + index (append-heavy)
//	ctree     crit-bit (binary radix) tree insert/delete
//	hashmap   chained hash map with update-heavy mix
//	memcached bounded cache: hash index + LRU list (GETs write too)
//	nfs       filesystem metadata: create/append/unlink transactions
//	redis     key-value store, GET/SET/DEL mix over string values
//	tpcc      TPC-C new-order style transactions (write-intensive)
//	vacation  travel reservation tables (read-mostly, few writes)
//	ycsb      zipfian 50/50 read/update over 100 B rows
//
// As in internal/bench, threads own disjoint partitions so transactions
// are isolated, matching WHISPER's per-thread working sets.
package whisper

import (
	"fmt"
	"math/rand"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// Config parameterizes a kernel run.
type Config struct {
	Records       int // table/structure size
	TxnsPerThread int
	Threads       int
	Seed          int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Records <= 0 || c.TxnsPerThread <= 0 || c.Threads <= 0 {
		return fmt.Errorf("whisper: Records, TxnsPerThread, Threads must be positive")
	}
	return nil
}

// Workload mirrors bench.Workload for the WHISPER kernels.
type Workload interface {
	Name() string
	Setup(s *sim.System) error
	Run(ctx sim.Ctx, thread int)
}

// registry maps kernel names to factories.
var registry = map[string]func(Config) Workload{
	"echo":      func(c Config) Workload { return NewEcho(c) },
	"ctree":     func(c Config) Workload { return NewCTree(c) },
	"hashmap":   func(c Config) Workload { return NewHashmap(c) },
	"memcached": func(c Config) Workload { return NewMemcached(c) },
	"nfs":       func(c Config) Workload { return NewNFS(c) },
	"redis":     func(c Config) Workload { return NewRedis(c) },
	"tpcc":      func(c Config) Workload { return NewTPCC(c) },
	"vacation":  func(c Config) Workload { return NewVacation(c) },
	"ycsb":      func(c Config) Workload { return NewYCSB(c) },
}

// Names lists the kernels in report order.
func Names() []string {
	return []string{"ctree", "echo", "hashmap", "memcached", "nfs", "redis", "tpcc", "vacation", "ycsb"}
}

// New builds a named kernel.
func New(name string, cfg Config) (Workload, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("whisper: unknown kernel %q", name)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return f(cfg), nil
}

func threadRNG(seed int64, thread int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(thread)*6271 + 5))
}

// fill writes a deterministic multi-word payload.
func fill(ctx sim.Ctx, addr mem.Addr, words int, tag uint64) {
	for i := 0; i < words; i++ {
		ctx.Store(addr+mem.Addr(i*mem.WordSize), mem.Word(tag*0x2545F4914F6CDD1D+uint64(i)))
	}
}
