package whisper

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// TPCC models WHISPER's tpcc (N-Store's TPC-C port): new-order style
// transactions against warehouse/district/stock/order tables. One
// warehouse per thread. Each transaction:
//
//	read warehouse tax, read+update district (next order id),
//	insert an order record, and for 5..15 order lines:
//	read stock, decrement quantity, update ytd, insert order-line.
//
// This is the suite's most write-intensive kernel, which is why the paper
// sees its largest energy/traffic wins here (Fig 10).
//
// NVRAM layout per warehouse:
//
//	warehouse (line): [tax, ytd]
//	districts: 10 x (line): [nextOID, ytd]
//	stock:     Items x [quantity, ytd, orderCount]
//	orders:    ring of maxOrders x [oid, did, lineCount]
//	orderLines: ring of maxOrders*15 x [item, qty, amount]
const (
	tpccDistricts  = 10
	tpccMaxOrders  = 2048
	tpccLineWords  = 3
	tpccOrderWords = 3
	tpccStockWords = 3
)

type TPCC struct {
	cfg        Config
	sys        *sim.System
	items      int
	warehouses []tpccWarehouse
}

type tpccWarehouse struct {
	base       mem.Addr // warehouse record
	districts  mem.Addr
	stock      mem.Addr
	orders     mem.Addr
	orderLines mem.Addr
	orderHead  mem.Addr // ring cursor (one word)
}

// NewTPCC builds the kernel. Records is the stock item count per warehouse.
func NewTPCC(cfg Config) *TPCC { return &TPCC{cfg: cfg, items: cfg.Records} }

// Name implements Workload.
func (t *TPCC) Name() string { return "tpcc" }

// Setup implements Workload.
func (t *TPCC) Setup(s *sim.System) error {
	t.sys = s
	setup := s.SetupCtx()
	for w := 0; w < t.cfg.Threads; w++ {
		var wh tpccWarehouse
		var err error
		alloc := func(n uint64) mem.Addr {
			if err != nil {
				return 0
			}
			var a mem.Addr
			a, err = s.Heap().AllocLine(n)
			return a
		}
		wh.base = alloc(2 * mem.WordSize)
		wh.districts = alloc(tpccDistricts * mem.LineSize)
		wh.stock = alloc(uint64(t.items * tpccStockWords * mem.WordSize))
		wh.orders = alloc(tpccMaxOrders * tpccOrderWords * mem.WordSize)
		wh.orderLines = alloc(tpccMaxOrders * 15 * tpccLineWords * mem.WordSize)
		wh.orderHead = alloc(mem.WordSize)
		if err != nil {
			return fmt.Errorf("tpcc: %w", err)
		}
		setup.Store(wh.base, 7)   // tax
		setup.Store(wh.base+8, 0) // ytd
		for d := 0; d < tpccDistricts; d++ {
			setup.Store(wh.districts+mem.Addr(d*mem.LineSize), 1)   // nextOID
			setup.Store(wh.districts+mem.Addr(d*mem.LineSize)+8, 0) // ytd
		}
		for i := 0; i < t.items; i++ {
			a := wh.stock + mem.Addr(i*tpccStockWords*mem.WordSize)
			setup.Store(a, 100) // quantity
			setup.Store(a+8, 0) // ytd
			setup.Store(a+16, 0)
		}
		setup.Store(wh.orderHead, 0)
		t.warehouses = append(t.warehouses, wh)
	}
	return nil
}

// NewOrder runs one new-order transaction on thread's warehouse.
func (t *TPCC) NewOrder(ctx sim.Ctx, thread, district, nLines int, items []int) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	wh := t.warehouses[thread]

	tax := ctx.Load(wh.base) // warehouse tax (read)
	_ = tax
	ctx.Compute(800) // customer lookup, warehouse validation, tax math

	// District: read and bump next order id.
	dAddr := wh.districts + mem.Addr(district*mem.LineSize)
	oid := ctx.Load(dAddr)
	ctx.Store(dAddr, oid+1)

	// Order record (ring insert).
	head := uint64(ctx.Load(wh.orderHead))
	slot := head % tpccMaxOrders
	oAddr := wh.orders + mem.Addr(slot*tpccOrderWords*mem.WordSize)
	ctx.Store(oAddr, oid)
	ctx.Store(oAddr+8, mem.Word(district))
	ctx.Store(oAddr+16, mem.Word(nLines))
	ctx.Store(wh.orderHead, mem.Word(head+1))

	var total mem.Word
	for l := 0; l < nLines; l++ {
		item := items[l]
		sAddr := wh.stock + mem.Addr(item*tpccStockWords*mem.WordSize)
		qty := ctx.Load(sAddr)
		ctx.Compute(900) // per-line item lookup, pricing, discount, brand-generic logic
		if qty < 10 {
			qty += 91
		}
		ctx.Store(sAddr, qty-1)
		ytd := ctx.Load(sAddr + 8)
		ctx.Store(sAddr+8, ytd+1)

		lAddr := wh.orderLines + mem.Addr((slot*15+uint64(l))*tpccLineWords*mem.WordSize)
		ctx.Store(lAddr, mem.Word(item))
		ctx.Store(lAddr+8, 1)
		amount := mem.Word(item%97 + 1)
		ctx.Store(lAddr+16, amount)
		total += amount
	}
	// Warehouse YTD.
	ytd := ctx.Load(wh.base + 8)
	ctx.Store(wh.base+8, ytd+total)
}

// DistrictNextOID is a verification helper.
func (t *TPCC) DistrictNextOID(ctx sim.Ctx, thread, district int) mem.Word {
	return ctx.Load(t.warehouses[thread].districts + mem.Addr(district*mem.LineSize))
}

// Run implements Workload.
func (t *TPCC) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(t.cfg.Seed, thread)
	items := make([]int, 15)
	for i := 0; i < t.cfg.TxnsPerThread; i++ {
		n := 5 + rng.Intn(11)
		for l := 0; l < n; l++ {
			items[l] = rng.Intn(t.items)
		}
		t.NewOrder(ctx, thread, rng.Intn(tpccDistricts), n, items)
		ctx.Compute(3000) // terminal I/O formatting, response marshaling
	}
}
