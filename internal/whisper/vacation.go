package whisper

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// Vacation models WHISPER's vacation (STAMP's travel reservation system):
// three resource tables (cars, rooms, flights) plus customer records.
// A transaction queries a handful of resources (reads), then reserves the
// cheapest available one (two writes) and appends to the customer's
// reservation list (two writes) — a read-mostly mix.
//
// NVRAM layout per thread partition:
//
//	resources: 3 tables x perThread rows of [available, price, reserved]
//	customers: perThread x [count, items[8]]
const (
	vacTables        = 3
	vacResourceWords = 3
	vacCustWords     = 9
)

type Vacation struct {
	cfg       Config
	sys       *sim.System
	resources [vacTables]mem.Addr
	customers mem.Addr
}

// NewVacation builds the kernel. Records is rows per table.
func NewVacation(cfg Config) *Vacation { return &Vacation{cfg: cfg} }

// Name implements Workload.
func (v *Vacation) Name() string { return "vacation" }

// Setup implements Workload.
func (v *Vacation) Setup(s *sim.System) error {
	v.sys = s
	setup := s.SetupCtx()
	for t := 0; t < vacTables; t++ {
		a, err := s.Heap().AllocLine(uint64(v.cfg.Records * vacResourceWords * mem.WordSize))
		if err != nil {
			return fmt.Errorf("vacation: %w", err)
		}
		v.resources[t] = a
		for r := 0; r < v.cfg.Records; r++ {
			row := a + mem.Addr(r*vacResourceWords*mem.WordSize)
			setup.Store(row, 100)                  // available
			setup.Store(row+8, mem.Word(50+r%100)) // price
			setup.Store(row+16, 0)                 // reserved
		}
	}
	c, err := s.Heap().AllocLine(uint64(v.cfg.Records * vacCustWords * mem.WordSize))
	if err != nil {
		return fmt.Errorf("vacation: %w", err)
	}
	v.customers = c
	for r := 0; r < v.cfg.Records; r++ {
		setup.Store(c+mem.Addr(r*vacCustWords*mem.WordSize), 0)
	}
	return nil
}

func (v *Vacation) row(table, r int) mem.Addr {
	return v.resources[table] + mem.Addr(r*vacResourceWords*mem.WordSize)
}

// Reserve is the kernel transaction: scan nQuery candidate rows in one
// table for the cheapest available, reserve it, record it on the customer.
func (v *Vacation) Reserve(ctx sim.Ctx, table, customer int, candidates []int) bool {
	ctx.TxBegin()
	defer ctx.TxCommit()
	best, bestPrice := -1, mem.Word(1<<62)
	for _, r := range candidates {
		row := v.row(table, r)
		avail := ctx.Load(row)
		price := ctx.Load(row + 8)
		ctx.Compute(8)
		if avail > 0 && price < bestPrice {
			best, bestPrice = r, price
		}
	}
	if best < 0 {
		return false
	}
	row := v.row(table, best)
	avail := ctx.Load(row)
	ctx.Store(row, avail-1)
	res := ctx.Load(row + 16)
	ctx.Store(row+16, res+1)

	cust := v.customers + mem.Addr(customer*vacCustWords*mem.WordSize)
	cnt := ctx.Load(cust)
	slot := uint64(cnt) % 8
	ctx.Store(cust+mem.Addr((1+slot)*mem.WordSize), mem.Word(best))
	ctx.Store(cust, cnt+1)
	return true
}

// CustomerCount is a verification helper.
func (v *Vacation) CustomerCount(ctx sim.Ctx, customer int) mem.Word {
	return ctx.Load(v.customers + mem.Addr(customer*vacCustWords*mem.WordSize))
}

// Run implements Workload.
func (v *Vacation) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(v.cfg.Seed, thread)
	per := v.cfg.Records / v.cfg.Threads
	base := thread * per
	cand := make([]int, 4)
	for i := 0; i < v.cfg.TxnsPerThread; i++ {
		for j := range cand {
			cand[j] = base + rng.Intn(per)
		}
		v.Reserve(ctx, rng.Intn(vacTables), base+rng.Intn(per), cand)
		ctx.Compute(25)
	}
}
