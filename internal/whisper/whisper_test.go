package whisper

import (
	"testing"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
	"pmemlog/internal/txn"
)

func testSystem(t *testing.T, mode txn.Mode, threads int) *sim.System {
	t.Helper()
	cfg := sim.DefaultConfig(mode, threads)
	cfg.Caches.L1.SizeBytes = 4 << 10
	cfg.Caches.L1.Ways = 4
	cfg.Caches.L2.SizeBytes = 64 << 10
	cfg.Caches.L2.Ways = 8
	cfg.NVRAMBytes = 32 << 20
	cfg.LogBytes = 256 << 10
	cfg.GrowReserveBytes = 1 << 20
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testCfg(threads int) Config {
	return Config{Records: 256, TxnsPerThread: 40, Threads: threads, Seed: 3}
}

func TestRegistry(t *testing.T) {
	if len(Names()) != 9 {
		t.Errorf("expected 9 kernels, got %d", len(Names()))
	}
	for _, name := range Names() {
		w, err := New(name, testCfg(1))
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if w.Name() != name {
			t.Errorf("kernel %s reports name %s", name, w.Name())
		}
	}
	if _, err := New("nope", testCfg(1)); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := New("ycsb", Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestAllKernelsRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s := testSystem(t, txn.FWB, 2)
			w, err := New(name, testCfg(2))
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Setup(s); err != nil {
				t.Fatal(err)
			}
			if err := s.RunN(w.Run); err != nil {
				t.Fatal(err)
			}
			if s.Stats().Transactions == 0 {
				t.Error("no transactions committed")
			}
		})
	}
}

func TestCTreeAgainstShadow(t *testing.T) {
	s := testSystem(t, txn.NonPers, 1)
	cfg := testCfg(1)
	cfg.TxnsPerThread = 400
	c := NewCTree(cfg)
	if err := c.Setup(s); err != nil {
		t.Fatal(err)
	}
	shadow := map[uint64]bool{}
	for k := uint64(0); k < uint64(cfg.Records); k += 2 {
		shadow[k] = true
	}
	rng := threadRNG(cfg.Seed, 0)
	err := s.RunN(func(ctx sim.Ctx, id int) {
		for i := 0; i < cfg.TxnsPerThread; i++ {
			key := uint64(rng.Int63()) % uint64(cfg.Records)
			inserted := c.InsertOrRemove(ctx, 0, key)
			if inserted == shadow[key] {
				panic("ctree/shadow disagree")
			}
			shadow[key] = !shadow[key]
		}
		for k := uint64(0); k < uint64(cfg.Records); k++ {
			if c.Contains(ctx, 0, k) != shadow[k] {
				panic("ctree final membership mismatch")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEchoGetSeesPut(t *testing.T) {
	s := testSystem(t, txn.FWB, 1)
	e := NewEcho(testCfg(1))
	if err := e.Setup(s); err != nil {
		t.Fatal(err)
	}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		e.Put(ctx, 0, 5)
		if e.Get(ctx, 0, 5) == 0 {
			panic("get after put returned nothing")
		}
		if e.Get(ctx, 0, 7) != 0 {
			panic("get of never-put key returned data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTPCCOrderCounting(t *testing.T) {
	s := testSystem(t, txn.FWB, 1)
	cfg := testCfg(1)
	tp := NewTPCC(cfg)
	if err := tp.Setup(s); err != nil {
		t.Fatal(err)
	}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		items := []int{1, 2, 3, 4, 5}
		for i := 0; i < 10; i++ {
			tp.NewOrder(ctx, 0, 0, len(items), items)
		}
		// District 0 next order id must have advanced by exactly 10.
		if got := tp.DistrictNextOID(ctx, 0, 0); got != 11 {
			panic("district OID wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVacationReservationsBounded(t *testing.T) {
	s := testSystem(t, txn.FWB, 1)
	cfg := testCfg(1)
	v := NewVacation(cfg)
	if err := v.Setup(s); err != nil {
		t.Fatal(err)
	}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		cand := []int{0, 1, 2}
		for i := 0; i < 5; i++ {
			if !v.Reserve(ctx, 0, 0, cand) {
				panic("reservation failed with availability")
			}
		}
		if got := v.CustomerCount(ctx, 0); got != 5 {
			panic("customer reservation count wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHashmapRoundTrip(t *testing.T) {
	s := testSystem(t, txn.FWB, 1)
	h := NewHashmap(testCfg(1))
	if err := h.Setup(s); err != nil {
		t.Fatal(err)
	}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		ctx.TxBegin()
		h.kv.set(ctx, 3, 777)
		ctx.TxCommit()
		v, ok := h.Get(ctx, 3)
		if !ok || v == 0 {
			panic("hashmap get after set failed")
		}
		ctx.TxBegin()
		if !h.kv.del(ctx, 3) {
			panic("delete of present key failed")
		}
		ctx.TxCommit()
		if _, ok := h.Get(ctx, 3); ok {
			panic("key present after delete")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestYCSBUpdateVisible(t *testing.T) {
	s := testSystem(t, txn.FWB, 1)
	y := NewYCSB(testCfg(1))
	if err := y.Setup(s); err != nil {
		t.Fatal(err)
	}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		before := ctx.Load(y.Row(4))
		y.Update(ctx, 4, 2, 999)
		after := ctx.Load(y.Row(4))
		if after != before+1 {
			panic("row version did not advance")
		}
		if ctx.Load(y.Row(4)+mem.Addr(3*mem.WordSize)) != 999 {
			panic("field update not visible")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemcachedLRUEviction(t *testing.T) {
	s := testSystem(t, txn.FWB, 1)
	cfg := testCfg(1)
	mc := NewMemcached(cfg)
	if err := mc.Setup(s); err != nil {
		t.Fatal(err)
	}
	capacity := mc.capacity
	err := s.RunN(func(ctx sim.Ctx, id int) {
		// The cache is warmed to capacity with keys [0, capacity).
		if _, hit := mc.Get(ctx, 0, 0); !hit {
			panic("warmed key missing")
		}
		// Touch key 1 so it is MRU, then insert enough new keys to force
		// evictions; count must never exceed capacity.
		mc.Get(ctx, 0, 1)
		for k := 0; k < capacity; k++ {
			mc.Set(ctx, 0, uint64(capacity+k), 7)
			if got := mc.Count(ctx, 0); got > capacity {
				panic("cache exceeded capacity")
			}
		}
		// The recently-inserted keys must be present.
		if _, hit := mc.Get(ctx, 0, uint64(2*capacity-1)); !hit {
			panic("fresh key evicted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemcachedGetWrites(t *testing.T) {
	// The LRU splice makes GETs write persistent memory — memcached's
	// distinguishing behaviour in WHISPER. A pure-GET run must still
	// produce log records.
	s := testSystem(t, txn.FWB, 1)
	cfg := testCfg(1)
	mc := NewMemcached(cfg)
	if err := mc.Setup(s); err != nil {
		t.Fatal(err)
	}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		for k := 0; k < 50; k++ {
			mc.Get(ctx, 0, uint64(k%mc.capacity))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().LogAppends == 0 {
		t.Error("GET-only run produced no log records (LRU splice missing?)")
	}
}

// Write-intensity spectrum: tpcc must write more NVRAM bytes per
// transaction than vacation (the paper's energy argument for Fig 10).
func TestWriteIntensitySpectrum(t *testing.T) {
	perTxBytes := func(name string) float64 {
		s := testSystem(t, txn.FWB, 1)
		w, err := New(name, testCfg(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Setup(s); err != nil {
			t.Fatal(err)
		}
		if err := s.RunN(w.Run); err != nil {
			t.Fatal(err)
		}
		r := s.Stats()
		return float64(r.NVRAMWriteBytes) / float64(r.Transactions)
	}
	tpcc := perTxBytes("tpcc")
	vac := perTxBytes("vacation")
	if tpcc <= vac {
		t.Errorf("tpcc (%.0f B/tx) not more write-intensive than vacation (%.0f B/tx)", tpcc, vac)
	}
}

func TestNFSLifecycle(t *testing.T) {
	s := testSystem(t, txn.FWB, 1)
	cfg := testCfg(1)
	fs := NewNFS(cfg)
	if err := fs.Setup(s); err != nil {
		t.Fatal(err)
	}
	err := s.RunN(func(ctx sim.Ctx, id int) {
		name := uint64(1) // odd names are not pre-created
		if _, ok := fs.Stat(ctx, 0, name); ok {
			panic("odd name pre-exists")
		}
		if !fs.Create(ctx, 0, name, 100) {
			panic("create failed")
		}
		if fs.Create(ctx, 0, name, 101) {
			panic("duplicate create succeeded")
		}
		for k := 0; k < 3; k++ {
			if !fs.Append(ctx, 0, name, uint64(200+k), 0xdead) {
				panic("append to existing file failed")
			}
		}
		if size, ok := fs.Stat(ctx, 0, name); !ok || size != 3*4096 {
			panic("size wrong after appends")
		}
		if !fs.Unlink(ctx, 0, name) {
			panic("unlink failed")
		}
		if _, ok := fs.Stat(ctx, 0, name); ok {
			panic("file present after unlink")
		}
		if fs.Unlink(ctx, 0, name) {
			panic("double unlink succeeded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Crash consistency must hold on a real WHISPER kernel, not just the
// synthetic counters (nfs exercises allocation, chains and inode updates).
func TestNFSCrashRecovery(t *testing.T) {
	build := func() (*sim.System, *NFS) {
		cfg := sim.DefaultConfig(txn.FWB, 2)
		cfg.Caches.L1.SizeBytes = 4 << 10
		cfg.Caches.L1.Ways = 4
		cfg.Caches.L2.SizeBytes = 64 << 10
		cfg.Caches.L2.Ways = 8
		cfg.NVRAMBytes = 32 << 20
		cfg.LogBytes = 128 << 10
		cfg.GrowReserveBytes = 1 << 20
		cfg.TrackOracle = true
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fs := NewNFS(testCfg(2))
		if err := fs.Setup(s); err != nil {
			t.Fatal(err)
		}
		return s, fs
	}
	probe, fs := build()
	if err := probe.RunN(fs.Run); err != nil {
		t.Fatal(err)
	}
	total := probe.WallCycles()
	for _, frac := range []float64{0.3, 0.7} {
		s, fs2 := build()
		crashAt := uint64(float64(total) * frac)
		s.ScheduleCrash(crashAt)
		if err := s.RunN(fs2.Run); err != sim.ErrCrashed {
			t.Fatalf("crash at %.0f%%: %v", frac*100, err)
		}
		rep, err := s.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if bad := s.VerifyRecovery(rep, crashAt); len(bad) != 0 {
			t.Fatalf("crash at %.0f%%: %s", frac*100, bad[0])
		}
	}
}
