package whisper

import (
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// Echo models WHISPER's echo: a persistent, scalable key-value store whose
// core transaction appends a message record to a per-thread durable queue
// and updates an index slot pointing at the latest record for the key.
//
// NVRAM layout per thread:
//
//	queue header (line): [head index]
//	queue: capacity records of recWords words
//	index: Records/Threads slots, each the queue index of the key's record
const echoRecWords = 8 // 64 B message record

type Echo struct {
	cfg     Config
	sys     *sim.System
	headers []mem.Addr
	queues  []mem.Addr
	indexes []mem.Addr
	qcap    int
}

// NewEcho builds the kernel.
func NewEcho(cfg Config) *Echo { return &Echo{cfg: cfg, qcap: 4096} }

// Name implements Workload.
func (e *Echo) Name() string { return "echo" }

// Setup implements Workload.
func (e *Echo) Setup(s *sim.System) error {
	e.sys = s
	per := e.cfg.Records / e.cfg.Threads
	setup := s.SetupCtx()
	for t := 0; t < e.cfg.Threads; t++ {
		hdr, err := s.Heap().AllocLine(mem.WordSize)
		if err != nil {
			return fmt.Errorf("echo: %w", err)
		}
		q, err := s.Heap().AllocLine(uint64(e.qcap * echoRecWords * mem.WordSize))
		if err != nil {
			return fmt.Errorf("echo: %w", err)
		}
		idx, err := s.Heap().AllocLine(uint64(per * mem.WordSize))
		if err != nil {
			return fmt.Errorf("echo: %w", err)
		}
		setup.Store(hdr, 0)
		for i := 0; i < per; i++ {
			setup.Store(idx+mem.Addr(i*mem.WordSize), mem.Word(^uint64(0)))
		}
		e.headers = append(e.headers, hdr)
		e.queues = append(e.queues, q)
		e.indexes = append(e.indexes, idx)
	}
	return nil
}

// Put is the append+index transaction.
func (e *Echo) Put(ctx sim.Ctx, thread int, key uint64) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	hdr := e.headers[thread]
	head := uint64(ctx.Load(hdr))
	slot := head % uint64(e.qcap)
	rec := e.queues[thread] + mem.Addr(slot*echoRecWords*mem.WordSize)
	fill(ctx, rec, echoRecWords, key^head)
	per := uint64(e.cfg.Records / e.cfg.Threads)
	ctx.Store(e.indexes[thread]+mem.Addr((key%per)*mem.WordSize), mem.Word(slot))
	ctx.Store(hdr, mem.Word(head+1))
}

// Get reads the latest record for key (no writes).
func (e *Echo) Get(ctx sim.Ctx, thread int, key uint64) mem.Word {
	per := uint64(e.cfg.Records / e.cfg.Threads)
	slot := uint64(ctx.Load(e.indexes[thread] + mem.Addr((key%per)*mem.WordSize)))
	if slot == ^uint64(0) {
		return 0
	}
	rec := e.queues[thread] + mem.Addr(slot*echoRecWords*mem.WordSize)
	return ctx.Load(rec)
}

// Run implements Workload: 80% puts, 20% gets (echo is append-heavy).
func (e *Echo) Run(ctx sim.Ctx, thread int) {
	rng := threadRNG(e.cfg.Seed, thread)
	per := uint64(e.cfg.Records / e.cfg.Threads)
	for i := 0; i < e.cfg.TxnsPerThread; i++ {
		key := uint64(rng.Int63()) % per
		if rng.Intn(10) < 8 {
			e.Put(ctx, thread, key)
		} else {
			e.Get(ctx, thread, key)
			ctx.Compute(10)
		}
		ctx.Compute(15)
	}
}
