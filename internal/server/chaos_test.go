package server

import (
	"fmt"
	"testing"

	"pmemlog/internal/chaos"
)

func chaosConfig(dir string, plan chaos.Plan) Config {
	cfg := testConfig(dir)
	cfg.Chaos = chaos.New(plan)
	return cfg
}

// TestClientSurvivesDupAcks: with every 3rd ack frame duplicated on
// the wire, a pipelined client must recognize the retransmits via its
// recently-completed ring and drop them instead of failing the stream.
func TestClientSurvivesDupAcks(t *testing.T) {
	cfg := chaosConfig(t.TempDir(), chaos.Plan{Seed: 5, Sites: map[chaos.Site]chaos.SiteConfig{
		chaos.SiteDupAck: {Every: 3},
	}})
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := DialPipelined(srv.Addr(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10

	for i := 0; i < 60; i++ {
		key := []byte(fmt.Sprintf("dup-%02d", i))
		if err := c.Put(key, []byte{byte(i)}); err != nil {
			t.Fatalf("put %d under dup-acks: %v", i, err)
		}
	}
	if n := cfg.Chaos.Ledger().Counts[chaos.SiteDupAck]; n == 0 {
		t.Fatal("dup-ack site never fired; the test exercised nothing")
	}
	for i := 0; i < 60; i++ {
		key := []byte(fmt.Sprintf("dup-%02d", i))
		if v, found, err := c.Get(key); err != nil || !found || v[0] != byte(i) {
			t.Fatalf("get %d: %v found=%v err=%v", i, v, found, err)
		}
	}
}

// TestClientRetriesSpuriousRetry: StatusRetry answers to routable
// requests must be absorbed by the client's transparent resend, not
// surfaced to the caller.
func TestClientRetriesSpuriousRetry(t *testing.T) {
	cfg := chaosConfig(t.TempDir(), chaos.Plan{Seed: 6, Sites: map[chaos.Site]chaos.SiteConfig{
		chaos.SiteSpuriousRetry: {Every: 4},
	}})
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10

	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("retry-%02d", i))
		if err := c.Put(key, []byte{byte(i)}); err != nil {
			t.Fatalf("put %d under spurious retries: %v", i, err)
		}
	}
	if n := cfg.Chaos.Ledger().Counts[chaos.SiteSpuriousRetry]; n == 0 {
		t.Fatal("spurious-retry site never fired")
	}
}

// TestConnDropResend covers the campaign's reconnect-and-resend
// discipline in miniature: a connection killed mid-pipeline-window
// fails the in-flight calls, and because puts are idempotent the
// client reconnects and resends until every write is acked — after
// which every key must be durable and readable.
func TestConnDropResend(t *testing.T) {
	cfg := chaosConfig(t.TempDir(), chaos.Plan{Seed: 7, Sites: map[chaos.Site]chaos.SiteConfig{
		chaos.SiteConnDrop: {Every: 25, Max: 2},
	}})
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	const n = 120
	pending := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		pending[i] = true
	}
	dropped := false
	for round := 0; round < 20 && len(pending) > 0; round++ {
		c, err := DialPipelined(srv.Addr(), 8)
		if err != nil {
			t.Fatal(err)
		}
		c.MaxRetries = 10
		calls := make(map[int]*Call, len(pending))
		for i := range pending {
			call, err := c.PutAsync([]byte(fmt.Sprintf("cd-%03d", i)), []byte{byte(i)})
			if err != nil {
				dropped = true
				break
			}
			calls[i] = call
		}
		for i, call := range calls {
			resp, err := call.Wait()
			if err != nil {
				dropped = true
				continue
			}
			if resp.Status == StatusOK {
				delete(pending, i)
			}
			call.Release()
		}
		c.Close()
	}
	if len(pending) > 0 {
		t.Fatalf("%d writes never acked after resend rounds", len(pending))
	}
	if !dropped && cfg.Chaos.Ledger().Counts[chaos.SiteConnDrop] == 0 {
		t.Fatal("conn-drop never fired; resend path unexercised")
	}

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("cd-%03d", i))
		if v, found, err := c.Get(key); err != nil || !found || v[0] != byte(i) {
			t.Fatalf("get %d after resend: %v found=%v err=%v", i, v, found, err)
		}
	}
}

// TestClientFailsOnUnknownSeq: the dup-ack tolerance must not mask a
// genuinely desynchronized stream — a response for a seq that was
// never issued still poisons the client.
func TestClientFailsOnUnknownSeq(t *testing.T) {
	var c Client
	c.recent = make([]uint32, 4)
	c.recent[0] = 9
	c.recentN = 1
	if !c.isRecentLocked(9) {
		t.Fatal("completed seq not recognized as recent")
	}
	if c.isRecentLocked(10) {
		t.Fatal("never-issued seq classified as a duplicate")
	}
}
