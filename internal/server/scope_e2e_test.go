package server

import (
	"encoding/binary"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"pmemlog/internal/obs/pulse"
)

// fetchPulse grabs and decodes /pulse.json from a live server.
func fetchPulse(t *testing.T, srv *Server, windows string) *pulse.Doc {
	t.Helper()
	code, body := httpGet(t, "http://"+srv.HTTPAddr()+"/pulse.json?windows="+windows)
	if code != http.StatusOK {
		t.Fatalf("pulse.json status %d: %s", code, body)
	}
	var d pulse.Doc
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("pulse.json unparsable: %v\n%s", err, body)
	}
	return &d
}

// TestScopeCoalescibleZipfVsUniform is the workload-sensitivity half of
// the scope e2e: the coalescible fraction must rank a skewed workload
// above a uniform one. Both phases drive the same number of identical-
// shape TXN batches over a pre-inserted keyset; the only difference is
// key choice — uniform batches touch eight distinct lines, zipfian
// batches (fixed seed) repeat hot keys within a transaction, which is
// exactly the recurrence the per-txn line sketch measures.
func TestScopeCoalescibleZipfVsUniform(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.Shards = 1 // TXN batches must be single-shard
	cfg.HTTPAddr = "127.0.0.1:0"
	cfg.PulseInterval = time.Hour // windows closed manually
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10

	const keys = 64
	key := func(i uint64) []byte {
		var k [8]byte
		binary.LittleEndian.PutUint64(k[:], i%keys)
		return k[:]
	}
	val := func(tag uint64) []byte {
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], tag)
		return v[:]
	}
	// Pre-insert the keyset so both phases are pure overwrites with the
	// same per-store footprint (no bucket-chain growth mid-experiment).
	for i := uint64(0); i < keys; i++ {
		if err := c.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Pulse().Tick() // retire the insert phase into its own window

	batch := func(pick func(j uint64) uint64, tag uint64) {
		ops := make([]Op, 8)
		for j := range ops {
			ops[j] = Op{Code: OpPut, Key: key(pick(uint64(j))), Val: val(tag + uint64(j))}
		}
		if err := c.Txn(ops); err != nil {
			t.Fatal(err)
		}
	}

	// Uniform: eight distinct keys per batch, strided eight apart so
	// their value words land on distinct cache lines.
	for b := uint64(0); b < 40; b++ {
		batch(func(j uint64) uint64 { return j*8 + b }, 1000+b*8)
	}
	srv.Pulse().Tick()
	uniform := fetchPulse(t, srv, "1").Scope.Shards[0]

	// Zipfian: the same batch shape, keys drawn from a fixed-seed zipf —
	// hot keys repeat within a single transaction.
	z := rand.NewZipf(rand.New(rand.NewSource(42)), 1.3, 1, keys-1)
	for b := uint64(0); b < 40; b++ {
		batch(func(uint64) uint64 { return z.Uint64() }, 5000+b*8)
	}
	srv.Pulse().Tick()
	zipf := fetchPulse(t, srv, "1").Scope.Shards[0]

	if uniform.PayloadBytesPerSec <= 0 || zipf.PayloadBytesPerSec <= 0 {
		t.Fatalf("no payload accounted: uniform=%+v zipf=%+v", uniform, zipf)
	}
	// Logging always costs more bytes than it stores (records are 4x a
	// word, plus header and commit framing).
	if uniform.WriteAmp <= 1 || zipf.WriteAmp <= 1 {
		t.Fatalf("write amp not amplifying: uniform=%.2f zipf=%.2f",
			uniform.WriteAmp, zipf.WriteAmp)
	}
	if zipf.CoalescibleFraction <= uniform.CoalescibleFraction {
		t.Fatalf("zipfian coalescible %.3f not above uniform %.3f",
			zipf.CoalescibleFraction, uniform.CoalescibleFraction)
	}

	// The same numbers reach the OpenMetrics exposition.
	code, body := httpGet(t, "http://"+srv.HTTPAddr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, series := range []string{
		"pmserver_scope_write_amp_milli",
		"pmserver_scope_shard_write_amp_milli",
		"pmserver_scope_shard_coalescible_milli",
		"pmserver_scope_shard_log_undo_bytes_per_sec",
		"pmserver_scope_shard_wrap_eta_seconds",
		"pmserver_scope_shard_live_records",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("metrics missing %s:\n%s", series, body)
		}
	}
}

// TestScopeWrapForecastLive checks the wrap forecast against a wrap that
// actually happens on a live server: warm a steady overwrite workload
// through fixed-length windows, take the forecast, then keep driving the
// identical workload until the shard's log pass advances — the observed
// time to wrap must be within ±25% of the forecast. The log is sized so
// the wrap takes several windows (quantization error stays well inside
// the band) and the workload is pure overwrites (constant records per
// put, so the warmed append rate is the true future rate).
func TestScopeWrapForecastLive(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.Shards = 1
	cfg.LogBytes = 64 << 10 // small log: wrap within a few seconds
	cfg.HTTPAddr = "127.0.0.1:0"
	cfg.PulseInterval = time.Hour
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10

	const (
		keys          = 50
		putsPerWindow = 50
		windowSleep   = 40 * time.Millisecond
	)
	key := func(i int) []byte { return []byte{byte(i), 'w'} }
	var seq uint64
	window := func() {
		for j := 0; j < putsPerWindow; j++ {
			seq++
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], seq)
			if err := c.Put(key(j%keys), v[:]); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(windowSleep)
		srv.Pulse().Tick()
	}

	logPass := func() uint64 {
		t.Helper()
		code, body := httpGet(t, "http://"+srv.HTTPAddr()+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("healthz status %d: %s", code, body)
		}
		var rep struct {
			Shards []struct {
				LogPass uint64 `json:"log_pass"`
			} `json:"shards"`
		}
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("healthz unparsable: %v\n%s", err, body)
		}
		return rep.Shards[0].LogPass
	}

	// Insert the keyset, then warm the overwrite rate through windows of
	// identical shape before trusting the forecast.
	for i := 0; i < keys; i++ {
		if err := c.Put(key(i), []byte("seed-val")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Pulse().Tick()
	for i := 0; i < 3; i++ {
		window()
	}

	forecast := fetchPulse(t, srv, "3").Scope.Shards[0]
	if forecast.WrapETASeconds <= 0 {
		t.Fatalf("no wrap forecast under steady appends: %+v", forecast)
	}

	// Drive the identical workload until the pass counter advances.
	pass0 := logPass()
	start := time.Now()
	for logPass() == pass0 {
		if time.Since(start) > 30*time.Second {
			t.Fatalf("log never wrapped (forecast said %.2fs)", forecast.WrapETASeconds)
		}
		window()
	}
	observed := time.Since(start).Seconds()

	if diff := forecast.WrapETASeconds - observed; diff > 0.25*observed || diff < -0.25*observed {
		t.Fatalf("wrap forecast %.2fs vs observed %.2fs: outside ±25%%",
			forecast.WrapETASeconds, observed)
	}
}
