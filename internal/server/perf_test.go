package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"

	"pmemlog/internal/sim"
)

// newTestShard boots one shard on a temp dir with the production machine
// configuration.
func newTestShard(tb testing.TB) *shard {
	tb.Helper()
	cfg := Config{}.withDefaults()
	sh, err := newShard(0, shardConfig(cfg), cfg.Buckets, tb.TempDir(), cfg.QueueDepth, cfg.BatchMax)
	if err != nil {
		tb.Fatal(err)
	}
	return sh
}

// TestShardApplySteadyStateZeroAlloc guards the simulated-machine hot
// path: once the working set exists (nodes allocated, scratch buffers
// grown), applying PUT and GET requests must not allocate per op. The
// measurement runs inside a single RunN so the per-batch costs (worker
// closures, goroutines) are excluded — those are per batch of up to
// BatchMax requests, not per op.
func TestShardApplySteadyStateZeroAlloc(t *testing.T) {
	sh := newTestShard(t)
	const nKeys = 32
	keys := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("alloc-key-%04d", i))
	}
	val := bytes.Repeat([]byte{'v'}, 64)
	reqs := make([]Request, 2*nKeys)
	for i := range keys {
		reqs[2*i] = Request{Code: OpPut, Key: keys[i], Val: val}
		reqs[2*i+1] = Request{Code: OpGet, Key: keys[i]}
	}

	// Warm until every growth amortizes out: the FWB machine truncates its
	// log lazily, so the volatile record mirror (and the controller's
	// pending-write set) only reach their steady-state footprint after the
	// circular log has wrapped several times. The warmup runs the exact
	// measured loop, unmeasured, until an identical pass allocates nothing.
	const ops = 4096
	var scratch []byte
	var before, after runtime.MemStats
	pass := func(ctx sim.Ctx, _ int) {
		runtime.ReadMemStats(&before)
		for i := 0; i < ops; i++ {
			r := &reqs[i%len(reqs)]
			var resp Response
			resp, scratch = sh.apply(ctx, r, scratch[:0])
			if resp.Status != StatusOK {
				t.Errorf("op %d %s: %+v", i, opName(r.Code), resp)
				return
			}
		}
		runtime.ReadMemStats(&after)
	}
	const maxWarmPasses = 8
	var perOp float64
	for p := 0; p < maxWarmPasses; p++ {
		if err := sh.sys.RunN(pass); err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			return
		}
		perOp = float64(after.Mallocs-before.Mallocs) / ops
		if perOp == 0 {
			return
		}
	}
	t.Fatalf("shard apply steady state allocates %.3f objects/op (%d over %d ops) even after %d warm passes, want 0",
		perOp, after.Mallocs-before.Mallocs, ops, maxWarmPasses-1)
}

// TestDecodeZeroAlloc guards the wire codecs: decoding into reused
// Request/Response values must not allocate (frame bodies are reused by
// the connection reader, so this is the whole per-frame parse cost).
func TestDecodeZeroAlloc(t *testing.T) {
	key, val := []byte("alloc-key"), bytes.Repeat([]byte{'x'}, 128)
	reqBody, err := EncodeRequest(nil, &Request{Code: OpPut, Seq: 42, Key: key, Val: val})
	if err != nil {
		t.Fatal(err)
	}
	txnBody, err := EncodeRequest(nil, &Request{Code: OpTxn, Seq: 43, Ops: []Op{
		{Code: OpPut, Key: key, Val: val}, {Code: OpDel, Key: key},
	}})
	if err != nil {
		t.Fatal(err)
	}
	respBody := EncodeResponse(nil, &Response{Status: StatusOK, Seq: 42, Val: val})

	var req Request
	var resp Response
	// One warmup decode so the TXN Ops slice reaches capacity.
	if err := DecodeRequestInto(&req, txnBody); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := DecodeRequestInto(&req, reqBody); err != nil {
			t.Fatal(err)
		}
		if err := DecodeRequestInto(&req, txnBody); err != nil {
			t.Fatal(err)
		}
		if err := DecodeResponseInto(&resp, respBody); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decode paths allocate %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkFrameRoundTrip measures one request's full wire cost on the
// reused-buffer path: encode + frame + read + decode.
func BenchmarkFrameRoundTrip(b *testing.B) {
	key, val := []byte("bench-key"), bytes.Repeat([]byte{'x'}, 64)
	var frame, rbuf []byte
	var rd bytes.Reader
	var req Request
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Build the frame in one buffer: reserve the length header, encode,
		// patch — the same shape the server's connection writer uses.
		frame = append(frame[:0], 0, 0, 0, 0)
		var err error
		frame, err = EncodeRequest(frame, &Request{Code: OpPut, Seq: uint32(i), Key: key, Val: val})
		if err != nil {
			b.Fatal(err)
		}
		binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
		rd.Reset(frame)
		got, err := ReadFrameInto(&rd, rbuf, MaxFrame)
		if err != nil {
			b.Fatal(err)
		}
		rbuf = got[:cap(got)]
		if err := DecodeRequestInto(&req, got); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardApply measures the simulated-machine cost of one PUT (the
// dominant term of server-side request latency).
func BenchmarkShardApply(b *testing.B) {
	sh := newTestShard(b)
	key := []byte("bench-key")
	val := bytes.Repeat([]byte{'v'}, 64)
	req := Request{Code: OpPut, Key: key, Val: val}
	var scratch []byte
	b.ReportAllocs()
	b.ResetTimer()
	if err := sh.sys.RunN(func(ctx sim.Ctx, _ int) {
		for i := 0; i < b.N; i++ {
			var resp Response
			resp, scratch = sh.apply(ctx, &req, scratch[:0])
			if resp.Status != StatusOK {
				b.Errorf("put: %+v", resp)
				return
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}
