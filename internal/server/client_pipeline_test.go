package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
)

// TestClientPipelinedOutOfOrder proves the client's seq-number matching:
// a server that answers a whole window of requests in *reverse* arrival
// order must still deliver each response to the call that issued it.
// (The real server completes requests in shard order, not submission
// order, so this path is load-bearing; run with -race.)
func TestClientPipelinedOutOfOrder(t *testing.T) {
	const window = 8
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	srvErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		// Read a full window of requests, then answer them newest-first,
		// echoing each request's key back as the value.
		reqs := make([]Request, window)
		for i := range reqs {
			body, err := ReadFrame(br, MaxFrame)
			if err != nil {
				srvErr <- err
				return
			}
			if err := DecodeRequestInto(&reqs[i], body); err != nil {
				srvErr <- err
				return
			}
			// Key aliases the frame body; copy before the next read.
			reqs[i].Key = append([]byte(nil), reqs[i].Key...)
		}
		for i := window - 1; i >= 0; i-- {
			body := EncodeResponse(nil, &Response{Status: StatusOK, Seq: reqs[i].Seq, Val: reqs[i].Key})
			if _, err := conn.Write(AppendFrame(nil, body)); err != nil {
				srvErr <- err
				return
			}
		}
		srvErr <- nil
	}()

	c, err := DialPipelined(ln.Addr().String(), window)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	calls := make([]*Call, window)
	keys := make([][]byte, window)
	for i := range calls {
		keys[i] = []byte(fmt.Sprintf("ooo-key-%02d", i))
		if calls[i], err = c.GetAsync(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, call := range calls {
		resp, err := call.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(resp.Val, keys[i]) {
			t.Fatalf("call %d: got %q, want %q (response routed to wrong call)", i, resp.Val, keys[i])
		}
		call.Release()
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("fake server: %v", err)
	}
}

// TestClientPipelinedConcurrentSenders hammers one pipelined client from
// several goroutines against the real server (run with -race): every
// sender must read back exactly the value it wrote.
func TestClientPipelinedConcurrentSenders(t *testing.T) {
	srv, err := Start(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := DialPipelined(srv.Addr(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 64

	const senders, opsPerSender = 4, 64
	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < opsPerSender; i++ {
				key := []byte(fmt.Sprintf("conc-%d-%d", s, i))
				val := []byte(fmt.Sprintf("val-%d-%d", s, i))
				put, err := c.PutAsync(key, val)
				if err != nil {
					errs <- err
					return
				}
				if _, err := put.Wait(); err != nil {
					errs <- fmt.Errorf("put %s: %w", key, err)
					return
				}
				put.Release()
				got, found, err := c.Get(key)
				if err != nil || !found || !bytes.Equal(got, val) {
					errs <- fmt.Errorf("get %s: %q found=%v err=%v", key, got, found, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// benchServer boots a server sized for throughput benchmarking.
func benchServer(b *testing.B) *Server {
	b.Helper()
	cfg := testConfig(b.TempDir())
	cfg.Shards = 4
	cfg.QueueDepth = 1024
	srv, err := Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Shutdown() })
	return srv
}

// BenchmarkClientSync measures the classic one-in-flight client: every op
// pays a full network round trip before the next starts. This is the
// baseline the pipelined client is judged against.
func BenchmarkClientSync(b *testing.B) {
	srv := benchServer(b)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 64
	key, val := []byte("bench-sync-key"), bytes.Repeat([]byte{'v'}, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientPipelined keeps a 16-deep window in flight on one
// connection; a collector goroutine retires completions while the
// benchmark loop keeps the pipe full. The ISSUE acceptance bar is ≥2×
// BenchmarkClientSync ops/s.
func BenchmarkClientPipelined(b *testing.B) {
	srv := benchServer(b)
	c, err := DialPipelined(srv.Addr(), 16)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 64
	key, val := []byte("bench-pipe-key"), bytes.Repeat([]byte{'v'}, 64)

	calls := make(chan *Call, 2*c.Window())
	collectErr := make(chan error, 1)
	go func() {
		for call := range calls {
			if _, err := call.Wait(); err != nil {
				collectErr <- err
				return
			}
			call.Release()
		}
		collectErr <- nil
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call, err := c.PutAsync(key, val)
		if err != nil {
			b.Fatal(err)
		}
		calls <- call
	}
	close(calls)
	if err := <-collectErr; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkClientPipelinedSpans is BenchmarkClientPipelined with flight-
// recorder spans on every request: the ISSUE 5 acceptance bar is ≤5%
// regression against the unspanned run (the span cost is one 9-byte wire
// extension plus atomic stores into a preallocated table slot per hop).
func BenchmarkClientPipelinedSpans(b *testing.B) {
	srv := benchServer(b)
	c, err := DialPipelined(srv.Addr(), 16)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 64
	c.EnableSpans()
	key, val := []byte("bench-pipe-key"), bytes.Repeat([]byte{'v'}, 64)

	calls := make(chan *Call, 2*c.Window())
	collectErr := make(chan error, 1)
	go func() {
		for call := range calls {
			if _, err := call.Wait(); err != nil {
				collectErr <- err
				return
			}
			call.Release()
		}
		collectErr <- nil
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call, err := c.PutAsync(key, val)
		if err != nil {
			b.Fatal(err)
		}
		calls <- call
	}
	close(calls)
	if err := <-collectErr; err != nil {
		b.Fatal(err)
	}
}
