package server

import (
	"bytes"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Code: OpGet, Key: []byte("k")},
		{Code: OpDel, Key: bytes.Repeat([]byte("k"), MaxKeyLen)},
		{Code: OpPut, Key: []byte("key"), Val: []byte("value")},
		{Code: OpPut, Key: []byte("key"), Val: nil},
		{Code: OpStats},
		{Code: OpTxn, Ops: []Op{
			{Code: OpPut, Key: []byte("a"), Val: []byte("1")},
			{Code: OpDel, Key: []byte("b")},
			{Code: OpPut, Key: []byte("c"), Val: bytes.Repeat([]byte("v"), 300)},
		}},
	}
	for _, req := range reqs {
		body, err := EncodeRequest(nil, req)
		if err != nil {
			t.Fatalf("encode %#x: %v", req.Code, err)
		}
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("decode %#x: %v", req.Code, err)
		}
		if got.Code != req.Code || !bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Val, req.Val) {
			t.Fatalf("round trip mismatch: %+v -> %+v", req, got)
		}
		if len(got.Ops) != len(req.Ops) {
			t.Fatalf("ops count: %d != %d", len(got.Ops), len(req.Ops))
		}
		for i := range req.Ops {
			if got.Ops[i].Code != req.Ops[i].Code ||
				!bytes.Equal(got.Ops[i].Key, req.Ops[i].Key) ||
				!bytes.Equal(got.Ops[i].Val, req.Ops[i].Val) {
				t.Fatalf("op %d mismatch", i)
			}
		}
	}
}

func TestRequestValidation(t *testing.T) {
	bad := []*Request{
		{Code: OpGet}, // empty key
		{Code: OpPut, Key: bytes.Repeat([]byte("k"), MaxKeyLen+1)}, // oversized key
		{Code: OpPut, Key: []byte("k"), Val: make([]byte, MaxValueLen+1)},
		{Code: OpTxn, Ops: make([]Op, MaxTxnOps+1)},
		{Code: OpTxn, Ops: []Op{{Code: OpGet, Key: []byte("k")}}}, // GET not a txn sub-op
		{Code: 0x7f},
	}
	for i, req := range bad {
		if _, err := EncodeRequest(nil, req); err == nil {
			t.Errorf("case %d: encode accepted invalid request", i)
		}
	}
	// Decoder must reject trailing garbage and truncated bodies.
	body, _ := EncodeRequest(nil, &Request{Code: OpPut, Key: []byte("k"), Val: []byte("v")})
	if _, err := DecodeRequest(append(body, 0)); err == nil {
		t.Error("decode accepted trailing bytes")
	}
	for n := 1; n < len(body); n++ {
		if _, err := DecodeRequest(body[:n]); err == nil {
			t.Errorf("decode accepted truncated body of %d/%d bytes", n, len(body))
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{Status: StatusOK, Val: []byte("payload")},
		{Status: StatusOK},
		{Status: StatusNotFound},
		{Status: StatusRetry, RetryAfterMs: 7},
		{Status: StatusErr, Err: "boom"},
	}
	for _, r := range resps {
		got, err := DecodeResponse(EncodeResponse(nil, r))
		if err != nil {
			t.Fatalf("decode status %#x: %v", r.Status, err)
		}
		if got.Status != r.Status || !bytes.Equal(got.Val, r.Val) ||
			got.RetryAfterMs != r.RetryAfterMs || got.Err != r.Err {
			t.Fatalf("round trip mismatch: %+v -> %+v", r, got)
		}
	}
}

func TestSpanExtensionRoundTrip(t *testing.T) {
	const span = uint64(0x0000000700000009)
	reqs := []*Request{
		{Code: OpGet, Span: span, Key: []byte("k")},
		{Code: OpPut, Span: span, Seq: 42, Key: []byte("key"), Val: []byte("value")},
		{Code: OpTxn, Span: 1, Ops: []Op{{Code: OpDel, Key: []byte("b")}}},
		{Code: OpStats, Span: ^uint64(0)},
	}
	for _, req := range reqs {
		body, err := EncodeRequest(nil, req)
		if err != nil {
			t.Fatalf("encode %#x: %v", req.Code, err)
		}
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("decode %#x: %v", req.Code, err)
		}
		if got.Span != req.Span || got.Code != req.Code || got.Seq != req.Seq ||
			!bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Val, req.Val) {
			t.Fatalf("span round trip mismatch: %+v -> %+v", req, got)
		}
	}
	// Span 0 must encode in the unextended legacy layout: byte-identical
	// to what an older peer emits, so mixed-version fleets interoperate.
	plain, _ := EncodeRequest(nil, &Request{Code: OpGet, Key: []byte("k")})
	zero, _ := EncodeRequest(nil, &Request{Code: OpGet, Span: 0, Key: []byte("k")})
	if !bytes.Equal(plain, zero) {
		t.Fatal("span 0 changed the legacy wire layout")
	}
	spanned, _ := EncodeRequest(nil, &Request{Code: OpGet, Span: 1, Key: []byte("k")})
	if len(spanned) != len(plain)+9 {
		t.Fatalf("ext block is %d bytes, want 9 (version + u64)", len(spanned)-len(plain))
	}

	resps := []*Response{
		{Status: StatusOK, Span: span, Val: []byte("payload")},
		{Status: StatusNotFound, Span: span},
		{Status: StatusRetry, Span: 3, RetryAfterMs: 7},
		{Status: StatusErr, Span: span, Err: "boom"},
	}
	for _, r := range resps {
		got, err := DecodeResponse(EncodeResponse(nil, r))
		if err != nil {
			t.Fatalf("decode status %#x: %v", r.Status, err)
		}
		if got.Span != r.Span || got.Status != r.Status || !bytes.Equal(got.Val, r.Val) ||
			got.RetryAfterMs != r.RetryAfterMs || got.Err != r.Err {
			t.Fatalf("span round trip mismatch: %+v -> %+v", r, got)
		}
	}

	// Unknown extension version is a hard decode error (the block length
	// is version-defined, so it cannot be skipped).
	spanned[1+4] = 0x7e // ext version byte sits after code+seq
	if _, err := DecodeRequest(spanned); err == nil {
		t.Fatal("decode accepted unknown extension version")
	}
	// Truncated ext block must error, not panic.
	ok, _ := EncodeRequest(nil, &Request{Code: OpGet, Span: 5, Key: []byte("k")})
	for n := 1; n < len(ok); n++ {
		if _, err := DecodeRequest(ok[:n]); err == nil {
			t.Errorf("decode accepted truncated spanned body of %d/%d bytes", n, len(ok))
		}
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 99); err == nil {
		t.Fatal("ReadFrame accepted oversized frame")
	}
}

func TestShardOfStable(t *testing.T) {
	// The shard route must be deterministic (persisted data depends on it).
	if got := ShardOf([]byte("stable-key"), 8); got != ShardOf([]byte("stable-key"), 8) {
		t.Fatalf("ShardOf not deterministic: %d", got)
	}
	n := 4
	counts := make([]int, n)
	for i := 0; i < 1000; i++ {
		counts[ShardOf([]byte{byte(i), byte(i >> 8)}, n)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys out of 1000", s)
		}
	}
}
