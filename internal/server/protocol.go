// Package server exposes the persistent heap as a sharded network KV
// service: a length-prefixed binary protocol over TCP fronting N worker
// shards, each owning one simulated machine whose every write funnels
// through the paper's txn → core (HWL/FWB) → nvlog → nvram pipeline.
//
// Durability contract: a PUT / DEL / TXN is acknowledged only after the
// shard's transaction(s) committed on the simulated machine AND the
// shard's NVRAM DIMM image was atomically persisted to disk — so any
// acknowledged write survives a hard process kill and is visible after the
// server restarts and re-attaches (recovers) the image.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Opcodes (request body's first byte).
const (
	OpGet     = byte(0x01)
	OpPut     = byte(0x02)
	OpDel     = byte(0x03)
	OpTxn     = byte(0x04) // atomic multi-op batch (PUT/DEL sub-ops, one shard)
	OpStats   = byte(0x05)
	OpMetrics = byte(0x06) // Prometheus text-format metrics snapshot
)

// Response status codes (response body's first byte).
const (
	StatusOK       = byte(0x00)
	StatusNotFound = byte(0x01)
	// StatusRetry is backpressure: the shard's bounded queue is full (or
	// the server is draining); the client should retry after the suggested
	// delay rather than the server buffering unboundedly.
	StatusRetry = byte(0x02)
	StatusErr   = byte(0x03)
)

// Protocol limits. Oversized frames are rejected before allocation.
const (
	MaxKeyLen   = 1 << 10
	MaxValueLen = 64 << 10
	MaxTxnOps   = 64
	MaxFrame    = 1 << 22
)

// Wire extension header. Opcodes stop at 0x06 and statuses at 0x03, so
// the high bit of the leading byte is free on both request and response
// bodies: when set, a versioned extension block sits between the Seq
// field and the normal payload. Version 1 carries the 8-byte request
// span ID (flight-recorder tracing); a request or response with Span 0
// encodes in the unextended legacy format, so spans are wire-compatible
// in both directions with peers that never heard of them.
const (
	extFlag    = byte(0x80)
	ExtVerSpan = byte(0x01) // ext block = version byte + u64 span
)

// Op is one sub-operation of a TXN batch.
type Op struct {
	Code byte // OpPut or OpDel
	Key  []byte
	Val  []byte // OpPut only
}

// Request is one decoded client request. Seq is a connection-scoped
// sequence number echoed verbatim in the matching Response, which lets a
// pipelined client keep many requests in flight on one connection and
// match completions without assuming in-order delivery.
type Request struct {
	Code byte
	Seq  uint32
	Span uint64 // request span ID, 0 = untraced (encodes as legacy format)
	Key  []byte // GET/PUT/DEL
	Val  []byte // PUT
	Ops  []Op   // TXN
}

// Response is one decoded server response.
type Response struct {
	Status       byte
	Seq          uint32 // echo of Request.Seq
	Span         uint64 // echo of Request.Span, 0 = untraced
	Val          []byte // StatusOK payload (GET value, STATS JSON; empty otherwise)
	RetryAfterMs uint32 // StatusRetry
	Err          string // StatusErr
}

// WriteFrame writes one length-prefixed frame.
//
// It issues two Write calls (header, then body), so w MUST be buffered
// (a *bufio.Writer) when used on a socket — otherwise every frame costs
// two syscalls and, worse, two TCP segments under TCP_NODELAY. Hot paths
// should instead build [4-byte len][body] in one reusable buffer via
// AppendFrame and issue a single Write.
func WriteFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// AppendFrame appends a complete length-prefixed frame (header + body) to
// buf and returns the extended slice, for sending with a single Write.
func AppendFrame(buf, body []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	return append(buf, body...)
}

// ReadFrame reads one length-prefixed frame, rejecting bodies over max.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	return ReadFrameInto(r, nil, max)
}

// ReadFrameInto reads one length-prefixed frame into buf (grown if
// needed), rejecting bodies over max. The returned slice aliases buf's
// backing array when it fits, so a caller that reuses buf across calls
// reads frames without per-frame allocation.
func ReadFrameInto(r io.Reader, buf []byte, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > max {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, max)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// appendKey encodes u16 length + bytes.
func appendKey(buf, key []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	return append(buf, key...)
}

// appendVal encodes u32 length + bytes.
func appendVal(buf, val []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	return append(buf, val...)
}

// appendExt appends the extension block announced by the leading byte's
// high bit: version tag, then the span ID.
func appendExt(buf []byte, span uint64) []byte {
	buf = append(buf, ExtVerSpan)
	return binary.LittleEndian.AppendUint64(buf, span)
}

// readExt consumes one extension block. Unknown versions are a hard
// decode error: the ext block sits before the payload, so skipping an
// unknown layout is impossible without knowing its length.
func readExt(c *cursor) (uint64, error) {
	ver, err := c.u8()
	if err != nil {
		return 0, err
	}
	if ver != ExtVerSpan {
		return 0, fmt.Errorf("server: unknown wire extension version %#x", ver)
	}
	return c.u64()
}

// EncodeRequest appends the request's wire body to buf.
func EncodeRequest(buf []byte, r *Request) ([]byte, error) {
	if r.Code&extFlag != 0 {
		return nil, fmt.Errorf("server: opcode %#x collides with extension flag", r.Code)
	}
	code := r.Code
	if r.Span != 0 {
		code |= extFlag
	}
	buf = append(buf, code)
	buf = binary.LittleEndian.AppendUint32(buf, r.Seq)
	if r.Span != 0 {
		buf = appendExt(buf, r.Span)
	}
	switch r.Code {
	case OpGet, OpDel:
		if err := checkKey(r.Key); err != nil {
			return nil, err
		}
		buf = appendKey(buf, r.Key)
	case OpPut:
		if err := checkKV(r.Key, r.Val); err != nil {
			return nil, err
		}
		buf = appendKey(buf, r.Key)
		buf = appendVal(buf, r.Val)
	case OpTxn:
		if len(r.Ops) > MaxTxnOps {
			return nil, fmt.Errorf("server: txn of %d ops exceeds limit %d", len(r.Ops), MaxTxnOps)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Ops)))
		for _, op := range r.Ops {
			buf = append(buf, op.Code)
			switch op.Code {
			case OpPut:
				if err := checkKV(op.Key, op.Val); err != nil {
					return nil, err
				}
				buf = appendKey(buf, op.Key)
				buf = appendVal(buf, op.Val)
			case OpDel:
				if err := checkKey(op.Key); err != nil {
					return nil, err
				}
				buf = appendKey(buf, op.Key)
			default:
				return nil, fmt.Errorf("server: txn sub-op %#x not PUT/DEL", op.Code)
			}
		}
	case OpStats, OpMetrics:
		// opcode only
	default:
		return nil, fmt.Errorf("server: unknown opcode %#x", r.Code)
	}
	return buf, nil
}

func checkKey(key []byte) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return fmt.Errorf("server: key length %d outside [1, %d]", len(key), MaxKeyLen)
	}
	return nil
}

func checkKV(key, val []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if len(val) > MaxValueLen {
		return fmt.Errorf("server: value length %d exceeds %d", len(val), MaxValueLen)
	}
	return nil
}

// cursor walks a wire body with bounds checking.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) u8() (byte, error) {
	if c.off+1 > len(c.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *cursor) u16() (uint16, error) {
	if c.off+2 > len(c.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.off+4 > len(c.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.off+8 > len(c.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, io.ErrUnexpectedEOF
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

func (c *cursor) key() ([]byte, error) {
	n, err := c.u16()
	if err != nil {
		return nil, err
	}
	k, err := c.bytes(int(n))
	if err != nil {
		return nil, err
	}
	return k, checkKey(k)
}

func (c *cursor) val() ([]byte, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxValueLen {
		return nil, fmt.Errorf("server: value length %d exceeds %d", n, MaxValueLen)
	}
	return c.bytes(int(n))
}

// DecodeRequest parses a request wire body.
func DecodeRequest(body []byte) (*Request, error) {
	r := &Request{}
	if err := DecodeRequestInto(r, body); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeRequestInto parses a request wire body into r, reusing r's Ops
// slice capacity across calls. Key/Val/Ops fields alias body, so the
// caller must not recycle body while r is live.
func DecodeRequestInto(r *Request, body []byte) error {
	c := &cursor{b: body}
	code, err := c.u8()
	if err != nil {
		return err
	}
	ext := code&extFlag != 0
	code &^= extFlag
	ops := r.Ops
	*r = Request{Code: code, Ops: ops[:0]}
	if r.Seq, err = c.u32(); err != nil {
		return err
	}
	if ext {
		if r.Span, err = readExt(c); err != nil {
			return err
		}
	}
	switch code {
	case OpGet, OpDel:
		if r.Key, err = c.key(); err != nil {
			return err
		}
	case OpPut:
		if r.Key, err = c.key(); err != nil {
			return err
		}
		if r.Val, err = c.val(); err != nil {
			return err
		}
	case OpTxn:
		n, err := c.u16()
		if err != nil {
			return err
		}
		if int(n) > MaxTxnOps {
			return fmt.Errorf("server: txn of %d ops exceeds limit %d", n, MaxTxnOps)
		}
		if cap(ops) >= int(n) {
			r.Ops = ops[:n]
		} else {
			r.Ops = make([]Op, n)
		}
		for i := range r.Ops {
			op := &r.Ops[i]
			*op = Op{}
			if op.Code, err = c.u8(); err != nil {
				return err
			}
			switch op.Code {
			case OpPut:
				if op.Key, err = c.key(); err != nil {
					return err
				}
				if op.Val, err = c.val(); err != nil {
					return err
				}
			case OpDel:
				if op.Key, err = c.key(); err != nil {
					return err
				}
			default:
				return fmt.Errorf("server: txn sub-op %#x not PUT/DEL", op.Code)
			}
		}
	case OpStats, OpMetrics:
	default:
		return fmt.Errorf("server: unknown opcode %#x", code)
	}
	if c.off != len(body) {
		return fmt.Errorf("server: %d trailing bytes after request", len(body)-c.off)
	}
	return nil
}

// EncodeResponse appends the response's wire body to buf.
func EncodeResponse(buf []byte, r *Response) []byte {
	status := r.Status
	if r.Span != 0 {
		status |= extFlag
	}
	buf = append(buf, status)
	buf = binary.LittleEndian.AppendUint32(buf, r.Seq)
	if r.Span != 0 {
		buf = appendExt(buf, r.Span)
	}
	switch r.Status {
	case StatusOK:
		buf = appendVal(buf, r.Val)
	case StatusRetry:
		buf = binary.LittleEndian.AppendUint32(buf, r.RetryAfterMs)
	case StatusErr:
		msg := r.Err
		if len(msg) > MaxKeyLen {
			msg = msg[:MaxKeyLen]
		}
		buf = appendKey(buf, []byte(msg))
	}
	return buf
}

// DecodeResponse parses a response wire body.
func DecodeResponse(body []byte) (*Response, error) {
	r := &Response{}
	if err := DecodeResponseInto(r, body); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeResponseInto parses a response wire body into r. Val aliases
// body, so the caller must not recycle body while r is live.
func DecodeResponseInto(r *Response, body []byte) error {
	c := &cursor{b: body}
	status, err := c.u8()
	if err != nil {
		return err
	}
	ext := status&extFlag != 0
	status &^= extFlag
	*r = Response{Status: status}
	if r.Seq, err = c.u32(); err != nil {
		return err
	}
	if ext {
		if r.Span, err = readExt(c); err != nil {
			return err
		}
	}
	switch status {
	case StatusOK:
		n, err := c.u32()
		if err != nil {
			return err
		}
		if r.Val, err = c.bytes(int(n)); err != nil {
			return err
		}
	case StatusNotFound:
	case StatusRetry:
		if r.RetryAfterMs, err = c.u32(); err != nil {
			return err
		}
	case StatusErr:
		n, err := c.u16()
		if err != nil {
			return err
		}
		msg, err := c.bytes(int(n))
		if err != nil {
			return err
		}
		r.Err = string(msg)
	default:
		return fmt.Errorf("server: unknown response status %#x", status)
	}
	if c.off != len(body) {
		return fmt.Errorf("server: %d trailing bytes after response", len(body)-c.off)
	}
	return nil
}

// hash64 is FNV-1a over the key bytes: it routes a key to its shard (low
// bits) and, within the shard's store, to its hash bucket (higher bits).
func hash64(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// ShardOf routes a key to one of n shards. Exported so load generators and
// tests can construct same-shard TXN batches.
func ShardOf(key []byte, n int) int {
	return int(hash64(key) % uint64(n))
}
