package server

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// valFor is the deterministic value oracle: the whole value (length and
// every byte) is a function of (key, gen), so a recovered value either
// matches some generation the writer actually issued, or it is torn.
func valFor(key []byte, gen uint64) []byte {
	hdr := fmt.Sprintf("%s|%08d|", key, gen)
	n := 16 + int((gen*7+hash64(key))%96)
	v := make([]byte, len(hdr)+n)
	copy(v, hdr)
	for i := 0; i < n; i++ {
		v[len(hdr)+i] = byte(gen) + byte(i)*3
	}
	return v
}

// genOf parses the generation out of a recovered value, verifying the
// entire value against the oracle.
func genOf(key, val []byte) (uint64, error) {
	var gen uint64
	prefix := string(key) + "|"
	if len(val) < len(prefix)+9 || string(val[:len(prefix)]) != prefix {
		return 0, fmt.Errorf("value for %q has wrong prefix", key)
	}
	if _, err := fmt.Sscanf(string(val[len(prefix):len(prefix)+8]), "%d", &gen); err != nil {
		return 0, fmt.Errorf("value for %q has unparsable gen: %v", key, err)
	}
	if !bytes.Equal(val, valFor(key, gen)) {
		return 0, fmt.Errorf("value for %q gen %d is torn", key, gen)
	}
	return gen, nil
}

// writerState is one writer goroutine's record of what it managed to get
// acknowledged before the kill. Writers own disjoint key spaces, so the
// oracle needs no cross-writer reasoning.
type writerState struct {
	soloAcked  map[string]uint64 // key -> highest acked gen
	soloIssued map[string]uint64 // key -> highest issued gen (acked or not)
	groupAcked map[int]uint64    // txn group -> highest acked gen
	writes     int
}

// soloKey/groupKeys define writer w's key space. Group keys are only ever
// written together (one TXN, one shared gen), giving a crisp atomicity
// oracle: recovered group members must all carry the same generation.
func soloKey(w, i int) []byte { return []byte(fmt.Sprintf("w%d-solo-%02d", w, i)) }

func groupKeys(w, g, shards int) [][]byte {
	// All members must live on one shard; derive them by probing.
	base := ShardOf([]byte(fmt.Sprintf("w%d-grp%d-0000", w, g)), shards)
	keys := [][]byte{[]byte(fmt.Sprintf("w%d-grp%d-0000", w, g))}
	for i := 1; len(keys) < 3; i++ {
		k := []byte(fmt.Sprintf("w%d-grp%d-%04d", w, g, i))
		if ShardOf(k, shards) == base {
			keys = append(keys, k)
		}
	}
	return keys
}

// runWriter hammers the server until it dies or stop closes, recording
// every acknowledged write. Only a nil client error counts as an ack.
func runWriter(w, shards int, addr string, seed int64, stop <-chan struct{}) *writerState {
	st := &writerState{
		soloAcked:  map[string]uint64{},
		soloIssued: map[string]uint64{},
		groupAcked: map[int]uint64{},
	}
	c, err := Dial(addr)
	if err != nil {
		return st
	}
	defer c.Close()
	c.MaxRetries = 50
	rng := rand.New(rand.NewSource(seed))
	const nSolo, nGroups = 8, 2
	gen := uint64(0)
	for {
		select {
		case <-stop:
			return st
		default:
		}
		gen++
		if rng.Intn(4) == 0 { // 25% multi-key transactions
			g := rng.Intn(nGroups)
			var ops []Op
			for _, k := range groupKeys(w, g, shards) {
				ops = append(ops, Op{Code: OpPut, Key: k, Val: valFor(k, gen)})
			}
			if err := c.Txn(ops); err != nil {
				return st
			}
			st.groupAcked[g] = gen
		} else {
			k := soloKey(w, rng.Intn(nSolo))
			st.soloIssued[string(k)] = gen
			if err := c.Put(k, valFor(k, gen)); err != nil {
				return st
			}
			st.soloAcked[string(k)] = gen
		}
		st.writes++
	}
}

// TestAckedDurabilityUnderKill is the acceptance test for the service's
// durability contract: kill the server at a random moment mid-traffic,
// restart from the persisted images, and verify (a) every acknowledged
// PUT/TXN is readable, (b) no torn value is visible, and (c) every TXN
// group is atomic — all members carry one generation.
func TestAckedDurabilityUnderKill(t *testing.T) {
	const trials = 22
	const writers = 4
	const shards = 2
	root := t.TempDir()
	totalAcked := 0
	for trial := 0; trial < trials; trial++ {
		dir := filepath.Join(root, fmt.Sprintf("trial-%02d", trial))
		cfg := testConfig(dir)
		cfg.Shards = shards
		srv, err := Start(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		stop := make(chan struct{})
		states := make([]*writerState, writers)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				states[w] = runWriter(w, shards, srv.Addr(), int64(trial*100+w), stop)
			}(w)
		}

		// Kill at a random point mid-traffic. When PMFLIGHT_DUMP_DIR is
		// set (CI does this), capture a flight dump first so the kill
		// leaves a forensic artifact pmdoctor can be pointed at.
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		time.Sleep(time.Duration(2+rng.Intn(60)) * time.Millisecond)
		if dumpDir := os.Getenv("PMFLIGHT_DUMP_DIR"); dumpDir != "" {
			path := filepath.Join(dumpDir, fmt.Sprintf("flight-dump-trial-%02d.json", trial))
			if err := srv.WriteFlightDump(path, "kill-test"); err != nil {
				t.Logf("trial %d: flight dump: %v", trial, err)
			}
		}
		srv.Kill()
		close(stop)
		wg.Wait()

		// Restart against the persisted images and audit.
		cfg2 := testConfig(dir)
		cfg2.Logger = log.New(io.Discard, "", 0)
		srv2, err := Start(cfg2)
		if err != nil {
			t.Fatalf("trial %d: restart: %v", trial, err)
		}
		c, err := Dial(srv2.Addr())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c.MaxRetries = 10
		for w, st := range states {
			totalAcked += len(st.soloAcked) + len(st.groupAcked)
			for key, acked := range st.soloAcked {
				v, found, err := c.Get([]byte(key))
				if err != nil {
					t.Fatalf("trial %d: get %q: %v", trial, key, err)
				}
				if !found {
					t.Fatalf("trial %d: acked key %q lost (acked gen %d)", trial, key, acked)
				}
				gen, err := genOf([]byte(key), v)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if gen < acked {
					t.Fatalf("trial %d: key %q regressed to gen %d < acked %d", trial, key, gen, acked)
				}
				if issued := st.soloIssued[key]; gen > issued {
					t.Fatalf("trial %d: key %q shows gen %d never issued (max %d)", trial, key, gen, issued)
				}
			}
			// A solo key that was issued but never acked may or may not have
			// persisted; if present it must still be untorn.
			for key := range st.soloIssued {
				if _, ok := st.soloAcked[key]; ok {
					continue
				}
				if v, found, _ := c.Get([]byte(key)); found {
					if _, err := genOf([]byte(key), v); err != nil {
						t.Fatalf("trial %d: unacked %v", trial, err)
					}
				}
			}
			// Atomicity: every member of a txn group must carry one gen.
			for g, acked := range st.groupAcked {
				keys := groupKeys(w, g, shards)
				var gens []uint64
				for _, k := range keys {
					v, found, err := c.Get(k)
					if err != nil {
						t.Fatalf("trial %d: get %q: %v", trial, k, err)
					}
					if !found {
						t.Fatalf("trial %d: acked txn group %d key %q lost", trial, g, k)
					}
					gen, err := genOf(k, v)
					if err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					gens = append(gens, gen)
				}
				for _, gen := range gens {
					if gen != gens[0] {
						t.Fatalf("trial %d: txn group %d torn across keys: gens %v", trial, g, gens)
					}
					if gen < acked {
						t.Fatalf("trial %d: txn group %d regressed to %d < acked %d", trial, g, gens[0], acked)
					}
				}
			}
		}
		c.Close()
		srv2.Shutdown()
	}
	if totalAcked == 0 {
		t.Fatal("no writes were ever acked across all trials; test proved nothing")
	}
	t.Logf("audited %d acked keys/groups across %d kill/restart trials", totalAcked, trials)
}
