package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pmemlog/internal/flight"
	"pmemlog/internal/obs/pulse"
)

// httpGet fetches one operator-endpoint body.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

// TestPulseEndToEnd drives spanned traffic through a live server, closes
// a pulse window, and checks the whole telemetry chain: /pulse.json
// carries per-shard throughput, windowed op and stage quantiles whose
// p99 shares account for the end-to-end p99, SLO accounting, and at
// least one tail exemplar that resolves to a span in a flight dump.
func TestPulseEndToEnd(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.HTTPAddr = "127.0.0.1:0"
	cfg.PulseInterval = time.Hour // windows closed manually
	cfg.SlowThreshold = time.Nanosecond
	cfg.SlowSpans = 256 // tail-sample every request without wrapping
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	c.EnableSpans()
	for i := 0; i < 64; i++ {
		key := []byte{byte('a' + i%26), byte(i)}
		if err := c.Put(key, []byte("pulse-val")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	srv.Pulse().Tick()

	code, body := httpGet(t, "http://"+srv.HTTPAddr()+"/pulse.json?windows=1")
	if code != http.StatusOK {
		t.Fatalf("pulse.json status %d: %s", code, body)
	}
	var d pulse.Doc
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("pulse.json unparsable: %v\n%s", err, body)
	}
	if d.Version != pulse.DocVersion || d.Seq == 0 || d.Addr == "" || d.Mode == "" {
		t.Fatalf("doc header: version=%d seq=%d addr=%q mode=%q", d.Version, d.Seq, d.Addr, d.Mode)
	}

	// Per-shard throughput: every request landed on some shard.
	if len(d.Shards) != cfg.Shards {
		t.Fatalf("shards = %d, want %d", len(d.Shards), cfg.Shards)
	}
	var tput float64
	for _, sd := range d.Shards {
		tput += sd.ThroughputPerSec
		if sd.QueueCap != cfg.QueueDepth {
			t.Fatalf("shard %d queue_cap = %d", sd.Shard, sd.QueueCap)
		}
	}
	if tput <= 0 {
		t.Fatalf("no windowed throughput: %+v", d.Shards)
	}

	// Windowed op series: put and get both completed in this window.
	opCount := map[string]uint64{}
	for _, op := range d.Ops {
		opCount[op.Op] = op.Count
	}
	if opCount["put"] != 64 || opCount["get"] != 64 {
		t.Fatalf("windowed op counts: %+v", opCount)
	}

	// Stage waterfall: every latency stage saw every spanned request,
	// and the per-stage p99s account for the end-to-end p99 (each span's
	// stages sum exactly to its recv→ack latency, so the quantile-space
	// shares land near 1.0 — bucket interpolation keeps them honest).
	if d.E2E.Count == 0 || d.E2E.P99NS == 0 {
		t.Fatalf("no windowed e2e series: %+v", d.E2E)
	}
	if len(d.Stages) != flight.NumLatStages {
		t.Fatalf("stages = %d, want %d", len(d.Stages), flight.NumLatStages)
	}
	var shareSum float64
	for _, st := range d.Stages {
		if st.Count == 0 {
			t.Fatalf("stage %q saw no requests: %+v", st.Stage, d.Stages)
		}
		shareSum += st.ShareP99
	}
	if shareSum < 0.5 || shareSum > 2.0 {
		t.Fatalf("stage p99 shares sum to %.2f of the e2e p99 (stages: %+v)", shareSum, d.Stages)
	}

	// SLO accounting covers the spanned data requests.
	if d.SLO.Total != 128 || d.SLO.ObjectiveNS != int64(20*time.Millisecond) {
		t.Fatalf("slo: %+v", d.SLO)
	}

	// At least one tail exemplar, resolvable to a flight-dump span.
	if len(d.Exemplars) == 0 {
		t.Fatal("no tail exemplars captured")
	}
	dumpPath := srv.FlightDumpPath()
	if err := srv.WriteFlightDump(dumpPath, "test"); err != nil {
		t.Fatal(err)
	}
	dump, err := flight.LoadDump(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	ex := d.Exemplars[0]
	if ex.SpanID == 0 || ex.LatNS <= 0 {
		t.Fatalf("exemplar incomplete: %+v", ex)
	}
	found := false
	for i := range dump.Slow {
		if dump.Slow[i].ID == ex.SpanID {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplar span %d not in the flight dump's slow ring (%d spans)", ex.SpanID, len(dump.Slow))
	}

	// History trend arrays cover the retained windows.
	if len(d.History.WindowNS) != d.WindowsRetained || d.WindowsRetained == 0 {
		t.Fatalf("history: %+v", d.History)
	}

	// The windowed series also reach the OpenMetrics exposition.
	code, body = httpGet(t, "http://"+srv.HTTPAddr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, series := range []string{
		"pmserver_pulse_e2e_p99_ns", "pmserver_pulse_shard_throughput_milli",
		"pmserver_pulse_stage_share_milli", "pmserver_pulse_slo_burn_milli",
		"pmserver_op_latency_ns_count", // cumulative series still alongside
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("metrics missing %s:\n%s", series, body)
		}
	}

	// Bad windows parameter is a 400, not a panic or a silent default.
	if code, _ = httpGet(t, "http://"+srv.HTTPAddr()+"/pulse.json?windows=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus windows param: status %d", code)
	}
}

// TestHealthzDegraded exercises both degraded transitions: a window
// with log-wrap pressure over threshold flips /healthz to 200/degraded
// with a reason naming the shard, and a following calm window flips it
// back to ok.
func TestHealthzDegraded(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.HTTPAddr = "127.0.0.1:0"
	cfg.PulseInterval = time.Hour  // windows closed manually
	cfg.DegradedWrapRate = 0.00001 // any log movement in a window trips it
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	type report struct {
		OK      bool     `json:"ok"`
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	health := func() (int, report) {
		code, body := httpGet(t, "http://"+srv.HTTPAddr()+"/healthz")
		var rep report
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("healthz unparsable: %v\n%s", err, body)
		}
		return code, rep
	}

	// Before the first window closes there is no windowed evidence:
	// healthy, not degraded.
	if code, rep := health(); code != http.StatusOK || rep.Status != "ok" || !rep.OK {
		t.Fatalf("pre-window health: %d %+v", code, rep)
	}

	// A burst of writes advances the log inside the next window.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	for i := 0; i < 32; i++ {
		if err := c.Put([]byte{byte(i)}, []byte("wrap-pressure")); err != nil {
			t.Fatal(err)
		}
	}
	srv.Pulse().Tick()
	code, rep := health()
	if code != http.StatusOK {
		t.Fatalf("degraded must stay 200 (still serving): %d", code)
	}
	if rep.Status != "degraded" || !rep.OK || len(rep.Reasons) == 0 {
		t.Fatalf("expected degraded with reasons: %+v", rep)
	}
	if !strings.Contains(rep.Reasons[0], "wrap rate") {
		t.Fatalf("reason does not name wrap pressure: %q", rep.Reasons[0])
	}

	// A calm window (no log movement) clears the state.
	srv.Pulse().Tick()
	if code, rep := health(); code != http.StatusOK || rep.Status != "ok" || len(rep.Reasons) != 0 {
		t.Fatalf("post-calm health: %d %+v", code, rep)
	}
}
