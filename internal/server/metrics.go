package server

import (
	"bytes"
	"fmt"
	"time"

	"pmemlog/internal/flight"
	"pmemlog/internal/obs"
)

// Observability wiring for the server: a metrics registry answering
// OpMetrics in Prometheus text exposition format, per-op latency
// histograms, and (when Config.TraceEvents > 0) an event tracer whose
// rings follow the request path — receive on the network ring, then
// enqueue/apply/ack on the owning shard's ring. Trace timestamps are
// nanoseconds since server start, so a captured server trace feeds the
// same Chrome trace_event exporter as a simulator trace (with -ghz 1 a
// "cycle" is one nanosecond).

// opName labels request opcodes for metric series.
func opName(code byte) string {
	switch code {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpTxn:
		return "txn"
	case OpStats:
		return "stats"
	case OpMetrics:
		return "metrics"
	}
	return "unknown"
}

// dataOps are the opcodes that get latency histograms and per-op
// request counters; introspection opcodes are excluded so scraping the
// server does not perturb the series being scraped.
var dataOps = []byte{OpGet, OpPut, OpDel, OpTxn}

// initObs builds the registry handles and (optionally) the tracer.
// Called once from Start before any request can arrive.
func (s *Server) initObs() {
	s.t0 = time.Now()
	s.reg = obs.NewRegistry()
	s.opHist = make(map[byte]*obs.Histogram, len(dataOps))
	s.opCount = make(map[byte]*obs.Counter, len(dataOps))
	for _, code := range dataOps {
		lbl := fmt.Sprintf("op=%q", opName(code))
		s.opHist[code] = s.reg.Histogram("pmserver_op_latency_ns", lbl,
			"request latency from dispatch to response, nanoseconds")
		s.opCount[code] = s.reg.Counter("pmserver_requests_total", lbl,
			"requests dispatched by opcode")
	}
	s.mRetries = s.reg.Counter("pmserver_retries_total", "",
		"requests answered with backpressure (queue full or draining)")
	if s.cfg.TraceEvents > 0 {
		// Ring i = shard i; the last ring is the shared network ring.
		// The tracer doubles as the flight recorder's black box, so it
		// is created and recording from the first request; Disable/Enable
		// still work for explicit capture windows (pmtrace workflows).
		s.tracer = obs.NewTracer(s.cfg.Shards+1, s.cfg.TraceEvents)
		s.tracer.Enable()
	}
	thresholdNS := s.cfg.SlowThreshold.Nanoseconds()
	if thresholdNS < 0 {
		thresholdNS = 0 // capture disabled
	}
	s.flight = flight.NewTable(s.cfg.FlightSpans, s.cfg.SlowSpans, thresholdNS)
}

// nowNS is the trace clock: nanoseconds since server start.
func (s *Server) nowNS() uint64 { return uint64(time.Since(s.t0)) }

// Tracer exposes the server's event tracer; nil unless Config.TraceEvents
// was set. Enable it, drive traffic, then Snapshot — the events slot into
// obs.WriteChromeTrace with TracerRingNames for labels.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// TracerRingNames labels the tracer rings for trace export.
func (s *Server) TracerRingNames() []string {
	names := make([]string, s.cfg.Shards+1)
	for i := 0; i < s.cfg.Shards; i++ {
		names[i] = fmt.Sprintf("shard %d", i)
	}
	names[s.cfg.Shards] = "network"
	return names
}

// netRing is the tracer ring shared by connection goroutines.
func (s *Server) netRing() int { return s.cfg.Shards }

// metricsResponse renders the Prometheus text-format document answered
// to OpMetrics. Machine-level counters (keys, txns, log traffic) come
// from a fresh stats probe of every shard and are published as gauges
// set at render time; the request-path counters and latency histograms
// are live registry handles updated in dispatch.
func (s *Server) metricsResponse() Response {
	snap, err := s.Stats()
	if err != nil {
		s.noteRetry()
		return Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs}
	}
	set := func(name, labels, help string, v uint64) {
		s.reg.Gauge(name, labels, help).Set(int64(v))
	}
	set("pmserver_connections_accepted", "", "TCP connections accepted since start", snap.Accepted)
	set("pmserver_cross_shard_rejects", "", "TXN batches rejected for spanning shards", snap.CrossShard)
	set("pmserver_keys", "", "live keys across all shards", snap.Keys)
	set("pmserver_txns_committed", "", "transactions committed on the simulated machines", snap.Txns)
	set("pmserver_log_appends", "", "undo+redo log records appended", snap.LogAppends)
	set("pmserver_log_truncated", "", "log records reclaimed by truncation", snap.LogTrunc)
	set("pmserver_fwb_scans", "", "force write-back scans completed", snap.FwbScans)
	set("pmserver_nvram_write_bytes", "", "bytes written to simulated NVRAM", snap.NVRAMBytes)
	for _, st := range snap.ShardStats {
		lbl := fmt.Sprintf("shard=\"%d\"", st.ID)
		set("pmserver_shard_queue_len", lbl, "requests waiting in the shard queue", uint64(st.QueueLen))
		set("pmserver_shard_batches", lbl, "request batches executed", st.Batches)
		set("pmserver_shard_saves", lbl, "atomic image saves taken", st.Saves)
	}
	for i, rs := range s.tracer.RingStats() {
		name := "network"
		if i < s.cfg.Shards {
			name = fmt.Sprintf("shard-%d", i)
		}
		lbl := fmt.Sprintf("ring=%q", name)
		set("pmserver_trace_emitted", lbl, "trace events emitted into this ring since start", rs.Emitted)
		set("pmserver_trace_dropped", lbl, "trace events overwritten before any snapshot read them", rs.Dropped)
	}
	set("pmserver_span_drops", "", "requests not span-tracked because the flight table was full", s.flight.Drops())
	set("pmserver_spans_in_flight", "", "request spans currently in flight", uint64(s.flight.InFlightCount()))
	set("pmserver_slow_spans_captured", "", "slow-request span snapshots retained by tail sampling", s.flight.SlowCaptured())
	s.pulseGauges()
	s.scopeGauges()
	var buf bytes.Buffer
	if err := s.reg.WritePrometheus(&buf); err != nil {
		return Response{Status: StatusErr, Err: err.Error()}
	}
	return Response{Status: StatusOK, Val: buf.Bytes()}
}

// noteRetry bumps both the snapshot counter and the metrics series.
func (s *Server) noteRetry() {
	s.retries.Add(1)
	s.mRetries.Inc()
}
