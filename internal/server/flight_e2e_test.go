package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"pmemlog/internal/flight"
)

// TestSpanEndToEndTimeline follows one spanned request through the
// whole pipeline: the slow-capture ring must retain its span with
// every stage timestamp, an attributed machine transaction, and a log
// window, and the dump's trace rings must reassemble its causal
// timeline across both the server's request rings and the shard
// machine's cycle-clock rings.
func TestSpanEndToEndTimeline(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.SlowThreshold = time.Nanosecond // tail-sample everything
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	c.EnableSpans()
	if err := c.Put([]byte("traced-key"), []byte("traced-val")); err != nil {
		t.Fatal(err)
	}

	path := srv.FlightDumpPath()
	if err := srv.WriteFlightDump(path, "manual"); err != nil {
		t.Fatal(err)
	}
	d, err := flight.LoadDump(path)
	if err != nil {
		t.Fatal(err)
	}

	var sp *flight.SpanSnapshot
	for i := range d.Slow {
		if d.Slow[i].Op == OpPut {
			sp = &d.Slow[i]
		}
	}
	if sp == nil {
		t.Fatalf("no PUT span in the slow ring; slow=%d in-flight=%d", len(d.Slow), len(d.InFlight))
	}
	if sp.ID == 0 || sp.Shard < 0 || sp.Status != int(StatusOK) {
		t.Fatalf("span incomplete: %+v", sp)
	}
	if !(sp.RecvNS > 0 && sp.EnqueueNS >= sp.RecvNS && sp.ApplyNS >= sp.EnqueueNS && sp.AckNS >= sp.ApplyNS) {
		t.Fatalf("stage timestamps not monotonic: recv=%d enqueue=%d apply=%d ack=%d",
			sp.RecvNS, sp.EnqueueNS, sp.ApplyNS, sp.AckNS)
	}
	if sp.TxID == 0 || sp.TxCommitCyc == 0 {
		t.Fatalf("span has no attributed machine txn: %+v", sp)
	}
	if sp.LogLast <= sp.LogFirst {
		t.Fatalf("PUT appended no log records: window [%d,%d)", sp.LogFirst, sp.LogLast)
	}

	tl := d.Timeline(sp.ID)
	kinds := map[string]bool{}
	machineEvents := 0
	for _, e := range tl {
		kinds[e.Kind] = true
		if e.Ring > cfg.Shards { // beyond network ring = merged machine rings
			machineEvents++
		}
	}
	for _, want := range []string{"srv-recv", "srv-enqueue", "srv-apply", "srv-ack"} {
		if !kinds[want] {
			t.Errorf("timeline missing %s; kinds=%v", want, kinds)
		}
	}
	if machineEvents == 0 {
		t.Errorf("timeline has no shard-machine events (log appends etc.); got %d events", len(tl))
	}
}

// TestHealthz exercises the readiness endpoint: JSON body with
// per-shard queue and log-wrap pressure, 200 while serving.
func TestHealthz(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.HTTPAddr = "127.0.0.1:0"
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if srv.HTTPAddr() == "" {
		t.Fatal("HTTPAddr empty with HTTPAddr configured")
	}

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	if err := c.Put([]byte("hk"), []byte("hv")); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		OK       bool   `json:"ok"`
		Draining bool   `json:"draining"`
		Mode     string `json:"mode"`
		UptimeNS int64  `json:"uptime_ns"`
		Shards   []struct {
			Shard     int     `json:"shard"`
			QueueCap  int     `json:"queue_cap"`
			LogPass   uint64  `json:"log_pass"`
			Occupancy float64 `json:"log_occupancy"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("healthz body unparsable: %v\n%s", err, body)
	}
	if !rep.OK || rep.Draining || rep.UptimeNS <= 0 {
		t.Fatalf("healthz not ready: %+v", rep)
	}
	if len(rep.Shards) != cfg.Shards {
		t.Fatalf("healthz shards = %d, want %d", len(rep.Shards), cfg.Shards)
	}
	for _, sh := range rep.Shards {
		if sh.QueueCap != cfg.QueueDepth {
			t.Fatalf("shard %d queue_cap = %d, want %d", sh.Shard, sh.QueueCap, cfg.QueueDepth)
		}
		if sh.Occupancy < 0 || sh.Occupancy > 1 {
			t.Fatalf("shard %d occupancy = %v", sh.Shard, sh.Occupancy)
		}
	}
}

// TestStatsFlightCounters checks the stats-surface satellites: tracer
// ring emit/drop counts and span-table counters appear in the snapshot
// and the Prometheus exposition.
func TestStatsFlightCounters(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.SlowThreshold = time.Nanosecond
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10
	c.EnableSpans()
	for i := 0; i < 8; i++ {
		if err := c.Put([]byte{byte('a' + i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.TracerRings) != cfg.Shards+1 {
		t.Fatalf("tracer_rings = %d, want %d", len(snap.TracerRings), cfg.Shards+1)
	}
	if snap.TracerEmitted == 0 {
		t.Fatal("tracer_emitted = 0 after traffic")
	}
	if snap.SlowSpans == 0 {
		t.Fatal("slow_spans_captured = 0 with a 1ns threshold")
	}
	// The stats request is itself spanned and still unanswered while the
	// snapshot is taken, so exactly one span is in flight.
	if snap.SpanInFlight != 1 {
		t.Fatalf("spans_in_flight = %d, want 1 (the stats request itself)", snap.SpanInFlight)
	}

	expo, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pmserver_trace_emitted", "pmserver_trace_dropped",
		"pmserver_span_drops", "pmserver_spans_in_flight", "pmserver_slow_spans_captured",
	} {
		if !bytes.Contains(expo, []byte(want)) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestFlightDumpKillRecoveryAgreement is the acceptance test for the
// flight recorder: capture a dump while requests are genuinely in
// flight (transaction attributed, ack not yet sent), kill the server,
// and check the doctor's analysis reconstructs those requests'
// timelines with verdicts that agree with what recovery actually
// replays from the post-kill images.
func TestFlightDumpKillRecoveryAgreement(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Spanned writers hammer the server until told to stop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				return
			}
			defer c.Close()
			c.MaxRetries = 50
			c.EnableSpans()
			val := make([]byte, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("w%d-%03d", w, i%40))
				val[0], val[1] = byte(w), byte(i)
				if err := c.Put(key, val); err != nil {
					return
				}
			}
		}(w)
	}

	// Keep dumping until a dump catches a span mid-pipeline with its
	// machine transaction already attributed (the post-apply, pre-ack
	// window — held open by the shard's durable save).
	path := srv.FlightDumpPath()
	var d *flight.Dump
	var caught []flight.SpanSnapshot
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if err := srv.WriteFlightDump(path, "kill-test"); err != nil {
			t.Fatal(err)
		}
		dd, err := flight.LoadDump(path)
		if err != nil {
			t.Fatal(err)
		}
		caught = caught[:0]
		for _, sp := range dd.InFlight {
			if sp.TxID != 0 && sp.Shard >= 0 {
				caught = append(caught, sp)
			}
		}
		if len(caught) > 0 {
			d = dd
			break
		}
	}
	if d == nil {
		close(stop)
		wg.Wait()
		srv.Shutdown()
		t.Fatal("no dump caught an in-flight span with an attributed txn in 20s")
	}

	srv.Kill()
	close(stop)
	wg.Wait()

	// Doctor the dump against the post-kill images.
	an, err := flight.Analyze(d, func(shard int) (io.ReadCloser, error) {
		for _, st := range d.ShardStates {
			if st.Shard == shard {
				return os.Open(st.ImagePath)
			}
		}
		return nil, fmt.Errorf("no image for shard %d", shard)
	})
	if err != nil {
		t.Fatal(err)
	}
	findings := an.Findings()
	if len(findings) == 0 {
		t.Fatalf("analysis produced no findings for %d caught spans", len(caught))
	}
	timelines := 0
	for _, f := range findings {
		if !f.Agrees {
			t.Errorf("span %d txn %d: verdict %s disagrees with recovery (committed=%v uncommitted=%v)",
				f.Span.ID, f.Span.TxID, f.Verdict, f.RecoveryCommitted, f.RecoveryUncommitted)
		}
		if len(f.Timeline) > 0 {
			timelines++
		}
	}
	if !an.Agreement() {
		t.Fatal("flight-recorder verdicts disagree with the recovery replay")
	}
	if timelines == 0 {
		t.Fatal("no finding carried a reconstructed causal timeline")
	}

	// The dump's story must survive an actual restart too: the server
	// that re-attaches these images boots clean.
	cfg2 := testConfig(dir)
	srv2, err := Start(cfg2)
	if err != nil {
		t.Fatalf("restart after kill: %v", err)
	}
	srv2.Shutdown()
	t.Logf("caught %d in-flight spans; %d findings, %d with timelines", len(caught), len(findings), timelines)
}
