package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pmemlog/internal/flight"
	"pmemlog/internal/obs/pulse"
)

// Pulse wiring: the server side of internal/obs/pulse. The collector
// samples each shard's loop-published atomics on an interval ticker,
// the conn writers fold every finished spanned request into the stage
// and end-to-end histograms (and offer it to the tail-exemplar
// capture), and the HTTP listener serves the windowed document at
// /pulse.json — what pmtop renders.

// initPulse builds the stage/e2e/SLO registry handles and the windowed
// collector. Called from Start after the shards exist; the ticker
// goroutine is launched alongside the shard loops.
func (s *Server) initPulse() {
	s.e2eHist = s.reg.Histogram("pmserver_e2e_latency_ns", "",
		"recv to ack latency of span-tracked data requests, nanoseconds")
	for i := 0; i < flight.NumLatStages; i++ {
		lbl := fmt.Sprintf("stage=%q", flight.LatStageName(i))
		s.stageHist[i] = s.reg.Histogram("pmserver_stage_latency_ns", lbl,
			"per-stage latency of span-tracked data requests, nanoseconds")
	}
	s.sloTotal = s.reg.Counter("pmserver_slo_requests_total", "",
		"span-tracked data requests measured against the latency objective")
	s.sloBad = s.reg.Counter("pmserver_slo_bad_total", "",
		"span-tracked data requests over the latency objective")
	s.pulseStop = make(chan struct{})
	c := pulse.New(pulse.Config{
		Interval:     s.cfg.PulseInterval,
		Windows:      s.cfg.PulseWindows,
		Shards:       s.cfg.Shards,
		SampleShard:  s.sampleShard,
		NowNS:        func() int64 { return int64(s.nowNS()) },
		SLOLatencyNS: int64(s.cfg.SLOLatency),
		SLOBudget:    s.cfg.SLOBudget,
	})
	for _, code := range dataOps {
		c.TrackOp(opName(code), s.opHist[code])
	}
	for i := 0; i < flight.NumLatStages; i++ {
		c.TrackStage(flight.LatStageName(i), s.stageHist[i])
	}
	c.TrackE2E(s.e2eHist)
	c.TrackSLO(s.sloTotal, s.sloBad)
	s.pulse = c
}

// Pulse exposes the windowed collector (tests and tooling tick it
// manually; the server's own ticker runs at Config.PulseInterval).
func (s *Server) Pulse() *pulse.Collector { return s.pulse }

// sampleShard reads one shard's loop-published view for the collector.
// Atomic loads only — never blocks on or probes the shard loop.
func (s *Server) sampleShard(i int, out *pulse.ShardSample) {
	sh := s.shards[i]
	out.QueueLen = len(sh.queue)
	out.QueueCap = cap(sh.queue)
	out.LogHead = sh.pubHead.Load()
	out.LogTail = sh.pubTail.Load()
	out.LogCap = sh.pubCap.Load()
	out.Requests = sh.pubRequests.Load()
	out.Batches = sh.pubBatches.Load()
	out.Saves = sh.pubSaves.Load()
	out.Txns = sh.pubTxns.Load()
	out.LogAppends = sh.pubLogAppends.Load()
	out.LogTruncated = sh.pubLogTrunc.Load()
	out.FwbScans = sh.pubFwbScans.Load()
	out.NVRAMWriteBytes = sh.pubNVRAMBytes.Load()
	out.PayloadBytes = sh.pubPayloadBytes.Load()
	out.LogUndoBytes = sh.pubLogUndoBytes.Load()
	out.LogRedoBytes = sh.pubLogRedoBytes.Load()
	out.LogHeaderBytes = sh.pubLogHeaderBytes.Load()
	out.LogChecksumBytes = sh.pubLogChecksumBytes.Load()
	out.LogBusBytes = sh.pubLogBusBytes.Load()
	out.DataBusBytes = sh.pubDataBusBytes.Load()
	out.UpdateAppends = sh.pubUpdateAppends.Load()
	out.CoalescibleAppends = sh.pubCoalescible.Load()
	out.ForcedWB = sh.pubForcedWB.Load()
	out.NaturalWB = sh.pubNaturalWB.Load()
	out.WastedForcedWB = sh.pubWastedForcedWB.Load()
	out.FwbFlagged = sh.pubFwbFlagged.Load()
	out.TxnsMeasured = sh.pubTxnsMeasured.Load()
	out.TxnAmpMilliSum = sh.pubTxnAmpMilliSum.Load()
	out.LiveRecords = sh.pubLiveRecords.Load()
}

// observeFinish folds one completed request into the latency series at
// its ack point (the response reaching the writer), offers it to the
// pulse exemplar capture, and releases its span. Only span-tracked data
// requests feed the e2e/stage/SLO series, so stage shares and the SLO
// burn are computed over the same population the exemplars come from.
// Hot path: allocation-free (the span snapshot is a stack scratch).
func (s *Server) observeFinish(cr *connReq) {
	if h := s.opHist[cr.code]; h != nil {
		h.Observe(uint64(time.Since(cr.start)))
		if sp := cr.span; sp != nil {
			ackNS := int64(s.nowNS())
			var snap flight.SpanSnapshot
			sp.SnapshotInto(&snap)
			snap.AckNS = ackNS
			if e2e := ackNS - snap.RecvNS; e2e > 0 {
				s.e2eHist.Observe(uint64(e2e))
				s.sloTotal.Inc()
				if e2e > int64(s.cfg.SLOLatency) {
					s.sloBad.Inc()
				}
				var st [flight.NumLatStages]int64
				snap.StageDurations(&st)
				for i, d := range st {
					if d >= 0 {
						s.stageHist[i].Observe(uint64(d))
					}
				}
			}
			s.pulse.NoteFinished(sp, cr.resp.Status, ackNS)
		}
	}
	// Finish recycles the span slot (and tail-samples slow requests), so
	// the span must not be touched after this.
	s.flight.Finish(cr.span, cr.resp.Status, int64(s.nowNS()))
	cr.span, cr.spanTag = nil, 0
}

// pulseJSON serves the windowed telemetry document. ?windows=N sets how
// many completed windows the summary aggregates (default 5).
func (s *Server) pulseJSON(w http.ResponseWriter, r *http.Request) {
	over := 5
	if v := r.URL.Query().Get("windows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "windows: want a positive integer", http.StatusBadRequest)
			return
		}
		over = n
	}
	d := s.pulse.BuildDoc(over)
	d.Addr = s.Addr()
	d.Mode = s.cfg.Mode.String()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(d)
}

// metricsHTTP serves the same Prometheus document as the OpMetrics wire
// op on the HTTP listener, for scrapers that speak HTTP only.
func (s *Server) metricsHTTP(w http.ResponseWriter, _ *http.Request) {
	resp := s.metricsResponse()
	if resp.Status != StatusOK {
		http.Error(w, resp.Err, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write(resp.Val)
}

// pulseGauges publishes the latest completed window as pmserver_pulse_*
// gauges so one /metrics scrape carries windowed rates and quantiles
// alongside the cumulative series. The registry stores int64: per-sec
// rates are rounded, fractions are scaled to _milli (×1000).
func (s *Server) pulseGauges() {
	d := s.pulse.BuildDoc(1)
	if d.WindowsAggregated == 0 {
		return
	}
	set := func(name, labels, help string, v int64) {
		s.reg.Gauge(name, labels, help).Set(v)
	}
	set("pmserver_pulse_window_seq", "", "completed pulse windows since start", int64(d.Seq))
	set("pmserver_pulse_e2e_p50_ns", "", "windowed end-to-end p50, nanoseconds", int64(d.E2E.P50NS))
	set("pmserver_pulse_e2e_p99_ns", "", "windowed end-to-end p99, nanoseconds", int64(d.E2E.P99NS))
	set("pmserver_pulse_e2e_p999_ns", "", "windowed end-to-end p99.9, nanoseconds", int64(d.E2E.P999NS))
	set("pmserver_pulse_e2e_rate_milli", "", "windowed end-to-end completions per second, x1000", int64(d.E2E.RatePerSec*1000))
	set("pmserver_pulse_slo_burn_milli", "", "windowed SLO burn rate, x1000", int64(d.SLO.BurnRate*1000))
	for _, st := range d.Stages {
		lbl := fmt.Sprintf("stage=%q", st.Stage)
		set("pmserver_pulse_stage_p99_ns", lbl, "windowed per-stage p99, nanoseconds", int64(st.P99NS))
		set("pmserver_pulse_stage_share_milli", lbl, "stage p99 as a share of the e2e p99, x1000", int64(st.ShareP99*1000))
	}
	for _, op := range d.Ops {
		lbl := fmt.Sprintf("op=%q", op.Op)
		set("pmserver_pulse_op_p99_ns", lbl, "windowed per-op p99, nanoseconds", int64(op.P99NS))
		set("pmserver_pulse_op_rate_milli", lbl, "windowed per-op completions per second, x1000", int64(op.RatePerSec*1000))
	}
	for _, sd := range d.Shards {
		lbl := fmt.Sprintf("shard=\"%d\"", sd.Shard)
		set("pmserver_pulse_shard_throughput_milli", lbl, "windowed shard requests per second, x1000", int64(sd.ThroughputPerSec*1000))
		set("pmserver_pulse_shard_wrap_rate_milli", lbl, "windowed circular-log passes per second, x1000", int64(sd.WrapRatePerSec*1000))
		set("pmserver_pulse_shard_occupancy_milli", lbl, "live log window over capacity, x1000", int64(sd.LogOccupancy*1000))
		set("pmserver_pulse_shard_queue_len", lbl, "shard queue length at the last window close", int64(sd.QueueLen))
	}
}

// scopeGauges publishes the latest completed window's persistence-domain
// cost view as pmserver_scope_* gauges, beside the pulse gauges. Same
// conventions: rates rounded to int64, fractions/ratios scaled ×1000
// with a _milli suffix, ETAs in whole seconds (-1 = unknown).
func (s *Server) scopeGauges() {
	d := s.pulse.BuildDoc(1)
	if d.WindowsAggregated == 0 {
		return
	}
	set := func(name, labels, help string, v int64) {
		s.reg.Gauge(name, labels, help).Set(v)
	}
	sc := &d.Scope
	set("pmserver_scope_write_amp_milli", "", "windowed NVRAM write amplification (log+WB over payload), x1000", int64(sc.WriteAmp*1000))
	set("pmserver_scope_payload_bytes_per_sec", "", "windowed application payload bytes per second", int64(sc.PayloadBytesPerSec))
	set("pmserver_scope_log_bytes_per_sec", "", "windowed NVRAM log bytes per second, all classes", int64(sc.LogBytesPerSec))
	set("pmserver_scope_wb_bytes_per_sec", "", "windowed NVRAM data write-back bytes per second", int64(sc.WBBytesPerSec))
	set("pmserver_scope_coalescible_milli", "", "fraction of update appends re-hitting a line their txn logged, x1000", int64(sc.CoalescibleFraction*1000))
	for i := range sc.Shards {
		sd := &sc.Shards[i]
		lbl := fmt.Sprintf("shard=\"%d\"", sd.Shard)
		set("pmserver_scope_shard_write_amp_milli", lbl, "windowed shard write amplification, x1000", int64(sd.WriteAmp*1000))
		set("pmserver_scope_shard_txn_write_amp_milli", lbl, "mean per-txn log-bytes over payload, x1000", int64(sd.TxnWriteAmpMean*1000))
		set("pmserver_scope_shard_payload_bytes_per_sec", lbl, "windowed shard payload bytes per second", int64(sd.PayloadBytesPerSec))
		set("pmserver_scope_shard_log_bytes_per_sec", lbl, "windowed shard log bytes per second", int64(sd.LogBytesPerSec))
		set("pmserver_scope_shard_log_undo_bytes_per_sec", lbl, "windowed log bytes paying for undo words, per second", int64(sd.LogUndoBytesPerSec))
		set("pmserver_scope_shard_log_redo_bytes_per_sec", lbl, "windowed log bytes paying for redo words, per second", int64(sd.LogRedoBytesPerSec))
		set("pmserver_scope_shard_log_header_bytes_per_sec", lbl, "windowed log bytes paying for headers and metadata, per second", int64(sd.LogHeaderBytesPerSec))
		set("pmserver_scope_shard_log_checksum_bytes_per_sec", lbl, "windowed log bytes paying for record checksums, per second", int64(sd.LogChecksumBytesPerSec))
		set("pmserver_scope_shard_forced_wb_bytes_per_sec", lbl, "windowed FWB-forced write-back bytes per second", int64(sd.ForcedWBBytesPerSec))
		set("pmserver_scope_shard_natural_wb_bytes_per_sec", lbl, "windowed eviction/flush write-back bytes per second", int64(sd.NaturalWBBytesPerSec))
		set("pmserver_scope_shard_coalescible_milli", lbl, "coalescible fraction of update appends, x1000", int64(sd.CoalescibleFraction*1000))
		set("pmserver_scope_shard_wasted_forced_milli", lbl, "fraction of forced write-backs re-dirtied before the next scan, x1000", int64(sd.WastedForcedFraction*1000))
		set("pmserver_scope_shard_fwb_forced_per_scan_milli", lbl, "lines forced out per FWB scan pass, x1000", int64(sd.FwbForcedPerScan*1000))
		set("pmserver_scope_shard_live_records", lbl, "records currently live in the circular log", int64(sd.LiveRecords))
		set("pmserver_scope_shard_replay_est_records", lbl, "estimated recovery replay cost in records", int64(sd.ReplayEstRecords))
		set("pmserver_scope_shard_wrap_eta_seconds", lbl, "forecast seconds until the next log wrap (-1 = unknown)", int64(sd.WrapETASeconds))
		set("pmserver_scope_shard_full_eta_seconds", lbl, "forecast seconds until the log runs out of free records (-1 = unknown)", int64(sd.FullETASeconds))
	}
}
