package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"pmemlog/internal/flight"
)

// Flight-recorder surface of the server: assembling the black-box dump
// (obs rings, metrics registry, shard queue/log pressure, in-flight and
// slow span tables) and the /healthz readiness endpoint. The dump path
// must work while the process is dying — it reads only atomics and
// loop-published state, never enqueues to a possibly-dead shard.

// FlightDumpPath is where panic/SIGTERM dumps land: next to the shard
// images, so pmdoctor finds both halves of the evidence together.
func (s *Server) FlightDumpPath() string {
	return filepath.Join(s.cfg.Dir, "flight-dump.json")
}

// WriteFlightDump snapshots the flight recorder to path. Safe to call
// at any time, including concurrently with live traffic (span and ring
// snapshots tolerate racing requests) and from the panic hook.
func (s *Server) WriteFlightDump(path, reason string) error {
	s.dumpMu.Lock()
	defer s.dumpMu.Unlock()
	return flight.WriteDump(path, s.buildDump(reason))
}

// buildDump assembles the dump document from lock-free state only.
func (s *Server) buildDump(reason string) *flight.Dump {
	d := &flight.Dump{
		Reason:       reason,
		CapturedAtNS: time.Now().UnixNano(),
		UptimeNS:     int64(s.nowNS()),
		Addr:         s.Addr(),
		Mode:         s.cfg.Mode.String(),
		Shards:       s.cfg.Shards,
		SpanDrops:    s.flight.Drops(),
		SlowCaptured: s.flight.SlowCaptured(),
		InFlight:     s.flight.InFlight(),
		Slow:         s.flight.Slow(),
		Chaos:        s.cfg.Chaos.Ledger(),
	}
	if s.tracer != nil {
		d.RingNames = s.TracerRingNames()
		d.RingStats = s.tracer.RingStats()
		d.Events = flight.ConvertEvents(s.tracer.Snapshot())
	}
	// The registry renders from plain atomics; the stats-probe gauges
	// (key counts etc.) are skipped on purpose — a dump must not wait on
	// a shard that may be wedged or mid-panic.
	var buf bytes.Buffer
	if err := s.reg.WritePrometheus(&buf); err == nil {
		d.Metrics = buf.String()
	}
	for _, sh := range s.shards {
		d.ShardStates = append(d.ShardStates, flight.ShardState{
			Shard:     sh.id,
			QueueLen:  len(sh.queue),
			QueueCap:  cap(sh.queue),
			LogHead:   sh.pubHead.Load(),
			LogTail:   sh.pubTail.Load(),
			LogCap:    sh.pubCap.Load(),
			LogBases:  sh.logBases,
			ImagePath: sh.imgPath,
		})
		// Merge the shard machine's own tracer (tx begin/commit, log
		// appends, cache/controller events — cycle timestamps) behind the
		// server's nanosecond request rings, ring indices remapped.
		if mt := sh.sys.Tracer(); mt != nil {
			base := len(d.RingNames)
			for _, name := range sh.sys.TracerRingNames() {
				d.RingNames = append(d.RingNames, fmt.Sprintf("shard %d/%s", sh.id, name))
			}
			d.RingStats = append(d.RingStats, mt.RingStats()...)
			evs := flight.ConvertEvents(mt.Snapshot())
			for i := range evs {
				evs[i].Ring += base
			}
			d.Events = append(d.Events, evs...)
		}
	}
	return d
}

// panicDump is the shard loops' crash hook: best-effort dump, then the
// panic continues (set up in Start).
func (s *Server) panicDump() {
	path := s.FlightDumpPath()
	if err := s.WriteFlightDump(path, "panic"); err != nil {
		s.cfg.Logger.Printf("pmserver: flight dump failed: %v", err)
		return
	}
	s.cfg.Logger.Printf("pmserver: flight dump written to %s", path)
}

// HTTPAddr returns the bound /healthz listener address, "" when the
// HTTP surface is disabled.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// healthShard is one shard's slice of the readiness report.
type healthShard struct {
	Shard     int     `json:"shard"`
	Attached  bool    `json:"attached"` // re-attached a persisted image at boot
	QueueLen  int     `json:"queue_len"`
	QueueCap  int     `json:"queue_cap"`
	LogPass   uint64  `json:"log_pass"`      // circular-log wrap count
	Occupancy float64 `json:"log_occupancy"` // live window / capacity
}

// healthReport is the /healthz JSON body. Status is "ok", "degraded"
// (still serving — HTTP 200 — but a windowed pressure threshold fired;
// Reasons says which), or "draining" (HTTP 503).
type healthReport struct {
	OK       bool          `json:"ok"`
	Status   string        `json:"status"`
	Reasons  []string      `json:"reasons,omitempty"`
	Draining bool          `json:"draining"`
	Mode     string        `json:"mode"`
	UptimeNS int64         `json:"uptime_ns"`
	Shards   []healthShard `json:"shards"`
}

// serveHTTP runs the operator HTTP listener until it is closed.
func (s *Server) serveHTTP(ln net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/pulse.json", s.pulseJSON)
	mux.HandleFunc("/metrics", s.metricsHTTP)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	srv.Serve(ln)
}

// healthz answers readiness from published state only (no shard probe):
// 200 while serving, 503 once draining. Wrap pressure per shard comes
// from the loop-published log pointers, the same view a dump captures;
// the degraded gate reads the pulse collector's latest completed window
// (a sustained view — a single busy batch cannot flap health), and
// before the first window closes the server is simply "ok".
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	rep := healthReport{
		OK:       !s.draining.Load(),
		Status:   "ok",
		Draining: s.draining.Load(),
		Mode:     s.cfg.Mode.String(),
		UptimeNS: int64(s.nowNS()),
	}
	if rep.Draining {
		rep.Status = "draining"
	}
	for _, sh := range s.shards {
		st := flight.ShardState{
			LogHead: sh.pubHead.Load(),
			LogTail: sh.pubTail.Load(),
			LogCap:  sh.pubCap.Load(),
		}
		rep.Shards = append(rep.Shards, healthShard{
			Shard:     sh.id,
			Attached:  sh.bootRep != nil,
			QueueLen:  len(sh.queue),
			QueueCap:  cap(sh.queue),
			LogPass:   st.Pass(),
			Occupancy: st.Occupancy(),
		})
		if rep.Draining {
			continue
		}
		if wrap, queueFrac, _, ok := s.pulse.ShardPressure(sh.id); ok {
			if wrap > s.cfg.DegradedWrapRate {
				rep.Status = "degraded"
				rep.Reasons = append(rep.Reasons, fmt.Sprintf(
					"shard %d: log wrap rate %.2f passes/s over threshold %.2f (reclamation pressure)",
					sh.id, wrap, s.cfg.DegradedWrapRate))
			}
			if queueFrac > s.cfg.DegradedQueue {
				rep.Status = "degraded"
				rep.Reasons = append(rep.Reasons, fmt.Sprintf(
					"shard %d: queue %.0f%% full over threshold %.0f%%",
					sh.id, 100*queueFrac, 100*s.cfg.DegradedQueue))
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if !rep.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(rep)
}
