package server

import (
	"fmt"
	"strings"
	"testing"

	"pmemlog/internal/obs"
)

// driveTraffic issues a representative request mix through one client.
func driveTraffic(t *testing.T, c *Client, puts int) {
	t.Helper()
	for i := 0; i < puts; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := c.Put(k, []byte("value")); err != nil {
			t.Fatal(err)
		}
		if _, found, err := c.Get(k); err != nil || !found {
			t.Fatalf("get %q: found=%v err=%v", k, found, err)
		}
	}
	if found, err := c.Del([]byte("key-000")); err != nil || !found {
		t.Fatalf("del: found=%v err=%v", found, err)
	}
	if err := c.Txn(sameShardOps(t, 2, 3)); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndpoint is the acceptance test for the metrics surface:
// OpMetrics answers Prometheus text exposition format including per-op
// latency histogram series, and the stats snapshot carries the matching
// quantile summaries.
func TestMetricsEndpoint(t *testing.T) {
	srv, err := Start(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10

	driveTraffic(t, c, 20)

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	body := string(text)
	for _, want := range []string{
		"# TYPE pmserver_op_latency_ns histogram",
		`pmserver_op_latency_ns_bucket{op="put",le="+Inf"}`,
		`pmserver_op_latency_ns_sum{op="get"}`,
		`pmserver_op_latency_ns_count{op="txn"}`,
		"# TYPE pmserver_requests_total counter",
		`pmserver_requests_total{op="get"}`,
		"# TYPE pmserver_txns_committed gauge",
		"pmserver_log_appends",
		"pmserver_nvram_write_bytes",
		`pmserver_shard_queue_len{shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", body)
		t.FailNow()
	}

	// Every line must be a comment or `series value` — the format a
	// Prometheus scraper would accept.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	put, ok := snap.OpLatencies["put"]
	if !ok || put.Count < 20 {
		t.Fatalf("op_latencies[put] = %+v (ok=%v), want count >= 20", put, ok)
	}
	if put.P50 == 0 || put.Max < put.P50 || put.P99 < put.P50 {
		t.Fatalf("implausible put latency summary: %+v", put)
	}
	if _, ok := snap.OpLatencies["get"]; !ok {
		t.Fatal("op_latencies missing get")
	}
}

// TestMetricsCountersMonotonic scrapes twice and checks the request
// counters moved with traffic.
func TestMetricsCountersMonotonic(t *testing.T) {
	srv, err := Start(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10

	counter := func(body, series string) uint64 {
		for _, line := range strings.Split(body, "\n") {
			var v uint64
			if n, _ := fmt.Sscanf(line, series+" %d", &v); n == 1 {
				return v
			}
		}
		t.Fatalf("series %q not found in:\n%s", series, body)
		return 0
	}
	series := `pmserver_requests_total{op="put"}`

	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	m1, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	before := counter(string(m1), series)
	for i := 0; i < 5; i++ {
		if err := c.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if after := counter(string(m2), series); after != before+5 {
		t.Fatalf("put counter %d -> %d, want +5", before, after)
	}
}

// TestServerTraceEvents checks the request-path tracer: receive on the
// network ring, enqueue/apply/ack on the owning shard's ring, in
// causal timestamp order per request class.
func TestServerTraceEvents(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.TraceEvents = 1 << 12
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	tr := srv.Tracer()
	if tr == nil {
		t.Fatal("TraceEvents set but Tracer() is nil")
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10

	tr.Enable()
	driveTraffic(t, c, 10)
	tr.Disable()

	evs := tr.Snapshot()
	kinds := map[obs.Kind]int{}
	for _, e := range evs {
		kinds[e.Kind]++
		switch e.Kind {
		case obs.KindSrvRecv:
			if int(e.Ring) != cfg.Shards {
				t.Fatalf("recv event on ring %d, want network ring %d", e.Ring, cfg.Shards)
			}
		case obs.KindSrvEnqueue, obs.KindSrvApply, obs.KindSrvAck:
			if int(e.Ring) >= cfg.Shards {
				t.Fatalf("%s event on ring %d, want a shard ring", e.Kind, e.Ring)
			}
		}
	}
	// 10 puts + 10 gets + 1 del + 1 txn = 22 data requests; stats and
	// metrics opcodes were not issued.
	for _, k := range []obs.Kind{obs.KindSrvRecv, obs.KindSrvEnqueue, obs.KindSrvApply, obs.KindSrvAck} {
		if kinds[k] != 22 {
			t.Fatalf("%s count = %d, want 22 (all kinds: %v)", k, kinds[k], kinds)
		}
	}
	if len(srv.TracerRingNames()) != cfg.Shards+1 {
		t.Fatalf("ring names %v, want %d entries", srv.TracerRingNames(), cfg.Shards+1)
	}
}
