package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"pmemlog/internal/flight"
	"pmemlog/internal/obs"
	"pmemlog/internal/recovery"
	"pmemlog/internal/sim"
	"pmemlog/internal/stats"
)

// request is one unit of work queued to a shard: either a client Request
// or an internal stats probe. Exactly one response is delivered — on the
// buffered resp channel (synchronous callers), or by handing the owning
// connReq back on its connection's out channel (pipelined connections) —
// so a shard never blocks on a departed client.
type request struct {
	req   *Request
	resp  chan Response   // synchronous client requests
	stats chan ShardStats // stats probes

	// Pipelined delivery: when pr is non-nil the shard fills pr.resp and
	// sends pr on out instead of using the resp channel. out has capacity
	// for the connection's whole in-flight window, so the send never
	// blocks.
	pr  *connReq
	out chan *connReq
}

// ShardStats is one shard's slice of the stats endpoint snapshot.
type ShardStats struct {
	ID            int              `json:"id"`
	Keys          uint64           `json:"keys"`
	HeapUsedBytes uint64           `json:"heap_used_bytes"`
	HeapSizeBytes uint64           `json:"heap_size_bytes"`
	QueueLen      int              `json:"queue_len"`
	QueueCap      int              `json:"queue_cap"`
	Batches       uint64           `json:"batches"`
	Saves         uint64           `json:"saves"`
	Requests      uint64           `json:"requests"`
	Run           stats.Run        `json:"run"`                // cumulative simulated-machine counters
	Recovery      *recovery.Report `json:"recovery,omitempty"` // boot-time recovery, if the shard attached an image
}

// shard owns one simulated persistent-memory machine and serializes all
// access to it: requests are batched off a bounded queue, each batch runs
// as a sequence of transactions through the HWL/FWB pipeline, the NVRAM
// DIMM image is atomically persisted, and only then are writes acked.
type shard struct {
	id       int
	sys      *sim.System
	st       *store
	imgPath  string
	queue    chan *request
	stop     chan struct{} // graceful: drain queue, final save, exit
	kill     chan struct{} // hard: exit without saving (power-cut analogue)
	done     chan struct{} // closed when the loop exits
	batchMax int

	// Loop-owned counters (read by the loop itself for stats probes).
	batches  uint64
	saves    uint64
	requests uint64
	unsaved  bool             // writes committed since the last image save
	bootRep  *recovery.Report // recovery report from attach, if any

	// Loop-owned scratch reused across batches so the steady-state batch
	// path performs no per-batch slice allocation.
	batch []*request
	resps []Response

	// Observability, installed by Start before loop() runs. tracer may
	// be nil (Emit/Enabled are nil-safe); ring sh.id is this shard's.
	tracer *obs.Tracer
	nowNS  func() uint64

	// onPanic, when set, writes a flight-recorder dump before the panic
	// propagates out of the shard loop and kills the process.
	onPanic func()

	// Published log state: head/tail/capacity refreshed by the loop after
	// every batch so a concurrent flight dump reads wrap pressure without
	// touching the loop-owned machine. logBases is static after newShard.
	pubHead  atomic.Uint64
	pubTail  atomic.Uint64
	pubCap   atomic.Uint64
	logBases []uint64

	// Published activity counters for the pulse sampler, refreshed with
	// the log state: the loop-owned counters above plus the machine's
	// cheap cumulative counters (sim.PulseCounters — the full Stats()
	// probe sorts a latency window and is too heavy for per-batch use).
	// pulseScratch is loop-owned.
	pubRequests   atomic.Uint64
	pubBatches    atomic.Uint64
	pubSaves      atomic.Uint64
	pubTxns       atomic.Uint64
	pubLogAppends atomic.Uint64
	pubLogTrunc   atomic.Uint64
	pubFwbScans   atomic.Uint64
	pubNVRAMBytes atomic.Uint64
	pulseScratch  sim.PulseCounters

	// Published scope (persistence-domain cost) counters, same bridge.
	pubPayloadBytes     atomic.Uint64
	pubLogUndoBytes     atomic.Uint64
	pubLogRedoBytes     atomic.Uint64
	pubLogHeaderBytes   atomic.Uint64
	pubLogChecksumBytes atomic.Uint64
	pubLogBusBytes      atomic.Uint64
	pubDataBusBytes     atomic.Uint64
	pubUpdateAppends    atomic.Uint64
	pubCoalescible      atomic.Uint64
	pubForcedWB         atomic.Uint64
	pubNaturalWB        atomic.Uint64
	pubWastedForcedWB   atomic.Uint64
	pubFwbFlagged       atomic.Uint64
	pubTxnsMeasured     atomic.Uint64
	pubTxnAmpMilliSum   atomic.Uint64
	pubLiveRecords      atomic.Uint64
}

// newShard builds (or re-attaches) one shard.
func newShard(id int, cfg sim.Config, nBuckets uint64, dir string, queueDepth, batchMax int) (*shard, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("server: shard %d: %w", id, err)
	}
	sh := &shard{
		id:       id,
		sys:      sys,
		imgPath:  filepath.Join(dir, fmt.Sprintf("shard-%03d.img", id)),
		queue:    make(chan *request, queueDepth),
		stop:     make(chan struct{}),
		kill:     make(chan struct{}),
		done:     make(chan struct{}),
		batchMax: batchMax,
	}
	if f, err := os.Open(sh.imgPath); err == nil {
		rep, err := sys.Attach(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("server: shard %d: attach %s: %w", id, sh.imgPath, err)
		}
		if sh.st, err = attachStore(sys, nBuckets); err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", id, err)
		}
		sh.bootRep = &rep
	} else if os.IsNotExist(err) {
		if sh.st, err = createStore(sys, nBuckets); err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", id, err)
		}
		// Persist the empty image immediately so a kill before the first
		// write still leaves a valid, attachable shard on disk.
		if err := sh.save(); err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", id, err)
		}
	} else {
		return nil, fmt.Errorf("server: shard %d: %w", id, err)
	}
	for _, base := range sys.LogBases() {
		sh.logBases = append(sh.logBases, uint64(base))
	}
	sh.publishLogState()
	return sh, nil
}

// publishLogState refreshes the atomically-published wrap-pressure and
// activity view (loop goroutine, or newShard before the loop starts).
// This is the only bridge between the loop-owned machine and concurrent
// readers (flight dumps, /healthz, the pulse sampler): plain stores,
// no allocation, no obs calls.
func (sh *shard) publishLogState() {
	head, tail, capacity := sh.sys.LogState()
	sh.pubHead.Store(head)
	sh.pubTail.Store(tail)
	sh.pubCap.Store(capacity)
	sh.sys.PulseCounters(&sh.pulseScratch)
	sh.pubRequests.Store(sh.requests)
	sh.pubBatches.Store(sh.batches)
	sh.pubSaves.Store(sh.saves)
	sh.pubTxns.Store(sh.pulseScratch.Transactions)
	sh.pubLogAppends.Store(sh.pulseScratch.LogAppends)
	sh.pubLogTrunc.Store(sh.pulseScratch.LogTruncated)
	sh.pubFwbScans.Store(sh.pulseScratch.FwbScans)
	sh.pubNVRAMBytes.Store(sh.pulseScratch.NVRAMWriteBytes)
	sh.pubPayloadBytes.Store(sh.pulseScratch.PayloadBytes)
	sh.pubLogUndoBytes.Store(sh.pulseScratch.LogUndoBytes)
	sh.pubLogRedoBytes.Store(sh.pulseScratch.LogRedoBytes)
	sh.pubLogHeaderBytes.Store(sh.pulseScratch.LogHeaderBytes)
	sh.pubLogChecksumBytes.Store(sh.pulseScratch.LogChecksumBytes)
	sh.pubLogBusBytes.Store(sh.pulseScratch.LogBusBytes)
	sh.pubDataBusBytes.Store(sh.pulseScratch.DataBusBytes)
	sh.pubUpdateAppends.Store(sh.pulseScratch.UpdateAppends)
	sh.pubCoalescible.Store(sh.pulseScratch.CoalescibleAppends)
	sh.pubForcedWB.Store(sh.pulseScratch.ForcedWB)
	sh.pubNaturalWB.Store(sh.pulseScratch.NaturalWB)
	sh.pubWastedForcedWB.Store(sh.pulseScratch.WastedForcedWB)
	sh.pubFwbFlagged.Store(sh.pulseScratch.FwbFlagged)
	sh.pubTxnsMeasured.Store(sh.pulseScratch.TxnsMeasured)
	sh.pubTxnAmpMilliSum.Store(sh.pulseScratch.TxnAmpMilliSum)
	sh.pubLiveRecords.Store(sh.pulseScratch.LiveRecords)
}

// save persists the high-water mark and the DIMM image atomically. The
// machine's volatile controller buffers are drained first so every
// committed transaction's log records (and commit record) are in the
// image — without this, recovery could roll back an acked write.
func (sh *shard) save() error {
	sh.sys.Quiesce()
	sh.st.persistHighWater()
	if err := sh.sys.NVRAMImage().WriteFile(sh.imgPath); err != nil {
		return err
	}
	sh.saves++
	sh.unsaved = false
	return nil
}

// loop is the shard worker goroutine.
func (sh *shard) loop() {
	defer close(sh.done)
	defer func() {
		// A shard panic takes the process down; snapshot the black box
		// first so pmdoctor can explain what was in flight, then let the
		// panic propagate (masking it would fake liveness).
		if r := recover(); r != nil {
			if sh.onPanic != nil {
				sh.onPanic()
			}
			panic(r)
		}
	}()
	for {
		select {
		case <-sh.kill:
			return
		case <-sh.stop:
			sh.drain()
			return
		case first := <-sh.queue:
			sh.runBatch(sh.collect(first))
		}
	}
}

// collect gathers up to batchMax already-queued requests behind first into
// the shard's reusable batch slice (valid until the next collect).
func (sh *shard) collect(first *request) []*request {
	batch := append(sh.batch[:0], first)
	for len(batch) < sh.batchMax {
		select {
		case r := <-sh.queue:
			batch = append(batch, r)
		default:
			sh.batch = batch
			return batch
		}
	}
	sh.batch = batch
	return batch
}

// drain answers everything already queued, then takes a final save.
func (sh *shard) drain() {
	for {
		select {
		case r := <-sh.queue:
			sh.runBatch(sh.collect(r))
		default:
			if sh.unsaved {
				sh.save()
			}
			return
		}
	}
}

// runBatch executes one batch: every request's transaction(s) run on the
// shard's machine in arrival order, the image is persisted if anything was
// written, and only then are the responses released — the acked-durability
// point.
func (sh *shard) runBatch(batch []*request) {
	sh.batches++
	if cap(sh.resps) < len(batch) {
		sh.resps = make([]Response, len(batch))
	}
	resps := sh.resps[:len(batch)]
	for i := range resps {
		resps[i] = Response{}
	}
	wrote := false
	anySpan := false
	runErr := sh.sys.RunN(func(ctx sim.Ctx, _ int) {
		for i, r := range batch {
			if r.req == nil {
				continue // stats probe: answered after the batch
			}
			sh.requests++
			var tag uint32
			var sp *flight.Span
			if r.pr != nil {
				tag, sp = r.pr.spanTag, r.pr.span
			}
			if sh.tracer.Enabled() {
				sh.tracer.EmitSpan(sh.id, sh.nowNS(), obs.KindSrvApply, 0, uint64(r.req.Code), tag)
			}
			var tailBefore, commitBefore uint64
			if tag != 0 {
				// Stamp the machine's tx/log events with this request's
				// span while it applies; bracketing the log tail and the
				// commit clock attributes the appended records and the
				// machine txn to the span afterwards.
				sh.sys.SetSpan(tag)
			}
			if sp != nil {
				anySpan = true
				sp.Mark(flight.StageApply, int64(sh.nowNS()))
				_, tailBefore, _ = sh.sys.LogState()
				_, _, commitBefore = sh.sys.LastCommit()
			}
			if r.pr != nil {
				resps[i], r.pr.val = sh.apply(ctx, r.req, r.pr.val[:0])
			} else {
				resps[i], _ = sh.apply(ctx, r.req, nil)
			}
			if sp != nil {
				_, tailAfter, _ := sh.sys.LogState()
				sp.SetLogWindow(tailBefore, tailAfter)
				if txid, begin, commit := sh.sys.LastCommit(); commit != commitBefore {
					sp.SetTxn(txid, begin, commit)
				}
			}
			if tag != 0 {
				sh.sys.SetSpan(0)
			}
			if resps[i].Status == StatusOK && r.req.Code != OpGet {
				wrote = true
			}
		}
	})
	// FWB and durable are batch-granular points, stamped on every spanned
	// request: the machine run (txns + log appends) ends here, and settle
	// is the batch's durability point (FWB drain + image persist). The
	// marks bracket exactly the interval the pulse waterfall attributes
	// to the "apply" and "fwb" latency stages.
	if anySpan {
		fwbNS := int64(sh.nowNS())
		for _, r := range batch {
			if r.pr != nil && r.pr.span != nil {
				r.pr.span.Mark(flight.StageFWB, fwbNS)
			}
		}
	}
	sh.settle(runErr, wrote, batch, resps)
	if anySpan {
		durNS := int64(sh.nowNS())
		for _, r := range batch {
			if r.pr != nil && r.pr.span != nil {
				r.pr.span.Mark(flight.StageDurable, durNS)
			}
		}
	}
	sh.publishLogState()
	for i, r := range batch {
		if r.stats != nil {
			r.stats <- sh.snapshot()
			continue
		}
		if sh.tracer.Enabled() {
			var tag uint32
			if r.pr != nil {
				tag = r.pr.spanTag
			}
			sh.tracer.EmitSpan(sh.id, sh.nowNS(), obs.KindSrvAck, 0, uint64(resps[i].Status), tag)
		}
		if r.pr != nil {
			r.pr.resp = resps[i]
			r.pr.resp.Seq = r.req.Seq
			r.pr.resp.Span = r.req.Span
			r.out <- r.pr
			continue
		}
		r.resp <- resps[i]
	}
}

// settle is the batch's durability point, between the last transaction
// and the first ack: if anything was written the DIMM image is persisted
// (save = Quiesce + WriteFile), and any outcome that cannot be made
// durable is downgraded to an error before a client can see it. Keeping
// this in one call means the image persist dominates every ack send in
// runBatch on all paths — the ordering pmlint's ackafterdurable rule
// proves; whether the skip-save condition (read-only batch) is right is
// what TestFlightDumpKillRecoveryAgreement checks dynamically.
func (sh *shard) settle(runErr error, wrote bool, batch []*request, resps []Response) {
	switch {
	case runErr != nil:
		// Machine fault (e.g. wedged log): the batch's effects are
		// indeterminate, so nothing is acked as OK.
		for i := range resps {
			resps[i] = Response{Status: StatusErr, Err: "shard machine fault: " + runErr.Error()}
		}
	case wrote:
		sh.unsaved = true
		if err := sh.save(); err != nil {
			// Commits happened on the simulated machine but the image did
			// not persist: acking would break the durability contract.
			for i, r := range batch {
				if r.req != nil && r.req.Code != OpGet {
					resps[i] = Response{Status: StatusErr, Err: "image save failed: " + err.Error()}
				}
			}
		}
	}
}

// apply executes one request inside the batch's worker. A GET value is
// appended to dst (the caller's reusable scratch); the returned slice is
// the grown scratch to keep for the next call.
func (sh *shard) apply(ctx sim.Ctx, req *Request, dst []byte) (Response, []byte) {
	switch req.Code {
	case OpGet:
		if v, ok := sh.st.get(ctx, req.Key, dst); ok {
			return Response{Status: StatusOK, Val: v}, v
		}
		return Response{Status: StatusNotFound}, dst
	case OpPut:
		if err := sh.st.put(ctx, req.Key, req.Val); err != nil {
			return Response{Status: StatusErr, Err: err.Error()}, dst
		}
		return Response{Status: StatusOK}, dst
	case OpDel:
		if sh.st.del(ctx, req.Key) {
			return Response{Status: StatusOK}, dst
		}
		return Response{Status: StatusNotFound}, dst
	case OpTxn:
		if err := sh.st.txn(ctx, req.Ops); err != nil {
			return Response{Status: StatusErr, Err: err.Error()}, dst
		}
		return Response{Status: StatusOK}, dst
	}
	return Response{Status: StatusErr, Err: "unroutable opcode"}, dst
}

// snapshot assembles the shard's stats slice (loop goroutine only).
func (sh *shard) snapshot() ShardStats {
	return ShardStats{
		ID:            sh.id,
		Keys:          sh.st.keys,
		HeapUsedBytes: sh.sys.Heap().Used(),
		HeapSizeBytes: sh.sys.Heap().Size(),
		QueueLen:      len(sh.queue),
		QueueCap:      cap(sh.queue),
		Batches:       sh.batches,
		Saves:         sh.saves,
		Requests:      sh.requests,
		Run:           sh.sys.Stats(),
		Recovery:      sh.bootRep,
	}
}

// tryEnqueue offers a request to the bounded queue without blocking.
func (sh *shard) tryEnqueue(r *request) bool {
	select {
	case sh.queue <- r:
		return true
	default:
		return false
	}
}
