package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client is a blocking, single-stream pmserver client. It is not safe for
// concurrent use; open one Client per connection (pmload opens one per
// simulated user).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	out  []byte

	// MaxRetries bounds automatic retry on StatusRetry backpressure
	// (sleeping the server-suggested delay between attempts). Zero means
	// backpressure surfaces as ErrRetry and the caller schedules the retry.
	MaxRetries int
}

// ErrRetry reports server backpressure to callers that manage their own
// retry policy.
type ErrRetry struct{ After time.Duration }

func (e ErrRetry) Error() string {
	return fmt.Sprintf("server busy, retry after %v", e.After)
}

// ErrServer carries a StatusErr message.
type ErrServer struct{ Msg string }

func (e ErrServer) Error() string { return e.Msg }

// Dial connects to a pmserver.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes one response, honoring the
// retry policy.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	body, err := EncodeRequest(c.out[:0], req)
	if err != nil {
		return nil, err
	}
	c.out = body // keep the grown buffer
	for attempt := 0; ; attempt++ {
		if err := WriteFrame(c.bw, body); err != nil {
			return nil, err
		}
		if err := c.bw.Flush(); err != nil {
			return nil, err
		}
		rb, err := ReadFrame(c.br, MaxFrame)
		if err != nil {
			return nil, err
		}
		resp, err := DecodeResponse(rb)
		if err != nil {
			return nil, err
		}
		if resp.Status != StatusRetry {
			return resp, nil
		}
		after := time.Duration(resp.RetryAfterMs) * time.Millisecond
		if attempt >= c.MaxRetries {
			return nil, ErrRetry{After: after}
		}
		time.Sleep(after)
	}
}

// Get fetches a key; found=false means the key does not exist.
func (c *Client) Get(key []byte) (val []byte, found bool, err error) {
	resp, err := c.roundTrip(&Request{Code: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	switch resp.Status {
	case StatusOK:
		return resp.Val, true, nil
	case StatusNotFound:
		return nil, false, nil
	}
	return nil, false, ErrServer{Msg: resp.Err}
}

// Put durably stores key=val. A nil error means the write is acked: it
// survives a server kill.
func (c *Client) Put(key, val []byte) error {
	resp, err := c.roundTrip(&Request{Code: OpPut, Key: key, Val: val})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return ErrServer{Msg: resp.Err}
	}
	return nil
}

// Del durably deletes a key; found=false means it did not exist.
func (c *Client) Del(key []byte) (found bool, err error) {
	resp, err := c.roundTrip(&Request{Code: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	switch resp.Status {
	case StatusOK:
		return true, nil
	case StatusNotFound:
		return false, nil
	}
	return false, ErrServer{Msg: resp.Err}
}

// Txn atomically applies a batch of PUT/DEL ops. All keys must hash to one
// shard (use ShardOf to build conforming batches); the server rejects
// cross-shard batches.
func (c *Client) Txn(ops []Op) error {
	resp, err := c.roundTrip(&Request{Code: OpTxn, Ops: ops})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return ErrServer{Msg: resp.Err}
	}
	return nil
}

// Stats fetches and decodes the server's stats snapshot.
func (c *Client) Stats() (StatsSnapshot, error) {
	var snap StatsSnapshot
	resp, err := c.roundTrip(&Request{Code: OpStats})
	if err != nil {
		return snap, err
	}
	if resp.Status != StatusOK {
		return snap, ErrServer{Msg: resp.Err}
	}
	err = json.Unmarshal(resp.Val, &snap)
	return snap, err
}

// Metrics fetches the server's metrics snapshot in Prometheus text
// exposition format: request-path counters, per-op latency histograms,
// and the simulated machines' cumulative persistence counters.
func (c *Client) Metrics() ([]byte, error) {
	resp, err := c.roundTrip(&Request{Code: OpMetrics})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, ErrServer{Msg: resp.Err}
	}
	return resp.Val, nil
}

// StatsJSON fetches the raw stats JSON document.
func (c *Client) StatsJSON() ([]byte, error) {
	resp, err := c.roundTrip(&Request{Code: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, ErrServer{Msg: resp.Err}
	}
	return resp.Val, nil
}
