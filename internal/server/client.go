package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// connCounter mints process-unique connection IDs for span bases. It
// starts at 1 so a span (connID<<32 | seq) is never zero — zero is the
// wire encoding for "untraced".
var connCounter atomic.Uint64

// Client is a pmserver client. The synchronous methods (Get/Put/Del/Txn/
// Stats/Metrics) behave exactly as they always have — one request in
// flight, blocking until the answer arrives — and are not safe for
// concurrent use on a window-1 client from Dial.
//
// A client from DialPipelined keeps up to window requests in flight on
// the one connection: GetAsync/PutAsync/DelAsync/TxnAsync return a Call
// immediately (blocking only when the window is full), a background
// reader matches responses to calls by sequence number (the server
// answers in completion order, not submission order), and Call.Wait
// collects the result. A pipelined client's methods may be used from
// multiple goroutines.
type Client struct {
	conn   net.Conn
	br     *bufio.Reader
	window int

	// Writer state: one frame build buffer, serialized by wmu so frames
	// from concurrent senders never interleave on the wire.
	wmu  sync.Mutex
	wbuf []byte

	// In-flight bookkeeping.
	mu      sync.Mutex
	seq     uint32
	pending map[uint32]*Call
	closed  error // transport/protocol failure; sticky

	// recent is a ring of recently completed sequence numbers (see
	// isRecentLocked). A response matching no pending call but a recent
	// completion is a duplicated ack (a retransmit the transport failed
	// to suppress) and is dropped; an unknown seq outside the ring still
	// fails the client, because it means the stream is desynchronized.
	recent  []uint32
	recentN uint64 // completions ever recorded

	tokens     chan struct{} // in-flight window semaphore
	readerDone chan struct{} // closed when the read loop exits

	// Span minting (EnableSpans): when on, every request carries
	// spanBase|seq so the server's flight recorder can attribute each
	// pipeline hop to this exact request.
	spans    bool
	spanBase uint64

	// MaxRetries bounds automatic retry on StatusRetry backpressure
	// (sleeping the server-suggested delay between attempts). Zero means
	// backpressure surfaces as ErrRetry and the caller schedules the retry.
	MaxRetries int
}

// Call is one in-flight pipelined request. Exactly one completion is
// delivered: after Wait returns, Resp and Err are stable.
type Call struct {
	c        *Client
	seq      uint32
	attempts int
	body     []byte // encoded request body (kept for retry resend)
	val      []byte // response value copy (owned by this Call)
	done     chan struct{}

	// resending counts detached retry goroutines still holding this call.
	// failAll can complete a call while its resend goroutine sleeps, and
	// the pool must not recycle the body buffer out from under that
	// goroutine's eventual send: a nonzero count makes Release/roundTrip
	// drop the call to the GC instead of pooling it.
	resending atomic.Int32

	Resp Response
	Err  error
}

var callPool = sync.Pool{New: func() any {
	return &Call{done: make(chan struct{}, 1)}
}}

// ErrRetry reports server backpressure to callers that manage their own
// retry policy.
type ErrRetry struct{ After time.Duration }

func (e ErrRetry) Error() string {
	return fmt.Sprintf("server busy, retry after %v", e.After)
}

// ErrServer carries a StatusErr message.
type ErrServer struct{ Msg string }

func (e ErrServer) Error() string { return e.Msg }

// Dial connects to a pmserver with a synchronous (window 1) client.
func Dial(addr string) (*Client, error) {
	return DialPipelined(addr, 1)
}

// DialPipelined connects with up to window requests in flight.
func DialPipelined(addr string, window int) (*Client, error) {
	if window < 1 {
		window = 1
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	ring := 2 * window
	if ring < 16 {
		ring = 16
	}
	c := &Client{
		conn:       conn,
		br:         bufio.NewReader(conn),
		window:     window,
		pending:    make(map[uint32]*Call, window),
		recent:     make([]uint32, ring),
		tokens:     make(chan struct{}, window),
		readerDone: make(chan struct{}),
		spanBase:   connCounter.Add(1) << 32,
	}
	go c.readLoop()
	return c, nil
}

// EnableSpans makes every subsequent request carry a connection-scoped
// span ID (connection counter in the high 32 bits, request sequence in
// the low 32). The server echoes the span on the response and threads
// it through every pipeline hop's trace events. Call before issuing
// requests; it is not synchronized with concurrent senders.
func (c *Client) EnableSpans() { c.spans = true }

// Close tears the connection down. In-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Window reports the client's in-flight window size.
func (c *Client) Window() int { return c.window }

// start encodes req, assigns it the next sequence number, registers it,
// and sends it. It blocks while the in-flight window is full.
func (c *Client) start(req *Request) (*Call, error) {
	select {
	case c.tokens <- struct{}{}:
	case <-c.readerDone:
		return nil, c.err()
	}
	call := callPool.Get().(*Call)
	call.c, call.attempts, call.Err = c, 0, nil
	call.Resp = Response{}

	c.mu.Lock()
	if c.closed != nil {
		err := c.closed
		c.mu.Unlock()
		<-c.tokens
		callPool.Put(call)
		return nil, err
	}
	call.seq = c.seq
	c.seq++
	req.Seq = call.seq
	if c.spans {
		req.Span = c.spanBase | uint64(call.seq)
	}
	body, err := EncodeRequest(call.body[:0], req)
	if err != nil {
		c.mu.Unlock()
		<-c.tokens
		callPool.Put(call)
		return nil, err
	}
	call.body = body
	c.pending[call.seq] = call
	c.mu.Unlock()

	if err := c.send(call); err != nil {
		c.failAll(err)
		return nil, err
	}
	return call, nil
}

// send writes call's frame ([len][body]) with a single Write.
func (c *Client) send(call *Call) error {
	c.wmu.Lock()
	c.wbuf = AppendFrame(c.wbuf[:0], call.body)
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	return err
}

func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed != nil {
		return c.closed
	}
	return fmt.Errorf("server: client closed")
}

// failAll marks the client dead and fails every pending call.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.closed == nil {
		c.closed = err
	}
	err = c.closed
	var calls []*Call
	for seq, call := range c.pending {
		delete(c.pending, seq)
		calls = append(calls, call)
	}
	c.mu.Unlock()
	for _, call := range calls {
		call.Err = err
		call.done <- struct{}{}
		<-c.tokens
	}
}

// isRecentLocked reports whether seq completed recently — the test that
// separates a duplicated ack (drop it) from a desynchronized stream
// (fail the client). Callers hold c.mu.
func (c *Client) isRecentLocked(seq uint32) bool {
	n := uint64(len(c.recent))
	if c.recentN < n {
		n = c.recentN
	}
	for i := uint64(0); i < n; i++ {
		if c.recent[i] == seq {
			return true
		}
	}
	return false
}

// readLoop matches responses to pending calls by sequence number,
// transparently resending StatusRetry'd requests up to MaxRetries.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	var resp Response
	for {
		body, err := ReadFrameInto(c.br, buf, MaxFrame)
		if err != nil {
			c.failAll(err)
			return
		}
		buf = body[:cap(body)]
		if err := DecodeResponseInto(&resp, body); err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		call := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		if call != nil && !(resp.Status == StatusRetry && call.attempts < c.MaxRetries) {
			// This response completes the call (the retry path below
			// re-registers it instead): remember the seq so a duplicated
			// ack is recognized and dropped.
			c.recent[c.recentN%uint64(len(c.recent))] = resp.Seq
			c.recentN++
		}
		dup := call == nil && c.isRecentLocked(resp.Seq)
		c.mu.Unlock()
		if call == nil {
			if dup {
				continue // duplicated ack for a completed request
			}
			c.failAll(fmt.Errorf("server: response for unknown seq %d", resp.Seq))
			return
		}
		if resp.Status == StatusRetry && call.attempts < c.MaxRetries {
			call.attempts++
			after := time.Duration(resp.RetryAfterMs) * time.Millisecond
			c.mu.Lock()
			if c.closed != nil {
				err := c.closed
				c.mu.Unlock()
				call.Err = err
				call.done <- struct{}{}
				<-c.tokens
				continue
			}
			// Count the resend before re-registering: once the call is back
			// in pending, failAll may complete it at any moment, and the
			// count is what keeps the completed call out of the pool while
			// the goroutine below still reads its body buffer.
			call.resending.Add(1)
			c.pending[call.seq] = call
			c.mu.Unlock()
			go func(call *Call, after time.Duration) {
				time.Sleep(after)
				err := c.send(call)
				call.resending.Add(-1)
				if err != nil {
					c.failAll(err)
				}
			}(call, after)
			continue
		}
		// resp.Val aliases the read buffer (reused next iteration): copy
		// into the call's own reusable buffer before handing it over.
		call.Resp = resp
		if resp.Val != nil {
			call.val = append(call.val[:0], resp.Val...)
			call.Resp.Val = call.val
		}
		if resp.Status == StatusRetry {
			call.Err = ErrRetry{After: time.Duration(resp.RetryAfterMs) * time.Millisecond}
		}
		call.done <- struct{}{}
		<-c.tokens
	}
}

// Wait blocks until the call completes. The returned Response is owned by
// the Call: it is valid until Release.
func (call *Call) Wait() (*Response, error) {
	<-call.done
	if call.Err != nil {
		return nil, call.Err
	}
	return &call.Resp, nil
}

// Release recycles a completed call (after Wait). The call and its
// Response must not be touched afterwards. Optional — an unreleased call
// is simply garbage collected — but steady-state release keeps the
// pipelined hot path allocation free.
func (call *Call) Release() {
	call.c = nil
	call.Resp = Response{}
	call.Err = nil
	if call.resending.Load() == 0 {
		callPool.Put(call)
	}
}

// GetAsync starts a pipelined GET.
func (c *Client) GetAsync(key []byte) (*Call, error) {
	return c.start(&Request{Code: OpGet, Key: key})
}

// PutAsync starts a pipelined durable PUT.
func (c *Client) PutAsync(key, val []byte) (*Call, error) {
	return c.start(&Request{Code: OpPut, Key: key, Val: val})
}

// DelAsync starts a pipelined DEL.
func (c *Client) DelAsync(key []byte) (*Call, error) {
	return c.start(&Request{Code: OpDel, Key: key})
}

// TxnAsync starts a pipelined atomic batch.
func (c *Client) TxnAsync(ops []Op) (*Call, error) {
	return c.start(&Request{Code: OpTxn, Ops: ops})
}

// Flush blocks until every in-flight request has completed (the window is
// empty). It does not prevent concurrent senders from starting new work
// while it drains.
func (c *Client) Flush() error {
	for i := 0; i < c.window; i++ {
		select {
		case c.tokens <- struct{}{}:
		case <-c.readerDone:
			return c.err()
		}
	}
	for i := 0; i < c.window; i++ {
		<-c.tokens
	}
	return nil
}

// roundTrip sends one request and waits for its response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	call, err := c.start(req)
	if err != nil {
		return nil, err
	}
	<-call.done
	if call.Err != nil {
		err := call.Err
		recycleCall(call)
		return nil, err
	}
	resp := call.Resp
	// Hand Val's ownership to the caller (the old synchronous client
	// returned a caller-owned slice).
	call.val = nil
	recycleCall(call)
	return &resp, nil
}

func recycleCall(call *Call) {
	call.c = nil
	call.Resp = Response{}
	call.Err = nil
	if call.resending.Load() == 0 {
		callPool.Put(call)
	}
}

// Get fetches a key; found=false means the key does not exist.
func (c *Client) Get(key []byte) (val []byte, found bool, err error) {
	resp, err := c.roundTrip(&Request{Code: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	switch resp.Status {
	case StatusOK:
		return resp.Val, true, nil
	case StatusNotFound:
		return nil, false, nil
	}
	return nil, false, ErrServer{Msg: resp.Err}
}

// Put durably stores key=val. A nil error means the write is acked: it
// survives a server kill.
func (c *Client) Put(key, val []byte) error {
	resp, err := c.roundTrip(&Request{Code: OpPut, Key: key, Val: val})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return ErrServer{Msg: resp.Err}
	}
	return nil
}

// Del durably deletes a key; found=false means it did not exist.
func (c *Client) Del(key []byte) (found bool, err error) {
	resp, err := c.roundTrip(&Request{Code: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	switch resp.Status {
	case StatusOK:
		return true, nil
	case StatusNotFound:
		return false, nil
	}
	return false, ErrServer{Msg: resp.Err}
}

// Txn atomically applies a batch of PUT/DEL ops. All keys must hash to one
// shard (use ShardOf to build conforming batches); the server rejects
// cross-shard batches.
func (c *Client) Txn(ops []Op) error {
	resp, err := c.roundTrip(&Request{Code: OpTxn, Ops: ops})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return ErrServer{Msg: resp.Err}
	}
	return nil
}

// Stats fetches and decodes the server's stats snapshot.
func (c *Client) Stats() (StatsSnapshot, error) {
	var snap StatsSnapshot
	resp, err := c.roundTrip(&Request{Code: OpStats})
	if err != nil {
		return snap, err
	}
	if resp.Status != StatusOK {
		return snap, ErrServer{Msg: resp.Err}
	}
	err = json.Unmarshal(resp.Val, &snap)
	return snap, err
}

// Metrics fetches the server's metrics snapshot in Prometheus text
// exposition format: request-path counters, per-op latency histograms,
// and the simulated machines' cumulative persistence counters.
func (c *Client) Metrics() ([]byte, error) {
	resp, err := c.roundTrip(&Request{Code: OpMetrics})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, ErrServer{Msg: resp.Err}
	}
	return resp.Val, nil
}

// StatsJSON fetches the raw stats JSON document.
func (c *Client) StatsJSON() ([]byte, error) {
	resp, err := c.roundTrip(&Request{Code: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, ErrServer{Msg: resp.Err}
	}
	return resp.Val, nil
}
