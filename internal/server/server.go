package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pmemlog/internal/chaos"
	"pmemlog/internal/flight"
	"pmemlog/internal/obs"
	"pmemlog/internal/obs/pulse"
	"pmemlog/internal/sim"
	"pmemlog/internal/txn"
)

// Config describes a pmserver instance.
type Config struct {
	Addr string // TCP listen address, e.g. ":7070" or "127.0.0.1:0"
	Dir  string // data directory: per-shard DIMM images + manifest

	Shards     int      // worker shards (each owns one simulated machine)
	Mode       txn.Mode // logging design each shard runs (fwb by default)
	QueueDepth int      // per-shard bounded queue (backpressure beyond this)
	BatchMax   int      // max requests drained into one shard batch
	Buckets    uint64   // hash buckets per shard store

	// Per-shard simulated machine sizing. The defaults favor restart
	// speed over capacity; a real deployment scales NVRAMBytes up.
	NVRAMBytes uint64
	LogBytes   uint64
	L2Bytes    uint64

	RetryAfterMs uint32      // backpressure hint returned with StatusRetry
	Logger       *log.Logger // nil = log.Default()

	// ConnWindow caps the number of requests one connection may have in
	// flight (read but not yet answered). A pipelined client overlaps up
	// to this many requests; a synchronous client is unaffected.
	ConnWindow int

	// TraceEvents sets the event tracer's per-ring record count (one
	// ring per shard plus a network ring). Zero means the default: the
	// tracer is the flight recorder's black box and is always on, sized
	// modestly so an idle server pays only its preallocated rings.
	// Negative disables tracing entirely (benchmarking escape hatch).
	TraceEvents int

	// Flight recorder sizing. FlightSpans caps concurrently-tracked
	// request spans (table full = requests fly unrecorded, counted);
	// SlowSpans is the tail-sampling ring; SlowThreshold is the recv→ack
	// latency at or above which a finished span's full timeline is
	// retained. Zeros take defaults; SlowThreshold < 0 disables capture.
	FlightSpans   int
	SlowSpans     int
	SlowThreshold time.Duration

	// HTTPAddr, when non-empty, serves the operator HTTP surface
	// (/healthz readiness, /pulse.json live telemetry, /metrics) on a
	// plain HTTP listener (e.g. "127.0.0.1:8080").
	HTTPAddr string

	// Pulse telemetry (internal/obs/pulse): PulseInterval is the window
	// width the live collector ticks at (default 1s); PulseWindows is
	// how many completed windows the ring retains (default 64).
	PulseInterval time.Duration
	PulseWindows  int

	// Latency objective: SLOLatency is the end-to-end target (default
	// 20ms) and SLOBudget the allowed fraction of data requests over it
	// (default 0.001). /pulse.json reports burn rate against these.
	SLOLatency time.Duration
	SLOBudget  float64

	// Degraded-health thresholds, evaluated per shard over the latest
	// pulse window: /healthz stays 200 but reports status "degraded"
	// when the windowed wrap rate (log passes/sec) or the queue fill
	// fraction crosses these. Zeros take defaults (1.0 passes/sec,
	// 0.9 queue fill).
	DegradedWrapRate float64
	DegradedQueue    float64

	// Chaos, when non-nil, arms deterministic network-fault injection
	// (conn drops mid-window, delayed/duplicated acks, spurious retry
	// answers) and stamps the injection ledger into every flight dump.
	// Only chaos-aware construction (internal/chaos/campaign, cmd/pmchaos,
	// tests) may set it — pmlint's chaosonly rule rejects everything else.
	Chaos *chaos.Injector
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Mode == txn.NonPers {
		c.Mode = txn.FWB
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.Buckets == 0 {
		c.Buckets = 4096
	}
	if c.NVRAMBytes == 0 {
		c.NVRAMBytes = 8 << 20
	}
	if c.LogBytes == 0 {
		c.LogBytes = 256 << 10
	}
	if c.L2Bytes == 0 {
		c.L2Bytes = 256 << 10
	}
	if c.RetryAfterMs == 0 {
		c.RetryAfterMs = 5
	}
	if c.ConnWindow <= 0 {
		c.ConnWindow = 64
	}
	if c.TraceEvents == 0 {
		c.TraceEvents = 2048
	}
	if c.FlightSpans <= 0 {
		c.FlightSpans = 1024
	}
	if c.SlowSpans <= 0 {
		c.SlowSpans = 64
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 10 * time.Millisecond
	}
	if c.PulseInterval <= 0 {
		c.PulseInterval = time.Second
	}
	if c.PulseWindows <= 0 {
		c.PulseWindows = 64
	}
	if c.SLOLatency <= 0 {
		c.SLOLatency = 20 * time.Millisecond
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.001
	}
	if c.DegradedWrapRate <= 0 {
		c.DegradedWrapRate = 1.0
	}
	if c.DegradedQueue <= 0 {
		c.DegradedQueue = 0.9
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// manifest is the durable boot contract persisted next to the images: a
// restarting server must rebuild shards with identical geometry or the
// address map (and therefore every persisted pointer) would shift.
type manifest struct {
	Version    int      `json:"version"`
	Shards     int      `json:"shards"`
	Mode       txn.Mode `json:"mode"`
	Buckets    uint64   `json:"buckets"`
	NVRAMBytes uint64   `json:"nvram_bytes"`
	LogBytes   uint64   `json:"log_bytes"`
}

const manifestName = "pmserver.json"

// Server is a running pmserver instance.
type Server struct {
	cfg    Config
	ln     net.Listener
	shards []*shard

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	draining   atomic.Bool
	dead       chan struct{} // closed once shards can no longer answer
	shardsDead chan struct{} // closed once every shard loop has exited
	deadOnce   sync.Once
	stopOnce   sync.Once
	acceptWG   sync.WaitGroup
	connWG     sync.WaitGroup

	// Counters for the stats endpoint.
	accepted   atomic.Uint64
	requests   atomic.Uint64
	retries    atomic.Uint64
	crossShard atomic.Uint64

	// Observability (see metrics.go). The registry handles are created
	// once in initObs; dispatch only touches the atomic handles.
	t0       time.Time
	reg      *obs.Registry
	tracer   *obs.Tracer
	opHist   map[byte]*obs.Histogram
	opCount  map[byte]*obs.Counter
	mRetries *obs.Counter

	// Pulse telemetry (see pulse_server.go): the windowed collector, the
	// stage/e2e histograms the conn writers fold finished spans into,
	// and the SLO counters. pulseStop ends the ticker goroutine.
	pulse     *pulse.Collector
	pulseStop chan struct{}
	stageHist [flight.NumLatStages]*obs.Histogram
	e2eHist   *obs.Histogram
	sloTotal  *obs.Counter
	sloBad    *obs.Counter

	// Flight recorder (see flight_server.go): the in-flight span table
	// and the optional /healthz HTTP listener. dumpMu serializes dump
	// writers (explicit calls racing the panic hook).
	flight *flight.Table
	httpLn net.Listener
	dumpMu sync.Mutex

	// chaosNet is the network-site fork of cfg.Chaos (nil when unarmed):
	// its RNG stream is independent of any sim-side stream, and its
	// count-based triggers stay schedule-deterministic across goroutines.
	chaosNet *chaos.Injector
}

// shardConfig builds one shard's machine configuration.
func shardConfig(c Config) sim.Config {
	cfg := sim.DefaultConfig(c.Mode, 1)
	cfg.NVRAMBytes = c.NVRAMBytes
	cfg.LogBytes = c.LogBytes
	cfg.Caches.L2.SizeBytes = c.L2Bytes
	// A shard machine runs indefinitely: bound the per-commit latency
	// sample buffer (sliding window) so the commit path neither grows
	// without limit nor allocates in steady state.
	cfg.TxnLatencySampleCap = 4096
	// Persisted images cannot be re-attached across a log_grow migration,
	// so growing is disabled; the log is sized for the small per-request
	// transactions the store issues.
	cfg.GrowReserveBytes = 0
	cfg.GrowFactor = 0
	return cfg
}

// Start boots (or re-attaches) every shard, then begins serving.
func Start(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	// Adopt the persisted manifest when the data directory is live.
	manPath := filepath.Join(cfg.Dir, manifestName)
	if b, err := os.ReadFile(manPath); err == nil {
		var m manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("server: manifest %s: %w", manPath, err)
		}
		if m.Version != 1 {
			return nil, fmt.Errorf("server: manifest version %d unsupported", m.Version)
		}
		cfg.Shards, cfg.Mode, cfg.Buckets = m.Shards, m.Mode, m.Buckets
		cfg.NVRAMBytes, cfg.LogBytes = m.NVRAMBytes, m.LogBytes
	} else if os.IsNotExist(err) {
		if !cfg.Mode.Spec().Persistent {
			return nil, fmt.Errorf("server: mode %q gives no persistence guarantee; refusing to serve writes", cfg.Mode)
		}
		b, _ := json.MarshalIndent(manifest{
			Version: 1, Shards: cfg.Shards, Mode: cfg.Mode, Buckets: cfg.Buckets,
			NVRAMBytes: cfg.NVRAMBytes, LogBytes: cfg.LogBytes,
		}, "", "  ")
		tmp := manPath + ".tmp"
		if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
		if err := os.Rename(tmp, manPath); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	s := &Server{
		cfg:        cfg,
		conns:      make(map[net.Conn]struct{}),
		dead:       make(chan struct{}),
		shardsDead: make(chan struct{}),
		chaosNet:   cfg.Chaos.Fork("net"),
	}
	s.initObs()
	scfg := shardConfig(cfg)
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(i, scfg, cfg.Buckets, cfg.Dir, cfg.QueueDepth, cfg.BatchMax)
		if err != nil {
			return nil, err
		}
		sh.tracer, sh.nowNS = s.tracer, s.nowNS
		sh.onPanic = s.panicDump
		if cfg.TraceEvents > 0 {
			// Each shard machine records into its own black-box tracer
			// (thread + machine rings, cycle timestamps); a flight dump
			// merges these behind the server's request rings.
			sh.sys.AttachTracer(cfg.TraceEvents).Enable()
		}
		if sh.bootRep != nil {
			cfg.Logger.Printf("pmserver: shard %d re-attached %s: %d keys, %d log records scanned, %d txns redone, %d rolled back",
				i, sh.imgPath, sh.st.keys, sh.bootRep.EntriesScanned, len(sh.bootRep.Committed), len(sh.bootRep.Uncommitted))
		}
		s.shards = append(s.shards, sh)
	}

	s.initPulse()

	if cfg.HTTPAddr != "" {
		hln, err := net.Listen("tcp", cfg.HTTPAddr)
		if err != nil {
			return nil, fmt.Errorf("server: http listener: %w", err)
		}
		s.httpLn = hln
		go s.serveHTTP(hln)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if s.httpLn != nil {
			s.httpLn.Close()
		}
		return nil, err
	}
	s.ln = ln
	for _, sh := range s.shards {
		go sh.loop()
	}
	go s.pulse.Run(s.pulseStop)
	s.acceptWG.Add(1)
	go s.acceptLoop()
	cfg.Logger.Printf("pmserver: serving on %s (%d shards, mode %s, dir %s)",
		ln.Addr(), cfg.Shards, cfg.Mode, cfg.Dir)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Dir returns the data directory holding the shard images.
func (s *Server) Dir() string { return s.cfg.Dir }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// connReq is the per-request state of one pipelined connection slot. All
// of its byte slices are scratch buffers recycled through connReqPool, so
// a connection in steady state reads, applies, and answers requests
// without per-request allocation.
type connReq struct {
	seq   uint32
	code  byte
	start time.Time
	body  []byte   // frame-body read buffer; req's Key/Val/Ops alias it
	req   Request  // decoded request (Ops capacity reused)
	resp  Response // filled by the shard or inline by the reader
	val   []byte   // GET value scratch; resp.Val aliases it
	enc   []byte   // response encode buffer: [4-byte len][body]
	sr    request  // shard queue envelope (points back at this connReq)

	// Flight-recorder state for spanned requests (wire Span != 0). span
	// is nil when the request is untraced or the table shed it; spanTag
	// still annotates the obs events either way.
	span    *flight.Span
	spanTag uint32
}

var connReqPool = sync.Pool{New: func() any { return new(connReq) }}

// handleConn serves one connection with pipelining: a reader decodes and
// routes up to ConnWindow requests into the shard queues while a writer
// streams completions back in completion order (responses carry the
// request's sequence number, so the client may not assume FIFO). The
// tokens channel bounds the in-flight window; every token taken by the
// reader is returned by the writer once the matching response is on the
// wire (or by the reader itself when a read fails before a request is
// created).
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(c)
	br := bufio.NewReader(c)
	window := s.cfg.ConnWindow
	out := make(chan *connReq, window)
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	writerDone := make(chan struct{})
	failed := make(chan struct{}) // closed by the writer on write error
	go s.connWriter(c, out, tokens, writerDone, failed)

	held := 0 // tokens the reader has acquired and not handed to a request
read:
	for {
		select {
		case <-tokens:
			held++
		case <-failed:
			break read
		case <-s.shardsDead:
			break read
		}
		cr := connReqPool.Get().(*connReq)
		body, err := ReadFrameInto(br, cr.body, MaxFrame)
		if err != nil {
			connReqPool.Put(cr)
			break read
		}
		cr.body = body[:len(body):cap(body)]
		derr := DecodeRequestInto(&cr.req, cr.body)
		cr.span, cr.spanTag = nil, 0
		if derr == nil {
			if cr.req.Span != 0 {
				cr.spanTag = flight.SpanTag(cr.req.Span)
				cr.span = s.flight.Acquire(cr.req.Span, cr.req.Code, int64(s.nowNS()))
			}
			if s.tracer.Enabled() {
				s.tracer.EmitSpan(s.netRing(), s.nowNS(), obs.KindSrvRecv, 0, uint64(cr.req.Code), cr.spanTag)
			}
		}
		cr.seq, cr.code, cr.start = cr.req.Seq, cr.req.Code, time.Now()
		if derr != nil {
			// A malformed frame means the stream may be desynchronized:
			// answer once (the frame's seq is unknowable, so Seq is 0),
			// then stop reading.
			cr.seq, cr.code = 0, 0
			cr.resp = Response{Status: StatusErr, Seq: 0, Err: derr.Error()}
			held--
			out <- cr
			break read
		}
		held--
		if !s.routeAsync(cr, out) {
			// Answered inline (retry/stats/metrics/validation): already on out.
			continue
		}
	}

	// Shutdown: reclaim the whole window so no shard (or the writer) still
	// references a connReq, then release the writer. If the shards died
	// mid-flight their unanswered tokens can never come back — shardsDead
	// is the escape hatch (shard loops have exited, so no send can race
	// the close of out).
	for held < window {
		select {
		case <-tokens:
			held++
		case <-s.shardsDead:
			close(out)
			<-writerDone
			return
		}
	}
	close(out)
	<-writerDone
}

// connWriter drains completed requests, encodes each response into the
// request's reusable buffer, and sends header+body with a single Write.
// After a write error it keeps draining (releasing tokens, recycling
// connReqs) so the reader and shards never block, but writes nothing more.
func (s *Server) connWriter(c net.Conn, out chan *connReq, tokens chan struct{}, done, failed chan struct{}) {
	defer close(done)
	wroteErr := false
	for cr := range out {
		// Latency series, SLO accounting, pulse exemplar offer, and span
		// release (see pulse_server.go).
		s.observeFinish(cr)
		if !wroteErr {
			if s.chaosNet.Hit(chaos.SiteConnDrop, uint64(cr.code)) {
				// Chaos: the connection dies mid-pipeline-window, before
				// this response frame leaves. The Write below fails, the
				// reader stops, and the client must reconnect and resend
				// everything unacked — any durability shortcut here shows
				// up as a lost or duplicated write in the audit.
				c.Close()
			}
			if delay, ok := s.chaosNet.HitArg(chaos.SiteDelayAck, uint64(cr.code)); ok {
				time.Sleep(time.Duration(delay))
			}
			buf := append(cr.enc[:0], 0, 0, 0, 0)
			buf = EncodeResponse(buf, &cr.resp)
			binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
			cr.enc = buf
			if _, err := c.Write(buf); err != nil {
				wroteErr = true
				close(failed)
			} else if s.chaosNet.Hit(chaos.SiteDupAck, uint64(cr.code)) {
				// Chaos: the ack frame goes out twice (a retransmit the
				// transport failed to suppress); the client must drop the
				// duplicate, not fail its pipeline.
				c.Write(buf)
			}
		}
		cr.resp = Response{}
		cr.req.Key, cr.req.Val = nil, nil
		connReqPool.Put(cr)
		tokens <- struct{}{}
	}
	if !wroteErr {
		close(failed)
	}
}

// routeAsync routes one decoded pipelined request. It returns true when
// the request was enqueued to a shard (the shard will deliver cr on out);
// false when it was answered inline (cr is already on out).
func (s *Server) routeAsync(cr *connReq, out chan *connReq) bool {
	req := &cr.req
	answer := func(resp Response) bool {
		resp.Seq = cr.seq
		resp.Span = req.Span
		cr.resp = resp
		out <- cr
		return false
	}
	s.requests.Add(1)
	if ctr := s.opCount[req.Code]; ctr != nil {
		ctr.Inc()
	}
	if s.draining.Load() {
		s.noteRetry()
		return answer(Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs})
	}
	if req.Code == OpStats {
		return answer(s.statsResponse())
	}
	if req.Code == OpMetrics {
		return answer(s.metricsResponse())
	}
	if s.chaosNet.Hit(chaos.SiteSpuriousRetry, uint64(req.Code)) {
		// Chaos: answer a perfectly routable request with StatusRetry,
		// exercising the client's transparent resend path under no real
		// backpressure.
		s.noteRetry()
		return answer(Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs})
	}

	var key []byte
	if req.Code == OpTxn {
		if len(req.Ops) == 0 {
			return answer(Response{Status: StatusOK})
		}
		key = req.Ops[0].Key
		home := ShardOf(key, len(s.shards))
		for _, op := range req.Ops[1:] {
			if ShardOf(op.Key, len(s.shards)) != home {
				s.crossShard.Add(1)
				return answer(Response{Status: StatusErr,
					Err: "cross-shard txn: all keys of a TXN must hash to one shard"})
			}
		}
	} else {
		key = req.Key
	}
	home := ShardOf(key, len(s.shards))
	sh := s.shards[home]
	cr.sr = request{req: req, pr: cr, out: out}
	if !sh.tryEnqueue(&cr.sr) {
		s.noteRetry()
		return answer(Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs})
	}
	if cr.span != nil {
		cr.span.SetShard(home)
		cr.span.Mark(flight.StageEnqueue, int64(s.nowNS()))
	}
	if s.tracer.Enabled() {
		s.tracer.EmitSpan(home, s.nowNS(), obs.KindSrvEnqueue, 0, uint64(req.Code), cr.spanTag)
	}
	return true
}

// dispatch routes one request to its shard and waits for the answer,
// recording the per-op latency histogram around the whole round trip
// (queueing included — that is the latency a client observes).
func (s *Server) dispatch(req *Request) Response {
	if h := s.opHist[req.Code]; h != nil {
		s.opCount[req.Code].Inc()
		start := time.Now()
		resp := s.route(req)
		h.Observe(uint64(time.Since(start)))
		return resp
	}
	return s.route(req)
}

func (s *Server) route(req *Request) Response {
	s.requests.Add(1)
	if s.draining.Load() {
		s.noteRetry()
		return Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs}
	}
	if req.Code == OpStats {
		return s.statsResponse()
	}
	if req.Code == OpMetrics {
		return s.metricsResponse()
	}

	var key []byte
	if req.Code == OpTxn {
		if len(req.Ops) == 0 {
			return Response{Status: StatusOK}
		}
		key = req.Ops[0].Key
		home := ShardOf(key, len(s.shards))
		for _, op := range req.Ops[1:] {
			if ShardOf(op.Key, len(s.shards)) != home {
				s.crossShard.Add(1)
				return Response{Status: StatusErr,
					Err: "cross-shard txn: all keys of a TXN must hash to one shard"}
			}
		}
	} else {
		key = req.Key
	}
	home := ShardOf(key, len(s.shards))
	sh := s.shards[home]
	r := &request{req: req, resp: make(chan Response, 1)}
	if !sh.tryEnqueue(r) {
		s.noteRetry()
		return Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs}
	}
	if s.tracer.Enabled() {
		s.tracer.Emit(home, s.nowNS(), obs.KindSrvEnqueue, 0, uint64(req.Code))
	}
	select {
	case resp := <-r.resp:
		return resp
	case <-s.dead:
		// The shard loops are gone (kill, or a shutdown race): the write
		// was NOT acked, so the durability contract stays intact.
		return Response{Status: StatusErr, Err: "server shutting down"}
	}
}

// StatsSnapshot is the stats endpoint's JSON document.
type StatsSnapshot struct {
	Addr       string       `json:"addr"`
	Mode       txn.Mode     `json:"mode"`
	Shards     int          `json:"shards"`
	Draining   bool         `json:"draining"`
	Accepted   uint64       `json:"conns_accepted"`
	Requests   uint64       `json:"requests"`
	Retries    uint64       `json:"retries"`
	CrossShard uint64       `json:"cross_shard_rejects"`
	Keys       uint64       `json:"keys"`
	Txns       uint64       `json:"txns_committed"`
	LogAppends uint64       `json:"log_appends"`
	LogTrunc   uint64       `json:"log_truncated"`
	FwbScans   uint64       `json:"fwb_scans"`
	NVRAMBytes uint64       `json:"nvram_write_bytes"`
	ShardStats []ShardStats `json:"shard_stats"`

	// OpLatencies summarizes the per-op latency histograms (nanoseconds)
	// accumulated since server start, keyed by opcode name.
	OpLatencies map[string]obs.LatencySummary `json:"op_latencies,omitempty"`

	// Tracer ring accounting: silent event loss on the always-on black
	// box is itself a diagnostic, so emitted/dropped counts are surfaced
	// per ring (request rings first, then the network ring).
	TracerRings   []obs.RingStat `json:"tracer_rings,omitempty"`
	TracerEmitted uint64         `json:"tracer_emitted"`
	TracerDropped uint64         `json:"tracer_dropped"`

	// Flight-recorder span table accounting.
	SpanInFlight int    `json:"spans_in_flight"`
	SpanDrops    uint64 `json:"span_drops"`
	SlowSpans    uint64 `json:"slow_spans_captured"`
}

// Stats gathers a consistent-enough snapshot: each shard answers a probe
// between batches, so its counters are internally consistent.
func (s *Server) Stats() (StatsSnapshot, error) {
	snap := StatsSnapshot{
		Addr:       s.Addr(),
		Mode:       s.cfg.Mode,
		Shards:     len(s.shards),
		Draining:   s.draining.Load(),
		Accepted:   s.accepted.Load(),
		Requests:   s.requests.Load(),
		Retries:    s.retries.Load(),
		CrossShard: s.crossShard.Load(),
	}
	snap.OpLatencies = make(map[string]obs.LatencySummary, len(s.opHist))
	for code, h := range s.opHist {
		if h.Count() > 0 {
			snap.OpLatencies[opName(code)] = h.Summary()
		}
	}
	snap.TracerRings = s.tracer.RingStats()
	for _, rs := range snap.TracerRings {
		snap.TracerEmitted += rs.Emitted
		snap.TracerDropped += rs.Dropped
	}
	snap.SpanInFlight = s.flight.InFlightCount()
	snap.SpanDrops = s.flight.Drops()
	snap.SlowSpans = s.flight.SlowCaptured()
	probes := make([]chan ShardStats, len(s.shards))
	for i, sh := range s.shards {
		probes[i] = make(chan ShardStats, 1)
		if !sh.tryEnqueue(&request{stats: probes[i]}) {
			return snap, fmt.Errorf("server: shard %d queue full", i)
		}
	}
	for _, ch := range probes {
		select {
		case st := <-ch:
			snap.ShardStats = append(snap.ShardStats, st)
			snap.Keys += st.Keys
			snap.Txns += st.Run.Transactions
			snap.LogAppends += st.Run.LogAppends
			snap.LogTrunc += st.Run.LogTruncated
			snap.FwbScans += st.Run.FwbScans
			snap.NVRAMBytes += st.Run.NVRAMWriteBytes
		case <-s.dead:
			return snap, fmt.Errorf("server: shutting down")
		}
	}
	return snap, nil
}

func (s *Server) statsResponse() Response {
	snap, err := s.Stats()
	if err != nil {
		s.noteRetry()
		return Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs}
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return Response{Status: StatusErr, Err: err.Error()}
	}
	return Response{Status: StatusOK, Val: b}
}

// Shutdown drains gracefully: new requests are rejected with StatusRetry,
// queued requests are answered, every shard takes a final image save, and
// open connections are then closed. Safe to call once; Kill afterwards is
// a no-op.
func (s *Server) Shutdown() error {
	var err error
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		close(s.pulseStop)
		s.ln.Close()
		if s.httpLn != nil {
			s.httpLn.Close()
		}
		s.acceptWG.Wait()
		for _, sh := range s.shards {
			close(sh.stop)
		}
		for _, sh := range s.shards {
			<-sh.done
		}
		s.deadOnce.Do(func() { close(s.dead) })
		close(s.shardsDead)
		s.closeConns()
		s.connWG.Wait()
		s.cfg.Logger.Printf("pmserver: drained and stopped")
	})
	return err
}

// Kill is the hard-stop analogue of pulling the plug mid-traffic: the
// listener and shard loops stop immediately, no final save is taken, and
// unanswered requests error out (they were never acked). The on-disk
// images keep whatever the last completed batch persisted.
func (s *Server) Kill() {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		close(s.pulseStop)
		s.ln.Close()
		if s.httpLn != nil {
			s.httpLn.Close()
		}
		for _, sh := range s.shards {
			close(sh.kill)
		}
		s.deadOnce.Do(func() { close(s.dead) })
		s.acceptWG.Wait()
		for _, sh := range s.shards {
			<-sh.done
		}
		close(s.shardsDead)
		s.closeConns()
		s.connWG.Wait()
		s.cfg.Logger.Printf("pmserver: killed (no final save)")
	})
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Keys reports the number of live keys per shard via stats probes (test
// and tooling convenience).
func (s *Server) Keys() (uint64, error) {
	snap, err := s.Stats()
	if err != nil {
		return 0, err
	}
	return snap.Keys, nil
}
