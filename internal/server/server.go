package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pmemlog/internal/obs"
	"pmemlog/internal/sim"
	"pmemlog/internal/txn"
)

// Config describes a pmserver instance.
type Config struct {
	Addr string // TCP listen address, e.g. ":7070" or "127.0.0.1:0"
	Dir  string // data directory: per-shard DIMM images + manifest

	Shards     int      // worker shards (each owns one simulated machine)
	Mode       txn.Mode // logging design each shard runs (fwb by default)
	QueueDepth int      // per-shard bounded queue (backpressure beyond this)
	BatchMax   int      // max requests drained into one shard batch
	Buckets    uint64   // hash buckets per shard store

	// Per-shard simulated machine sizing. The defaults favor restart
	// speed over capacity; a real deployment scales NVRAMBytes up.
	NVRAMBytes uint64
	LogBytes   uint64
	L2Bytes    uint64

	RetryAfterMs uint32      // backpressure hint returned with StatusRetry
	Logger       *log.Logger // nil = log.Default()

	// TraceEvents > 0 attaches an event tracer with that many records
	// per ring (one ring per shard plus a network ring). The tracer
	// starts disabled; see Server.Tracer. Zero means no tracer.
	TraceEvents int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Mode == txn.NonPers {
		c.Mode = txn.FWB
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.Buckets == 0 {
		c.Buckets = 4096
	}
	if c.NVRAMBytes == 0 {
		c.NVRAMBytes = 8 << 20
	}
	if c.LogBytes == 0 {
		c.LogBytes = 256 << 10
	}
	if c.L2Bytes == 0 {
		c.L2Bytes = 256 << 10
	}
	if c.RetryAfterMs == 0 {
		c.RetryAfterMs = 5
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// manifest is the durable boot contract persisted next to the images: a
// restarting server must rebuild shards with identical geometry or the
// address map (and therefore every persisted pointer) would shift.
type manifest struct {
	Version    int      `json:"version"`
	Shards     int      `json:"shards"`
	Mode       txn.Mode `json:"mode"`
	Buckets    uint64   `json:"buckets"`
	NVRAMBytes uint64   `json:"nvram_bytes"`
	LogBytes   uint64   `json:"log_bytes"`
}

const manifestName = "pmserver.json"

// Server is a running pmserver instance.
type Server struct {
	cfg    Config
	ln     net.Listener
	shards []*shard

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	draining atomic.Bool
	dead     chan struct{} // closed once shards can no longer answer
	deadOnce sync.Once
	stopOnce sync.Once
	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup

	// Counters for the stats endpoint.
	accepted   atomic.Uint64
	requests   atomic.Uint64
	retries    atomic.Uint64
	crossShard atomic.Uint64

	// Observability (see metrics.go). The registry handles are created
	// once in initObs; dispatch only touches the atomic handles.
	t0       time.Time
	reg      *obs.Registry
	tracer   *obs.Tracer
	opHist   map[byte]*obs.Histogram
	opCount  map[byte]*obs.Counter
	mRetries *obs.Counter
}

// shardConfig builds one shard's machine configuration.
func shardConfig(c Config) sim.Config {
	cfg := sim.DefaultConfig(c.Mode, 1)
	cfg.NVRAMBytes = c.NVRAMBytes
	cfg.LogBytes = c.LogBytes
	cfg.Caches.L2.SizeBytes = c.L2Bytes
	// Persisted images cannot be re-attached across a log_grow migration,
	// so growing is disabled; the log is sized for the small per-request
	// transactions the store issues.
	cfg.GrowReserveBytes = 0
	cfg.GrowFactor = 0
	return cfg
}

// Start boots (or re-attaches) every shard, then begins serving.
func Start(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	// Adopt the persisted manifest when the data directory is live.
	manPath := filepath.Join(cfg.Dir, manifestName)
	if b, err := os.ReadFile(manPath); err == nil {
		var m manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("server: manifest %s: %w", manPath, err)
		}
		if m.Version != 1 {
			return nil, fmt.Errorf("server: manifest version %d unsupported", m.Version)
		}
		cfg.Shards, cfg.Mode, cfg.Buckets = m.Shards, m.Mode, m.Buckets
		cfg.NVRAMBytes, cfg.LogBytes = m.NVRAMBytes, m.LogBytes
	} else if os.IsNotExist(err) {
		if !cfg.Mode.Spec().Persistent {
			return nil, fmt.Errorf("server: mode %q gives no persistence guarantee; refusing to serve writes", cfg.Mode)
		}
		b, _ := json.MarshalIndent(manifest{
			Version: 1, Shards: cfg.Shards, Mode: cfg.Mode, Buckets: cfg.Buckets,
			NVRAMBytes: cfg.NVRAMBytes, LogBytes: cfg.LogBytes,
		}, "", "  ")
		tmp := manPath + ".tmp"
		if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
		if err := os.Rename(tmp, manPath); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	s := &Server{
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		dead:  make(chan struct{}),
	}
	s.initObs()
	scfg := shardConfig(cfg)
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(i, scfg, cfg.Buckets, cfg.Dir, cfg.QueueDepth, cfg.BatchMax)
		if err != nil {
			return nil, err
		}
		sh.tracer, sh.nowNS = s.tracer, s.nowNS
		if sh.bootRep != nil {
			cfg.Logger.Printf("pmserver: shard %d re-attached %s: %d keys, %d log records scanned, %d txns redone, %d rolled back",
				i, sh.imgPath, sh.st.keys, sh.bootRep.EntriesScanned, len(sh.bootRep.Committed), len(sh.bootRep.Uncommitted))
		}
		s.shards = append(s.shards, sh)
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	for _, sh := range s.shards {
		go sh.loop()
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	cfg.Logger.Printf("pmserver: serving on %s (%d shards, mode %s, dir %s)",
		ln.Addr(), cfg.Shards, cfg.Mode, cfg.Dir)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Dir returns the data directory holding the shard images.
func (s *Server) Dir() string { return s.cfg.Dir }

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(c)
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	var out []byte
	for {
		body, err := ReadFrame(br, MaxFrame)
		if err != nil {
			return
		}
		req, err := DecodeRequest(body)
		if err == nil && s.tracer.Enabled() {
			s.tracer.Emit(s.netRing(), s.nowNS(), obs.KindSrvRecv, 0, uint64(req.Code))
		}
		var resp Response
		if err != nil {
			// A malformed frame means the stream may be desynchronized:
			// answer once, then drop the connection.
			resp = Response{Status: StatusErr, Err: err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		out = EncodeResponse(out[:0], &resp)
		if werr := WriteFrame(bw, out); werr != nil {
			return
		}
		if werr := bw.Flush(); werr != nil {
			return
		}
		if err != nil {
			return
		}
	}
}

// dispatch routes one request to its shard and waits for the answer,
// recording the per-op latency histogram around the whole round trip
// (queueing included — that is the latency a client observes).
func (s *Server) dispatch(req *Request) Response {
	if h := s.opHist[req.Code]; h != nil {
		s.opCount[req.Code].Inc()
		start := time.Now()
		resp := s.route(req)
		h.Observe(uint64(time.Since(start)))
		return resp
	}
	return s.route(req)
}

func (s *Server) route(req *Request) Response {
	s.requests.Add(1)
	if s.draining.Load() {
		s.noteRetry()
		return Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs}
	}
	if req.Code == OpStats {
		return s.statsResponse()
	}
	if req.Code == OpMetrics {
		return s.metricsResponse()
	}

	var key []byte
	if req.Code == OpTxn {
		if len(req.Ops) == 0 {
			return Response{Status: StatusOK}
		}
		key = req.Ops[0].Key
		home := ShardOf(key, len(s.shards))
		for _, op := range req.Ops[1:] {
			if ShardOf(op.Key, len(s.shards)) != home {
				s.crossShard.Add(1)
				return Response{Status: StatusErr,
					Err: "cross-shard txn: all keys of a TXN must hash to one shard"}
			}
		}
	} else {
		key = req.Key
	}
	home := ShardOf(key, len(s.shards))
	sh := s.shards[home]
	r := &request{req: req, resp: make(chan Response, 1)}
	if !sh.tryEnqueue(r) {
		s.noteRetry()
		return Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs}
	}
	if s.tracer.Enabled() {
		s.tracer.Emit(home, s.nowNS(), obs.KindSrvEnqueue, 0, uint64(req.Code))
	}
	select {
	case resp := <-r.resp:
		return resp
	case <-s.dead:
		// The shard loops are gone (kill, or a shutdown race): the write
		// was NOT acked, so the durability contract stays intact.
		return Response{Status: StatusErr, Err: "server shutting down"}
	}
}

// StatsSnapshot is the stats endpoint's JSON document.
type StatsSnapshot struct {
	Addr       string       `json:"addr"`
	Mode       txn.Mode     `json:"mode"`
	Shards     int          `json:"shards"`
	Draining   bool         `json:"draining"`
	Accepted   uint64       `json:"conns_accepted"`
	Requests   uint64       `json:"requests"`
	Retries    uint64       `json:"retries"`
	CrossShard uint64       `json:"cross_shard_rejects"`
	Keys       uint64       `json:"keys"`
	Txns       uint64       `json:"txns_committed"`
	LogAppends uint64       `json:"log_appends"`
	LogTrunc   uint64       `json:"log_truncated"`
	FwbScans   uint64       `json:"fwb_scans"`
	NVRAMBytes uint64       `json:"nvram_write_bytes"`
	ShardStats []ShardStats `json:"shard_stats"`

	// OpLatencies summarizes the per-op latency histograms (nanoseconds)
	// accumulated since server start, keyed by opcode name.
	OpLatencies map[string]obs.LatencySummary `json:"op_latencies,omitempty"`
}

// Stats gathers a consistent-enough snapshot: each shard answers a probe
// between batches, so its counters are internally consistent.
func (s *Server) Stats() (StatsSnapshot, error) {
	snap := StatsSnapshot{
		Addr:       s.Addr(),
		Mode:       s.cfg.Mode,
		Shards:     len(s.shards),
		Draining:   s.draining.Load(),
		Accepted:   s.accepted.Load(),
		Requests:   s.requests.Load(),
		Retries:    s.retries.Load(),
		CrossShard: s.crossShard.Load(),
	}
	snap.OpLatencies = make(map[string]obs.LatencySummary, len(s.opHist))
	for code, h := range s.opHist {
		if h.Count() > 0 {
			snap.OpLatencies[opName(code)] = h.Summary()
		}
	}
	probes := make([]chan ShardStats, len(s.shards))
	for i, sh := range s.shards {
		probes[i] = make(chan ShardStats, 1)
		if !sh.tryEnqueue(&request{stats: probes[i]}) {
			return snap, fmt.Errorf("server: shard %d queue full", i)
		}
	}
	for _, ch := range probes {
		select {
		case st := <-ch:
			snap.ShardStats = append(snap.ShardStats, st)
			snap.Keys += st.Keys
			snap.Txns += st.Run.Transactions
			snap.LogAppends += st.Run.LogAppends
			snap.LogTrunc += st.Run.LogTruncated
			snap.FwbScans += st.Run.FwbScans
			snap.NVRAMBytes += st.Run.NVRAMWriteBytes
		case <-s.dead:
			return snap, fmt.Errorf("server: shutting down")
		}
	}
	return snap, nil
}

func (s *Server) statsResponse() Response {
	snap, err := s.Stats()
	if err != nil {
		s.noteRetry()
		return Response{Status: StatusRetry, RetryAfterMs: s.cfg.RetryAfterMs}
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return Response{Status: StatusErr, Err: err.Error()}
	}
	return Response{Status: StatusOK, Val: b}
}

// Shutdown drains gracefully: new requests are rejected with StatusRetry,
// queued requests are answered, every shard takes a final image save, and
// open connections are then closed. Safe to call once; Kill afterwards is
// a no-op.
func (s *Server) Shutdown() error {
	var err error
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		s.ln.Close()
		s.acceptWG.Wait()
		for _, sh := range s.shards {
			close(sh.stop)
		}
		for _, sh := range s.shards {
			<-sh.done
		}
		s.deadOnce.Do(func() { close(s.dead) })
		s.closeConns()
		s.connWG.Wait()
		s.cfg.Logger.Printf("pmserver: drained and stopped")
	})
	return err
}

// Kill is the hard-stop analogue of pulling the plug mid-traffic: the
// listener and shard loops stop immediately, no final save is taken, and
// unanswered requests error out (they were never acked). The on-disk
// images keep whatever the last completed batch persisted.
func (s *Server) Kill() {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		s.ln.Close()
		for _, sh := range s.shards {
			close(sh.kill)
		}
		s.deadOnce.Do(func() { close(s.dead) })
		s.acceptWG.Wait()
		for _, sh := range s.shards {
			<-sh.done
		}
		s.closeConns()
		s.connWG.Wait()
		s.cfg.Logger.Printf("pmserver: killed (no final save)")
	})
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Keys reports the number of live keys per shard via stats probes (test
// and tooling convenience).
func (s *Server) Keys() (uint64, error) {
	snap, err := s.Stats()
	if err != nil {
		return 0, err
	}
	return snap.Keys, nil
}
