package server

import (
	"bytes"
	"fmt"

	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

// store is one shard's persistent KV structure: an open-chain hash table
// living entirely in the shard machine's NVRAM heap. Every mutation runs
// inside one persistent-memory transaction, so any crash leaves the table
// in a committed-prefix state that recovery re-surfaces.
//
// Persistent layout (all words little-endian, addresses word aligned):
//
//	root block (1 line, first heap allocation):
//	  +0  magic        +8  version      +16 buckets      +24 usedBytes
//	bucket array (buckets words): head node address per chain, 0 = empty
//	nodes:
//	  +0  next node address (0 = end of chain)
//	  +8  key length in bytes
//	  +16 value length in bytes
//	  +24 value capacity in bytes (word-rounded allocation size)
//	  +32 key bytes (padded to a word boundary), then value bytes (cap)
//
// The root's usedBytes field is the heap bump pointer, poked in just
// before every image save (the save point is quiescent: no transaction is
// in flight), so a restarting process can re-attach the volatile allocator
// without overwriting surviving nodes.
const (
	storeMagic   = 0x31767273_6d70 // "pmsrv1" little-endian
	storeVersion = 1

	rootOffMagic   = 0
	rootOffVersion = 8
	rootOffBuckets = 16
	rootOffUsed    = 24

	nodeOffNext   = 0
	nodeOffKeyLen = 8
	nodeOffValLen = 16
	nodeOffValCap = 24
	nodeOffKey    = 32
)

type store struct {
	sys      *sim.System
	root     mem.Addr
	buckets  mem.Addr
	nBuckets uint64
	keys     uint64 // volatile live-key count (rebuilt on attach)

	// keyScratch backs chain-walk key comparisons so the steady-state
	// lookup path performs no heap allocation. A store is owned by exactly
	// one shard goroutine, so a single scratch buffer suffices.
	keyScratch []byte
}

func roundWord(n uint64) uint64 { return (n + mem.WordSize - 1) &^ (mem.WordSize - 1) }

// nodeBytes is the allocation size for a node with the given key length
// and value capacity.
func nodeBytes(keyLen, valCap uint64) uint64 {
	return nodeOffKey + roundWord(keyLen) + roundWord(valCap)
}

// allocStore lays out root + bucket array on a fresh heap.
func allocStore(sys *sim.System, nBuckets uint64) (*store, error) {
	if nBuckets == 0 {
		return nil, fmt.Errorf("server: store needs at least one bucket")
	}
	root, err := sys.Heap().AllocLine(mem.LineSize)
	if err != nil {
		return nil, err
	}
	buckets, err := sys.Heap().AllocLine(nBuckets * mem.WordSize)
	if err != nil {
		return nil, err
	}
	return &store{sys: sys, root: root, buckets: buckets, nBuckets: nBuckets}, nil
}

// createStore initializes a fresh shard image: root metadata is written
// directly (setup, untimed — like log_create's initial metadata).
func createStore(sys *sim.System, nBuckets uint64) (*store, error) {
	st, err := allocStore(sys, nBuckets)
	if err != nil {
		return nil, err
	}
	setup := sys.SetupCtx()
	setup.Store(st.root+rootOffMagic, storeMagic)
	setup.Store(st.root+rootOffVersion, storeVersion)
	setup.Store(st.root+rootOffBuckets, mem.Word(nBuckets))
	setup.Store(st.root+rootOffUsed, mem.Word(sys.Heap().Used()))
	return st, nil
}

// attachStore re-attaches the store in a recovered image: the root block
// is validated, the volatile allocator is advanced past the persisted
// high-water mark, and the chains are walked to rebuild the key count (and
// to sanity-check that every reachable node lies inside the heap).
func attachStore(sys *sim.System, nBuckets uint64) (*store, error) {
	st, err := allocStore(sys, nBuckets)
	if err != nil {
		return nil, err
	}
	if got := uint64(sys.Peek(st.root + rootOffMagic)); got != storeMagic {
		return nil, fmt.Errorf("server: image root magic %#x, want %#x (not a pmserver shard image?)", got, storeMagic)
	}
	if got := uint64(sys.Peek(st.root + rootOffVersion)); got != storeVersion {
		return nil, fmt.Errorf("server: image layout version %d, want %d", got, storeVersion)
	}
	if got := uint64(sys.Peek(st.root + rootOffBuckets)); got != nBuckets {
		return nil, fmt.Errorf("server: image has %d buckets, server configured for %d", got, nBuckets)
	}
	used := uint64(sys.Peek(st.root + rootOffUsed))
	//pmlint:allow nobackdoor -- re-attach derives allocator occupancy from the recovered image's persisted mark
	if err := sys.Heap().SetUsed(used); err != nil {
		return nil, fmt.Errorf("server: persisted heap high-water mark: %w", err)
	}
	heap := sys.Heap()
	for b := uint64(0); b < nBuckets; b++ {
		node := mem.Addr(sys.Peek(st.buckets + mem.Addr(b*mem.WordSize)))
		for hops := 0; node != 0; hops++ {
			if hops > 1<<20 {
				return nil, fmt.Errorf("server: bucket %d chain does not terminate (corrupt image)", b)
			}
			if !heap.Contains(node, nodeOffKey) {
				return nil, fmt.Errorf("server: bucket %d links node %v outside the heap", b, node)
			}
			st.keys++
			node = mem.Addr(sys.Peek(node + nodeOffNext))
		}
	}
	return st, nil
}

// persistHighWater pokes the allocator's bump pointer into the root block.
// Called only at image-save points, where no transaction is in flight, so
// every byte below the mark belongs to committed (or freed) nodes.
func (st *store) persistHighWater() {
	//pmlint:allow nobackdoor -- image-save point with the system quiesced; no transaction can race this word
	st.sys.Poke(st.root+rootOffUsed, mem.Word(st.sys.Heap().Used()))
}

// bucketSlot returns the address of the chain-head word for key.
func (st *store) bucketSlot(key []byte) mem.Addr {
	idx := (hash64(key) >> 16) % st.nBuckets
	return st.buckets + mem.Addr(idx*mem.WordSize)
}

// find walks key's chain. It returns the matching node (0 if absent) and
// the address of the word that links to it (the bucket slot or the
// predecessor's next field) for unlinking/replacing.
func (st *store) find(ctx sim.Ctx, key []byte) (node, linkSlot mem.Addr) {
	linkSlot = st.bucketSlot(key)
	node = mem.Addr(ctx.Load(linkSlot))
	for node != 0 {
		keyLen := uint64(ctx.Load(node + nodeOffKeyLen))
		if keyLen == uint64(len(key)) {
			st.keyScratch = ctx.LoadBytesInto(st.keyScratch[:0], node+nodeOffKey, len(key))
			if bytes.Equal(st.keyScratch, key) {
				return node, linkSlot
			}
		}
		linkSlot = node + nodeOffNext
		node = mem.Addr(ctx.Load(linkSlot))
	}
	return 0, linkSlot
}

// get appends the value stored under key to dst and returns the extended
// slice. Passing a reused dst with spare capacity makes the steady-state
// GET path allocation free; passing nil behaves like the old allocating
// variant.
func (st *store) get(ctx sim.Ctx, key, dst []byte) ([]byte, bool) {
	node, _ := st.find(ctx, key)
	if node == 0 {
		return dst, false
	}
	valLen := int(ctx.Load(node + nodeOffValLen))
	keyLen := uint64(ctx.Load(node + nodeOffKeyLen))
	if valLen == 0 {
		if dst == nil {
			dst = []byte{}
		}
		return dst, true
	}
	return ctx.LoadBytesInto(dst, node+nodeOffKey+mem.Addr(roundWord(keyLen)), valLen), true
}

// writeNode fills a freshly allocated node (inside the caller's open
// transaction) and returns it linked to next.
func (st *store) writeNode(ctx sim.Ctx, node mem.Addr, key, val []byte, valCap uint64, next mem.Addr) {
	ctx.Store(node+nodeOffNext, mem.Word(next))
	ctx.Store(node+nodeOffKeyLen, mem.Word(len(key)))
	ctx.Store(node+nodeOffValLen, mem.Word(len(val)))
	ctx.Store(node+nodeOffValCap, mem.Word(valCap))
	ctx.StoreBytes(node+nodeOffKey, key)
	if len(val) > 0 {
		ctx.StoreBytes(node+nodeOffKey+mem.Addr(roundWord(uint64(len(key)))), val)
	}
}

// applyPut inserts or updates key → val. Must be called inside an open
// transaction; the caller has preflighted heap headroom (see putHeadroom),
// so allocation cannot fail mid-transaction.
func (st *store) applyPut(ctx sim.Ctx, key, val []byte) error {
	node, linkSlot := st.find(ctx, key)
	if node != 0 {
		valCap := uint64(ctx.Load(node + nodeOffValCap))
		keyLen := uint64(ctx.Load(node + nodeOffKeyLen))
		if roundWord(uint64(len(val))) <= valCap {
			// In-place update: the common fixed-size-value fast path.
			ctx.Store(node+nodeOffValLen, mem.Word(len(val)))
			if len(val) > 0 {
				ctx.StoreBytes(node+nodeOffKey+mem.Addr(roundWord(keyLen)), val)
			}
			return nil
		}
		// Grown value: allocate a roomier node, splice it into the old
		// node's chain position, recycle the old node's space. The free is
		// volatile metadata only — if the process dies before this
		// transaction's state is saved, the restart re-derives occupancy
		// from the persisted high-water mark and nothing is lost.
		valCapNew := roundWord(uint64(len(val)))
		repl, err := st.sys.Heap().Alloc(nodeBytes(uint64(len(key)), valCapNew))
		if err != nil {
			return fmt.Errorf("server: shard heap full: %w", err)
		}
		next := mem.Addr(ctx.Load(node + nodeOffNext))
		st.writeNode(ctx, repl, key, val, valCapNew, next)
		ctx.Store(linkSlot, mem.Word(repl))
		st.sys.Heap().Free(node, nodeBytes(keyLen, valCap))
		return nil
	}
	valCap := roundWord(uint64(len(val)))
	fresh, err := st.sys.Heap().Alloc(nodeBytes(uint64(len(key)), valCap))
	if err != nil {
		return fmt.Errorf("server: shard heap full: %w", err)
	}
	slot := st.bucketSlot(key)
	head := mem.Addr(ctx.Load(slot))
	st.writeNode(ctx, fresh, key, val, valCap, head)
	ctx.Store(slot, mem.Word(fresh))
	st.keys++
	return nil
}

// applyDel unlinks key's node. Must be called inside an open transaction.
func (st *store) applyDel(ctx sim.Ctx, key []byte) bool {
	node, linkSlot := st.find(ctx, key)
	if node == 0 {
		return false
	}
	next := mem.Addr(ctx.Load(node + nodeOffNext))
	ctx.Store(linkSlot, mem.Word(next))
	keyLen := uint64(ctx.Load(node + nodeOffKeyLen))
	valCap := uint64(ctx.Load(node + nodeOffValCap))
	st.sys.Heap().Free(node, nodeBytes(keyLen, valCap))
	st.keys--
	return true
}

// putHeadroom is the worst-case heap demand of a PUT (a fresh node).
func putHeadroom(key, val []byte) uint64 {
	return nodeBytes(uint64(len(key)), roundWord(uint64(len(val))))
}

// heapRemaining is the bump-allocator headroom (free-list space is extra,
// so this is conservative).
func (st *store) heapRemaining() uint64 {
	return st.sys.Heap().Size() - st.sys.Heap().Used()
}

// put runs one PUT as a single persistent transaction.
func (st *store) put(ctx sim.Ctx, key, val []byte) error {
	if putHeadroom(key, val) > st.heapRemaining() {
		return fmt.Errorf("server: shard heap full (%d of %d bytes used)",
			st.sys.Heap().Used(), st.sys.Heap().Size())
	}
	ctx.TxBegin()
	err := st.applyPut(ctx, key, val)
	ctx.TxCommit()
	return err
}

// del runs one DEL as a single persistent transaction.
func (st *store) del(ctx sim.Ctx, key []byte) bool {
	ctx.TxBegin()
	ok := st.applyDel(ctx, key)
	ctx.TxCommit()
	return ok
}

// txn applies a PUT/DEL batch atomically in one persistent transaction:
// either every sub-op's effect survives a crash or none does.
func (st *store) txn(ctx sim.Ctx, ops []Op) error {
	var need uint64
	for _, op := range ops {
		if op.Code == OpPut {
			need += putHeadroom(op.Key, op.Val)
		}
	}
	if need > st.heapRemaining() {
		return fmt.Errorf("server: shard heap full (%d of %d bytes used)",
			st.sys.Heap().Used(), st.sys.Heap().Size())
	}
	ctx.TxBegin()
	var err error
	for _, op := range ops {
		if op.Code == OpPut {
			err = st.applyPut(ctx, op.Key, op.Val)
		} else {
			st.applyDel(ctx, op.Key)
		}
		if err != nil {
			// Preflight makes this unreachable; stop applying but still
			// commit so the machine is not left mid-transaction.
			break
		}
	}
	ctx.TxCommit()
	return err
}
