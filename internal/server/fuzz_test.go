package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest: arbitrary bytes must never panic, and anything that
// decodes must survive an encode → decode round trip unchanged (Seq
// included — the pipelined client depends on it being echoed exactly).
// DecodeRequestInto with a dirty reused Request must agree with a fresh
// DecodeRequest, since the connection reader reuses one Request per conn.
func FuzzDecodeRequest(f *testing.F) {
	seed := []*Request{
		{Code: OpGet, Seq: 7, Key: []byte("k")},
		{Code: OpPut, Seq: 1 << 30, Key: []byte("k"), Val: []byte("v")},
		{Code: OpDel, Seq: 0, Key: []byte("k")},
		{Code: OpTxn, Seq: 42, Ops: []Op{
			{Code: OpPut, Key: []byte("a"), Val: []byte("1")},
			{Code: OpDel, Key: []byte("b")},
		}},
		{Code: OpStats, Seq: 9},
		{Code: OpMetrics, Seq: 10},
		{Code: OpGet, Seq: 11, Span: 1<<32 | 11, Key: []byte("k")},
		{Code: OpTxn, Seq: 12, Span: ^uint64(0), Ops: []Op{{Code: OpDel, Key: []byte("b")}}},
	}
	for _, r := range seed {
		body, err := EncodeRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{OpTxn, 0, 0, 0, 0, 0xff, 0xff})

	// reused persists across fuzz iterations, emulating the server's
	// per-connection Request reuse under adversarial interleavings.
	var reused Request
	f.Fuzz(func(t *testing.T, body []byte) {
		fresh, err := DecodeRequest(body)
		if err2 := DecodeRequestInto(&reused, body); (err == nil) != (err2 == nil) {
			t.Fatalf("fresh decode err=%v, reused decode err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if !requestsEqual(fresh, &reused) {
			t.Fatalf("reused decode %+v != fresh decode %+v", reused, *fresh)
		}
		re, err := EncodeRequest(nil, fresh)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v (%+v)", err, fresh)
		}
		back, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !requestsEqual(fresh, back) {
			t.Fatalf("round trip changed request: %+v -> %+v", fresh, back)
		}
	})
}

func requestsEqual(a, b *Request) bool {
	if a.Code != b.Code || a.Seq != b.Seq || a.Span != b.Span ||
		!bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Val, b.Val) || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		if a.Ops[i].Code != b.Ops[i].Code ||
			!bytes.Equal(a.Ops[i].Key, b.Ops[i].Key) || !bytes.Equal(a.Ops[i].Val, b.Ops[i].Val) {
			return false
		}
	}
	return true
}

// FuzzDecodeResponse: arbitrary bytes must never panic, and anything that
// decodes must survive an encode → decode round trip with Seq, status and
// payload intact.
func FuzzDecodeResponse(f *testing.F) {
	for _, r := range []*Response{
		{Status: StatusOK, Seq: 3, Val: []byte("v")},
		{Status: StatusOK, Seq: 1 << 31, Val: nil},
		{Status: StatusNotFound, Seq: 8},
		{Status: StatusRetry, Seq: 5, RetryAfterMs: 250},
		{Status: StatusErr, Seq: 6, Err: "boom"},
		{Status: StatusOK, Seq: 7, Span: 1<<32 | 7, Val: []byte("v")},
	} {
		f.Add(EncodeResponse(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{StatusErr, 0, 0, 0, 0, 0xff, 0xff})

	var reused Response
	f.Fuzz(func(t *testing.T, body []byte) {
		fresh, err := DecodeResponse(body)
		if err2 := DecodeResponseInto(&reused, body); (err == nil) != (err2 == nil) {
			t.Fatalf("fresh decode err=%v, reused decode err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if fresh.Status != reused.Status || fresh.Seq != reused.Seq ||
			fresh.Span != reused.Span ||
			!bytes.Equal(fresh.Val, reused.Val) ||
			fresh.RetryAfterMs != reused.RetryAfterMs || fresh.Err != reused.Err {
			t.Fatalf("reused decode %+v != fresh decode %+v", reused, *fresh)
		}
		back, err := DecodeResponse(EncodeResponse(nil, fresh))
		if err != nil {
			t.Fatalf("re-encoded response does not decode: %v", err)
		}
		if back.Status != fresh.Status || back.Seq != fresh.Seq ||
			back.Span != fresh.Span ||
			!bytes.Equal(back.Val, fresh.Val) ||
			back.RetryAfterMs != fresh.RetryAfterMs || back.Err != fresh.Err {
			t.Fatalf("round trip changed response: %+v -> %+v", fresh, back)
		}
	})
}
