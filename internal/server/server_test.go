package server

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"testing"

	"pmemlog/internal/txn"
)

func testConfig(dir string) Config {
	return Config{
		Addr:       "127.0.0.1:0",
		Dir:        dir,
		Shards:     2,
		Mode:       txn.FWB,
		QueueDepth: 128,
		BatchMax:   8,
		Buckets:    128,
		NVRAMBytes: 2 << 20,
		LogBytes:   64 << 10,
		L2Bytes:    64 << 10,
		Logger:     log.New(io.Discard, "", 0),
	}
}

func TestServerBasicOps(t *testing.T) {
	srv, err := Start(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxRetries = 10

	if _, found, err := c.Get([]byte("missing")); err != nil || found {
		t.Fatalf("get missing: found=%v err=%v", found, err)
	}
	if err := c.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if v, found, err := c.Get([]byte("alpha")); err != nil || !found || !bytes.Equal(v, []byte("one")) {
		t.Fatalf("get alpha: %q found=%v err=%v", v, found, err)
	}
	// Overwrite, including a size change that forces node reallocation.
	if err := c.Put([]byte("alpha"), bytes.Repeat([]byte("x"), 200)); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get([]byte("alpha")); len(v) != 200 {
		t.Fatalf("overwrite: got %d bytes", len(v))
	}
	if found, err := c.Del([]byte("alpha")); err != nil || !found {
		t.Fatalf("del alpha: found=%v err=%v", found, err)
	}
	if _, found, _ := c.Get([]byte("alpha")); found {
		t.Fatal("alpha still present after del")
	}
	if found, _ := c.Del([]byte("alpha")); found {
		t.Fatal("double del reported found")
	}

	// Same-shard transaction: batch keys that hash to one shard.
	ops := sameShardOps(t, 2, 3)
	if err := c.Txn(ops); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if v, found, _ := c.Get(op.Key); !found || !bytes.Equal(v, op.Val) {
			t.Fatalf("txn key %q: found=%v val=%q", op.Key, found, v)
		}
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Shards != 2 || len(snap.ShardStats) != 2 {
		t.Fatalf("stats shards: %+v", snap)
	}
	if snap.Keys != uint64(len(ops)) {
		t.Fatalf("stats keys = %d, want %d", snap.Keys, len(ops))
	}
	if snap.Txns == 0 || snap.LogAppends == 0 {
		t.Fatalf("stats counters empty: txns=%d appends=%d", snap.Txns, snap.LogAppends)
	}
	if snap.Mode != txn.FWB {
		t.Fatalf("stats mode = %v", snap.Mode)
	}
}

// sameShardOps builds n PUT ops whose keys all hash to one shard.
func sameShardOps(t *testing.T, shards, n int) []Op {
	t.Helper()
	var ops []Op
	want := -1
	for i := 0; len(ops) < n && i < 10000; i++ {
		key := []byte(fmt.Sprintf("txnkey-%04d", i))
		if want == -1 {
			want = ShardOf(key, shards)
		}
		if ShardOf(key, shards) != want {
			continue
		}
		ops = append(ops, Op{Code: OpPut, Key: key, Val: []byte(fmt.Sprintf("tv-%04d", i))})
	}
	if len(ops) < n {
		t.Fatal("could not build same-shard batch")
	}
	return ops
}

func TestCrossShardTxnRejected(t *testing.T) {
	srv, err := Start(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find two keys on different shards.
	var a, b []byte
	for i := 0; b == nil && i < 10000; i++ {
		k := []byte(fmt.Sprintf("xs-%04d", i))
		switch {
		case a == nil:
			a = k
		case ShardOf(k, 2) != ShardOf(a, 2):
			b = k
		}
	}
	err = c.Txn([]Op{{Code: OpPut, Key: a, Val: []byte("1")}, {Code: OpPut, Key: b, Val: []byte("2")}})
	if _, ok := err.(ErrServer); !ok {
		t.Fatalf("cross-shard txn: got %v, want ErrServer", err)
	}
	// Neither key may have been written.
	for _, k := range [][]byte{a, b} {
		if _, found, _ := c.Get(k); found {
			t.Fatalf("cross-shard txn leaked key %q", k)
		}
	}
}

func TestGracefulRestartPersists(t *testing.T) {
	dir := t.TempDir()
	srv, err := Start(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.MaxRetries = 10
	const n = 40
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("persist-%03d", i)), []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Restart with a deliberately different (ignored) geometry: the
	// manifest pins the real one.
	cfg := testConfig(dir)
	cfg.Shards = 7
	cfg.Buckets = 999
	srv2, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	c2, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	snap, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Shards != 2 {
		t.Fatalf("manifest not adopted: %d shards", snap.Shards)
	}
	if snap.Keys != n {
		t.Fatalf("recovered %d keys, want %d", snap.Keys, n)
	}
	for i := 0; i < n; i++ {
		v, found, err := c2.Get([]byte(fmt.Sprintf("persist-%03d", i)))
		if err != nil || !found || !bytes.Equal(v, []byte(fmt.Sprintf("val-%03d", i))) {
			t.Fatalf("key %d after restart: %q found=%v err=%v", i, v, found, err)
		}
	}
}

func TestShardQueueBackpressure(t *testing.T) {
	// White-box: a shard whose loop is not running accepts exactly
	// queueDepth requests, then sheds load.
	cfg := testConfig(t.TempDir())
	sh, err := newShard(0, shardConfig(cfg), cfg.Buckets, cfg.Dir, 4, cfg.BatchMax)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !sh.tryEnqueue(&request{req: &Request{Code: OpGet, Key: []byte("k")}, resp: make(chan Response, 1)}) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if sh.tryEnqueue(&request{req: &Request{Code: OpGet, Key: []byte("k")}, resp: make(chan Response, 1)}) {
		t.Fatal("enqueue accepted beyond queue capacity")
	}
	// Draining the loop answers everything queued.
	go sh.loop()
	close(sh.stop)
	<-sh.done
}

func TestDrainingRejectsWithRetry(t *testing.T) {
	srv, err := Start(testConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	srv.draining.Store(true)
	resp := srv.dispatch(&Request{Code: OpGet, Key: []byte("k")})
	if resp.Status != StatusRetry || resp.RetryAfterMs == 0 {
		t.Fatalf("draining dispatch: %+v", resp)
	}
	srv.draining.Store(false)
}

func TestManifestRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	srv, err := Start(testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	// Corrupt a shard image: the store attach must fail loudly, not serve
	// garbage.
	img := srv.shards[0].imgPath
	if err := os.WriteFile(img, []byte("definitely not a DIMM image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Start(testConfig(dir)); err == nil {
		t.Fatal("Start accepted a corrupt shard image")
	}
}
