package sim

import (
	"sort"

	"pmemlog/internal/mem"
	"pmemlog/internal/recovery"
)

// writeRec is one word-granular transactional write.
type writeRec struct {
	addr mem.Addr
	val  mem.Word
}

// txRecord tracks one transaction for crash-consistency verification.
type txRecord struct {
	txID   uint16
	writes []writeRec
	// commitIssued is the cycle at which TxCommit returned to the program;
	// commitDurable is a bound on when the commit record reached NVRAM
	// (^0 when the design gives no durable-commit-on-return guarantee,
	// i.e. the paper's no-force instant commit).
	commitIssued  uint64
	commitDurable uint64
	committed     bool
	// durableAllAt is the earliest cycle at which ALL the transaction's
	// data was provably durable in NVRAM (set when a software GC flushed
	// everything with a completed fence); ^0 if never.
	durableAllAt uint64
	// Hardware truncation evidence: the engine truncated this committed
	// transaction's records from sub-log truncLogIdx, the last at sequence
	// truncLastSeq. If the recovered durable head of that sub-log passed
	// truncLastSeq, the truncation's durability evidence reached NVRAM
	// before the crash.
	truncated    bool
	truncLogIdx  int
	truncEpoch   int
	truncLastSeq uint64
}

// oracle tracks the information crash tests need: the population baseline
// plus a record of every transaction's writes and commit times.
type oracle struct {
	committed map[mem.Addr]mem.Word // population + committed state (live view)
	txs       []*txRecord
}

func newOracle() *oracle {
	return &oracle{committed: make(map[mem.Addr]mem.Word)}
}

func (o *oracle) commitWord(addr mem.Addr, w mem.Word) { o.committed[addr] = w }

// beginTx opens a record for a starting transaction.
func (o *oracle) beginTx(txID uint16) *txRecord {
	t := &txRecord{txID: txID, commitDurable: ^uint64(0), durableAllAt: ^uint64(0)}
	o.txs = append(o.txs, t)
	return t
}

// commitTx finalizes a record and folds its writes into the live view.
func (o *oracle) commitTx(t *txRecord, issued, durable uint64) {
	t.committed = true
	t.commitIssued = issued
	t.commitDurable = durable
	for _, w := range t.writes {
		o.committed[w.addr] = w.val
	}
}

// VerifyRecovery checks a post-crash, post-recovery NVRAM image against the
// oracle. rep is the recovery report; crashAt the crash cycle. It returns a
// list of human-readable violations (empty = consistent).
//
// Checks performed:
//
//  1. Validity: every transaction recovery marked committed was actually
//     issued a commit by the program (no phantom commits).
//  2. Durability: every transaction whose commit record was provably
//     durable before the crash must be recovered as committed.
//  3. Atomicity + integrity: replaying the baseline plus exactly the
//     recovered-committed transactions (in commit order) must reproduce
//     the image's contents word for word.
func (s *System) VerifyRecovery(rep recovery.Report, crashAt uint64) []string {
	o := s.oracle
	if o == nil {
		return []string{"oracle not enabled (set Config.TrackOracle)"}
	}
	var bad []string

	recovered := map[uint16]bool{}
	for _, id := range rep.Committed {
		recovered[id] = true
	}
	rolledBack := map[uint16]bool{}
	for _, id := range rep.Uncommitted {
		rolledBack[id] = true
	}
	issued := map[uint16]bool{}
	for _, t := range o.txs {
		if t.committed {
			issued[t.txID] = true
		}
	}
	for id := range recovered {
		if !issued[id] {
			bad = append(bad, "phantom commit: tx "+itoa(uint64(id)))
		}
	}

	// included: the transaction's effects must appear in the recovered
	// image — recovery saw its commit record; or a software GC provably
	// flushed its data before the crash; or the engine truncated its
	// records AND the durable head's advance past them survived the crash
	// (the head write is ordered after the enabling data write-backs, so
	// head coverage proves data durability).
	included := func(t *txRecord) bool {
		if !t.committed || rolledBack[t.txID] {
			return false
		}
		if recovered[t.txID] || t.durableAllAt <= crashAt {
			return true
		}
		if !t.truncated || t.truncLogIdx >= len(rep.Heads) {
			return false
		}
		// A durable log_grow AFTER the truncation proves it (the forward
		// write is ordered behind the truncation's data write-backs);
		// within the same grow epoch, durable-head coverage proves it.
		if t.truncLogIdx < len(rep.Hops) && rep.Hops[t.truncLogIdx] > t.truncEpoch {
			return true
		}
		return (t.truncLogIdx >= len(rep.Hops) || rep.Hops[t.truncLogIdx] == t.truncEpoch) &&
			t.truncLastSeq < rep.Heads[t.truncLogIdx]
	}
	for _, t := range o.txs {
		if t.committed && t.commitDurable <= crashAt && !included(t) {
			bad = append(bad, "durability violation: tx "+itoa(uint64(t.txID))+
				" durable at "+itoa(t.commitDurable)+" but rolled back")
		}
	}

	// Replay: baseline population + exactly the recovered-committed
	// transactions, applied in commit order, must match the image on every
	// word any transaction or population write ever touched.
	touched := make(map[mem.Addr]bool, len(s.population))
	for a := range s.population {
		touched[a] = true
	}
	for _, t := range o.txs {
		for _, w := range t.writes {
			touched[w.addr] = true
		}
	}
	expected := make(map[mem.Addr]mem.Word, len(touched))
	for a, w := range s.population {
		expected[a] = w
	}
	ordered := make([]*txRecord, 0, len(o.txs))
	for _, t := range o.txs {
		if included(t) {
			ordered = append(ordered, t)
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].commitIssued < ordered[j].commitIssued
	})
	for _, t := range ordered {
		for _, w := range t.writes {
			expected[w.addr] = w.val
		}
	}
	img := s.NVRAMImage()
	for a := range touched {
		want := expected[a]
		if got := img.ReadWord(a); got != want {
			bad = append(bad, "state mismatch at "+a.String()+
				": image "+itoa(uint64(got))+" want "+itoa(uint64(want)))
		}
	}
	sort.Strings(bad)
	return bad
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
