package sim

import (
	"fmt"

	"pmemlog/internal/core"
	"pmemlog/internal/mem"
	"pmemlog/internal/nvlog"
	"pmemlog/internal/obs"
	"pmemlog/internal/txn"
)

// Ctx is the interface workloads program against — the simulated machine's
// load/store/transaction surface. All addresses are simulated physical
// addresses from the System's heap; word accesses must be word aligned.
// Methods panic with simFault on machine errors (log wedged, bad address);
// the scheduler converts those to Run errors.
type Ctx interface {
	// TxBegin opens a persistent-memory transaction (tx_begin).
	TxBegin()
	// TxCommit commits it (tx_commit).
	TxCommit()
	// Load reads the word at addr through the cache hierarchy.
	Load(addr mem.Addr) mem.Word
	// Store writes the word at addr. Inside a transaction the write is
	// persistent (logged per the active design); outside it is an ordinary
	// non-persistent store.
	Store(addr mem.Addr, w mem.Word)
	// LoadBytes / StoreBytes move byte strings word-at-a-time (addr must
	// be word aligned).
	LoadBytes(addr mem.Addr, n int) []byte
	// LoadBytesInto appends n bytes starting at addr to dst and returns
	// the extended slice — the allocation-free LoadBytes for hot paths
	// that recycle a scratch buffer (pass dst[:0] to reuse its capacity).
	LoadBytesInto(dst []byte, addr mem.Addr, n int) []byte
	StoreBytes(addr mem.Addr, b []byte)
	// Compute accounts n non-memory instructions of workload work.
	Compute(n uint64)
	// ThreadID identifies the hardware thread.
	ThreadID() int
}

// simFault carries a machine error out of workload code.
type simFault struct{ err error }

// crashFault unwinds workload goroutines when the machine loses power.
type crashFault struct{}

type threadCtx struct {
	s    *System
	id   int
	core coreIface

	inTx     bool
	txStart  uint64 // cycle of the current transaction's begin
	hwTx     *core.Tx
	writeSet *txn.WriteSet

	swTxID    uint16
	swSetup   bool   // per-tx software logging setup charged
	swStarted bool   // this tx has appended at least one record
	swStart   uint64 // sequence of this tx's first record

	oracleTx *txRecord

	resume   chan struct{}
	ready    chan struct{}
	finished bool
	aborted  bool
	err      error
}

func newThreadCtx(s *System, id int, c coreIface) *threadCtx {
	return &threadCtx{
		s: s, id: id, core: c,
		writeSet: txn.NewWriteSet(),
		resume:   make(chan struct{}),
		ready:    make(chan struct{}),
	}
}

// coreIface matches *cpu.Core (kept as an interface so tests can stub it).
type coreIface interface {
	Now() uint64
	Compute(uint64)
	Load(uint64)
	Store(uint64)
	Fence(uint64)
	Instr(uint64)
	StallUntil(uint64)
}

func (t *threadCtx) ThreadID() int { return t.id }

// traceTxID is the id stamped on this thread's trace events: the
// hardware physical TxID when one is held, else the software txid.
func (t *threadCtx) traceTxID() uint16 {
	if t.hwTx != nil {
		return t.hwTx.TxID()
	}
	return t.swTxID
}

// yield hands control back to the scheduler after each operation.
func (t *threadCtx) yield() {
	t.ready <- struct{}{}
	<-t.resume
	if t.aborted {
		panic(crashFault{})
	}
}

func (t *threadCtx) fault(err error) {
	panic(simFault{err: err})
}

// run executes the workload function, converting panics to results.
func (t *threadCtx) run(w func(Ctx)) {
	defer func() {
		if r := recover(); r != nil {
			switch f := r.(type) {
			case crashFault:
				// Power loss: the open transaction dies with the machine
				// (recovery will roll it back from the undo log).
				if t.inTx {
					t.s.tracer.EmitSpan(t.id, t.core.Now(), obs.KindTxAbort, t.traceTxID(), 0, t.s.reqSpan)
				}
			case simFault:
				t.err = f.err
			default:
				t.err = fmt.Errorf("sim: workload panic on thread %d: %v", t.id, r)
			}
		}
		t.finished = true
		t.ready <- struct{}{}
	}()
	<-t.resume // wait for the scheduler's first grant
	if t.aborted {
		panic(crashFault{})
	}
	w(t)
}

func (t *threadCtx) isPersistent(addr mem.Addr) bool {
	return t.s.heap.Contains(addr, mem.WordSize)
}

// --- Ctx implementation ---

func (t *threadCtx) Compute(n uint64) {
	t.core.Compute(n)
	t.yield()
}

func (t *threadCtx) Load(addr mem.Addr) mem.Word {
	if !addr.IsWordAligned() {
		t.fault(fmt.Errorf("sim: unaligned load at %v", addr))
	}
	w, done, _ := t.s.hier.LoadWord(t.core.Now(), t.id, addr)
	t.core.Load(done)
	t.yield()
	return w
}

func (t *threadCtx) Store(addr mem.Addr, w mem.Word) {
	if !addr.IsWordAligned() {
		t.fault(fmt.Errorf("sim: unaligned store at %v", addr))
	}
	t.storeWord(addr, w)
	t.yield()
}

// storeWord dispatches on the active design (no yield; callers yield).
func (t *threadCtx) storeWord(addr mem.Addr, w mem.Word) {
	persistent := t.inTx && t.isPersistent(addr)
	if !persistent {
		_, done, _ := t.s.hier.StoreWord(t.core.Now(), t.id, addr, w)
		t.core.Store(done)
		return
	}
	spec := t.s.spec
	switch {
	case spec.SWLog:
		t.swStore(addr, w)
	case spec.HWLog:
		t.hwStore(addr, w)
	default: // non-pers
		_, done, _ := t.s.hier.StoreWord(t.core.Now(), t.id, addr, w)
		t.core.Store(done)
	}
	t.writeSet.Add(addr)
	if t.oracleTx != nil {
		t.oracleTx.writes = append(t.oracleTx.writes, writeRec{addr: addr.WordAligned(), val: w})
	}
}

// hwStore: the HWL engine builds the undo+redo record from the old
// cache-line value (available after the write-allocate) and the in-flight
// store (Figure 3). The record is accepted into the log buffer BEFORE the
// new value is committed to the cache line — the store and its logging are
// one atomic hardware action, so even a log-full emergency write-back can
// never persist un-logged data. The only stall is log-buffer backpressure.
func (t *threadCtx) hwStore(addr mem.Addr, w mem.Word) {
	old, done, _ := t.s.hier.FetchForStore(t.core.Now(), t.id, addr)
	t.core.Store(done)
	hwDone, err := t.s.eng.OnStore(done, t.hwTx, addr, old, w)
	if err != nil {
		t.fault(err)
	}
	if hwDone > t.core.Now() {
		t.core.StallUntil(hwDone)
	}
	if d := t.s.hier.CompleteStore(t.core.Now(), t.id, addr, w); d > t.core.Now() {
		t.core.StallUntil(d)
	}
}

// swStore: software logging per Figure 1 — extra instructions build the
// record, undo logging first loads the old value, redo logging fences
// between the log update and the data store.
func (t *threadCtx) swStore(addr mem.Addr, w mem.Word) {
	spec := t.s.spec
	if !t.swSetup {
		t.core.Compute(txn.SWLogSetupInstr)
		t.swSetup = true
	}
	e := nvlog.Entry{Kind: nvlog.KindUpdate, TxID: t.swTxID, ThreadID: uint8(t.id), Addr: addr.WordAligned()}
	if spec.SWStyle == nvlog.UndoOnly {
		t.core.Compute(txn.SWUndoInstrPerStore)
		old, done, _ := t.s.hier.LoadWord(t.core.Now(), t.id, addr)
		t.core.Load(done)
		e.Undo = old
	} else {
		t.core.Compute(txn.SWRedoInstrPerStore)
		e.Redo = w
	}
	t.swAppend(e)
	if spec.FencePerStore {
		// Redo logging: the log update must reach NVRAM before any data
		// store (Figure 1(b)'s memory_barrier).
		done := t.s.ctl.DrainBuffers(t.core.Now())
		t.core.Fence(done)
	}
	_, sdone, _ := t.s.hier.StoreWord(t.core.Now(), t.id, addr, w)
	t.core.Store(sdone)
}

// swAppend writes one record into the software log through the WCB,
// garbage-collecting the log when full.
func (t *threadCtx) swAppend(e nvlog.Entry) {
	l := t.s.swLog
	for l.Full() {
		t.swGC()
	}
	if !t.swStarted {
		t.swStarted = true
		t.swStart = l.Tail()
		t.s.swActive[t.id] = t.swStart
	}
	writes, err := l.PrepareAppend(e)
	if err != nil {
		t.fault(err)
	}
	done := t.core.Now()
	base := l.Config().Base
	for i, w := range writes {
		if d := t.s.ctl.UncacheableWrite(t.core.Now(), w.Addr, w.Bytes); d > done {
			done = d
		}
		// Same reuse barrier as the hardware path: a head-metadata write
		// preceding the record must complete before the record issues.
		if w.Addr == base && i < len(writes)-1 {
			d := t.s.ctl.DrainBuffers(t.core.Now())
			t.core.Fence(d)
			if d > done {
				done = d
			}
		}
	}
	// The record is built by SWLogStoresPerRecord word stores.
	t.core.Compute(uint64(txn.SWLogStoresPerRecord) - 1)
	t.core.Store(done)
}

// swGC reclaims log space when the circular log fills (Section II-C's
// "conservative cache forced write-back"): software cannot see which lines
// are dirty, so persistent designs flush EVERYTHING dirty before reusing
// records; unsafe designs just overwrite.
func (t *threadCtx) swGC() {
	l := t.s.swLog
	// Software GC code: scan bookkeeping, adjust pointers.
	t.core.Compute(64)
	if t.s.spec.Persistent {
		done := t.s.hier.FlushAllDirty(t.core.Now())
		t.core.Fence(done)
		if t.s.oracle != nil {
			// Everything committed so far is now provably durable.
			for _, rec := range t.s.oracle.txs {
				if rec.committed && t.core.Now() < rec.durableAllAt {
					rec.durableAllAt = t.core.Now()
				}
			}
		}
	}
	// Reclaim records of completed transactions only: everything before
	// the earliest live transaction's first record.
	oldest := l.Tail()
	for _, start := range t.s.swActive {
		if start < oldest {
			oldest = start
		}
	}
	n := oldest - l.Head()
	if n == 0 {
		t.fault(fmt.Errorf("sim: software log wedged by live transactions (log too small)"))
	}
	writes, err := l.Truncate(n)
	if err != nil {
		t.fault(err)
	}
	for _, w := range writes {
		t.s.ctl.UncacheableWrite(t.core.Now(), w.Addr, w.Bytes)
	}
}

func (t *threadCtx) TxBegin() {
	if t.inTx {
		t.fault(fmt.Errorf("sim: nested transaction on thread %d", t.id))
	}
	spec := t.s.spec
	if spec.SWLog || spec.HWLog {
		// non-pers has no transaction instrumentation at all (the paper's
		// ideal baseline); every persistent design pays tx_begin.
		t.core.Compute(txn.TxBeginInstr)
	}
	if spec.HWLog {
		tx, err := t.s.eng.Begin(t.core.Now(), uint8(t.id))
		if err != nil {
			t.fault(err)
		}
		t.hwTx = tx
	}
	if spec.SWLog {
		t.s.swNextTxID++
		t.swTxID = t.s.swNextTxID
		t.swSetup = false
		t.swStarted = false
	}
	t.writeSet.Reset()
	t.inTx = true
	t.txStart = t.core.Now()
	t.s.tracer.EmitSpan(t.id, t.txStart, obs.KindTxBegin, t.traceTxID(), 0, t.s.reqSpan)
	if t.s.oracle != nil {
		id := t.swTxID
		if t.hwTx != nil {
			id = t.hwTx.TxID()
		}
		t.oracleTx = t.s.oracle.beginTx(id)
		if t.hwTx != nil {
			t.s.oracleByHandle[t.hwTx.Handle()] = t.oracleTx
		}
	}
	t.yield()
}

func (t *threadCtx) TxCommit() {
	if !t.inTx {
		t.fault(fmt.Errorf("sim: commit outside transaction on thread %d", t.id))
	}
	spec := t.s.spec
	if spec.SWLog || spec.HWLog {
		t.core.Compute(txn.TxCommitInstr)
	}
	durable := ^uint64(0)
	traceTxID := t.traceTxID()

	switch {
	case spec.HWLog:
		if spec.ClwbAtCommit {
			// hwl: conservative clwb of the write set, then fence, then
			// the commit record.
			t.flushWriteSet()
			durable = t.core.Now()
		}
		done, err := t.s.eng.Commit(t.core.Now(), t.hwTx)
		if err != nil {
			t.fault(err)
		}
		if done > t.core.Now() {
			t.core.StallUntil(done)
		}
		if spec.ClwbAtCommit {
			// The commit record itself must drain for durable commit.
			d := t.s.ctl.DrainBuffers(t.core.Now())
			t.core.Fence(d)
			durable = t.core.Now()
		}
		t.hwTx = nil
	case spec.SWLog:
		t.core.Compute(txn.SWCommitInstr)
		if spec.ClwbAtCommit && spec.SWStyle == nvlog.UndoOnly {
			// undo-clwb: data must be forced out BEFORE the commit record
			// (Figure 1(a)): otherwise recovery would undo committed data.
			t.flushWriteSet()
		}
		if t.swStarted {
			t.swAppend(nvlog.Entry{Kind: nvlog.KindCommit, TxID: t.swTxID, ThreadID: uint8(t.id)})
		}
		if spec.ClwbAtCommit {
			// Commit record durability fence.
			d := t.s.ctl.DrainBuffers(t.core.Now())
			t.core.Fence(d)
			if spec.SWStyle == nvlog.RedoOnly {
				// redo-clwb: flush after commit so the log can truncate.
				t.flushWriteSet()
			}
			durable = t.core.Now()
		}
		delete(t.s.swActive, t.id)
	}

	t.inTx = false
	t.s.tracer.EmitSpan(t.id, t.core.Now(), obs.KindTxCommit, traceTxID, 0, t.s.reqSpan)
	t.s.committedTxns++
	t.s.lastCommitTxID = traceTxID
	t.s.lastCommitBegin = t.txStart
	t.s.lastCommitEnd = t.core.Now()
	if sampleCap := t.s.cfg.TxnLatencySampleCap; sampleCap > 0 && len(t.s.txnLatencies) >= sampleCap {
		// Sliding window: overwrite the oldest sample, allocation-free.
		t.s.txnLatencies[t.s.txnLatSeq%uint64(sampleCap)] = t.core.Now() - t.txStart
		t.s.txnLatSeq++
	} else {
		t.s.txnLatencies = append(t.s.txnLatencies, t.core.Now()-t.txStart)
	}
	if t.oracleTx != nil {
		t.s.oracle.commitTx(t.oracleTx, t.core.Now(), durable)
		t.oracleTx = nil
	}
	t.yield()
}

// flushWriteSet issues clwb for every line the transaction dirtied, then a
// fence waiting for all write-backs (clwb; ...; sfence).
func (t *threadCtx) flushWriteSet() {
	maxDone := t.core.Now()
	for _, line := range t.writeSet.Lines() {
		t.core.Instr(txn.ClwbInstr)
		done, _ := t.s.hier.Flush(t.core.Now(), t.id, line)
		if done > maxDone {
			maxDone = done
		}
	}
	t.core.Fence(maxDone)
}

func (t *threadCtx) LoadBytes(addr mem.Addr, n int) []byte {
	return t.LoadBytesInto(make([]byte, 0, n), addr, n)
}

func (t *threadCtx) LoadBytesInto(dst []byte, addr mem.Addr, n int) []byte {
	if !addr.IsWordAligned() {
		t.fault(fmt.Errorf("sim: unaligned LoadBytes at %v", addr))
	}
	now := t.core.Now()
	for got := 0; got < n; got += mem.WordSize {
		w, done, _ := t.s.hier.LoadWord(now, t.id, addr+mem.Addr(got))
		t.core.Load(done)
		now = t.core.Now()
		take := n - got
		if take > mem.WordSize {
			take = mem.WordSize
		}
		for i := 0; i < take; i++ {
			dst = append(dst, byte(w>>(8*i)))
		}
	}
	t.yield()
	return dst
}

func (t *threadCtx) StoreBytes(addr mem.Addr, b []byte) {
	if !addr.IsWordAligned() {
		t.fault(fmt.Errorf("sim: unaligned StoreBytes at %v", addr))
	}
	for off := 0; off < len(b); off += mem.WordSize {
		a := addr + mem.Addr(off)
		var w mem.Word
		if off+mem.WordSize <= len(b) {
			for i := mem.WordSize - 1; i >= 0; i-- {
				w = w<<8 | mem.Word(b[off+i])
			}
		} else {
			// Partial tail word: read-modify-write.
			cur, done, _ := t.s.hier.LoadWord(t.core.Now(), t.id, a)
			t.core.Load(done)
			w = cur
			for i := 0; i < len(b)-off; i++ {
				shift := uint(8 * i)
				w = (w &^ (0xff << shift)) | mem.Word(b[off+i])<<shift
			}
		}
		t.storeWord(a, w)
	}
	t.yield()
}
