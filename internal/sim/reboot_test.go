package sim

import (
	"errors"
	"testing"

	"pmemlog/internal/mem"
	"pmemlog/internal/txn"
)

// TestFullLifecycle drives the complete story the paper's recovery section
// implies: run transactions, lose power, recover, reboot the machine on
// the same NVRAM, keep running, and crash again — state must stay
// consistent across every generation.
func TestFullLifecycle(t *testing.T) {
	for _, mode := range []txn.Mode{txn.FWB, txn.HWL} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s := mustSystem(t, smallConfig(mode, 2))
			w, base := counterWorkload(s, 2, 60, 8)

			// Generation 1: crash mid-run.
			s.ScheduleCrash(1_500)
			if err := s.RunN(w); !errors.Is(err, ErrCrashed) {
				t.Fatalf("gen1: %v", err)
			}
			rep, err := s.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if bad := s.VerifyRecovery(rep, 1_500); len(bad) != 0 {
				t.Fatalf("gen1 inconsistent: %s", bad[0])
			}

			// Reboot and continue on the same NVRAM image.
			if err := s.Reboot(); err != nil {
				t.Fatal(err)
			}
			w2, _ := counterWorkload(s, 2, 60, 8) // fresh region, same system
			if err := s.RunN(w2); err != nil {
				t.Fatalf("gen2 run: %v", err)
			}

			// Generation 2 data must be visible and generation 1's
			// recovered counters untouched by the reboot.
			var sum mem.Word
			for i := 0; i < 2; i++ {
				for wd := 0; wd < 8; wd++ {
					sum += s.Peek(base[i] + mem.Addr(wd*mem.WordSize))
				}
			}
			// (generation-1 counters hold whatever recovery verified;
			// we only require that peeking doesn't explode and gen-2 ran.)
			_ = sum
			if s.Stats().Transactions < 120 {
				t.Errorf("gen2 transactions = %d", s.Stats().Transactions)
			}

			// Generation 2 crash: the resumed log's torn bits must still
			// recover cleanly.
			s.ScheduleCrash(s.GlobalTime() + 1_500)
			w3, _ := counterWorkload(s, 2, 60, 8)
			if err := s.RunN(w3); !errors.Is(err, ErrCrashed) {
				t.Fatalf("gen2 crash: %v", err)
			}
			if _, err := s.Recover(); err != nil {
				t.Fatalf("gen2 recovery: %v", err)
			}
		})
	}
}

func TestRebootRequiresCrash(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	if err := s.Reboot(); err == nil {
		t.Error("reboot of a running machine accepted")
	}
}

// The resumed log must continue its sequence numbers, not restart at zero
// (a restart would make stale records look current to the torn-bit scan).
func TestRebootResumesLogSequence(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	w, _ := counterWorkload(s, 1, 50, 8)
	s.ScheduleCrash(1_500)
	if err := s.RunN(w); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reboot(); err != nil {
		t.Fatal(err)
	}
	if got := s.Engine().Log().Tail(); got != rep.TrueTail {
		t.Errorf("resumed tail = %d, want %d", got, rep.TrueTail)
	}
	if s.Engine().Log().Len() != 0 {
		t.Errorf("resumed log not empty: %d", s.Engine().Log().Len())
	}
}

// The software-logging designs must also survive the full lifecycle (their
// log is resumed from the same durable metadata).
func TestSoftwareModeLifecycle(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.SWUndoClwb, 2))
	w, _ := counterWorkload(s, 2, 40, 8)
	s.ScheduleCrash(5000)
	if err := s.RunN(w); !errors.Is(err, ErrCrashed) {
		t.Fatalf("run: %v", err)
	}
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if bad := s.VerifyRecovery(rep, 5000); len(bad) != 0 {
		t.Fatalf("inconsistent: %s", bad[0])
	}
	if err := s.Reboot(); err != nil {
		t.Fatal(err)
	}
	w2, _ := counterWorkload(s, 2, 40, 8)
	if err := s.RunN(w2); err != nil {
		t.Fatalf("post-reboot run: %v", err)
	}
}
