package sim

import (
	"testing"

	"pmemlog/internal/obs"
	"pmemlog/internal/txn"
)

// kindSet buckets a snapshot by event kind.
func kindSet(evs []obs.Event) map[obs.Kind]int {
	m := make(map[obs.Kind]int)
	for _, e := range evs {
		m[e.Kind]++
	}
	return m
}

func TestTracerCapturesMachineEvents(t *testing.T) {
	cfg := smallConfig(txn.FWB, 2)
	cfg.LogBytes = 16 << 10 // force wrap-around
	s := mustSystem(t, cfg)
	tr := s.AttachTracer(1 << 14)
	w, _ := counterWorkload(s, 2, 60, 64)
	tr.Enable()
	if err := s.RunN(w); err != nil {
		t.Fatal(err)
	}
	tr.Disable()
	evs := tr.Snapshot()
	ks := kindSet(evs)
	if ks[obs.KindTxBegin] != 120 || ks[obs.KindTxCommit] != 120 {
		t.Fatalf("tx events begin=%d commit=%d, want 120/120", ks[obs.KindTxBegin], ks[obs.KindTxCommit])
	}
	if ks[obs.KindLogAppend] == 0 {
		t.Fatal("no log-append events")
	}
	if ks[obs.KindLogWrap] == 0 {
		t.Fatal("16 KB log over 120 txns must wrap, but no wrap events")
	}
	if ks[obs.KindFwbScan] == 0 {
		t.Fatal("FWB mode ran without scan events")
	}
	if ks[obs.KindBufDrain] == 0 {
		t.Fatal("no log-buffer drain events")
	}
	// Tx events must carry the emitting thread's ring.
	for _, e := range evs {
		if e.Kind == obs.KindTxBegin && int(e.Ring) >= cfg.Threads {
			t.Fatalf("tx-begin in ring %d, want a thread ring", e.Ring)
		}
	}
	// Aggregate-stat cross-check: each committed transaction appends a
	// header, its updates, and a commit record.
	r := s.Stats()
	if r.FwbScans == 0 || uint64(ks[obs.KindFwbScan]) != r.FwbScans {
		t.Fatalf("scan events %d != stats scans %d", ks[obs.KindFwbScan], r.FwbScans)
	}
}

func TestTracerSurvivesReboot(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	tr := s.AttachTracer(1 << 12)
	w, _ := counterWorkload(s, 1, 200, 16)
	tr.Enable()
	s.ScheduleCrash(500)
	if err := s.RunN(w); err != ErrCrashed {
		t.Fatalf("RunN = %v, want ErrCrashed", err)
	}
	if err := s.Reboot(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	before := tr.Emitted()
	w2, _ := counterWorkload(s, 1, 5, 16)
	if err := s.RunN(w2); err != nil {
		t.Fatal(err)
	}
	tr.Disable()
	if tr.Emitted() <= before {
		t.Fatal("rebuilt machine no longer feeds the tracer (rewire lost)")
	}
}

func TestTracerDisabledEmitsNothing(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	tr := s.AttachTracer(1 << 10) // attached but never enabled
	w, _ := counterWorkload(s, 1, 10, 16)
	if err := s.RunN(w); err != nil {
		t.Fatal(err)
	}
	if n := tr.Emitted(); n != 0 {
		t.Fatalf("disabled tracer recorded %d events", n)
	}
}
