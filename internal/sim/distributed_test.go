package sim

import (
	"errors"
	"math/rand"
	"testing"

	"pmemlog/internal/txn"
)

// perThreadConfig enables the Section III-F distributed per-thread logs.
func perThreadConfig(mode txn.Mode, threads int) Config {
	cfg := smallConfig(mode, threads)
	cfg.PerThreadLogs = true
	return cfg
}

func TestDistributedLogsRunClean(t *testing.T) {
	s := mustSystem(t, perThreadConfig(txn.FWB, 4))
	if got := len(s.Engine().LogBases()); got != 4 {
		t.Fatalf("sub-logs = %d, want 4", got)
	}
	w, _ := counterWorkload(s, 4, 60, 8)
	if err := s.RunN(w); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Transactions != 240 {
		t.Errorf("transactions = %d", s.Stats().Transactions)
	}
	// Every thread's records went somewhere: all sub-logs appended.
	var active int
	for _, base := range s.Engine().LogBases() {
		if base != 0 {
			active++
		}
	}
	if active != 4 {
		t.Error("missing sub-log bases")
	}
}

// The headline property must hold for distributed logs too: crash anywhere,
// recover all regions, state is consistent.
func TestDistributedCrashRecovery(t *testing.T) {
	probe := mustSystem(t, perThreadConfig(txn.FWB, 4))
	w, _ := counterWorkload(probe, 4, 40, 8)
	if err := probe.RunN(w); err != nil {
		t.Fatal(err)
	}
	total := probe.WallCycles()

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		crashAt := uint64(rng.Int63n(int64(total))) + 1
		s := mustSystem(t, perThreadConfig(txn.FWB, 4))
		w, _ := counterWorkload(s, 4, 40, 8)
		s.ScheduleCrash(crashAt)
		if err := s.RunN(w); !errors.Is(err, ErrCrashed) {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := s.Recover()
		if err != nil {
			t.Fatalf("trial %d: recovery: %v", trial, err)
		}
		if bad := s.VerifyRecovery(rep, crashAt); len(bad) != 0 {
			t.Fatalf("trial %d (crash@%d): %s", trial, crashAt, bad[0])
		}
	}
}

func TestDistributedLifecycleWithReboot(t *testing.T) {
	s := mustSystem(t, perThreadConfig(txn.FWB, 2))
	w, _ := counterWorkload(s, 2, 60, 8)
	s.ScheduleCrash(1500)
	if err := s.RunN(w); !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reboot(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Engine().LogBases()); got != 2 {
		t.Fatalf("sub-logs after reboot = %d", got)
	}
	w2, _ := counterWorkload(s, 2, 60, 8)
	if err := s.RunN(w2); err != nil {
		t.Fatal(err)
	}
}

// Distributed sub-logs are smaller, so the derived FWB scan interval must
// shrink accordingly (Section III-F's size/frequency trade-off).
func TestDistributedScanIntervalShrinks(t *testing.T) {
	central := mustSystem(t, smallConfig(txn.FWB, 4))
	dist := mustSystem(t, perThreadConfig(txn.FWB, 4))
	c, d := central.Engine().ScanInterval(), dist.Engine().ScanInterval()
	if d >= c {
		t.Errorf("distributed scan interval %d not below centralized %d", d, c)
	}
}
