package sim

import (
	"errors"
	"fmt"
	"io"

	"pmemlog/internal/cache"
	"pmemlog/internal/core"
	"pmemlog/internal/cpu"
	"pmemlog/internal/dram"
	"pmemlog/internal/mem"
	"pmemlog/internal/memctl"
	"pmemlog/internal/nvlog"
	"pmemlog/internal/nvram"
	"pmemlog/internal/obs"
	"pmemlog/internal/obs/scope"
	"pmemlog/internal/pheap"
	"pmemlog/internal/recovery"
	"pmemlog/internal/stats"
	"pmemlog/internal/txn"
)

// ErrCrashed is returned by Run when a scheduled crash fired.
var ErrCrashed = errors.New("sim: machine crashed (power loss)")

// System is one assembled machine instance.
type System struct {
	cfg  Config
	spec txn.Spec

	nv    *nvram.Device
	dr    *dram.Device
	ctl   *memctl.Controller
	hier  *cache.Hierarchy
	eng   *core.Engine // nil unless the mode uses hardware logging
	swLog *nvlog.Log   // nil unless the mode uses software logging
	heap  *pheap.Heap

	cores   []*cpu.Core
	threads []*threadCtx

	growNext mem.Addr // bump pointer inside the grow reserve

	oracle *oracle

	crashAt uint64 // 0 = no crash scheduled
	crashed bool

	// population records pre-measurement Poke values for the recovery
	// verifier's replay baseline (oracle mode only).
	population map[mem.Addr]mem.Word

	committedTxns uint64
	txnLatencies  []uint64 // per-commit latency in cycles (see TxnLatencySampleCap)
	txnLatSeq     uint64   // samples overwritten since the buffer filled
	benchName     string

	// Software-logging shared state (centralized log, Section III-F).
	swNextTxID uint16
	swActive   map[int]uint64 // thread -> first live record sequence

	// oracleByHandle maps hardware transaction handles to oracle records
	// so the engine's truncation hook can mark provably-durable commits.
	oracleByHandle map[uint64]*txRecord

	// tracer, when attached, receives machine events: ring i = thread i,
	// ring Threads = the machine ring (engine, controller, caches).
	tracer *obs.Tracer

	// scope is the always-on persistence-domain cost ledger. Owned by the
	// System (it must survive Reboot/Attach rebuilds — cost history is a
	// property of the NVRAM device's lifetime, not of one boot), wired
	// into the rebuilt components by wireScope.
	scope *scope.Counters

	// reqSpan tags tx/log trace events with the request span currently
	// driving the machine (see SetSpan). Plain field: the owning shard
	// goroutine is the only writer and all emits happen on it.
	reqSpan uint32

	// Most recent durable commit, for request→txn attribution by the
	// flight recorder (fields written in TxCommit, read by the same
	// goroutine right after RunN returns).
	lastCommitTxID  uint16
	lastCommitBegin uint64 // cycle of that txn's begin
	lastCommitEnd   uint64 // cycle of its commit
}

// SetSpan sets the request span tag stamped on this machine's tx and
// record-level log trace events until the next SetSpan (0 clears it). A
// server shard calls it per applied request so simulator-side events
// join the request's causal timeline.
func (s *System) SetSpan(span uint32) {
	s.reqSpan = span
	if s.eng != nil {
		s.eng.SetSpan(span)
	}
}

// LastCommit reports the txid and begin/commit cycles of the most
// recently committed transaction (zeros before the first commit). Only
// meaningful from the goroutine that ran the workload.
func (s *System) LastCommit() (txid uint16, begin, commit uint64) {
	return s.lastCommitTxID, s.lastCommitBegin, s.lastCommitEnd
}

// LogState reports the circular log's head/tail sequence numbers and
// record capacity (the primary region under distributed logging) — the
// wrap-pressure inputs a flight-recorder dump captures.
func (s *System) LogState() (head, tail, capacity uint64) {
	var l *nvlog.Log
	switch {
	case s.eng != nil:
		l = s.eng.Log()
	case s.swLog != nil:
		l = s.swLog
	default:
		return 0, 0, 0
	}
	return l.Head(), l.Tail(), l.Capacity()
}

// PulseCounters is the cheap monotonic-activity sample a server shard
// publishes after every batch: the handful of counters the pulse
// telemetry windows into rates. A subset of Stats() chosen so sampling
// allocates nothing and touches no percentile math — Stats() copies
// and sorts the latency window, which is far too heavy for a per-batch
// publish inside the zero-alloc shard loop.
type PulseCounters struct {
	Transactions    uint64 // committed machine transactions
	LogAppends      uint64 // undo+redo records appended
	LogTruncated    uint64 // records reclaimed by head advance
	FwbScans        uint64 // forced write-back scans completed
	NVRAMWriteBytes uint64 // bytes written to simulated NVRAM

	// Scope (persistence-domain cost) counters, from the machine's
	// always-on scope.Counters ledger plus the controller's bus stats.
	// All monotonic except LiveRecords, a gauge.
	PayloadBytes       uint64 // application bytes stored by txns
	LogUndoBytes       uint64 // log bytes paying for undo words
	LogRedoBytes       uint64 // log bytes paying for redo words
	LogHeaderBytes     uint64 // log bytes paying for headers + metadata
	LogChecksumBytes   uint64 // log bytes paying for record checksums
	LogBusBytes        uint64 // all log-path bytes crossing the NVRAM bus
	DataBusBytes       uint64 // all data write-back bytes crossing the bus
	UpdateAppends      uint64 // update records appended
	CoalescibleAppends uint64 // update appends re-hitting a line their txn logged
	ForcedWB           uint64 // FWB-scanner-forced data write-backs
	NaturalWB          uint64 // eviction/flush data write-backs
	WastedForcedWB     uint64 // forced write-backs re-dirtied before next scan
	FwbFlagged         uint64 // FLAG→FWB transitions in the scan FSM
	TxnsMeasured       uint64 // committed txns folded into the amp mean
	TxnAmpMilliSum     uint64 // sum of per-txn 1000*logBytes/payloadBytes
	LiveRecords        uint64 // gauge: records currently live in the log
}

// PulseCounters samples the machine's monotonic counters into out
// without allocating. Only meaningful from the goroutine that runs the
// workload (the same ownership contract as Stats).
func (s *System) PulseCounters(out *PulseCounters) {
	out.Transactions = s.committedTxns
	out.NVRAMWriteBytes = s.nv.Stats().BytesWritten
	if s.eng != nil {
		es := s.eng.Stats()
		out.LogAppends = es.Records
		out.LogTruncated = es.Truncated
		out.FwbScans = es.ScansRun
	} else {
		out.LogAppends, out.LogTruncated, out.FwbScans = 0, 0, 0
	}
	if s.swLog != nil {
		out.LogAppends = s.swLog.Stats().Appends
	}

	sc := s.scope
	out.PayloadBytes = sc.PayloadBytes
	out.LogUndoBytes = sc.LogUndoBytes
	out.LogRedoBytes = sc.LogRedoBytes
	out.LogHeaderBytes = sc.LogHeaderBytes
	out.LogChecksumBytes = sc.LogChecksumBytes
	out.UpdateAppends = sc.UpdateAppends
	out.CoalescibleAppends = sc.CoalescibleAppends
	out.ForcedWB = sc.ForcedWB
	out.NaturalWB = sc.NaturalWB()
	out.WastedForcedWB = sc.WastedForcedWB
	out.TxnsMeasured = sc.TxnsMeasured
	out.TxnAmpMilliSum = sc.TxnAmpMilliSum
	cs := s.ctl.Stats()
	out.LogBusBytes = cs.LogWriteBytes
	out.DataBusBytes = cs.DataWriteBytes
	out.FwbFlagged = s.hier.FwbFlaggedTotal()
	switch {
	case s.eng != nil:
		out.LiveRecords = s.eng.LiveRecords()
	case s.swLog != nil:
		out.LiveRecords = s.swLog.Len()
	}
}

// Scope returns the machine's persistence-domain cost ledger (never nil
// after New). Single-writer: only the goroutine driving the machine may
// read or write it.
func (s *System) Scope() *scope.Counters { return s.scope }

// wireScope pushes the System-owned scope ledger into every component
// with accounting hooks. Like wireTracer/wireChaos it runs at
// construction and again after Reboot/Attach rebuild the volatile
// components, so cost history accumulates across simulated crashes.
func (s *System) wireScope() {
	s.ctl.SetScope(s.scope)
	s.hier.SetScope(s.scope)
	if s.eng != nil {
		s.eng.SetScope(s.scope)
	}
}

// AttachTracer allocates an event tracer sized for this machine (one
// ring per hardware thread plus a machine ring, perRing records each),
// wires it through every layer, and returns it disabled; call Enable
// on the result to start recording. Reboot/Attach re-wire it into the
// rebuilt components automatically.
func (s *System) AttachTracer(perRing int) *obs.Tracer {
	s.tracer = obs.NewTracer(s.cfg.Threads+1, perRing)
	s.wireTracer()
	return s.tracer
}

// Tracer returns the attached tracer, nil when none.
func (s *System) Tracer() *obs.Tracer { return s.tracer }

// TracerRingNames labels the tracer's rings for export surfaces.
func (s *System) TracerRingNames() []string {
	names := make([]string, s.cfg.Threads+1)
	for i := 0; i < s.cfg.Threads; i++ {
		names[i] = fmt.Sprintf("thread %d", i)
	}
	names[s.cfg.Threads] = "machine"
	return names
}

// wireTracer pushes the current tracer (possibly nil) into every
// component that can emit events.
func (s *System) wireTracer() {
	machine := s.cfg.Threads
	s.ctl.SetTracer(s.tracer, machine)
	s.hier.SetTracer(s.tracer, machine)
	if s.eng != nil {
		s.eng.SetTracer(s.tracer)
	}
	if s.swLog != nil {
		if s.tracer == nil {
			s.swLog.SetTrace(nil)
		} else {
			s.swLog.SetTrace(s.swLogTrace)
		}
	}
}

// wireChaos pushes the config's fault injector (possibly nil) into every
// hardware component with injection sites. Like wireTracer it runs at
// construction and again after Reboot/Attach rebuild the volatile
// components, so an armed machine stays armed across simulated crashes.
func (s *System) wireChaos() {
	s.ctl.SetChaos(s.cfg.Chaos)
	s.hier.SetChaos(s.cfg.Chaos)
	s.nv.SetChaos(s.cfg.Chaos)
}

// ChaosSeed reports the armed injector's seed and whether chaos is armed
// (failure messages print it so any run reproduces from -seed alone).
func (s *System) ChaosSeed() (int64, bool) {
	if s.cfg.Chaos == nil {
		return 0, false
	}
	return s.cfg.Chaos.Seed(), true
}

// swLogTrace forwards software-log events into the tracer, stamping
// the appending thread's local clock (the software log, unlike the
// engine, is driven directly from thread context).
func (s *System) swLogTrace(k nvlog.TraceKind, arg uint64, ent *nvlog.Entry) {
	if !s.tracer.Enabled() {
		return
	}
	ring := s.cfg.Threads
	var txid uint16
	ts := s.GlobalTime()
	if ent != nil {
		txid = ent.TxID
		if int(ent.ThreadID) < len(s.threads) {
			ring = int(ent.ThreadID)
			ts = s.threads[ent.ThreadID].core.Now()
		}
	}
	switch k {
	case nvlog.TraceAppend:
		s.tracer.EmitSpan(ring, ts, obs.KindLogAppend, txid, arg, s.reqSpan)
	case nvlog.TraceWrap:
		s.tracer.Emit(s.cfg.Threads, ts, obs.KindLogWrap, 0, arg)
	case nvlog.TraceFull:
		s.tracer.EmitSpan(ring, ts, obs.KindLogStall, txid, arg, s.reqSpan)
	case nvlog.TraceTruncate:
		s.tracer.Emit(s.cfg.Threads, ts, obs.KindLogTruncate, 0, arg)
	}
}

// New builds the machine.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, spec: cfg.Mode.Spec(), swActive: make(map[int]uint64)}
	if cfg.TxnLatencySampleCap > 0 {
		// Preallocate the sliding window so the commit path never grows it
		// (keeping steady-state commits allocation free from the first op).
		s.txnLatencies = make([]uint64, 0, cfg.TxnLatencySampleCap)
	}

	var err error
	if s.nv, err = nvram.New(cfg.NVRAM, cfg.NVRAMBase, cfg.NVRAMBytes); err != nil {
		return nil, err
	}
	if s.dr, err = dram.New(cfg.DRAM, 0, cfg.DRAMBytes); err != nil {
		return nil, err
	}
	if s.ctl, err = memctl.New(cfg.Memctl, s.nv, s.dr); err != nil {
		return nil, err
	}
	if s.hier, err = cache.NewHierarchy(cfg.Caches, s.ctl); err != nil {
		return nil, err
	}

	logBase := cfg.NVRAMBase
	growBase := logBase + mem.Addr(cfg.LogBytes)
	heapBase := growBase + mem.Addr(cfg.GrowReserveBytes)
	heapSize := cfg.NVRAMBytes - cfg.LogBytes - cfg.GrowReserveBytes
	s.growNext = growBase
	if s.heap, err = pheap.New(heapBase, heapSize); err != nil {
		return nil, err
	}

	logCfg := nvlog.Config{Base: logBase, SizeBytes: cfg.LogBytes}
	numLogs := 1
	if cfg.PerThreadLogs {
		numLogs = cfg.Threads
	}
	switch {
	case s.spec.HWLog:
		logCfg.Style = s.spec.HWStyle
		s.eng, err = core.New(core.Config{
			Log:             logCfg,
			MaxActiveTx:     256,
			FwbScanInterval: cfg.FwbScanInterval,
			FwbSafetyFactor: 2,
			Unsafe:          s.spec.UnsafeHW,
			DisableFWB:      !s.spec.UseFWB,
			GrowFactor:      cfg.GrowFactor,
			NumLogs:         numLogs,
		}, s.ctl, s.hier)
		if err != nil {
			return nil, err
		}
		s.eng.SetGrowRegion(s.allocGrowRegion)
		s.eng.SetTruncatedHook(s.onEngineTruncated)
	case s.spec.SWLog:
		logCfg.Style = s.spec.SWStyle
		// Software logs pad records to cache lines (avoiding partial-line
		// writes and false sharing); the hardware log buffer packs two
		// 32 B records per line instead.
		logCfg.LineAligned = true
		var init []nvlog.Write
		if s.swLog, init, err = nvlog.New(logCfg); err != nil {
			return nil, err
		}
		// log_create blocks until the initial metadata is durable before
		// the program starts (setup time, untracked).
		for _, w := range init {
			s.nv.Image().Write(w.Addr, w.Bytes)
		}
	}

	for i := 0; i < cfg.Threads; i++ {
		c, err := cpu.New(cfg.CPU)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, c)
		s.threads = append(s.threads, newThreadCtx(s, i, c))
	}
	if cfg.TrackOracle {
		s.oracle = newOracle()
		s.population = make(map[mem.Addr]mem.Word)
		s.oracleByHandle = make(map[uint64]*txRecord)
	}
	s.scope = &scope.Counters{}
	s.wireScope()
	s.wireChaos()
	return s, nil
}

// onEngineTruncated records hardware truncation evidence in the oracle.
func (s *System) onEngineTruncated(handle uint64, ev core.TruncEvidence) {
	if rec := s.oracleByHandle[handle]; rec != nil {
		rec.truncated = true
		rec.truncLogIdx = ev.LogIdx
		rec.truncEpoch = ev.Epoch
		rec.truncLastSeq = ev.LastSeq
	}
}

func (s *System) allocGrowRegion(size uint64) (mem.Addr, bool) {
	end := s.cfg.NVRAMBase + mem.Addr(s.cfg.LogBytes+s.cfg.GrowReserveBytes)
	if s.growNext+mem.Addr(size) > end {
		return 0, false
	}
	a := s.growNext
	s.growNext += mem.Addr(size)
	return a, true
}

// Heap returns the persistent heap allocator.
func (s *System) Heap() *pheap.Heap { return s.heap }

// Config returns the machine configuration.
func (s *System) Config() Config { return s.cfg }

// Hierarchy exposes the cache tree (tests, Table I sizing).
func (s *System) Hierarchy() *cache.Hierarchy { return s.hier }

// Controller exposes the memory controller (tests).
func (s *System) Controller() *memctl.Controller { return s.ctl }

// Engine exposes the hardware logging engine (nil for non-HW modes).
func (s *System) Engine() *core.Engine { return s.eng }

// NVRAMImage exposes the persistent byte image (recovery, verification).
func (s *System) NVRAMImage() *mem.Physical { return s.nv.Image() }

// LogBases returns every log region's base address: the engine's
// sub-logs under distributed logging, otherwise the single region.
func (s *System) LogBases() []mem.Addr {
	if s.eng != nil {
		return s.eng.LogBases()
	}
	return []mem.Addr{s.LogBase()}
}

// LogBase returns the circular log's base address.
func (s *System) LogBase() mem.Addr {
	if s.eng != nil {
		return s.eng.Log().Config().Base
	}
	if s.swLog != nil {
		return s.swLog.Config().Base
	}
	return s.cfg.NVRAMBase
}

// SetBenchName labels the stats produced by this system.
func (s *System) SetBenchName(name string) { s.benchName = name }

// Poke writes a word directly into NVRAM, bypassing timing — used only for
// pre-measurement population (like warming a Pin-traced process before the
// region of interest). The oracle tracks it as committed state.
func (s *System) Poke(addr mem.Addr, w mem.Word) {
	s.nv.Image().WriteWord(addr, w)
	if s.oracle != nil {
		a := addr.WordAligned()
		s.oracle.commitWord(a, w)
		s.population[a] = w
	}
}

// PokeBytes writes bytes directly into NVRAM for population.
func (s *System) PokeBytes(addr mem.Addr, b []byte) {
	s.nv.Image().Write(addr, b)
	if s.oracle != nil {
		for i := 0; i+int(mem.WordSize) <= len(b); i += mem.WordSize {
			a := (addr + mem.Addr(i)).WordAligned()
			w := s.nv.Image().ReadWord(a)
			s.oracle.commitWord(a, w)
			s.population[a] = w
		}
	}
}

// Quiesce drains the memory controller's volatile buffers (log write
// buffer and write-combining buffer) into the NVRAM image. Commit returns
// as soon as the commit record reaches the log buffer — battery-backed in
// the paper's hardware, volatile here — so a service snapshotting the
// image at a batch boundary must drain first or the snapshot could roll an
// acknowledged transaction back on recovery. Caches need no flushing: with
// undo+redo logging, a durable commit record makes the data recoverable by
// redo (the paper's no-force property).
func (s *System) Quiesce() {
	var now uint64
	for _, c := range s.cores {
		if c.Now() > now {
			now = c.Now()
		}
	}
	s.ctl.DrainBuffers(now)
}

// Peek reads a word directly from the NVRAM image (verification only).
func (s *System) Peek(addr mem.Addr) mem.Word { return s.nv.Image().ReadWord(addr) }

// ScheduleCrash arranges a power loss once global time reaches cycle.
func (s *System) ScheduleCrash(cycle uint64) { s.crashAt = cycle }

// Crashed reports whether the scheduled crash fired.
func (s *System) Crashed() bool { return s.crashed }

// CommittedOracle returns the expected durable word values for every
// committed update (requires TrackOracle).
func (s *System) CommittedOracle() map[mem.Addr]mem.Word {
	if s.oracle == nil {
		return nil
	}
	return s.oracle.committed
}

// Recover runs the paper's recovery procedure against the post-crash NVRAM
// image (the caches were already invalidated by the crash). Under
// distributed logging, every per-thread log region is recovered.
func (s *System) Recover() (recovery.Report, error) {
	if s.eng != nil {
		return recovery.RecoverAll(s.nv.Image(), s.eng.LogBases())
	}
	return recovery.Recover(s.nv.Image(), s.LogBase())
}

// Reboot rebuilds the volatile machine state — cores, caches, memory
// controller, logging engine — over the surviving NVRAM image so execution
// can continue after Recover. The log is reopened at the pointers recovery
// persisted (sequence position continues, keeping torn bits unambiguous);
// the heap allocator's volatile metadata carries over, standing in for an
// application re-attaching its persistent structures.
func (s *System) Reboot() error {
	if !s.crashed {
		return errors.New("sim: Reboot without a crash")
	}
	return s.rebuild()
}

// Attach re-attaches a persisted NVRAM image to this (freshly built,
// never-run) machine: the image is loaded, the four-step recovery
// procedure runs against it, and the volatile machine state is rebuilt
// over the recovered image with the log resumed at the pointers recovery
// persisted. It is the cross-process analogue of crash + Recover + Reboot:
// a server restarting over a DIMM image saved by an earlier process.
//
// Attaching an image whose log was migrated by log_grow is not supported
// (the resumed engine would reopen the abandoned region); size LogBytes so
// the log never grows, or disable growing, when images are persisted.
func (s *System) Attach(r io.Reader) (recovery.Report, error) {
	if err := s.LoadNVRAM(r); err != nil {
		return recovery.Report{}, err
	}
	rep, err := s.Recover()
	if err != nil {
		return rep, err
	}
	for _, hops := range rep.Hops {
		if hops > 0 {
			return rep, errors.New("sim: Attach of a grown-log image is unsupported")
		}
	}
	if err := s.rebuild(); err != nil {
		return rep, err
	}
	return rep, nil
}

// rebuild reconstructs every volatile component over the current NVRAM
// image (shared by Reboot and Attach).
func (s *System) rebuild() error {
	var err error
	if s.ctl, err = memctl.New(s.cfg.Memctl, s.nv, s.dr); err != nil {
		return err
	}
	if s.hier, err = cache.NewHierarchy(s.cfg.Caches, s.ctl); err != nil {
		return err
	}
	// Reopen the log where it DURABLY lives. The engine's volatile config
	// is not evidence: a log_grow whose new-region metadata writes were
	// still in flight at the crash moved the volatile base without ever
	// becoming durable, and recovery correctly stayed on the old region.
	// Chase the same forward chain recovery follows — from the original
	// base through completed grows only — and resume whatever region it
	// ends at.
	logCfg := nvlog.Config{Base: s.LogBase(), SizeBytes: s.cfg.LogBytes}
	numLogs := 1
	if s.cfg.PerThreadLogs {
		numLogs = s.cfg.Threads
	} else if s.eng != nil {
		base := s.eng.LogBases()[0]
		meta, err := nvlog.ReadMeta(s.nv.Image(), base)
		if err != nil {
			return fmt.Errorf("sim: reboot: %w", err)
		}
		for hops := 0; meta.Forward != 0; hops++ {
			if hops > 64 {
				return errors.New("sim: reboot: log forward chain too long")
			}
			base = meta.Forward
			if meta, err = nvlog.ReadMeta(s.nv.Image(), base); err != nil {
				return fmt.Errorf("sim: reboot: %w", err)
			}
		}
		logCfg = s.eng.Log().Config()
		logCfg.Base = base
		logCfg.SizeBytes = nvlog.MetaSize + meta.Capacity*meta.SlotSize()
		logCfg.Style = meta.Style
		logCfg.LineAligned = meta.LineAligned
	} else if s.swLog != nil {
		logCfg = s.swLog.Config()
	}
	logCfg.MetaEvery = 0
	switch {
	case s.spec.HWLog:
		logCfg.Style = s.spec.HWStyle
		s.eng, err = core.New(core.Config{
			Log:             logCfg,
			MaxActiveTx:     256,
			FwbScanInterval: s.cfg.FwbScanInterval,
			FwbSafetyFactor: 2,
			Unsafe:          s.spec.UnsafeHW,
			DisableFWB:      !s.spec.UseFWB,
			GrowFactor:      s.cfg.GrowFactor,
			NumLogs:         numLogs,
			Resume:          true,
		}, s.ctl, s.hier)
		if err != nil {
			return err
		}
		s.eng.SetGrowRegion(s.allocGrowRegion)
		s.eng.SetTruncatedHook(s.onEngineTruncated)
	case s.spec.SWLog:
		logCfg.Style = s.spec.SWStyle
		logCfg.LineAligned = true
		meta, err := nvlog.ReadMeta(s.nv.Image(), logCfg.Base)
		if err != nil {
			return fmt.Errorf("sim: reboot: %w", err)
		}
		if s.swLog, err = nvlog.Resume(logCfg, meta.Head, meta.Tail); err != nil {
			return err
		}
	}

	s.cores = s.cores[:0]
	s.threads = s.threads[:0]
	for i := 0; i < s.cfg.Threads; i++ {
		c, err := cpu.New(s.cfg.CPU)
		if err != nil {
			return err
		}
		s.cores = append(s.cores, c)
		s.threads = append(s.threads, newThreadCtx(s, i, c))
	}
	s.swActive = make(map[int]uint64)
	s.crashed = false
	s.crashAt = 0
	s.wireTracer()
	s.wireScope()
	s.wireChaos()
	return nil
}

// SaveNVRAM serializes the NVRAM image (sparsely) so a later process can
// re-attach it — the simulated DIMM surviving a real process exit.
func (s *System) SaveNVRAM(w io.Writer) error {
	_, err := s.nv.Image().WriteTo(w)
	return err
}

// LoadNVRAM replaces the NVRAM contents with a previously saved image of
// identical geometry. Call before running anything (typically followed by
// Recover on a crashed image).
func (s *System) LoadNVRAM(r io.Reader) error {
	img, err := mem.ReadPhysical(r)
	if err != nil {
		return err
	}
	return s.nv.Image().CopyFrom(img)
}

// DumpLog decodes the durable log records currently in NVRAM (all regions,
// buffered records excluded) — a debugging/inspection aid.
func (s *System) DumpLog() ([]nvlog.Entry, error) {
	var out []nvlog.Entry
	for _, base := range s.LogBases() {
		meta, err := nvlog.ReadMeta(s.nv.Image(), base)
		if err != nil {
			return nil, err
		}
		entries, _, err := nvlog.Scan(s.nv.Image(), base, meta)
		if err != nil {
			return nil, err
		}
		out = append(out, entries...)
	}
	return out, nil
}

// GlobalTime returns the minimum local clock over all threads — the
// earliest time at which anything can still happen.
func (s *System) GlobalTime() uint64 {
	var min uint64 = ^uint64(0)
	for _, c := range s.cores {
		if n := c.Now(); n < min {
			min = n
		}
	}
	return min
}

// WallCycles returns the maximum local clock (run duration).
func (s *System) WallCycles() uint64 {
	var max uint64
	for _, c := range s.cores {
		if n := c.Now(); n > max {
			max = n
		}
	}
	return max
}

// Stats assembles the run's metric bundle.
func (s *System) Stats() stats.Run {
	r := stats.Run{
		Benchmark: s.benchName,
		Mode:      s.spec.Name,
		Threads:   s.cfg.Threads,
		Cycles:    s.WallCycles(),
	}
	r.Seconds = s.cfg.CPU.CyclesToSeconds(r.Cycles)
	var l1a, l2a uint64
	for i, c := range s.cores {
		cs := c.Stats()
		r.Instructions += cs.Instructions
		r.StallCycles += cs.StallCycles
		l1s := s.hier.L1(i).Stats()
		r.L1Hits += l1s.Hits
		r.L1Misses += l1s.Misses
		l1a += l1s.Hits + l1s.Misses
	}
	l2s := s.hier.L2().Stats()
	r.L2Hits, r.L2Misses = l2s.Hits, l2s.Misses
	l2a = l2s.Hits + l2s.Misses
	r.Transactions = s.committedTxns
	if len(s.txnLatencies) > 0 {
		lat := make([]uint64, len(s.txnLatencies))
		copy(lat, s.txnLatencies)
		r.TxnLatencyP50 = stats.Percentile(lat, 50)
		r.TxnLatencyP99 = stats.Percentile(lat, 99)
		r.TxnLatencyMax = lat[len(lat)-1]
	}

	nvs := s.nv.Stats()
	r.NVRAMReadBytes = nvs.BytesRead
	r.NVRAMWriteBytes = nvs.BytesWritten
	r.MemEnergyPJ = nvs.EnergyPJ
	dirty := s.hier.L2().DirtyCount()
	for i := range s.cores {
		dirty += s.hier.L1(i).DirtyCount()
	}
	r.ResidualDirtyBytes = uint64(dirty) * mem.LineSize
	// The deferred write-backs also carry deferred write energy; charge it
	// so no-force designs compare fairly against never-writing baselines.
	r.MemEnergyPJ += float64(r.ResidualDirtyBytes*8) *
		(s.cfg.NVRAM.ArrayWritePJPerBit + s.cfg.NVRAM.RowBufWritePJPerBit)
	cs := s.ctl.Stats()
	r.LogWriteBytes = cs.LogWriteBytes
	r.LogBufStalls = cs.LogBufStalls
	if s.eng != nil {
		es := s.eng.Stats()
		r.FwbScans = es.ScansRun
		r.FwbForced = 0
		for i := range s.cores {
			r.FwbForced += s.hier.L1(i).Stats().FwbForced
		}
		r.FwbForced += l2s.FwbForced
		r.LogAppends = es.Records
		r.LogTruncated = es.Truncated
		r.LogGrows = es.Grows
	}
	if s.swLog != nil {
		r.LogAppends = s.swLog.Stats().Appends
	}
	b := s.cfg.Energy.Account(r.Instructions, l1a, l2a, nvs.EnergyPJ)
	r.ProcEnergyPJ = b.ProcessorPJ
	return r
}

// crash performs the power loss: caches and buffers lose contents,
// in-flight NVRAM writes revert, DRAM clears.
func (s *System) crash(atCycle uint64) {
	s.crashed = true
	s.ctl.Crash(atCycle)
	s.hier.InvalidateAll()
}

func (s *System) String() string {
	return fmt.Sprintf("sim.System{mode=%s threads=%d log=%dKB}", s.spec.Name, s.cfg.Threads, s.cfg.LogBytes>>10)
}
