package sim

import (
	"errors"
	"math/rand"
	"pmemlog/internal/txn"
	"testing"
)

func TestStressCrashSweep(t *testing.T) {
	for _, mode := range []txn.Mode{txn.FWB, txn.HWL, txn.SWUndoClwb} {
		for _, logKB := range []uint64{4, 16, 64} {
			cfg := smallConfig(mode, 3)
			cfg.LogBytes = logKB << 10
			probe := mustSystem(t, cfg)
			w, _ := counterWorkload(probe, 3, 30, 8)
			if err := probe.RunN(w); err != nil {
				t.Fatal(err)
			}
			total := probe.WallCycles()
			rng := rand.New(rand.NewSource(int64(logKB)*100 + int64(mode)))
			for trial := 0; trial < 25; trial++ {
				crashAt := uint64(rng.Int63n(int64(total))) + 1
				s := mustSystem(t, cfg)
				w, _ := counterWorkload(s, 3, 30, 8)
				s.ScheduleCrash(crashAt)
				if err := s.RunN(w); !errors.Is(err, ErrCrashed) {
					t.Fatalf("%v/%dKB trial %d: %v", mode, logKB, trial, err)
				}
				rep, err := s.Recover()
				if err != nil {
					t.Fatalf("%v/%dKB trial %d crash@%d: %v", mode, logKB, trial, crashAt, err)
				}
				if bad := s.VerifyRecovery(rep, crashAt); len(bad) != 0 {
					t.Fatalf("%v/%dKB trial %d crash@%d: %s", mode, logKB, trial, crashAt, bad[0])
				}
			}
		}
	}
}
