package sim

import (
	"fmt"

	"pmemlog/internal/mem"
)

// setupCtx is an untimed Ctx over the raw NVRAM image, used to populate
// data structures before measurement (the equivalent of running a traced
// process up to the region of interest). Writes are recorded as population
// state in the oracle; transactions are no-ops.
type setupCtx struct{ s *System }

// SetupCtx returns an untimed context for pre-measurement population. It
// must not be used concurrently with Run.
func (s *System) SetupCtx() Ctx { return setupCtx{s: s} }

func (c setupCtx) TxBegin()       {}
func (c setupCtx) TxCommit()      {}
func (c setupCtx) Compute(uint64) {}
func (c setupCtx) ThreadID() int  { return 0 }

func (c setupCtx) Load(addr mem.Addr) mem.Word {
	if !addr.IsWordAligned() {
		panic(fmt.Sprintf("sim: unaligned setup load at %v", addr))
	}
	return c.s.nv.Image().ReadWord(addr)
}

func (c setupCtx) Store(addr mem.Addr, w mem.Word) {
	if !addr.IsWordAligned() {
		panic(fmt.Sprintf("sim: unaligned setup store at %v", addr))
	}
	c.s.Poke(addr, w)
}

func (c setupCtx) LoadBytes(addr mem.Addr, n int) []byte {
	return c.s.nv.Image().Read(addr, n)
}

func (c setupCtx) LoadBytesInto(dst []byte, addr mem.Addr, n int) []byte {
	grown := append(dst, make([]byte, n)...)
	c.s.nv.Image().ReadInto(addr, grown[len(dst):])
	return grown
}

func (c setupCtx) StoreBytes(addr mem.Addr, b []byte) {
	c.s.PokeBytes(addr, b)
}
