package sim

import (
	"errors"
	"math/rand"
	"testing"

	"pmemlog/internal/mem"
	"pmemlog/internal/txn"
)

// smallConfig shrinks the machine so tests run fast: tiny caches force
// evictions (exercising the steal path), a small log forces wrap-around.
func smallConfig(mode txn.Mode, threads int) Config {
	cfg := DefaultConfig(mode, threads)
	cfg.Caches.L1.SizeBytes = 2 << 10
	cfg.Caches.L1.Ways = 2
	cfg.Caches.L2.SizeBytes = 16 << 10
	cfg.Caches.L2.Ways = 4
	cfg.NVRAMBytes = 8 << 20
	cfg.LogBytes = 64 << 10
	cfg.GrowReserveBytes = 1 << 20
	cfg.DRAMBytes = 64 << 10
	cfg.TrackOracle = true
	return cfg
}

func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// counterWorkload: each thread owns `words` counters and runs `txns`
// transactions, each incrementing a few of them.
func counterWorkload(s *System, threads, txns, words int) (func(Ctx, int), []mem.Addr) {
	base := make([]mem.Addr, threads)
	for i := 0; i < threads; i++ {
		a, err := s.Heap().AllocLine(uint64(words * mem.WordSize))
		if err != nil {
			panic(err)
		}
		base[i] = a
		for w := 0; w < words; w++ {
			s.Poke(a+mem.Addr(w*mem.WordSize), 0)
		}
	}
	return func(ctx Ctx, id int) {
		rng := rand.New(rand.NewSource(int64(id)*7919 + 13))
		for k := 0; k < txns; k++ {
			ctx.TxBegin()
			for j := 0; j < 3; j++ {
				a := base[id] + mem.Addr(rng.Intn(words)*mem.WordSize)
				v := ctx.Load(a)
				ctx.Compute(10)
				ctx.Store(a, v+1)
			}
			ctx.TxCommit()
		}
	}, base
}

func TestNonPersRoundTrip(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.NonPers, 1))
	a, _ := s.Heap().Alloc(64)
	err := s.RunN(func(ctx Ctx, id int) {
		ctx.TxBegin()
		ctx.Store(a, 42)
		ctx.TxCommit()
		if got := ctx.Load(a); got != 42 {
			panic("load after store != 42")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Stats()
	if r.Transactions != 1 || r.Instructions == 0 || r.Cycles == 0 {
		t.Errorf("stats: %+v", r)
	}
}

func TestAllModesRunClean(t *testing.T) {
	for _, mode := range txn.AllModes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s := mustSystem(t, smallConfig(mode, 2))
			w, base := counterWorkload(s, 2, 30, 8)
			if err := s.RunN(w); err != nil {
				t.Fatal(err)
			}
			r := s.Stats()
			if r.Transactions != 60 {
				t.Errorf("transactions = %d, want 60", r.Transactions)
			}
			// Every mode must leave the correct *visible* state: the sum of
			// all counters equals total increments.
			var sum mem.Word
			var probe *System = s
			verify := mustSystem(t, smallConfig(txn.NonPers, 1))
			_ = verify
			for i := 0; i < 2; i++ {
				for wd := 0; wd < 8; wd++ {
					// Read through a fresh load on the same system.
					a := base[i] + mem.Addr(wd*mem.WordSize)
					var got mem.Word
					err := probe.RunN(func(ctx Ctx, id int) { got = ctx.Load(a) })
					if err != nil {
						t.Fatal(err)
					}
					sum += got
				}
			}
			if sum != 2*30*3 {
				t.Errorf("counter sum = %d, want %d", sum, 2*30*3)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (a, b uint64) {
		s := mustSystem(t, smallConfig(txn.FWB, 4))
		w, _ := counterWorkload(s, 4, 50, 16)
		if err := s.RunN(w); err != nil {
			t.Fatal(err)
		}
		r := s.Stats()
		return r.Cycles, r.Instructions
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 || i1 != i2 {
		t.Errorf("nondeterministic: run1=(%d,%d) run2=(%d,%d)", c1, i1, c2, i2)
	}
}

func TestModePerformanceOrdering(t *testing.T) {
	cycles := map[txn.Mode]uint64{}
	instrs := map[txn.Mode]uint64{}
	for _, mode := range txn.AllModes() {
		s := mustSystem(t, smallConfig(mode, 1))
		w, _ := counterWorkload(s, 1, 200, 32)
		if err := s.RunN(w); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		r := s.Stats()
		cycles[mode] = r.Cycles
		instrs[mode] = r.Instructions
	}
	// non-pers is the fastest design (the unachievable ideal).
	for _, m := range txn.AllModes() {
		if m != txn.NonPers && cycles[m] < cycles[txn.NonPers] {
			t.Errorf("%s (%d cycles) beat non-pers (%d)", m, cycles[m], cycles[txn.NonPers])
		}
	}
	// The paper's headline: fwb beats both software persistent designs.
	if cycles[txn.FWB] >= cycles[txn.SWUndoClwb] || cycles[txn.FWB] >= cycles[txn.SWRedoClwb] {
		t.Errorf("fwb (%d) not faster than undo-clwb (%d) / redo-clwb (%d)",
			cycles[txn.FWB], cycles[txn.SWUndoClwb], cycles[txn.SWRedoClwb])
	}
	// fwb beats hwl (no commit-time clwb).
	if cycles[txn.FWB] >= cycles[txn.HWL] {
		t.Errorf("fwb (%d) not faster than hwl (%d)", cycles[txn.FWB], cycles[txn.HWL])
	}
	// Software logging at least doubles... well, substantially inflates the
	// instruction count; hardware logging adds none beyond tx bookkeeping.
	if float64(instrs[txn.SWUndoClwb]) < 1.5*float64(instrs[txn.NonPers]) {
		t.Errorf("sw undo instructions (%d) not >1.5x non-pers (%d)",
			instrs[txn.SWUndoClwb], instrs[txn.NonPers])
	}
	if float64(instrs[txn.FWB]) > 1.35*float64(instrs[txn.NonPers]) {
		t.Errorf("fwb instructions (%d) >35%% over non-pers (%d)",
			instrs[txn.FWB], instrs[txn.NonPers])
	}
}

func TestWorkloadErrorPropagates(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.NonPers, 1))
	err := s.RunN(func(ctx Ctx, id int) { panic("boom") })
	if err == nil {
		t.Fatal("workload panic not reported")
	}
}

func TestUnalignedAccessFaults(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.NonPers, 1))
	a, _ := s.Heap().Alloc(64)
	err := s.RunN(func(ctx Ctx, id int) { ctx.Load(a + 3) })
	if err == nil {
		t.Fatal("unaligned load not reported")
	}
}

func TestNestedTxFaults(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	err := s.RunN(func(ctx Ctx, id int) {
		ctx.TxBegin()
		ctx.TxBegin()
	})
	if err == nil {
		t.Fatal("nested transaction not reported")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	a, _ := s.Heap().Alloc(64)
	msg := []byte("steal but no force!") // 19 bytes: partial tail word
	err := s.RunN(func(ctx Ctx, id int) {
		ctx.TxBegin()
		ctx.StoreBytes(a, msg)
		ctx.TxCommit()
		got := ctx.LoadBytes(a, len(msg))
		if string(got) != string(msg) {
			panic("byte round trip failed: " + string(got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryConsistency is the reproduction's key correctness
// property: for every persistent design that supports steal (undo
// available), a crash at ANY point followed by recovery yields a state
// where committed transactions are intact and uncommitted ones are fully
// rolled back.
func TestCrashRecoveryConsistency(t *testing.T) {
	modes := []txn.Mode{txn.FWB, txn.HWL, txn.SWUndoClwb}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			// First, measure an uncrashed run to learn its length.
			probe := mustSystem(t, smallConfig(mode, 2))
			w, _ := counterWorkload(probe, 2, 40, 8)
			if err := probe.RunN(w); err != nil {
				t.Fatal(err)
			}
			total := probe.WallCycles()

			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 12; trial++ {
				crashAt := uint64(rng.Int63n(int64(total))) + 1
				s := mustSystem(t, smallConfig(mode, 2))
				w, _ := counterWorkload(s, 2, 40, 8)
				s.ScheduleCrash(crashAt)
				err := s.RunN(w)
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("trial %d: run returned %v, want crash", trial, err)
				}
				rep, err := s.Recover()
				if err != nil {
					t.Fatalf("trial %d: recovery failed: %v", trial, err)
				}
				if bad := s.VerifyRecovery(rep, crashAt); len(bad) != 0 {
					t.Fatalf("trial %d (crash@%d): %d violations, first: %s",
						trial, crashAt, len(bad), bad[0])
				}
			}
		})
	}
}

// With a pathologically small log, the engine leans on emergency flushes
// and wraps constantly — crash consistency must still hold everywhere.
func TestCrashRecoveryTinyLog(t *testing.T) {
	cfg := smallConfig(txn.FWB, 2)
	cfg.LogBytes = 4 << 10 // ~126 records
	probe := mustSystem(t, cfg)
	w, _ := counterWorkload(probe, 2, 40, 8)
	if err := probe.RunN(w); err != nil {
		t.Fatal(err)
	}
	total := probe.WallCycles()
	es := probe.Engine().Stats()
	if es.Truncated == 0 && es.Grows == 0 {
		t.Fatalf("tiny log neither truncated nor grew (records=%d); test ineffective", es.Records)
	}

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		crashAt := uint64(rng.Int63n(int64(total))) + 1
		s := mustSystem(t, cfg)
		w, _ := counterWorkload(s, 2, 40, 8)
		s.ScheduleCrash(crashAt)
		if err := s.RunN(w); !errors.Is(err, ErrCrashed) {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := s.Recover()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bad := s.VerifyRecovery(rep, crashAt); len(bad) != 0 {
			t.Fatalf("trial %d (crash@%d): %s", trial, crashAt, bad[0])
		}
	}
}

// Crash with nothing running (no transactions) must recover to baseline.
func TestCrashBeforeAnyTransaction(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	a, _ := s.Heap().Alloc(64)
	s.Poke(a, 77)
	s.ScheduleCrash(1)
	err := s.RunN(func(ctx Ctx, id int) {
		ctx.Compute(1000000)
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if bad := s.VerifyRecovery(rep, 1); len(bad) != 0 {
		t.Fatalf("violations: %v", bad)
	}
	if s.Peek(a) != 77 {
		t.Error("baseline value lost")
	}
}

func TestLogWrapUnderSustainedLoad(t *testing.T) {
	// The 64 KB log holds 1023 full records; 500 transactions x ~4 records
	// wrap it several times. FWB must keep it truncatable throughout.
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	w, _ := counterWorkload(s, 1, 500, 8)
	if err := s.RunN(w); err != nil {
		t.Fatal(err)
	}
	es := s.Engine().Stats()
	if es.Truncated == 0 {
		t.Error("log never truncated under sustained load")
	}
	if s.Engine().Log().Tail() < 1023 {
		t.Errorf("log only reached seq %d; test did not wrap", s.Engine().Log().Tail())
	}
}

func TestFwbScansHappen(t *testing.T) {
	cfg := smallConfig(txn.FWB, 1)
	cfg.FwbScanInterval = 5_000
	s := mustSystem(t, cfg)
	w, _ := counterWorkload(s, 1, 400, 8)
	if err := s.RunN(w); err != nil {
		t.Fatal(err)
	}
	if s.Stats().FwbScans == 0 {
		t.Error("FWB never scanned")
	}
}

func TestStatsTrafficSeparation(t *testing.T) {
	s := mustSystem(t, smallConfig(txn.FWB, 1))
	w, _ := counterWorkload(s, 1, 100, 8)
	if err := s.RunN(w); err != nil {
		t.Fatal(err)
	}
	r := s.Stats()
	if r.NVRAMWriteBytes == 0 || r.LogWriteBytes == 0 {
		t.Errorf("traffic: total=%d log=%d", r.NVRAMWriteBytes, r.LogWriteBytes)
	}
	if r.MemEnergyPJ <= 0 || r.ProcEnergyPJ <= 0 {
		t.Errorf("energy: mem=%v proc=%v", r.MemEnergyPJ, r.ProcEnergyPJ)
	}
}

func TestMultithreadSharedStructureIsolation(t *testing.T) {
	// Threads transactionally update disjoint words of a SHARED line-packed
	// array — stressing coherence (invalidation, remote-dirty demotion).
	s := mustSystem(t, smallConfig(txn.FWB, 4))
	arr, _ := s.Heap().Alloc(4 * mem.WordSize)
	for i := 0; i < 4; i++ {
		s.Poke(arr+mem.Addr(i*mem.WordSize), 0)
	}
	err := s.RunN(func(ctx Ctx, id int) {
		a := arr + mem.Addr(id*mem.WordSize)
		for k := 0; k < 100; k++ {
			ctx.TxBegin()
			v := ctx.Load(a)
			ctx.Store(a, v+1)
			ctx.TxCommit()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		var got mem.Word
		s.RunN(func(ctx Ctx, id int) { got = ctx.Load(arr + mem.Addr(i*mem.WordSize)) })
		if got != 100 {
			t.Errorf("thread %d counter = %d, want 100", i, got)
		}
	}
}
