package sim

import (
	"bytes"
	"errors"
	"testing"

	"pmemlog/internal/mem"
	"pmemlog/internal/txn"
)

// TestCrossProcessCrashRecovery simulates the full storage-system story:
// crash one "machine", save its NVRAM DIMM image, attach the image to a
// brand-new machine (a different process in real life), recover there, and
// verify the data.
func TestCrossProcessCrashRecovery(t *testing.T) {
	cfg := smallConfig(txn.FWB, 2)

	// Machine 1: run and crash.
	s1 := mustSystem(t, cfg)
	w, base := counterWorkload(s1, 2, 60, 8)
	s1.ScheduleCrash(1500)
	if err := s1.RunN(w); !errors.Is(err, ErrCrashed) {
		t.Fatalf("run: %v", err)
	}
	var dimm bytes.Buffer
	if err := s1.SaveNVRAM(&dimm); err != nil {
		t.Fatal(err)
	}

	// Machine 2: fresh volatile state, same DIMM.
	s2 := mustSystem(t, cfg)
	if err := s2.LoadNVRAM(bytes.NewReader(dimm.Bytes())); err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatalf("recovery on machine 2: %v", err)
	}

	// Machine 1 still has the oracle; its own recovery must agree with
	// machine 2's byte-for-byte.
	rep1, err := s1.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if bad := s1.VerifyRecovery(rep1, 1500); len(bad) != 0 {
		t.Fatalf("machine 1 inconsistent: %s", bad[0])
	}
	if len(rep.Committed) != len(rep1.Committed) || rep.EntriesScanned != rep1.EntriesScanned {
		t.Fatalf("machines disagree: %+v vs %+v", rep, rep1)
	}
	for i := 0; i < 2; i++ {
		for wd := 0; wd < 8; wd++ {
			a := base[i] + mem.Addr(wd*mem.WordSize)
			if s1.Peek(a) != s2.Peek(a) {
				t.Fatalf("recovered images differ at %v", a)
			}
		}
	}
}
