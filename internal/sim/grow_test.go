package sim

import (
	"errors"
	"math/rand"
	"testing"

	"pmemlog/internal/mem"
	"pmemlog/internal/txn"
)

// growHeavyConfig makes log_grow routine: a minuscule log, big transactions.
func growHeavyConfig(mode txn.Mode) Config {
	cfg := smallConfig(mode, 2)
	cfg.LogBytes = 4 << 10 // ~126 records
	cfg.GrowReserveBytes = 2 << 20
	cfg.GrowFactor = 2
	return cfg
}

// bigTxWorkload runs transactions large enough to wedge a tiny log,
// forcing log_grow while other transactions run concurrently.
func bigTxWorkload(s *System, threads, txns int) (func(Ctx, int), error) {
	bases := make([]mem.Addr, threads)
	for i := 0; i < threads; i++ {
		a, err := s.Heap().AllocLine(64 * 8)
		if err != nil {
			return nil, err
		}
		bases[i] = a
		for w := 0; w < 64; w++ {
			s.Poke(a+mem.Addr(8*w), 0)
		}
	}
	return func(ctx Ctx, id int) {
		rng := rand.New(rand.NewSource(int64(id) + 5))
		for k := 0; k < txns; k++ {
			ctx.TxBegin()
			// 40-80 stores per transaction: a handful of these exceed the
			// 126-record log and trigger log_grow mid-transaction.
			n := 40 + rng.Intn(41)
			for j := 0; j < n; j++ {
				a := bases[id] + mem.Addr(8*rng.Intn(64))
				ctx.Store(a, ctx.Load(a)+1)
			}
			ctx.TxCommit()
		}
	}, nil
}

func TestLogGrowUnderLoad(t *testing.T) {
	s := mustSystem(t, growHeavyConfig(txn.FWB))
	w, err := bigTxWorkload(s, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunN(w); err != nil {
		t.Fatal(err)
	}
	if s.Engine().Stats().Grows == 0 {
		t.Fatal("workload never grew the log; test ineffective")
	}
	if s.Stats().Transactions != 40 {
		t.Errorf("transactions = %d", s.Stats().Transactions)
	}
}

// Crashing at arbitrary points across grow-heavy execution — before,
// during, and after migrations — must stay recoverable: the forward
// pointer in the original region's metadata is made durable before any
// post-grow append, so recovery always finds the active region.
func TestLogGrowCrashRecovery(t *testing.T) {
	probe := mustSystem(t, growHeavyConfig(txn.FWB))
	w, err := bigTxWorkload(probe, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.RunN(w); err != nil {
		t.Fatal(err)
	}
	total := probe.WallCycles()
	if probe.Engine().Stats().Grows == 0 {
		t.Fatal("probe never grew")
	}

	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		crashAt := uint64(rng.Int63n(int64(total))) + 1
		s := mustSystem(t, growHeavyConfig(txn.FWB))
		w, err := bigTxWorkload(s, 2, 20)
		if err != nil {
			t.Fatal(err)
		}
		s.ScheduleCrash(crashAt)
		if err := s.RunN(w); !errors.Is(err, ErrCrashed) {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := s.Recover()
		if err != nil {
			t.Fatalf("trial %d (crash@%d): recovery: %v", trial, crashAt, err)
		}
		if bad := s.VerifyRecovery(rep, crashAt); len(bad) != 0 {
			t.Fatalf("trial %d (crash@%d): %s", trial, crashAt, bad[0])
		}
	}
}
