package sim

import (
	"errors"
	"fmt"
)

// Worker is one thread's workload body.
type Worker func(Ctx)

// Run executes one worker per hardware thread to completion (or until a
// scheduled crash). Scheduling is deterministic and conservatively
// time-ordered: at every step the thread with the smallest local clock
// executes exactly one operation (ties broken by thread ID), so shared
// structures are mutated in a reproducible global order, and no thread
// observes state "from its future" by more than one operation.
func (s *System) Run(workers []Worker) error {
	if len(workers) != s.cfg.Threads {
		return fmt.Errorf("sim: %d workers for %d threads", len(workers), s.cfg.Threads)
	}
	if s.crashed {
		return errors.New("sim: machine already crashed; build a new System or Recover")
	}
	for i, w := range workers {
		t := s.threads[i]
		t.finished = false
		t.aborted = false
		t.err = nil
		go t.run(w)
	}

	active := len(workers)
	for active > 0 {
		// Pick the unfinished thread with the smallest local clock.
		var tmin *threadCtx
		for _, t := range s.threads {
			if t.finished {
				continue
			}
			if tmin == nil || t.core.Now() < tmin.core.Now() {
				tmin = t
			}
		}

		// Crash check: fires when global time reaches the scheduled cycle.
		if s.crashAt > 0 && !s.crashed && tmin.core.Now() >= s.crashAt {
			s.crash(s.crashAt)
			for _, t := range s.threads {
				if t.finished {
					continue
				}
				t.aborted = true
				t.resume <- struct{}{}
				<-t.ready
			}
			return ErrCrashed
		}

		wasFinished := tmin.finished
		tmin.resume <- struct{}{}
		<-tmin.ready
		if tmin.finished && !wasFinished {
			active--
		}

		// Background housekeeping at global (minimum) time.
		gt := s.GlobalTime()
		if s.eng != nil {
			s.eng.FwbTick(gt)
		}
		s.ctl.Retire(gt)
	}

	var errs []error
	for i, t := range s.threads {
		if t.err != nil {
			errs = append(errs, fmt.Errorf("thread %d: %w", i, t.err))
		}
	}
	return errors.Join(errs...)
}

// RunN is a convenience wrapper running the same worker body on every
// thread (the paper's "one persistent transaction per thread" pattern,
// Figure 4, generalized to a per-thread loop).
func (s *System) RunN(w func(ctx Ctx, thread int)) error {
	workers := make([]Worker, s.cfg.Threads)
	for i := range workers {
		i := i
		workers[i] = func(c Ctx) { w(c, i) }
	}
	return s.Run(workers)
}
