// Package sim assembles the full simulated machine — cores, cache
// hierarchy, memory controller, NVRAM/DRAM devices, the hardware logging
// engine — and executes multithreaded persistent-memory workloads against
// it with deterministic, conservatively time-ordered scheduling. It is the
// McSimA+ substitute described in DESIGN.md §2: workloads run *live*
// against simulated memory (loads return real data), so control flow is
// data dependent, while every operation is charged cycle costs from the
// paper's Table II configuration.
package sim

import (
	"fmt"

	"pmemlog/internal/cache"
	"pmemlog/internal/chaos"
	"pmemlog/internal/cpu"
	"pmemlog/internal/dram"
	"pmemlog/internal/energy"
	"pmemlog/internal/mem"
	"pmemlog/internal/memctl"
	"pmemlog/internal/nvram"
	"pmemlog/internal/txn"
)

// Config describes the simulated machine (defaults reproduce Table II).
type Config struct {
	Threads int // hardware threads (Table II: 4 cores x 2 threads)

	CPU    cpu.Config
	Caches cache.HierarchyConfig
	Memctl memctl.Config
	NVRAM  nvram.Config
	DRAM   dram.Config

	// Address map. DRAM occupies [0, DRAMBytes); NVRAM occupies
	// [NVRAMBase, NVRAMBase+NVRAMBytes). Within NVRAM: the circular log,
	// a reserve for log_grow, then the persistent heap.
	NVRAMBase  mem.Addr
	NVRAMBytes uint64
	DRAMBytes  uint64

	// LogBytes is the circular log region size (paper default 4 MB).
	LogBytes uint64
	// GrowReserveBytes is set aside for log_grow regions (0 disables).
	GrowReserveBytes uint64
	// GrowFactor passes through to the hardware engine.
	GrowFactor int

	Mode txn.Mode
	// FwbScanInterval overrides the derived FWB interval (cycles).
	FwbScanInterval uint64
	// PerThreadLogs splits the log region into one circular log per
	// hardware thread (the distributed-log alternative of Section III-F)
	// instead of the paper's default centralized log.
	PerThreadLogs bool

	Energy energy.Model

	// TrackOracle maintains the committed-state oracle used by crash
	// consistency tests (costs memory proportional to the touched words).
	TrackOracle bool

	// Chaos, when non-nil, arms deterministic fault injection across the
	// machine (memory controller, NVRAM device, cache hierarchy). Only
	// chaos-aware construction sites (internal/chaos/campaign, cmd/pmchaos,
	// tests) may set it — pmlint's chaosonly rule rejects everything else,
	// keeping production pmserver defaults fault-free.
	Chaos *chaos.Injector

	// TxnLatencySampleCap bounds the per-commit latency sample buffer:
	// once full, new samples overwrite the oldest (a sliding window), so
	// a long-running machine (a server shard) neither grows without bound
	// nor allocates on the commit path. 0 keeps every sample — what the
	// finite experiment runs want for exact percentiles.
	TxnLatencySampleCap int
}

// DefaultConfig returns the paper's Table II machine with a 4 MB log.
// Scale selects the simulated NVRAM capacity (the paper models 8 GB; tests
// and benches use smaller images since only the touched region matters).
func DefaultConfig(mode txn.Mode, threads int) Config {
	return Config{
		Threads: threads,
		CPU:     cpu.Config{ClockGHz: 2.5, IssueCPI16: 8}, // IPC 2 on ALU work
		Caches: cache.HierarchyConfig{
			NumCores: threads,
			// 32 KB, 8-way, 64 B lines, 1.6 ns ≈ 4 cycles @ 2.5 GHz
			L1: cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, HitCycles: 4, ScanCycles: 1},
			// 8 MB, 16-way, 4.4 ns ≈ 11 cycles
			L2: cache.Config{Name: "L2", SizeBytes: 8 << 20, Ways: 16, HitCycles: 11, ScanCycles: 1},
		},
		Memctl: memctl.Config{
			ReadQueue: 64, WriteQueue: 64,
			WCBEntries:       6,  // "four to six cache-line sized entries"
			LogBufferEntries: 15, // Section VI: "our implementation with a 15-entry log buffer"
			QueueCycles:      2,
		},
		NVRAM: nvram.Config{
			Banks: 8, RowBytes: 2 << 10,
			RowHitCycles:    90,  // 36 ns
			ReadMissCycles:  250, // 100 ns
			WriteMissCycles: 750, // 300 ns
			// 4 cycles per 64 B transfer = 16 GB/s at 2.5 GHz, a DDR4-class
			// channel; bank timing above, not the bus, is the PCM limiter.
			BusCyclesPerLine:   4,
			RowBufReadPJPerBit: 0.93, RowBufWritePJPerBit: 1.02,
			ArrayReadPJPerBit: 2.47, ArrayWritePJPerBit: 16.82,
		},
		DRAM:             dram.Config{Banks: 8, AccessCycles: 125, BusCyclesLine: 5},
		NVRAMBase:        mem.Addr(1) << 32,
		NVRAMBytes:       64 << 20,
		DRAMBytes:        1 << 20,
		LogBytes:         4 << 20,
		GrowReserveBytes: 16 << 20,
		GrowFactor:       2,
		Mode:             mode,
		Energy:           energy.Default(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Threads <= 0 {
		return fmt.Errorf("sim: Threads must be positive")
	}
	if c.Caches.NumCores != c.Threads {
		return fmt.Errorf("sim: Caches.NumCores (%d) != Threads (%d)", c.Caches.NumCores, c.Threads)
	}
	if c.LogBytes+c.GrowReserveBytes >= c.NVRAMBytes {
		return fmt.Errorf("sim: log (%d) + grow reserve (%d) exceed NVRAM (%d)",
			c.LogBytes, c.GrowReserveBytes, c.NVRAMBytes)
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.Caches.Validate(); err != nil {
		return err
	}
	if err := c.Memctl.Validate(); err != nil {
		return err
	}
	if err := c.NVRAM.Validate(); err != nil {
		return err
	}
	return c.DRAM.Validate()
}
