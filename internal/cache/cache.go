// Package cache implements the processor cache hierarchy the paper's
// mechanisms live in: set-associative, write-back, write-allocate caches
// (Hennessy/Patterson policies, paper Section II) with per-line valid,
// dirty, and fwb state bits. The fwb bit and its IDLE/FLAG/FWB finite state
// machine implement the paper's cache Force Write-Back mechanism
// (Section IV-D, Figure 5).
//
// The caches are functional: lines hold real bytes, so the hardware logging
// engine can extract undo values from hit or write-allocated lines exactly
// as Figure 3(b)/(c) describes, and a simulated crash genuinely loses
// whatever had not been written back.
package cache

import (
	"fmt"

	"pmemlog/internal/mem"
)

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  uint64 // total capacity
	Ways       int    // associativity
	HitCycles  uint64 // access latency
	ScanCycles uint64 // cycles to scan one tag during an FWB pass
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	return int(c.SizeBytes / uint64(c.Ways) / mem.LineSize)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: Ways must be positive", c.Name)
	}
	if c.SizeBytes == 0 || c.SizeBytes%(uint64(c.Ways)*mem.LineSize) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible into %d ways of %d B lines",
			c.Name, c.SizeBytes, c.Ways, mem.LineSize)
	}
	if c.HitCycles == 0 {
		return fmt.Errorf("cache %s: HitCycles must be positive", c.Name)
	}
	return nil
}

// fwbState tracks the Figure 5 FSM per line. The state is fully determined
// by the {fwb, dirty} bit pair; we store the fwb bit and derive the state.
const (
	stateIdle = iota // {fwb,dirty} = {0,0}
	stateFlag        // {0,1}: dirty, needs flagging on next scan
	stateFwb         // {1,1}: flagged, will be force-written-back
)

type line struct {
	tag   mem.Addr // line-aligned address; valid only if valid==true
	valid bool
	dirty bool
	fwb   bool
	lru   uint64 // last-touch stamp
	data  mem.Line
}

func (l *line) state() int {
	switch {
	case l.fwb && l.dirty:
		return stateFwb
	case l.dirty:
		return stateFlag
	default:
		return stateIdle
	}
}

// Stats aggregates per-cache counters.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64 // lines displaced by fills
	WriteBacks uint64 // dirty lines pushed down (eviction, flush, or FWB)
	FwbForced  uint64 // write-backs initiated by the FWB scanner
	FwbFlagged uint64 // FLAG→FWB transitions (lines armed for next pass)
	ScansRun   uint64 // FWB scan passes executed
	ScanCycles uint64 // total cycles charged to tag scanning
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg   Config
	sets  int
	lines []line // sets*ways, row-major by set
	tick  uint64 // LRU clock
	stats Stats
}

// New creates an empty cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{cfg: cfg, sets: cfg.Sets(), lines: make([]line, cfg.Sets()*cfg.Ways)}, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// NumLines returns the total line count (used for Table I fwb-bit sizing).
func (c *Cache) NumLines() int { return len(c.lines) }

func (c *Cache) setOf(lineAddr mem.Addr) int {
	return int(uint64(lineAddr) / mem.LineSize % uint64(c.sets))
}

func (c *Cache) find(lineAddr mem.Addr) *line {
	set := c.setOf(lineAddr)
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == lineAddr {
			return l
		}
	}
	return nil
}

// Lookup probes the cache; on a hit it refreshes LRU state and returns the
// resident line. It does NOT count a miss (use CountMiss) so that callers
// can probe without perturbing statistics.
func (c *Cache) Lookup(addr mem.Addr) (*mem.Line, bool) {
	l := c.find(addr.Line())
	if l == nil {
		return nil, false
	}
	c.tick++
	l.lru = c.tick
	c.stats.Hits++
	return &l.data, true
}

// resident returns a pointer to the data of addr's line without touching
// LRU or statistics (hierarchy-internal use after Install).
func (c *Cache) resident(addr mem.Addr) *mem.Line {
	if l := c.find(addr.Line()); l != nil {
		return &l.data
	}
	return nil
}

// Probe reports presence and dirtiness without touching LRU or stats.
func (c *Cache) Probe(addr mem.Addr) (present, dirty bool) {
	l := c.find(addr.Line())
	if l == nil {
		return false, false
	}
	return true, l.dirty
}

// CountMiss records a miss.
func (c *Cache) CountMiss() { c.stats.Misses++ }

// MarkDirty sets the dirty bit of a resident line. Setting dirty resets the
// fwb bit? No: per Figure 5, a write to a FLAG-state line leaves it dirty;
// the fwb bit only advances on scans. A write to an FWB-state line keeps
// {1,1}. So MarkDirty leaves fwb untouched.
func (c *Cache) MarkDirty(addr mem.Addr) {
	if l := c.find(addr.Line()); l != nil {
		l.dirty = true
	}
}

// Victim describes a line displaced or written back from a cache.
type Victim struct {
	Addr  mem.Addr
	Data  mem.Line
	Dirty bool
}

// Install fills addr's line with data, evicting the LRU way if the set is
// full. The displaced line (if any, dirty or clean) is returned so the
// caller can push dirty data down the hierarchy. Eviction resets the FSM to
// IDLE for the victim (Figure 5: "if a cache line is evicted ... resets its
// state to IDLE") — trivially true since the slot is reused.
func (c *Cache) Install(addr mem.Addr, data *mem.Line, dirty bool) (Victim, bool) {
	lineAddr := addr.Line()
	set := c.setOf(lineAddr)
	base := set * c.cfg.Ways

	// If the line is already resident, refresh it in place (a duplicate
	// copy in the same set would corrupt lookups).
	if l := c.find(lineAddr); l != nil {
		c.tick++
		l.lru = c.tick
		l.data = *data
		l.dirty = l.dirty || dirty
		return Victim{}, false
	}

	// Prefer an invalid way.
	victimIdx := -1
	for i := 0; i < c.cfg.Ways; i++ {
		if !c.lines[base+i].valid {
			victimIdx = base + i
			break
		}
	}
	var ev Victim
	evicted := false
	if victimIdx < 0 {
		// Evict the least recently used way.
		victimIdx = base
		for i := 1; i < c.cfg.Ways; i++ {
			if c.lines[base+i].lru < c.lines[victimIdx].lru {
				victimIdx = base + i
			}
		}
		v := &c.lines[victimIdx]
		ev = Victim{Addr: v.tag, Data: v.data, Dirty: v.dirty}
		evicted = true
		c.stats.Evictions++
		if v.dirty {
			c.stats.WriteBacks++
		}
	}
	c.tick++
	c.lines[victimIdx] = line{tag: lineAddr, valid: true, dirty: dirty, lru: c.tick, data: *data}
	return ev, evicted
}

// Invalidate removes addr's line, returning its data if it was present and
// dirty so the caller can preserve the only up-to-date copy.
func (c *Cache) Invalidate(addr mem.Addr) (Victim, bool) {
	l := c.find(addr.Line())
	if l == nil {
		return Victim{}, false
	}
	v := Victim{Addr: l.tag, Data: l.data, Dirty: l.dirty}
	l.valid = false
	l.dirty = false
	l.fwb = false
	return v, true
}

// CleanLine clears the dirty (and fwb) bits of a resident line after its
// data has been written back; the line stays valid (clwb semantics: write
// back but retain).
func (c *Cache) CleanLine(addr mem.Addr) {
	if l := c.find(addr.Line()); l != nil {
		l.dirty = false
		l.fwb = false
	}
}

// DirtyLine returns the data of addr's line if it is resident and dirty.
func (c *Cache) DirtyLine(addr mem.Addr) (*mem.Line, bool) {
	l := c.find(addr.Line())
	if l == nil || !l.dirty {
		return nil, false
	}
	return &l.data, true
}

// InvalidateAll drops every line (simulated power loss: caches are volatile,
// Section III-A failure model).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// DirtyCount returns the number of dirty lines (test/diagnostic aid).
func (c *Cache) DirtyCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			n++
		}
	}
	return n
}

// FwbScan runs one scanning pass of the Figure 5 FSM over every line:
//
//   - IDLE  {0,0}: nothing.
//   - FLAG  {0,1}: set fwb=1 (write-back happens next pass if still dirty).
//   - FWB   {1,1}: force the write-back via the callback, then reset to IDLE.
//
// The callback receives the victim line's address and a pointer to its
// data (valid only for the duration of the call — the line is cleaned in
// place, it stays valid like clwb) and returns true when the write-back
// was accepted. Passing the line by pointer rather than as a Victim value
// keeps the scan allocation-free: taking the address of a by-value copy
// in the callback would force every forced write-back onto the heap.
// The returned cycles are the tag-scan cost charged to the cache controller.
func (c *Cache) FwbScan(writeBack func(addr mem.Addr, data *mem.Line) bool) uint64 {
	c.stats.ScansRun++
	for i := range c.lines {
		l := &c.lines[i]
		if !l.valid {
			continue
		}
		switch l.state() {
		case stateFlag:
			l.fwb = true
			c.stats.FwbFlagged++
		case stateFwb:
			if writeBack(l.tag, &l.data) {
				l.dirty = false
				l.fwb = false
				c.stats.WriteBacks++
				c.stats.FwbForced++
			}
		}
	}
	cost := uint64(len(c.lines)) * c.cfg.ScanCycles
	c.stats.ScanCycles += cost
	return cost
}

// ForEachDirty calls fn for every valid dirty line. Used by conservative
// flush paths and by tests.
func (c *Cache) ForEachDirty(fn func(addr mem.Addr, data *mem.Line)) {
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid && l.dirty {
			fn(l.tag, &l.data)
		}
	}
}
