package cache

import (
	"fmt"

	"pmemlog/internal/mem"
)

// CoherenceState names a line's MESI-equivalent state as observed across
// the hierarchy. The protocol implemented by Hierarchy is write-invalidate
// with a single dirty owner; these labels make its invariants checkable:
//
//	Modified  — dirty in exactly one L1 (or only in L2), no other copies
//	Exclusive — clean in exactly one L1
//	Shared    — clean in more than one L1
//	Invalid   — in no private cache (may still be in L2 or memory only)
type CoherenceState int

const (
	Invalid CoherenceState = iota
	Shared
	Exclusive
	Modified
)

func (s CoherenceState) String() string {
	switch s {
	case Modified:
		return "M"
	case Exclusive:
		return "E"
	case Shared:
		return "S"
	default:
		return "I"
	}
}

// CoherenceInfo describes one line's cross-cache status.
type CoherenceInfo struct {
	State      CoherenceState
	L1Copies   int // private caches holding the line
	DirtyOwner int // core index of the dirty L1 copy, -1 if none
	L2Present  bool
	L2Dirty    bool
}

// Coherence inspects a line across every cache level (no LRU/stat effects).
func (h *Hierarchy) Coherence(addr mem.Addr) CoherenceInfo {
	info := CoherenceInfo{DirtyOwner: -1}
	for i, c := range h.l1 {
		present, dirty := c.Probe(addr)
		if !present {
			continue
		}
		info.L1Copies++
		if dirty {
			info.DirtyOwner = i
		}
	}
	info.L2Present, info.L2Dirty = h.l2.Probe(addr)
	switch {
	case info.DirtyOwner >= 0:
		info.State = Modified
	case info.L1Copies > 1:
		info.State = Shared
	case info.L1Copies == 1:
		info.State = Exclusive
	default:
		info.State = Invalid
	}
	return info
}

// CheckCoherence validates the protocol invariants for a line:
//
//  1. At most one private cache holds the line dirty.
//  2. A dirty private copy coexists with no other private copies
//     (write-invalidate: stores removed the sharers).
//  3. If a private copy is dirty, the L2 copy (if any) is clean — the
//     dirty ownership lives in exactly one place.
func (h *Hierarchy) CheckCoherence(addr mem.Addr) error {
	dirtyOwners := 0
	copies := 0
	for _, c := range h.l1 {
		present, dirty := c.Probe(addr)
		if present {
			copies++
		}
		if dirty {
			dirtyOwners++
		}
	}
	if dirtyOwners > 1 {
		return fmt.Errorf("cache: line %v dirty in %d private caches", addr.Line(), dirtyOwners)
	}
	if dirtyOwners == 1 && copies > 1 {
		return fmt.Errorf("cache: line %v dirty with %d sharers", addr.Line(), copies)
	}
	if dirtyOwners == 1 {
		if _, l2dirty := h.l2.Probe(addr); l2dirty {
			return fmt.Errorf("cache: line %v dirty in both L1 and L2", addr.Line())
		}
	}
	return nil
}

// CheckAllCoherence validates the invariants for every line resident in
// any private cache (test harness helper).
func (h *Hierarchy) CheckAllCoherence() error {
	seen := map[mem.Addr]struct{}{}
	var firstErr error
	check := func(a mem.Addr) {
		if _, ok := seen[a]; ok || firstErr != nil {
			return
		}
		seen[a] = struct{}{}
		if err := h.CheckCoherence(a); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, c := range h.l1 {
		for i := range c.lines {
			if c.lines[i].valid {
				check(c.lines[i].tag)
			}
		}
	}
	return firstErr
}
