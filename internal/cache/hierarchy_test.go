package cache

import (
	"math/rand"
	"testing"

	"pmemlog/internal/mem"
)

// fakeBacking is a flat memory with fixed latencies that records traffic.
type fakeBacking struct {
	img        *mem.Physical
	fetchLat   uint64
	wbLat      uint64
	fetches    int
	writeBacks []mem.Addr
}

func newFakeBacking() *fakeBacking {
	return &fakeBacking{img: mem.NewPhysical(0, 1<<20), fetchLat: 100, wbLat: 100}
}

func (b *fakeBacking) FetchLine(now uint64, addr mem.Addr, dst *mem.Line) uint64 {
	b.img.ReadLine(addr, dst)
	b.fetches++
	return now + b.fetchLat
}

func (b *fakeBacking) WriteBackLine(now uint64, addr mem.Addr, src *mem.Line) uint64 {
	b.img.WriteLine(addr, src)
	b.writeBacks = append(b.writeBacks, addr)
	return now + b.wbLat
}

func testHierarchy(t *testing.T, cores int) (*Hierarchy, *fakeBacking) {
	t.Helper()
	b := newFakeBacking()
	cfg := HierarchyConfig{
		NumCores: cores,
		L1:       Config{Name: "L1", SizeBytes: 1024, Ways: 2, HitCycles: 4, ScanCycles: 1},
		L2:       Config{Name: "L2", SizeBytes: 8 * 1024, Ways: 4, HitCycles: 11, ScanCycles: 1},
	}
	h, err := NewHierarchy(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	return h, b
}

func TestLoadMissFillsAllLevels(t *testing.T) {
	h, b := testHierarchy(t, 2)
	b.img.WriteWord(0x100, 77)
	w, done, res := h.LoadWord(0, 0, 0x100)
	if w != 77 || res != HitMemory {
		t.Fatalf("load = %d from %v, want 77 from memory", w, res)
	}
	if done != 4+11+100 {
		t.Errorf("miss latency = %d, want 115", done)
	}
	// Second load: L1 hit.
	_, done2, res2 := h.LoadWord(done, 0, 0x100)
	if res2 != HitL1 || done2 != done+4 {
		t.Errorf("second load: %v in %d cycles", res2, done2-done)
	}
	// Other core: L2 hit.
	_, _, res3 := h.LoadWord(done2, 1, 0x100)
	if res3 != HitL2 {
		t.Errorf("other core load = %v, want L2", res3)
	}
}

func TestStoreReturnsOldValue(t *testing.T) {
	h, b := testHierarchy(t, 1)
	b.img.WriteWord(0x200, 10)
	// Store miss: write-allocate must fetch the line, so the old value is
	// available (paper Figure 3(c)).
	old, _, res := h.StoreWord(0, 0, 0x200, 20)
	if old != 10 || res != HitMemory {
		t.Fatalf("store miss old=%d res=%v, want 10/memory", old, res)
	}
	// Store hit: old value read from the hitting line (Figure 3(b)).
	old2, _, res2 := h.StoreWord(0, 0, 0x200, 30)
	if old2 != 20 || res2 != HitL1 {
		t.Fatalf("store hit old=%d res=%v, want 20/L1", old2, res2)
	}
	// The dirty data is only in cache; backing still has the stale value.
	if got := b.img.ReadWord(0x200); got != 10 {
		t.Errorf("backing = %d, want 10 (write-back cache must not write through)", got)
	}
}

func TestLoadSeesRemoteDirty(t *testing.T) {
	h, _ := testHierarchy(t, 2)
	h.StoreWord(0, 0, 0x300, 55)
	w, _, _ := h.LoadWord(100, 1, 0x300)
	if w != 55 {
		t.Fatalf("core 1 read %d, want 55 (remote dirty)", w)
	}
	// After the demotion, at most one dirty copy exists.
	dirtyOwners := 0
	for i := 0; i < 2; i++ {
		if _, d := h.L1(i).Probe(0x300); d {
			dirtyOwners++
		}
	}
	_, l2dirty := h.L2().Probe(0x300)
	if dirtyOwners > 0 && l2dirty {
		t.Error("line dirty in both an L1 and L2")
	}
}

func TestStoreInvalidatesRemoteCopies(t *testing.T) {
	h, _ := testHierarchy(t, 2)
	h.StoreWord(0, 0, 0x300, 1)
	h.LoadWord(10, 1, 0x300) // both L1s now have a copy
	h.StoreWord(20, 1, 0x300, 2)
	if present, _ := h.L1(0).Probe(0x300); present {
		t.Error("stale copy in core 0 L1 after core 1 store")
	}
	w, _, _ := h.LoadWord(30, 0, 0x300)
	if w != 2 {
		t.Errorf("core 0 read %d, want 2", w)
	}
}

func TestFlushWritesBackAndRetains(t *testing.T) {
	h, b := testHierarchy(t, 1)
	h.StoreWord(0, 0, 0x400, 99)
	done, moved := h.Flush(10, 0, 0x400)
	if !moved || done <= 10 {
		t.Fatalf("flush moved=%v done=%d", moved, done)
	}
	if got := b.img.ReadWord(0x400); got != 99 {
		t.Errorf("backing after clwb = %d, want 99", got)
	}
	// Line retained, clean, still a hit.
	_, _, res := h.LoadWord(done, 0, 0x400)
	if res != HitL1 {
		t.Errorf("post-flush load = %v, want L1 hit", res)
	}
	if h.DirtyAnywhere(0x400) {
		t.Error("line dirty after flush")
	}
	// Flushing a clean line is a no-op.
	_, moved2 := h.Flush(done, 0, 0x400)
	if moved2 {
		t.Error("clean flush moved data")
	}
}

func TestDirtyEvictionReachesBacking(t *testing.T) {
	h, b := testHierarchy(t, 1)
	// L1: 1KB 2-way = 8 sets. L2: 8KB 4-way = 32 sets. Write enough
	// distinct lines mapping everywhere to force evictions to memory.
	n := 512
	for i := 0; i < n; i++ {
		h.StoreWord(uint64(i*10), 0, mem.Addr(i*mem.LineSize), mem.Word(i))
	}
	if len(b.writeBacks) == 0 {
		t.Fatal("no dirty line ever reached the backing store")
	}
	// Every value must be recoverable from cache or backing.
	for i := 0; i < n; i++ {
		w, _, _ := h.LoadWord(1e9, 0, mem.Addr(i*mem.LineSize))
		if w != mem.Word(i) {
			t.Fatalf("line %d: read %d", i, w)
		}
	}
}

func TestHierarchyFwbScanForcesDirtyData(t *testing.T) {
	h, b := testHierarchy(t, 2)
	h.StoreWord(0, 0, 0x500, 5)
	h.StoreWord(0, 1, 0x600, 6)
	h.FwbScan(1000) // FLAG
	h.FwbScan(2000) // FWB: write-backs
	if b.img.ReadWord(0x500) != 5 || b.img.ReadWord(0x600) != 6 {
		t.Errorf("FWB scan did not persist dirty data: %d %d",
			b.img.ReadWord(0x500), b.img.ReadWord(0x600))
	}
	if h.DirtyAnywhere(0x500) || h.DirtyAnywhere(0x600) {
		t.Error("lines dirty after FWB pass")
	}
}

func TestScanDelaysDemandAccess(t *testing.T) {
	h, _ := testHierarchy(t, 1)
	h.StoreWord(0, 0, 0x40, 1)
	h.FwbScan(100)
	// A demand access right after the scan starts must wait for the scan.
	_, done, _ := h.LoadWord(101, 0, 0x40)
	scanCost := uint64(h.L1(0).NumLines()) // ScanCycles=1
	if done < 100+scanCost {
		t.Errorf("access during scan finished at %d, want >= %d", done, 100+scanCost)
	}
}

func TestFlushAllDirty(t *testing.T) {
	h, b := testHierarchy(t, 2)
	for i := 0; i < 20; i++ {
		h.StoreWord(uint64(i), i%2, mem.Addr(0x1000+i*mem.LineSize), mem.Word(i+1))
	}
	h.FlushAllDirty(500)
	for i := 0; i < 20; i++ {
		if got := b.img.ReadWord(mem.Addr(0x1000 + i*mem.LineSize)); got != mem.Word(i+1) {
			t.Fatalf("line %d not persisted: %d", i, got)
		}
	}
	if h.L1(0).DirtyCount()+h.L1(1).DirtyCount()+h.L2().DirtyCount() != 0 {
		t.Error("dirty lines remain after FlushAllDirty")
	}
}

func TestInvalidateAllLosesDirtyData(t *testing.T) {
	h, b := testHierarchy(t, 1)
	b.img.WriteWord(0x700, 1)
	h.StoreWord(0, 0, 0x700, 2)
	h.InvalidateAll()
	w, _, res := h.LoadWord(100, 0, 0x700)
	if w != 1 || res != HitMemory {
		t.Errorf("post-crash load = %d from %v, want stale 1 from memory", w, res)
	}
}

// Property-style test: under a random single-core op stream, the hierarchy
// must behave exactly like a flat memory (cache transparency).
func TestCacheCoherentWithFlatMemory(t *testing.T) {
	h, b := testHierarchy(t, 2)
	shadow := map[mem.Addr]mem.Word{}
	rng := rand.New(rand.NewSource(7))
	now := uint64(0)
	for i := 0; i < 20000; i++ {
		addr := mem.Addr(rng.Intn(4096)) &^ 7 // word-aligned in 4KB region
		core := rng.Intn(2)
		if rng.Intn(2) == 0 {
			w := mem.Word(rng.Uint64())
			_, done, _ := h.StoreWord(now, core, addr, w)
			shadow[addr.WordAligned()] = w
			now = done
		} else {
			w, done, _ := h.LoadWord(now, core, addr)
			want, ok := shadow[addr.WordAligned()]
			if !ok {
				want = 0 // backing starts zeroed
			}
			if w != want {
				t.Fatalf("op %d: load %v = %#x, want %#x", i, addr, w, want)
			}
			now = done
		}
	}
	_ = b
}
