package cache

import (
	"testing"

	"pmemlog/internal/mem"
)

func smallConfig(name string) Config {
	return Config{Name: name, SizeBytes: 4 * 1024, Ways: 4, HitCycles: 4, ScanCycles: 1}
}

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func lineWith(w mem.Word) *mem.Line {
	var l mem.Line
	l.SetWord(0, w)
	return &l
}

func TestConfigValidate(t *testing.T) {
	if err := smallConfig("l1").Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := smallConfig("l1")
	bad.Ways = 0
	if bad.Validate() == nil {
		t.Error("zero ways accepted")
	}
	bad = smallConfig("l1")
	bad.SizeBytes = 100
	if bad.Validate() == nil {
		t.Error("non-divisible size accepted")
	}
}

func TestSetsGeometry(t *testing.T) {
	cfg := Config{Name: "l1", SizeBytes: 32 * 1024, Ways: 8, HitCycles: 4}
	if got := cfg.Sets(); got != 64 {
		t.Errorf("32KB 8-way 64B lines: sets = %d, want 64", got)
	}
}

func TestLookupMissThenInstallHit(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	if _, ok := c.Lookup(0x1000); ok {
		t.Fatal("hit in empty cache")
	}
	c.CountMiss()
	c.Install(0x1000, lineWith(42), false)
	data, ok := c.Lookup(0x1000)
	if !ok || data.Word(0) != 42 {
		t.Fatalf("expected hit with word 42, got ok=%v", ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, smallConfig("l1")) // 16 sets, 4 ways
	sets := c.Config().Sets()
	stride := mem.Addr(sets * mem.LineSize) // same set each time
	// Fill all 4 ways of set 0.
	for i := 0; i < 4; i++ {
		c.Install(mem.Addr(i)*stride, lineWith(mem.Word(i)), false)
	}
	// Touch way 0 to make it MRU.
	c.Lookup(0)
	// Install a 5th line: LRU victim should be line 1 (the oldest untouched).
	v, evicted := c.Install(4*stride, lineWith(4), false)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if v.Addr != stride {
		t.Errorf("victim = %v, want %v", v.Addr, stride)
	}
	if _, ok := c.Lookup(0); !ok {
		t.Error("MRU line was evicted")
	}
}

func TestDirtyVictimReturned(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	sets := c.Config().Sets()
	stride := mem.Addr(sets * mem.LineSize)
	c.Install(0, lineWith(7), true)
	for i := 1; i < 5; i++ {
		c.Install(mem.Addr(i)*stride, lineWith(mem.Word(i)), false)
	}
	// Line 0 was LRU and dirty; it must have come back as a dirty victim.
	st := c.Stats()
	if st.WriteBacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.WriteBacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	c.Install(0x40, lineWith(9), true)
	v, present := c.Invalidate(0x40)
	if !present || !v.Dirty || v.Data.Word(0) != 9 {
		t.Fatalf("invalidate: present=%v dirty=%v", present, v.Dirty)
	}
	if _, ok := c.Lookup(0x40); ok {
		t.Error("line still present after invalidate")
	}
	if _, present := c.Invalidate(0x40); present {
		t.Error("double invalidate reported presence")
	}
}

func TestCleanLineKeepsData(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	c.Install(0x40, lineWith(3), true)
	c.CleanLine(0x40)
	if _, dirty := c.Probe(0x40); dirty {
		t.Error("line still dirty after CleanLine")
	}
	if data, ok := c.Lookup(0x40); !ok || data.Word(0) != 3 {
		t.Error("CleanLine lost data")
	}
}

// TestFwbFSM exercises the Figure 5 state machine:
// IDLE -> (write) FLAG -> (scan) FWB -> (scan) write-back -> IDLE.
func TestFwbFSM(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	c.Install(0x40, lineWith(1), true) // dirty: FLAG state

	var forced []mem.Addr
	wb := func(addr mem.Addr, _ *mem.Line) bool { forced = append(forced, addr); return true }

	// First scan: FLAG -> FWB (fwb bit set), no write-back yet.
	c.FwbScan(wb)
	if len(forced) != 0 {
		t.Fatalf("first scan forced %d write-backs, want 0", len(forced))
	}
	// Second scan: FWB -> write-back -> IDLE.
	c.FwbScan(wb)
	if len(forced) != 1 || forced[0] != 0x40 {
		t.Fatalf("second scan forced %v, want [0x40]", forced)
	}
	if _, dirty := c.Probe(0x40); dirty {
		t.Error("line dirty after forced write-back")
	}
	// Third scan: IDLE, nothing happens.
	c.FwbScan(wb)
	if len(forced) != 1 {
		t.Error("idle line was written back again")
	}
	st := c.Stats()
	if st.FwbForced != 1 || st.ScansRun != 3 {
		t.Errorf("FwbForced=%d ScansRun=%d, want 1/3", st.FwbForced, st.ScansRun)
	}
}

// A line evicted between the FLAG and FWB scans must not be written back by
// the scanner (Figure 5: eviction resets to IDLE).
func TestFwbEvictionResetsState(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	c.Install(0x40, lineWith(1), true)
	c.FwbScan(func(mem.Addr, *mem.Line) bool { return true }) // FLAG -> FWB
	c.Invalidate(0x40)
	var forced int
	c.FwbScan(func(mem.Addr, *mem.Line) bool { forced++; return true })
	if forced != 0 {
		t.Errorf("evicted line force-written-back %d times", forced)
	}
}

// A clean line re-dirtied after its write-back starts the FSM over.
func TestFwbRedirtyRestartsFSM(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	c.Install(0x40, lineWith(1), true)
	wb := func(mem.Addr, *mem.Line) bool { return true }
	c.FwbScan(wb) // FLAG->FWB
	c.FwbScan(wb) // written back, IDLE
	c.MarkDirty(0x40)
	var forced int
	c.FwbScan(func(mem.Addr, *mem.Line) bool { forced++; return true }) // FLAG->FWB only
	if forced != 0 {
		t.Error("re-dirtied line written back without a FLAG pass")
	}
	c.FwbScan(func(mem.Addr, *mem.Line) bool { forced++; return true })
	if forced != 1 {
		t.Error("re-dirtied line never written back")
	}
}

func TestScanCostCharged(t *testing.T) {
	cfg := smallConfig("l1")
	cfg.ScanCycles = 2
	c := mustCache(t, cfg)
	cost := c.FwbScan(func(mem.Addr, *mem.Line) bool { return true })
	want := uint64(c.NumLines()) * 2
	if cost != want {
		t.Errorf("scan cost = %d, want %d", cost, want)
	}
}

func TestDirtyCountAndForEachDirty(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	c.Install(0x40, lineWith(1), true)
	c.Install(0x80, lineWith(2), false)
	c.Install(0xc0, lineWith(3), true)
	if got := c.DirtyCount(); got != 2 {
		t.Errorf("DirtyCount = %d, want 2", got)
	}
	seen := map[mem.Addr]bool{}
	c.ForEachDirty(func(a mem.Addr, _ *mem.Line) { seen[a] = true })
	if !seen[0x40] || !seen[0xc0] || seen[0x80] {
		t.Errorf("ForEachDirty visited %v", seen)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := mustCache(t, smallConfig("l1"))
	c.Install(0x40, lineWith(1), true)
	c.InvalidateAll()
	if c.DirtyCount() != 0 {
		t.Error("dirty lines survive InvalidateAll")
	}
	if _, ok := c.Lookup(0x40); ok {
		t.Error("line survives InvalidateAll")
	}
}
