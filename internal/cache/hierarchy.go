package cache

import (
	"fmt"

	"pmemlog/internal/chaos"
	"pmemlog/internal/mem"
	"pmemlog/internal/obs"
	"pmemlog/internal/obs/scope"
)

// Backing is the memory side of the hierarchy (implemented by the memory
// controller). FetchLine/WriteBackLine move real bytes and return the cycle
// at which the transfer completes. Eviction write-backs are posted (the
// core does not wait for them), but their completion time still matters for
// crash fidelity and bandwidth contention, which the controller models.
type Backing interface {
	FetchLine(now uint64, addr mem.Addr, dst *mem.Line) uint64
	WriteBackLine(now uint64, addr mem.Addr, src *mem.Line) uint64
}

// HierarchyConfig describes the cache tree: one private L1D per hardware
// thread and a shared last-level cache (Table II: 32 KB 8-way L1,
// 8 MB 16-way L2, 64 B lines).
type HierarchyConfig struct {
	NumCores int
	L1       Config
	L2       Config
}

// Validate reports configuration errors.
func (c HierarchyConfig) Validate() error {
	if c.NumCores <= 0 {
		return fmt.Errorf("cache: NumCores must be positive")
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	return c.L2.Validate()
}

// AccessResult reports where a memory operation was satisfied.
type AccessResult int

const (
	HitL1 AccessResult = iota
	HitL2
	HitRemoteL1 // satisfied by another core's private cache
	HitMemory
)

func (r AccessResult) String() string {
	switch r {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitRemoteL1:
		return "remoteL1"
	default:
		return "memory"
	}
}

// Hierarchy ties private L1s to a shared L2 over a Backing. Coherence is a
// minimal write-invalidate protocol: a line may be dirty in at most one L1;
// stores invalidate remote copies, loads of remotely-dirty lines demote the
// dirty copy into L2 first.
type Hierarchy struct {
	cfg     HierarchyConfig
	l1      []*Cache
	l2      *Cache
	l1Busy  []uint64
	l2Busy  uint64
	backing Backing

	// tracer observes FWB scan activity (nil or disabled: one branch).
	tracer    *obs.Tracer
	traceRing int

	// fwbCB is the write-back callback handed to each cache's FwbScan,
	// bound once at construction so periodic scans never allocate a
	// closure. It reads fwbNow and accumulates into fwbForced.
	fwbCB     func(addr mem.Addr, data *mem.Line) bool
	fwbNow    uint64
	fwbForced uint64

	// chaos, when armed via SetChaos (sim construction only), drops
	// forced write-backs: the scan skips the line, which stays dirty
	// and flagged for the next pass.
	chaos *chaos.Injector

	// scope is the persistence-domain cost ledger (nil = unscoped). The
	// hierarchy reports forced write-backs, line re-dirties (for the
	// wasted-flush detector), and scan-pass boundaries.
	scope *scope.Counters
}

// SetChaos arms (or with nil disarms) the fault injector (pmlint's
// chaosonly rule confines callers to the sim layer).
func (h *Hierarchy) SetChaos(in *chaos.Injector) { h.chaos = in }

// SetScope attaches (or with nil detaches) the persistence-domain cost
// ledger.
func (h *Hierarchy) SetScope(c *scope.Counters) { h.scope = c }

// SetTracer attaches (or with nil detaches) the obs tracer. ring is
// the ring index scan events land in (the machine ring by convention —
// FWB scans belong to the cache controller, not to any thread).
func (h *Hierarchy) SetTracer(t *obs.Tracer, ring int) {
	h.tracer = t
	h.traceRing = ring
}

// NewHierarchy builds the cache tree.
func NewHierarchy(cfg HierarchyConfig, backing Backing) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, backing: backing, l1Busy: make([]uint64, cfg.NumCores)}
	h.fwbCB = func(addr mem.Addr, data *mem.Line) bool {
		if h.chaos.Hit(chaos.SiteDropFWB, uint64(addr)) {
			// Chaos: the forced write-back is dropped. Returning false
			// leaves the line dirty+flagged, so the next scan retries it;
			// truncation keeps waiting on DirtyAnywhere/LineWriteDone.
			return false
		}
		h.backing.WriteBackLine(h.fwbNow, addr, data)
		h.fwbForced++
		h.scope.NoteForcedWB(uint64(addr))
		h.tracer.Emit(h.traceRing, h.fwbNow, obs.KindFwbForced, 0, uint64(addr))
		return true
	}
	for i := 0; i < cfg.NumCores; i++ {
		c, err := New(cfg.L1)
		if err != nil {
			return nil, err
		}
		h.l1 = append(h.l1, c)
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	h.l2 = l2
	return h, nil
}

// L1 returns core's private cache (stats/tests).
func (h *Hierarchy) L1(core int) *Cache { return h.l1[core] }

// L2 returns the shared cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// TotalLines returns the number of cache lines across all levels, sizing
// the fwb tag-bit overhead of Table I.
func (h *Hierarchy) TotalLines() int {
	n := h.l2.NumLines()
	for _, c := range h.l1 {
		n += c.NumLines()
	}
	return n
}

// installL1 places a line into core's L1 and routes any displaced dirty
// victim down into L2 (and L2's victim to memory).
func (h *Hierarchy) installL1(now uint64, core int, addr mem.Addr, data *mem.Line, dirty bool) {
	v, evicted := h.l1[core].Install(addr, data, dirty)
	if evicted && v.Dirty {
		h.installL2(now, v.Addr, &v.Data, true)
	}
}

// installL2 places a line into L2, writing any displaced dirty victim back
// to memory as a posted write.
func (h *Hierarchy) installL2(now uint64, addr mem.Addr, data *mem.Line, dirty bool) {
	v, evicted := h.l2.Install(addr, data, dirty)
	if evicted && v.Dirty {
		h.backing.WriteBackLine(now, v.Addr, &v.Data)
	}
}

// demoteRemote checks whether any L1 other than core holds addr dirty; if
// so the dirty copy is moved into L2 (cleaned in place for loads, fully
// invalidated for stores) so the requesting core sees up-to-date data.
func (h *Hierarchy) demoteRemote(now uint64, core int, addr mem.Addr, invalidate bool) bool {
	found := false
	for i, c := range h.l1 {
		if i == core {
			continue
		}
		present, dirty := c.Probe(addr)
		if !present {
			continue
		}
		if dirty {
			if data, ok := c.DirtyLine(addr); ok {
				h.installL2(now, addr.Line(), data, true)
			}
			found = true
		}
		if invalidate {
			c.Invalidate(addr)
		} else if dirty {
			c.CleanLine(addr)
		}
	}
	return found
}

func (h *Hierarchy) startL1(now uint64, core int) uint64 {
	if h.l1Busy[core] > now {
		now = h.l1Busy[core]
	}
	return now
}

func (h *Hierarchy) startL2(now uint64) uint64 {
	if h.l2Busy > now {
		now = h.l2Busy
	}
	return now
}

// fetchIntoL1 brings addr's line into core's L1 (write-allocate path),
// returning a pointer to the resident line, the completion cycle, and
// where the data came from.
func (h *Hierarchy) fetchIntoL1(now uint64, core int, addr mem.Addr, forStore bool) (*mem.Line, uint64, AccessResult) {
	start := h.startL1(now, core)
	t := start + h.cfg.L1.HitCycles
	if data, ok := h.l1[core].Lookup(addr); ok {
		if forStore {
			// A store hit must still invalidate remote clean copies.
			h.demoteRemote(t, core, addr, true)
		}
		return data, t, HitL1
	}
	h.l1[core].CountMiss()

	// Coherence: pull a remotely-dirty copy down into L2 first.
	remote := h.demoteRemote(t, core, addr, forStore)

	t = h.startL2(t) + h.cfg.L2.HitCycles
	if data, ok := h.l2.Lookup(addr); ok {
		cp := *data
		h.installL1(t, core, addr.Line(), &cp, false)
		res := HitL2
		if remote {
			res = HitRemoteL1
		}
		return h.l1[core].resident(addr), t, res
	}
	h.l2.CountMiss()

	var buf mem.Line
	t = h.backing.FetchLine(t, addr.Line(), &buf)
	h.installL2(t, addr.Line(), &buf, false)
	h.installL1(t, core, addr.Line(), &buf, false)
	return h.l1[core].resident(addr), t, HitMemory
}

// LoadWord performs a cached load of the word containing addr, returning
// its value, the completion cycle, and the satisfying level.
func (h *Hierarchy) LoadWord(now uint64, core int, addr mem.Addr) (mem.Word, uint64, AccessResult) {
	line, done, res := h.fetchIntoL1(now, core, addr, false)
	return line.Word(addr.WordIndex()), done, res
}

// StoreWord performs a cached write-allocate store, returning the OLD word
// value — the undo information the HWL mechanism extracts from the hitting
// or write-allocated cache line (paper Figure 3(b)/(c)) — plus the
// completion cycle and satisfying level.
func (h *Hierarchy) StoreWord(now uint64, core int, addr mem.Addr, w mem.Word) (mem.Word, uint64, AccessResult) {
	line, done, res := h.fetchIntoL1(now, core, addr, true)
	idx := addr.WordIndex()
	old := line.Word(idx)
	line.SetWord(idx, w)
	h.markDirtyOwned(core, addr)
	return old, done, res
}

// markDirtyOwned dirties the L1 line and transfers dirty ownership from a
// stale L2 copy (which the fresher L1 copy now supersedes; leaving it
// dirty would write superseded data back to NVRAM). This happens only at
// the instant the L1 copy actually becomes dirty, so the hierarchy always
// holds at least one dirty copy of not-yet-persisted data.
func (h *Hierarchy) markDirtyOwned(core int, addr mem.Addr) {
	h.l1[core].MarkDirty(addr)
	h.l2.CleanLine(addr)
	// A line the FWB scanner just forced out and that re-dirties before
	// the next pass made that flush wasted NVRAM traffic.
	h.scope.NoteDirtied(uint64(addr.Line()))
}

// FetchForStore performs the write-allocate half of a store: the line is
// brought into the core's L1 with exclusive ownership and the old word
// value is returned, but the line is NOT yet modified. The hardware
// logging engine runs between FetchForStore and CompleteStore so that the
// log record is accepted BEFORE the new value becomes visible/dirty —
// otherwise a log-full emergency write-back could persist un-logged data.
func (h *Hierarchy) FetchForStore(now uint64, core int, addr mem.Addr) (mem.Word, uint64, AccessResult) {
	line, done, res := h.fetchIntoL1(now, core, addr, true)
	return line.Word(addr.WordIndex()), done, res
}

// CompleteStore writes the new value into the line fetched by
// FetchForStore and marks it dirty. If intervening engine activity (an
// emergency flush, an eviction) displaced the line, it is transparently
// re-fetched; the returned cycle covers that rare extra work (equal to
// `now` on the common path).
func (h *Hierarchy) CompleteStore(now uint64, core int, addr mem.Addr, w mem.Word) uint64 {
	if line := h.l1[core].resident(addr); line != nil {
		line.SetWord(addr.WordIndex(), w)
		h.markDirtyOwned(core, addr)
		return now
	}
	_, done, _ := h.StoreWord(now, core, addr, w)
	return done
}

// Flush implements clwb addr: if the line is dirty anywhere, write it back
// to memory and leave it valid-clean. Returns the completion cycle of the
// write-back (the caller's sfence waits on it) and whether data moved.
func (h *Hierarchy) Flush(now uint64, core int, addr mem.Addr) (uint64, bool) {
	t := h.startL1(now, core) + h.cfg.L1.HitCycles
	for _, c := range h.l1 {
		if data, ok := c.DirtyLine(addr); ok {
			done := h.backing.WriteBackLine(t, addr.Line(), data)
			c.CleanLine(addr)
			// Keep the L2 copy (if any) coherent and clean.
			if l2data := h.l2.resident(addr); l2data != nil {
				*l2data = *data
				h.l2.CleanLine(addr)
			}
			return done, true
		}
	}
	t = h.startL2(t) + h.cfg.L2.HitCycles
	if data, ok := h.l2.DirtyLine(addr); ok {
		done := h.backing.WriteBackLine(t, addr.Line(), data)
		h.l2.CleanLine(addr)
		return done, true
	}
	return t, false
}

// DirtyAnywhere reports whether addr's line is dirty in any cache. The
// hardware logging engine uses this to decide when circular-log entries may
// be truncated (the paper's overwrite-safety condition, Section II-C).
func (h *Hierarchy) DirtyAnywhere(addr mem.Addr) bool {
	for _, c := range h.l1 {
		if _, dirty := c.Probe(addr); dirty {
			return true
		}
	}
	_, dirty := h.l2.Probe(addr)
	return dirty
}

// FwbScan runs one FWB scanning pass (Figure 5 FSM) over every cache.
// Forced write-backs are posted to the backing at `now`. The scan occupies
// each cache's port, delaying demand accesses that arrive during the scan —
// this is the paper's ~3.6% tag-scanning overhead (Section VI).
func (h *Hierarchy) FwbScan(now uint64) {
	h.fwbNow, h.fwbForced = now, 0
	h.scope.NoteScan()
	flagged0 := h.flaggedTotal()
	for i, c := range h.l1 {
		cost := c.FwbScan(h.fwbCB)
		h.l1Busy[i] = h.startL1(now, i) + cost
	}
	cost := h.l2.FwbScan(h.fwbCB)
	h.l2Busy = h.startL2(now) + cost
	if h.tracer.Enabled() {
		flagged := h.flaggedTotal() - flagged0
		h.tracer.Emit(h.traceRing, now, obs.KindFwbScan, 0, h.fwbForced<<32|flagged&0xffffffff)
	}
}

// FwbFlaggedTotal returns the lifetime count of FLAG→FWB transitions
// across the tree (lines the scanner marked on one pass and would force
// out on the next — the paper's two-pass Figure 5 FSM). The pulse
// sampler publishes it for scan hit-rate accounting.
func (h *Hierarchy) FwbFlaggedTotal() uint64 { return h.flaggedTotal() }

// flaggedTotal sums the FLAG→FWB transition counters across the tree.
func (h *Hierarchy) flaggedTotal() uint64 {
	var n uint64
	for _, c := range h.l1 {
		n += c.Stats().FwbFlagged
	}
	return n + h.l2.Stats().FwbFlagged
}

// FlushAllDirty writes back every dirty line in the hierarchy (emergency
// path when the circular log is about to overwrite live entries and no
// finer-grained information is available; also used by tests).
func (h *Hierarchy) FlushAllDirty(now uint64) uint64 {
	done := now
	flush := func(c *Cache) {
		c.ForEachDirty(func(addr mem.Addr, data *mem.Line) {
			if d := h.backing.WriteBackLine(now, addr, data); d > done {
				done = d
			}
		})
		// Clean in a second pass to avoid mutating during iteration.
		var addrs []mem.Addr
		c.ForEachDirty(func(addr mem.Addr, _ *mem.Line) { addrs = append(addrs, addr) })
		for _, a := range addrs {
			c.CleanLine(a)
		}
	}
	for _, c := range h.l1 {
		flush(c)
	}
	flush(h.l2)
	return done
}

// InvalidateAll models power loss: every volatile cache loses its contents.
func (h *Hierarchy) InvalidateAll() {
	for _, c := range h.l1 {
		c.InvalidateAll()
	}
	h.l2.InvalidateAll()
	for i := range h.l1Busy {
		h.l1Busy[i] = 0
	}
	h.l2Busy = 0
}
