package cache

import (
	"math/rand"
	"testing"

	"pmemlog/internal/mem"
)

func TestCoherenceStateLabels(t *testing.T) {
	h, b := testHierarchy(t, 4)
	b.img.WriteWord(0x100, 1)
	addr := mem.Addr(0x100)

	if got := h.Coherence(addr).State; got != Invalid {
		t.Errorf("untouched line state = %v, want I", got)
	}
	// One clean reader: Exclusive.
	h.LoadWord(0, 0, addr)
	if got := h.Coherence(addr).State; got != Exclusive {
		t.Errorf("single reader state = %v, want E", got)
	}
	// Two readers: Shared.
	h.LoadWord(10, 1, addr)
	if got := h.Coherence(addr).State; got != Shared {
		t.Errorf("two readers state = %v, want S", got)
	}
	// A writer invalidates the sharers: Modified with one copy.
	h.StoreWord(20, 2, addr, 9)
	info := h.Coherence(addr)
	if info.State != Modified || info.L1Copies != 1 || info.DirtyOwner != 2 {
		t.Errorf("post-store coherence = %+v", info)
	}
	if err := h.CheckCoherence(addr); err != nil {
		t.Errorf("invariants after store: %v", err)
	}
	// A flush demotes to clean ownership.
	h.Flush(30, 2, addr)
	if got := h.Coherence(addr).State; got != Exclusive {
		t.Errorf("post-flush state = %v, want E", got)
	}
}

// Property: the protocol invariants hold at every step of a random
// multi-core op stream.
func TestCoherenceInvariantsUnderRandomOps(t *testing.T) {
	h, _ := testHierarchy(t, 4)
	rng := rand.New(rand.NewSource(99))
	now := uint64(0)
	for i := 0; i < 30000; i++ {
		addr := mem.Addr(rng.Intn(2048)) &^ 7
		core := rng.Intn(4)
		switch rng.Intn(4) {
		case 0:
			_, done, _ := h.LoadWord(now, core, addr)
			now = done
		case 1:
			_, done, _ := h.StoreWord(now, core, addr, mem.Word(i))
			now = done
		case 2:
			done, _ := h.Flush(now, core, addr)
			now = done
		default:
			old, done, _ := h.FetchForStore(now, core, addr)
			_ = old
			now = h.CompleteStore(done, core, addr, mem.Word(i))
		}
		if i%500 == 0 {
			if err := h.CheckAllCoherence(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := h.CheckAllCoherence(); err != nil {
		t.Fatal(err)
	}
}

// FetchForStore must leave the line exclusively owned and unmodified until
// CompleteStore, even when another core held it dirty.
func TestFetchForStoreOwnership(t *testing.T) {
	h, b := testHierarchy(t, 2)
	b.img.WriteWord(0x200, 7)
	h.StoreWord(0, 0, 0x200, 8) // core 0 owns dirty

	old, done, _ := h.FetchForStore(100, 1, 0x200)
	if old != 8 {
		t.Errorf("FetchForStore old = %d, want 8 (remote dirty value)", old)
	}
	info := h.Coherence(0x200)
	if info.L1Copies != 1 || info.DirtyOwner == 0 {
		t.Errorf("ownership after FetchForStore: %+v", info)
	}
	// Value unchanged until CompleteStore.
	w, _, _ := h.LoadWord(done, 1, 0x200)
	if w != 8 {
		t.Errorf("value changed before CompleteStore: %d", w)
	}
	h.CompleteStore(done, 1, 0x200, 9)
	w2, _, _ := h.LoadWord(done+10, 1, 0x200)
	if w2 != 9 {
		t.Errorf("CompleteStore not visible: %d", w2)
	}
	if err := h.CheckCoherence(0x200); err != nil {
		t.Error(err)
	}
}

// CompleteStore transparently refetches when the line was displaced in
// between (the engine may flush lines during OnStore).
func TestCompleteStoreAfterDisplacement(t *testing.T) {
	h, _ := testHierarchy(t, 1)
	_, done, _ := h.FetchForStore(0, 0, 0x300)
	// Simulate engine activity evicting the line.
	h.L1(0).Invalidate(0x300)
	d := h.CompleteStore(done, 0, 0x300, 5)
	if d <= done {
		t.Errorf("refetch charged no time: %d", d)
	}
	w, _, _ := h.LoadWord(d, 0, 0x300)
	if w != 5 {
		t.Errorf("value after refetch store = %d", w)
	}
}
