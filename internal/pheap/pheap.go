// Package pheap is a simple persistent-heap allocator over a region of
// simulated NVRAM. Workloads build their data structures (hash tables,
// trees, graphs) out of addresses it hands out, exactly as an NV-heaps /
// Mnemosyne-style allocator would.
//
// Allocator *metadata* (bump pointer, free lists) is volatile, as in the
// paper's workloads, whose persistent structures are re-attached by
// recovery code rather than by a crash-consistent allocator; the data the
// benchmarks measure lives entirely in NVRAM.
package pheap

import (
	"fmt"

	"pmemlog/internal/mem"
)

// Heap allocates word-aligned blocks from [base, base+size).
type Heap struct {
	base mem.Addr
	size uint64
	off  uint64
	free map[uint64][]mem.Addr // size class (rounded bytes) -> free blocks

	allocs, frees uint64
}

// New creates a heap over the region. base must be line aligned so that
// structure layouts can reason about line sharing.
func New(base mem.Addr, size uint64) (*Heap, error) {
	if !base.IsLineAligned() {
		return nil, fmt.Errorf("pheap: base %v not line aligned", base)
	}
	if size == 0 {
		return nil, fmt.Errorf("pheap: zero size")
	}
	return &Heap{base: base, size: size, free: make(map[uint64][]mem.Addr)}, nil
}

// round returns n rounded up to a word multiple.
func round(n uint64) uint64 {
	return (n + mem.WordSize - 1) &^ (mem.WordSize - 1)
}

// Base returns the heap's base address.
func (h *Heap) Base() mem.Addr { return h.base }

// Size returns the heap's capacity in bytes.
func (h *Heap) Size() uint64 { return h.size }

// Used returns bytes handed out and never freed (high-water accounting).
func (h *Heap) Used() uint64 { return h.off }

// Alloc returns a word-aligned block of at least n bytes.
func (h *Heap) Alloc(n uint64) (mem.Addr, error) {
	if n == 0 {
		return 0, fmt.Errorf("pheap: zero allocation")
	}
	n = round(n)
	if blocks := h.free[n]; len(blocks) > 0 {
		a := blocks[len(blocks)-1]
		h.free[n] = blocks[:len(blocks)-1]
		h.allocs++
		return a, nil
	}
	if h.off+n > h.size {
		return 0, fmt.Errorf("pheap: out of memory (%d used of %d, want %d)", h.off, h.size, n)
	}
	a := h.base + mem.Addr(h.off)
	h.off += n
	h.allocs++
	return a, nil
}

// AllocLine returns a line-aligned block of at least n bytes (for
// structures that must not share lines across threads).
func (h *Heap) AllocLine(n uint64) (mem.Addr, error) {
	pad := (mem.LineSize - h.off%mem.LineSize) % mem.LineSize
	if h.off+pad+n > h.size {
		return 0, fmt.Errorf("pheap: out of memory for line-aligned alloc")
	}
	h.off += pad
	return h.Alloc((n + mem.LineSize - 1) &^ (mem.LineSize - 1))
}

// Free returns a block of n bytes to the size-class free list.
func (h *Heap) Free(a mem.Addr, n uint64) {
	n = round(n)
	h.free[n] = append(h.free[n], a)
	h.frees++
}

// SetUsed re-attaches the volatile allocator to a heap whose occupancy was
// persisted by an earlier process: the bump pointer advances to n bytes so
// future allocations never overwrite surviving data. It never moves the
// pointer backwards.
func (h *Heap) SetUsed(n uint64) error {
	if n > h.size {
		return fmt.Errorf("pheap: SetUsed(%d) exceeds heap size %d", n, h.size)
	}
	if r := round(n); r > h.off {
		h.off = r
	}
	return nil
}

// Contains reports whether [a, a+n) lies inside the heap.
func (h *Heap) Contains(a mem.Addr, n uint64) bool {
	return a >= h.base && uint64(a-h.base)+n <= h.size
}

// Stats returns (allocs, frees).
func (h *Heap) Stats() (uint64, uint64) { return h.allocs, h.frees }
