package pheap

import (
	"testing"
	"testing/quick"

	"pmemlog/internal/mem"
)

func mustHeap(t *testing.T) *Heap {
	t.Helper()
	h, err := New(0x1000, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0x1008, 1024); err == nil {
		t.Error("unaligned base accepted")
	}
	if _, err := New(0x1000, 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestAllocAlignmentAndBounds(t *testing.T) {
	h := mustHeap(t)
	a, err := h.Alloc(5) // rounds to 8
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsWordAligned() {
		t.Error("allocation not word aligned")
	}
	if !h.Contains(a, 8) {
		t.Error("allocation outside heap")
	}
	b, _ := h.Alloc(8)
	if b < a+8 {
		t.Errorf("allocations overlap: %v %v", a, b)
	}
}

func TestAllocLineAlignment(t *testing.T) {
	h := mustHeap(t)
	h.Alloc(8) // misalign the bump pointer
	a, err := h.AllocLine(100)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsLineAligned() {
		t.Errorf("AllocLine returned %v", a)
	}
}

func TestOutOfMemory(t *testing.T) {
	h, _ := New(0, 128)
	if _, err := h.Alloc(256); err == nil {
		t.Error("oversized allocation accepted")
	}
	h.Alloc(128)
	if _, err := h.Alloc(8); err == nil {
		t.Error("allocation beyond capacity accepted")
	}
}

func TestFreeListReuse(t *testing.T) {
	h := mustHeap(t)
	a, _ := h.Alloc(32)
	h.Free(a, 32)
	b, _ := h.Alloc(32)
	if a != b {
		t.Errorf("freed block not reused: %v vs %v", a, b)
	}
	allocs, frees := h.Stats()
	if allocs != 2 || frees != 1 {
		t.Errorf("stats: %d/%d", allocs, frees)
	}
}

func TestFreeListSizeClasses(t *testing.T) {
	h := mustHeap(t)
	a, _ := h.Alloc(16)
	h.Free(a, 16)
	// A different size class must not reuse the 16-byte block.
	b, _ := h.Alloc(32)
	if a == b {
		t.Error("wrong size class reused")
	}
	// Same class (after rounding) does.
	c, _ := h.Alloc(9) // rounds to 16
	if c != a {
		t.Errorf("16-byte class not reused: %v vs %v", c, a)
	}
}

// Property: any interleaving of allocs/frees yields non-overlapping live
// blocks, all inside the heap.
func TestQuickNoOverlap(t *testing.T) {
	f := func(sizes []uint16, freeMask []bool) bool {
		h, err := New(0, 1<<20)
		if err != nil {
			return false
		}
		type block struct {
			a mem.Addr
			n uint64
		}
		var live []block
		for i, sz := range sizes {
			n := uint64(sz%512) + 1
			a, err := h.Alloc(n)
			if err != nil {
				continue
			}
			rounded := (n + 7) &^ 7
			if !h.Contains(a, rounded) {
				return false
			}
			for _, b := range live {
				if a < b.a+mem.Addr(b.n) && b.a < a+mem.Addr(rounded) {
					return false // overlap
				}
			}
			if i < len(freeMask) && freeMask[i] {
				h.Free(a, n)
			} else {
				live = append(live, block{a, rounded})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
