// Package prof wires the standard pprof profilers into the command-line
// tools. All profiling is opt-in: with empty paths Start is a no-op, so
// the binaries pay nothing unless a -cpuprofile / -memprofile flag is set.
package prof

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty). The returned stop
// function flushes both; call it exactly once, on the way out (defer it
// from main, or call it from a signal handler before exiting).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: heap profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "prof: heap profile: %v\n", err)
			}
		}
	}, nil
}

// Serve exposes the net/http/pprof handlers on addr when addr is
// non-empty (off by default: the listener only exists when asked for).
// Intended for long-running servers; errors are reported via errf rather
// than killing the process, since profiling is never load-bearing.
func Serve(addr string, errf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			errf("prof: pprof listener: %v", err)
		}
	}()
}
