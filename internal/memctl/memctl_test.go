package memctl

import (
	"testing"

	"pmemlog/internal/dram"
	"pmemlog/internal/mem"
	"pmemlog/internal/nvram"
)

const nvBase = mem.Addr(1 << 20) // NVRAM mapped above DRAM

func testDevices(t *testing.T) (*nvram.Device, *dram.Device) {
	t.Helper()
	nv, err := nvram.New(nvram.Config{
		Banks: 8, RowBytes: 2048,
		RowHitCycles: 90, ReadMissCycles: 250, WriteMissCycles: 750,
		BusCyclesPerLine:   10,
		RowBufReadPJPerBit: 0.93, RowBufWritePJPerBit: 1.02,
		ArrayReadPJPerBit: 2.47, ArrayWritePJPerBit: 16.82,
	}, nvBase, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := dram.New(dram.Config{Banks: 8, AccessCycles: 125, BusCyclesLine: 5}, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return nv, dr
}

func testCtl(t *testing.T, wcb, logbuf int) *Controller {
	t.Helper()
	nv, dr := testDevices(t)
	c, err := New(Config{ReadQueue: 64, WriteQueue: 64, WCBEntries: wcb, LogBufferEntries: logbuf, QueueCycles: 2}, nv, dr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if (Config{ReadQueue: 0, WriteQueue: 1}).Validate() == nil {
		t.Error("zero read queue accepted")
	}
	if (Config{ReadQueue: 1, WriteQueue: 1, WCBEntries: -1}).Validate() == nil {
		t.Error("negative WCB accepted")
	}
}

func TestRoutingNVRAMvsDRAM(t *testing.T) {
	c := testCtl(t, 4, 8)
	var ln mem.Line
	ln.SetWord(0, 5)
	c.WriteBackLine(0, nvBase, &ln)
	c.WriteBackLine(0, 0x100, &ln) // DRAM address
	if c.NVRAM().Stats().Writes != 1 {
		t.Errorf("NVRAM writes = %d, want 1", c.NVRAM().Stats().Writes)
	}
	var got mem.Line
	c.FetchLine(100, nvBase, &got)
	if got.Word(0) != 5 {
		t.Error("NVRAM round trip failed")
	}
	c.FetchLine(100, 0x100, &got)
	if got.Word(0) != 5 {
		t.Error("DRAM round trip failed")
	}
}

func TestWriteBackHook(t *testing.T) {
	c := testCtl(t, 4, 8)
	var hookAddr mem.Addr
	var hookDone uint64
	c.SetWriteBackHook(func(a mem.Addr, d uint64) { hookAddr, hookDone = a, d })
	var ln mem.Line
	done := c.WriteBackLine(10, nvBase+64, &ln)
	if hookAddr != nvBase+64 || hookDone != done {
		t.Errorf("hook got (%v,%d), want (%v,%d)", hookAddr, hookDone, nvBase+64, done)
	}
	// DRAM writes must not fire the hook.
	hookAddr = 0
	c.WriteBackLine(10, 0x40, &ln)
	if hookAddr != 0 {
		t.Error("hook fired for DRAM write")
	}
}

func TestWCBCoalescing(t *testing.T) {
	c := testCtl(t, 4, 8)
	// Two word writes to the same line coalesce into one slot; a drain
	// produces a single NVRAM transfer of 16 bytes.
	c.UncacheableWrite(0, nvBase, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	c.UncacheableWrite(1, nvBase+8, []byte{9, 10, 11, 12, 13, 14, 15, 16})
	if c.Stats().LogCoalesced != 1 {
		t.Errorf("coalesced = %d, want 1", c.Stats().LogCoalesced)
	}
	c.DrainBuffers(10)
	nvs := c.NVRAM().Stats()
	// One coalesced drain; the 16 payload bytes occupy one 64 B burst.
	if nvs.Writes != 1 || nvs.BytesWritten != 64 {
		t.Errorf("drained %d writes / %d bytes, want 1/64", nvs.Writes, nvs.BytesWritten)
	}
	got := c.NVRAM().Image().Read(nvBase, 16)
	for i := 0; i < 16; i++ {
		if got[i] != byte(i+1) {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestWCBFIFODisplacement(t *testing.T) {
	c := testCtl(t, 2, 8)
	// Three distinct lines through a 2-slot WCB: the first line must drain.
	c.UncacheableWrite(0, nvBase, []byte{1})
	c.UncacheableWrite(1, nvBase+64, []byte{2})
	c.UncacheableWrite(2, nvBase+128, []byte{3})
	if got := c.NVRAM().Stats().Writes; got != 1 {
		t.Errorf("NVRAM writes after displacement = %d, want 1", got)
	}
	if got := c.NVRAM().Image().Read(nvBase, 1)[0]; got != 1 {
		t.Errorf("displaced slot byte = %d, want 1", got)
	}
}

func TestUnbufferedLogStallsAtNVRAMSpeed(t *testing.T) {
	c := testCtl(t, 4, 0) // no log buffer
	done1 := c.AppendLog(0, nvBase+0x1000, make([]byte, 64))
	if done1 < 90 {
		t.Errorf("unbuffered append returned %d, want >= NVRAM latency", done1)
	}
	done2 := c.AppendLog(done1, nvBase+0x1040, make([]byte, 64))
	if done2 <= done1 {
		t.Error("second unbuffered append did not serialize")
	}
}

func TestBufferedLogIsFastUntilFull(t *testing.T) {
	c := testCtl(t, 4, 4)
	now := uint64(0)
	// First 4 distinct lines: near-instant (buffered).
	for i := 0; i < 4; i++ {
		done := c.AppendLog(now, nvBase+0x1000+mem.Addr(i*64), make([]byte, 64))
		if done > now+1 {
			t.Fatalf("append %d stalled: %d -> %d", i, now, done)
		}
		now = done
	}
	// Subsequent appends displace the oldest slot into NVRAM; the producer
	// itself only waits when the write QUEUE is saturated, so a burst far
	// exceeding the 64-deep queue must eventually record stalls.
	for i := 4; i < 200; i++ {
		now = c.AppendLog(now, nvBase+0x1000+mem.Addr(i*64), make([]byte, 64))
	}
	if got := c.NVRAM().Stats().Writes; got < 190 {
		t.Errorf("displacements drained only %d lines", got)
	}
	if c.Stats().LogBufStalls == 0 {
		t.Error("a 200-line burst never saturated the 64-deep write queue")
	}
}

func TestDrainBuffersMakesDurable(t *testing.T) {
	c := testCtl(t, 4, 4)
	c.AppendLog(0, nvBase+0x2000, []byte{42})
	// Not yet drained: a crash right now loses it.
	done := c.DrainBuffers(5)
	if done <= 5 {
		t.Error("drain reported no work")
	}
	if got := c.NVRAM().Image().Read(nvBase+0x2000, 1)[0]; got != 42 {
		t.Errorf("drained byte = %d", got)
	}
}

func TestCrashRevertsInFlightWrites(t *testing.T) {
	c := testCtl(t, 4, 8)
	img := c.NVRAM().Image()
	img.WriteWord(nvBase+0x3000, 111) // pre-crash durable value

	var ln mem.Line
	ln.SetWord(0, 222)
	done := c.WriteBackLine(1000, nvBase+0x3000, &ln)

	// Crash before the write completes: the old value must reappear.
	reverted := c.Crash(done - 1)
	if reverted != 1 {
		t.Fatalf("reverted %d writes, want 1", reverted)
	}
	if got := img.ReadWord(nvBase + 0x3000); got != 111 {
		t.Errorf("post-crash word = %d, want 111", got)
	}
}

func TestCrashKeepsCompletedWrites(t *testing.T) {
	c := testCtl(t, 4, 8)
	img := c.NVRAM().Image()
	var ln mem.Line
	ln.SetWord(0, 333)
	done := c.WriteBackLine(0, nvBase+0x3000, &ln)
	if n := c.Crash(done); n != 0 {
		t.Fatalf("reverted %d completed writes", n)
	}
	if got := img.ReadWord(nvBase + 0x3000); got != 333 {
		t.Errorf("completed write lost: %d", got)
	}
}

func TestCrashRevertsOverlappingWritesInOrder(t *testing.T) {
	c := testCtl(t, 4, 8)
	img := c.NVRAM().Image()
	img.WriteWord(nvBase, 1)
	var a, b mem.Line
	a.SetWord(0, 2)
	b.SetWord(0, 3)
	c.WriteBackLine(1000, nvBase, &a)
	c.WriteBackLine(2000, nvBase, &b)
	c.Crash(999) // neither write completed
	if got := img.ReadWord(nvBase); got != 1 {
		t.Errorf("overlapping revert produced %d, want 1", got)
	}
}

func TestCrashDropsBufferedLogRecords(t *testing.T) {
	c := testCtl(t, 4, 8)
	c.AppendLog(0, nvBase+0x4000, []byte{9})
	c.Crash(1 << 40)
	if got := c.NVRAM().Image().Read(nvBase+0x4000, 1)[0]; got != 0 {
		t.Errorf("buffered log record survived crash: %d", got)
	}
}

func TestCrashClearsDRAM(t *testing.T) {
	c := testCtl(t, 4, 8)
	var ln mem.Line
	ln.SetWord(0, 7)
	c.WriteBackLine(0, 0x100, &ln)
	c.Crash(1 << 40)
	var got mem.Line
	c.FetchLine(0, 0x100, &got)
	if got.Word(0) != 0 {
		t.Error("DRAM contents survived crash")
	}
}

func TestRetirePrunesRevertRecords(t *testing.T) {
	c := testCtl(t, 4, 8)
	var ln mem.Line
	var lastDone uint64
	for i := 0; i < 2000; i++ {
		lastDone = c.WriteBackLine(uint64(i)*1000, nvBase+mem.Addr(i%64)*64, &ln)
	}
	before := len(c.pending)
	c.Retire(lastDone)
	if len(c.pending) >= before {
		t.Errorf("Retire kept %d of %d records", len(c.pending), before)
	}
	// A crash after retire must not revert the already-safe writes.
	if n := c.Crash(lastDone); n != 0 {
		t.Errorf("crash reverted %d retired writes", n)
	}
}

func TestLineCrossingPanics(t *testing.T) {
	c := testCtl(t, 4, 8)
	defer func() {
		if recover() == nil {
			t.Error("line-crossing buffered write accepted")
		}
	}()
	c.UncacheableWrite(0, nvBase+60, make([]byte, 8))
}
