// Package memctl models the memory controller between the cache hierarchy
// and the hybrid DRAM+NVRAM main memory (paper Figure 3(a)): read/write
// queues (Table II: 64/64 entries), a write-combining buffer (WCB) for
// uncacheable stores, and the paper's optional volatile log buffer — a
// FIFO that coalesces and drains hardware log records to NVRAM
// (Section IV-C).
//
// The controller is the single point where functional NVRAM state changes,
// which makes crash simulation exact: every NVRAM write is applied eagerly
// to the image but recorded with its completion cycle and prior contents,
// so a crash at cycle C reverts precisely the writes that had not yet
// reached the DIMM. Buffered-but-undrained WCB/log-buffer contents are
// simply discarded, exactly like a real volatile buffer losing power.
package memctl

import (
	"fmt"

	"pmemlog/internal/chaos"
	"pmemlog/internal/dram"
	"pmemlog/internal/mem"
	"pmemlog/internal/nvram"
	"pmemlog/internal/obs"
	"pmemlog/internal/obs/scope"
)

// Config describes the controller.
type Config struct {
	ReadQueue  int // outstanding read capacity (Table II: 64)
	WriteQueue int // outstanding write capacity (Table II: 64)
	// WCBEntries is the write-combining buffer capacity for uncacheable
	// stores (paper Section II-B: "four to six cache-line sized entries").
	WCBEntries int
	// LogBufferEntries is the hardware log buffer capacity (Section IV-C;
	// Fig 11a sweeps 0..256). 0 disables buffering: log records go straight
	// to the NVRAM bus.
	LogBufferEntries int
	// QueueCycles is the fixed controller overhead per request.
	QueueCycles uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ReadQueue <= 0 || c.WriteQueue <= 0 {
		return fmt.Errorf("memctl: queue sizes must be positive")
	}
	if c.WCBEntries < 0 || c.LogBufferEntries < 0 {
		return fmt.Errorf("memctl: buffer sizes must be non-negative")
	}
	return nil
}

// Stats aggregates controller counters. Log and data traffic are separated
// because Figure 9/10 report NVRAM write traffic and its composition.
type Stats struct {
	DataReads      uint64
	DataWrites     uint64
	DataReadBytes  uint64
	DataWriteBytes uint64
	LogWrites      uint64 // NVRAM bus transfers carrying log records
	LogWriteBytes  uint64
	LogCoalesced   uint64 // log records merged into an open buffer slot
	WCBDrains      uint64
	LogBufStalls   uint64 // appends that waited for a full log buffer
	CrashReverts   uint64 // writes undone by the last crash
}

// pendingWrite records an eagerly-applied NVRAM write for crash revert.
// The prior contents live in a fixed line-sized array (every tracked write
// is sub-line), so recording a write allocates nothing once the pending
// slice's capacity has warmed up.
type pendingWrite struct {
	start uint64 // cycle the NVRAM bus transfer began
	done  uint64
	addr  mem.Addr
	n     int
	logw  bool // write carries log records (drain path), not a data line
	old   [mem.LineSize]byte
}

// resource models k servers each busy for the duration of one request
// (bounded read/write queues): a request arriving at now starts when the
// earliest-free slot opens; commit records its completion.
type resource struct {
	free []uint64 // completion times per slot
	last int      // slot chosen by the latest start()
}

func newResource(k int) *resource { return &resource{free: make([]uint64, k)} }

// start returns the earliest start time for a request arriving at now,
// choosing the earliest-free queue slot.
func (r *resource) start(now uint64) uint64 {
	best := 0
	for i := 1; i < len(r.free); i++ {
		if r.free[i] < r.free[best] {
			best = i
		}
	}
	r.last = best
	if r.free[best] > now {
		return r.free[best]
	}
	return now
}

// commit marks the slot chosen by the preceding start busy until done.
func (r *resource) commit(done uint64) {
	r.free[r.last] = done
}

func (r *resource) reset() {
	for i := range r.free {
		r.free[i] = 0
	}
	r.last = 0
}

// wslot is one open line in a write-combining buffer.
type wslot struct {
	line  mem.Addr
	data  mem.Line
	mask  uint64 // bit i set => byte i valid
	since uint64 // enqueue cycle of the first record
}

// wbuf is a fixed-capacity FIFO of write-combining slots. A slice
// re-sliced at the head (buf = buf[1:]; append) leaks one capacity slot
// per displacement and reallocates every ~capacity appends; the ring
// reuses its backing array forever, keeping the append path
// allocation-free in steady state.
type wbuf struct {
	slots []wslot
	head  int // index of the oldest slot
	n     int
}

func newWbuf(capacity int) wbuf { return wbuf{slots: make([]wslot, capacity)} }

func (b *wbuf) at(i int) *wslot { return &b.slots[(b.head+i)%len(b.slots)] }

func (b *wbuf) newest() *wslot { return b.at(b.n - 1) }

// popFront removes and returns (by value) the oldest slot.
func (b *wbuf) popFront() wslot {
	s := b.slots[b.head]
	b.head = (b.head + 1) % len(b.slots)
	b.n--
	return s
}

// pushBack claims the next slot, zeroed and ready to fill.
func (b *wbuf) pushBack() *wslot {
	s := b.at(b.n)
	b.n++
	*s = wslot{}
	return s
}

func (b *wbuf) reset() { b.head, b.n = 0, 0 }

// Controller is the memory controller.
type Controller struct {
	cfg Config
	nv  *nvram.Device
	dr  *dram.Device

	rdQ, wrQ *resource

	wcb    wbuf // software uncacheable-store buffer (FIFO ring)
	logbuf wbuf // hardware log buffer (FIFO ring)

	maxDrainDone uint64 // completion high-water mark of ALL issued drains

	pending []pendingWrite
	wbHook  func(addr mem.Addr, done uint64)

	// chaos, when armed via SetChaos (sim construction only — pmlint's
	// chaosonly rule), injects torn log lines and partial drains at
	// crash time and write-back completion delays in flight.
	chaos *chaos.Injector

	// tracer observes drains, stalls, and data write-backs (nil or
	// disabled: one branch per event site).
	tracer    *obs.Tracer
	traceRing int

	// scope is the persistence-domain cost ledger (nil = unscoped). The
	// controller is the one component that sees EVERY data write-back
	// reaching NVRAM — forced or natural — so it owns the DataWB count;
	// the cache layer marks the forced subset.
	scope *scope.Counters

	stats Stats
}

// SetTracer attaches (or with nil detaches) the obs tracer. ring is the
// ring index controller events land in (the machine ring by
// convention — buffer drains belong to no thread).
func (c *Controller) SetTracer(t *obs.Tracer, ring int) {
	c.tracer = t
	c.traceRing = ring
}

// SetScope attaches (or with nil detaches) the persistence-domain cost
// ledger.
func (c *Controller) SetScope(s *scope.Counters) { c.scope = s }

// New creates a controller over the given devices.
func New(cfg Config, nv *nvram.Device, dr *dram.Device) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		cfg: cfg, nv: nv, dr: dr,
		rdQ:    newResource(cfg.ReadQueue),
		wrQ:    newResource(cfg.WriteQueue),
		wcb:    newWbuf(cfg.WCBEntries),
		logbuf: newWbuf(cfg.LogBufferEntries),
	}, nil
}

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// NVRAM returns the persistent device.
func (c *Controller) NVRAM() *nvram.Device { return c.nv }

// SetChaos arms (or with nil disarms) the fault injector. Only the sim
// layer's construction path may call this — never production server
// defaults (enforced by pmlint's chaosonly rule).
func (c *Controller) SetChaos(in *chaos.Injector) { c.chaos = in }

// SetWriteBackHook registers a callback invoked for every NVRAM *data*
// write with its completion cycle. The hardware logging engine uses it to
// learn when dirty persistent lines became durable, gating circular-log
// truncation (Section II-C's overwrite-safety condition).
func (c *Controller) SetWriteBackHook(fn func(addr mem.Addr, done uint64)) { c.wbHook = fn }

func (c *Controller) isNVRAM(addr mem.Addr) bool {
	return c.nv.Image().Contains(addr.Line(), mem.LineSize)
}

// trackedNVWrite applies bytes at addr to the NVRAM image, recording the
// prior contents for crash revert, with the write completing at done.
// logw marks log-record transfers (the drain path) so crash-time chaos
// can tear exactly the class of write the torn-bit scan must survive.
func (c *Controller) trackedNVWrite(start, done uint64, addr mem.Addr, bytes []byte, logw bool) {
	if len(bytes) > mem.LineSize {
		panic(fmt.Sprintf("memctl: tracked NVRAM write of %d bytes exceeds a line", len(bytes)))
	}
	img := c.nv.Image()
	c.pending = append(c.pending, pendingWrite{start: start, done: done, addr: addr, n: len(bytes), logw: logw})
	img.ReadInto(addr, c.pending[len(c.pending)-1].old[:len(bytes)])
	img.Write(addr, bytes)
}

// FetchLine implements cache.Backing: a demand line read.
func (c *Controller) FetchLine(now uint64, addr mem.Addr, dst *mem.Line) uint64 {
	addr = addr.Line()
	now += c.cfg.QueueCycles
	if c.isNVRAM(addr) {
		c.nv.Image().ReadLine(addr, dst)
		start := c.rdQ.start(now)
		done := c.nv.Access(start, addr, false, mem.LineSize)
		c.rdQ.commit(done)
		c.stats.DataReads++
		c.stats.DataReadBytes += mem.LineSize
		return done
	}
	c.dr.Image().ReadLine(addr, dst)
	return c.dr.Access(now, addr, false, mem.LineSize)
}

// WriteBackLine implements cache.Backing: a (posted) dirty line write-back.
func (c *Controller) WriteBackLine(now uint64, addr mem.Addr, src *mem.Line) uint64 {
	addr = addr.Line()
	now += c.cfg.QueueCycles
	if c.isNVRAM(addr) {
		// Log-before-data invariant (paper Section IV-C): every buffered
		// log record must reach NVRAM before any working-data line does.
		// Draining here is the conservative hardware interlock that makes
		// the invariant hold even for pathologically fast evictions.
		if d := c.DrainBuffers(now); d > now {
			now = d
		}
		start := c.wrQ.start(now)
		done := c.nv.Access(start, addr, true, mem.LineSize)
		if extra, ok := c.chaos.HitArg(chaos.SiteDelayWB, uint64(addr)); ok {
			// Chaos: this write-back completes late, reordering durability
			// across banks. Truncation gates on LineWriteDone, so a delayed
			// completion must only delay truncation, never corrupt it.
			done += extra
		}
		c.wrQ.commit(done)
		c.trackedNVWrite(start, done, addr, src[:], false)
		c.stats.DataWrites++
		c.stats.DataWriteBytes += mem.LineSize
		c.scope.NoteDataWB()
		c.tracer.Emit(c.traceRing, done, obs.KindWriteBack, 0, uint64(addr))
		if c.wbHook != nil {
			c.wbHook(addr, done)
		}
		return done
	}
	c.dr.Image().WriteLine(addr, src)
	return c.dr.Access(now, addr, true, mem.LineSize)
}

// drainSlot issues one buffered line to NVRAM and returns the completion
// cycle. The drain can never begin before the slot's latest enqueue time:
// with per-thread local clocks, a thread whose clock lags may trigger the
// drain, but the entry physically did not exist before it was buffered.
// Drains do NOT serialize on one another beyond real device contention
// (queue, banks, bus): recovery's hole-stopping scan is sound under any
// completion order, so imposing a cross-slot issue chain would only
// manufacture phantom stalls out of virtual-clock skew.
func (c *Controller) drainSlot(now uint64, s *wslot) uint64 {
	start := now
	if s.since > start {
		start = s.since
	}
	// Gather the valid byte ranges; the NVRAM transfer moves only the
	// accumulated bytes (a partially filled WCB entry is a partial write).
	n := 0
	for i := 0; i < mem.LineSize; i++ {
		if s.mask&(1<<uint(i)) != 0 {
			n++
		}
	}
	if n == 0 {
		return start
	}
	start = c.wrQ.start(start)
	done := c.nv.Access(start, s.line, true, n)
	c.wrQ.commit(done)
	c.tracer.Emit(c.traceRing, done, obs.KindBufDrain, 0, uint64(s.line))
	if done > c.maxDrainDone {
		c.maxDrainDone = done
	}
	// Apply the valid bytes functionally with revert tracking.
	for i := 0; i < mem.LineSize; {
		if s.mask&(1<<uint(i)) == 0 {
			i++
			continue
		}
		j := i
		for j < mem.LineSize && s.mask&(1<<uint(j)) != 0 {
			j++
		}
		c.trackedNVWrite(start, done, s.line+mem.Addr(i), s.data[i:j], true)
		i = j
	}
	return done
}

// appendBuffered implements the shared WCB / log-buffer behaviour:
// coalesce into an open slot for the same line, otherwise take a free
// slot, otherwise drain the oldest slot (FIFO) and reuse it. Returns the
// cycle at which the producer may continue (backpressure when the NVRAM
// write bandwidth is saturated, the effect Figure 11(a) sweeps).
func (c *Controller) appendBuffered(buf *wbuf, capacity int,
	now uint64, addr mem.Addr, bytes []byte, coalesced *uint64) uint64 {

	if !c.isNVRAM(addr) {
		panic(fmt.Sprintf("memctl: uncacheable buffered write to non-NVRAM address %v", addr))
	}
	line := addr.Line()
	off := addr.LineOffset()
	if off+len(bytes) > mem.LineSize {
		panic(fmt.Sprintf("memctl: buffered write %v+%d crosses a line", addr, len(bytes)))
	}

	// Unbuffered configuration: straight to the NVRAM bus, producer waits.
	if capacity == 0 {
		var s wslot
		s.line = line
		s.since = now
		copy(s.data[off:], bytes)
		for i := 0; i < len(bytes); i++ {
			s.mask |= 1 << uint(off+i)
		}
		return c.drainSlot(now, &s)
	}

	// Coalesce into the newest open slot only: merging into older slots
	// would reorder drains and could leave holes in the log's record
	// sequence after a crash, breaking the torn-bit recovery scan.
	if buf.n > 0 {
		if s := buf.newest(); s.line == line {
			copy(s.data[off:], bytes)
			for b := 0; b < len(bytes); b++ {
				s.mask |= 1 << uint(off+b)
			}
			if now > s.since {
				s.since = now // the slot now carries data created at `now`
			}
			if coalesced != nil {
				*coalesced++
			}
			return now + 1
		}
	}

	stall := now
	if buf.n >= capacity {
		// FIFO displacement: drain the oldest slot. The producer stalls
		// until the drain *starts* (the slot is then free) — which can
		// exceed `now` only when the write queue itself is saturated.
		drainStart := c.wrQ.start(now)
		if drainStart > now {
			c.stats.LogBufStalls++
			c.tracer.Emit(c.traceRing, now, obs.KindBufStall, 0, drainStart-now)
		}
		oldest := buf.popFront()
		c.drainSlot(now, &oldest)
		stall = drainStart
	}
	s := buf.pushBack()
	s.line = line
	s.since = now
	copy(s.data[off:], bytes)
	for i := 0; i < len(bytes); i++ {
		s.mask |= 1 << uint(off+i)
	}
	return stall + 1
}

// UncacheableWrite sends a software store around the caches through the
// WCB (the path software logging uses for its uncacheable log updates,
// Section II-B). Returns the cycle the store leaves the core.
func (c *Controller) UncacheableWrite(now uint64, addr mem.Addr, bytes []byte) uint64 {
	done := c.appendBuffered(&c.wcb, c.cfg.WCBEntries, now, addr, bytes, &c.stats.LogCoalesced)
	c.stats.LogWrites++
	c.stats.LogWriteBytes += uint64(len(bytes))
	return done
}

// AppendLog sends a hardware log record through the log buffer
// (Section IV-C). Returns the cycle the record is accepted — the HWL
// engine's only stall point.
func (c *Controller) AppendLog(now uint64, addr mem.Addr, bytes []byte) uint64 {
	done := c.appendBuffered(&c.logbuf, c.cfg.LogBufferEntries, now, addr, bytes, &c.stats.LogCoalesced)
	c.stats.LogWrites++
	c.stats.LogWriteBytes += uint64(len(bytes))
	return done
}

// DrainBuffers flushes the WCB and the log buffer (memory barrier / fence
// semantics) and returns the cycle everything — including drains issued
// earlier by displacement that are still in flight across banks — is
// durable in NVRAM. Waiting on the completion high-water mark is what lets
// the recovery scan stop at the first hole: a durably-acknowledged commit
// (or a data write-back, which uses the same interlock) can never be
// ordered after a lost record.
func (c *Controller) DrainBuffers(now uint64) uint64 {
	for i := 0; i < c.wcb.n; i++ {
		c.drainSlot(now, c.wcb.at(i))
		c.stats.WCBDrains++
	}
	c.wcb.reset()
	for i := 0; i < c.logbuf.n; i++ {
		c.drainSlot(now, c.logbuf.at(i))
	}
	c.logbuf.reset()
	if c.maxDrainDone > now {
		return c.maxDrainDone
	}
	return now
}

// LogDrainDone returns the completion high-water mark of every log/WCB
// drain issued so far — what an mfence between a software log update and
// its data store waits on.
func (c *Controller) LogDrainDone() uint64 { return c.maxDrainDone }

// InFlightLine reports whether any NVRAM write touching addr's line is
// still in flight (applied to the image but completing after now). The
// hardware logging engine consults this before truncating log records: a
// line is only durable once its write-back has actually reached the DIMM.
func (c *Controller) InFlightLine(addr mem.Addr, now uint64) bool {
	line := addr.Line()
	for i := len(c.pending) - 1; i >= 0; i-- {
		p := &c.pending[i]
		if p.done > now && p.addr.Line() == line {
			return true
		}
	}
	return false
}

// LineWriteDone returns the latest completion cycle among in-flight NVRAM
// writes touching addr's line (0 if none).
func (c *Controller) LineWriteDone(addr mem.Addr) uint64 {
	line := addr.Line()
	var max uint64
	for i := range c.pending {
		if c.pending[i].addr.Line() == line && c.pending[i].done > max {
			max = c.pending[i].done
		}
	}
	return max
}

// Retire discards revert records for writes complete by safeCycle (no
// crash can be injected before the current global time).
func (c *Controller) Retire(safeCycle uint64) {
	if len(c.pending) < 1024 {
		return
	}
	kept := c.pending[:0]
	for i := range c.pending {
		if c.pending[i].done > safeCycle {
			kept = append(kept, c.pending[i])
		}
	}
	c.pending = kept
}

// Crash simulates power loss at the given cycle: buffered-but-undrained
// WCB/log-buffer contents vanish, and every NVRAM write whose DIMM transfer
// had not completed is reverted (in reverse application order, restoring
// overlapping writes correctly). Returns the number of reverted writes.
// DRAM contents are cleared by the caller via the dram device.
//
// With a chaos injector armed, power loss is made messier — strictly
// within the states the design claims to survive:
//
//   - torn-log-line: an in-flight log transfer keeps a random byte
//     prefix on the DIMM instead of reverting entirely (a partial line
//     burst at power loss). The torn-bit/magic/pass-stamp decode must
//     reject the fragment.
//   - partial-drain: a buffered-but-undrained log slot lands partially
//     in NVRAM, as if its drain had started and lost power mid-burst.
//
// Both only ever touch writes that were NOT durably acknowledged (the
// DrainBuffers high-water interlock orders every ack after its drains
// complete), so no injected state may cost an acked transaction.
func (c *Controller) Crash(atCycle uint64) int {
	if c.chaos != nil {
		c.chaosPartialDrains(atCycle)
	}
	c.wcb.reset()
	c.logbuf.reset()
	img := c.nv.Image()
	reverted := 0
	for i := len(c.pending) - 1; i >= 0; i-- {
		p := &c.pending[i]
		if p.done > atCycle {
			keep := 0
			// Tearing is physical only for a burst actually on the bus at
			// power loss: a write whose simulated START lies past the
			// crash cycle never reached the DIMM at all (the producer's
			// local clock ran ahead of the crash) and must revert whole —
			// a partial image of it would fabricate a transfer that never
			// began, e.g. clobbering a reused log slot whose reuse was
			// gated on a head persist that also never started.
			if p.logw && p.n > mem.WordSize && p.start <= atCycle {
				if frac, ok := c.chaos.HitFrac(chaos.SiteTornLogLine, uint64(p.addr)); ok {
					// Keep a non-empty strict prefix of whole 8-byte
					// write units: the persistence domain tears at word
					// granularity, never inside a word.
					keep = 1 + int(frac*float64(p.n-1))
					keep &^= mem.WordSize - 1
					if keep == 0 {
						keep = mem.WordSize
					}
					if keep >= p.n {
						keep = p.n - mem.WordSize
					}
				}
			}
			img.Write(p.addr+mem.Addr(keep), p.old[keep:p.n])
			reverted++
		}
	}
	c.pending = c.pending[:0]
	c.stats.CrashReverts += uint64(reverted)
	c.rdQ.reset()
	c.wrQ.reset()
	c.maxDrainDone = 0
	c.nv.ResetTiming()
	if c.dr != nil {
		c.dr.PowerLoss()
	}
	return reverted
}

// chaosPartialDrains lets power loss catch a log-buffer drain mid-burst:
// for each buffered slot the injector picks, a prefix of its valid bytes
// is applied to the image (no revert tracking — the crash is final)
// before the buffers are discarded. Only masked bytes are touched, so a
// slot that coalesced behind an already-durable record can never corrupt
// that record's bytes.
func (c *Controller) chaosPartialDrains(atCycle uint64) {
	img := c.nv.Image()
	for i := 0; i < c.logbuf.n; i++ {
		s := c.logbuf.at(i)
		// A slot whose latest enqueue lies past the crash cycle was (at
		// least partly) buffered by a producer whose local clock ran
		// ahead of the power loss; architecturally those bytes never
		// entered the buffer, so the slot just vanishes.
		if s.since > atCycle {
			continue
		}
		frac, ok := c.chaos.HitFrac(chaos.SitePartialDrain, uint64(s.line))
		if !ok {
			continue
		}
		// The drain burst lands whole 8-byte write units: apply the
		// masked bytes of a strict prefix of the line's words, so the
		// torn state is one the persistence domain can really produce.
		keepWords := 1 + int(frac*float64(mem.WordsPerLine-2))
		if keepWords >= mem.WordsPerLine {
			keepWords = mem.WordsPerLine - 1
		}
		for b := 0; b < keepWords*mem.WordSize; b++ {
			if s.mask&(1<<uint(b)) == 0 {
				continue
			}
			img.Write(s.line+mem.Addr(b), s.data[b:b+1])
		}
	}
}
