package memctl

import (
	"testing"

	"pmemlog/internal/chaos"
	"pmemlog/internal/mem"
)

func tornInjector(sites map[chaos.Site]chaos.SiteConfig) *chaos.Injector {
	return chaos.New(chaos.Plan{Seed: 1, Sites: sites})
}

// TestCrashTornLogLineKeepsWordPrefix: with the torn-log-line site
// armed, an in-flight log transfer keeps a non-empty strict prefix of
// whole 8-byte write units — the only torn shape the persistence
// domain can physically produce — and the remainder reverts.
func TestCrashTornLogLineKeepsWordPrefix(t *testing.T) {
	c := testCtl(t, 4, 8)
	c.SetChaos(tornInjector(map[chaos.Site]chaos.SiteConfig{
		chaos.SiteTornLogLine: {Prob: 1},
	}))
	line := nvBase + 0x4000
	payload := make([]byte, mem.LineSize)
	for i := range payload {
		payload[i] = 0xFF
	}
	c.AppendLog(0, line, payload)
	done := c.DrainBuffers(100)

	c.Crash(done - 1) // power loss mid-burst
	got := c.NVRAM().Image().Read(line, mem.LineSize)
	prefix := 0
	for prefix < len(got) && got[prefix] == 0xFF {
		prefix++
	}
	if prefix == 0 || prefix >= int(mem.LineSize) {
		t.Fatalf("torn prefix = %d bytes, want a non-empty strict prefix", prefix)
	}
	if prefix%int(mem.WordSize) != 0 {
		t.Fatalf("torn prefix = %d bytes: tears inside an 8-byte write unit", prefix)
	}
	for i := prefix; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %#x after the tear point, want reverted 0", i, got[i])
		}
	}
}

// TestCrashTearGatedOnTransferStart: a write whose bus transfer START
// lies past the crash cycle never reached the DIMM — even with tearing
// armed it must revert whole, or the injector would fabricate
// transfers that architecturally never began (e.g. destroying an old
// record in a reused log slot whose reuse was never unlocked).
func TestCrashTearGatedOnTransferStart(t *testing.T) {
	c := testCtl(t, 4, 8)
	c.SetChaos(tornInjector(map[chaos.Site]chaos.SiteConfig{
		chaos.SiteTornLogLine: {Prob: 1},
	}))
	line := nvBase + 0x4000
	payload := make([]byte, mem.LineSize)
	for i := range payload {
		payload[i] = 0xAB
	}
	// The producer's local clock ran ahead: it issued the drain at cycle
	// 50000, but power was lost at cycle 10.
	c.AppendLog(50000, line, payload)
	c.DrainBuffers(50000)

	c.Crash(10)
	got := c.NVRAM().Image().Read(line, mem.LineSize)
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x survived a transfer that never began", i, b)
		}
	}
}

// TestCrashPartialDrainLandsWordPrefix: the partial-drain site lets a
// buffered-but-undrained slot land a word-aligned prefix in NVRAM; a
// slot buffered only after the crash cycle must vanish entirely.
func TestCrashPartialDrainLandsWordPrefix(t *testing.T) {
	c := testCtl(t, 4, 8)
	c.SetChaos(tornInjector(map[chaos.Site]chaos.SiteConfig{
		chaos.SitePartialDrain: {Prob: 1},
	}))
	early := nvBase + 0x4000
	late := nvBase + 0x5000
	payload := make([]byte, mem.LineSize)
	for i := range payload {
		payload[i] = 0xCD
	}
	c.AppendLog(0, early, payload)    // buffered before the crash
	c.AppendLog(90000, late, payload) // producer clock past the crash
	c.Crash(1000)                     // no drain ever issued

	img := c.NVRAM().Image()
	got := img.Read(early, mem.LineSize)
	prefix := 0
	for prefix < len(got) && got[prefix] == 0xCD {
		prefix++
	}
	if prefix == 0 || prefix >= int(mem.LineSize) {
		t.Fatalf("partial drain landed %d bytes, want a non-empty strict prefix", prefix)
	}
	if prefix%int(mem.WordSize) != 0 {
		t.Fatalf("partial drain prefix = %d bytes: tears inside a write unit", prefix)
	}
	for i := prefix; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %#x past the drain point", i, got[i])
		}
	}
	for i, b := range img.Read(late, mem.LineSize) {
		if b != 0 {
			t.Fatalf("post-crash slot leaked byte %d = %#x into NVRAM", i, b)
		}
	}
}

// TestCrashUnarmedMatchesBaseline: with no injector, Crash behaves
// exactly as before the chaos plane existed — buffered slots vanish,
// in-flight writes revert whole.
func TestCrashUnarmedMatchesBaseline(t *testing.T) {
	c := testCtl(t, 4, 8)
	line := nvBase + 0x4000
	payload := make([]byte, mem.LineSize)
	for i := range payload {
		payload[i] = 0xEE
	}
	c.AppendLog(0, line, payload)
	done := c.DrainBuffers(100)
	c.Crash(done - 1)
	for i, b := range c.NVRAM().Image().Read(line, mem.LineSize) {
		if b != 0 {
			t.Fatalf("unarmed crash left byte %d = %#x", i, b)
		}
	}
}
