package cpu

import "testing"

func newCore(t *testing.T) *Core {
	t.Helper()
	c, err := New(Config{ClockGHz: 2.5, IssueCPI16: 8})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	if _, err := New(Config{ClockGHz: 0, IssueCPI16: 8}); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := New(Config{ClockGHz: 1, IssueCPI16: 0}); err == nil {
		t.Error("zero CPI accepted")
	}
}

func TestComputeAdvancesAtIssueRate(t *testing.T) {
	c := newCore(t)
	c.Compute(100) // CPI 0.5 => 50 cycles
	if c.Now() != 50 {
		t.Errorf("after 100 instrs: cycle %d, want 50", c.Now())
	}
	if c.Stats().Instructions != 100 {
		t.Errorf("instructions = %d", c.Stats().Instructions)
	}
}

func TestFractionalCPIAccumulates(t *testing.T) {
	c := newCore(t)
	for i := 0; i < 3; i++ {
		c.Compute(1) // 0.5 cycles each
	}
	if c.Now() != 1 { // 1.5 cycles, integer part 1
		t.Errorf("after 3 half-cycle instrs: cycle %d, want 1", c.Now())
	}
	c.Compute(1)
	if c.Now() != 2 {
		t.Errorf("after 4: cycle %d, want 2", c.Now())
	}
}

func TestMemoryOpsAdvanceToCompletion(t *testing.T) {
	c := newCore(t)
	c.Load(115)
	if c.Now() != 115 {
		t.Errorf("load: cycle %d, want 115", c.Now())
	}
	c.Store(120)
	if c.Now() != 120 {
		t.Errorf("store: cycle %d, want 120", c.Now())
	}
	s := c.Stats()
	if s.LoadOps != 1 || s.StoreOps != 1 || s.Instructions != 2 {
		t.Errorf("stats: %+v", s)
	}
	// A completion time in the past must not move the clock backwards.
	c.Load(10)
	if c.Now() < 120 {
		t.Error("clock moved backwards")
	}
}

func TestFenceRecordsStall(t *testing.T) {
	c := newCore(t)
	c.Compute(20) // cycle 10
	c.Fence(110)
	s := c.Stats()
	if c.Now() != 110 || s.StallCycles != 100 || s.FenceOps != 1 {
		t.Errorf("fence: now=%d stall=%d fences=%d", c.Now(), s.StallCycles, s.FenceOps)
	}
}

func TestIPC(t *testing.T) {
	c := newCore(t)
	c.Compute(200) // 100 cycles, IPC 2
	if got := c.Stats().IPC(); got != 2.0 {
		t.Errorf("IPC = %v, want 2", got)
	}
}

func TestCyclesToSeconds(t *testing.T) {
	cfg := Config{ClockGHz: 2.5, IssueCPI16: 8}
	if got := cfg.CyclesToSeconds(2_500_000_000); got != 1.0 {
		t.Errorf("2.5e9 cycles = %v s, want 1", got)
	}
}
