// Package cpu models the cores of the simulated processor (Table II:
// 4 cores at 2.5 GHz, 2 threads per core, Intel Core i7 class). The model
// is cycle-accounting rather than pipeline-structural: non-memory
// instructions retire at a fixed issue rate, memory operations charge the
// completion time the cache hierarchy reports, and fences stall the thread
// until a given cycle. This is the level of detail the paper's *relative*
// results depend on — the cost of software logging is its extra
// instructions, extra memory operations, and serializing fences, all of
// which are explicit here.
package cpu

import "fmt"

// Config describes one hardware thread's timing.
type Config struct {
	ClockGHz float64 // cycle time = 1/ClockGHz ns (Table II: 2.5)
	// IssueCPI16 is the base cost of a non-memory instruction in 1/16ths of
	// a cycle (8 => CPI 0.5, an IPC-2 out-of-order core on ALU work).
	IssueCPI16 uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ClockGHz <= 0 {
		return fmt.Errorf("cpu: ClockGHz must be positive")
	}
	if c.IssueCPI16 == 0 {
		return fmt.Errorf("cpu: IssueCPI16 must be positive")
	}
	return nil
}

// CyclesToSeconds converts a cycle count to wall-clock seconds.
func (c Config) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / (c.ClockGHz * 1e9)
}

// Stats aggregates a thread's activity.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	LoadOps      uint64
	StoreOps     uint64
	FenceOps     uint64
	StallCycles  uint64 // cycles spent waiting on fences/backpressure
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Core is one hardware thread's clock and retirement counters.
type Core struct {
	cfg      Config
	cycles16 uint64 // local clock in 1/16ths of a cycle
	stats    Stats
}

// New creates a core at cycle zero.
func New(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{cfg: cfg}, nil
}

// Now returns the thread's local clock in cycles.
func (c *Core) Now() uint64 { return c.cycles16 / 16 }

// Stats returns the counters with Cycles set to the current clock.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.Now()
	return s
}

// Compute retires n non-memory instructions.
func (c *Core) Compute(n uint64) {
	c.cycles16 += n * c.cfg.IssueCPI16
	c.stats.Instructions += n
}

// Load accounts one load instruction whose data arrives at done (cycles).
func (c *Core) Load(done uint64) {
	c.stats.Instructions++
	c.stats.LoadOps++
	c.advanceTo(done)
}

// Store accounts one store instruction completing (from the core's view —
// entering the store path) at done.
func (c *Core) Store(done uint64) {
	c.stats.Instructions++
	c.stats.StoreOps++
	c.advanceTo(done)
}

// Fence retires a fence instruction and stalls until done.
func (c *Core) Fence(done uint64) {
	c.stats.Instructions++
	c.stats.FenceOps++
	c.StallUntil(done)
}

// Instr retires n instructions that overlap memory activity already
// charged elsewhere (e.g. the instruction slot of clwb).
func (c *Core) Instr(n uint64) { c.Compute(n) }

// StallUntil advances the clock to cycle (no instruction retired),
// recording the dead time as stall cycles.
func (c *Core) StallUntil(cycle uint64) {
	before := c.Now()
	c.advanceTo(cycle)
	if after := c.Now(); after > before {
		c.stats.StallCycles += after - before
	}
}

func (c *Core) advanceTo(cycle uint64) {
	if t := cycle * 16; t > c.cycles16 {
		c.cycles16 = t
	}
}
