package energy

import "testing"

func TestAccount(t *testing.T) {
	m := Model{ProcPJPerInstr: 100, L1PJ: 10, L2PJ: 50}
	b := m.Account(1000, 500, 20, 12345)
	wantProc := 1000*100.0 + 500*10.0 + 20*50.0
	if b.ProcessorPJ != wantProc {
		t.Errorf("processor = %v, want %v", b.ProcessorPJ, wantProc)
	}
	if b.MemoryPJ != 12345 {
		t.Errorf("memory = %v", b.MemoryPJ)
	}
	if b.TotalPJ() != wantProc+12345 {
		t.Errorf("total = %v", b.TotalPJ())
	}
}

func TestDefaultIsSane(t *testing.T) {
	m := Default()
	if m.ProcPJPerInstr <= 0 || m.L1PJ <= 0 || m.L2PJ <= m.L1PJ {
		t.Errorf("default model implausible: %+v", m)
	}
}
