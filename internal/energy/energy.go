// Package energy provides the McPAT-substitute dynamic-energy accounting
// (see DESIGN.md §2). The NVRAM device already accumulates memory dynamic
// energy per access from the Table II pJ/bit figures; this package adds a
// processor-side energy-per-instruction model and combines the two into
// the quantities Figures 8 and 10 report.
//
// The paper observes that "processor dynamic energy is not significantly
// altered by different configurations" and therefore reports *memory*
// dynamic energy; we expose both so that claim can be checked.
package energy

// Model holds the energy coefficients.
type Model struct {
	// ProcPJPerInstr is the average processor dynamic energy per retired
	// instruction (core + cache access mix). The absolute value only
	// scales the processor bars; relative results are insensitive to it.
	ProcPJPerInstr float64
	// L1PJ / L2PJ are per-access cache energies, charged per hit level.
	L1PJ float64
	L2PJ float64
}

// Default returns coefficients for a 22 nm Core i7-class part
// (order-of-magnitude McPAT values).
func Default() Model {
	return Model{ProcPJPerInstr: 300, L1PJ: 20, L2PJ: 120}
}

// Breakdown is the dynamic-energy report for one run.
type Breakdown struct {
	ProcessorPJ float64 // instructions × EPI + cache access energy
	MemoryPJ    float64 // NVRAM dynamic energy (device-accumulated)
}

// TotalPJ returns processor + memory dynamic energy.
func (b Breakdown) TotalPJ() float64 { return b.ProcessorPJ + b.MemoryPJ }

// Account computes the processor-side energy for a run.
func (m Model) Account(instructions, l1Accesses, l2Accesses uint64, memoryPJ float64) Breakdown {
	return Breakdown{
		ProcessorPJ: float64(instructions)*m.ProcPJPerInstr +
			float64(l1Accesses)*m.L1PJ + float64(l2Accesses)*m.L2PJ,
		MemoryPJ: memoryPJ,
	}
}
