package lint

import (
	"go/ast"
	"go/types"

	"pmemlog/internal/lint/flow"
)

// Deferredunlock proves that every sync.Mutex/RWMutex acquisition is
// released on every panic-free exit path of its scope. The persist
// domain leans on small critical sections (flight-recorder rings,
// metrics registries, the chaos injector's step hook) that are entered
// from the shard loop's hot path: a lock leaked on an early-return arm
// deadlocks the next batch, which stalls acks and looks exactly like a
// wedged log. Release credit is a matching Unlock/RUnlock on the same
// receiver expression — inline on every path, or registered with defer
// before/at the acquisition. Violations report the leaking path.
var Deferredunlock = &Analyzer{
	Name: "deferredunlock",
	Doc:  "every mutex Lock/RLock is released (inline on all exit paths, or by defer) in its scope",
	Run:  runDeferredunlock,
}

func runDeferredunlock(pass *Pass) {
	for _, file := range pass.Files {
		for _, fd := range funcScopes(file) {
			for _, sc := range scopesOf(fd) {
				checkUnlockScope(pass, sc)
			}
		}
	}
}

// lockCall matches a sync.Mutex/RWMutex method call and renders its
// receiver expression ("sh.mu") as the pairing key.
func lockCall(info *types.Info, call *ast.CallExpr, names ...string) (recv string, ok bool) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	match := false
	for _, n := range names {
		if fn.Name() == n {
			match = true
			break
		}
	}
	if !match {
		return "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	return types.ExprString(sel.X), true
}

func checkUnlockScope(pass *Pass, sc scope) {
	g := pass.Mod.Graph(sc.body())
	type site struct {
		call *ast.CallExpr
		n    ast.Node
		b    *flow.Block
		i    int
		recv string
		kind string // "Lock" or "RLock"
	}
	var locks []site
	var deferUnlocks []site
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				for _, call := range callsIn(n, true) {
					if recv, ok := lockCall(pass.Info, call, "Unlock", "RUnlock"); ok {
						fn := calleeOf(pass.Info, call)
						deferUnlocks = append(deferUnlocks, site{call, n, b, i, recv, fn.Name()})
					}
				}
				continue
			}
			for _, call := range callsIn(n, false) {
				if recv, ok := lockCall(pass.Info, call, "Lock", "RLock"); ok {
					fn := calleeOf(pass.Info, call)
					locks = append(locks, site{call, n, b, i, recv, fn.Name()})
				}
			}
		}
	}
	if len(locks) == 0 {
		return
	}
	dom := flow.Dominators(g)
	for _, lk := range locks {
		unlockName := "Unlock"
		if lk.kind == "RLock" {
			unlockName = "RUnlock"
		}
		covered := false
		for _, du := range deferUnlocks {
			if du.recv != lk.recv || du.kind != unlockName {
				continue
			}
			if (du.b == lk.b && du.i < lk.i) || (du.b != lk.b && dom.Dominates(du.b, lk.b)) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		releaseCredit := func(n ast.Node) bool {
			// An inline unlock or a defer registered after the lock both
			// release by scope exit.
			_, isDefer := n.(*ast.DeferStmt)
			for _, call := range callsIn(n, isDefer) {
				if recv, ok := lockCall(pass.Info, call, unlockName); ok && recv == lk.recv {
					return true
				}
			}
			return false
		}
		chain, escapes := g.Escape(lk.n, releaseCredit)
		if !escapes {
			continue
		}
		pass.Reportf(lk.call.Pos(),
			"%s: %s.%s has a path to return without %s.%s (%s); a leaked lock wedges the next entrant",
			sc.name, lk.recv, lk.kind, lk.recv, unlockName, flow.PathString(pass.Fset, chain, g.Exit))
	}
}
