// Package flow is pmlint's control-flow engine: an intraprocedural CFG
// builder over go/ast, dominator and post-dominator trees, and path
// searches that either prove an ordering fact on every path or return
// the concrete path that violates it.
//
// The paper's contract is an ordering ("the undo+redo record is durable
// before the data it describes; the ack follows the flush"), and the
// failure mode that matters is path-shaped: a persist skipped on an
// error branch, an ack issued before the save on one arm of a switch.
// Lexical (source-order) checks cannot see those paths; a CFG can. The
// analyzers in package lint build their log-before-data, ack-after-
// durable, quiesce-before-persist and begin/commit-pairing proofs on
// this package.
//
// The builder is syntax-only (no type information): it handles
// if/for/range/switch/select, labeled break and continue, goto (into
// and out of loops), defer, and panic/return termination. Function
// literals are opaque expressions — a closure's body is its own graph,
// never spliced into the enclosing function's.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of statements. Every node in Nodes
// executes, in order, whenever control enters the block (panic aside:
// a panicking call ends its block).
type Block struct {
	// Index is the block's creation order, Entry first.
	Index int
	// Nodes are the statements (and inline condition/tag expressions)
	// the block executes.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
	// Panics marks a block whose edge to Exit models panic unwinding,
	// not a normal return.
	Panics bool
	// kind is a short label for tests and debugging ("if.then", ...).
	kind string
}

// Kind returns the block's debug label.
func (b *Block) Kind() string { return b.kind }

// Pos returns the position of the block's first node, or token.NoPos.
func (b *Block) Pos() token.Pos {
	if len(b.Nodes) == 0 {
		return token.NoPos
	}
	return b.Nodes[0].Pos()
}

// Graph is one function body's control-flow graph.
type Graph struct {
	Entry *Block
	// Exit is the single sink: normal returns and fall-off-the-end edges
	// lead here, as do panic edges (marked on the panicking block).
	Exit   *Block
	Blocks []*Block

	blockOf map[ast.Node]*Block
	idxOf   map[ast.Node]int
}

// BlockOf returns the block holding statement-level node n and n's index
// within it, or (nil, -1) if n was not registered by the builder.
func (g *Graph) BlockOf(n ast.Node) (*Block, int) {
	b, ok := g.blockOf[n]
	if !ok {
		return nil, -1
	}
	return b, g.idxOf[n]
}

// NumEdges counts the graph's edges (for tests).
func (g *Graph) NumEdges() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Succs)
	}
	return n
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{
		blockOf: make(map[ast.Node]*Block),
		idxOf:   make(map[ast.Node]int),
	}
	b := &builder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = g.Entry
	b.stmt(body)
	b.goTo(g.Exit)
	// A goto to a label that was never declared parses but does not
	// type-check; any pending edges were already wired when the label
	// block was created on first reference.
	return g
}

type labelInfo struct {
	block *Block // the labeled statement's block (goto/continue target)
}

type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type builder struct {
	g      *Graph
	cur    *Block // nil after a terminator (return/panic/branch)
	frames []frame
	labels map[string]*labelInfo

	// pendingLabel is the label wrapping the next loop/switch/select,
	// consumed by that construct's frame.
	pendingLabel string
	// fallTo is the next case clause's block while building a switch
	// clause body (the fallthrough target).
	fallTo *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, starting a fresh (unreachable)
// block if the previous one was terminated.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.g.blockOf[n] = b.cur
	b.g.idxOf[n] = len(b.cur.Nodes)
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// goTo terminates the current block with an edge to target.
func (b *builder) goTo(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// startBlock makes blk current (creating the fall-through join point).
func (b *builder) startBlock(blk *Block) { b.cur = blk }

// takeLabel consumes the pending label for a loop/switch/select frame.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock returns (creating on demand) the block a label names, so a
// forward goto and its eventual labeled statement meet at one block.
func (b *builder) labelBlock(name string) *Block {
	if li, ok := b.labels[name]; ok {
		return li.block
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = &labelInfo{block: blk}
	return blk
}

// findFrame resolves a break/continue target.
func (b *builder) findFrame(label string, needContinue bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// isPanicCall reports whether s is a call to the predeclared panic.
// Syntax-only: a shadowed panic identifier would be misread, which the
// analyzers tolerate (it only shortens proofs, never fabricates one).
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	if _, isLoopish := s.(*ast.LabeledStmt); !isLoopish {
		// A label applies only to the statement it prefixes.
		switch s.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		default:
			b.pendingLabel = ""
		}
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t)
		}

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.goTo(lb)
		b.startBlock(lb)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		b.stmtAsNode(s.Init)
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		post := b.newBlock("if.done")
		b.edge(cond, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock("if.else")
			b.edge(cond, els)
		} else {
			b.edge(cond, post)
		}
		b.startBlock(then)
		b.stmt(s.Body)
		b.goTo(post)
		if s.Else != nil {
			b.startBlock(els)
			b.stmt(s.Else)
			b.goTo(post)
		}
		b.startBlock(post)

	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmtAsNode(s.Init)
		head := b.newBlock("for.head")
		b.goTo(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		headEnd := b.cur // cond lives here (== head unless add resurrected)
		body := b.newBlock("for.body")
		post := b.newBlock("for.done")
		b.edge(headEnd, body)
		if s.Cond != nil {
			b.edge(headEnd, post)
		}
		latch := head
		if s.Post != nil {
			latch = b.newBlock("for.latch")
		}
		b.frames = append(b.frames, frame{label: label, breakTo: post, continueTo: latch})
		b.startBlock(body)
		b.stmt(s.Body)
		b.goTo(latch)
		b.frames = b.frames[:len(b.frames)-1]
		if s.Post != nil {
			b.startBlock(latch)
			b.stmtAsNode(s.Post)
			b.goTo(head)
		}
		b.startBlock(post)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.goTo(head)
		b.startBlock(head)
		b.add(s) // the iteration operation itself
		body := b.newBlock("range.body")
		post := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, post)
		b.frames = append(b.frames, frame{label: label, breakTo: post, continueTo: head})
		b.startBlock(body)
		b.stmt(s.Body)
		b.goTo(head)
		b.frames = b.frames[:len(b.frames)-1]
		b.startBlock(post)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmtAsNode(s.Init)
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitch(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmtAsNode(s.Init)
		b.add(s.Assign)
		b.buildSwitch(label, s.Body, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		if sel == nil {
			sel = b.newBlock("unreachable")
			b.cur = sel
		}
		post := b.newBlock("select.done")
		b.frames = append(b.frames, frame{label: label, breakTo: post})
		hasDefault := false
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(sel, blk)
			b.startBlock(blk)
			if cc.Comm == nil {
				hasDefault = true
			} else {
				b.stmt(cc.Comm)
			}
			for _, t := range cc.Body {
				b.stmt(t)
			}
			b.goTo(post)
		}
		_ = hasDefault // a default clause is just another case edge
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = nil
		b.startBlock(post)

	case *ast.ReturnStmt:
		b.add(s)
		b.goTo(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.findFrame(label, false); f != nil {
				b.goTo(f.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.findFrame(label, true); f != nil {
				b.goTo(f.continueTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.goTo(b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.goTo(b.fallTo)
			} else {
				b.cur = nil
			}
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s) {
			b.cur.Panics = true
			b.goTo(b.g.Exit)
		}

	default:
		// DeclStmt, AssignStmt, SendStmt, IncDecStmt, DeferStmt, GoStmt,
		// EmptyStmt: straight-line nodes. Defer registration is a node so
		// analyzers can reason about where it was reached.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// stmtAsNode records an init/post statement as a plain node of the
// current block (these simple statements cannot branch).
func (b *builder) stmtAsNode(s ast.Stmt) {
	if s == nil {
		return
	}
	b.add(s)
}

// buildSwitch shares the clause/fallthrough/join wiring of expression
// and type switches. The tag (or assign) has already been added to the
// current block.
func (b *builder) buildSwitch(label string, body *ast.BlockStmt, _ *Block) {
	sw := b.cur
	if sw == nil {
		sw = b.newBlock("unreachable")
		b.cur = sw
	}
	post := b.newBlock("switch.done")
	b.frames = append(b.frames, frame{label: label, breakTo: post})

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("switch.case")
		if cc.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		cc := cc.(*ast.CaseClause)
		b.edge(sw, blocks[i])
		b.startBlock(blocks[i])
		savedFall := b.fallTo
		if i+1 < len(clauses) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = nil
		}
		for _, t := range cc.Body {
			b.stmt(t)
		}
		b.fallTo = savedFall
		b.goTo(post)
	}
	if !hasDefault {
		b.edge(sw, post)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = nil
	b.startBlock(post)
}
