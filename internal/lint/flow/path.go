package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Path searches: either prove that every path is blocked by a node
// satisfying `stop`, or hand back one concrete unblocked path so the
// analyzer can print the exact branch sequence that breaks the
// invariant.

// Escape finds a path from just after node `after` to the graph's
// normal exit on which no node satisfies stop. Paths that leave through
// a panic (an unwind, not a return) do not count as escapes. It returns
// the block chain from after's block to the exit and true, or nil and
// false when every normal exit is blocked — the "proved on all paths"
// case.
func (g *Graph) Escape(after ast.Node, stop func(ast.Node) bool) ([]*Block, bool) {
	b, i := g.BlockOf(after)
	if b == nil {
		return nil, false
	}
	return g.search(b, i+1, stop)
}

// EscapeFromEntry is Escape starting at the function entry: it finds a
// path from entry to the normal exit avoiding stop, proving (when it
// fails) that stop-nodes cover every path through the function.
func (g *Graph) EscapeFromEntry(stop func(ast.Node) bool) ([]*Block, bool) {
	return g.search(g.Entry, 0, stop)
}

// search runs a DFS from (start, firstIdx) to the exit. A block is
// traversable when none of its scanned nodes satisfy stop; a block that
// panics does not yield a normal exit.
func (g *Graph) search(start *Block, firstIdx int, stop func(ast.Node) bool) ([]*Block, bool) {
	blockedFrom := func(b *Block, from int) bool {
		for _, n := range b.Nodes[min(from, len(b.Nodes)):] {
			if stop(n) {
				return true
			}
		}
		return false
	}

	if blockedFrom(start, firstIdx) {
		return nil, false
	}
	parent := map[*Block]*Block{start: nil}
	stack := []*Block{start}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == g.Exit {
				if b.Panics {
					continue // unwind, not a return
				}
				return g.chain(parent, b, g.Exit), true
			}
			if _, ok := parent[s]; ok {
				continue
			}
			if blockedFrom(s, 0) {
				continue
			}
			parent[s] = b
			stack = append(stack, s)
		}
	}
	return nil, false
}

// Reach finds a path from the entry to node `target` on which no node
// strictly before target satisfies stop. It returns the block chain and
// true, or nil and false when every route to target is blocked (target
// is "protected" by stop on all paths).
func (g *Graph) Reach(target ast.Node, stop func(ast.Node) bool) ([]*Block, bool) {
	tb, ti := g.BlockOf(target)
	if tb == nil {
		return nil, false
	}
	blockedRange := func(b *Block, upto int) bool {
		for _, n := range b.Nodes[:min(upto, len(b.Nodes))] {
			if stop(n) {
				return true
			}
		}
		return false
	}
	if g.Entry == tb {
		if blockedRange(tb, ti) {
			return nil, false
		}
		return []*Block{tb}, true
	}
	if blockedRange(g.Entry, len(g.Entry.Nodes)) {
		return nil, false
	}
	parent := map[*Block]*Block{g.Entry: nil}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == tb {
				if !blockedRange(tb, ti) {
					return append(g.chain(parent, b, nil), tb), true
				}
				continue
			}
			if _, ok := parent[s]; ok {
				continue
			}
			if blockedRange(s, len(s.Nodes)) {
				continue
			}
			parent[s] = b
			stack = append(stack, s)
		}
	}
	return nil, false
}

// chain reconstructs the path ending at last (plus final, if non-nil).
func (g *Graph) chain(parent map[*Block]*Block, last, final *Block) []*Block {
	var rev []*Block
	for b := last; b != nil; b = parent[b] {
		rev = append(rev, b)
	}
	out := make([]*Block, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	if final != nil {
		out = append(out, final)
	}
	return out
}

// PathString renders a block chain as a compact file:line arrow chain
// for findings: "L12 → L19 → L24 → exit". Blocks without positions are
// skipped, consecutive duplicates are merged, and long chains elide the
// middle. All positions are in file (shown once, by the caller's
// finding position), so only line numbers are printed.
func PathString(fset *token.FileSet, chain []*Block, exit *Block) string {
	var lines []string
	lastLine := -1
	for _, b := range chain {
		if b == exit {
			lines = append(lines, "exit")
			continue
		}
		pos := b.Pos()
		if !pos.IsValid() {
			continue
		}
		l := fset.Position(pos).Line
		if l == lastLine {
			continue
		}
		lastLine = l
		lines = append(lines, fmt.Sprintf("L%d", l))
	}
	const maxSteps = 8
	if len(lines) > maxSteps {
		head := lines[:maxSteps-3]
		tail := lines[len(lines)-2:]
		lines = append(append(head, "…"), tail...)
	}
	return strings.Join(lines, " → ")
}
