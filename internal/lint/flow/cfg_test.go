package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

// parseFunc parses src (a file body containing one function named f)
// and returns the function's CFG plus the fileset.
func parseFunc(t *testing.T, src string) (*Graph, *token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return New(fd.Body), fset, fd
		}
	}
	t.Fatal("no func f in source")
	return nil, nil, nil
}

// markNode finds the statement node `mark(N)` in the graph.
func markNode(t *testing.T, g *Graph, n int) ast.Node {
	t.Helper()
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			es, ok := node.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "mark" {
				continue
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				if v, _ := strconv.Atoi(lit.Value); v == n {
					return node
				}
			}
		}
	}
	t.Fatalf("mark(%d) not found", n)
	return nil
}

// reachableBlocks counts blocks reachable from entry.
func reachableBlocks(g *Graph) int {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return len(seen)
}

// TestCFGShapes is the edge-case table: block/edge counts and reachability
// for the constructs the builder must model faithfully.
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		blocks    int // total blocks created
		edges     int
		reachable int // blocks reachable from entry
	}{
		{
			name:      "straight line",
			src:       "func f() { mark(1); mark(2) }",
			blocks:    2, // entry, exit
			edges:     1,
			reachable: 2,
		},
		{
			name:      "if else join",
			src:       "func f(x bool) { if x { mark(1) } else { mark(2) }; mark(3) }",
			blocks:    5, // entry, exit, then, else, join
			edges:     5,
			reachable: 5,
		},
		{
			name:      "if without else",
			src:       "func f(x bool) { if x { mark(1) }; mark(2) }",
			blocks:    4,
			edges:     4,
			reachable: 4,
		},
		{
			name:      "for loop",
			src:       "func f() { for i := 0; i < 3; i++ { mark(1) }; mark(2) }",
			blocks:    6, // entry, exit, head, body, done, latch
			edges:     6, // entry→head, head→body, head→done, body→latch, latch→head, done→exit
			reachable: 6,
		},
		{
			name:      "infinite for with break",
			src:       "func f(x bool) { for { if x { break }; mark(1) }; mark(2) }",
			blocks:    7, // entry, exit, head, body, done, if.then, if.done (no latch: no post stmt)
			edges:     7,
			reachable: 7,
		},
		{
			name:      "range loop",
			src:       "func f(xs []int) { for range xs { mark(1) }; mark(2) }",
			blocks:    5, // entry, exit, head, body, done
			edges:     5,
			reachable: 5,
		},
		{
			name: "goto out of loop",
			src: `func f() {
				for i := 0; i < 3; i++ {
					goto out
				}
				mark(1)
			out:
				mark(2)
			}`,
			blocks:    7, // entry, exit, head, body, done, label.out, latch(unreached)
			edges:     7, // entry→head, head→body, head→done, body→out, done→out, latch→head, out→exit
			reachable: 6, // latch is unreachable (body always jumps out)
		},
		{
			name: "goto into loop",
			src: `func f(x bool) {
				if x {
					goto in
				}
				for {
				in:
					mark(1)
				}
			}`,
			// entry/cond, exit, if.then, if.done, for.head, for.body,
			// label.in, for.done(unreachable — loop never exits)
			blocks:    8,
			edges:     8,
			reachable: 6, // exit and for.done are unreachable: the loop is infinite
		},
		{
			name: "labeled break in select",
			src: `func f(c chan int) {
			loop:
				for {
					select {
					case <-c:
						break loop
					case c <- 1:
						mark(1)
					}
				}
				mark(2)
			}`,
			// entry, exit, label.loop, for.head, for.body, for.done,
			// select.done, 2 select cases
			blocks:    9,
			edges:     9,
			reachable: 9,
		},
		{
			name: "defer with recover",
			src: `func f() {
				defer func() {
					if r := recover(); r != nil {
						mark(1)
					}
				}()
				mark(2)
				panic("boom")
			}`,
			blocks:    2, // entry (defer + mark + panic), exit — the closure body is NOT spliced in
			edges:     1,
			reachable: 2,
		},
		{
			name: "unreachable after panic",
			src: `func f() {
				mark(1)
				panic("boom")
				mark(2)
			}`,
			blocks:    3, // entry, exit, unreachable tail
			edges:     2, // entry→exit (panic), tail→exit (fall-off)
			reachable: 2,
		},
		{
			name: "switch with fallthrough and default",
			src: `func f(x int) {
				switch x {
				case 1:
					mark(1)
					fallthrough
				case 2:
					mark(2)
				default:
					mark(3)
				}
				mark(4)
			}`,
			blocks:    6, // entry(tag), exit, 3 cases, done
			edges:     7, // tag→c1,c2,def; c1→c2 (fallthrough); c1? no; c2→done; def→done; done→exit
			reachable: 6,
		},
		{
			name: "type switch",
			src: `func f(x any) {
				switch x.(type) {
				case int:
					mark(1)
				case string:
					mark(2)
				}
				mark(3)
			}`,
			blocks:    5, // entry(assign), exit, 2 cases, done
			edges:     6, // tag→c1,c2,done(no default); c1→done; c2→done; done→exit
			reachable: 5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _, _ := parseFunc(t, tc.src)
			if got := len(g.Blocks); got != tc.blocks {
				t.Errorf("blocks = %d, want %d\n%s", got, tc.blocks, dumpGraph(g))
			}
			if got := g.NumEdges(); got != tc.edges {
				t.Errorf("edges = %d, want %d\n%s", got, tc.edges, dumpGraph(g))
			}
			if got := reachableBlocks(g); got != tc.reachable {
				t.Errorf("reachable = %d, want %d\n%s", got, tc.reachable, dumpGraph(g))
			}
		})
	}
}

func dumpGraph(g *Graph) string {
	out := ""
	for _, b := range g.Blocks {
		out += b.kind
		if b == g.Entry {
			out += "(entry)"
		}
		if b == g.Exit {
			out += "(exit)"
		}
		out += " ->"
		for _, s := range b.Succs {
			out += " " + s.kind + "#" + strconv.Itoa(s.Index)
		}
		out += "\n"
	}
	return out
}

// TestDominance pins dominance and post-dominance facts on branchy shapes.
func TestDominance(t *testing.T) {
	g, _, _ := parseFunc(t, `func f(x bool) {
		mark(0)
		if x {
			mark(1)
		} else {
			mark(2)
		}
		mark(3)
	}`)
	dom := Dominators(g)
	pdom := PostDominators(g)

	b0, _ := g.BlockOf(markNode(t, g, 0))
	b1, _ := g.BlockOf(markNode(t, g, 1))
	b2, _ := g.BlockOf(markNode(t, g, 2))
	b3, _ := g.BlockOf(markNode(t, g, 3))

	for _, b := range []*Block{b1, b2, b3} {
		if !dom.Dominates(b0, b) {
			t.Errorf("entry block should dominate block %d", b.Index)
		}
	}
	if dom.Dominates(b1, b3) || dom.Dominates(b2, b3) {
		t.Error("neither branch arm may dominate the join")
	}
	if dom.Idom(b3) != b0 {
		t.Errorf("idom(join) = %v, want the condition block", dom.Idom(b3))
	}
	if !pdom.Dominates(b3, b1) || !pdom.Dominates(b3, b2) || !pdom.Dominates(b3, b0) {
		t.Error("join must post-dominate both arms and the condition")
	}
	if pdom.Dominates(b1, b0) {
		t.Error("a branch arm must not post-dominate the condition")
	}
}

// TestDominanceGotoIntoLoop: a goto that enters a loop body gives the
// body a second entry, so the loop head no longer dominates it.
func TestDominanceGotoIntoLoop(t *testing.T) {
	g, _, _ := parseFunc(t, `func f(x bool) {
		if x {
			goto in
		}
		for {
			mark(1)
		in:
			mark(2)
		}
	}`)
	dom := Dominators(g)
	b1, _ := g.BlockOf(markNode(t, g, 1))
	b2, _ := g.BlockOf(markNode(t, g, 2))
	if dom.Dominates(b1, b2) {
		t.Error("loop-body prefix must not dominate the goto target inside the loop")
	}
	if !dom.Dominates(g.Entry, b2) {
		t.Error("entry must dominate the goto target")
	}
}

// TestUnreachableDominance: blocks unreachable from entry are outside
// the dominator tree entirely.
func TestUnreachableDominance(t *testing.T) {
	g, _, _ := parseFunc(t, `func f() {
		mark(1)
		panic("boom")
		mark(2)
	}`)
	dom := Dominators(g)
	b1, _ := g.BlockOf(markNode(t, g, 1))
	b2, _ := g.BlockOf(markNode(t, g, 2))
	if b1.Panics != true {
		t.Error("panicking block must be marked Panics")
	}
	if dom.Dominates(b1, b2) || dom.Dominates(b2, b1) || dom.Idom(b2) != nil {
		t.Error("unreachable block must be outside the dominator tree")
	}
}

// TestEscape exercises the all-paths proof and the concrete-path reporting.
func TestEscape(t *testing.T) {
	isMark := func(n int) func(ast.Node) bool {
		return func(node ast.Node) bool {
			es, ok := node.(*ast.ExprStmt)
			if !ok {
				return false
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "mark" {
				return false
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			return ok && lit.Value == strconv.Itoa(n)
		}
	}

	// mark(2) covers only one arm: an escape exists.
	g, fset, _ := parseFunc(t, `func f(x bool) {
		mark(1)
		if x {
			mark(2)
		}
	}`)
	chain, ok := g.Escape(markNode(t, g, 1), isMark(2))
	if !ok {
		t.Fatal("expected an escape around the one-armed mark(2)")
	}
	if s := PathString(fset, chain, g.Exit); s == "" {
		t.Error("escape path should render")
	}

	// mark(2) on both arms: no escape.
	g2, _, _ := parseFunc(t, `func f(x bool) {
		mark(1)
		if x {
			mark(2)
		} else {
			mark(2)
		}
	}`)
	if _, ok := g2.Escape(markNode(t, g2, 1), isMark(2)); ok {
		t.Error("both arms covered: no escape should exist")
	}

	// Exit through panic is not an escape.
	g3, _, _ := parseFunc(t, `func f(x bool) {
		mark(1)
		if x {
			panic("boom")
		}
		mark(2)
	}`)
	if _, ok := g3.Escape(markNode(t, g3, 1), isMark(2)); ok {
		t.Error("panic unwind must not count as a normal exit")
	}

	// Reach: every route to mark(3) passes mark(2).
	g4, _, _ := parseFunc(t, `func f(x bool) {
		mark(1)
		mark(2)
		mark(3)
	}`)
	if _, ok := g4.Reach(markNode(t, g4, 3), isMark(2)); ok {
		t.Error("mark(2) blocks the only route to mark(3)")
	}
	if _, ok := g4.Reach(markNode(t, g4, 2), isMark(3)); !ok {
		t.Error("mark(3) is after the target; the route must be clear")
	}
}
