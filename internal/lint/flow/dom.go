package flow

// Dominator and post-dominator trees via the Cooper–Harvey–Kennedy
// iterative algorithm ("A Simple, Fast Dominance Algorithm"): reverse
// postorder over the (possibly reversed) graph, then an intersection
// fixpoint on immediate dominators. The graphs here are function bodies
// — tens of blocks — so the simple algorithm is the right one.

// DomTree answers dominance queries for one graph from one root.
type DomTree struct {
	root *Block
	idom map[*Block]*Block
	po   map[*Block]int // postorder number from root
}

// Dominators builds the dominator tree rooted at the graph entry.
// Blocks unreachable from the entry are absent from the tree:
// Idom returns nil and Dominates returns false for them.
func Dominators(g *Graph) *DomTree {
	return build(g.Entry, func(b *Block) []*Block { return b.Succs }, func(b *Block) []*Block { return b.Preds })
}

// PostDominators builds the post-dominator tree rooted at the graph
// exit (the reversed graph's entry). A block that cannot reach the exit
// (an infinite loop) is absent from the tree.
func PostDominators(g *Graph) *DomTree {
	return build(g.Exit, func(b *Block) []*Block { return b.Preds }, func(b *Block) []*Block { return b.Succs })
}

func build(root *Block, succs, preds func(*Block) []*Block) *DomTree {
	t := &DomTree{root: root, idom: make(map[*Block]*Block), po: make(map[*Block]int)}

	// Iterative postorder DFS from root.
	type item struct {
		b *Block
		i int
	}
	seen := map[*Block]bool{root: true}
	var order []*Block
	stack := []item{{root, 0}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		ss := succs(top.b)
		if top.i < len(ss) {
			s := ss[top.i]
			top.i++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, item{s, 0})
			}
			continue
		}
		order = append(order, top.b)
		stack = stack[:len(stack)-1]
	}
	for i, b := range order {
		t.po[b] = i
	}

	// Reverse postorder, skipping the root.
	rpo := make([]*Block, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		if order[i] != root {
			rpo = append(rpo, order[i])
		}
	}

	t.idom[root] = root
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			var newIdom *Block
			for _, p := range preds(b) {
				if _, ok := t.idom[p]; !ok {
					continue // unprocessed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(newIdom, p)
				}
			}
			if newIdom != nil && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}
	return t
}

func (t *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for t.po[a] < t.po[b] {
			a = t.idom[a]
		}
		for t.po[b] < t.po[a] {
			b = t.idom[b]
		}
	}
	return a
}

// Idom returns b's immediate dominator, nil for the root and for blocks
// outside the tree (unreachable from the root).
func (t *DomTree) Idom(b *Block) *Block {
	if b == t.root {
		return nil
	}
	return t.idom[b]
}

// Dominates reports whether a dominates b (reflexively). Blocks outside
// the tree dominate nothing and are dominated by nothing.
func (t *DomTree) Dominates(a, b *Block) bool {
	if _, ok := t.idom[a]; !ok {
		return false
	}
	if _, ok := t.idom[b]; !ok {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == t.root {
			return false
		}
		b = t.idom[b]
	}
}
