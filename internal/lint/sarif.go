package lint

import (
	"encoding/json"
	"io"
)

// WriteSARIF renders findings as a SARIF 2.1.0 log: one run, one rule
// per analyzer (findings or not, so code-scanning UIs list the whole
// suite), one result per diagnostic. Paths are emitted as the loader
// produced them — relative to the driver's -C directory — which is what
// upload actions expect when they run from the repository root.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	type sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri,omitempty"`
		Rules          []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifArtifactLocation struct {
		URI string `json:"uri"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	type sarifLog struct {
		Version string     `json:"version"`
		Schema  string     `json:"$schema"`
		Runs    []sarifRun `json:"runs"`
	}

	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "pmlint", Rules: rules}}, Results: results}},
	})
}
