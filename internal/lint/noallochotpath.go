package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Noallochotpath polices heap allocation on the paper-critical hot
// paths: the circular-log append/truncate machinery (internal/nvlog),
// the shard request loop with its store (internal/server), and the pulse
// telemetry snapshotters (internal/obs/pulse). Those paths carry every
// persisted byte or run per request/interval while traffic lands, and
// the repo's alloc-guard tests hold them to 0 allocs/op in steady state — a stray make() or a fresh-slice
// append reintroduces per-op garbage that the tests only catch later, on
// whichever machine runs them. The analyzer catches the two recurring
// shapes at build time:
//
//   - make() whose result lands in a local: per-op allocation. Growing a
//     receiver-owned scratch field (x.buf = make(...), behind a cap
//     check) is amortized and allowed.
//   - append() onto a freshly materialized slice (append([]byte(nil),
//     ...), append([]T{...}, ...)): allocates its backing array every
//     call. Appends onto locals, fields, or reslices (buf[:0]) reuse
//     capacity and are allowed.
//
// Genuinely cold allocations inside a hot function (error paths, once-
// per-process growth) are waived line-by-line with //pmlint:allow.
var Noallochotpath = &Analyzer{
	Name: "noallochotpath",
	Doc:  "inside nvlog append/truncate, server shard-apply/store, and pulse snapshotter hot functions, no make() into locals and no append onto freshly allocated slices",
	Run:  runNoallochotpath,
}

// allocHotFuncs names the hot functions per package-path suffix: the
// code executed per log append / per shard request in steady state.
var allocHotFuncs = map[string]map[string]bool{
	"internal/nvlog": {
		"Log.PrepareAppend": true,
		"Log.Truncate":      true,
	},
	"internal/server": {
		"shard.collect":         true,
		"shard.runBatch":        true,
		"shard.apply":           true,
		"shard.publishLogState": true,
		"Server.observeFinish":  true,
		"Server.sampleShard":    true,
		"store.find":            true,
		"store.get":             true,
		"store.writeNode":       true,
		"store.applyPut":        true,
		"store.applyDel":        true,
		"store.put":             true,
		"store.del":             true,
		"store.txn":             true,
	},
	// The flight recorder's request path runs once per request inside the
	// conn reader / shard loop / conn writer; its contract is atomic
	// stores on preallocated slots only.
	"internal/flight": {
		"Table.Acquire":     true,
		"Table.Finish":      true,
		"Span.Begin":        true,
		"Span.Mark":         true,
		"Span.SetTxn":       true,
		"Span.SetLogWindow": true,
		"Span.SnapshotInto": true,
		"Span.StageNS":      true,
	},
	// The pulse collector ticks every interval and is offered every
	// finished request; both write into preallocated ring slots and
	// scratch snapshots only (init() does the one-time allocation).
	"internal/obs/pulse": {
		"Collector.Tick":         true,
		"Collector.NoteFinished": true,
	},
	// The scope cost ledger is bumped per persistent store, per log
	// record, and per write-back inside the shard loop; its sketches are
	// fixed arrays cleared by an epoch bump, so nothing there may
	// materialize a slice or map.
	"internal/obs/scope": {
		"Counters.NoteLogBytes":  true,
		"Counters.NoteStore":     true,
		"Counters.NoteTxnCommit": true,
		"Counters.NoteDataWB":    true,
		"Counters.NoteForcedWB":  true,
		"Counters.NoteDirtied":   true,
		"Counters.NoteScan":      true,
		"LineSketch.Touch":       true,
		"LineSketch.Remove":      true,
		"LineSketch.Clear":       true,
	},
}

// allocHotFuncsFor returns the hot-function set for pkgPath, nil if the
// package has no audited hot path. Suffix matching keeps the rule
// applicable to fixture trees, which mirror the real layout under a
// different root.
func allocHotFuncsFor(pkgPath string) map[string]bool {
	for suffix, funcs := range allocHotFuncs {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return funcs
		}
	}
	return nil
}

func runNoallochotpath(pass *Pass) {
	hot := allocHotFuncsFor(pass.Pkg.Path())
	if hot == nil {
		return
	}
	for _, file := range pass.Files {
		for _, fd := range funcScopes(file) {
			name := funcName(fd)
			if !hot[name] {
				continue
			}
			checkAllocFree(pass, fd, name)
		}
	}
}

// checkAllocFree walks one hot function body flagging allocation shapes.
func checkAllocFree(pass *Pass, fd *ast.FuncDecl, hotName string) {
	// make() calls whose result is stored into a struct field are
	// amortized scratch growth; collect them first so the CallExpr walk
	// below can skip them.
	amortized := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if ok && isBuiltin(pass.Info, call, "make") {
				if _, isField := ast.Unparen(as.Lhs[i]).(*ast.SelectorExpr); isField {
					amortized[call] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltin(pass.Info, call, "make"):
			if !amortized[call] {
				pass.Reportf(call.Pos(),
					"make() into a local inside hot function %s allocates per operation; reuse a scratch buffer (grow a receiver field behind a cap check) or waive with //pmlint:allow noallochotpath",
					hotName)
			}
		case isBuiltin(pass.Info, call, "append") && len(call.Args) > 0:
			switch ast.Unparen(call.Args[0]).(type) {
			case *ast.CompositeLit, *ast.CallExpr:
				pass.Reportf(call.Pos(),
					"append onto a freshly allocated slice inside hot function %s allocates its backing array per operation; append onto a reused scratch (e.g. buf[:0]) instead",
					hotName)
			}
		}
		return true
	})
}

// isBuiltin reports whether call invokes the named Go builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
