package lint

import "testing"

func TestAckafterdurableFixture(t *testing.T) {
	RunFixture(t, Ackafterdurable, "ackafterdurable")
}
