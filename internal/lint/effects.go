package lint

import (
	"go/ast"
	"go/types"

	"pmemlog/internal/lint/flow"
)

// This file is the interprocedural layer under the flow-based analyzers:
// a call graph over go/types callees and per-function effect summaries
// ("appends a log record", "persists the image", "sends an ack")
// computed to a fixpoint, so a dominance proof in one function can spend
// credit earned inside a helper it calls.

// effect is a bitmask of persistence-ordering-relevant actions.
type effect uint8

const (
	// effTxBegin: opens a sim.Ctx transaction (the durable undo+redo log
	// append that must precede persistent stores).
	effTxBegin effect = 1 << iota
	// effTxCommit: closes a sim.Ctx transaction.
	effTxCommit
	// effQuiesce: drains the controller's volatile log write buffers.
	effQuiesce
	// effPersistImage: persists a DIMM image (SaveNVRAM, WriteFile/To).
	effPersistImage
	// effAck: sends a server Response/connReq to a client-facing channel.
	effAck
)

// mustTracked are the effects the Must fixpoint proves; effAck only ever
// matters as a may-effect.
var mustTracked = []effect{effTxBegin, effTxCommit, effQuiesce, effPersistImage}

// primEffect classifies fn as one of the domain's primitive operations.
// Matching is by package path, receiver, and name, so interface methods
// (sim.Ctx.TxBegin) and concrete ones resolve alike.
func primEffect(fn *types.Func) effect {
	switch {
	case isFunc(fn, simPkg, "", "TxBegin"):
		return effTxBegin
	case isFunc(fn, simPkg, "", "TxCommit"):
		return effTxCommit
	case isFunc(fn, simPkg, "System", "Quiesce"):
		return effQuiesce
	}
	for _, s := range imageSinks {
		if isFunc(fn, s.pkg, s.recv, s.name) {
			return effPersistImage
		}
	}
	return 0
}

// ackSendEffect reports whether s sends on a client-facing server
// channel: element type Response or *connReq from the server package.
// Stats-probe channels (ShardStats) are not acks.
func ackSendEffect(info *types.Info, s *ast.SendStmt) effect {
	tv, ok := info.Types[s.Chan]
	if !ok {
		return 0
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return 0
	}
	elem := ch.Elem()
	if p, ok := elem.(*types.Pointer); ok {
		elem = p.Elem()
	}
	named, ok := elem.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != serverPkg {
		return 0
	}
	return map[string]effect{"Response": effAck, "connReq": effAck}[named.Obj().Name()]
}

// fnInfo is one module function's summary.
type fnInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func

	// prim: primitive effects appearing anywhere in the body, closures
	// included (an effect inside a passed closure may still happen under
	// this call — RunN(func(ctx){...}) is the canonical case).
	prim effect
	// may: prim plus the may-effects of every module callee, to fixpoint.
	// An over-approximation: "calling fn can cause E".
	may effect
	// must: effects that occur on every panic-free path from entry to
	// return, deferred calls included. An under-approximation, grown
	// monotonically to fixpoint: "calling fn guarantees E by return".
	must effect
}

// Module is the unit of interprocedural analysis: every loaded package's
// function summaries, call graph, and (lazily built) CFGs.
type Module struct {
	pkgs    []*Package
	fns     map[*types.Func]*fnInfo
	order   []*fnInfo
	callers map[*types.Func][]*fnInfo
	graphs  map[*ast.BlockStmt]*flow.Graph

	// Module-wide analyses run once and replay per package.
	qDone       bool
	qFindings   []moduleFinding
	lbdDone     bool
	lbdFindings []moduleFinding
}

// NewModule indexes pkgs and computes the effect summaries.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		pkgs:    pkgs,
		fns:     make(map[*types.Func]*fnInfo),
		callers: make(map[*types.Func][]*fnInfo),
		graphs:  make(map[*ast.BlockStmt]*flow.Graph),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, fd := range funcScopes(file) {
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &fnInfo{pkg: pkg, decl: fd, obj: obj}
				m.fns[obj] = fi
				m.order = append(m.order, fi)
			}
		}
	}

	// Primitive effects and the caller map, one body walk each.
	for _, fi := range m.order {
		seen := make(map[*types.Func]bool)
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeOf(fi.pkg.Info, n)
				fi.prim |= primEffect(fn)
				if callee, ok := m.fns[fn]; ok && !seen[fn] {
					seen[fn] = true
					m.callers[callee.obj] = append(m.callers[callee.obj], fi)
				}
			case *ast.SendStmt:
				fi.prim |= ackSendEffect(fi.pkg.Info, n)
			}
			return true
		})
		fi.may = fi.prim
	}

	// May fixpoint: union callee summaries until stable.
	for changed := true; changed; {
		changed = false
		for _, fi := range m.order {
			may := fi.prim
			ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee, ok := m.fns[calleeOf(fi.pkg.Info, call)]; ok {
						may |= callee.may
					}
				}
				return true
			})
			if may != fi.may {
				fi.may = may
				changed = true
			}
		}
	}

	// Must fixpoint: an effect is guaranteed when no panic-free
	// entry-to-return path avoids a node carrying it. Starting from ∅ and
	// growing monotonically under-approximates recursive helpers, which
	// is the safe direction: missing credit can cost a false positive but
	// never hides a real ordering break.
	for changed := true; changed; {
		changed = false
		for _, fi := range m.order {
			g := m.graph(fi.decl.Body)
			for _, e := range mustTracked {
				if fi.must&e != 0 {
					continue
				}
				stop := func(n ast.Node) bool { return m.NodeMust(fi.pkg.Info, n)&e != 0 }
				if _, escapes := g.EscapeFromEntry(stop); !escapes {
					fi.must |= e
					changed = true
				}
			}
		}
	}
	return m
}

// graph returns the (cached) CFG of body.
func (m *Module) graph(body *ast.BlockStmt) *flow.Graph {
	if g, ok := m.graphs[body]; ok {
		return g
	}
	g := flow.New(body)
	m.graphs[body] = g
	return g
}

// Graph exposes the cached CFG of a function or closure body to analyzers.
func (m *Module) Graph(body *ast.BlockStmt) *flow.Graph { return m.graph(body) }

// FuncInfo returns the summary for a module function, nil otherwise.
func (m *Module) funcInfo(fn *types.Func) *fnInfo { return m.fns[fn] }

// Callers returns the module functions whose bodies call fn.
func (m *Module) Callers(fn *types.Func) []*fnInfo { return m.callers[fn] }

// callsIn collects the calls that execute when node n executes. FuncLit
// bodies are skipped — a closure's calls run when the closure runs — but
// when includeLits is set (DeferStmt nodes: an immediately deferred
// literal runs by return) literal bodies are scanned too.
func callsIn(n ast.Node, includeLits bool) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && !includeLits {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			out = append(out, call)
		}
		return true
	})
	return out
}

// scope is one analyzed body: a declared function, or one closure inside
// it (closure bodies are their own CFGs, never part of the enclosing
// function's).
type scope struct {
	name string
	decl *ast.FuncDecl
	lit  *ast.FuncLit // nil for the declared function itself
}

func (s scope) body() *ast.BlockStmt {
	if s.lit != nil {
		return s.lit.Body
	}
	return s.decl.Body
}

// scopesOf lists fd's body and every closure body within it.
func scopesOf(fd *ast.FuncDecl) []scope {
	out := []scope{{name: funcName(fd), decl: fd}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, scope{name: "function literal in " + funcName(fd), decl: fd, lit: lit})
		}
		return true
	})
	return out
}

// CallMust is the effect credit one call confers: the callee's primitive
// effect, or its Must summary for module functions.
func (m *Module) CallMust(info *types.Info, call *ast.CallExpr) effect {
	fn := calleeOf(info, call)
	if e := primEffect(fn); e != 0 {
		return e
	}
	if fi := m.fns[fn]; fi != nil {
		return fi.must
	}
	return 0
}

// CallMay is the over-approximate counterpart of CallMust.
func (m *Module) CallMay(info *types.Info, call *ast.CallExpr) effect {
	fn := calleeOf(info, call)
	if e := primEffect(fn); e != 0 {
		return e
	}
	if fi := m.fns[fn]; fi != nil {
		return fi.may
	}
	return 0
}

// NodeMust is the guaranteed effect of executing CFG node n: inline call
// credit, plus — for defer statements — the deferred call's guarantee
// (it runs before the function returns, so by-return ordering holds).
func (m *Module) NodeMust(info *types.Info, n ast.Node) effect {
	_, isDefer := n.(*ast.DeferStmt)
	var eff effect
	for _, call := range callsIn(n, isDefer) {
		eff |= m.CallMust(info, call)
	}
	return eff
}

// NodeMay is the may-effect of executing node n, function-literal
// arguments absorbed: RunN(func(ctx){ ... TxBegin ... }) may-begins.
func (m *Module) NodeMay(info *types.Info, n ast.Node) effect {
	var eff effect
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CallExpr:
			eff |= m.CallMay(info, c)
		case *ast.SendStmt:
			eff |= ackSendEffect(info, c)
		}
		return true
	})
	return eff
}
