package lint

import "testing"

func TestQuiesceorderFixture(t *testing.T) {
	RunFixture(t, Quiesceorder, "quiesceorder")
}
