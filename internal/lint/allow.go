package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch: a comment of the form
//
//	//pmlint:allow rule[,rule...] [-- reason]
//
// placed on the offending line or on the line directly above suppresses
// exactly one finding of each named rule. The narrowness is deliberate —
// an allow is a reviewed, single-site waiver of a persistence invariant,
// not a blanket opt-out — so a directive that suppresses nothing is
// itself reported (rule "allow"), keeping stale waivers from surviving
// refactors.

// AllowRule is the pseudo-rule under which directive problems (unused or
// unknown-rule allows) are reported. It cannot itself be allowed.
const AllowRule = "allow"

type allowDirective struct {
	pos   token.Position
	rules []string
}

// parseAllows extracts every pmlint:allow directive from the files'
// comments.
func parseAllows(fset *token.FileSet, files []*ast.File) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue
				}
				body := strings.TrimLeft(c.Text[2:], " \t")
				if !strings.HasPrefix(body, "pmlint:allow") {
					continue
				}
				text := body[len("pmlint:allow"):]
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue // e.g. pmlint:allowlist — not this directive
				}
				if reason := strings.Index(text, "--"); reason >= 0 {
					text = text[:reason]
				}
				var rules []string
				for _, field := range strings.FieldsFunc(text, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					rules = append(rules, field)
				}
				out = append(out, &allowDirective{pos: fset.Position(c.Pos()), rules: rules})
			}
		}
	}
	return out
}

// ApplyAllows filters diags through the files' pmlint:allow directives.
// active is the set of rules that ran this invocation; known is the full
// suite (so a partial run neither misfires "unused" nor accepts typos).
// It returns the surviving findings — including new findings for broken
// directives — and the number suppressed.
func ApplyAllows(fset *token.FileSet, files []*ast.File, diags []Diagnostic, active, known map[string]bool) ([]Diagnostic, int) {
	suppressedIdx := make([]bool, len(diags))
	suppressed := 0
	var extra []Diagnostic

	for _, d := range parseAllows(fset, files) {
		if len(d.rules) == 0 {
			extra = append(extra, Diagnostic{Pos: d.pos, Rule: AllowRule,
				Message: "pmlint:allow directive names no rule"})
			continue
		}
		usedAny := false
		allActive := true
		for _, rule := range d.rules {
			if !known[rule] {
				extra = append(extra, Diagnostic{Pos: d.pos, Rule: AllowRule,
					Message: "pmlint:allow names unknown rule \"" + rule + "\""})
				allActive = false
				continue
			}
			if !active[rule] {
				allActive = false
				continue
			}
			// Suppress exactly one finding of this rule, on the directive's
			// own line (trailing comment) or the next line (standalone).
			for i, diag := range diags {
				if suppressedIdx[i] || diag.Rule != rule || diag.Pos.Filename != d.pos.Filename {
					continue
				}
				if diag.Pos.Line == d.pos.Line || diag.Pos.Line == d.pos.Line+1 {
					suppressedIdx[i] = true
					suppressed++
					usedAny = true
					break
				}
			}
		}
		if !usedAny && allActive {
			extra = append(extra, Diagnostic{Pos: d.pos, Rule: AllowRule,
				Message: "unused pmlint:allow directive (suppresses nothing on this or the next line)"})
		}
	}

	var kept []Diagnostic
	for i, diag := range diags {
		if !suppressedIdx[i] {
			kept = append(kept, diag)
		}
	}
	kept = append(kept, extra...)
	SortDiagnostics(kept)
	return kept, suppressed
}

// RuleSet builds membership sets for ApplyAllows from analyzer lists.
func RuleSet(analyzers []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = true
	}
	return m
}
