package lint

import "testing"

func TestChaosonlyFixture(t *testing.T) {
	RunFixture(t, Chaosonly, "chaosonly")
}

// TestChaosonlyExemptsSim runs the analyzer over the sim stub — whose
// constructor is the sanctioned propagation path for Config.Chaos — and
// expects silence.
func TestChaosonlyExemptsSim(t *testing.T) {
	RunFixture(t, Chaosonly, "pmemlog/internal/sim")
}

// TestChaosonlyExemptsChaos runs the analyzer over the chaos stub
// itself: the plane may of course build its own injectors.
func TestChaosonlyExemptsChaos(t *testing.T) {
	RunFixture(t, Chaosonly, "pmemlog/internal/chaos")
}
