package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file is pmlint's analogue of go/analysis/analysistest: fixtures
// under testdata/src/<path> are loaded as packages (imports resolve
// against testdata/src first, then the standard library), one analyzer
// runs over the target package through the same //pmlint:allow pipeline
// the driver uses, and findings are matched against expectations written
// as `// want "regexp"` comments on the offending lines.

// RunFixture loads testdata/src/<pkgPath>, runs analyzer a (and the
// allow layer), and reports every mismatch between findings and the
// fixture's want-comments as test errors.
func RunFixture(t *testing.T, a *Analyzer, pkgPath string) {
	t.Helper()
	ld := newFixtureLoader(filepath.Join("testdata", "src"))
	pkg, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{a})
	kept, _ := ApplyAllows(pkg.Fset, pkg.Files, diags,
		map[string]bool{a.Name: true}, RuleSet(Analyzers()))

	exps := parseWants(t, pkg)
	for _, d := range kept {
		if !consumeWant(exps, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// want is one expectation from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var (
	wantRE   = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)
	quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

func consumeWant(exps []*want, d Diagnostic) bool {
	for _, e := range exps {
		if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// fixtureLoader resolves imports against testdata/src before falling
// back to compiled standard-library export data, mirroring how
// analysistest roots a GOPATH at the fixture tree.
type fixtureLoader struct {
	root  string
	fset  *token.FileSet
	cache map[string]*Package
	std   *stdImporter
}

func newFixtureLoader(root string) *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		root:  root,
		fset:  fset,
		cache: make(map[string]*Package),
		std:   newStdImporter(fset, "."),
	}
}

// Import implements types.Importer for fixture packages.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the fixture package at root/path.
func (l *fixtureLoader) load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no .go files", path)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	p := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}
