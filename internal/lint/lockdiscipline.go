package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockdiscipline flags synchronization misuse patterns that turn into
// heisenbugs under the server's load: locks copied by value (the copy
// guards nothing), the same field accessed both through sync/atomic and
// with plain loads/stores (the plain access races), and channel sends
// made while holding a mutex (the ack path of a shard must never block
// on a slow consumer while holding shared state).
var Lockdiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "copied locks, mixed atomic/plain access to one field, channel sends while holding a mutex",
	Run:  runLockdiscipline,
}

func runLockdiscipline(pass *Pass) {
	checkAtomicMix(pass)
	for _, file := range pass.Files {
		for _, fd := range funcScopes(file) {
			checkLockCopies(pass, fd)
			checkSendUnderLock(pass, fd)
		}
	}
}

// --- copied locks ---------------------------------------------------

// lockTypes are the by-value-uncopyable synchronization types.
var lockTypes = map[string]map[string]bool{
	"sync": {"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
		"Cond": true, "Map": true, "Pool": true},
	"sync/atomic": {"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true},
}

// containsLock reports whether a value of type t embeds (directly or via
// struct/array nesting) a type that must not be copied.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if names, ok := lockTypes[obj.Pkg().Path()]; ok && names[obj.Name()] {
				return true
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func lockByValue(t types.Type) bool {
	if _, ok := t.(*types.Pointer); ok {
		return false
	}
	return containsLock(t, make(map[types.Type]bool))
}

// checkLockCopies flags by-value receivers, parameters, range variables,
// and plain-copy assignments of lock-bearing types.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj != nil && lockByValue(obj.Type()) {
					pass.Reportf(name.Pos(),
						"%s takes %s %q by value, copying its lock; pass a pointer", funcName(fd), what, name.Name)
				}
			}
		}
	}
	checkFieldList(fd.Recv, "receiver")
	checkFieldList(fd.Type.Params, "parameter")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.Info.Defs[id]; obj != nil && lockByValue(obj.Type()) {
					pass.Reportf(id.Pos(),
						"%s ranges over lock-bearing values by value (%q copies a lock); range over indices or pointers", funcName(fd), id.Name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				switch rhs.(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
					// A copy of an existing value, not a freshly built one.
				default:
					continue
				}
				if tv, ok := pass.Info.Types[rhs]; ok && lockByValue(tv.Type) {
					pass.Reportf(n.Lhs[i].Pos(),
						"%s copies a lock-bearing value of type %s; copy a pointer instead", funcName(fd), tv.Type)
				}
			}
		}
		return true
	})
}

// --- mixed atomic / plain access ------------------------------------

// checkAtomicMix is package-scoped: pass one finds every variable or
// struct field whose address is taken by a sync/atomic call; pass two
// flags plain writes to the same object anywhere in the package.
func checkAtomicMix(pass *Pass) {
	atomicAt := make(map[types.Object]token.Pos)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if obj := referredObject(pass.Info, addr.X); obj != nil {
				atomicAt[obj] = call.Pos()
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportPlainWrite(pass, atomicAt, lhs)
				}
			case *ast.IncDecStmt:
				reportPlainWrite(pass, atomicAt, n.X)
			}
			return true
		})
	}
}

// referredObject resolves the variable or struct field an lvalue names.
func referredObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

func reportPlainWrite(pass *Pass, atomicAt map[types.Object]token.Pos, lhs ast.Expr) {
	obj := referredObject(pass.Info, lhs)
	if obj == nil {
		return
	}
	if _, ok := atomicAt[obj]; ok {
		pass.Reportf(lhs.Pos(),
			"%q is accessed with sync/atomic elsewhere in this package but written non-atomically here; the plain write races with the atomic readers", obj.Name())
	}
}

// --- channel send while holding a mutex ------------------------------

// lockInterval is one lexical span during which a mutex is held.
type lockInterval struct {
	recv     string
	from, to token.Pos
}

// checkSendUnderLock flags channel sends lexically between a mutex Lock
// and its matching Unlock (a deferred Unlock holds to function end). A
// send can block indefinitely on a slow receiver; doing so while holding
// a lock stalls every other path through the guarded state — in pmserve
// terms, one dead client freezes the ack path of the whole server.
func checkSendUnderLock(pass *Pass, fd *ast.FuncDecl) {
	type lockCall struct {
		recv   string
		pos    token.Pos
		reader bool
	}
	var locks []lockCall
	unlocks := make(map[string][]token.Pos) // recv -> Unlock/RUnlock positions
	deferred := make(map[string]bool)       // recv with deferred unlock
	mutexRecv := func(call *ast.CallExpr) (string, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		fn := calleeOf(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return "", false
		}
		return types.ExprString(sel.X), true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if recv, ok := mutexRecv(n.Call); ok {
				if name := calleeOf(pass.Info, n.Call).Name(); name == "Unlock" || name == "RUnlock" {
					deferred[recv] = true
				}
			}
		case *ast.CallExpr:
			recv, ok := mutexRecv(n)
			if !ok {
				return true
			}
			switch calleeOf(pass.Info, n).Name() {
			case "Lock":
				locks = append(locks, lockCall{recv: recv, pos: n.Pos()})
			case "RLock":
				locks = append(locks, lockCall{recv: recv, pos: n.Pos(), reader: true})
			case "Unlock", "RUnlock":
				unlocks[recv] = append(unlocks[recv], n.Pos())
			}
		}
		return true
	})
	if len(locks) == 0 {
		return
	}
	var intervals []lockInterval
	for _, l := range locks {
		iv := lockInterval{recv: l.recv, from: l.pos, to: fd.Body.End()}
		if !deferred[l.recv] {
			for _, u := range unlocks[l.recv] {
				if u > l.pos && u < iv.to {
					iv.to = u
				}
			}
		}
		intervals = append(intervals, iv)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		for _, iv := range intervals {
			if send.Pos() > iv.from && send.Pos() < iv.to {
				pass.Reportf(send.Pos(),
					"%s sends on a channel while holding %s; a blocked receiver would stall everyone contending for the lock", funcName(fd), iv.recv)
				break
			}
		}
		return true
	})
}
