// Fixtures for the lockdiscipline analyzer: copied locks, mixed
// atomic/plain field access, and channel sends under a held mutex.
package lockdiscipline

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	mu sync.Mutex
	n  uint64
}

func byValue(c counters) uint64 { // want "takes parameter \"c\" by value"
	return c.n
}

func byPointer(c *counters) uint64 {
	return c.n
}

func (c counters) valueReceiver() uint64 { // want "takes receiver \"c\" by value"
	return c.n
}

func (c *counters) pointerReceiver() uint64 {
	return c.n
}

func copyAssign(p *counters) uint64 {
	c := *p // want "copies a lock-bearing value"
	return c.n
}

func rangeCopy(cs []counters) uint64 {
	var total uint64
	for _, c := range cs { // want "ranges over lock-bearing values"
		total += c.n
	}
	return total
}

func rangeByIndex(cs []counters) uint64 {
	var total uint64
	for i := range cs {
		total += cs[i].n
	}
	return total
}

type hitStats struct {
	hits  uint64
	label string
}

func bump(s *hitStats) {
	atomic.AddUint64(&s.hits, 1)
}

func read(s *hitStats) uint64 {
	return atomic.LoadUint64(&s.hits)
}

func reset(s *hitStats) {
	s.hits = 0          // want "written non-atomically"
	s.label = "cleared" // plain field, never atomic: fine
}

func sendLocked(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want "sends on a channel while holding mu"
	mu.Unlock()
}

func sendAfterUnlock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	v := 1
	mu.Unlock()
	ch <- v
}

func sendDeferLocked(mu *sync.RWMutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 2 // want "sends on a channel while holding mu"
}

func sendReadLocked(mu *sync.RWMutex, ch chan int) {
	mu.RLock()
	ch <- 3 // want "sends on a channel while holding mu"
	mu.RUnlock()
}
