// Fixtures for the quiesceorder analyzer: image saves without a
// preceding buffer drain, and the drained shapes that must pass.
package quiesceorder

import (
	"io"

	"pmemlog/internal/sim"
)

func unsafeSave(s *sim.System, w io.Writer) error {
	return s.SaveNVRAM(w) // want "without a preceding System.Quiesce"
}

func safeSave(s *sim.System, w io.Writer) error {
	s.Quiesce()
	return s.SaveNVRAM(w)
}

func unsafeWriteFile(s *sim.System) error {
	return s.NVRAMImage().WriteFile("shard.img") // want "\\(Physical\\).WriteFile without a preceding System.Quiesce"
}

func safeWriteFile(s *sim.System) error {
	s.Quiesce()
	return s.NVRAMImage().WriteFile("shard.img")
}

func unsafeWriteTo(s *sim.System, w io.Writer) error {
	_, err := s.NVRAMImage().WriteTo(w) // want "\\(Physical\\).WriteTo without a preceding System.Quiesce"
	return err
}

// quiesceAfterIsTooLate: draining after the bytes left does not help.
func quiesceAfterIsTooLate(s *sim.System, w io.Writer) error {
	err := s.SaveNVRAM(w) // want "without a preceding System.Quiesce"
	s.Quiesce()
	return err
}

// drainedInBranch is accepted by the lexical approximation: a Quiesce
// appears earlier in the function, even though on a branch.
func drainedInBranch(s *sim.System, w io.Writer, dirty bool) error {
	if dirty {
		s.Quiesce()
	}
	return s.SaveNVRAM(w)
}
