// Fixtures for the quiesceorder analyzer: image saves without a
// preceding buffer drain, and the drained shapes that must pass.
package quiesceorder

import (
	"io"

	"pmemlog/internal/sim"
)

func unsafeSave(s *sim.System, w io.Writer) error {
	return s.SaveNVRAM(w) // want "with no System.Quiesce on the path"
}

func safeSave(s *sim.System, w io.Writer) error {
	s.Quiesce()
	return s.SaveNVRAM(w)
}

func unsafeWriteFile(s *sim.System) error {
	return s.NVRAMImage().WriteFile("shard.img") // want "\\(Physical\\).WriteFile with no System.Quiesce on the path"
}

func safeWriteFile(s *sim.System) error {
	s.Quiesce()
	return s.NVRAMImage().WriteFile("shard.img")
}

func unsafeWriteTo(s *sim.System, w io.Writer) error {
	_, err := s.NVRAMImage().WriteTo(w) // want "\\(Physical\\).WriteTo with no System.Quiesce on the path"
	return err
}

// quiesceAfterIsTooLate: draining after the bytes left does not help.
func quiesceAfterIsTooLate(s *sim.System, w io.Writer) error {
	err := s.SaveNVRAM(w) // want "with no System.Quiesce on the path"
	s.Quiesce()
	return err
}

// drainedInBranch was the lexical checker's blind spot: a Quiesce that
// runs on only one arm leaves the other arm's image un-drained. The CFG
// search finds and names the unprotected path.
func drainedInBranch(s *sim.System, w io.Writer, dirty bool) error {
	if dirty {
		s.Quiesce()
	}
	return s.SaveNVRAM(w) // want "with no System.Quiesce on the path"
}

// drainedOnAllArms quiesces on both arms before the sink: every path
// carries credit, so the save is clean without a dominating drain.
func drainedOnAllArms(s *sim.System, w io.Writer, fast bool) error {
	if fast {
		s.Quiesce()
	} else {
		s.Quiesce()
	}
	return s.SaveNVRAM(w)
}

// drainHelper must-quiesces; calling it earns credit interprocedurally.
func drainHelper(s *sim.System) {
	s.Quiesce()
}

func drainedThroughHelper(s *sim.System, w io.Writer) error {
	drainHelper(s)
	return s.SaveNVRAM(w)
}
