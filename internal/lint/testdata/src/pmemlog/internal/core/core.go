// Package core stubs the hardware logging engine for pmlint fixtures.
package core

// Tx is one hardware transaction's handle.
type Tx struct{}

func (t *Tx) TxID() uint16 { return 0 }

// Engine is the undo+redo logging engine.
type Engine struct{}

func (e *Engine) Begin(now uint64, threadID uint8) (*Tx, error) { return &Tx{}, nil }
func (e *Engine) Commit(now uint64, tx *Tx) (uint64, error)     { return now, nil }
