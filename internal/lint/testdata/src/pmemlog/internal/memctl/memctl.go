// Package memctl stubs the memory controller for pmlint fixtures.
package memctl

import "pmemlog/internal/chaos"

// Controller is the NVRAM memory controller.
type Controller struct{}

// SetChaos arms (or with nil disarms) the fault injector.
func (c *Controller) SetChaos(in *chaos.Injector) {}
