// Package cache stubs the cache hierarchy for pmlint fixtures.
package cache

import "pmemlog/internal/chaos"

// Hierarchy is the L1/L2 cache stack.
type Hierarchy struct{}

// SetChaos arms (or with nil disarms) the fault injector.
func (h *Hierarchy) SetChaos(in *chaos.Injector) {}
