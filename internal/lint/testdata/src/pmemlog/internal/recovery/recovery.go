// Package recovery stubs the log-replay recovery procedure. It mutates
// the image directly — that is its job — and serves as the nobackdoor
// analyzer's negative case: an exempt package full of raw writes that
// must produce zero findings.
package recovery

import "pmemlog/internal/mem"

// Redo re-applies a committed update to the image.
func Redo(img *mem.Physical, a mem.Addr, w mem.Word) {
	img.WriteWord(a, w)
}

// Undo rolls an uncommitted update back.
func Undo(img *mem.Physical, a mem.Addr, old mem.Word) {
	img.WriteWord(a, old)
}
