// Package pheap stubs the persistent-heap allocator for pmlint fixtures.
package pheap

import "pmemlog/internal/mem"

// Heap is the bump allocator over an NVRAM region.
type Heap struct{}

func (h *Heap) Alloc(n uint64) (mem.Addr, error) { return 0, nil }
func (h *Heap) Used() uint64                     { return 0 }
func (h *Heap) SetUsed(n uint64) error           { return nil }
