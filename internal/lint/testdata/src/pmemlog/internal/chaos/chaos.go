// Package chaos stubs the fault-injection plane for pmlint fixtures.
package chaos

// Site names one fault-injection point.
type Site string

// SiteConfig arms one site.
type SiteConfig struct {
	Prob  float64
	Every uint64
	Max   uint64
	Arg   uint64
}

// Plan is one run's complete fault schedule.
type Plan struct {
	Seed  int64
	Sites map[Site]SiteConfig
}

// Injector evaluates a Plan at run time.
type Injector struct{}

// New builds the root injector for a plan.
func New(plan Plan) *Injector { return &Injector{} }

// Ledger snapshots the injection history.
func (in *Injector) Ledger() *Ledger { return nil }

// Ledger is the injection history a run leaves behind.
type Ledger struct {
	Seed     int64
	Injected uint64
}
