package server

// Wire-protocol stubs for the ackafterdurable fixtures: the analyzer
// keys client acks off sends whose element type is this package's
// Response (or *connReq), so the fixture package needs the real names.
const (
	StatusOK  = byte(0x00)
	StatusErr = byte(0x01)
)

// Response is one answer released to a client.
type Response struct {
	Status byte
	Err    string
	Value  uint64
}
