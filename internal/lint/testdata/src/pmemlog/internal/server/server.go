// Fixtures for the obshotpath analyzer: a server-shaped shard whose
// request loop mixes sanctioned atomic-handle calls with the locking
// and allocating obs entry points that must be flagged there — and the
// same heavyweight calls in cold functions, which must pass.
package server

import (
	"io"

	"pmemlog/internal/chaos"
	"pmemlog/internal/obs"
)

// Config describes one server instance.
type Config struct {
	Addr  string
	Chaos *chaos.Injector
}

type shard struct {
	id     int
	tracer *obs.Tracer
	reg    *obs.Registry
	hist   *obs.Histogram
	count  *obs.Counter
	gauge  *obs.Gauge
}

// loop is the shard worker: the hot path under analysis.
func (sh *shard) loop() {
	for i := 0; i < 4; i++ {
		sh.runBatch()
	}
}

func (sh *shard) runBatch() {
	if sh.tracer.Enabled() {
		sh.tracer.Emit(sh.id, 0, 0, 0, 0)
		sh.tracer.EmitSpan(sh.id, 0, 0, 0, 0, 7)
	}
	_ = sh.tracer.RingStats() // want "obs.Tracer.RingStats inside hot function shard.runBatch"
	sh.count.Inc()
	sh.count.Add(2)
	sh.gauge.Set(1)
	sh.gauge.Add(-1)
	sh.hist.Observe(17)
	sh.apply()

	h := sh.reg.Histogram("lat", "", "") // want "obs.Registry.Histogram inside hot function shard.runBatch"
	h.Observe(1)
}

func (sh *shard) apply() {
	sh.hist.Observe(3)
	sh.reg.Counter("reqs", "", "").Inc() // want "obs.Registry.Counter inside hot function shard.apply"
	_ = sh.tracer.Snapshot()             // want "obs.Tracer.Snapshot inside hot function shard.apply"
	sh.tracer.Reset()                    // want "obs.Tracer.Reset inside hot function shard.apply"
}

func (sh *shard) drain() {
	_ = obs.NewRegistry() // want "obs.NewRegistry inside hot function shard.drain"
}

// initObs is setup code: registry lookups are fine off the hot path.
func (sh *shard) initObs() {
	sh.reg = obs.NewRegistry()
	sh.hist = sh.reg.Histogram("lat", "", "")
	sh.count = sh.reg.Counter("reqs", "", "")
	sh.gauge = sh.reg.Gauge("queue", "", "")
}

// metricsResponse is the cold render path.
func (sh *shard) metricsResponse(w io.Writer) error {
	return sh.reg.WritePrometheus(w)
}

// waived is suppressed one line at a time.
func (sh *shard) collect() {
	//pmlint:allow obshotpath
	_ = sh.reg.Gauge("depth", "", "")
}
