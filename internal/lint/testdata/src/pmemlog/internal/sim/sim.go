// Package sim stubs the simulated machine for pmlint fixtures.
package sim

import (
	"io"

	"pmemlog/internal/chaos"
	"pmemlog/internal/mem"
	"pmemlog/internal/pheap"
)

// Config describes one machine to assemble.
type Config struct {
	NVRAMBytes uint64
	Chaos      *chaos.Injector
}

// New assembles a machine.
func New(cfg Config) (*System, error) { return &System{}, nil }

// System is one assembled machine instance.
type System struct{}

func (s *System) Poke(a mem.Addr, w mem.Word)         {}
func (s *System) PokeBytes(a mem.Addr, b []byte)      {}
func (s *System) Peek(a mem.Addr) mem.Word            { return 0 }
func (s *System) Quiesce()                            {}
func (s *System) SaveNVRAM(w io.Writer) error         { return nil }
func (s *System) NVRAMImage() *mem.Physical           { return &mem.Physical{} }
func (s *System) Heap() *pheap.Heap                   { return &pheap.Heap{} }
func (s *System) SetupCtx() Ctx                       { return nil }
func (s *System) RunN(fn func(ctx Ctx, id int)) error { return nil }

// Ctx is the workload-facing load/store/transaction surface.
type Ctx interface {
	TxBegin()
	TxCommit()
	Load(addr mem.Addr) mem.Word
	Store(addr mem.Addr, w mem.Word)
	StoreBytes(addr mem.Addr, b []byte)
}
