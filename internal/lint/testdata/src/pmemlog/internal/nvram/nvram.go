// Package nvram stubs the NVRAM device for pmlint fixtures.
package nvram

import "pmemlog/internal/chaos"

// Device is one banked NVRAM DIMM.
type Device struct{}

// SetChaos arms (or with nil disarms) the fault injector.
func (d *Device) SetChaos(in *chaos.Injector) {}
