// Package mem stubs the real pmemlog/internal/mem surface for the pmlint
// fixture harness. The analyzers match calls by (package path, receiver
// type, method name), so only the shapes matter, not the behavior.
package mem

import "io"

// Addr is a simulated physical address.
type Addr uint64

// Word is the machine word.
type Word uint64

// Physical is the byte-addressable NVRAM image.
type Physical struct{}

func (p *Physical) ReadWord(a Addr) Word               { return 0 }
func (p *Physical) WriteWord(a Addr, w Word)           {}
func (p *Physical) Write(a Addr, b []byte)             {}
func (p *Physical) CopyFrom(o *Physical) error         { return nil }
func (p *Physical) WriteFile(path string) error        { return nil }
func (p *Physical) WriteTo(w io.Writer) (int64, error) { return 0, nil }
