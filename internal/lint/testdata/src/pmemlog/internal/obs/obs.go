// Package obs stubs the observability surface for pmlint fixtures:
// the signatures the obshotpath analyzer keys on, no behavior.
package obs

import "io"

// Kind tags one trace event.
type Kind uint8

// Event is one decoded trace record.
type Event struct{}

// Tracer is the per-ring event tracer.
type Tracer struct{}

func (t *Tracer) Enabled() bool                                                        { return false }
func (t *Tracer) Emit(ring int, ts uint64, k Kind, tx uint16, a uint64)                {}
func (t *Tracer) EmitSpan(ring int, ts uint64, k Kind, tx uint16, a uint64, sp uint32) {}
func (t *Tracer) Snapshot() []Event                                                    { return nil }
func (t *Tracer) Reset()                                                               {}
func (t *Tracer) RingStats() []Event                                                   { return nil }

// Counter / Gauge / Histogram are the atomic metric handles.
type Counter struct{}

func (c *Counter) Inc()          {}
func (c *Counter) Add(n uint64)  {}
func (c *Counter) Value() uint64 { return 0 }

type Gauge struct{}

func (g *Gauge) Set(n int64) {}
func (g *Gauge) Add(n int64) {}

type Histogram struct{}

func (h *Histogram) Observe(v uint64)                  {}
func (h *Histogram) Snapshot() HistogramSnapshot       { return HistogramSnapshot{} }
func (h *Histogram) SnapshotInto(s *HistogramSnapshot) {}

// HistogramSnapshot is the value-type capture of a histogram.
type HistogramSnapshot struct{}

func (s *HistogramSnapshot) DeltaSince(prev, out *HistogramSnapshot) {}
func (s *HistogramSnapshot) Quantile(q float64) uint64               { return 0 }

// Registry is the locking name → handle table.
type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, labels, help string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name, labels, help string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name, labels, help string) *Histogram { return &Histogram{} }
func (r *Registry) WritePrometheus(w io.Writer) error              { return nil }
