// Fixtures for the obshotpath analyzer, scope side: the cost ledger's
// Note* methods run per store / per log record / per write-back inside
// the shard loop, so only the atomic obs fast paths are tolerable
// there; grabbing registry handles or value snapshots flags.
package scope

import "pmemlog/internal/obs"

// LineSketch is the fixed-size recurrence set under analysis.
type LineSketch struct {
	epoch uint64
}

// Touch is hot: pure array probing, no obs surface at all.
func (s *LineSketch) Touch(tag uint64) bool { return tag == s.epoch }

// Clear is hot: the O(1) epoch bump.
func (s *LineSketch) Clear() { s.epoch++ }

// Counters is the per-machine cost ledger under analysis.
type Counters struct {
	payload  uint64
	txnLines LineSketch
	debug    *obs.Counter
	reg      *obs.Registry
	hist     *obs.Histogram
	snap     obs.HistogramSnapshot
}

// NoteStore is hot: plain field bumps and allowed atomic handles only.
func (c *Counters) NoteStore(handle, line, payloadBytes uint64) {
	c.payload += payloadBytes
	c.debug.Inc()
	if c.txnLines.Touch(handle ^ line) {
		c.debug.Add(1)
	}
}

// NoteTxnCommit is hot: retiring the line set must stay an epoch bump;
// registry lookups belong in setup.
func (c *Counters) NoteTxnCommit(payloadBytes, logBytes uint64) {
	c.txnLines.Clear()
	h := c.reg.Histogram("txn_amp", "", "") // want "obs.Registry.Histogram inside hot function Counters.NoteTxnCommit"
	h.Observe(logBytes)
}

// NoteScan is hot: a value snapshot allocates per call and flags.
func (c *Counters) NoteScan() {
	c.snap = c.hist.Snapshot() // want "obs.Histogram.Snapshot inside hot function Counters.NoteScan"
	c.hist.SnapshotInto(&c.snap)
}

// Publish is cold: the machine owner renders the ledger into gauges
// outside the per-event path, where the registry surface is fine.
func (c *Counters) Publish() {
	c.reg.Gauge("scope_payload_bytes", "", "").Set(int64(c.payload))
}
