// Fixtures for the obshotpath analyzer, pulse side: the windowed
// collector's tick and per-request exemplar offer run while traffic
// lands, so only the atomic snapshot fast paths are allowed there; the
// cold document builder may use the heavyweight surface freely.
package pulse

import "pmemlog/internal/obs"

// Collector is the windowed telemetry snapshotter under analysis.
type Collector struct {
	reg  *obs.Registry
	hist *obs.Histogram
	reqs *obs.Counter
	prev obs.HistogramSnapshot
	cur  obs.HistogramSnapshot
	out  obs.HistogramSnapshot
}

// Tick closes one window: the hot path under analysis.
func (c *Collector) Tick() {
	c.hist.SnapshotInto(&c.cur)
	c.cur.DeltaSince(&c.prev, &c.out)
	_ = c.reqs.Value()

	c.cur = c.hist.Snapshot()           // want "obs.Histogram.Snapshot inside hot function Collector.Tick"
	h := c.reg.Histogram("e2e", "", "") // want "obs.Registry.Histogram inside hot function Collector.Tick"
	h.SnapshotInto(&c.cur)

	//pmlint:allow obshotpath
	_ = c.hist.Snapshot()
}

// NoteFinished offers one finished request as a tail exemplar: hot.
func (c *Collector) NoteFinished(latNS int64) {
	c.reqs.Inc()
	c.hist.Observe(uint64(latNS))
	_ = obs.NewRegistry() // want "obs.NewRegistry inside hot function Collector.NoteFinished"
}

// BuildDoc renders the telemetry document: the cold path, where the
// locking registry surface and value snapshots are fine.
func (c *Collector) BuildDoc() uint64 {
	s := c.hist.Snapshot()
	_ = c.reg.Counter("reqs", "", "")
	return s.Quantile(0.99)
}
