// Fixtures for the logbeforedata analyzer: persistent stores outside an
// open transaction (bare, after-commit, on one CFG arm, or one frame
// down in a helper), and the protected shapes that must pass — begins
// through pure-begin helpers, setup contexts, and workload closures.
package logbeforedata

import "pmemlog/internal/sim"

func storesBare(ctx sim.Ctx) {
	ctx.Store(0, 1) // want "with no TxBegin on the path"
}

func storesAfterCommit(ctx sim.Ctx) {
	ctx.TxBegin()
	ctx.Store(0, 1)
	ctx.TxCommit()
	ctx.Store(0, 2) // want "after TxCommit closed the transaction"
}

func storesInTx(ctx sim.Ctx) {
	ctx.TxBegin()
	ctx.Store(0, 1)
	ctx.StoreBytes(8, []byte{1})
	ctx.TxCommit()
}

// storesOnUnprotectedArm brackets the fast path's store but reaches the
// tail store with no transaction open on the other arm. A lexical scan
// sees a TxBegin above the store; only the CFG names the bare path.
func storesOnUnprotectedArm(ctx sim.Ctx, fast bool) {
	if fast {
		ctx.TxBegin()
		ctx.Store(0, 1)
		ctx.TxCommit()
		return
	}
	ctx.Store(0, 2) // want "with no TxBegin on the path"
}

// beginHelper is a pure-begin helper (Must TxBegin, never TxCommit):
// calling it opens the transaction interprocedurally.
func beginHelper(ctx sim.Ctx) {
	ctx.TxBegin()
}

func beginsThroughHelper(ctx sim.Ctx) {
	beginHelper(ctx)
	ctx.Store(0, 1)
	ctx.TxCommit()
}

// applyHelper stores without opening its own transaction — the shape of
// the server's applyPut/writeNode. It has module callers, so the
// obligation is checked at each call site, not here.
func applyHelper(ctx sim.Ctx) {
	ctx.Store(0, 1)
}

func callsHelperInTx(ctx sim.Ctx) {
	ctx.TxBegin()
	applyHelper(ctx)
	ctx.TxCommit()
}

func callsHelperBare(ctx sim.Ctx) {
	applyHelper(ctx) // want "calls applyHelper, which stores persistent state"
}

// setupStores run before the machine is timed: a setup context has no
// log to order against, whether used directly or passed to a helper.
func setupStores(s *sim.System) {
	setup := s.SetupCtx()
	setup.Store(0, 1)
	applyHelper(setup)
}

// workload closures handed to RunN start definitely out of transaction.
func workloadCloses(s *sim.System) {
	s.RunN(func(ctx sim.Ctx, id int) {
		ctx.Store(0, 1) // want "with no TxBegin on the path"
	})
}

func workloadBrackets(s *sim.System) {
	s.RunN(func(ctx sim.Ctx, id int) {
		ctx.TxBegin()
		ctx.Store(0, 1)
		ctx.TxCommit()
	})
}
