// Fixtures for the noallochotpath analyzer, pulse side: the windowed
// collector's tick and per-request exemplar offer run while traffic
// lands and must reuse the preallocated ring slots and scratch buffers
// — per-tick or per-request slices flag.
package pulse

type window struct {
	ops []uint64
}

type Collector struct {
	ring    []window
	pos     int
	scratch []uint64
}

// Tick is hot: the delta is written into the preallocated ring slot in
// place; materializing per-tick buffers flags.
func (c *Collector) Tick() {
	w := &c.ring[c.pos%len(c.ring)]
	for i := range w.ops {
		w.ops[i] = 0
	}
	tmp := make([]uint64, 4) // want "make\\(\\) into a local inside hot function Collector.Tick"
	w.ops = append(w.ops[:0], tmp...)
	c.scratch = append([]uint64{}, w.ops...) // want "append onto a freshly allocated slice inside hot function Collector.Tick"
	c.pos++
}

// NoteFinished is hot: offering an exemplar reuses the scratch slot.
func (c *Collector) NoteFinished(latNS int64) {
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, uint64(latNS))
}

// setup is cold: the ring and scratch are allocated once at creation,
// and growing a receiver field is the amortized sanctioned shape.
func (c *Collector) setup(windows int) {
	c.ring = make([]window, windows)
	for i := range c.ring {
		c.ring[i].ops = make([]uint64, 8)
	}
	c.scratch = make([]uint64, 0, 16)
}
