// Fixtures for the noallochotpath analyzer, scope side: the cost
// ledger is bumped per persistent store inside the shard loop and its
// sketches are fixed arrays cleared by an epoch bump — materializing a
// per-event slice or map flags.
package scope

type sketchSlot struct {
	tag   uint64
	epoch uint64
}

// LineSketch is the fixed-size recurrence set under analysis.
type LineSketch struct {
	epoch uint64
	slots [16]sketchSlot
}

// Touch is hot: probing the fixed array allocates nothing.
func (s *LineSketch) Touch(tag uint64) bool {
	for p := uint64(0); p < 4; p++ {
		sl := &s.slots[(tag+p)&15]
		if sl.epoch == s.epoch && sl.tag == tag {
			return true
		}
		if sl.epoch != s.epoch || sl.tag == 0 {
			sl.tag, sl.epoch = tag, s.epoch
			return false
		}
	}
	return false
}

// Clear is hot: the O(1) epoch bump must never rebuild the array.
func (s *LineSketch) Clear() {
	s.epoch++
	stale := make([]uint64, len(s.slots)) // want "make\\(\\) into a local inside hot function LineSketch.Clear"
	_ = stale
}

// Counters is the per-machine cost ledger under analysis.
type Counters struct {
	payload  uint64
	txnLines LineSketch
	scratch  []uint64
}

// NoteStore is hot: field bumps and sketch probes only.
func (c *Counters) NoteStore(handle, line, payloadBytes uint64) {
	c.payload += payloadBytes
	c.txnLines.Touch(handle ^ line)
}

// NoteTxnCommit is hot: folding the per-txn ratio must not journal
// per-commit state into a fresh slice.
func (c *Counters) NoteTxnCommit(payloadBytes, logBytes uint64) {
	c.txnLines.Clear()
	c.scratch = append([]uint64{}, logBytes/payloadBytes) // want "append onto a freshly allocated slice inside hot function Counters.NoteTxnCommit"
}

// reset is cold: one-time scratch allocation at wiring is the
// sanctioned amortized shape.
func (c *Counters) reset() {
	c.scratch = make([]uint64, 0, 8)
}
