// Fixtures for the noallochotpath analyzer, server side: the shard
// request loop and the store's chain walks must reuse loop-owned
// scratch; growing a receiver field behind a cap check is amortized and
// allowed, per-op locals are not.
package server

type Response struct{ Status byte }

type request struct{ code byte }

type store struct {
	keyScratch []byte
}

// find is hot: growing the receiver-owned scratch field is allowed.
func (st *store) find(key []byte) bool {
	if cap(st.keyScratch) < len(key) {
		st.keyScratch = make([]byte, len(key)) // field growth behind a cap check: amortized
	}
	st.keyScratch = append(st.keyScratch[:0], key...)
	return len(st.keyScratch) == len(key)
}

// get is hot: a per-call copy into a fresh slice flags twice.
func (st *store) get(key []byte) []byte {
	if !st.find(key) {
		return nil
	}
	out := make([]byte, len(key)) // want "make\\(\\) into a local inside hot function store.get"
	copy(out, key)
	return append([]byte{}, out...) // want "append onto a freshly allocated slice inside hot function store.get"
}

type shard struct {
	st    *store
	batch []*request
	resps []Response
}

// collect is hot: appending onto the reused batch slice is the sanctioned
// shape.
func (sh *shard) collect(first *request) []*request {
	batch := append(sh.batch[:0], first)
	sh.batch = batch
	return batch
}

// runBatch is hot: the resps grow path targets a field (allowed); the
// shadowing local make flags.
func (sh *shard) runBatch(batch []*request) {
	if cap(sh.resps) < len(batch) {
		sh.resps = make([]Response, len(batch))
	}
	local := make([]Response, len(batch)) // want "make\\(\\) into a local inside hot function shard.runBatch"
	_ = local
	for _, r := range batch {
		sh.apply(r)
	}
}

// apply is hot; a waiver silences a deliberate cold allocation.
func (sh *shard) apply(r *request) Response {
	if r.code == 0xff {
		//pmlint:allow noallochotpath
		msg := make([]byte, 64) // error path, cold by construction
		_ = msg
	}
	return Response{}
}

// snapshot is cold: stats assembly may allocate freely.
func (sh *shard) snapshot() []Response {
	out := make([]Response, len(sh.resps))
	copy(out, sh.resps)
	return out
}
