// Fixtures for the noallochotpath analyzer, nvlog side: the append and
// truncate hot paths must build their write lists from receiver-owned
// scratch, never from fresh slices.
package nvlog

type Write struct {
	Addr  uint64
	Bytes []byte
}

type Log struct {
	tail          uint64
	scratchWrites []Write
	scratchSlot   [64]byte
}

func (l *Log) metaWrite() Write { return Write{Addr: 0, Bytes: l.scratchSlot[:32]} }

// PrepareAppend is a hot function: scratch reuse passes, fresh slices flag.
func (l *Log) PrepareAppend(payload []byte) ([]Write, error) {
	writes := l.scratchWrites[:0]                // reslice of a field: reuses capacity
	writes = append(writes, Write{Addr: l.tail}) // append onto the local: fine
	writes = append(writes, l.metaWrite())       // ditto
	bad := make([]byte, len(payload))            // want "make\\(\\) into a local inside hot function Log.PrepareAppend"
	copy(bad, payload)
	writes = append([]Write(nil), writes...) // want "append onto a freshly allocated slice inside hot function Log.PrepareAppend"
	l.tail++
	return writes, nil
}

// Truncate is hot too; a waived allocation stays quiet.
func (l *Log) Truncate(n uint64) []Write {
	//pmlint:allow noallochotpath
	tmp := make([]Write, 0, n)
	return append(tmp, l.metaWrite())
}

// Grow is cold: allocation is the point of the call, nothing flags.
func (l *Log) Grow(n int) []Write {
	out := make([]Write, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Write{Bytes: append([]byte(nil), l.scratchSlot[:]...)})
	}
	return out
}
