// Fixtures for the noallochotpath analyzer, flight-recorder side: the
// span table's request path (Acquire/Finish and the Span setters) must
// stay allocation-free — it runs inside the same conn-reader and shard
// loops whose 0 allocs/op the perf tests guard.
package flight

type SpanSnapshot struct{ ID uint64 }

type Span struct {
	id    uint64
	notes []byte
}

// Begin is hot: arming a preallocated slot must not allocate.
func (sp *Span) Begin(id uint64) {
	sp.id = id
	sp.notes = sp.notes[:0]
}

// Mark is hot: a fresh per-mark buffer flags.
func (sp *Span) Mark(stage int) {
	buf := make([]byte, 8) // want "make\\(\\) into a local inside hot function Span.Mark"
	buf[0] = byte(stage)
	sp.notes = append(sp.notes, buf...)
}

// snapshotInto is hot: copying into the caller's preallocated snapshot
// is the sanctioned shape.
func (sp *Span) snapshotInto(out *SpanSnapshot) {
	out.ID = sp.id
}

type Table struct {
	slots []Span
	slow  []SpanSnapshot
	next  int
}

// Acquire is hot: handing out a preallocated slot is fine; growing the
// table per request is not.
func (t *Table) Acquire(id uint64) *Span {
	if t.next >= len(t.slots) {
		t.slots = append([]Span{}, t.slots...) // want "append onto a freshly allocated slice inside hot function Table.Acquire"
		return nil
	}
	sp := &t.slots[t.next]
	t.next++
	sp.Begin(id)
	return sp
}

// Finish is hot: the slow capture must reuse the preallocated ring.
func (t *Table) Finish(sp *Span, slow bool) {
	if slow {
		sp.snapshotInto(&t.slow[0])
	}
	t.next--
}

// Slow is cold: the dump path may allocate freely.
func (t *Table) Slow() []SpanSnapshot {
	out := make([]SpanSnapshot, len(t.slow))
	copy(out, t.slow)
	return out
}
