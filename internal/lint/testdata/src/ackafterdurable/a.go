// Fixtures for the ackafterdurable analyzer: success Responses released
// before the DIMM image persist in transaction-running scopes, and the
// sanctioned shapes — persist-then-ack, conditional persists folded into
// a may-persist helper (the shard.settle pattern), error responses, and
// protocol answers from scopes that never touch the machine.
package ackafterdurable

import (
	"io"

	"pmemlog/internal/server"
	"pmemlog/internal/sim"
)

type shard struct {
	sys *sim.System
	out io.Writer
}

// save is the durability point: drain, then persist the image.
func (sh *shard) save() error {
	sh.sys.Quiesce()
	return sh.sys.SaveNVRAM(sh.out)
}

func (sh *shard) runBatch() {
	sh.sys.RunN(func(ctx sim.Ctx, id int) {
		ctx.TxBegin()
		ctx.Store(0, 1)
		ctx.TxCommit()
	})
}

func (sh *shard) acksBeforeSave(resp chan server.Response) {
	sh.runBatch()
	resp <- server.Response{} // want "sends a client response with no image-persist call"
	_ = sh.save()
}

func (sh *shard) acksAfterSave(resp chan server.Response) {
	sh.runBatch()
	_ = sh.save()
	resp <- server.Response{Status: server.StatusOK}
}

// ackOnSkippedArm saves on one arm only: the read-only arm's ack has no
// persist call on its path. The conditional must live inside a helper
// (settle, below) to be provably ordered.
func (sh *shard) ackOnSkippedArm(resp chan server.Response, wrote bool) {
	sh.runBatch()
	if wrote {
		_ = sh.save()
	}
	resp <- server.Response{} // want "sends a client response with no image-persist call"
}

// settle persists when anything was written. It May persist, so a call
// to it is the durability point on every path; whether the skip
// condition is right is the crash test's job, not the analyzer's.
func (sh *shard) settle(wrote bool) {
	if wrote {
		_ = sh.save()
	}
}

func (sh *shard) acksAfterSettle(resp chan server.Response, wrote bool) {
	sh.runBatch()
	sh.settle(wrote)
	resp <- server.Response{}
}

// errorAck claims no durable state: constant non-OK Status is exempt.
func (sh *shard) errorAck(resp chan server.Response) {
	sh.runBatch()
	resp <- server.Response{Status: server.StatusErr, Err: "shard machine fault"}
}

// reply acks one frame down and never persists: at a call site before
// the save, the ack is happening there.
func reply(resp chan server.Response, r server.Response) {
	resp <- r
}

func (sh *shard) acksThroughHelper(resp chan server.Response) {
	sh.runBatch()
	reply(resp, server.Response{}) // want "calls a helper that sends a client response"
	_ = sh.save()
}

func (sh *shard) helperAfterSave(resp chan server.Response) {
	sh.runBatch()
	_ = sh.save()
	reply(resp, server.Response{})
}

// protocolError never touches the machine: a scope with no transactions
// owes no ordering and may answer malformed requests freely.
func protocolError(resp chan server.Response) {
	resp <- server.Response{Status: server.StatusErr, Err: "bad frame"}
}
