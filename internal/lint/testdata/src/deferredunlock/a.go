// Fixtures for the deferredunlock analyzer: locks leaked on early-return
// arms, released with the wrong flavor or the wrong receiver, and the
// covered shapes — defer at acquisition, inline release on every path,
// and panic exits (a crash, not a leak).
package deferredunlock

import "sync"

type ring struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (r *ring) leaksOnEarlyReturn(stop bool) {
	r.mu.Lock() // want "has a path to return without r.mu.Unlock"
	if stop {
		return
	}
	r.n++
	r.mu.Unlock()
}

func (r *ring) deferred(stop bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if stop {
		return
	}
	r.n++
}

func (r *ring) inlineOnAllPaths(fast bool) {
	r.mu.Lock()
	if fast {
		r.n++
		r.mu.Unlock()
		return
	}
	r.n += 2
	r.mu.Unlock()
}

func (r *ring) readLeak() int {
	r.rw.RLock() // want "has a path to return without r.rw.RUnlock"
	if r.n > 0 {
		return r.n
	}
	r.rw.RUnlock()
	return 0
}

func (r *ring) readCovered() int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.n
}

// wrongFlavor releases a read acquisition with the writer Unlock: not a
// matching release, and a runtime fault besides.
func (r *ring) wrongFlavor() {
	r.rw.RLock() // want "has a path to return without r.rw.RUnlock"
	r.rw.Unlock()
}

// crossedReceivers unlocks a different mutex than it locked.
func crossedReceivers(a, b *sync.Mutex) {
	a.Lock() // want "has a path to return without a.Unlock"
	b.Unlock()
}

// panicExit is a crash, not a leak: the lock dies with the process.
func (r *ring) panicExit(bad bool) {
	r.mu.Lock()
	if bad {
		panic("wedged")
	}
	r.n++
	r.mu.Unlock()
}

// closures are their own scopes: a leak inside one is the closure's.
func (r *ring) closureLeak() func() {
	return func() {
		r.mu.Lock() // want "has a path to return without r.mu.Unlock"
		r.n++
	}
}

func (r *ring) closureCovered() func() {
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.n++
	}
}
