// Fixtures for the chaosonly analyzer: every arming entry point — a raw
// chaos.New, component SetChaos installs, and Config.Chaos writes via
// assignment and composite literal — used from an ordinary package
// (which must be flagged), next to the read-only ledger access that
// must pass.
package chaosonly

import (
	"pmemlog/internal/cache"
	"pmemlog/internal/chaos"
	"pmemlog/internal/memctl"
	"pmemlog/internal/nvram"
	"pmemlog/internal/server"
	"pmemlog/internal/sim"
)

func buildInjector() *chaos.Injector {
	return chaos.New(chaos.Plan{Seed: 1}) // want "chaos.New builds a fault injector outside the chaos plane"
}

func armComponents(c *memctl.Controller, d *nvram.Device, h *cache.Hierarchy, in *chaos.Injector) {
	c.SetChaos(in) // want "\\(Controller\\).SetChaos arms fault injection outside sim construction"
	d.SetChaos(in) // want "\\(Device\\).SetChaos arms fault injection outside sim construction"
	h.SetChaos(in) // want "\\(Hierarchy\\).SetChaos arms fault injection outside sim construction"
}

func armSimByAssignment(in *chaos.Injector) sim.Config {
	var cfg sim.Config
	cfg.NVRAMBytes = 1 << 20
	cfg.Chaos = in // want "assigning Config.Chaos arms fault injection"
	return cfg
}

func armSimByLiteral(in *chaos.Injector) (*sim.System, error) {
	return sim.New(sim.Config{
		NVRAMBytes: 1 << 20,
		Chaos:      in, // want "setting Config.Chaos arms fault injection"
	})
}

func armServerByLiteral(in *chaos.Injector) server.Config {
	return server.Config{Addr: ":0", Chaos: in} // want "setting Config.Chaos arms fault injection"
}

func armServerByPointer(cfg *server.Config, in *chaos.Injector) {
	cfg.Chaos = in // want "assigning Config.Chaos arms fault injection"
}

// plainConfig builds unarmed configs: no Chaos field touched, no finding.
func plainConfig() (sim.Config, server.Config) {
	cfg := sim.Config{NVRAMBytes: 1 << 20}
	cfg.NVRAMBytes = 2 << 20
	return cfg, server.Config{Addr: ":0"}
}

// readLedger consumes injection history: reading is not arming.
func readLedger(in *chaos.Injector) *chaos.Ledger {
	return in.Ledger()
}

// waived is suppressed one line at a time.
func waived(in *chaos.Injector) sim.Config {
	var cfg sim.Config
	//pmlint:allow chaosonly
	cfg.Chaos = in
	return cfg
}
