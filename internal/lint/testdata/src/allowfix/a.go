// Fixtures for the //pmlint:allow escape hatch: a directive suppresses
// exactly one finding on its own line or the next line, an unused
// directive is itself a finding, and unknown rule names are rejected.
package allowfix

import (
	"pmemlog/internal/mem"
	"pmemlog/internal/sim"
)

func allowedTrailing(s *sim.System, a mem.Addr) {
	s.Poke(a, 1) //pmlint:allow nobackdoor -- fixture: sanctioned population
}

func allowedStandalone(s *sim.System, a mem.Addr) {
	//pmlint:allow nobackdoor -- fixture: sanctioned population
	s.Poke(a, 1)
}

func allowDoesNotLeak(s *sim.System, a mem.Addr) {
	//pmlint:allow nobackdoor -- covers only the next line
	s.Poke(a, 1)
	s.Poke(a, 2) // want "\\(System\\).Poke mutates persistent state"
}

func allowWrongRule(s *sim.System, a mem.Addr) {
	//pmlint:allow quiesceorder -- inactive rule here: suppresses nothing, reported unused? no: quiesceorder did not run
	s.Poke(a, 1) // want "\\(System\\).Poke mutates persistent state"
}

func unusedAllow(s *sim.System, a mem.Addr) {
	//pmlint:allow nobackdoor -- stale directive: want "unused pmlint:allow directive"
	_ = s
	_ = a
}

func unknownRule(s *sim.System, a mem.Addr) {
	//pmlint:allow nosuchrule -- typo: want "unknown rule"
	_ = s
	_ = a
}
