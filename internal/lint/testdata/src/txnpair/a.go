// Fixtures for the txnpair analyzer: leaked TxBegin, dropped
// Engine.Begin handles, and the paired/handed-off shapes that must pass.
package txnpair

import (
	"pmemlog/internal/core"
	"pmemlog/internal/sim"
)

func leaks(ctx sim.Ctx) {
	ctx.TxBegin() // want "a path reaches return with no TxCommit"
	ctx.Store(0, 1)
}

func leaksOneOfTwo(ctx sim.Ctx) {
	ctx.TxBegin()
	ctx.Store(0, 1)
	ctx.TxCommit()
	ctx.TxBegin() // want "a path reaches return with no TxCommit"
	ctx.Store(0, 2)
}

// leaksOnOneArm commits on the happy path only: the early return leaks.
// The lexical counter could not see this; the CFG names the arm.
func leaksOnOneArm(ctx sim.Ctx, bad bool) {
	ctx.TxBegin() // want "a path reaches return with no TxCommit"
	if bad {
		return
	}
	ctx.Store(0, 1)
	ctx.TxCommit()
}

// commitsOnAllArms closes the transaction on both branches; the join
// proof needs per-path reasoning, not a dominating commit.
func commitsOnAllArms(ctx sim.Ctx, alt bool) {
	ctx.TxBegin()
	if alt {
		ctx.Store(0, 2)
		ctx.TxCommit()
		return
	}
	ctx.Store(0, 1)
	ctx.TxCommit()
}

// commitHelper is a pure-commit helper (Must TxCommit, never TxBegin):
// calling it earns commit credit interprocedurally.
func commitHelper(ctx sim.Ctx) {
	ctx.TxCommit()
}

func pairedThroughHelper(ctx sim.Ctx) {
	ctx.TxBegin()
	ctx.Store(0, 1)
	commitHelper(ctx)
}

// panicExit is not a leak: the paths that skip TxCommit end in panic,
// which models a crash — recovery, not truncation, owns that state.
func panicExit(ctx sim.Ctx, broken bool) {
	ctx.TxBegin()
	if broken {
		panic("wedged")
	}
	ctx.TxCommit()
}

func paired(ctx sim.Ctx) {
	ctx.TxBegin()
	ctx.Store(0, 1)
	ctx.TxCommit()
}

func pairedDefer(ctx sim.Ctx) {
	ctx.TxBegin()
	defer ctx.TxCommit()
	ctx.Store(0, 1)
}

func pairedInClosure(s *sim.System) {
	s.RunN(func(ctx sim.Ctx, id int) {
		ctx.TxBegin()
		ctx.Store(0, 1)
		ctx.TxCommit()
	})
}

func committedByDeferredClosure(ctx sim.Ctx) {
	ctx.TxBegin()
	defer func() { ctx.TxCommit() }()
	ctx.Store(0, 1)
}

// tracer forwards sim.Ctx calls to a wrapped context, the shape of
// trace recorders and fault injectors. Its TxBegin/TxCommit methods are
// delegation, not opened transactions; neither may be flagged.
type tracer struct{ inner sim.Ctx }

func (t tracer) TxBegin()  { t.inner.TxBegin() }
func (t tracer) TxCommit() { t.inner.TxCommit() }

func discards(e *core.Engine) {
	e.Begin(0, 0) // want "discards the transaction handle"
}

func blankHandle(e *core.Engine) (err error) {
	_, err = e.Begin(0, 0) // want "assigns the Engine.Begin transaction handle to _"
	return err
}

func blankWashed(e *core.Engine) {
	tx, _ := e.Begin(0, 0) // want "never meaningfully uses transaction handle \"tx\""
	_ = tx
}

func enginePaired(e *core.Engine) error {
	tx, err := e.Begin(0, 0)
	if err != nil {
		return err
	}
	_, err = e.Commit(1, tx)
	return err
}

type session struct{ tx *core.Tx }

// handedOff parks the handle in a struct for a later commit — the
// pattern sim's threadCtx uses; must not be flagged.
func (s *session) handedOff(e *core.Engine) error {
	tx, err := e.Begin(0, 0)
	if err != nil {
		return err
	}
	s.tx = tx
	return nil
}

func returned(e *core.Engine) (*core.Tx, error) {
	tx, err := e.Begin(0, 0)
	return tx, err
}
