// Fixtures for the nobackdoor analyzer: raw persistent-state mutation in
// an ordinary (non-machine, non-recovery) package, and the sanctioned
// SetupCtx / transaction routes that must pass.
package nobackdoor

import (
	"pmemlog/internal/mem"
	"pmemlog/internal/pheap"
	"pmemlog/internal/sim"
)

func populateRaw(s *sim.System, base mem.Addr) {
	s.Poke(base, 1)                 // want "\\(System\\).Poke mutates persistent state"
	s.PokeBytes(base, []byte{1, 2}) // want "\\(System\\).PokeBytes mutates persistent state"
}

func populateSanctioned(s *sim.System, base mem.Addr) {
	setup := s.SetupCtx()
	setup.Store(base, 1)
	setup.StoreBytes(base, []byte{1, 2})
}

func mutateImage(img *mem.Physical, a mem.Addr) {
	img.WriteWord(a, 7)           // want "\\(Physical\\).WriteWord mutates persistent state"
	img.Write(a, []byte{1})       // want "\\(Physical\\).Write mutates persistent state"
	img.CopyFrom(&mem.Physical{}) // want "\\(Physical\\).CopyFrom mutates persistent state"
}

func readImage(img *mem.Physical, a mem.Addr) mem.Word {
	return img.ReadWord(a) // reads are not a backdoor
}

func rewindHeap(h *pheap.Heap) error {
	return h.SetUsed(0) // want "\\(Heap\\).SetUsed mutates persistent state"
}

func transactional(ctx sim.Ctx, a mem.Addr) {
	ctx.TxBegin()
	ctx.Store(a, 1)
	ctx.TxCommit()
}
