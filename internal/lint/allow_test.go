package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestAllowFixture exercises the escape hatch end to end through the
// same pipeline the driver uses: trailing and standalone placement,
// next-line-only scope, inactive-rule directives, unused directives, and
// unknown rule names.
func TestAllowFixture(t *testing.T) {
	RunFixture(t, Nobackdoor, "allowfix")
}

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func diagAt(line int, rule string) Diagnostic {
	return Diagnostic{
		Pos:     token.Position{Filename: "allow.go", Line: line, Column: 1},
		Rule:    rule,
		Message: "finding",
	}
}

var allowRules = map[string]bool{"nobackdoor": true, "quiesceorder": true}

// TestAllowSuppressesExactlyOne pins the narrowness contract: two
// findings of the allowed rule on the covered line, one directive —
// exactly one survives.
func TestAllowSuppressesExactlyOne(t *testing.T) {
	fset, files := parseOne(t, `package p

//pmlint:allow nobackdoor
var x = 1
`)
	diags := []Diagnostic{diagAt(4, "nobackdoor"), diagAt(4, "nobackdoor")}
	kept, suppressed := ApplyAllows(fset, files, diags, allowRules, allowRules)
	if suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", suppressed)
	}
	if len(kept) != 1 || kept[0].Rule != "nobackdoor" {
		t.Fatalf("kept = %v, want the one unsuppressed finding", kept)
	}
}

// TestAllowIsRuleScoped: a directive for one rule does not touch another
// rule's finding on the same line.
func TestAllowIsRuleScoped(t *testing.T) {
	fset, files := parseOne(t, `package p

//pmlint:allow nobackdoor
var x = 1
`)
	diags := []Diagnostic{diagAt(4, "quiesceorder")}
	kept, suppressed := ApplyAllows(fset, files, diags, allowRules, allowRules)
	if suppressed != 0 {
		t.Fatalf("suppressed = %d, want 0", suppressed)
	}
	// The quiesceorder finding survives AND the directive is unused.
	if len(kept) != 2 {
		t.Fatalf("kept = %v, want surviving finding + unused-directive finding", kept)
	}
	foundUnused := false
	for _, d := range kept {
		if d.Rule == AllowRule && strings.Contains(d.Message, "unused") {
			foundUnused = true
		}
	}
	if !foundUnused {
		t.Fatalf("kept = %v, want an unused-directive finding", kept)
	}
}

// TestAllowMultiRuleDirective: one directive may waive two different
// rules on the same line, one finding each.
func TestAllowMultiRuleDirective(t *testing.T) {
	fset, files := parseOne(t, `package p

//pmlint:allow nobackdoor,quiesceorder -- both waived here
var x = 1
`)
	diags := []Diagnostic{diagAt(4, "nobackdoor"), diagAt(4, "quiesceorder")}
	kept, suppressed := ApplyAllows(fset, files, diags, allowRules, allowRules)
	if suppressed != 2 {
		t.Fatalf("suppressed = %d, want 2", suppressed)
	}
	if len(kept) != 0 {
		t.Fatalf("kept = %v, want none", kept)
	}
}

// TestAllowDoesNotReachFartherLines: a directive two lines above the
// finding suppresses nothing and is reported unused.
func TestAllowDoesNotReachFartherLines(t *testing.T) {
	fset, files := parseOne(t, `package p

//pmlint:allow nobackdoor

var x = 1
`)
	diags := []Diagnostic{diagAt(5, "nobackdoor")}
	kept, suppressed := ApplyAllows(fset, files, diags, allowRules, allowRules)
	if suppressed != 0 {
		t.Fatalf("suppressed = %d, want 0", suppressed)
	}
	if len(kept) != 2 {
		t.Fatalf("kept = %v, want surviving finding + unused-directive finding", kept)
	}
}
