package lint

import "testing"

func TestTxnpairFixture(t *testing.T) {
	RunFixture(t, Txnpair, "txnpair")
}
