package lint

import (
	"go/ast"
	"go/types"
)

const (
	chaosPkg         = "pmemlog/internal/chaos"
	chaosCampaignPkg = "pmemlog/internal/chaos/campaign"
	memctlPkg        = "pmemlog/internal/memctl"
	nvramPkg         = "pmemlog/internal/nvram"
	cachePkg         = "pmemlog/internal/cache"
)

// Chaosonly confines the fault-injection arming surface to the chaos
// plane itself. The injection hooks compiled into the memory controller,
// NVRAM device, cache hierarchy, and server are nil-guarded no-ops until
// someone arms them — and the only parties allowed to do that are the
// chaos campaign engine, its pmchaos driver, and the sim constructor
// that propagates an armed config down to the components. A production
// binary (cmd/pmserver with its default config) must have no reachable
// path to an armed injector: a torn write or dropped write-back that a
// customer can switch on is not a test harness, it is a data-loss
// feature. The rule flags every arming entry point — SetChaos calls,
// chaos.New, and writes to the Chaos field of sim.Config/server.Config —
// outside the sanctioned packages. Reading a ledger (flight dumps,
// pmdoctor) is not arming and stays unrestricted.
var Chaosonly = &Analyzer{
	Name: "chaosonly",
	Doc:  "fault-injection arming (chaos.New, SetChaos, Config.Chaos writes) only in chaos/campaign, cmd/pmchaos, and sim construction",
	Run:  runChaosonly,
}

// chaosonlyExempt lists the packages that ARE the chaos plane or the
// sanctioned construction path. _test.go files are exempt by
// construction (the loader checks the non-test compilation unit), so
// crash tests anywhere may arm injectors freely.
var chaosonlyExempt = map[string]bool{
	chaosPkg:              true, // the injector itself
	chaosCampaignPkg:      true, // the campaign engine arms every run
	"pmemlog/cmd/pmchaos": true, // the campaign driver
	simPkg:                true, // propagates Config.Chaos to components
}

// chaosArmers lists the component methods that install an injector.
var chaosArmers = []struct {
	pkg, recv string
}{
	{memctlPkg, "Controller"},
	{nvramPkg, "Device"},
	{cachePkg, "Hierarchy"},
}

func runChaosonly(pass *Pass) {
	if chaosonlyExempt[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeOf(pass.Info, n)
				if isFunc(fn, chaosPkg, "", "New") {
					pass.Reportf(n.Pos(),
						"chaos.New builds a fault injector outside the chaos plane; arm faults through the campaign engine or a test")
					return true
				}
				for _, a := range chaosArmers {
					if isFunc(fn, a.pkg, a.recv, "SetChaos") {
						pass.Reportf(n.Pos(),
							"(%s).SetChaos arms fault injection outside sim construction; only sim.New may install an injector into components", a.recv)
						break
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "Chaos" && isChaosConfig(pass.Info, sel.X) {
						pass.Reportf(sel.Pos(),
							"assigning Config.Chaos arms fault injection; only the chaos campaign engine may build armed configs")
					}
				}
			case *ast.CompositeLit:
				if !isChaosConfigType(pass.Info.TypeOf(n)) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Chaos" {
						pass.Reportf(kv.Pos(),
							"setting Config.Chaos arms fault injection; only the chaos campaign engine may build armed configs")
					}
				}
			}
			return true
		})
	}
}

// isChaosConfig reports whether expr's type is a Config struct carrying
// a chaos hook (sim.Config or server.Config).
func isChaosConfig(info *types.Info, expr ast.Expr) bool {
	return isChaosConfigType(info.TypeOf(expr))
}

func isChaosConfigType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Config" || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case simPkg, serverPkg:
		return true
	}
	return false
}
