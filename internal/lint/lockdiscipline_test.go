package lint

import "testing"

func TestLockdisciplineFixture(t *testing.T) {
	RunFixture(t, Lockdiscipline, "lockdiscipline")
}
