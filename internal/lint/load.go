package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
}

// Load type-checks every main-module package matching patterns (e.g.
// "./...") rooted at dir. It shells out to `go list -deps -export` once
// for package discovery and for the compiled export data of standard
// library dependencies, then parses and type-checks module packages from
// source. Only the non-test compilation unit is loaded: _test.go files
// are the sanctioned home of raw-NVRAM backdoors and deliberately
// unquiesced crash images, so pmlint's contract applies to what ships.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	ld := &moduleLoader{
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*listPkg),
		checked: make(map[string]*Package),
		exports: make(map[string]string),
	}
	ld.std = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)

	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		lp := p
		ld.pkgs[lp.ImportPath] = &lp
		ld.exports[lp.ImportPath] = lp.Export
		order = append(order, &lp)
	}

	var result []*Package
	for _, lp := range order {
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			continue
		}
		pkg, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		result = append(result, pkg)
	}
	return result, nil
}

// moduleLoader type-checks module packages from source, importing
// standard-library dependencies from compiled export data.
type moduleLoader struct {
	fset    *token.FileSet
	pkgs    map[string]*listPkg
	checked map[string]*Package
	exports map[string]string
	std     types.Importer
}

// lookupExport feeds the gc importer the export file `go list -export`
// reported for a dependency.
func (ld *moduleLoader) lookupExport(path string) (io.ReadCloser, error) {
	f, ok := ld.exports[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// Import implements types.Importer over the mixed source/export world.
func (ld *moduleLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.checked[path]; ok {
		return p.Types, nil
	}
	if lp, ok := ld.pkgs[path]; ok && !lp.Standard && lp.Module != nil && lp.Module.Main {
		p, err := ld.check(lp)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

// check parses and type-checks one module package from source.
func (ld *moduleLoader) check(lp *listPkg) (*Package, error) {
	if p, ok := ld.checked[lp.ImportPath]; ok {
		return p, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(lp.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	p := &Package{Path: lp.ImportPath, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.checked[lp.ImportPath] = p
	return p, nil
}

// stdImporter imports standard-library packages from compiled export
// data, materialized lazily with `go list -export` (the build cache makes
// repeat calls cheap). Used by the fixture harness, where the target
// package is not part of any `go list`-visible module.
type stdImporter struct {
	dir     string
	exports map[string]string
	listed  map[string]bool
	gc      types.Importer
}

func newStdImporter(fset *token.FileSet, dir string) *stdImporter {
	si := &stdImporter{dir: dir, exports: make(map[string]string), listed: make(map[string]bool)}
	si.gc = importer.ForCompiler(fset, "gc", si.lookup)
	return si
}

func (si *stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return si.gc.Import(path)
}

func (si *stdImporter) lookup(path string) (io.ReadCloser, error) {
	if err := si.ensure(path); err != nil {
		return nil, err
	}
	f, ok := si.exports[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// ensure runs `go list -deps -export` for path once, recording export
// files for it and its whole dependency closure.
func (si *stdImporter) ensure(path string) error {
	if si.listed[path] {
		return nil
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", path)
	cmd.Dir = si.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("lint: go list -export %s: %v\n%s", path, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		si.exports[p.ImportPath] = p.Export
		si.listed[p.ImportPath] = true
	}
	si.listed[path] = true
	return nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
