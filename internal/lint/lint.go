// Package lint is pmlint's analysis framework: a self-contained,
// standard-library-only analogue of golang.org/x/tools/go/analysis that
// statically enforces the repo's persistence-domain invariants. The
// paper's value proposition is an ordering contract — log records become
// durable before the cached data they describe, commits are acked only
// after the undo+redo record is in NVRAM — and the analyzers in this
// package make the corresponding API discipline a build-time property:
//
//	txnpair         every TxBegin reaches a TxCommit; every Engine.Begin
//	                handle reaches Commit/Abort or is handed off
//	nobackdoor      raw NVRAM mutation (Poke, Physical.WriteWord, ...) is
//	                confined to the machine layers, recovery, and tests
//	quiesceorder    persisting a DIMM image requires a preceding Quiesce
//	                (drain the log/write-combining buffers first)
//	lockdiscipline  copied locks, mixed atomic/plain field access, and
//	                channel sends made while holding a mutex
//	obshotpath      observability calls inside the server's shard request
//	                loop restricted to the lock-free atomic handles
//	noallochotpath  no per-op heap allocation (make into locals, appends
//	                onto fresh slices) in nvlog append/truncate or the
//	                shard apply/store hot functions
//	chaosonly       fault-injection arming (chaos.New, SetChaos,
//	                Config.Chaos writes) confined to the chaos plane,
//	                cmd/pmchaos, and sim construction
//	logbeforedata   every persistent store happens inside an open
//	                transaction on all CFG paths, through helpers
//	ackafterdurable client acks in transaction-running scopes are
//	                dominated by the image persist that makes them true
//	deferredunlock  every mutex acquisition is released on all exit paths
//
// txnpair, quiesceorder, and the three analyzers above are built on
// internal/lint/flow (CFGs, dominator trees, path searches) plus the
// Module's interprocedural effect summaries, so they prove orderings on
// every panic-free path and report the concrete path that breaks one.
//
// Findings can be suppressed one-at-a-time with a `//pmlint:allow <rule>`
// directive on the offending line or the line above (see allow.go); an
// allow that suppresses nothing is itself a finding.
//
// The cmd/pmlint driver runs the suite over package patterns; tests drive
// individual analyzers over testdata fixtures with RunFixture.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in reports and //pmlint:allow directives.
	Name string
	// Doc is a one-line description shown by `pmlint -list`.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Analyzers returns the full suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Txnpair, Nobackdoor, Quiesceorder, Lockdiscipline, Obshotpath,
		Noallochotpath, Chaosonly, Logbeforedata, Ackafterdurable, Deferredunlock,
	}
}

// FlowAnalyzers returns the CFG/dominance-based subset (the `-only flow`
// group): the path-sensitive ordering rules built on internal/lint/flow.
func FlowAnalyzers() []*Analyzer {
	return []*Analyzer{Txnpair, Quiesceorder, Logbeforedata, Ackafterdurable, Deferredunlock}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Mod is the whole-module view: CFGs, call graph, and effect
	// summaries shared by the flow-based analyzers.
	Mod *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and tagged with its rule.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// RunAnalyzers applies each analyzer to pkg and returns the raw findings
// (before //pmlint:allow filtering), sorted by position. The module view
// covers pkg alone; the driver builds one Module over every loaded
// package instead so interprocedural credit crosses package boundaries.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return NewModule([]*Package{pkg}).Run(pkg, analyzers)
}

// Run applies each analyzer to one of the module's packages and returns
// the raw findings (before //pmlint:allow filtering), sorted by position.
func (m *Module) Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Mod:      m,
			diags:    &diags,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, rule.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// calleeOf resolves the function or method a call invokes, through method
// values, interface method sets, and package-qualified names alike.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isFunc reports whether fn is the named function of the named package.
// recv, when non-empty, additionally constrains the receiver's type name
// (interfaces included); pass "" to match any receiver or none.
func isFunc(fn *types.Func, pkgPath, recv, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if recv == "" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// funcScopes yields every top-level function body in the file: declared
// functions and methods. Closures are part of their enclosing function's
// subtree, matching how a reader pairs Begin with Commit.
func funcScopes(file *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// funcName renders a function's reported name, methods as T.m.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
