package lint

import "testing"

func TestObshotpath(t *testing.T) {
	RunFixture(t, Obshotpath, "pmemlog/internal/server")
}

func TestObshotpathPulse(t *testing.T) {
	RunFixture(t, Obshotpath, "pmemlog/internal/obs/pulse")
}

func TestObshotpathScope(t *testing.T) {
	RunFixture(t, Obshotpath, "pmemlog/internal/obs/scope")
}
