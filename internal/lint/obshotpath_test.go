package lint

import "testing"

func TestObshotpath(t *testing.T) {
	RunFixture(t, Obshotpath, "pmemlog/internal/server")
}
