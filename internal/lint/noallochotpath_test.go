package lint

import "testing"

func TestNoallochotpathNvlog(t *testing.T) {
	RunFixture(t, Noallochotpath, "noalloc/internal/nvlog")
}

func TestNoallochotpathServer(t *testing.T) {
	RunFixture(t, Noallochotpath, "noalloc/internal/server")
}

func TestNoallochotpathFlight(t *testing.T) {
	RunFixture(t, Noallochotpath, "noalloc/internal/flight")
}

func TestNoallochotpathPulse(t *testing.T) {
	RunFixture(t, Noallochotpath, "noalloc/internal/obs/pulse")
}

func TestNoallochotpathScope(t *testing.T) {
	RunFixture(t, Noallochotpath, "noalloc/internal/obs/scope")
}
