package lint

import (
	"go/ast"
	"go/types"

	"pmemlog/internal/lint/flow"
)

// Txnpair enforces transaction pairing, the precondition for the paper's
// commit contract: a TxBegin that never reaches TxCommit leaves the
// machine holding a physical transaction ID register forever (the log can
// never truncate past the open transaction's records and eventually
// wedges), and an Engine.Begin handle that is dropped on the floor leaks
// the same resources at the hardware-engine layer.
var Txnpair = &Analyzer{
	Name: "txnpair",
	Doc:  "every TxBegin must reach a TxCommit; every Engine.Begin handle must reach Commit/Abort or be handed off",
	Run:  runTxnpair,
}

func runTxnpair(pass *Pass) {
	// The trace package replays recorded op streams: its TxBegin/TxCommit
	// calls are driven by data whose pairing the recording run
	// established, so no static path proof can (or needs to) hold there.
	replay := pass.Pkg.Path() == tracePkg
	for _, file := range pass.Files {
		for _, fd := range funcScopes(file) {
			if !replay {
				checkCtxPairing(pass, fd)
			}
			checkEnginePairing(pass, fd)
		}
	}
}

// checkCtxPairing proves, on each scope's CFG, that every TxBegin is
// followed by a TxCommit on all panic-free paths to return. Credit comes
// from a direct TxCommit, a `defer ctx.TxCommit()` (or a deferred or
// stored closure committing — permissive by design: the old lexical
// check accepted those, and a closure built to commit almost always
// runs), or a call to a pure-commit helper (Must TxCommit, never
// TxBegin). A violation reports the concrete escaping path.
func checkCtxPairing(pass *Pass, fd *ast.FuncDecl) {
	// A method literally named TxBegin or TxCommit is a forwarding
	// wrapper implementing sim.Ctx (tracers, fault injectors): the call
	// it makes is delegation, not an opened transaction, and pairing is
	// the wrapped context's caller's obligation.
	if fd.Recv != nil && (fd.Name.Name == "TxBegin" || fd.Name.Name == "TxCommit") {
		return
	}
	for _, sc := range scopesOf(fd) {
		checkCtxScope(pass, sc)
	}
}

func checkCtxScope(pass *Pass, sc scope) {
	commitCredit := func(n ast.Node) bool {
		for _, call := range callsIn(n, true) {
			fn := calleeOf(pass.Info, call)
			if primEffect(fn) == effTxCommit {
				return true
			}
			if fi := pass.Mod.funcInfo(fn); fi != nil &&
				fi.must&effTxCommit != 0 && fi.may&effTxBegin == 0 {
				return true
			}
		}
		return false
	}

	g := pass.Mod.Graph(sc.body())
	type site struct {
		n    ast.Node
		b    *flow.Block
		i    int
		call *ast.CallExpr
	}
	var begins, deferCommits []site
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				if commitCredit(n) {
					deferCommits = append(deferCommits, site{n, b, i, nil})
				}
				continue
			}
			for _, call := range callsIn(n, false) {
				if primEffect(calleeOf(pass.Info, call)) == effTxBegin {
					begins = append(begins, site{n, b, i, call})
				}
			}
		}
	}
	if len(begins) == 0 {
		return
	}
	dom := flow.Dominators(g)
	for _, beg := range begins {
		// A commit already registered with defer when TxBegin runs (defer
		// earlier in the same block, or in a dominating one) covers every
		// exit; Escape only scans forward from the begin.
		covered := false
		for _, dc := range deferCommits {
			if (dc.b == beg.b && dc.i < beg.i) || (dc.b != beg.b && dom.Dominates(dc.b, beg.b)) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		chain, escapes := g.Escape(beg.n, commitCredit)
		if !escapes {
			continue
		}
		pass.Reportf(beg.call.Pos(),
			"%s opens a transaction with TxBegin but a path reaches return with no TxCommit (%s); an uncommitted transaction pins its log records and wedges truncation",
			sc.name, flow.PathString(pass.Fset, chain, g.Exit))
	}
}

// checkEnginePairing tracks *core.Tx handles returned by Engine.Begin.
// A handle is satisfied if it reaches an Engine.Commit/Abort call or is
// used in any other way (stored in a field, returned, passed on): the
// analyzer flags only handles that are provably dropped — discarded
// results, blank assignments, and variables never read again.
func checkEnginePairing(pass *Pass, fd *ast.FuncDecl) {
	// defs maps each handle object to the identifier that defined it.
	defs := make(map[types.Object]*ast.Ident)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if isFunc(calleeOf(pass.Info, call), corePkg, "Engine", "Begin") {
					pass.Reportf(call.Pos(),
						"%s discards the transaction handle returned by Engine.Begin; the engine-side transaction can never commit or abort", funcName(fd))
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isFunc(calleeOf(pass.Info, call), corePkg, "Engine", "Begin") {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true // assigned into a field/index: handed off
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"%s assigns the Engine.Begin transaction handle to _; the engine-side transaction can never commit or abort", funcName(fd))
				return true
			}
			// Only `:=`-declared locals are tracked; assigning into a
			// pre-existing variable or field is a handoff.
			if obj := pass.Info.Defs[id]; obj != nil {
				defs[obj] = id
			}
		}
		return true
	})
	if len(defs) == 0 {
		return
	}
	// Any later use of the handle satisfies the rule — except feeding it
	// to the blank identifier, which only washes the compiler's
	// declared-and-not-used error without committing anything.
	blankUses := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if l, ok := lhs.(*ast.Ident); ok && l.Name == "_" {
				if r, ok := as.Rhs[i].(*ast.Ident); ok {
					blankUses[r] = true
				}
			}
		}
		return true
	})
	used := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || blankUses[id] {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if def, tracked := defs[obj]; tracked && id != def {
			used[obj] = true
		}
		return true
	})
	for obj, id := range defs {
		if !used[obj] {
			pass.Reportf(id.Pos(),
				"%s never meaningfully uses transaction handle %q after Engine.Begin; it must reach Engine.Commit (or Abort) or be handed off", funcName(fd), id.Name)
		}
	}
}
