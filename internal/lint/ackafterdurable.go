package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"pmemlog/internal/lint/flow"
)

// Ackafterdurable is the commit-acknowledgement half of the paper's
// contract, the invariant TestFlightDumpKillRecoveryAgreement probes
// dynamically: a server must not release a success Response to a client
// until the state it acknowledges is durable. In this codebase the
// durability point is the shard's image persist (save → Quiesce +
// WriteFile), so inside any scope that runs transactions (May TxBegin —
// closures handed to RunN absorbed), every send on a client-facing
// channel (Response, *connReq) must be dominated by a call that may
// persist the image. The proof is about ordering, not necessity: a
// helper like shard.settle persists conditionally (GET-only batches skip
// the save), and whether the condition is right is the dynamic test's
// job — what the analyzer guarantees is that no path acks before the
// persist point. Error responses (constant Status != StatusOK) claim no
// durability and are exempt.
var Ackafterdurable = &Analyzer{
	Name: "ackafterdurable",
	Doc:  "in transaction-running scopes, client acks (Response/connReq sends) are dominated by the image-persist call that makes them true",
	Run:  runAckafterdurable,
}

func runAckafterdurable(pass *Pass) {
	for _, file := range pass.Files {
		for _, fd := range funcScopes(file) {
			for _, sc := range scopesOf(fd) {
				checkAckScope(pass, sc)
			}
		}
	}
}

func checkAckScope(pass *Pass, sc scope) {
	m := pass.Mod
	// Gate: only scopes that run transactions owe the ordering. A conn
	// goroutine that never touches the machine answers protocol errors
	// freely.
	var scopeMay effect
	if sc.lit != nil {
		scopeMay = m.NodeMay(pass.Info, sc.lit)
	} else if fi := m.funcInfo(declObj(pass, sc.decl)); fi != nil {
		scopeMay = fi.may
	}
	if scopeMay&effTxBegin == 0 {
		return
	}

	persistCredit := func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false // a deferred save runs after the ack was sent
		}
		for _, call := range callsIn(n, false) {
			if m.CallMay(pass.Info, call)&effPersistImage != 0 {
				return true
			}
		}
		return false
	}

	g := m.Graph(sc.body())
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			desc := ""
			switch n := n.(type) {
			case *ast.SendStmt:
				if ackSendEffect(pass.Info, n) == 0 || nonOKLiteral(pass, n.Value) {
					continue
				}
				desc = "sends a client response"
			case *ast.DeferStmt:
				continue
			default:
				// A call to a helper that acks but never persists is the
				// ack happening here, one frame down.
				for _, call := range callsIn(n, false) {
					may := m.CallMay(pass.Info, call)
					if may&effAck != 0 && may&effPersistImage == 0 {
						desc = "calls a helper that sends a client response"
						break
					}
				}
				if desc == "" {
					continue
				}
			}
			chain, ok := g.Reach(n, persistCredit)
			if !ok {
				continue // every route to the ack passes a may-persist call
			}
			pass.Reportf(n.Pos(),
				"%s %s with no image-persist call on the path %s; acking before the DIMM image is durable lets a crash roll back an acknowledged write (ack-after-durable)",
				sc.name, desc, flow.PathString(pass.Fset, chain, nil))
		}
	}
}

// declObj resolves a declared function's types.Func.
func declObj(pass *Pass, fd *ast.FuncDecl) *types.Func {
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	return obj
}

// nonOKLiteral reports whether e is a Response composite literal whose
// Status field is a non-OK constant — an error answer that acknowledges
// no durable state.
func nonOKLiteral(pass *Pass, e ast.Expr) bool {
	x := ast.Unparen(e)
	if u, ok := x.(*ast.UnaryExpr); ok {
		x = ast.Unparen(u.X)
	}
	lit, ok := x.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Status" {
			continue
		}
		tv, ok := pass.Info.Types[kv.Value]
		if !ok || tv.Value == nil {
			return false
		}
		v, ok := constant.Int64Val(constant.ToInt(tv.Value))
		return ok && v != 0 // StatusOK == 0
	}
	return false // zero-value Status is StatusOK
}
