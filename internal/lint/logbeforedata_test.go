package lint

import "testing"

func TestLogbeforedataFixture(t *testing.T) {
	RunFixture(t, Logbeforedata, "logbeforedata")
}
