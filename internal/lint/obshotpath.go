package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// serverPkg is the shard-loop package several analyzers key on
// (chaosonly, effects); obshotpath itself matches by path suffix.
const serverPkg = "pmemlog/internal/server"

// Obshotpath polices the observability calls inside the audited hot
// loops: the server's shard request loop and the pulse collector's
// per-interval tick. A shard goroutine serializes every write to its
// simulated machine, and the pulse ticker samples every tracked series
// while requests land: anything that blocks there — a registry lookup
// taking the registration mutex, a Snapshot allocating per record —
// stalls clients or tears a window. Only the all-atomic handle fast
// paths are allowed; registration and rendering belong in setup code
// or the stats/doc path.
var Obshotpath = &Analyzer{
	Name: "obshotpath",
	Doc:  "inside server shard loops and pulse snapshotters, only lock-free allocation-free obs calls (Counter.Add/Inc/Value, Gauge.Set/Add, Histogram.Observe/SnapshotInto, HistogramSnapshot.DeltaSince, Tracer.Emit/EmitSpan/Enabled)",
	Run:  runObshotpath,
}

// obsHotFuncsByPkg names the audited hot functions per package-path
// suffix (suffix-matched so fixture trees mirroring the layout under a
// different root get the same rules): per shard request for the
// server, per window tick / per finished request for pulse.
var obsHotFuncsByPkg = map[string]map[string]bool{
	"internal/server": {
		"shard.loop":            true,
		"shard.collect":         true,
		"shard.drain":           true,
		"shard.runBatch":        true,
		"shard.apply":           true,
		"shard.publishLogState": true,
		"Server.observeFinish":  true,
		"Server.sampleShard":    true,
	},
	"internal/obs/pulse": {
		"Collector.Tick":         true,
		"Collector.NoteFinished": true,
	},
	// The scope ledger's Note* methods run per store / per log record /
	// per write-back inside the shard loop; the sketch operations back
	// them. Nothing there may touch the locking registry surface.
	"internal/obs/scope": {
		"Counters.NoteLogBytes":  true,
		"Counters.NoteStore":     true,
		"Counters.NoteTxnCommit": true,
		"Counters.NoteDataWB":    true,
		"Counters.NoteForcedWB":  true,
		"Counters.NoteDirtied":   true,
		"Counters.NoteScan":      true,
		"LineSketch.Touch":       true,
		"LineSketch.Remove":      true,
		"LineSketch.Clear":       true,
	},
}

// obsHotFuncsFor returns the hot-function set for pkgPath, nil if the
// package has no audited hot path.
func obsHotFuncsFor(pkgPath string) map[string]bool {
	for suffix, funcs := range obsHotFuncsByPkg {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return funcs
		}
	}
	return nil
}

// isObsPkg reports whether path is the metrics registry package (the
// package whose call surface the rule audits).
func isObsPkg(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

// obsHotAllowed lists the obs entry points that are safe on the hot
// path: each is a handful of atomic operations, no mutex, no
// allocation (obs documents and tests this contract).
var obsHotAllowed = map[string]bool{
	"Counter.Inc":                  true,
	"Counter.Add":                  true,
	"Counter.Value":                true,
	"Gauge.Set":                    true,
	"Gauge.Add":                    true,
	"Histogram.Observe":            true,
	"Histogram.SnapshotInto":       true,
	"HistogramSnapshot.DeltaSince": true,
	"Tracer.Emit":                  true,
	"Tracer.EmitSpan":              true,
	"Tracer.Enabled":               true,
}

// obsRecvName renders fn's receiver type name, "" for package-level
// functions.
func obsRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func runObshotpath(pass *Pass) {
	hotFuncs := obsHotFuncsFor(pass.Pkg.Path())
	if hotFuncs == nil {
		return
	}
	for _, file := range pass.Files {
		for _, fd := range funcScopes(file) {
			hot := funcName(fd)
			if !hotFuncs[hot] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pass.Info, call)
				if fn == nil || fn.Pkg() == nil || !isObsPkg(fn.Pkg().Path()) {
					return true
				}
				name := fn.Name()
				if recv := obsRecvName(fn); recv != "" {
					name = recv + "." + name
				}
				if obsHotAllowed[name] {
					return true
				}
				pass.Reportf(call.Pos(),
					"obs.%s inside hot function %s may lock or allocate, stalling the loop's clients; only %s are allowed there",
					name, hot, allowedList())
				return true
			})
		}
	}
}

// allowedList renders the allowlist for the diagnostic, sorted for
// deterministic messages.
func allowedList() string {
	names := make([]string, 0, len(obsHotAllowed))
	for n := range obsHotAllowed {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}
