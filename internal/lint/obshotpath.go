package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Import paths the obshotpath analyzer keys on.
const (
	serverPkg = "pmemlog/internal/server"
	obsPkg    = "pmemlog/internal/obs"
)

// Obshotpath polices the observability calls inside the server's shard
// request loop. A shard goroutine serializes every write to its
// simulated machine: anything that blocks there — a registry lookup
// taking the registration mutex, a Snapshot allocating per record —
// stalls all of that shard's clients at once. Only the all-atomic
// handle fast paths are allowed in the loop; registration and
// rendering belong in setup code or the stats path.
var Obshotpath = &Analyzer{
	Name: "obshotpath",
	Doc:  "inside internal/server shard apply loops, only lock-free allocation-free obs calls (Counter.Add/Inc, Gauge.Set/Add, Histogram.Observe, Tracer.Emit/EmitSpan/Enabled)",
	Run:  runObshotpath,
}

// obsHotFuncs names the functions that constitute the shard request
// loop: everything executed by the shard goroutine between dequeuing a
// request and releasing its response.
var obsHotFuncs = map[string]bool{
	"shard.loop":     true,
	"shard.collect":  true,
	"shard.drain":    true,
	"shard.runBatch": true,
	"shard.apply":    true,
}

// obsHotAllowed lists the obs entry points that are safe on the hot
// path: each is a handful of atomic operations, no mutex, no
// allocation (obs documents and tests this contract).
var obsHotAllowed = map[string]bool{
	"Counter.Inc":       true,
	"Counter.Add":       true,
	"Gauge.Set":         true,
	"Gauge.Add":         true,
	"Histogram.Observe": true,
	"Tracer.Emit":       true,
	"Tracer.EmitSpan":   true,
	"Tracer.Enabled":    true,
}

// obsRecvName renders fn's receiver type name, "" for package-level
// functions.
func obsRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func runObshotpath(pass *Pass) {
	if pass.Pkg.Path() != serverPkg {
		return
	}
	for _, file := range pass.Files {
		for _, fd := range funcScopes(file) {
			hot := funcName(fd)
			if !obsHotFuncs[hot] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pass.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkg {
					return true
				}
				name := fn.Name()
				if recv := obsRecvName(fn); recv != "" {
					name = recv + "." + name
				}
				if obsHotAllowed[name] {
					return true
				}
				pass.Reportf(call.Pos(),
					"obs.%s inside shard hot function %s may lock or allocate, stalling every client of the shard; only %s are allowed there",
					name, hot, allowedList())
				return true
			})
		}
	}
}

// allowedList renders the allowlist for the diagnostic, sorted for
// deterministic messages.
func allowedList() string {
	names := make([]string, 0, len(obsHotAllowed))
	for n := range obsHotAllowed {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}
