package lint

import (
	"go/ast"
)

// Import paths of the packages whose APIs the analyzers key on.
const (
	simPkg   = "pmemlog/internal/sim"
	memPkg   = "pmemlog/internal/mem"
	corePkg  = "pmemlog/internal/core"
	pheapPkg = "pmemlog/internal/pheap"
)

// Nobackdoor confines raw mutation of persistent state to the machine
// layers and recovery. Everywhere else, a store that does not flow
// through a transaction Ctx (and so through the hardware undo+redo log)
// is invisible to recovery: after a crash it may be silently rolled back
// or, worse, survive half-applied. Population code has a sanctioned
// untimed path — System.SetupCtx — that records writes in the oracle.
var Nobackdoor = &Analyzer{
	Name: "nobackdoor",
	Doc:  "raw NVRAM/persistent-heap mutation (Poke, Physical.WriteWord, Heap.SetUsed, ...) only in machine layers, recovery, and tests",
	Run:  runNobackdoor,
}

// nobackdoorExempt lists the packages that ARE the machine or its
// recovery procedure: below the logged-store pipeline there is nothing to
// bypass. _test.go files are exempt by construction (the loader checks
// the non-test compilation unit).
var nobackdoorExempt = map[string]bool{
	simPkg:                      true, // owns Poke/SetupCtx and replays images
	memPkg:                      true, // the physical image itself
	"pmemlog/internal/nvram":    true, // DIMM model under the controller
	"pmemlog/internal/memctl":   true, // the controller's drain path
	"pmemlog/internal/recovery": true, // log replay writes the image by design
}

// backdoor describes one raw-mutation entry point.
type backdoor struct {
	pkg, recv, name string
	advice          string
}

var backdoors = []backdoor{
	{simPkg, "System", "Poke", "route population through System.SetupCtx, or run a transaction"},
	{simPkg, "System", "PokeBytes", "route population through System.SetupCtx, or run a transaction"},
	{memPkg, "Physical", "WriteWord", "stores must go through a transaction Ctx so the HWL engine logs them"},
	{memPkg, "Physical", "Write", "stores must go through a transaction Ctx so the HWL engine logs them"},
	{memPkg, "Physical", "CopyFrom", "image replacement belongs to sim.System.LoadNVRAM/Attach"},
	{pheapPkg, "Heap", "SetUsed", "allocator occupancy may only be re-derived when (re)attaching a recovered image"},
}

func runNobackdoor(pass *Pass) {
	if nobackdoorExempt[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Info, call)
			for _, b := range backdoors {
				if isFunc(fn, b.pkg, b.recv, b.name) {
					pass.Reportf(call.Pos(),
						"(%s).%s mutates persistent state behind the undo+redo log; %s",
						b.recv, b.name, b.advice)
					break
				}
			}
			return true
		})
	}
}
