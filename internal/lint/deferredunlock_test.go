package lint

import "testing"

func TestDeferredunlockFixture(t *testing.T) {
	RunFixture(t, Deferredunlock, "deferredunlock")
}
