package lint

import "testing"

func TestNobackdoorFixture(t *testing.T) {
	RunFixture(t, Nobackdoor, "nobackdoor")
}

// TestNobackdoorExemptsRecovery runs the analyzer over a stub of the
// recovery package — full of raw image writes — and expects silence:
// log replay is the sanctioned writer of last resort.
func TestNobackdoorExemptsRecovery(t *testing.T) {
	RunFixture(t, Nobackdoor, "pmemlog/internal/recovery")
}
