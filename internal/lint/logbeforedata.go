package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"pmemlog/internal/lint/flow"
)

// Logbeforedata is the paper's core ordering contract made a build-time
// property: a persistent store is only legal while an undo+redo log
// transaction is open, because TxBegin is what guarantees the log record
// describing the mutation becomes durable before the cached data can be
// stolen (written back). The analyzer walks every panic-free path of
// every function's CFG with a transaction-state machine (out → in →
// committed), spends TxBegin credit earned inside helpers (Must-begin,
// never-commit), and propagates the requirement through the call graph:
// a helper that stores without opening its own transaction (applyPut,
// writeNode) becomes a store-like obligation at each of its call sites.
// Setup-phase stores through System.SetupCtx are exempt — they run
// before the machine is timed and have no log to order against.
var Logbeforedata = &Analyzer{
	Name: "logbeforedata",
	Doc:  "every persistent store (Ctx.Store/StoreBytes) happens inside an open transaction on all paths, through helpers; setup contexts exempt",
	Run:  runLogbeforedata,
}

const tracePkg = "pmemlog/internal/trace"

// lbdExempt packages implement or replay the contract rather than obey
// it: sim owns the Ctx machinery; trace replays a recorded op stream
// whose ordering was established by the run that recorded it.
var lbdExempt = map[string]bool{
	simPkg:   true,
	tracePkg: true,
}

func runLogbeforedata(pass *Pass) {
	for _, f := range pass.Mod.logBeforeDataFindings() {
		if f.pkg.Types == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// Transaction states walked along each path.
const (
	lbdOut    = iota // no transaction open, none committed on this path
	lbdIn            // transaction open
	lbdClosed        // a TxCommit closed the transaction
)

// lbdSum is one function's store-exposure summary.
type lbdSum struct {
	// out: entered out-of-transaction, some path reaches a persistent
	// store while no transaction is open — the caller owes a TxBegin.
	out bool
	// in: even entered mid-transaction, some path reaches a store with
	// the transaction closed — an intrinsic commit-then-store bug.
	in bool
}

// lbdHit is one reachable unprotected store.
type lbdHit struct {
	node   ast.Node
	call   *ast.CallExpr
	state  int // lbdOut or lbdClosed at the store
	chain  []*flow.Block
	helper *types.Func // non-nil: the store is inside this callee
}

func (m *Module) logBeforeDataFindings() []moduleFinding {
	if m.lbdDone {
		return m.lbdFindings
	}
	m.lbdDone = true

	sums := make(map[*types.Func]*lbdSum)
	for _, fi := range m.order {
		sums[fi.obj] = &lbdSum{}
	}
	analyzed := func(fi *fnInfo) bool {
		if lbdExempt[fi.pkg.Path] {
			return false
		}
		// A method literally named Store/StoreBytes is a forwarding
		// wrapper implementing sim.Ctx; the ordering obligation is its
		// caller's.
		if fi.decl.Recv != nil && (fi.decl.Name.Name == "Store" || fi.decl.Name.Name == "StoreBytes") {
			return false
		}
		return true
	}

	for changed := true; changed; {
		changed = false
		for _, fi := range m.order {
			if !analyzed(fi) {
				continue
			}
			s := sums[fi.obj]
			if !s.out && m.lbdSearch(fi, m.graph(fi.decl.Body), lbdOut, sums) != nil {
				s.out = true
				changed = true
			}
			if !s.in && m.lbdSearch(fi, m.graph(fi.decl.Body), lbdIn, sums) != nil {
				s.in = true
				changed = true
			}
		}
	}

	reported := make(map[token.Pos]bool)
	report := func(fi *fnInfo, name string, h *lbdHit) {
		if reported[h.call.Pos()] {
			return
		}
		reported[h.call.Pos()] = true
		path := flow.PathString(fi.pkg.Fset, h.chain, nil)
		var msg string
		what := "performs a persistent store"
		if h.helper != nil {
			what = "calls " + h.helper.Name() + ", which stores persistent state and requires an open transaction,"
		}
		if h.state == lbdClosed {
			msg = name + " " + what + " after TxCommit closed the transaction (path " + path +
				"); the mutation's undo+redo record is no longer guaranteed durable before the data (log-before-data)"
		} else {
			msg = name + " " + what + " with no TxBegin on the path " + path +
				"; without an open transaction the data could be stolen to NVRAM before its undo+redo record is durable (log-before-data)"
		}
		m.lbdFindings = append(m.lbdFindings, moduleFinding{pkg: fi.pkg, pos: h.call.Pos(), msg: msg})
	}

	for _, fi := range m.order {
		if !analyzed(fi) {
			continue
		}
		s := sums[fi.obj]
		// Intrinsic commit-then-store: wrong for every caller.
		if s.in {
			if h := m.lbdSearch(fi, m.graph(fi.decl.Body), lbdIn, sums); h != nil && h.state == lbdClosed {
				report(fi, funcName(fi.decl), h)
			}
		}
		// Caller-owed TxBegin: report at roots only — a function with
		// module callers is a library whose precondition each call site
		// discharges (and is checked there).
		if s.out && len(m.callers[fi.obj]) == 0 {
			if h := m.lbdSearch(fi, m.graph(fi.decl.Body), lbdOut, sums); h != nil {
				report(fi, funcName(fi.decl), h)
			}
		}
		// Workload closures handed to System.Run/RunN start definitely
		// out of transaction: check each as a root.
		for _, lit := range runLits(fi) {
			if h := m.lbdSearch(fi, m.graph(lit.Body), lbdOut, sums); h != nil {
				report(fi, "workload closure in "+funcName(fi.decl), h)
			}
		}
	}
	return m.lbdFindings
}

// runLits collects function literals passed (possibly inside a slice
// literal) to System.Run or System.RunN inside fi.
func runLits(fi *fnInfo) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(fi.pkg.Info, call)
		if !isFunc(fn, simPkg, "System", "Run") && !isFunc(fn, simPkg, "System", "RunN") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if lit, ok := a.(*ast.FuncLit); ok {
					out = append(out, lit)
					return false // nested closures are the lit's own concern
				}
				return true
			})
		}
		return true
	})
	return out
}

// lbdSearch walks g from its entry in the given transaction state and
// returns the first reachable unprotected store (or store-requiring
// call), with the path that reaches it — nil when every path is clean.
func (m *Module) lbdSearch(fi *fnInfo, g *flow.Graph, entry int, sums map[*types.Func]*lbdSum) *lbdHit {
	info := fi.pkg.Info
	setupVars := collectSetupVars(info, fi.decl.Body)

	// stepNode simulates one CFG node: returns the updated state, or a
	// hit. Defer nodes neither store nor shift state — a deferred call
	// runs at return, outside this path's bracket.
	stepNode := func(n ast.Node, state int) (int, *lbdHit) {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return state, nil
		}
		for _, call := range callsIn(n, false) {
			fn := calleeOf(info, call)
			if isStoreCall(fn) && !setupReceiver(info, call, setupVars) && state != lbdIn {
				return state, &lbdHit{node: n, call: call, state: state}
			}
			if s := sums[fn]; s != nil {
				hit := (state != lbdIn && s.out) || (state == lbdIn && s.in)
				if hit && !setupTainted(info, call, setupVars) {
					return state, &lbdHit{node: n, call: call, state: state, helper: fn}
				}
			}
			state = m.lbdTransfer(info, fn, state)
		}
		return state, nil
	}

	type key struct {
		b     *flow.Block
		state int
	}
	parent := make(map[key]key)
	seen := map[key]bool{{g.Entry, entry}: true}
	queue := []key{{g.Entry, entry}}
	finish := func(k key, h *lbdHit) *lbdHit {
		var rev []*flow.Block
		for ; ; k = parent[k] {
			rev = append(rev, k.b)
			if _, ok := parent[k]; !ok {
				break
			}
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		h.chain = rev
		return h
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		state := k.state
		for _, n := range k.b.Nodes {
			var h *lbdHit
			state, h = stepNode(n, state)
			if h != nil {
				return finish(k, h)
			}
		}
		for _, s := range k.b.Succs {
			nk := key{s, state}
			if !seen[nk] {
				seen[nk] = true
				parent[nk] = k
				queue = append(queue, nk)
			}
		}
	}
	return nil
}

// lbdTransfer folds one call into the path's transaction state.
func (m *Module) lbdTransfer(info *types.Info, fn *types.Func, state int) int {
	switch primEffect(fn) {
	case effTxBegin:
		return lbdIn
	case effTxCommit:
		return lbdClosed
	}
	if fi := m.fns[fn]; fi != nil {
		if fi.must&effTxBegin != 0 && fi.may&effTxCommit == 0 {
			return lbdIn // pure-begin helper: opens, never closes
		}
		if fi.must&effTxCommit != 0 && fi.may&effTxBegin == 0 {
			return lbdClosed // pure-commit helper
		}
	}
	return state
}

// isStoreCall reports whether fn is the Ctx persistent-store primitive.
func isStoreCall(fn *types.Func) bool {
	return isFunc(fn, simPkg, "", "Store") || isFunc(fn, simPkg, "", "StoreBytes")
}

// collectSetupVars finds variables bound to System.SetupCtx() results in
// body (closures included — setup contexts flow into literals).
func collectSetupVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isFunc(calleeOf(info, call), simPkg, "System", "SetupCtx") {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
		return true
	})
	return vars
}

// setupOrigin reports whether e evaluates to a setup context: a direct
// System.SetupCtx() call or a variable bound to one.
func setupOrigin(info *types.Info, e ast.Expr, setupVars map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return isFunc(calleeOf(info, x), simPkg, "System", "SetupCtx")
	case *ast.Ident:
		return setupVars[info.Uses[x]]
	}
	return false
}

// setupReceiver: the store call's receiver is a setup context.
func setupReceiver(info *types.Info, call *ast.CallExpr, setupVars map[types.Object]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && setupOrigin(info, sel.X, setupVars)
}

// setupTainted: a setup context flows into the call — as an argument
// (storeValue(s.SetupCtx(), ...)), or through a chained constructor
// (b.op(setup, t).insert(k)) — discharging the callee's open-transaction
// requirement by construction.
func setupTainted(info *types.Info, call *ast.CallExpr, setupVars map[types.Object]bool) bool {
	tainted := false
	ast.Inspect(call, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && setupOrigin(info, e, setupVars) {
			tainted = true
		}
		return !tainted
	})
	return tainted
}
